# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race race-dataplane bench bench-hotpath bench-int bench-baseline bench-gate bench-fused bench-reconfig bench-reconfig-baseline bench-flow bench-flow-baseline bench-drop bench-drop-baseline flow-soak drop-soak fuzz-diff fuzz-fused profile-hotpath cover experiments examples health-smoke fmt vet lint clean

# Benchmarks gated against BENCH_hotpath.json: the per-packet hot path
# (strict 0 allocs/op) plus the whole-switch sharded/pipelined burst.
GATED_BENCH = BenchmarkHotPath|BenchmarkShardedThroughput|BenchmarkPipelinedThroughput
# ns/op slack for bench-gate: CI hosts differ, so only a >3x slowdown
# (tol 2.0 = baseline*(1+2.0)) fails; allocs/op regressions always fail.
BENCH_TOL ?= 2.0

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race run over the packet path: shared dataplane consumers and the
# traffic manager, where the lock-free lookup snapshot and pools live.
race-dataplane:
	$(GO) test -race -count=2 ./internal/ipbm/ ./internal/pisa/ ./internal/pipeline/ ./internal/dataplane/ ./internal/tsp/

bench:
	$(GO) test -bench=. -benchmem ./...

# Steady-state forwarding benchmark, compiled executor vs the interpreter
# oracle. Use -count and min-of-N when comparing: single runs are noisy.
bench-hotpath:
	$(GO) test -run xxx -bench 'BenchmarkHotPath' -benchmem -count=5 .

# INT overhead smoke: fails if the INT-disabled hot path allocates, and
# reports the per-packet cost of forwarding with stamping compiled out.
bench-int:
	$(GO) test ./internal/ipbm/ -run TestIntDisabledZeroAlloc -count=1 -v
	$(GO) test -run xxx -bench 'BenchmarkHotPath_Compiled' -benchmem -count=3 .

# Record the committed benchmark baseline (min over 5 runs). Run on a
# quiet machine, then commit BENCH_hotpath.json.
bench-baseline:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_BENCH)' -benchmem -count=5 . | bin/benchgate -write BENCH_hotpath.json \
		-note "min of 5 runs; allocs/op is machine-independent and gated strictly, ns/op within tolerance"

# Regression gate against the committed baseline: any allocs/op increase
# fails; ns/op fails only beyond baseline*(1+BENCH_TOL).
bench-gate:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_BENCH)' -benchmem -count=3 . | bin/benchgate -check BENCH_hotpath.json -tol $(BENCH_TOL)

# Second-stage-compiler gate: runs the three executor tiers in ONE
# `go test` invocation and asserts the within-run ordering, which is
# machine-independent (the host's absolute speed cancels out of the
# ratios): the fused tier must not lose to the flat-program VM (0.95
# floor absorbs minute-scale host drift between the two benchmark
# blocks) and must beat the tree interpreter by >= 1.25x on every use
# case, at strictly zero allocations. Thresholds carry margin under the
# measured ratios (fused/compiled ~1.1-1.15x, fused/interp ~1.5-1.6x;
# see EXPERIMENTS.md) so gate failures mean a real tier regression, not
# benchmark noise. The usual baseline comparison also runs, so the
# committed allocs=0 / ns bounds still apply to the fused keys.
bench-fused:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_BENCH)' -benchmem -count=3 . \
		| bin/benchgate -check BENCH_hotpath.json -tol $(BENCH_TOL) \
		-speedup 'BenchmarkHotPath_Fused=BenchmarkHotPath_Compiled:0.95' \
		-speedup 'BenchmarkHotPath_Fused=BenchmarkHotPath_Interp:1.25'

# Reconfiguration-storm gate: a sharded switch forwards through ~170
# edit commits/s on the epoch-versioned store; BENCH_reconfig.json pins
# drops and stall_us at exactly 0 (strict zero invariants) plus the usual
# allocs/ns bounds. Fixed iteration count so applies-per-run — and with
# it the alloc amortization — is identical on every host.
bench-reconfig:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test ./internal/ipbm/ -run xxx -bench BenchmarkReconfigStormHitless -benchmem -benchtime=50000x -count=3 \
		| bin/benchgate -check BENCH_reconfig.json -tol $(BENCH_TOL)

# Record the reconfig-storm baseline. The drain-mode comparison run
# (BenchmarkReconfigStormDrain) is reported but deliberately not gated:
# its stall time is real and nonzero, so pinning it would flake.
bench-reconfig-baseline:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test ./internal/ipbm/ -run xxx -bench BenchmarkReconfigStormHitless -benchmem -benchtime=50000x -count=5 \
		| bin/benchgate -write BENCH_reconfig.json \
		-note "50000 frames/run; drops and stall_us are strict zero invariants of the hitless path"

# Flow-accounting benchmarks gated against BENCH_flow.json: the isolated
# Touch/Finish engine cost plus the hot path with accounting ablated
# (FlowOff). Same policy as bench-gate: allocs/op strictly 0, ns/op
# within tolerance.
GATED_FLOW_BENCH = BenchmarkFlowAccount|BenchmarkHotPath_FlowOff

bench-flow:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_FLOW_BENCH)' -benchmem -count=3 . | bin/benchgate -check BENCH_flow.json -tol $(BENCH_TOL)

# Record the flow-accounting baseline (min over 5 runs) and commit
# BENCH_flow.json.
bench-flow-baseline:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_FLOW_BENCH)' -benchmem -count=5 . | bin/benchgate -write BENCH_flow.json \
		-note "min of 5 runs; Touch/Finish must stay allocation-free or the always-on default is not viable"

# Race soak over the flow-accounting paths: single-writer lanes with
# racing readers, clash evictions under storm, flow state across
# reconfig commits, and the sharded conservation invariant.
flow-soak:
	$(GO) test -race -count=2 -run 'Flow|Sketch|Concurrent|Sweep|Eviction' ./internal/flowstat/ ./internal/ipbm/

# Drop-attribution benchmarks gated against BENCH_drop.json: the
# always-on loss-forensics path (verdict classification, striped
# ipsa_drop_total cells, capture-ring admission) on a program drop and a
# parse failure. Same policy as bench-gate: allocs/op strictly 0, ns/op
# within tolerance — a drop storm must not allocate.
GATED_DROP_BENCH = BenchmarkDropPath

bench-drop:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_DROP_BENCH)' -benchmem -count=3 . | bin/benchgate -check BENCH_drop.json -tol $(BENCH_TOL)

# Record the drop-attribution baseline (min over 5 runs) and commit
# BENCH_drop.json.
bench-drop-baseline:
	$(GO) build -o bin/benchgate ./cmd/benchgate
	$(GO) test -run xxx -bench '$(GATED_DROP_BENCH)' -benchmem -count=5 . | bin/benchgate -write BENCH_drop.json \
		-note "min of 5 runs; attribution is always on, so the drop path must stay allocation-free"

# Race soak over the loss-forensics path: every drop reason firing at
# once under a hitless edit storm, with the conservation invariant
# (per-reason drop counters == loss-verdict counters) checked at the end.
drop-soak:
	$(GO) test -race -count=2 -run 'DropConservation|DropRing|DropAttribution' ./internal/ipbm/ ./internal/telemetry/

# Differential fuzz: compiled executor vs interpreter on the full switch.
fuzz-diff:
	$(GO) test ./internal/ipbm/ -run xxx -fuzz FuzzCompiledVsInterp -fuzztime 30s

# Differential fuzz for the second-stage compiler: fused closures vs the
# flat-program VM they were lowered from.
fuzz-fused:
	$(GO) test ./internal/ipbm/ -run xxx -fuzz FuzzFusedVsCompiled -fuzztime 30s

# Capture CPU and heap profiles of the fused hot path. The equivalent
# for a live switch is `ipbm -cpuprofile cpu.out -memprofile mem.out`;
# see docs/OBSERVABILITY.md.
profile-hotpath:
	$(GO) test -run xxx -bench 'BenchmarkHotPath_Fused$$' -benchtime=200000x \
		-cpuprofile cpu.out -memprofile mem.out .
	@echo "profiles written: cpu.out mem.out (view with: $(GO) tool pprof -top cpu.out)"

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ecmp_insitu
	$(GO) run ./examples/srv6_insitu
	$(GO) run ./examples/flowprobe
	$(GO) run ./examples/int_e2e

# End-to-end health-layer exercise: boot ipbm with a fast sampler, check
# /readyz gating, push traffic until /health shows nonzero rates, run an
# in-situ update over the CCM and assert the switch stays healthy with
# the apply event in the audit trail.
health-smoke:
	$(GO) run ./cmd/healthsmoke

fmt:
	gofmt -w cmd internal examples bench_test.go

vet:
	$(GO) vet ./...

# Static analysis: vet always, staticcheck when installed (CI installs it;
# locally it is optional so a bare toolchain still builds everything).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

clean:
	$(GO) clean ./...
