# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench cover experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ecmp_insitu
	$(GO) run ./examples/srv6_insitu
	$(GO) run ./examples/flowprobe

fmt:
	gofmt -w cmd internal examples bench_test.go

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
