// experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's experiment index and EXPERIMENTS.md
// for paper-vs-measured discussion).
//
// Usage:
//
//	experiments [-testdata DIR] [-packets N] [table1|throughput|table2|table3|fig4|fig6|discussion|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"ipsa/internal/experiments"
)

func main() {
	dir := flag.String("testdata", "testdata", "directory with the shipped designs and scripts")
	packets := flag.Int("packets", 20000, "packets per software throughput measurement")
	entries := flag.Int("entries", 64, "filler entries per table for load measurements")
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	cfg := experiments.Default(*dir)
	cfg.Packets = *packets
	cfg.Entries = *entries

	run := func(name string, f func() (fmt.Stringer, error)) {
		if what != "all" && what != name {
			return
		}
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
	}

	run("table1", func() (fmt.Stringer, error) { return experiments.Table1(cfg) })
	run("throughput", func() (fmt.Stringer, error) { return experiments.Throughput(cfg) })
	run("table2", func() (fmt.Stringer, error) { return experiments.Table2(cfg), nil })
	run("table3", func() (fmt.Stringer, error) { return experiments.Table3(cfg) })
	run("fig4", func() (fmt.Stringer, error) { return experiments.Fig4(cfg) })
	run("fig6", func() (fmt.Stringer, error) { return experiments.Fig6(cfg), nil })
	run("discussion", func() (fmt.Stringer, error) { return experiments.Discussion(cfg) })
}
