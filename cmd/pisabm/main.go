// pisabm runs the PISA behavioral-model baseline switch (the bmv2
// equivalent): fixed stages, front parser, full-reload-only updates. It
// speaks the same control channel as ipbm so rp4ctl drives both.
//
// Usage:
//
//	pisabm -listen 127.0.0.1:9902 [-config config.json] [-metrics-addr 127.0.0.1:9912]
//	       [-log-level info] [-log-format text]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/health"
	"ipsa/internal/pisa"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// device adapts pisa.Switch to the full ctrlplane.Device interface and
// exposes the health layer over the CCM.
type device struct {
	*pisa.Switch
	h *health.Health
}

func (d device) DeleteEntry(table string, handle int) error {
	return fmt.Errorf("pisabm: per-entry deletion is not part of the baseline model")
}

func (d device) ListTables() []ctrlplane.TableStatus { return nil }

func (d device) Stats() *ctrlplane.DeviceStats {
	p, drop := d.Switch.Stats()
	return &ctrlplane.DeviceStats{Processed: p, Dropped: drop}
}

func (d device) HealthQuery(window time.Duration) *health.Status {
	return d.h.Status(window)
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9902", "control channel listen address")
	configFile := flag.String("config", "", "initial device configuration JSON (optional)")
	ingress := flag.Int("ingress-stages", 12, "fixed ingress stage count")
	egress := flag.Int("egress-stages", 4, "fixed egress stage count")
	metricsAddr := flag.String("metrics-addr", "", "HTTP scrape endpoint (/metrics Prometheus text, /health JSON); empty disables")
	execFlag := flag.String("exec", "fused", "stage executor: fused (second-stage compiled closures), compiled (flat-program VM) or interp (reference tree-walker)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	execMode, err := tsp.ParseExecMode(*execFlag)
	if err != nil {
		fatal(err)
	}
	opts := pisa.DefaultOptions()
	opts.IngressStages = *ingress
	opts.EgressStages = *egress
	opts.Exec = execMode
	opts.Logger = logger
	sw, err := pisa.New(opts)
	if err != nil {
		fatal(err)
	}
	if *configFile != "" {
		b, err := os.ReadFile(*configFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := template.Unmarshal(b)
		if err != nil {
			fatal(err)
		}
		if _, err := sw.ApplyConfig(cfg); err != nil {
			fatal(err)
		}
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	reg.AddCollector(func(emit func(telemetry.MetricPoint)) {
		p, drop := sw.Stats()
		emit(telemetry.MetricPoint{Name: "pisa_pipeline_processed_total", Kind: "counter", Value: float64(p)})
		emit(telemetry.MetricPoint{Name: "pisa_pipeline_dropped_total", Kind: "counter", Value: float64(drop)})
	})
	h := health.New(health.Options{
		Registry: reg,
		Log:      logger.With("component", "health"),
		Packets: func() uint64 {
			p, drop := sw.Stats()
			return p + drop
		},
		Drops: func() uint64 {
			_, drop := sw.Stats()
			return drop
		},
		Ready: func() bool { return sw.Config() != nil },
		// The baseline has neither the per-verdict counters nor the
		// per-TSP latency histograms; silence those breakdowns.
		VerdictSeries: "pisa_packets_total",
		LatencySeries: "pisa_tsp_latency_seconds",
	})
	// Collector-only series are invisible to the ring's registry scan;
	// track them explicitly so windowed rates work for the baseline too.
	h.AddColumn(health.Column{Name: "pisa_pipeline_processed_total", Kind: "counter",
		Read: func() float64 { p, _ := sw.Stats(); return float64(p) }})
	h.AddColumn(health.Column{Name: "pisa_pipeline_dropped_total", Kind: "counter",
		Read: func() float64 { _, drop := sw.Stats(); return float64(drop) }})
	h.Start()
	defer h.Stop()

	if *metricsAddr != "" {
		mux := telemetry.NewServeMux(reg, nil, nil)
		h.Register(mux)
		ms, err := telemetry.ServeMux(*metricsAddr, mux)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		slog.Info("metrics endpoint up", "addr", ms.Addr(),
			"paths", "/metrics /health /healthz /readyz")
	}
	srv := ctrlplane.NewServer(device{sw, h}, logger)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	slog.Info("pisabm up", "ccm", addr, "ingress", *ingress, "egress", *egress)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}

func fatal(err error) {
	slog.Error("fatal", "component", "pisabm", "err", err)
	os.Exit(1)
}
