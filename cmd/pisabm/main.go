// pisabm runs the PISA behavioral-model baseline switch (the bmv2
// equivalent): fixed stages, front parser, full-reload-only updates. It
// speaks the same control channel as ipbm so rp4ctl drives both.
//
// Usage:
//
//	pisabm -listen 127.0.0.1:9902 [-config config.json] [-metrics-addr 127.0.0.1:9912]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pisa"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// device adapts pisa.Switch to the full ctrlplane.Device interface.
type device struct {
	*pisa.Switch
}

func (d device) DeleteEntry(table string, handle int) error {
	return fmt.Errorf("pisabm: per-entry deletion is not part of the baseline model")
}

func (d device) ListTables() []ctrlplane.TableStatus { return nil }

func (d device) Stats() *ctrlplane.DeviceStats {
	p, drop := d.Switch.Stats()
	return &ctrlplane.DeviceStats{Processed: p, Dropped: drop}
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9902", "control channel listen address")
	configFile := flag.String("config", "", "initial device configuration JSON (optional)")
	ingress := flag.Int("ingress-stages", 12, "fixed ingress stage count")
	egress := flag.Int("egress-stages", 4, "fixed egress stage count")
	metricsAddr := flag.String("metrics-addr", "", "HTTP scrape endpoint (/metrics Prometheus text); empty disables")
	execFlag := flag.String("exec", "compiled", "stage executor: compiled (flat programs) or interp (reference tree-walker)")
	flag.Parse()

	execMode, err := tsp.ParseExecMode(*execFlag)
	if err != nil {
		fatal(err)
	}
	opts := pisa.DefaultOptions()
	opts.IngressStages = *ingress
	opts.EgressStages = *egress
	opts.Exec = execMode
	sw, err := pisa.New(opts)
	if err != nil {
		fatal(err)
	}
	if *configFile != "" {
		b, err := os.ReadFile(*configFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := template.Unmarshal(b)
		if err != nil {
			fatal(err)
		}
		if _, err := sw.ApplyConfig(cfg); err != nil {
			fatal(err)
		}
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		reg.AddCollector(func(emit func(telemetry.MetricPoint)) {
			p, drop := sw.Stats()
			emit(telemetry.MetricPoint{Name: "pisa_pipeline_processed_total", Kind: "counter", Value: float64(p)})
			emit(telemetry.MetricPoint{Name: "pisa_pipeline_dropped_total", Kind: "counter", Value: float64(drop)})
		})
		ms, err := telemetry.Serve(*metricsAddr, reg, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		slog.Info("metrics endpoint up", "addr", ms.Addr())
	}
	srv := ctrlplane.NewServer(device{sw}, slog.Default())
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	slog.Info("pisabm up", "ccm", addr, "ingress", *ingress, "egress", *egress)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pisabm:", err)
	os.Exit(1)
}
