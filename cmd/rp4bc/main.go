// rp4bc is the rP4 back-end compiler: it maps an rP4 design onto TSP
// template parameters (JSON device configuration). With -script it applies
// an in-situ update script first and reports the incremental patch the
// device needs — the paper's two outputs: the updated base design and the
// new TSP templates plus switch configuration.
//
// Usage:
//
//	rp4bc -o config.json base.rp4
//	rp4bc -script ecmp.script -o config.json -design-out updated.rp4 base.rp4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/rp4/parser"
)

func main() {
	out := flag.String("o", "", "output device configuration JSON (default: stdout)")
	script := flag.String("script", "", "in-situ update script to apply after the base compile")
	designOut := flag.String("design-out", "", "write the updated base design (rP4) here")
	tsps := flag.Int("tsps", 16, "physical TSP count of the target")
	noMerge := flag.Bool("no-merge", false, "disable predicate-based stage merging")
	greedy := flag.Bool("greedy", false, "use the greedy incremental layout instead of DP")
	clustered := flag.Bool("clustered", false, "constrain tables to their TSP's memory cluster")
	mapping := flag.Bool("mapping", false, "print the stage-to-TSP mapping (Fig. 4 style) to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rp4bc [flags] base.rp4")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(in, string(src))
	if err != nil {
		fatal(err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = *tsps
	opts.EnableMerge = !*noMerge
	opts.IncrementalDP = !*greedy
	opts.Clustered = *clustered

	ws, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		fatal(err)
	}
	cfg := ws.Current().Config
	if *script != "" {
		scriptSrc, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		dir := filepath.Dir(*script)
		loader := func(name string) (string, error) {
			b, err := os.ReadFile(filepath.Join(dir, name))
			return string(b), err
		}
		rep, err := ws.ApplyScript(string(scriptSrc), loader)
		if err != nil {
			fatal(err)
		}
		cfg = rep.Config
		fmt.Fprintf(os.Stderr, "rp4bc: stages +%v -%v, new tables %v, rewritten TSPs %v, selector moved: %v\n",
			rep.AddedStages, rep.RemovedStages, rep.NewTables, rep.RewrittenTSPs, rep.SelectorChanged)
	}
	st := ws.Current().Stats
	fmt.Fprintf(os.Stderr, "rp4bc: %d stages on %d TSPs (%d merged), layout rewrites %d, packing max load %d\n",
		st.Stages, st.TSPsUsed, st.MergedStages, st.LayoutRewrites, ws.Current().Packing.MaxLoad)

	if *mapping {
		byTSP := map[int][]string{}
		for s, tp := range cfg.TSPAssignment {
			byTSP[tp] = append(byTSP[tp], s)
		}
		for tp := 0; tp < *tsps; tp++ {
			if stages, ok := byTSP[tp]; ok {
				sort.Strings(stages)
				fmt.Fprintf(os.Stderr, "  TSP%-2d: %s\n", tp, strings.Join(stages, " + "))
			}
		}
	}

	b, err := cfg.Marshal()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(b))
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	if *designOut != "" {
		if err := os.WriteFile(*designOut, []byte(ws.RenderProgram()), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rp4bc:", err)
	os.Exit(1)
}
