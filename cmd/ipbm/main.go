// ipbm runs the IPSA behavioral-model software switch: an elastic pipeline
// of TSPs, a disaggregated memory pool, and a JSON-over-TCP control
// channel (CCM) that accepts configurations from rp4bc and table writes
// from rp4ctl.
//
// Usage:
//
//	ipbm -listen 127.0.0.1:9901 [-config config.json] [-tsps 16] [-ports 8]
//	     [-metrics-addr 127.0.0.1:9911] [-trace-every 64]
//	     [-log-level info] [-log-format text]
package main

import (
	"flag"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/intmd"
	"ipsa/internal/ipbm"
	"ipsa/internal/netio"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9901", "control channel listen address")
	configFile := flag.String("config", "", "initial device configuration JSON (optional)")
	tsps := flag.Int("tsps", 16, "physical TSP count")
	ports := flag.Int("ports", 8, "data ports")
	pipelined := flag.Bool("pipelined", false, "asynchronous mode: TM buffers between ingress and egress workers")
	egressWorkers := flag.Int("egress-workers", 2, "egress workers in pipelined mode")
	shards := flag.Int("shards", 0, "sharded mode: flow-affine worker lanes (0 disables; overrides -pipelined)")
	batch := flag.Int("batch", 0, "frames per I/O batch in sharded mode (0 = default)")
	pcapIn := flag.String("pcap-in", "", "replay this pcap through port 0 and exit (offline mode)")
	pcapOut := flag.String("pcap-out", "", "with -pcap-in: capture forwarded packets here")
	metricsAddr := flag.String("metrics-addr", "", "HTTP scrape endpoint (/metrics Prometheus text, /traces JSON); empty disables")
	traceEvery := flag.Uint64("trace-every", 0, "record a packet flight trace every N packets; 0 disables")
	traceRing := flag.Int("trace-ring", 256, "flight-recorder ring size")
	latencyEvery := flag.Uint64("latency-every", 128,
		"sample per-TSP latency every N packets; 0 disables")
	execFlag := flag.String("exec", "fused", "stage executor: fused (second-stage compiled closures), compiled (flat-program VM) or interp (reference tree-walker)")
	intOn := flag.Bool("int", false, "enable in-band telemetry stamping at startup (also togglable at runtime via rp4ctl int enable/disable)")
	intSwitchID := flag.Uint("int-switch-id", 1, "switch ID stamped into INT hop records")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	healthInterval := flag.Duration("health-interval", 0, "health sampler tick (0 = default 1s; negative disables)")
	flowBits := flag.Int("flow-table-bits", 0, "log2 of per-lane flow table slots (0 = default)")
	flowIdle := flag.Duration("flow-idle", 0, "idle timeout before a flow is swept into a record (0 = default)")
	flowTopK := flag.Int("flow-topk", 0, "heavy-hitter summary size per lane (0 = default)")
	flowOff := flag.Bool("flow-off", false, "disable always-on flow accounting")
	dropRing := flag.Int("drop-ring", 0, "sampled drop-capture ring size (0 = default)")
	dropRate := flag.Int64("drop-rate", -1, "max sampled drop captures per second (0 disables capture; -1 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here for the whole run (pprof format)")
	memProfile := flag.String("memprofile", "", "write a heap profile here at shutdown (pprof format)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	execMode, err := tsp.ParseExecMode(*execFlag)
	if err != nil {
		fatal(err)
	}
	opts := ipbm.DefaultOptions()
	opts.Logger = logger
	opts.HealthInterval = *healthInterval
	opts.NumTSPs = *tsps
	opts.NumPorts = *ports
	opts.TraceEvery = *traceEvery
	opts.TraceRing = *traceRing
	opts.LatencyEvery = *latencyEvery
	opts.Exec = execMode
	opts.IntSwitchID = uint32(*intSwitchID)
	opts.FlowTableBits = *flowBits
	opts.FlowIdle = *flowIdle
	opts.FlowTopK = *flowTopK
	opts.FlowDisable = *flowOff
	if *dropRing > 0 {
		opts.DropRing = *dropRing
	}
	if *dropRate >= 0 {
		opts.DropSampleRate = *dropRate
	}
	sw, err := ipbm.New(opts)
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		tel := sw.Telemetry()
		mux := telemetry.NewServeMux(tel.Reg, tel.Tracer, tel.Events)
		sw.Health().Register(mux)
		sw.Flows().Register(mux)
		sw.Drops().Register(mux)
		ms, err := telemetry.ServeMux(*metricsAddr, mux)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		slog.Info("metrics endpoint up", "addr", ms.Addr(),
			"paths", "/metrics /traces /events /flows /drops /health /healthz /readyz")
	}
	if *configFile != "" {
		b, err := os.ReadFile(*configFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := template.Unmarshal(b)
		if err != nil {
			fatal(err)
		}
		st, err := sw.ApplyConfig(cfg)
		if err != nil {
			fatal(err)
		}
		slog.Info("configuration installed", "tsps_written", st.TSPsWritten, "tables", st.TablesCreated)
	}
	if *intOn {
		if err := sw.SetInt(true); err != nil {
			fatal(err)
		}
		slog.Info("INT stamping enabled", "switch_id", *intSwitchID)
	}
	if *pcapIn != "" {
		// Replay drives the sync path, so no forwarding mode starts the
		// health sampler; tick it here so /health shows rates mid-replay.
		sw.Health().Start()
		if err := replay(sw, *pcapIn, *pcapOut); err != nil {
			fatal(err)
		}
		return
	}
	srv := ctrlplane.NewServer(sw, slog.Default())
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	slog.Info("ipbm up", "ccm", addr, "tsps", *tsps, "ports", *ports,
		"pipelined", *pipelined, "shards", *shards)
	switch {
	case *shards > 0:
		if err := sw.RunSharded(*shards, *batch); err != nil {
			fatal(err)
		}
		nsh, nb := sw.Sharded()
		slog.Info("sharded mode up", "shards", nsh, "batch", nb)
	case *pipelined:
		if err := sw.RunPipelined(*egressWorkers); err != nil {
			fatal(err)
		}
	default:
		sw.Run()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	slog.Info("shutting down")
	_ = srv.Close()
	sw.Shutdown()
}

// replay pushes a pcap through port 0 and optionally captures the
// survivors, reporting a summary.
func replay(sw *ipbm.Switch, inPath, outPath string) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	rd, err := netio.NewPcapReader(in)
	if err != nil {
		return err
	}
	var wr *netio.PcapWriter
	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if wr, err = netio.NewPcapWriter(out); err != nil {
			return err
		}
	}
	forwarded, dropped, punted, intIn := 0, 0, 0, 0
	for {
		ts, data, err := rd.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		// Count frames arriving with an upstream INT trailer (transit mode).
		if _, ok := intmd.Hops(data); ok {
			intIn++
		}
		p, err := sw.ProcessPacket(data, 0)
		if err != nil {
			return err
		}
		if p.ToCPU {
			punted++
		}
		if p.Drop {
			dropped++
			continue
		}
		forwarded++
		if wr != nil {
			if err := wr.WritePacket(ts, p.Data); err != nil {
				return err
			}
		}
	}
	slog.Info("replay complete", "component", "replay",
		"packets", rd.Count(), "int_trailers", intIn,
		"forwarded", forwarded, "dropped", dropped, "punted", punted)
	return nil
}

// startProfiles begins CPU profiling and arranges a heap snapshot, per
// the -cpuprofile/-memprofile flags. The returned stop function is safe
// to call once at shutdown (it is a no-op when both flags are empty);
// together with `make profile-hotpath` this is the workflow for finding
// where the fused hot path spends its cycles on a live switch.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
		slog.Info("cpu profiling started", "path", cpuPath)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			slog.Info("cpu profile written", "path", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				slog.Error("heap profile", "err", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the snapshot reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				slog.Error("heap profile", "err", err)
				return
			}
			slog.Info("heap profile written", "path", memPath)
		}
	}, nil
}

func fatal(err error) {
	slog.Error("fatal", "component", "ipbm", "err", err)
	os.Exit(1)
}
