// healthsmoke is the end-to-end exercise behind `make health-smoke`: it
// boots an ipbm switch in-process with a fast health sampler, verifies
// /readyz flips once a configuration lands, pushes traffic through the
// sharded datapath until /health reports nonzero rates, then drives a
// real in-situ update over the control channel and asserts the switch
// stays healthy with the reconfiguration visible in the audit trail.
// Exit status 0 means the health layer works end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/experiments"
	"ipsa/internal/health"
	"ipsa/internal/ipbm"
	"ipsa/internal/telemetry"
	"ipsa/internal/trafficgen"
)

func main() {
	testdata := flag.String("testdata", "testdata", "directory holding base_l2l3.rp4 and the update scripts")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, "text")
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)
	if err := run(*testdata, logger); err != nil {
		fatal(err)
	}
	slog.Info("health smoke passed")
}

func run(testdata string, logger *slog.Logger) error {
	// Boot an unconfigured switch with a fast sampler so the smoke sees
	// several health ticks per second.
	opts := ipbm.DefaultOptions()
	opts.Logger = logger
	opts.HealthInterval = 100 * time.Millisecond
	sw, err := ipbm.New(opts)
	if err != nil {
		return err
	}
	defer sw.Shutdown()

	tel := sw.Telemetry()
	mux := telemetry.NewServeMux(tel.Reg, tel.Tracer, tel.Events)
	sw.Health().Register(mux)
	ms, err := telemetry.ServeMux("127.0.0.1:0", mux)
	if err != nil {
		return err
	}
	defer ms.Close()
	base := "http://" + ms.Addr()

	// Before any configuration: /readyz must refuse, /healthz must pass
	// (an empty switch is healthy, just not ready).
	if code, _ := get(base + "/readyz"); code != http.StatusServiceUnavailable {
		return fmt.Errorf("/readyz before config: got %d, want 503", code)
	}
	if code, _ := get(base + "/healthz"); code != http.StatusOK {
		return fmt.Errorf("/healthz before config: got %d, want 200", code)
	}

	// Install the base design and its forwarding state through the real
	// control channel, exactly as an external controller would.
	srv := ctrlplane.NewServer(sw, logger)
	ccm, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := ctrlplane.Dial(ccm, 3*time.Second)
	if err != nil {
		return err
	}
	defer cl.Close()

	src, err := os.ReadFile(filepath.Join(testdata, "base_l2l3.rp4"))
	if err != nil {
		return err
	}
	copts := backend.DefaultOptions()
	copts.NumTSPs = 16
	ctrl, err := core.NewController("base_l2l3.rp4", string(src), copts, cl)
	if err != nil {
		return err
	}
	if err := experiments.PopulateBase(cl, ctrl.CurrentConfig(), 0); err != nil {
		return err
	}
	if err := waitFor(2*time.Second, func() error {
		code, _ := get(base + "/readyz")
		if code != http.StatusOK {
			return fmt.Errorf("/readyz after config: got %d, want 200", code)
		}
		return nil
	}); err != nil {
		return err
	}
	slog.Info("switch configured and ready", "ccm", ccm, "http", ms.Addr())

	// Push traffic through the sharded datapath and wait until the
	// health layer's windowed rates pick it up.
	if err := sw.RunSharded(2, 8); err != nil {
		return err
	}
	gen, err := trafficgen.New(trafficgen.DefaultConfig())
	if err != nil {
		return err
	}
	inPort, err := sw.Ports().Port(1) // port 1 is mapped by port_map_tbl
	if err != nil {
		return err
	}
	stopInject := make(chan struct{})
	defer close(stopInject)
	go func() {
		for {
			select {
			case <-stopInject:
				return
			default:
			}
			if !inPort.Inject(gen.Next()) {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var st health.Status
	if err := waitFor(5*time.Second, func() error {
		code, body := get(base + "/health?window=2s")
		if code != http.StatusOK {
			return fmt.Errorf("/health: got %d, want 200", code)
		}
		st = health.Status{}
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		if st.PPS <= 0 {
			return fmt.Errorf("/health reports pps=%.1f, want > 0", st.PPS)
		}
		return nil
	}); err != nil {
		return err
	}
	slog.Info("traffic visible in health rates", "pps", st.PPS, "state", st.State, "lanes", len(st.Lanes))
	if st.State != "healthy" {
		return fmt.Errorf("state under traffic: got %q (%s), want healthy", st.State, st.Reason)
	}

	// Drive a real in-situ update (add ACL) over the CCM; the
	// drain-and-swap must complete, land in the audit trail, and leave
	// the switch healthy.
	script, err := os.ReadFile(filepath.Join(testdata, "acl.script"))
	if err != nil {
		return err
	}
	loader := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join(testdata, name))
		return string(b), err
	}
	rep, err := ctrl.ApplyUpdate(string(script), loader)
	if err != nil {
		return err
	}
	slog.Info("in-situ update applied", "full", rep.Device.Full,
		"tsps_written", rep.Device.TSPsWritten, "load", rep.LoadTime)

	events, err := cl.EventsDump(0)
	if err != nil {
		return err
	}
	applySeen := false
	for _, ev := range events {
		if ev.Kind == "apply_patch" || ev.Kind == "apply_diff" || ev.Kind == "apply_full" {
			applySeen = true
		}
		if ev.Kind == "health_degraded" || ev.Kind == "health_stalled" {
			return fmt.Errorf("unexpected %s event: %s", ev.Kind, ev.Detail)
		}
	}
	if !applySeen {
		return fmt.Errorf("no apply event in the audit trail after the update (%d events)", len(events))
	}

	// The reconfiguration must read healthy over the CCM too: the op is
	// finished (nothing wedged) and the aggregate state stays healthy
	// through the post-apply anomaly window.
	return waitFor(3*time.Second, func() error {
		hs, err := cl.HealthQuery(2 * time.Second)
		if err != nil {
			return err
		}
		if len(hs.Ops) != 0 {
			return fmt.Errorf("reconfiguration still in flight: %+v", hs.Ops)
		}
		if hs.State != "healthy" {
			return fmt.Errorf("state after update: got %q (%s), want healthy", hs.State, hs.Reason)
		}
		return nil
	})
}

// get fetches a URL, returning the status code and body (0 on transport
// error).
func get(url string) (int, []byte) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// waitFor retries fn until it succeeds or the deadline passes.
func waitFor(d time.Duration, fn func() error) error {
	deadline := time.Now().Add(d)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fatal(err error) {
	slog.Error("health smoke failed", "err", err)
	os.Exit(1)
}
