package main

import (
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/health"
)

// renderStatus formats one health snapshot as the plain-text operator
// view shared by `rp4ctl health` and `rp4ctl top`.
func renderStatus(st *health.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state: %-9s uptime: %-12s window: %s\n",
		strings.ToUpper(st.State),
		time.Duration(st.UptimeNanos).Round(time.Second),
		time.Duration(st.WindowNanos))
	if st.Reason != "" {
		fmt.Fprintf(&b, "reason: %s\n", st.Reason)
	}
	fmt.Fprintf(&b, "pps: %-12.1f drops/s: %-10.1f drop%%: %-7.2f tm_depth: %d\n",
		st.PPS, st.DropPPS, st.DropFraction*100, st.TMDepth)
	if len(st.DropCauses) > 0 {
		causes := make([]string, 0, len(st.DropCauses))
		for k := range st.DropCauses {
			causes = append(causes, k)
		}
		sort.Strings(causes)
		parts := make([]string, 0, len(causes))
		for _, k := range causes {
			parts = append(parts, fmt.Sprintf("%s=%.1f/s", k, st.DropCauses[k]))
		}
		fmt.Fprintf(&b, "drop causes: %s\n", strings.Join(parts, "  "))
	}
	if st.Latency != nil && st.Latency.Count > 0 {
		fmt.Fprintf(&b, "tsp latency (sampled): p50=%.3fus p90=%.3fus p99=%.3fus n=%d\n",
			st.Latency.P50/1e3, st.Latency.P90/1e3, st.Latency.P99/1e3, st.Latency.Count)
	}
	if len(st.Lanes) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-8s %12s %10s %12s\n", "LANE", "STATE", "HEARTBEAT", "PENDING", "RATE/S")
		for _, l := range st.Lanes {
			state := l.State
			if l.State == "stalled" {
				state = "STALLED"
			}
			fmt.Fprintf(&b, "%-12s %-8s %12d %10d %12.1f\n",
				l.Name, state, l.Heartbeat, l.Pending, l.RatePPS)
		}
	}
	for _, op := range st.Ops {
		tag := "in progress"
		if op.Wedged {
			tag = "WEDGED"
		}
		fmt.Fprintf(&b, "\nreconfig %s cfg=%s age=%s [%s]\n",
			op.Kind, op.ConfigHash, time.Duration(op.AgeNanos).Round(time.Millisecond), tag)
	}
	if ev := st.LastEvent; ev != nil {
		line := fmt.Sprintf("\nlast event: #%d %s", ev.Seq, ev.Kind)
		if ev.ConfigHash != "" {
			line += " cfg=" + ev.ConfigHash
		}
		if ev.Hitless {
			line += fmt.Sprintf(" epoch=%d hitless", ev.Epoch)
		} else if ev.DrainNanos > 0 {
			line += fmt.Sprintf(" drain=%.3fms", float64(ev.DrainNanos)/1e6)
		}
		if ev.Detail != "" {
			line += " (" + ev.Detail + ")"
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// top refreshes the operator view in place until interrupted. It
// re-dials the device after a transport error so a restarting switch
// comes back into view on its own.
func top(addr string, cl *ctrlplane.Client, interval, window time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := cl.HealthQuery(window)
		// \x1b[H\x1b[2J homes the cursor and clears the screen: a live
		// refreshing view with no TUI dependency.
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("rp4ctl top — %s — %s (refresh %s, ctrl-c to quit)\n\n",
			addr, time.Now().Format("15:04:05"), interval)
		switch {
		case err != nil:
			fmt.Printf("unreachable: %v\nre-dialing...\n", err)
			cl.Close()
			if ncl, derr := ctrlplane.Dial(addr, 2*time.Second); derr == nil {
				cl = ncl
			}
		case st == nil:
			fmt.Println("device reports no health layer")
		default:
			fmt.Print(renderStatus(st))
			// Heavy-hitter pane; devices without flow accounting (or
			// with it disabled) just skip it.
			if hh, herr := cl.HHDump(5); herr == nil && len(hh) > 0 {
				fmt.Println("\nheavy hitters:")
				fmt.Print(renderHitters(hh))
			}
			// Drops-by-reason pane from the attributed drop counters;
			// silent until the first loss, like the causes line above.
			if points, merr := cl.MetricsDump(); merr == nil {
				if pane := renderDropReasons(points); pane != "" {
					fmt.Println("\ndrops by reason (total):")
					fmt.Print(pane)
				}
			}
			if recs, derr := cl.DropDump(3); derr == nil && len(recs) > 0 {
				fmt.Println("\nlatest sampled drops:")
				fmt.Print(renderDrops(recs))
			}
		}
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}
