package main

import (
	"fmt"
	"strings"
	"time"

	"ipsa/internal/flowstat"
)

// tupleString renders a flow's five-tuple, degrading to the hash when
// the packet never parsed as IP (the accounting still counted it).
func tupleString(src, dst string, proto uint8, sport, dport uint16, hash string) string {
	if src == "" {
		return "hash:" + hash
	}
	p := protoName(proto)
	if sport == 0 && dport == 0 {
		return fmt.Sprintf("%s %s -> %s", p, src, dst)
	}
	return fmt.Sprintf("%s %s:%d -> %s:%d", p, src, sport, dst, dport)
}

func protoName(proto uint8) string {
	switch proto {
	case 1:
		return "icmp"
	case 6:
		return "tcp"
	case 17:
		return "udp"
	case 58:
		return "icmp6"
	}
	return fmt.Sprintf("proto%d", proto)
}

// renderFlows formats flow records (active dumps or exported records) as
// the plain-text table shared by `rp4ctl flows` and the top view.
func renderFlows(recs []flowstat.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-44s %10s %12s %10s %9s %-9s %s\n",
		"LANE", "FLOW", "PKTS", "BYTES", "AGE", "LATENCY", "VERDICT", "REASON")
	for _, r := range recs {
		lat := "-"
		if r.LatSamples > 0 {
			lat = fmt.Sprintf("%.1fus", float64(r.LatAvgNanos)/1e3)
		}
		fmt.Fprintf(&b, "%-4d %-44s %10d %12d %10s %9s %-9s %s\n",
			r.Lane,
			tupleString(r.Src, r.Dst, r.Proto, r.SrcPort, r.DstPort, r.Hash),
			r.Packets, r.Bytes,
			time.Duration(r.AgeNanos).Round(time.Millisecond),
			lat, r.Verdict, r.Reason)
	}
	return b.String()
}

// renderHitters formats a heavy-hitter dump; estimates carry their
// overestimation bound so operators can judge confidence.
func renderHitters(hh []flowstat.HeavyHitter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-44s %12s %10s %s\n",
		"LANE", "FLOW", "EST_PKTS", "ERR", "STATE")
	for _, h := range hh {
		state := "evicted"
		if h.Live {
			state = "live"
		}
		err := "exact"
		if h.ErrBound > 0 {
			err = fmt.Sprintf("±%d", h.ErrBound)
		}
		fmt.Fprintf(&b, "%-4d %-44s %12d %10s %s\n",
			h.Lane,
			tupleString(h.Src, h.Dst, h.Proto, h.SrcPort, h.DstPort, h.Hash),
			h.Packets, err, state)
	}
	return b.String()
}
