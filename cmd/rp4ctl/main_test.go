package main

import (
	"regexp"
	"strings"
	"testing"

	"ipsa/internal/flowstat"
	"ipsa/internal/telemetry"
)

func TestGrepMetrics(t *testing.T) {
	points := []telemetry.MetricPoint{
		{Name: "ipsa_packets_total", Labels: []telemetry.Label{telemetry.L("verdict", "forwarded")}},
		{Name: "ipsa_packets_total", Labels: []telemetry.Label{telemetry.L("verdict", "dropped")}},
		{Name: "ipsa_flow_active_total"},
		{Name: "ipsa_go_goroutines"},
	}
	cases := []struct {
		pattern string
		want    int
	}{
		{"flow", 1},
		{"^ipsa_packets", 2},
		{`verdict="forwarded"`, 1}, // labels are part of the matched identity
		{"ipsa_", 4},
		{"nomatch", 0},
	}
	for _, c := range cases {
		got := grepMetrics(points, regexp.MustCompile(c.pattern))
		if len(got) != c.want {
			t.Errorf("grep %q matched %d series, want %d", c.pattern, len(got), c.want)
		}
	}
}

func TestMetricID(t *testing.T) {
	p := telemetry.MetricPoint{
		Name:   "ipsa_flow_active",
		Labels: []telemetry.Label{telemetry.L("lane", "3")},
	}
	if got := metricID(p); got != `ipsa_flow_active{lane="3"}` {
		t.Errorf("metricID = %q", got)
	}
	if got := metricID(telemetry.MetricPoint{Name: "up"}); got != "up" {
		t.Errorf("metricID = %q", got)
	}
}

func TestTupleString(t *testing.T) {
	if got := tupleString("10.0.0.1", "10.1.0.1", 6, 1234, 80, "x"); got != "tcp 10.0.0.1:1234 -> 10.1.0.1:80" {
		t.Errorf("tupleString = %q", got)
	}
	if got := tupleString("", "", 0, 0, 0, "00ff"); got != "hash:00ff" {
		t.Errorf("non-IP tupleString = %q", got)
	}
	if got := tupleString("2001:db8::1", "2001:db8::2", 58, 0, 0, ""); got != "icmp6 2001:db8::1 -> 2001:db8::2" {
		t.Errorf("portless tupleString = %q", got)
	}
}

func TestRenderHitters(t *testing.T) {
	out := renderHitters([]flowstat.HeavyHitter{
		{Hash: "abc", Lane: 1, Src: "10.0.0.1", Dst: "10.1.0.1", Proto: 17,
			SrcPort: 53, DstPort: 53, Packets: 99, ErrBound: 3, Live: true},
	})
	for _, want := range []string{"udp 10.0.0.1:53 -> 10.1.0.1:53", "99", "±3", "live"} {
		if !strings.Contains(out, want) {
			t.Errorf("renderHitters output missing %q:\n%s", want, out)
		}
	}
}
