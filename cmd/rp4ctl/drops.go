package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ipsa/internal/telemetry"
)

// renderDrops formats sampled drop-capture records (newest first) as the
// plain-text table shared by `rp4ctl drops` and the top view. The header
// prefix prints as hex so an operator can eyeball addresses without a
// pcap round trip.
func renderDrops(recs []telemetry.DropRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-11s %-5s %-5s %-6s %6s  %s\n",
		"SEQ", "AGE", "REASON", "IN", "OUT", "EPOCH", "BYTES", "HDR")
	for _, r := range recs {
		reason := r.Reason
		if r.Reason == "acl" && r.TSP >= 0 {
			reason = fmt.Sprintf("acl@tsp%d", r.TSP)
		}
		out := "-"
		if r.OutPort >= 0 {
			out = fmt.Sprintf("%d", r.OutPort)
		}
		epoch := "-"
		if r.Epoch > 0 {
			epoch = fmt.Sprintf("%d", r.Epoch)
		}
		fmt.Fprintf(&b, "%-6d %-12s %-11s %-5d %-5s %-6s %6d  %s\n",
			r.Seq, time.Duration(r.Nanos).Round(time.Millisecond),
			reason, r.InPort, out, epoch, r.Bytes, hexPrefix(r.Hdr, 32))
	}
	return b.String()
}

// hexPrefix renders up to max bytes as space-grouped hex pairs, with an
// ellipsis when the capture holds more.
func hexPrefix(b []byte, max int) string {
	trunc := len(b) > max
	if trunc {
		b = b[:max]
	}
	var s strings.Builder
	for i, c := range b {
		if i > 0 && i%4 == 0 {
			s.WriteByte(' ')
		}
		fmt.Fprintf(&s, "%02x", c)
	}
	if trunc {
		s.WriteString("..")
	}
	return s.String()
}

// renderDropReasons aggregates the attributed drop counters
// (ipsa_drop_total{reason,stage}) from a metrics dump into a
// reason-by-stage breakdown, largest first. Empty when nothing has
// dropped yet.
func renderDropReasons(points []telemetry.MetricPoint) string {
	type row struct {
		reason, stage string
		count         uint64
	}
	var rows []row
	var total uint64
	for _, p := range points {
		if p.Name != "ipsa_drop_total" || p.Value <= 0 {
			continue
		}
		r := row{count: uint64(p.Value)}
		for _, l := range p.Labels {
			switch l.Key {
			case "reason":
				r.reason = l.Value
			case "stage":
				r.stage = l.Value
			}
		}
		rows = append(rows, r)
		total += r.count
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		if rows[i].reason != rows[j].reason {
			return rows[i].reason < rows[j].reason
		}
		return rows[i].stage < rows[j].stage
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %12s %7s\n", "REASON", "STAGE", "DROPS", "SHARE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8s %12d %6.1f%%\n",
			r.reason, r.stage, r.count, 100*float64(r.count)/float64(total))
	}
	return b.String()
}
