// rp4ctl is the controller CLI: it talks to a running switch's control
// channel to load configurations, write table entries and read state —
// the command-line interface the paper's controller exposes for loading
// and offloading functions at runtime.
//
// Usage:
//
//	rp4ctl -addr 127.0.0.1:9901 ping
//	rp4ctl -addr ... apply config.json
//	rp4ctl -addr ... edit script.json
//	rp4ctl -addr ... tables
//	rp4ctl -addr ... stats
//	rp4ctl -addr ... metrics [-grep pattern]
//	rp4ctl -addr ... trace [max]
//	rp4ctl -addr ... flows [records] [max]
//	rp4ctl -addr ... hh [max]
//	rp4ctl -addr ... drops [max]
//	rp4ctl -addr ... health [window]
//	rp4ctl -addr ... top [interval]
//	rp4ctl -addr ... table-stats <table>
//	rp4ctl -addr ... read-register <name> <index>
//	rp4ctl -addr ... insert <table> <tag> key=<v>[,<v>...] [params=<v>,...] [prefix=<n>] [prio=<n>]
//	rp4ctl -addr ... add-member <table> <tag> group=<v> [params=<v>,...]
//
// Values are Go-syntax integers (0x.. hex ok); 16-byte values (IPv6
// addresses) are given as 32 hex digits.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// metricID renders a point's identity — name{label="v",...} — the text
// both printing and -grep filtering run against.
func metricID(p telemetry.MetricPoint) string {
	var labels []string
	for _, l := range p.Labels {
		labels = append(labels, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	name := p.Name
	if len(labels) > 0 {
		name += "{" + strings.Join(labels, ",") + "}"
	}
	return name
}

// grepMetrics keeps the points whose rendered identity matches re.
func grepMetrics(points []telemetry.MetricPoint, re *regexp.Regexp) []telemetry.MetricPoint {
	var out []telemetry.MetricPoint
	for _, p := range points {
		if re.MatchString(metricID(p)) {
			out = append(out, p)
		}
	}
	return out
}

// printMetric renders one metrics-dump point, indented for grouping.
func printMetric(p telemetry.MetricPoint, indent string) {
	name := metricID(p)
	if p.Kind == "histogram" {
		line := fmt.Sprintf("%s%s count=%d sum=%.3fms", indent, name, p.Count, float64(p.SumNanos)/1e6)
		for _, q := range p.Quantiles {
			line += fmt.Sprintf(" p%g=%.3fms", q.Quantile*100, q.Nanos/1e6)
		}
		fmt.Println(line)
	} else {
		fmt.Printf("%s%s %g\n", indent, name, p.Value)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9901", "device control channel address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cl, err := ctrlplane.Dial(*addr, 3*time.Second)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	switch args[0] {
	case "ping":
		if err := cl.Ping(); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "apply":
		need(args, 2)
		b, err := os.ReadFile(args[1])
		if err != nil {
			fatal(err)
		}
		cfg, err := template.Unmarshal(b)
		if err != nil {
			fatal(err)
		}
		st, err := cl.ApplyConfig(cfg)
		if err != nil {
			fatal(err)
		}
		printApply(st)
	case "tables":
		tables, err := cl.ListTables()
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			kind := t.Kind
			if t.Selector {
				kind += "/selector"
			}
			fmt.Printf("%-20s %-14s key=%-4db size=%-6d entries=%d\n",
				t.Name, kind, t.KeyWidth, t.Size, t.Entries)
		}
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("processed=%d dropped=%d to_cpu=%d active_tsps=%d template_loads=%d stall=%.3fms\n",
			st.Processed, st.Dropped, st.ToCPU, st.ActiveTSPs, st.TemplateLoads,
			float64(st.StallNanos)/1e6)
		for _, p := range st.Ports {
			fmt.Printf("port %-3d rx=%-8d tx=%-8d rx_drops=%-6d tx_drops=%d\n",
				p.Port, p.Received, p.Sent, p.RxDrops, p.TxDrops)
		}
	case "metrics":
		var re *regexp.Regexp
		if len(args) > 1 {
			if args[1] != "-grep" || len(args) < 3 {
				usage()
			}
			var err error
			if re, err = regexp.Compile(args[2]); err != nil {
				fatal(fmt.Errorf("bad -grep pattern: %w", err))
			}
		}
		points, err := cl.MetricsDump()
		if err != nil {
			fatal(err)
		}
		if re != nil {
			points = grepMetrics(points, re)
		}
		// Shard-labelled series render grouped per shard after the
		// switch-wide series, so the per-lane view reads as one block.
		shardOf := func(p telemetry.MetricPoint) (string, bool) {
			for _, l := range p.Labels {
				if l.Key == "shard" {
					return l.Value, true
				}
			}
			return "", false
		}
		byShard := make(map[string][]telemetry.MetricPoint)
		var shardOrder []string
		for _, p := range points {
			if sv, ok := shardOf(p); ok {
				if _, seen := byShard[sv]; !seen {
					shardOrder = append(shardOrder, sv)
				}
				byShard[sv] = append(byShard[sv], p)
				continue
			}
			printMetric(p, "")
		}
		sort.Slice(shardOrder, func(i, j int) bool {
			a, _ := strconv.Atoi(shardOrder[i])
			b, _ := strconv.Atoi(shardOrder[j])
			return a < b
		})
		for _, sv := range shardOrder {
			fmt.Printf("shard %s:\n", sv)
			for _, p := range byShard[sv] {
				printMetric(p, "  ")
			}
		}
	case "trace":
		max := 0
		if len(args) > 1 {
			var err error
			if max, err = strconv.Atoi(args[1]); err != nil {
				fatal(fmt.Errorf("bad max %q", args[1]))
			}
		}
		traces, err := cl.TraceDump(max)
		if err != nil {
			fatal(err)
		}
		for _, tr := range traces {
			head := fmt.Sprintf("#%d in=%d out=%d bytes=%d verdict=%s",
				tr.Seq, tr.InPort, tr.OutPort, tr.Bytes, tr.Verdict)
			if tr.Epoch > 0 {
				head += fmt.Sprintf(" epoch=%d", tr.Epoch)
			}
			fmt.Println(head)
			for _, h := range tr.Headers {
				fmt.Printf("  hdr %-14s off=%-4d len=%d\n", h.Name, h.Off, h.Len)
			}
			for _, st := range tr.Stages {
				line := fmt.Sprintf("  tsp%d/%s", st.TSP, st.Stage)
				if st.Applied {
					outcome := "miss"
					if st.Hit {
						outcome = fmt.Sprintf("hit tag=%d", st.Tag)
					}
					line += fmt.Sprintf(" table=%s %s", st.Table, outcome)
				}
				if st.Action != "" {
					line += " action=" + st.Action
					if st.Default {
						line += " (default)"
					}
				}
				fmt.Println(line)
			}
		}
	case "flows":
		rest := args[1:]
		records := false
		if len(rest) > 0 && rest[0] == "records" {
			records = true
			rest = rest[1:]
		}
		max := 0
		if len(rest) > 0 {
			var err error
			if max, err = strconv.Atoi(rest[0]); err != nil {
				fatal(fmt.Errorf("bad max %q", rest[0]))
			}
		}
		var recs []flowstat.Record
		var err error
		if records {
			recs, err = cl.FlowRecords(max)
		} else {
			recs, err = cl.FlowDump(max)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(renderFlows(recs))
	case "hh":
		max := 0
		if len(args) > 1 {
			var err error
			if max, err = strconv.Atoi(args[1]); err != nil {
				fatal(fmt.Errorf("bad max %q", args[1]))
			}
		}
		hh, err := cl.HHDump(max)
		if err != nil {
			fatal(err)
		}
		fmt.Print(renderHitters(hh))
	case "drops":
		max := 0
		if len(args) > 1 {
			var err error
			if max, err = strconv.Atoi(args[1]); err != nil {
				fatal(fmt.Errorf("bad max %q", args[1]))
			}
		}
		recs, err := cl.DropDump(max)
		if err != nil {
			fatal(err)
		}
		fmt.Print(renderDrops(recs))
	case "int":
		need(args, 2)
		switch args[1] {
		case "enable":
			if err := cl.IntEnable(); err != nil {
				fatal(err)
			}
			fmt.Println("ok")
		case "disable":
			if err := cl.IntDisable(); err != nil {
				fatal(err)
			}
			fmt.Println("ok")
		case "report":
			max := 0
			if len(args) > 2 {
				var err error
				if max, err = strconv.Atoi(args[2]); err != nil {
					fatal(fmt.Errorf("bad max %q", args[2]))
				}
			}
			reports, err := cl.IntReport(max)
			if err != nil {
				fatal(err)
			}
			for _, r := range reports {
				fmt.Printf("#%d in=%d out=%d bytes=%d path=%s\n",
					r.Seq, r.InPort, r.OutPort, r.Bytes, r.Path())
				for _, h := range r.Hops {
					stage := h.Stage
					if stage == "" {
						stage = fmt.Sprintf("stage#%04x", h.StageID)
					}
					fmt.Printf("  sw%d tsp%d %-16s latency=%-8s qdepth=%d\n",
						h.SwitchID, h.TSP, stage,
						fmt.Sprintf("%.3fus", float64(h.LatencyNanos)/1e3), h.QDepth)
				}
			}
		default:
			usage()
		}
	case "events":
		max := 0
		if len(args) > 1 {
			var err error
			if max, err = strconv.Atoi(args[1]); err != nil {
				fatal(fmt.Errorf("bad max %q", args[1]))
			}
		}
		events, err := cl.EventsDump(max)
		if err != nil {
			fatal(err)
		}
		for _, ev := range events {
			line := fmt.Sprintf("#%d %s", ev.Seq, ev.Kind)
			if ev.ConfigHash != "" {
				line += " cfg=" + ev.ConfigHash
			}
			if ev.Epoch > 0 {
				line += fmt.Sprintf(" epoch=%d", ev.Epoch)
			}
			if ev.TSPsWritten > 0 {
				line += fmt.Sprintf(" tsps=%d", ev.TSPsWritten)
			}
			if ev.TablesCreated > 0 || ev.TablesDropped > 0 {
				line += fmt.Sprintf(" tables=+%d/-%d", ev.TablesCreated, ev.TablesDropped)
			}
			if ev.StagesRecompiled > 0 || ev.StagesReused > 0 {
				line += fmt.Sprintf(" stages=%d+%d_reused", ev.StagesRecompiled, ev.StagesReused)
			}
			if ev.Hitless {
				line += " hitless"
			} else if ev.DrainNanos > 0 {
				line += fmt.Sprintf(" drain=%.3fms", float64(ev.DrainNanos)/1e6)
			}
			if ev.InFlight > 0 {
				line += fmt.Sprintf(" in_flight=%d", ev.InFlight)
			}
			if len(ev.VerdictDeltas) > 0 {
				var parts []string
				for k, v := range ev.VerdictDeltas {
					parts = append(parts, fmt.Sprintf("%s+%d", k, v))
				}
				line += " during_swap=" + strings.Join(parts, ",")
			}
			if ev.Detail != "" {
				line += " (" + ev.Detail + ")"
			}
			fmt.Println(line)
		}
	case "edit":
		need(args, 2)
		if args[1] == "abort" {
			if err := cl.EditAbort(); err != nil {
				fatal(err)
			}
			fmt.Println("aborted")
			break
		}
		b, err := os.ReadFile(args[1])
		if err != nil {
			fatal(err)
		}
		var ops []ctrlplane.EditOp
		if err := json.Unmarshal(b, &ops); err != nil {
			fatal(fmt.Errorf("edit script %s: %w", args[1], err))
		}
		if len(ops) == 0 {
			fatal(fmt.Errorf("edit script %s has no ops", args[1]))
		}
		if err := cl.EditBegin(); err != nil {
			fatal(err)
		}
		for i, op := range ops {
			if err := cl.EditApply(op); err != nil {
				_ = cl.EditAbort()
				fatal(fmt.Errorf("op %d (%s): %w (transaction aborted)", i, op.Kind, err))
			}
		}
		st, err := cl.EditCommit()
		if err != nil {
			_ = cl.EditAbort()
			fatal(fmt.Errorf("commit: %w (transaction aborted)", err))
		}
		fmt.Printf("committed %d ops\n", st.Ops)
		if st.Apply != nil {
			printApply(st.Apply)
		}
	case "health":
		window := time.Duration(0)
		if len(args) > 1 {
			var err error
			if window, err = time.ParseDuration(args[1]); err != nil {
				fatal(fmt.Errorf("bad window %q: %w", args[1], err))
			}
		}
		st, err := cl.HealthQuery(window)
		if err != nil {
			fatal(err)
		}
		fmt.Print(renderStatus(st))
	case "top":
		interval := time.Second
		if len(args) > 1 {
			var err error
			if interval, err = time.ParseDuration(args[1]); err != nil {
				fatal(fmt.Errorf("bad interval %q: %w", args[1], err))
			}
		}
		top(*addr, cl, interval, 0)
	case "table-stats":
		need(args, 2)
		st, err := cl.TableStats(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hits=%d misses=%d\n", st.Hits, st.Misses)
	case "read-register":
		need(args, 3)
		idx, err := strconv.ParseUint(args[2], 0, 64)
		if err != nil {
			fatal(err)
		}
		v, err := cl.ReadRegister(args[1], idx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(v)
	case "delete":
		need(args, 3)
		h, err := strconv.Atoi(args[2])
		if err != nil {
			fatal(err)
		}
		if err := cl.DeleteEntry(args[1], h); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "insert":
		need(args, 4)
		req, err := parseEntry(args[1:])
		if err != nil {
			fatal(err)
		}
		h, err := cl.InsertEntry(*req)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("handle=%d\n", h)
	case "add-member":
		need(args, 4)
		m, err := parseMember(args[1:])
		if err != nil {
			fatal(err)
		}
		if err := cl.AddMember(*m); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	default:
		usage()
	}
}

// printApply renders apply/commit stats: epoch bookkeeping on the
// hitless path, load (drain) time on the legacy path.
func printApply(st *ctrlplane.ApplyStats) {
	line := fmt.Sprintf("applied: full=%v tsps_written=%d tables +%d -%d",
		st.Full, st.TSPsWritten, st.TablesCreated, st.TablesDropped)
	if st.Hitless {
		line += fmt.Sprintf(" epoch=%d stages=%d+%d_reused hitless load=%.2fms",
			st.Epoch, st.StagesRecompiled, st.StagesReused, float64(st.LoadNanos)/1e6)
	} else {
		line += fmt.Sprintf(" load=%.2fms", float64(st.LoadNanos)/1e6)
	}
	fmt.Println(line)
}

func parseValues(s string) ([]ctrlplane.FieldValue, error) {
	var out []ctrlplane.FieldValue
	for _, part := range strings.Split(s, ",") {
		fv, err := parseValue(part)
		if err != nil {
			return nil, err
		}
		out = append(out, fv)
	}
	return out, nil
}

func parseValue(s string) (ctrlplane.FieldValue, error) {
	s = strings.TrimSpace(s)
	// 32 hex digits = a 16-byte field.
	if len(s) == 32 {
		if b, err := hex.DecodeString(s); err == nil {
			return ctrlplane.FieldValue{Bytes: b}, nil
		}
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return ctrlplane.FieldValue{}, fmt.Errorf("bad value %q: %w", s, err)
	}
	return ctrlplane.FieldValue{Value: v}, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseEntry(args []string) (*ctrlplane.EntryReq, error) {
	tag, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, fmt.Errorf("bad tag %q", args[1])
	}
	req := &ctrlplane.EntryReq{Table: args[0], Tag: tag}
	for _, kv := range args[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", kv)
		}
		switch k {
		case "key":
			req.Keys, err = parseValues(v)
		case "params":
			req.Params, err = parseUints(v)
		case "prefix":
			req.PrefixLen, err = strconv.Atoi(v)
		case "prio":
			req.Priority, err = strconv.Atoi(v)
		case "high":
			req.High, err = parseValues(v)
		default:
			return nil, fmt.Errorf("unknown option %q", k)
		}
		if err != nil {
			return nil, err
		}
	}
	return req, nil
}

func parseMember(args []string) (*ctrlplane.MemberReq, error) {
	tag, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, fmt.Errorf("bad tag %q", args[1])
	}
	req := &ctrlplane.MemberReq{Table: args[0], Tag: tag}
	for _, kv := range args[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", kv)
		}
		switch k {
		case "group":
			fv, err := parseValue(v)
			if err != nil {
				return nil, err
			}
			req.Group = fv
		case "params":
			req.Params, err = parseUints(v)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown option %q", k)
		}
	}
	return req, nil
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rp4ctl -addr HOST:PORT COMMAND
commands:
  ping
  apply CONFIG.json
  tables
  stats
  metrics [-grep PATTERN]
  trace [MAX]
  flows [MAX]             active flows, largest first
  flows records [MAX]     exported flow records (completed flows), oldest first
  hh [MAX]                estimated heavy hitters (live + evicted mass)
  drops [MAX]             sampled drop captures, newest first (reason, drop point, header hex)
  int enable|disable
  int report [MAX]
  events [MAX]
  edit SCRIPT.json        apply an edit script (JSON array of ops) as one hitless commit
  edit abort              discard a stuck open transaction
  health [WINDOW]         one-shot self-diagnosis snapshot (e.g. health 30s)
  top [INTERVAL]          live refreshing operator view (default 1s refresh)
  table-stats TABLE
  read-register NAME INDEX
  insert TABLE TAG key=V[,V...] [params=V,...] [prefix=N] [prio=N] [high=V,...]
  delete TABLE HANDLE
  add-member TABLE TAG group=V [params=V,...]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rp4ctl:", err)
	os.Exit(1)
}
