package main

import (
	"strings"
	"testing"
)

func TestParseFoldsRepeatedRuns(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkHotPath_Fused/C1-8   	   40000	      1024 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPath_Fused/C1-8   	   40000	       961.5 ns/op	      16 B/op	       1 allocs/op
BenchmarkReconfigStormHitless-8
    some mid-benchmark log line
   50000	      2100 ns/op	         0 drops	         0 stall_ms
ok  	ipsa	1.659s
`)
	got, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	fused, ok := got["BenchmarkHotPath_Fused/C1"]
	if !ok {
		t.Fatalf("parse missed the fused benchmark: %v", got)
	}
	// Pessimistic fold: min ns/op, max allocs/op.
	if fused.NsOp != 961.5 || fused.AllocsOp != 1 || fused.BytesOp != 16 {
		t.Errorf("fold = %+v, want ns 961.5 allocs 1 bytes 16", fused)
	}
	storm, ok := got["BenchmarkReconfigStormHitless"]
	if !ok {
		t.Fatalf("parse lost the split result line: %v", got)
	}
	if storm.Extra["drops"] != 0 || storm.Extra["stall_ms"] != 0 {
		t.Errorf("custom metrics = %v, want zero drops and stall_ms", storm.Extra)
	}
}

func TestCheckBaselineMissingKeysAggregated(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkHotPath_Compiled/C1": {NsOp: 1000},
		"BenchmarkHotPath_Fused/C1":    {NsOp: 900},
		"BenchmarkHotPath_Fused/C2":    {NsOp: 1100},
	}}
	current := map[string]Result{
		"BenchmarkHotPath_Compiled/C1": {NsOp: 1010},
	}
	var out strings.Builder
	failures := checkBaseline(&out, base, current, 2.0)
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (one per missing key)\n%s", failures, out.String())
	}
	report := out.String()
	// One aggregated line names every missing key, so a narrowed -bench
	// regex is diagnosed in a single run.
	if !strings.Contains(report, "baseline keys missing from this run: BenchmarkHotPath_Fused/C1, BenchmarkHotPath_Fused/C2") {
		t.Errorf("missing-keys report not aggregated:\n%s", report)
	}
	if !strings.Contains(report, "re-record the baseline") {
		t.Errorf("missing-keys report lacks the repair hint:\n%s", report)
	}
}

func TestCheckBaselineThresholds(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsOp: 1000, AllocsOp: 0, Extra: map[string]float64{"drops": 0}},
	}}
	cases := []struct {
		name     string
		current  Result
		failures int
	}{
		{"within-bounds", Result{NsOp: 2500}, 0},
		{"ns-over-tol", Result{NsOp: 3500}, 1},
		{"alloc-regression", Result{NsOp: 1000, AllocsOp: 1}, 1},
		{"zero-invariant", Result{NsOp: 1000, Extra: map[string]float64{"drops": 3}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			got := checkBaseline(&out, base, map[string]Result{"BenchmarkA": tc.current}, 2.0)
			if got != tc.failures {
				t.Errorf("failures = %d, want %d\n%s", got, tc.failures, out.String())
			}
		})
	}
}

func TestParseSpeedup(t *testing.T) {
	req, err := parseSpeedup("BenchmarkHotPath_Fused=BenchmarkHotPath_Interp:1.25")
	if err != nil {
		t.Fatal(err)
	}
	if req.newName != "BenchmarkHotPath_Fused" || req.oldName != "BenchmarkHotPath_Interp" || req.min != 1.25 {
		t.Errorf("parseSpeedup = %+v", req)
	}
	for _, bad := range []string{"", "A=B", "A:1.5", "=B:1.5", "A=:1.5", "A=B:", "A=B:-1", "A=B:zero"} {
		if _, err := parseSpeedup(bad); err == nil {
			t.Errorf("parseSpeedup(%q) accepted invalid input", bad)
		}
	}
}

func TestCheckSpeedups(t *testing.T) {
	reqs := []speedupReq{{newName: "Fused", oldName: "Interp", min: 1.25}}
	run := func(current map[string]Result) (int, string) {
		var out strings.Builder
		n := checkSpeedups(&out, current, reqs)
		return n, out.String()
	}

	if n, out := run(map[string]Result{
		"Interp/C1": {NsOp: 1500}, "Fused/C1": {NsOp: 1000},
		"Interp/C2": {NsOp: 2000}, "Fused/C2": {NsOp: 1200},
	}); n != 0 {
		t.Errorf("passing ratios reported %d failures:\n%s", n, out)
	}

	if n, out := run(map[string]Result{
		"Interp/C1": {NsOp: 1200}, "Fused/C1": {NsOp: 1000}, // 1.2x < 1.25x
	}); n != 1 || !strings.Contains(out, "need >= 1.25x") {
		t.Errorf("slow ratio not caught (failures=%d):\n%s", n, out)
	}

	// A matched old benchmark with no new counterpart fails.
	if n, out := run(map[string]Result{"Interp/C1": {NsOp: 1500}}); n != 1 || !strings.Contains(out, "not in this run") {
		t.Errorf("missing counterpart not caught (failures=%d):\n%s", n, out)
	}

	// A requirement matching nothing is a broken gate, not a pass.
	if n, out := run(map[string]Result{"Other": {NsOp: 1}}); n != 1 || !strings.Contains(out, "no benchmark named") {
		t.Errorf("no-match requirement not caught (failures=%d):\n%s", n, out)
	}
}
