// benchgate is the benchmark regression gate: it parses `go test -bench`
// output from stdin and either records a JSON baseline (-write) or
// compares against a committed one (-check), failing on regression.
//
// Two thresholds with different strictness, because they have different
// portability:
//
//   - allocs/op is machine-independent: any increase over the baseline is
//     a hard failure (the hot path's zero-allocation steady state is a
//     correctness property here, not a tuning detail);
//   - ns/op depends on the host, so the gate only fails when the current
//     number exceeds baseline*(1+tol) — with a tolerance wide enough to
//     absorb machine-to-machine variance while still catching order-of
//     magnitude regressions (a slipped lock, an accidental O(n) scan);
//   - custom metrics (b.ReportMetric) whose baseline value is exactly 0
//     are strict: any nonzero current value is a hard failure. A zero in
//     the baseline records an invariant ("the hitless storm drops no
//     packets and never stalls the pipeline"), not a measurement, so
//     there is no variance to tolerate. Nonzero custom metrics are
//     informational only.
//
// Repeated runs of one benchmark (-count=N) are folded by taking the
// minimum ns/op and the per-key maximum of allocs/op and custom metrics
// (the pessimistic fold: one bad run out of five still fails a strict
// gate).
//
// Usage:
//
//	go test -run xxx -bench BenchmarkHotPath -benchmem -count=5 . | benchgate -write BENCH_hotpath.json
//	go test -run xxx -bench BenchmarkHotPath -benchmem -count=5 . | benchgate -check BENCH_hotpath.json -tol 2.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's folded measurement.
type Result struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	BytesOp  float64            `json:"bytes_op"`
	Extra    map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

// Baseline is the committed JSON document.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// procSuffix strips the trailing -GOMAXPROCS from a benchmark name so
// baselines recorded on different core counts compare by logical name.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	write := flag.String("write", "", "record a baseline to this file from stdin")
	check := flag.String("check", "", "compare stdin against this baseline file")
	tol := flag.Float64("tol", 2.0, "allowed ns/op slack: fail above baseline*(1+tol)")
	note := flag.String("note", "", "free-form note stored in a written baseline")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -write or -check is required")
		os.Exit(2)
	}

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *write != "" {
		doc := Baseline{Note: *note, Benchmarks: current}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *write)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad baseline %s: %v\n", *check, err)
		os.Exit(2)
	}

	failures := 0
	checked := 0
	for name, want := range base.Benchmarks {
		got, ok := current[name]
		if !ok {
			fmt.Printf("MISSING %s: in baseline but not in this run\n", name)
			failures++
			continue
		}
		checked++
		status := "ok"
		if got.AllocsOp > want.AllocsOp {
			status = "FAIL"
			fmt.Printf("FAIL %s: allocs/op %.0f > baseline %.0f (allocation regressions are hard failures)\n",
				name, got.AllocsOp, want.AllocsOp)
			failures++
		}
		if limit := want.NsOp * (1 + *tol); got.NsOp > limit {
			status = "FAIL"
			fmt.Printf("FAIL %s: ns/op %.1f > %.1f (baseline %.1f, tol %.0f%%)\n",
				name, got.NsOp, limit, want.NsOp, *tol*100)
			failures++
		}
		for _, key := range sortedKeys(want.Extra) {
			if want.Extra[key] != 0 {
				continue // nonzero custom metrics are informational
			}
			if got.Extra[key] != 0 {
				status = "FAIL"
				fmt.Printf("FAIL %s: %s %.1f violates the baseline's zero invariant\n",
					name, key, got.Extra[key])
				failures++
			}
		}
		if status == "ok" {
			fmt.Printf("ok   %s: ns/op %.1f (baseline %.1f, %+.1f%%), allocs/op %.0f\n",
				name, got.NsOp, want.NsOp, 100*(got.NsOp-want.NsOp)/want.NsOp, got.AllocsOp)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d failure(s) across %d baseline benchmark(s)\n", failures, len(base.Benchmarks))
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within bounds\n", checked)
}

// parse folds `go test -bench` output into per-name Results, taking the
// minimum over repeated runs of the same benchmark.
//
// `go test` merges the test binary's stderr into its stdout, so a switch
// that logs during a benchmark splits the result line: the name is
// printed, the log lands mid-line, and the measurements arrive on a later
// line that starts with the iteration count. The parser therefore carries
// a pending name across log noise until its numbers show up.
func parse(f *os.File) (map[string]Result, error) {
	out := make(map[string]Result)
	seen := make(map[string]bool)
	pending := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var name string
		var vals []string // iterations, then "value unit" pairs
		switch {
		case strings.HasPrefix(fields[0], "Benchmark"):
			name = procSuffix.ReplaceAllString(fields[0], "")
			if len(fields) >= 4 && isInt(fields[1]) {
				vals = fields[1:]
			} else {
				pending = name // results were pushed to a later line
				continue
			}
		case pending != "" && len(fields) >= 3 && isInt(fields[0]):
			name = pending
			vals = fields
		default:
			continue
		}
		pending = ""
		r := Result{Extra: map[string]float64{}}
		for i := 1; i+1 < len(vals); i += 2 {
			v, err := strconv.ParseFloat(vals[i], 64)
			if err != nil {
				continue
			}
			switch vals[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				r.Extra[vals[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		if !seen[name] {
			seen[name] = true
			out[name] = r
			continue
		}
		out[name] = foldMin(out[name], r)
	}
	return out, sc.Err()
}

// isInt reports whether s is a plain base-10 integer (an iteration count).
func isInt(s string) bool {
	_, err := strconv.ParseUint(s, 10, 64)
	return err == nil
}

// foldMin keeps the minimum ns/op run and the per-key maximum of
// allocs/op and custom metrics (a single allocating — or dropping —
// run is still a regression worth gating on).
func foldMin(a, b Result) Result {
	if b.NsOp < a.NsOp && b.NsOp > 0 {
		a.NsOp = b.NsOp
	}
	if b.AllocsOp > a.AllocsOp {
		a.AllocsOp = b.AllocsOp
	}
	if b.BytesOp > a.BytesOp {
		a.BytesOp = b.BytesOp
	}
	if len(b.Extra) > 0 && a.Extra == nil {
		a.Extra = map[string]float64{}
	}
	for k, v := range b.Extra {
		if v > a.Extra[k] {
			a.Extra[k] = v
		}
	}
	return a
}

// sortedKeys gives deterministic report ordering for a metric map.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
