// benchgate is the benchmark regression gate: it parses `go test -bench`
// output from stdin and either records a JSON baseline (-write) or
// compares against a committed one (-check), failing on regression.
//
// Two thresholds with different strictness, because they have different
// portability:
//
//   - allocs/op is machine-independent: any increase over the baseline is
//     a hard failure (the hot path's zero-allocation steady state is a
//     correctness property here, not a tuning detail);
//   - ns/op depends on the host, so the gate only fails when the current
//     number exceeds baseline*(1+tol) — with a tolerance wide enough to
//     absorb machine-to-machine variance while still catching order-of
//     magnitude regressions (a slipped lock, an accidental O(n) scan);
//   - custom metrics (b.ReportMetric) whose baseline value is exactly 0
//     are strict: any nonzero current value is a hard failure. A zero in
//     the baseline records an invariant ("the hitless storm drops no
//     packets and never stalls the pipeline"), not a measurement, so
//     there is no variance to tolerate. Nonzero custom metrics are
//     informational only.
//
// A third check class, -speedup, compares two benchmark families within
// the same run, so it is as machine-independent as allocs/op: the host's
// absolute speed cancels out of the ratio. This is how the second-stage
// compiler gate asserts the fused tier's ordering (fused at least as fast
// as the flat-program VM, and decisively faster than the tree
// interpreter) without depending on which box CI happens to land on.
//
// Repeated runs of one benchmark (-count=N) are folded by taking the
// minimum ns/op and the per-key maximum of allocs/op and custom metrics
// (the pessimistic fold: one bad run out of five still fails a strict
// gate).
//
// Usage:
//
//	go test -run xxx -bench BenchmarkHotPath -benchmem -count=5 . | benchgate -write BENCH_hotpath.json
//	go test -run xxx -bench BenchmarkHotPath -benchmem -count=5 . | benchgate -check BENCH_hotpath.json -tol 2.0
//	go test -run xxx -bench 'BenchmarkHotPath_(Interp|Compiled|Fused)$' -benchmem -count=3 . | \
//	  benchgate -check BENCH_hotpath.json -speedup 'BenchmarkHotPath_Fused=BenchmarkHotPath_Interp:1.25'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's folded measurement.
type Result struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	BytesOp  float64            `json:"bytes_op"`
	Extra    map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric units
}

// Baseline is the committed JSON document.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// speedupReq is one -speedup requirement: every benchmark named
// old/<case> in the run must have a new/<case> counterpart whose ns/op is
// at least min times lower.
type speedupReq struct {
	newName string
	oldName string
	min     float64
}

// parseSpeedup parses the -speedup flag syntax NEW=OLD:MIN.
func parseSpeedup(s string) (speedupReq, error) {
	eq := strings.Index(s, "=")
	col := strings.LastIndex(s, ":")
	if eq <= 0 || col <= eq+1 || col == len(s)-1 {
		return speedupReq{}, fmt.Errorf("bad -speedup %q (want NEW=OLD:MIN, e.g. Fused=Interp:1.25)", s)
	}
	min, err := strconv.ParseFloat(s[col+1:], 64)
	if err != nil || min <= 0 {
		return speedupReq{}, fmt.Errorf("bad -speedup ratio in %q: want a positive number", s)
	}
	return speedupReq{newName: s[:eq], oldName: s[eq+1 : col], min: min}, nil
}

// speedupFlags collects repeated -speedup flags.
type speedupFlags []speedupReq

func (f *speedupFlags) String() string { return fmt.Sprint([]speedupReq(*f)) }

func (f *speedupFlags) Set(s string) error {
	req, err := parseSpeedup(s)
	if err != nil {
		return err
	}
	*f = append(*f, req)
	return nil
}

// procSuffix strips the trailing -GOMAXPROCS from a benchmark name so
// baselines recorded on different core counts compare by logical name.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	write := flag.String("write", "", "record a baseline to this file from stdin")
	check := flag.String("check", "", "compare stdin against this baseline file")
	tol := flag.Float64("tol", 2.0, "allowed ns/op slack: fail above baseline*(1+tol)")
	note := flag.String("note", "", "free-form note stored in a written baseline")
	var speedups speedupFlags
	flag.Var(&speedups, "speedup",
		"within-run speedup requirement NEW=OLD:MIN (repeatable); every OLD/<case> benchmark must have a NEW/<case> counterpart at least MIN times faster")
	flag.Parse()
	if (*write == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -write or -check is required")
		os.Exit(2)
	}

	current, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *write != "" {
		doc := Baseline{Note: *note, Benchmarks: current}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *write)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad baseline %s: %v\n", *check, err)
		os.Exit(2)
	}

	failures := checkBaseline(os.Stdout, base, current, *tol)
	failures += checkSpeedups(os.Stdout, current, speedups)
	if failures > 0 {
		fmt.Printf("benchgate: %d failure(s) across %d baseline benchmark(s)\n", failures, len(base.Benchmarks))
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within bounds\n", len(base.Benchmarks))
}

// checkBaseline compares the current run against the committed baseline,
// reporting per-benchmark verdicts to w and returning the failure count.
// Baseline keys absent from the run are aggregated into one error naming
// every missing key, so a narrowed -bench regex or a renamed benchmark
// fails loudly with the full repair list instead of one key per rerun.
func checkBaseline(w io.Writer, base Baseline, current map[string]Result, tol float64) int {
	var missing []string
	failures := 0
	for _, name := range sortedResultKeys(base.Benchmarks) {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		status := "ok"
		if got.AllocsOp > want.AllocsOp {
			status = "FAIL"
			fmt.Fprintf(w, "FAIL %s: allocs/op %.0f > baseline %.0f (allocation regressions are hard failures)\n",
				name, got.AllocsOp, want.AllocsOp)
			failures++
		}
		if limit := want.NsOp * (1 + tol); got.NsOp > limit {
			status = "FAIL"
			fmt.Fprintf(w, "FAIL %s: ns/op %.1f > %.1f (baseline %.1f, tol %.0f%%)\n",
				name, got.NsOp, limit, want.NsOp, tol*100)
			failures++
		}
		for _, key := range sortedKeys(want.Extra) {
			if want.Extra[key] != 0 {
				continue // nonzero custom metrics are informational
			}
			if got.Extra[key] != 0 {
				status = "FAIL"
				fmt.Fprintf(w, "FAIL %s: %s %.1f violates the baseline's zero invariant\n",
					name, key, got.Extra[key])
				failures++
			}
		}
		if status == "ok" {
			fmt.Fprintf(w, "ok   %s: ns/op %.1f (baseline %.1f, %+.1f%%), allocs/op %.0f\n",
				name, got.NsOp, want.NsOp, 100*(got.NsOp-want.NsOp)/want.NsOp, got.AllocsOp)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(w, "FAIL baseline keys missing from this run: %s\n", strings.Join(missing, ", "))
		fmt.Fprintf(w, "     (%d key(s); run the full gated benchmark set, or re-record the baseline with -write if a benchmark was renamed or removed)\n",
			len(missing))
		failures += len(missing)
	}
	return failures
}

// checkSpeedups enforces -speedup requirements against the current run
// only: for each requirement, every old/<case> benchmark must have a
// new/<case> counterpart in the same run at least min times faster. Both
// names being absent is a failure too — a requirement that matches
// nothing is a broken gate, not a pass.
func checkSpeedups(w io.Writer, current map[string]Result, reqs []speedupReq) int {
	failures := 0
	for _, req := range reqs {
		matched := 0
		for _, name := range sortedResultKeys(current) {
			suffix, ok := caseSuffix(name, req.oldName)
			if !ok {
				continue
			}
			matched++
			old := current[name]
			newName := req.newName + suffix
			cur, ok := current[newName]
			if !ok {
				fmt.Fprintf(w, "FAIL speedup %s: %s not in this run (counterpart of %s)\n",
					req.newName, newName, name)
				failures++
				continue
			}
			if old.NsOp <= 0 || cur.NsOp <= 0 {
				fmt.Fprintf(w, "FAIL speedup %s: non-positive ns/op (%s %.1f, %s %.1f)\n",
					req.newName, name, old.NsOp, newName, cur.NsOp)
				failures++
				continue
			}
			ratio := old.NsOp / cur.NsOp
			if ratio < req.min {
				fmt.Fprintf(w, "FAIL speedup %s/%s: %.2fx vs %s (%.1f / %.1f ns/op), need >= %.2fx\n",
					req.newName, strings.TrimPrefix(suffix, "/"), ratio, req.oldName, old.NsOp, cur.NsOp, req.min)
				failures++
				continue
			}
			fmt.Fprintf(w, "ok   speedup %s%s: %.2fx vs %s (%.1f / %.1f ns/op, need >= %.2fx)\n",
				req.newName, suffix, ratio, req.oldName, old.NsOp, cur.NsOp, req.min)
		}
		if matched == 0 {
			fmt.Fprintf(w, "FAIL speedup %s=%s: no benchmark named %s or %s/<case> in this run\n",
				req.newName, req.oldName, req.oldName, req.oldName)
			failures++
		}
	}
	return failures
}

// caseSuffix reports whether name is base itself or a base/<case>
// sub-benchmark, returning the "/<case>" suffix ("" for an exact match).
func caseSuffix(name, base string) (string, bool) {
	if name == base {
		return "", true
	}
	if strings.HasPrefix(name, base+"/") {
		return name[len(base):], true
	}
	return "", false
}

// parse folds `go test -bench` output into per-name Results, taking the
// minimum over repeated runs of the same benchmark.
//
// `go test` merges the test binary's stderr into its stdout, so a switch
// that logs during a benchmark splits the result line: the name is
// printed, the log lands mid-line, and the measurements arrive on a later
// line that starts with the iteration count. The parser therefore carries
// a pending name across log noise until its numbers show up.
func parse(f io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	seen := make(map[string]bool)
	pending := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var name string
		var vals []string // iterations, then "value unit" pairs
		switch {
		case strings.HasPrefix(fields[0], "Benchmark"):
			name = procSuffix.ReplaceAllString(fields[0], "")
			if len(fields) >= 4 && isInt(fields[1]) {
				vals = fields[1:]
			} else {
				pending = name // results were pushed to a later line
				continue
			}
		case pending != "" && len(fields) >= 3 && isInt(fields[0]):
			name = pending
			vals = fields
		default:
			continue
		}
		pending = ""
		r := Result{Extra: map[string]float64{}}
		for i := 1; i+1 < len(vals); i += 2 {
			v, err := strconv.ParseFloat(vals[i], 64)
			if err != nil {
				continue
			}
			switch vals[i+1] {
			case "ns/op":
				r.NsOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				r.Extra[vals[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		if !seen[name] {
			seen[name] = true
			out[name] = r
			continue
		}
		out[name] = foldMin(out[name], r)
	}
	return out, sc.Err()
}

// isInt reports whether s is a plain base-10 integer (an iteration count).
func isInt(s string) bool {
	_, err := strconv.ParseUint(s, 10, 64)
	return err == nil
}

// foldMin keeps the minimum ns/op run and the per-key maximum of
// allocs/op and custom metrics (a single allocating — or dropping —
// run is still a regression worth gating on).
func foldMin(a, b Result) Result {
	if b.NsOp < a.NsOp && b.NsOp > 0 {
		a.NsOp = b.NsOp
	}
	if b.AllocsOp > a.AllocsOp {
		a.AllocsOp = b.AllocsOp
	}
	if b.BytesOp > a.BytesOp {
		a.BytesOp = b.BytesOp
	}
	if len(b.Extra) > 0 && a.Extra == nil {
		a.Extra = map[string]float64{}
	}
	for k, v := range b.Extra {
		if v > a.Extra[k] {
			a.Extra[k] = v
		}
	}
	return a
}

// sortedKeys gives deterministic report ordering for a metric map.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedResultKeys gives deterministic report ordering for a result map.
func sortedResultKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
