// rp4c is the rP4 front-end compiler (rp4fc in the paper): it translates a
// P4-16 subset program into semantically equivalent rP4 and emits the
// runtime table APIs for the controller.
//
// Usage:
//
//	rp4c -o base.rp4 -api base_api.json base.p4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ipsa/internal/compiler/frontend"
	"ipsa/internal/p4"
	"ipsa/internal/rp4/printer"
)

func main() {
	out := flag.String("o", "", "output rP4 file (default: stdout)")
	apiOut := flag.String("api", "", "output JSON table-API file (optional)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rp4c [-o out.rp4] [-api api.json] input.p4")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	hlir, err := p4.Parse(in, string(src))
	if err != nil {
		fatal(err)
	}
	prog, api, err := frontend.Transform(hlir)
	if err != nil {
		fatal(err)
	}
	rendered := printer.Print(prog)
	if *out == "" {
		fmt.Print(rendered)
	} else if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fatal(err)
	}
	if *apiOut != "" {
		b, err := json.MarshalIndent(api, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*apiOut, b, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rp4c:", err)
	os.Exit(1)
}
