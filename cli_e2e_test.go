// End-to-end test of the actual CLI binaries: build them, run the P4→rP4→
// templates flow, boot the switch daemon, and drive it with the controller
// over the real control channel — the paper's deployment, as processes.
package ipsa

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	rp4c := buildTool(t, dir, "rp4c")
	rp4bc := buildTool(t, dir, "rp4bc")
	ipbmBin := buildTool(t, dir, "ipbm")
	rp4ctl := buildTool(t, dir, "rp4ctl")

	// 1. P4 -> rP4 (+ API spec).
	genRP4 := filepath.Join(dir, "base.rp4")
	apiJSON := filepath.Join(dir, "api.json")
	run(t, rp4c, "-o", genRP4, "-api", apiJSON, "testdata/base_l2l3.p4")
	if b, err := os.ReadFile(apiJSON); err != nil || !strings.Contains(string(b), "ipv4_lpm") {
		t.Fatalf("api spec: %v", err)
	}

	// 2. rP4 -> device configuration.
	baseCfg := filepath.Join(dir, "base.json")
	run(t, rp4bc, "-o", baseCfg, "testdata/base_l2l3.rp4")

	// 3. Boot the switch daemon.
	addr := freePort(t)
	daemon := exec.Command(ipbmBin, "-listen", addr, "-config", baseCfg)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_, _ = daemon.Process.Wait()
	}()
	// Wait for the CCM to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if out, err := exec.Command(rp4ctl, "-addr", addr, "ping").CombinedOutput(); err == nil && strings.Contains(string(out), "ok") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never answered ping")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 4. Populate a route and inspect state over the wire.
	run(t, rp4ctl, "-addr", addr, "insert", "ipv4_lpm", "1", "key=0x0a000000", "prefix=8", "params=7")
	tables := run(t, rp4ctl, "-addr", addr, "tables")
	if !strings.Contains(tables, "ipv4_lpm") || !strings.Contains(tables, "entries=1") {
		t.Fatalf("tables:\n%s", tables)
	}

	// 5. In-situ update: compile the ECMP increment and apply it live.
	ecmpCfg := filepath.Join(dir, "ecmp.json")
	out := run(t, rp4bc, "-script", "testdata/ecmp.script", "-o", ecmpCfg, "testdata/base_l2l3.rp4")
	_ = out
	applied := run(t, rp4ctl, "-addr", addr, "apply", ecmpCfg)
	if !strings.Contains(applied, "full=false") {
		t.Fatalf("apply was not incremental:\n%s", applied)
	}
	run(t, rp4ctl, "-addr", addr, "add-member", "ecmp_ipv4", "1", "group=7", "params=200,2199023255555")
	tables = run(t, rp4ctl, "-addr", addr, "tables")
	if !strings.Contains(tables, "ecmp_ipv4") || strings.Contains(tables, "nexthop_tbl") {
		t.Fatalf("post-update tables:\n%s", tables)
	}
	stats := run(t, rp4ctl, "-addr", addr, "stats")
	if !strings.Contains(stats, "active_tsps") {
		t.Fatalf("stats:\n%s", stats)
	}
	fmt.Println("CLI end-to-end:", strings.TrimSpace(applied))
}
