// Base L2/L3 forwarding design in the P4-16 subset — the same design as
// base_l2l3.rp4, written in the P4 style the paper prefers for base
// designs ("P4 code is easier to write and many proven designs written in
// P4 exist"). rp4fc translates this into rP4.
#include <core.p4>

const bit<16> TYPE_IPV4 = 0x0800;
const bit<16> TYPE_IPV6 = 0x86DD;
const bit<8>  PROTO_TCP = 6;
const bit<8>  PROTO_UDP = 17;

header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_t {
    bit<4>   version;
    bit<8>   traffic_class;
    bit<20>  flow_label;
    bit<16>  payload_len;
    bit<8>   next_hdr;
    bit<8>   hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> len;
    bit<16> checksum;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    ipv6_t     ipv6;
    tcp_t      tcp;
    udp_t      udp;
}

struct metadata_t {
    bit<16> iif;
    bit<16> bd;
    bit<16> vrf;
    bit<1>  l3;
    bit<32> nexthop;
    bit<1>  fib_hit;
}

parser MyParser(packet_in pkt, out headers_t hdr, inout metadata_t meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            TYPE_IPV4: parse_ipv4;
            TYPE_IPV6: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_tcp;
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            PROTO_TCP: parse_tcp;
            PROTO_UDP: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition accept;
    }
}

control MyIngress(inout headers_t hdr, inout metadata_t meta) {
    action drop_packet() {
        mark_to_drop();
    }
    action set_iif(bit<16> iif) {
        meta.iif = iif;
    }
    table port_map_tbl {
        key = {
            standard_metadata.ingress_port: exact;
        }
        actions = { set_iif; drop_packet; }
        size = 256;
        default_action = drop_packet;
    }

    action set_bd_vrf(bit<16> bd, bit<16> vrf) {
        meta.bd = bd;
        meta.vrf = vrf;
    }
    table bd_vrf_tbl {
        key = {
            meta.iif: exact;
        }
        actions = { set_bd_vrf; drop_packet; }
        size = 4096;
        default_action = drop_packet;
    }

    action set_l3() {
        meta.l3 = 1;
    }
    table l2_l3_tbl {
        key = {
            meta.bd: exact;
            hdr.ethernet.dst_addr: exact;
        }
        actions = { set_l3; NoAction; }
        size = 1024;
        default_action = NoAction;
    }

    action set_nexthop(bit<32> nexthop) {
        meta.nexthop = nexthop;
        meta.fib_hit = 1;
    }
    table ipv4_host {
        key = {
            meta.vrf: exact;
            hdr.ipv4.dst_addr: exact;
        }
        actions = { set_nexthop; NoAction; }
        size = 8192;
        default_action = NoAction;
    }
    table ipv4_lpm {
        key = {
            hdr.ipv4.dst_addr: lpm;
        }
        actions = { set_nexthop; NoAction; }
        size = 16384;
        default_action = NoAction;
    }
    table ipv6_host {
        key = {
            meta.vrf: exact;
            hdr.ipv6.dst_addr: exact;
        }
        actions = { set_nexthop; NoAction; }
        size = 4096;
        default_action = NoAction;
    }
    table ipv6_lpm {
        key = {
            hdr.ipv6.dst_addr: lpm;
        }
        actions = { set_nexthop; NoAction; }
        size = 8192;
        default_action = NoAction;
    }

    action set_bd_dmac(bit<16> bd, bit<48> dmac) {
        meta.bd = bd;
        hdr.ethernet.dst_addr = dmac;
    }
    table nexthop_tbl {
        key = {
            meta.nexthop: exact;
        }
        actions = { set_bd_dmac; NoAction; }
        size = 16384;
        default_action = NoAction;
    }

    apply {
        port_map_tbl.apply();
        bd_vrf_tbl.apply();
        l2_l3_tbl.apply();
        if (meta.l3 == 1 && hdr.ipv4.isValid()) {
            ipv4_host.apply();
            if (meta.fib_hit == 0) {
                ipv4_lpm.apply();
            }
        } else if (meta.l3 == 1 && hdr.ipv6.isValid()) {
            ipv6_host.apply();
            if (meta.fib_hit == 0) {
                ipv6_lpm.apply();
            }
        }
        if (meta.fib_hit == 1) {
            nexthop_tbl.apply();
        }
    }
}

control MyEgress(inout headers_t hdr, inout metadata_t meta) {
    action rewrite_l3(bit<48> smac) {
        hdr.ethernet.src_addr = smac;
        if (hdr.ipv4.isValid()) {
            hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
        }
        if (hdr.ipv6.isValid()) {
            hdr.ipv6.hop_limit = hdr.ipv6.hop_limit - 1;
        }
    }
    table smac_tbl {
        key = {
            meta.bd: exact;
        }
        actions = { rewrite_l3; NoAction; }
        size = 4096;
        default_action = NoAction;
    }

    action drop_packet() {
        mark_to_drop();
    }
    action set_port(bit<16> port) {
        standard_metadata.egress_spec = port;
    }
    table dmac_tbl {
        key = {
            meta.bd: exact;
            hdr.ethernet.dst_addr: exact;
        }
        actions = { set_port; drop_packet; }
        size = 65536;
        default_action = drop_packet;
    }

    apply {
        if (meta.l3 == 1) {
            smac_tbl.apply();
        }
        dmac_tbl.apply();
    }
}
