// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index), plus ablations of rp4bc's design
// choices. Custom metrics carry the quantities the paper reports:
//
//	go test -bench=. -benchmem
//
// For the printed paper-style tables, run `go run ./cmd/experiments`.
package ipsa

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/compiler/layout"
	"ipsa/internal/compiler/packing"
	"ipsa/internal/experiments"
	"ipsa/internal/flowstat"
	"ipsa/internal/hwmodel"
	"ipsa/internal/ipbm"
	"ipsa/internal/match"
	"ipsa/internal/mem"
	"ipsa/internal/netio"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/tsp"
)

func benchCfg() experiments.Config {
	cfg := experiments.Default("testdata")
	cfg.Packets = 5000
	cfg.Entries = 128
	return cfg
}

func loadBaseProgram(b *testing.B) *ast.Program {
	b.Helper()
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parser.Parse("base_l2l3.rp4", string(src))
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func loader(b *testing.B) backend.Loader {
	b.Helper()
	return func(name string) (string, error) {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		return string(raw), err
	}
}

func scriptSrc(b *testing.B, uc string) string {
	b.Helper()
	name := map[string]string{"C1": "ecmp.script", "C2": "srv6.script", "C3": "flowprobe.script"}[uc]
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		b.Fatal(err)
	}
	return string(raw)
}

// --- Table 1: compile (t_C) and load (t_L) ----------------------------------

// BenchmarkTable1_IPSA_IncrementalCompile measures rp4bc's incremental
// compile (the rP4 flow's t_C) for each use case.
func BenchmarkTable1_IPSA_IncrementalCompile(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			opts := backend.DefaultOptions()
			opts.NumTSPs = 16
			script := scriptSrc(b, uc)
			ld := loader(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ws, err := backend.NewWorkspace(loadBaseProgram(b), opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := ws.ApplyScript(script, ld); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1_PISA_FullCompile measures the P4 flow's t_C: parse the
// P4 source, rp4fc, full rp4bc compile of the updated design.
func BenchmarkTable1_PISA_FullCompile(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			cfg := benchCfg()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.P4FullCompile(cfg, uc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1_IPSA_Load measures the rP4 flow's t_L: the device patch
// that writes only the manifest's TSP templates. The switch is brought up
// and the update compiled once; each iteration re-applies the patch (the
// device handles it idempotently), so ns/op is the pure patch cost.
// New-table creation and population happen once, untimed.
func BenchmarkTable1_IPSA_Load(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			cfg := benchCfg()
			opts := backend.DefaultOptions()
			opts.NumTSPs = 16
			ws, err := backend.NewWorkspace(loadBaseProgram(b), opts)
			if err != nil {
				b.Fatal(err)
			}
			sw, err := ipbm.New(ipbm.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sw.ApplyConfig(ws.Current().Config); err != nil {
				b.Fatal(err)
			}
			if err := experiments.PopulateBase(sw, ws.Current().Config, cfg.Entries); err != nil {
				b.Fatal(err)
			}
			rep, err := ws.ApplyScript(scriptSrc(b, uc), loader(b))
			if err != nil {
				b.Fatal(err)
			}
			st, err := sw.ApplyConfig(rep.Config)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.PopulateUseCase(sw, uc, cfg.Entries); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.ApplyConfig(rep.Config); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.TSPsWritten), "tsps_written")
		})
	}
}

// BenchmarkTable1_PISA_Load measures the P4 flow's t_L: full pipeline
// reload plus full table repopulation (the bmv2 behaviour).
func BenchmarkTable1_PISA_Load(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			cfg := benchCfg()
			fullCfg, err := experiments.P4FullCompile(cfg, uc)
			if err != nil {
				b.Fatal(err)
			}
			psw, err := experiments.NewPISASwitch()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := psw.ApplyConfig(fullCfg); err != nil {
					b.Fatal(err)
				}
				if err := experiments.PopulateBase(psw, fullCfg, cfg.Entries); err != nil {
					b.Fatal(err)
				}
				if err := experiments.PopulateUseCase(psw, uc, cfg.Entries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sec. 5 throughput -------------------------------------------------------

// BenchmarkThroughput_IPSA pushes each use case's workload through the
// ipbm data plane; ns/op is the per-packet cost, pps is reported as a
// custom metric alongside the FPGA model's Mpps.
func BenchmarkThroughput_IPSA(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			prep, err := experiments.PrepareUseCase(benchCfg(), uc)
			if err != nil {
				b.Fatal(err)
			}
			sw, gen := prep.IPSA(), prep.Gen()
			modeled, err := hwmodel.DefaultCycleParams().Model(uc, hwmodel.UseCaseClasses(uc))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.ProcessPacket(gen.NextShared(), 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
			b.ReportMetric(modeled.IPSAMpps, "model_Mpps")
		})
	}
}

// BenchmarkThroughput_PISA is the baseline counterpart.
func BenchmarkThroughput_PISA(b *testing.B) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			prep, err := experiments.PrepareUseCase(benchCfg(), uc)
			if err != nil {
				b.Fatal(err)
			}
			sw, gen := prep.PISA(), prep.Gen()
			modeled, err := hwmodel.DefaultCycleParams().Model(uc, hwmodel.UseCaseClasses(uc))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.ProcessPacket(gen.NextShared(), 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
			b.ReportMetric(modeled.PISAMpps, "model_Mpps")
		})
	}
}

// --- Table 2: resource model --------------------------------------------------

// BenchmarkTable2_Resources evaluates the resource model and reports the
// headline overheads as metrics.
func BenchmarkTable2_Resources(b *testing.B) {
	p := hwmodel.DefaultResourceParams()
	var lut, ff float64
	for i := 0; i < b.N; i++ {
		pisa := p.PISAResources(8, 912)
		ipsa := p.IPSAResources(8, 64)
		lut = (ipsa.TotalLUT - pisa.TotalLUT) / pisa.TotalLUT * 100
		ff = (ipsa.TotalFF - pisa.TotalFF) / pisa.TotalFF * 100
	}
	b.ReportMetric(lut, "lut_overhead_%")
	b.ReportMetric(ff, "ff_overhead_%")
}

// --- Table 3: power model -------------------------------------------------------

// BenchmarkTable3_Power evaluates the power model at the paper's scale.
func BenchmarkTable3_Power(b *testing.B) {
	p := hwmodel.DefaultPowerParams()
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = (p.IPSAPower(8, 8) - p.PISAPower(8)) / p.PISAPower(8) * 100
	}
	b.ReportMetric(overhead, "power_overhead_%")
}

// --- Fig. 6: power sweep ---------------------------------------------------------

// BenchmarkFig6_PowerSweep sweeps effective stage counts and reports the
// crossover below which IPSA wins.
func BenchmarkFig6_PowerSweep(b *testing.B) {
	p := hwmodel.DefaultPowerParams()
	cross := 0
	for i := 0; i < b.N; i++ {
		cross = p.PowerCrossover(8)
	}
	b.ReportMetric(float64(cross), "crossover_stages")
}

// --- Ablations (DESIGN.md) -------------------------------------------------------

// BenchmarkAblation_StageMerging compares compile results with predicate
// merging on and off: the TSP count is the paper's resource argument.
func BenchmarkAblation_StageMerging(b *testing.B) {
	for _, merge := range []bool{true, false} {
		name := "off"
		if merge {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := backend.DefaultOptions()
			opts.NumTSPs = 16
			opts.EnableMerge = merge
			var tsps int
			for i := 0; i < b.N; i++ {
				c, err := backend.Compile(loadBaseProgram(b), opts)
				if err != nil {
					b.Fatal(err)
				}
				tsps = c.Stats.TSPsUsed
			}
			b.ReportMetric(float64(tsps), "tsps_used")
		})
	}
}

// BenchmarkAblation_IncrementalLayout compares the DP and greedy placement
// algorithms on a worst-case reorder, reporting template rewrites.
func BenchmarkAblation_IncrementalLayout(b *testing.B) {
	old := &layout.Assignment{
		NumTSP:   16,
		Position: map[string]int{"a": 3, "b": 4, "c": 5, "z": 9},
		Modes:    make([]layout.Mode, 16),
	}
	seq := []string{"z", "a", "b", "c"}
	b.Run("dp", func(b *testing.B) {
		var rewrites int
		for i := 0; i < b.N; i++ {
			res, err := layout.PlaceIncrementalDP(old, seq, nil, 16)
			if err != nil {
				b.Fatal(err)
			}
			rewrites = res.Rewrites
		}
		b.ReportMetric(float64(rewrites), "rewrites")
	})
	b.Run("greedy", func(b *testing.B) {
		var rewrites int
		for i := 0; i < b.N; i++ {
			res, err := layout.PlaceIncrementalGreedy(old, seq, nil, 16)
			if err != nil {
				b.Fatal(err)
			}
			rewrites = res.Rewrites
		}
		b.ReportMetric(float64(rewrites), "rewrites")
	})
}

// BenchmarkAblation_Packing compares the exact set-packing solver against
// the greedy first-fit on a tight instance the greedy cannot place at all
// (items 8,7,6,5,4 over two 15-block clusters need the exact 15/15
// split); the metric is feasibility plus achieved max load.
func BenchmarkAblation_Packing(b *testing.B) {
	items := []packing.Item{
		{Name: "a", Blocks: 8}, {Name: "b", Blocks: 7}, {Name: "c", Blocks: 6},
		{Name: "d", Blocks: 5}, {Name: "e", Blocks: 4},
	}
	caps := []int{15, 15}
	for _, exact := range []bool{true, false} {
		name := "greedy"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			var maxLoad, feasible int
			for i := 0; i < b.N; i++ {
				sol, err := packing.Solve(items, caps, packing.Options{Exact: exact})
				if err != nil {
					maxLoad, feasible = 0, 0
					continue
				}
				maxLoad, feasible = sol.MaxLoad, 1
			}
			b.ReportMetric(float64(maxLoad), "max_load")
			b.ReportMetric(float64(feasible), "feasible")
		})
	}
}

// --- Hot path: compiled executor vs reference interpreter -------------------

// benchmarkHotPath drives the steady-state forwarding path (pooled
// packets and envs, no per-packet return value) with one executor mode.
// The compiled/interp pair quantifies what lowering the template IR to
// flat programs at apply time buys per packet; allocs/op must be 0 in
// steady state.
func benchmarkHotPath(b *testing.B, mode tsp.ExecMode, flowOff bool) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Exec = mode
			cfg.FlowOff = flowOff
			prep, err := experiments.PrepareUseCase(cfg, uc)
			if err != nil {
				b.Fatal(err)
			}
			sw, gen := prep.IPSA(), prep.Gen()
			// Warm the packet/env pools and the TM rings so the timed
			// region measures steady state.
			for i := 0; i < 64; i++ {
				if _, err := sw.Forward(gen.NextShared(), 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.Forward(gen.NextShared(), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHotPath_Compiled(b *testing.B) { benchmarkHotPath(b, tsp.ExecCompiled, false) }

func BenchmarkHotPath_Interp(b *testing.B) { benchmarkHotPath(b, tsp.ExecInterp, false) }

// BenchmarkHotPath_FlowOff is the compiled hot path with flow accounting
// disabled — the ablation quantifying what the always-on accounting
// costs per packet (see docs/OBSERVABILITY.md and EXPERIMENTS.md).
func BenchmarkHotPath_FlowOff(b *testing.B) { benchmarkHotPath(b, tsp.ExecCompiled, true) }

// benchmarkHotPathBatch drives ForwardBatch: one pinned version, one Env
// bind and one stage-major sweep per batch of distinct frame buffers.
// Frames are refreshed from the pristine flow packets before every batch
// (the pipeline rewrites them in place), the same per-op copy the scalar
// path pays inside gen.NextShared.
func benchmarkHotPathBatch(b *testing.B, mode tsp.ExecMode, batch int) {
	for _, uc := range experiments.UseCases {
		b.Run(uc, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Exec = mode
			prep, err := experiments.PrepareUseCase(cfg, uc)
			if err != nil {
				b.Fatal(err)
			}
			sw, gen := prep.IPSA(), prep.Gen()
			flows := gen.FlowPackets()
			bufs := make([][]byte, batch)
			for i := range bufs {
				bufs[i] = append([]byte(nil), flows[i%len(flows)]...)
			}
			refresh := func(k int) {
				for i := 0; i < k; i++ {
					copy(bufs[i], flows[i%len(flows)])
				}
			}
			for i := 0; i < 4; i++ {
				refresh(batch)
				if _, err := sw.ForwardBatch(bufs, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; {
				k := batch
				if b.N-n < k {
					k = b.N - n
				}
				refresh(k)
				if _, err := sw.ForwardBatch(bufs[:k], 1); err != nil {
					b.Fatal(err)
				}
				n += k
			}
		})
	}
}

// BenchmarkHotPath_Fused is the gated second-stage-compiler benchmark:
// fused closures, batch-at-a-time execution and exact-match prefetch at
// the default batch size. CI compares it against the committed compiled
// baseline (make bench-fused) with a strict zero-alloc requirement.
func BenchmarkHotPath_Fused(b *testing.B) {
	benchmarkHotPathBatch(b, tsp.ExecFused, ipbm.DefaultBatch)
}

// BenchmarkHotPath_FusedScalar isolates the closure tier from batching:
// fused execution on the per-frame Forward path.
func BenchmarkHotPath_FusedScalar(b *testing.B) { benchmarkHotPath(b, tsp.ExecFused, false) }

// BenchmarkFusedBatchSensitivity sweeps the batch size at the fused tier
// (EXPERIMENTS.md's sensitivity table): batch=1 is the degenerate
// per-packet case, larger batches amortize pin/env/clock and let the
// stage-major sweep and prefetch work.
func BenchmarkFusedBatchSensitivity(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchmarkHotPathBatch(b, tsp.ExecFused, batch)
		})
	}
}

// --- Flow accounting engine (docs/OBSERVABILITY.md) --------------------------

// BenchmarkFlowAccount isolates the accounting engine: one Touch+Finish
// pair per op — the exact per-packet work the runners add. single_flow
// is the best case (hot entry); flows=64 walks a working set through a
// 1024-slot table. allocs/op must be 0.
func BenchmarkFlowAccount(b *testing.B) {
	frame, err := pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MAC{2, 0, 0, 0, 0, 1}, Src: pkt.MAC{2, 0, 0, 0, 0, 2}, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 1, 0, 1}},
		&pkt.TCP{SrcPort: 1234, DstPort: 80},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single_flow", func(b *testing.B) {
		tab := flowstat.NewSet(1, flowstat.Config{}).Lane(0)
		h := pkt.RSSHash(frame)
		tab.Touch(h, frame, len(frame), 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := flowstat.Now()
			tab.Touch(h, frame, len(frame), now)
			tab.Finish(h, flowstat.VerdictForwarded, -1, now)
		}
	})
	b.Run("flows=64", func(b *testing.B) {
		tab := flowstat.NewSet(1, flowstat.Config{}).Lane(0)
		hashes := make([]uint64, 64)
		for i := range hashes {
			hashes[i] = pkt.RSSHash(frame) + uint64(i)*0x9e3779b97f4a7c15
			tab.Touch(hashes[i], frame, len(frame), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := hashes[i&63]
			now := flowstat.Now()
			tab.Touch(h, frame, len(frame), now)
			tab.Finish(h, flowstat.VerdictForwarded, -1, now)
		}
	})
}

// --- Drop attribution (docs/OBSERVABILITY.md) --------------------------------

// BenchmarkDropPath measures the always-on loss-forensics path: every op
// forwards a frame the switch loses — program_drop rewrites a known-good
// flow's destination to an unrouted address so the design's catch-all
// drop action fires, parse_error truncates the frame below the root
// header. Each op pays full attribution: verdict classification, the
// striped ipsa_drop_total cell and the capture-ring admission check.
// allocs/op must be 0 — attribution is always on, so a drop storm must
// not pressure the collector.
func BenchmarkDropPath(b *testing.B) {
	prep, err := experiments.PrepareUseCase(benchCfg(), "C1")
	if err != nil {
		b.Fatal(err)
	}
	sw := prep.IPSA()
	unrouted := append([]byte(nil), prep.Gen().FlowPackets()[0]...)
	// IPv4 destination lives at Ethernet(14) + dst offset(16).
	copy(unrouted[30:34], []byte{203, 0, 113, 9})
	cases := []struct {
		name  string
		frame []byte
	}{
		{"program_drop", unrouted},
		{"parse_error", unrouted[:10]},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			buf := append([]byte(nil), c.frame...)
			// Warm pools and prove the frame actually drops; the pipeline
			// rewrites buffers in place, so refresh before every send.
			for i := 0; i < 64; i++ {
				copy(buf, c.frame)
				fwd, err := sw.Forward(buf, 1)
				if err != nil {
					b.Fatal(err)
				}
				if fwd {
					b.Fatalf("%s frame was forwarded, not dropped", c.name)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, c.frame)
				if _, err := sw.Forward(buf, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DistributedParsing compares on-demand parsing (headers
// parsed once, where needed) against PISA-style full front parsing by
// packet cost on the same design.
func BenchmarkAblation_DistributedParsing(b *testing.B) {
	prep, err := experiments.PrepareUseCase(benchCfg(), "C3")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ipsa_on_demand", func(b *testing.B) {
		sw, gen := prep.IPSA(), prep.Gen()
		for i := 0; i < b.N; i++ {
			if _, err := sw.ProcessPacket(gen.NextShared(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pisa_front_parse", func(b *testing.B) {
		sw, gen := prep.PISA(), prep.Gen()
		for i := 0; i < b.N; i++ {
			if _, err := sw.ProcessPacket(gen.NextShared(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkThroughput_IPSA_Parallel drives the data plane from all cores,
// the software equivalent of a multi-queue NIC feeding the pipeline.
func BenchmarkThroughput_IPSA_Parallel(b *testing.B) {
	prep, err := experiments.PrepareUseCase(benchCfg(), "C1")
	if err != nil {
		b.Fatal(err)
	}
	sw := prep.IPSA()
	packets := prep.Gen().FlowPackets()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := sw.ProcessPacket(packets[i%len(packets)], 1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// --- Sharded datapath scaling (see EXPERIMENTS.md) ---------------------------

// shardedAccounted sums the verdict sinks readable without allocating:
// port transmissions and tail drops, stage drops and TM tail drops. The
// completion wait polls this on the timed path; the rare no-port sink is
// read separately via the (allocating) registry scrape.
func shardedAccounted(sw *ipbm.Switch) uint64 {
	_, stageDropped := sw.Pipeline().Stats()
	_, tmDrops := sw.TMStats()
	total := stageDropped + tmDrops
	for i := 0; i < sw.Ports().Len(); i++ {
		p, err := sw.Ports().Port(i)
		if err != nil {
			continue
		}
		st := p.DetailedStats()
		total += st.Sent + st.TxDrops
	}
	return total
}

// gatherNoPort reads the no-port drop counter from the registry (one
// scrape allocation; kept off the per-iteration poll).
func gatherNoPort(sw *ipbm.Switch) uint64 {
	for _, pt := range sw.Telemetry().Reg.Gather() {
		if pt.Name == "ipsa_no_port_drops_total" {
			return uint64(pt.Value)
		}
	}
	return 0
}

// benchmarkShardedThroughput drives the full sharded mode end to end:
// frames injected at a port ride the batched reader, the RSS steering,
// the shard workers and the batched transmit. ns/op is the whole-switch
// per-packet cost including I/O; pps is the headline throughput.
func benchmarkShardedThroughput(b *testing.B, shards, batch int) {
	prep, err := experiments.PrepareUseCase(benchCfg(), "C1")
	if err != nil {
		b.Fatal(err)
	}
	sw := prep.IPSA()
	if err := sw.RunSharded(shards, batch); err != nil {
		b.Fatal(err)
	}
	defer sw.Shutdown()
	runShardedBurst(b, sw, prep.Gen().FlowPackets())
}

// runShardedBurst is the shared harness for the sharded and pipelined
// whole-switch benchmarks: inject b.N frames from a refresh ring, drain
// every egress port in the background, and stop the clock only when the
// switch has accounted for the entire burst.
func runShardedBurst(b *testing.B, sw *ipbm.Switch, flows [][]byte) {
	b.Helper()
	// Injection ring: the data plane rewrites frames in place, so each
	// slot is refreshed from its pristine flow packet before reuse. The
	// ring is deep enough that a slot has virtually always completed its
	// lifecycle before it comes around again (and a straggler merely
	// re-parses a half-rewritten frame — accounted either way).
	const ring = 4096
	bufs := make([][]byte, ring)
	for i := range bufs {
		bufs[i] = append([]byte(nil), flows[i%len(flows)]...)
	}
	in, err := sw.Ports().Port(1)
	if err != nil {
		b.Fatal(err)
	}
	stopDrain := make(chan struct{})
	defer close(stopDrain)
	for i := 0; i < sw.Ports().Len(); i++ {
		p, _ := sw.Ports().Port(i)
		go func(p *netio.ChanPort) {
			for {
				select {
				case <-stopDrain:
					return
				default:
					if _, ok := p.Drain(); !ok {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
		}(p)
	}
	start := shardedAccounted(sw)
	noPortStart := gatherNoPort(sw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % ring
		buf := bufs[slot]
		copy(buf, flows[slot%len(flows)])
		for !in.Inject(buf) {
			runtime.Gosched()
		}
	}
	// Completion wait: poll the allocation-free sinks every yield, fold in
	// the no-port sink (an allocating registry scrape) only while stalled.
	deadline := time.Now().Add(60 * time.Second)
	lastScrape := time.Now()
	noPort := uint64(0)
	for shardedAccounted(sw)-start+noPort < uint64(b.N) {
		if time.Since(lastScrape) > 200*time.Millisecond {
			noPort = gatherNoPort(sw) - noPortStart
			lastScrape = time.Now()
		}
		if time.Now().After(deadline) {
			b.Fatalf("burst never accounted: %d/%d", shardedAccounted(sw)-start+noPort, b.N)
		}
		runtime.Gosched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkShardedThroughput is the scaling sweep: the same multi-flow
// workload at increasing shard counts. On a multi-core host throughput
// scales with shards until cores run out; on fewer cores the curve is
// flat and the sweep measures sharding's overhead instead.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchmarkShardedThroughput(b, n, ipbm.DefaultBatch)
		})
	}
}

// BenchmarkShardedBatchSensitivity sweeps the I/O batch size at a fixed
// shard count: batch=1 degenerates to per-frame wakeups, large batches
// amortize them at the cost of burst latency.
func BenchmarkShardedBatchSensitivity(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchmarkShardedThroughput(b, 2, batch)
		})
	}
}

// BenchmarkPipelinedThroughput is the pre-sharding asynchronous mode on
// the identical harness — the direct baseline for the scaling sweep.
func BenchmarkPipelinedThroughput(b *testing.B) {
	prep, err := experiments.PrepareUseCase(benchCfg(), "C1")
	if err != nil {
		b.Fatal(err)
	}
	sw := prep.IPSA()
	if err := sw.RunPipelined(2); err != nil {
		b.Fatal(err)
	}
	defer sw.Shutdown()
	runShardedBurst(b, sw, prep.Gen().FlowPackets())
}

// BenchmarkAblation_CrossbarMigration measures the cross-cluster table
// migration a clustered crossbar forces when a logical stage moves — the
// cost the paper's Sec. 2.4 warns about.
func BenchmarkAblation_CrossbarMigration(b *testing.B) {
	for _, entries := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mgr, err := mem.NewManager(mem.Config{Blocks: 64, BlockWidth: 128, BlockDepth: 16384, Clusters: 2},
					mem.ClusteredCrossbar, 8)
				if err != nil {
					b.Fatal(err)
				}
				tbl, err := mgr.CreateTable("fib", match.LPM, 32, 16384, 0)
				if err != nil {
					b.Fatal(err)
				}
				for e := 0; e < entries; e++ {
					key := []byte{byte(e >> 16), byte(e >> 8), byte(e), 0}
					if _, err := tbl.Engine().Insert(match.Entry{Key: key, PrefixLen: 24, ActionID: 1}); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				moved, err := mgr.Migrate("fib", 7) // TSP 7 lives in cluster 1
				if err != nil {
					b.Fatal(err)
				}
				if moved != entries {
					b.Fatalf("moved %d, want %d", moved, entries)
				}
			}
		})
	}
}
