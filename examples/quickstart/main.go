// Quickstart: compile the base L2/L3 design, install it on an in-process
// ipbm switch, populate the tables, and forward a packet.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
)

func main() {
	// 1. An IPSA software switch: 16 TSPs, 8 ports.
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile and install the base design through the in-situ engine.
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	ctl, err := core.NewController("base_l2l3.rp4", string(src), opts, sw)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ctl.CurrentConfig()
	fmt.Printf("installed %d stages over %d tables; %d TSPs active\n",
		len(cfg.Stages), len(cfg.Tables), sw.Pipeline().ActiveTSPs())

	// 3. Populate the forwarding state: port 1 -> interface 10 -> bridge
	// 100/VRF 1; route 10.0.0.0/8 via nexthop 7 out of port 3.
	routerMAC := pkt.MAC{0x02, 0, 0, 0, 0, 0x01}
	nhMAC := pkt.MAC{0x02, 0, 0, 0, 0, 0x03}
	smac := pkt.MAC{0x02, 0, 0, 0, 0, 0x04}
	entries := []ctrlplane.EntryReq{
		{Table: "port_map_tbl", Keys: []ctrlplane.FieldValue{{Value: 1}}, Tag: 1, Params: []uint64{10}},
		{Table: "bd_vrf_tbl", Keys: []ctrlplane.FieldValue{{Value: 10}}, Tag: 1, Params: []uint64{100, 1}},
		{Table: "l2_l3_tbl", Keys: []ctrlplane.FieldValue{{Value: 100}, {Value: routerMAC.Uint64()}}, Tag: 1},
		{Table: "ipv4_lpm", Keys: []ctrlplane.FieldValue{{Value: 0x0A000000}}, PrefixLen: 8, Tag: 1, Params: []uint64{7}},
		{Table: "nexthop_tbl", Keys: []ctrlplane.FieldValue{{Value: 7}}, Tag: 1, Params: []uint64{200, nhMAC.Uint64()}},
		{Table: "smac_tbl", Keys: []ctrlplane.FieldValue{{Value: 200}}, Tag: 1, Params: []uint64{smac.Uint64()}},
		{Table: "dmac_tbl", Keys: []ctrlplane.FieldValue{{Value: 200}, {Value: nhMAC.Uint64()}}, Tag: 1, Params: []uint64{3}},
	}
	for _, e := range entries {
		if _, err := ctl.InsertEntry(e); err != nil {
			log.Fatalf("insert %s: %v", e.Table, err)
		}
	}

	// 4. Forward a packet addressed to the router.
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 0xFE}, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 7, 7, 7}},
		&pkt.TCP{SrcPort: 12345, DstPort: 80},
		pkt.Payload("hello, IPSA"),
	)
	if err != nil {
		log.Fatal(err)
	}
	p, err := sw.ProcessPacket(raw, 1)
	if err != nil {
		log.Fatal(err)
	}
	var eth pkt.Ethernet
	var ip pkt.IPv4
	_ = eth.Decode(p.Data)
	_ = ip.Decode(p.Data[pkt.EthernetLen:])
	fmt.Printf("in port 1 -> out port %d\n", p.OutPort)
	fmt.Printf("dmac rewritten to %s, smac to %s, ttl %d -> %d\n", eth.Dst, eth.Src, 64, ip.TTL)

	stats, _ := sw.TableStats("ipv4_lpm")
	fmt.Printf("ipv4_lpm: %d hits, %d misses\n", stats.Hits, stats.Misses)
}
