// In-band network telemetry end to end: enable INT on a running switch
// via the control channel (an in-situ reconfiguration — no restart, no
// table loss), push routed traffic through it, and read back the
// sink-decoded per-hop reports and the reconfiguration audit trail the
// same way `rp4ctl int report` and `rp4ctl events` would.
//
// Run from the repository root:
//
//	go run ./examples/int_e2e
package main

import (
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/experiments"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
)

func main() {
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	ctl, err := core.NewController("base_l2l3.rp4", string(src), opts, sw)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.PopulateBase(sw, ctl.CurrentConfig(), 4); err != nil {
		log.Fatal(err)
	}

	// Drive everything over the real control channel, like rp4ctl does.
	srv := ctrlplane.NewServer(sw, slog.Default())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cl, err := ctrlplane.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	if err := cl.IntEnable(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("INT enabled in situ: stage programs rewritten under a pipeline drain,")
	fmt.Println("table entries and registers untouched")

	// Routed traffic: each packet traverses the L2/L3 ingress and egress
	// stages, each of which stamps one hop record.
	raw, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: experiments.RouterMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 0xFE}, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 7, 7, 7}},
		&pkt.TCP{SrcPort: 999, DstPort: 80},
	)
	for i := 0; i < 3; i++ {
		p, err := sw.ProcessPacket(append([]byte(nil), raw...), 1)
		if err != nil {
			log.Fatal(err)
		}
		if p.Drop {
			log.Fatal("routed packet dropped")
		}
		// The sink stripped the INT trailer: what leaves the switch is the
		// ordinary packet.
		if len(p.Data) != len(raw) {
			log.Fatalf("trailer escaped: %d bytes out vs %d in", len(p.Data), len(raw))
		}
	}

	reports, err := cl.IntReport(1)
	if err != nil {
		log.Fatal(err)
	}
	if len(reports) == 0 {
		log.Fatal("no INT reports at the sink")
	}
	rep := reports[0]
	fmt.Printf("\nnewest INT report (in=%d out=%d path=%s):\n", rep.InPort, rep.OutPort, rep.Path())
	for _, h := range rep.Hops {
		fmt.Printf("  sw%-2d tsp%-2d %-16s latency=%-10s qdepth=%d\n",
			h.SwitchID, h.TSP, h.Stage,
			fmt.Sprintf("%.3fus", float64(h.LatencyNanos)/1e3), h.QDepth)
	}
	if len(rep.Hops) < 3 {
		log.Fatalf("expected >= 3 stamping TSPs, got %d", len(rep.Hops))
	}

	if err := cl.IntDisable(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nINT disabled in situ; reconfiguration audit trail:")
	events, err := cl.EventsDump(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		fmt.Printf("  #%d %-12s cfg=%s tsps=%d drain=%.3fms in_flight=%d\n",
			ev.Seq, ev.Kind, ev.ConfigHash, ev.TSPsWritten,
			float64(ev.DrainNanos)/1e6, ev.InFlight)
	}
}
