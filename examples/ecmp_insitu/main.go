// Use case C1 (paper Sec. 4.2): insert Equal-Cost Multi-Path routing into
// a running switch. Traffic flows before, during and after the update;
// only one TSP template is rewritten, existing table entries survive, and
// afterwards flows spread over two equal-cost links.
//
// Run from the repository root:
//
//	go run ./examples/ecmp_insitu
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/experiments"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
	"ipsa/internal/trafficgen"
)

func main() {
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	ctl, err := core.NewController("base_l2l3.rp4", string(src), opts, sw)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.PopulateBase(sw, ctl.CurrentConfig(), 16); err != nil {
		log.Fatal(err)
	}

	// Background traffic: routed v4 flows.
	gcfg := trafficgen.DefaultConfig()
	gcfg.V4Base = [4]byte{10, 1, 0, 0}
	gen, err := trafficgen.New(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	var sent, delivered atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := sw.ProcessPacket(gen.Next(), 1)
			if err != nil {
				log.Fatal(err)
			}
			sent.Add(1)
			if !p.Drop {
				delivered.Add(1)
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	before := delivered.Load()
	fmt.Printf("traffic running: %d packets delivered\n", before)

	// The in-situ update: load ECMP, relink the pipeline (Fig. 5b).
	script, err := os.ReadFile("testdata/ecmp.script")
	if err != nil {
		log.Fatal(err)
	}
	loader := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		return string(b), err
	}
	rep, err := ctl.ApplyUpdate(string(script), loader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update applied while forwarding:\n")
	fmt.Printf("  t_C (incremental compile) = %v\n", rep.CompileTime)
	fmt.Printf("  t_L (device patch)        = %v\n", rep.LoadTime)
	fmt.Printf("  stages: +%v -%v\n", rep.Compiler.AddedStages, rep.Compiler.RemovedStages)
	fmt.Printf("  TSP templates rewritten: %v (of 16)\n", rep.Compiler.RewrittenTSPs)
	fmt.Printf("  only new tables need population: %v\n", rep.Compiler.NewTables)
	fmt.Printf("  pipeline stall so far: %v\n", sw.Pipeline().StallTime())

	// Two equal-cost members for nexthop group 7.
	nhA := pkt.MAC{0x02, 0, 0, 0, 0, 0x03}
	nhB := pkt.MAC{0x02, 0, 0, 0, 0, 0x33}
	for _, m := range []pkt.MAC{nhA, nhB} {
		if err := ctl.AddMember(ctrlplane.MemberReq{
			Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: 7},
			Tag: 1, Params: []uint64{200, m.Uint64()},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := ctl.InsertEntry(ctrlplane.EntryReq{
		Table: "dmac_tbl",
		Keys:  []ctrlplane.FieldValue{{Value: 200}, {Value: nhB.Uint64()}},
		Tag:   1, Params: []uint64{4},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done
	fmt.Printf("traffic total: %d sent, %d delivered\n", sent.Load(), delivered.Load())

	// Show the spread: 64 distinct flows over the two members.
	spread := map[pkt.MAC]int{}
	for i := 0; i < 64; i++ {
		raw, _ := pkt.Serialize(
			&pkt.Ethernet{Dst: experiments.RouterMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 0xFE}, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 1, byte(i), byte(3 * i)}},
			&pkt.TCP{SrcPort: uint16(1000 + i), DstPort: 80},
		)
		p, err := sw.ProcessPacket(raw, 1)
		if err != nil {
			log.Fatal(err)
		}
		var eth pkt.Ethernet
		_ = eth.Decode(p.Data)
		spread[eth.Dst]++
	}
	fmt.Printf("ECMP spread over 64 flows: %s=%d %s=%d\n", nhA, spread[nhA], nhB, spread[nhB])
}
