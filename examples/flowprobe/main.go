// Use case C3 (paper Sec. 4.2): install an event-triggered flow probe at
// runtime. The probe counts packets of selected IPv4 flows in a register;
// once a flow crosses its threshold, its packets are marked and cloned to
// the CPU so the controller can react (e.g. install ACL/QoS rules).
//
// Run from the repository root:
//
//	go run ./examples/flowprobe
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/experiments"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
)

func main() {
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	ctl, err := core.NewController("base_l2l3.rp4", string(src), opts, sw)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.PopulateBase(sw, ctl.CurrentConfig(), 4); err != nil {
		log.Fatal(err)
	}

	script, err := os.ReadFile("testdata/flowprobe.script")
	if err != nil {
		log.Fatal(err)
	}
	loader := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		return string(b), err
	}
	rep, err := ctl.ApplyUpdate(string(script), loader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe loaded at runtime: t_C=%v t_L=%v, new table %v, register file extended\n",
		rep.CompileTime, rep.LoadTime, rep.Compiler.NewTables)

	// Probe the flow 10.0.0.1 -> 10.7.7.7 at register slot 42 with
	// threshold 3.
	const threshold = 3
	if _, err := ctl.InsertEntry(ctrlplane.EntryReq{
		Table: "flow_probe",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A070707}},
		Tag:   1, Params: []uint64{42, threshold},
	}); err != nil {
		log.Fatal(err)
	}

	mkPkt := func(src [4]byte) []byte {
		raw, _ := pkt.Serialize(
			&pkt.Ethernet{Dst: experiments.RouterMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 0xFE}, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: src, Dst: [4]byte{10, 7, 7, 7}},
			&pkt.TCP{SrcPort: 999, DstPort: 80},
		)
		return raw
	}

	for i := 1; i <= 6; i++ {
		p, err := sw.ProcessPacket(mkPkt([4]byte{10, 0, 0, 1}), 1)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if p.ToCPU {
			marker = "  <-- over threshold, punted to CPU"
		}
		fmt.Printf("packet %d of probed flow: delivered=%v%s\n", i, !p.Drop, marker)
	}
	// A different flow is untouched.
	p, _ := sw.ProcessPacket(mkPkt([4]byte{10, 0, 0, 9}), 1)
	fmt.Printf("unprobed flow: delivered=%v punted=%v\n", !p.Drop, p.ToCPU)

	// The controller reads the counter and drains the punt queue.
	count, err := sw.ReadRegister("flow_cnt", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow_cnt[42] = %d (threshold %d)\n", count, threshold)
	fmt.Printf("punt queue holds %d cloned packets for the controller\n", len(sw.PuntQueue()))
	clone := <-sw.PuntQueue()
	tuple, _ := pkt.ExtractFiveTuple(clone.Data)
	fmt.Printf("first punted packet: %s -> %s (the controller would install an ACL here)\n",
		tuple.Src, tuple.Dst)
}
