// Use case C2 (paper Sec. 4.2): load IPv6 Segment Routing at runtime. The
// update introduces a brand-new protocol header (the SRH) and links it
// into the running switch's header list (Fig. 5c) — the capability PISA
// fundamentally lacks.
//
// Run from the repository root:
//
//	go run ./examples/srv6_insitu
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/core"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/experiments"
	"ipsa/internal/ipbm"
	"ipsa/internal/pkt"
)

func main() {
	sw, err := ipbm.New(ipbm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	src, err := os.ReadFile("testdata/base_l2l3.rp4")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	ctl, err := core.NewController("base_l2l3.rp4", string(src), opts, sw)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.PopulateBase(sw, ctl.CurrentConfig(), 4); err != nil {
		log.Fatal(err)
	}

	// Before the update the switch does not know the SRH.
	if ctl.CurrentConfig().HeaderByName("srh") != nil {
		log.Fatal("srh known before the update?")
	}
	fmt.Println("before update: switch parses", len(ctl.CurrentConfig().Headers), "header types (no SRH)")

	script, err := os.ReadFile("testdata/srv6.script")
	if err != nil {
		log.Fatal(err)
	}
	loader := func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		return string(b), err
	}
	rep, err := ctl.ApplyUpdate(string(script), loader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update applied: t_C=%v t_L=%v, header links changed: %v\n",
		rep.CompileTime, rep.LoadTime, rep.Compiler.HeaderLinksChanged)
	srh := ctl.CurrentConfig().HeaderByName("srh")
	fmt.Printf("after update: SRH installed as header id %d (varlen base %dB unit %dB)\n",
		srh.ID, srh.VarLen.BaseBytes, srh.VarLen.UnitBytes)

	// SR endpoint state: our SID is 2001::aa; packets for it advance to
	// the next segment.
	sid := make([]byte, 16)
	sid[0], sid[1], sid[15] = 0x20, 0x01, 0xaa
	if _, err := ctl.InsertEntry(ctrlplane.EntryReq{
		Table: "local_sid", Keys: []ctrlplane.FieldValue{{Bytes: sid}}, Tag: 1,
	}); err != nil {
		log.Fatal(err)
	}

	// An SRv6 packet: dst = our SID, next segment 2001::bb (covered by
	// the base 2001::/32 route).
	var next, last [16]byte
	next[0], next[1], next[15] = 0x20, 0x01, 0xbb
	last[0], last[15] = 0xfd, 0x99
	ip := pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64}
	copy(ip.Dst[:], sid)
	ip.Src[15] = 1
	srhHdr := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{next, last}}
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: experiments.RouterMAC, Src: pkt.MAC{2, 0, 0, 0, 0, 0xFE}, EtherType: pkt.EtherTypeIPv6},
		&ip, &srhHdr,
		&pkt.TCP{SrcPort: 7, DstPort: 8},
	)
	if err != nil {
		log.Fatal(err)
	}
	p, err := sw.ProcessPacket(raw, 1)
	if err != nil {
		log.Fatal(err)
	}
	var outIP pkt.IPv6
	var outSRH pkt.SRH
	_ = outIP.Decode(p.Data[pkt.EthernetLen:])
	_ = outSRH.Decode(p.Data[pkt.EthernetLen+pkt.IPv6Len:])
	fmt.Printf("SR endpoint processed: dst %x -> %x, segments_left %d -> %d, out port %d\n",
		sid[14:], outIP.Dst[14:], 1, outSRH.SegmentsLeft, p.OutPort)
	if p.Drop {
		log.Fatal("packet dropped")
	}

	// Failback (the paper's live-trial story): roll the trial back.
	st, err := ctl.Rollback()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolled back: %d TSPs rewritten, SRv6 tables dropped: %d\n",
		st.TSPsWritten, st.TablesDropped)
	if ctl.CurrentConfig().HeaderByName("srh") != nil {
		log.Fatal("srh survived rollback")
	}
	fmt.Println("switch is back on the base design; pure L3 forwarding unaffected")
}
