// Package tsp implements the Templated Stage Processor (paper Sec. 2.2):
// the parser–matcher–executor triad that interprets downloaded template
// parameters. A TSP is not compiled against any protocol; everything it
// does — which headers to parse, which fields to extract, which table to
// point at, which action primitives to run — comes from a template.Config
// produced by rp4bc, which is what makes runtime reprogramming a
// template download instead of a pipeline rebuild.
package tsp
