package tsp

import (
	"fmt"
	"sync/atomic"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// TableBackend is what a TSP's matcher needs from the storage module: a
// lookup per logical table. The ipbm device implements it over the
// disaggregated memory pool; tests implement it directly.
type TableBackend interface {
	// Lookup performs a plain table lookup.
	Lookup(table string, key []byte) (match.Result, bool)
	// LookupSelector resolves a selector (ECMP) table: the group is picked
	// by exact match on groupKey, the member by hash.
	LookupSelector(table string, groupKey []byte, hash uint64) (match.Result, bool)
}

// StageRuntime executes one logical stage template.
type StageRuntime struct {
	tmpl    *template.Stage
	tables  map[string]*template.Table
	actions map[string]*template.Action

	packets  atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	defaults atomic.Uint64
}

// NewStageRuntime binds a stage template to its design's tables/actions.
func NewStageRuntime(cfg *template.Config, name string) (*StageRuntime, error) {
	st, ok := cfg.Stages[name]
	if !ok {
		return nil, fmt.Errorf("tsp: no stage %q in config", name)
	}
	sr := &StageRuntime{
		tmpl:    st,
		tables:  make(map[string]*template.Table),
		actions: make(map[string]*template.Action),
	}
	for _, tn := range st.Tables {
		t, ok := cfg.Tables[tn]
		if !ok {
			return nil, fmt.Errorf("tsp: stage %q uses unknown table %q", name, tn)
		}
		sr.tables[tn] = t
	}
	for _, arm := range st.Arms {
		a, ok := cfg.Actions[arm.Action]
		if !ok {
			return nil, fmt.Errorf("tsp: stage %q arm uses unknown action %q", name, arm.Action)
		}
		sr.actions[arm.Action] = a
	}
	return sr, nil
}

// Name returns the stage name.
func (sr *StageRuntime) Name() string { return sr.tmpl.Name }

// Template returns the underlying template.
func (sr *StageRuntime) Template() *template.Stage { return sr.tmpl }

// Stats reports packets seen, table hits and misses.
func (sr *StageRuntime) Stats() (packets, hits, misses uint64) {
	return sr.packets.Load(), sr.hits.Load(), sr.misses.Load()
}

// Defaults reports how often the default arm ran (miss or no-apply).
func (sr *StageRuntime) Defaults() uint64 { return sr.defaults.Load() }

// matchOutcome is what the matcher hands the executor.
type matchOutcome struct {
	applied bool
	hit     bool
	tag     uint64
	params  []uint64
	table   string // the table the stage applied, for tracing
}

// Execute runs the stage's parse-match-execute triad on one packet.
func (sr *StageRuntime) Execute(p *pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	sr.packets.Add(1)
	env.Pkt = p
	// Parser submodule: just-in-time parsing of the declared headers.
	parser.EnsureAll(p, sr.tmpl.Parse)
	// Matcher submodule.
	out := matchOutcome{}
	sr.runMatch(sr.tmpl.Match, env, backend, &out)
	if out.applied {
		if out.hit {
			sr.hits.Add(1)
		} else {
			sr.misses.Add(1)
		}
	}
	// Executor submodule: select the arm by the matched entry's tag;
	// misses and no-apply paths take the default arm.
	var arm *template.Arm
	var def *template.Arm
	for i := range sr.tmpl.Arms {
		a := &sr.tmpl.Arms[i]
		if a.Default {
			def = a
			continue
		}
		if out.applied && out.hit && a.Tag == out.tag {
			arm = a
		}
	}
	isDefault := false
	if arm == nil {
		arm = def
		isDefault = arm != nil
	}
	if isDefault {
		sr.defaults.Add(1)
	}
	if env.Trace != nil {
		ev := telemetry.StageEvent{
			TSP: env.TSPIndex, Stage: sr.tmpl.Name, Table: out.table,
			Applied: out.applied, Hit: out.hit, Tag: out.tag, Default: isDefault,
		}
		if arm != nil {
			ev.Action = arm.Action
		}
		env.Trace.AddStage(ev)
	}
	if arm == nil {
		return
	}
	act := sr.actions[arm.Action]
	if act == nil {
		env.Faults.BadTemplate.Add(1)
		return
	}
	env.Params = out.params
	env.ExecInstrs(act.Body)
	env.Params = nil
}

func (sr *StageRuntime) runMatch(stmts []template.MatchStmt, env *Env, backend TableBackend, out *matchOutcome) {
	for i := range stmts {
		st := &stmts[i]
		switch st.Kind {
		case template.MatchIf:
			if env.EvalCond(st.Cond) {
				sr.runMatch(st.Then, env, backend, out)
			} else {
				sr.runMatch(st.Else, env, backend, out)
			}
		case template.MatchApply:
			if out.applied {
				// One table application per stage per packet; extra
				// applies are template bugs.
				env.Faults.BadTemplate.Add(1)
				continue
			}
			t := sr.tables[st.Table]
			if t == nil {
				env.Faults.BadTemplate.Add(1)
				continue
			}
			out.applied = true
			out.table = t.Name
			var res match.Result
			var ok bool
			if t.IsSelector {
				group, gok := env.operandBytes(&t.Keys[0].Operand, env.groupBuf)
				if !gok {
					break
				}
				env.groupBuf = group[:0]
				h := uint64(fnvOffset64)
				for k := 1; k < len(t.Keys); k++ {
					raw, rok := env.operandBytes(&t.Keys[k].Operand, env.fieldBuf)
					if !rok {
						break
					}
					env.fieldBuf = raw[:0]
					for _, b := range raw {
						h ^= uint64(b)
						h *= fnvPrime64
					}
				}
				res, ok = backend.LookupSelector(t.Name, group, finalizeHash(h))
			} else {
				key, kok := BuildKey(env, t)
				if !kok {
					break
				}
				res, ok = backend.Lookup(t.Name, key)
			}
			if ok {
				out.hit = true
				out.tag = uint64(res.ActionID)
				out.params = res.Params
			}
		}
	}
}

// BuildKey assembles a table's lookup key by concatenating its key fields
// bit by bit (MSB first), padded to whole bytes at the tail. The control
// plane uses the same layout via ctrlplane.EncodeKey so inserted entries
// and data-plane lookups agree.
//
// The returned slice aliases the Env's scratch buffer and is valid only
// until the next BuildKey call on the same Env; lookup engines never
// retain it (exact engines copy via string conversion).
func BuildKey(env *Env, t *template.Table) ([]byte, bool) {
	n := (t.KeyWidth + 7) / 8
	if cap(env.keyBuf) < n {
		env.keyBuf = make([]byte, n)
	}
	key := env.keyBuf[:n]
	for i := range key {
		key[i] = 0
	}
	bit := 0
	for i := range t.Keys {
		o := &t.Keys[i].Operand
		raw, ok := env.operandBytes(o, env.fieldBuf)
		if !ok {
			return nil, false
		}
		env.fieldBuf = raw[:0]
		if err := appendBits(key, bit, o.Width, raw); err != nil {
			return nil, false
		}
		bit += o.Width
	}
	return key, true
}

// appendBits copies a width-bit field (right-aligned in raw) into dst at
// bit offset.
func appendBits(dst []byte, bitOff, width int, raw []byte) error {
	return pkt.SetBytes(dst, bitOff, width, raw)
}
