package tsp

import (
	"fmt"
	"sync/atomic"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// TableBackend is what a TSP's matcher needs from the storage module: a
// lookup per logical table. The ipbm device implements it over the
// disaggregated memory pool; tests implement it directly.
type TableBackend interface {
	// Lookup performs a plain table lookup.
	Lookup(table string, key []byte) (match.Result, bool)
	// LookupSelector resolves a selector (ECMP) table: the group is picked
	// by exact match on groupKey, the member by hash.
	LookupSelector(table string, groupKey []byte, hash uint64) (match.Result, bool)
}

// ResolvedTable is a direct handle to one backend table. Compiled
// programs bind these once at apply time so per-packet applies skip the
// backend's name-keyed resolution; semantics are identical to
// TableBackend.Lookup on the same table.
type ResolvedTable interface {
	Lookup(key []byte) (match.Result, bool)
}

// TableResolver is optionally implemented by backends that can hand out
// direct handles for plain (non-selector) tables.
type TableResolver interface {
	ResolveTable(name string) (ResolvedTable, bool)
}

// ResolvedSelector is the selector-table counterpart of ResolvedTable:
// a direct group/member handle bound at apply time.
type ResolvedSelector interface {
	LookupMember(group []byte, hash uint64) (match.Result, bool)
}

// SelectorResolver is optionally implemented by backends that can hand
// out direct selector handles.
type SelectorResolver interface {
	ResolveSelector(name string) (ResolvedSelector, bool)
}

// Prefetcher is optionally implemented by resolved tables whose engine
// can touch the bucket a key would probe (software prefetch). The return
// value is an arbitrary tag of the touched slot; callers sink it into the
// Env so the load cannot be dead-code-eliminated. CanPrefetch reports
// whether the underlying engine actually supports it — a handle whose
// engine cannot (LPM, ternary) returns false and the stage runs without
// speculative key builds rather than paying them for nothing.
type Prefetcher interface {
	CanPrefetch() bool
	Prefetch(key []byte) uint64
}

// PrefetchAdvisor is optionally implemented by prefetchable handles that
// can also tell whether prefetching is worthwhile *right now*: a table
// whose resident probe array fits in cache gains nothing from a one-ahead
// touch but still pays the speculative key build. The batch executor asks
// once per stage per batch, so the table can grow into (or shrink out of)
// prefetching as entries change without a rebind.
type PrefetchAdvisor interface {
	PrefetchUseful() bool
}

// DirectTable is an optional extension of ResolvedTable: a handle that
// can split the engine probe from hit/miss accounting. The fused tier's
// inline apply path uses it to run lookups engine-direct and batch the
// counter updates on the Env (two register increments per packet, flushed
// to the shared atomics once per batch) — see Env.flushTableStats.
type DirectTable interface {
	LookupNoCount(key []byte) (match.Result, bool)
	AddLookupStats(hits, misses uint64)
}

// StageRuntime executes one logical stage template.
type StageRuntime struct {
	tmpl    *template.Stage
	tables  map[string]*template.Table
	actions map[string]*template.Action

	// prog, when non-nil, is the flat instruction program lowered from the
	// template at bind time (ExecCompiled and ExecFused). Nil selects the
	// reference tree interpreter (ExecInterp).
	prog *stageProg

	// fused, when non-nil, is the second-stage lowering of prog to native
	// Go closures (ExecFused; see fuse.go). It shares prog's table list,
	// key plans and bind-time handles.
	fused *fusedProg

	// pfTable/pfPlan drive the batch executor's one-packet-ahead software
	// prefetch: set by Bind when the stage applies exactly one plain
	// exact-match table whose resolved handle supports it.
	pfTable Prefetcher
	pfPlan  *keyPlan

	// intStamp/intStageID are the interpreter's INT epilogue (compiled
	// stages carry it as prog.post instead); set by NewStageRuntimeOpts.
	intStamp   bool
	intStageID uint16

	// parseMask is the stage's needed-header set as a bitmask (valid when
	// parseMaskOK: every parsed HeaderID < 64). When the packet's header
	// vector already covers it, executeOne skips the parser walk with one
	// AND — the common case for every stage after the first.
	parseMask   uint64
	parseMaskOK bool

	packets  atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	defaults atomic.Uint64
}

// NewStageRuntime binds a stage template to its design's tables/actions,
// lowering it through both compile stages to fused closures (the default
// executor).
func NewStageRuntime(cfg *template.Config, name string) (*StageRuntime, error) {
	return NewStageRuntimeMode(cfg, name, ExecFused)
}

// NewStageRuntimeMode binds a stage template with an explicit executor
// mode; ExecInterp keeps the tree-walking reference interpreter.
func NewStageRuntimeMode(cfg *template.Config, name string, mode ExecMode) (*StageRuntime, error) {
	st, ok := cfg.Stages[name]
	if !ok {
		return nil, fmt.Errorf("tsp: no stage %q in config", name)
	}
	sr := &StageRuntime{
		tmpl:    st,
		tables:  make(map[string]*template.Table),
		actions: make(map[string]*template.Action),
	}
	for _, tn := range st.Tables {
		t, ok := cfg.Tables[tn]
		if !ok {
			return nil, fmt.Errorf("tsp: stage %q uses unknown table %q", name, tn)
		}
		sr.tables[tn] = t
	}
	for _, arm := range st.Arms {
		a, ok := cfg.Actions[arm.Action]
		if !ok {
			return nil, fmt.Errorf("tsp: stage %q arm uses unknown action %q", name, arm.Action)
		}
		sr.actions[arm.Action] = a
	}
	sr.parseMaskOK = true
	for _, id := range st.Parse {
		if id < 0 || id >= 64 {
			sr.parseMask, sr.parseMaskOK = 0, false
			break
		}
		sr.parseMask |= 1 << uint(id)
	}
	switch mode {
	case ExecCompiled:
		sr.prog = compileStage(sr)
	case ExecFused:
		sr.prog = compileStage(sr)
		sr.fused = fuseStage(sr)
	}
	return sr, nil
}

// Compiled reports whether the stage runs a compiled program (flat VM or
// fused closures) rather than the tree interpreter.
func (sr *StageRuntime) Compiled() bool { return sr.prog != nil }

// Fused reports whether the stage runs the fused-closure tier.
func (sr *StageRuntime) Fused() bool { return sr.fused != nil }

// Bind resolves the compiled program's table references against the
// backend, if it supports direct handles. Called at apply time after the
// backend's tables exist; a no-op for the interpreter (whose applies stay
// name-keyed) and for backends without a resolver. Handles stay valid
// across entry inserts and migrations — only a table drop invalidates
// them, and a drop always comes with new runtimes for the stages that
// referenced it.
func (sr *StageRuntime) Bind(backend TableBackend) {
	if sr.prog == nil {
		return
	}
	res, rok := backend.(TableResolver)
	sel, sok := backend.(SelectorResolver)
	if rok {
		sr.prog.resolved = make([]ResolvedTable, len(sr.prog.tables))
		sr.prog.direct = make([]DirectTable, len(sr.prog.tables))
	}
	if sok {
		sr.prog.resolvedSels = make([]ResolvedSelector, len(sr.prog.tables))
	}
	for i, t := range sr.prog.tables {
		if t.IsSelector {
			if sok {
				if rs, found := sel.ResolveSelector(t.Name); found {
					sr.prog.resolvedSels[i] = rs
				}
			}
			continue
		}
		if rok {
			if rt, found := res.ResolveTable(t.Name); found {
				sr.prog.resolved[i] = rt
				if dt, ok := rt.(DirectTable); ok {
					sr.prog.direct[i] = dt
				}
			}
		}
	}
	// Arm the batch executor's one-ahead prefetch for the common stage
	// shape: exactly one plain table with a compiled key plan, resolved to
	// a handle that can touch its bucket. Advisory only — batches run
	// identically without it.
	sr.pfTable, sr.pfPlan = nil, nil
	if sr.fused != nil && len(sr.prog.tables) == 1 && !sr.prog.tables[0].IsSelector &&
		sr.prog.keyPlans[0] != nil && sr.prog.resolved != nil {
		if pf, ok := sr.prog.resolved[0].(Prefetcher); ok && pf.CanPrefetch() {
			sr.pfTable = pf
			sr.pfPlan = sr.prog.keyPlans[0]
		}
	}
}

// Name returns the stage name.
func (sr *StageRuntime) Name() string { return sr.tmpl.Name }

// Template returns the underlying template.
func (sr *StageRuntime) Template() *template.Stage { return sr.tmpl }

// Stats reports packets seen, table hits and misses.
func (sr *StageRuntime) Stats() (packets, hits, misses uint64) {
	return sr.packets.Load(), sr.hits.Load(), sr.misses.Load()
}

// Defaults reports how often the default arm ran (miss or no-apply).
func (sr *StageRuntime) Defaults() uint64 { return sr.defaults.Load() }

// matchOutcome is what the matcher hands the executor.
type matchOutcome struct {
	applied bool
	hit     bool
	tag     uint64
	params  []uint64
	table   string // the table the stage applied, for tracing
}

// Execute runs the stage's parse-match-execute triad on one packet.
func (sr *StageRuntime) Execute(p *pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	sr.packets.Add(1)
	applied, hit, isDefault := sr.executeOne(p, parser, backend, env)
	env.flushTableStats()
	if applied {
		if hit {
			sr.hits.Add(1)
		} else {
			sr.misses.Add(1)
		}
	}
	if isDefault {
		sr.defaults.Add(1)
	}
}

// ExecuteBatch runs the stage over every live packet of a batch before
// the pipeline advances to the next stage: per-stage state (match tables,
// closures, key plans) stays cache-hot across the batch, and the stage
// counters — four contended atomics per packet on the scalar path — are
// accumulated in registers and flushed once. Packets already dropped by
// an earlier stage are skipped, preserving the scalar path's
// break-on-drop semantics. Trace and Timed are re-pointed per packet from
// the packet itself. When Bind armed a prefetcher, the next live packet's
// table bucket is touched one packet ahead.
func (sr *StageRuntime) ExecuteBatch(ps []*pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	var packets, hits, misses, defaults uint64
	n := len(ps)
	// One-ahead prefetch, re-advised once per batch: a table whose probe
	// array is currently cache-resident declines, and the batch skips the
	// speculative key builds entirely.
	pf := sr.pfTable
	if pf != nil {
		if adv, ok := pf.(PrefetchAdvisor); ok && !adv.PrefetchUseful() {
			pf = nil
		}
	}
	for i, p := range ps {
		if p == nil || p.Drop {
			continue
		}
		if pf != nil {
			for j := i + 1; j < n; j++ {
				if nx := ps[j]; nx != nil && !nx.Drop {
					sr.prefetchFor(nx, env)
					break
				}
			}
		}
		packets++
		env.Trace = p.Trace
		env.Timed = p.Timed
		applied, hit, isDefault := sr.executeOne(p, parser, backend, env)
		if applied {
			if hit {
				hits++
			} else {
				misses++
			}
		}
		if isDefault {
			defaults++
		}
	}
	env.flushTableStats()
	if packets != 0 {
		sr.packets.Add(packets)
		if hits != 0 {
			sr.hits.Add(hits)
		}
		if misses != 0 {
			sr.misses.Add(misses)
		}
		if defaults != 0 {
			sr.defaults.Add(defaults)
		}
	}
}

// prefetchFor speculatively builds nx's lookup key for the stage's single
// table and touches the bucket it would probe, so the real lookup one
// packet later finds the line resident. Strictly advisory and free of
// side effects: no fault counters, a separate scratch buffer, and any
// unreadable field aborts silently (the real lookup faults properly).
func (sr *StageRuntime) prefetchFor(nx *pkt.Packet, env *Env) {
	kp := sr.pfPlan
	if cap(env.specBuf) < kp.nBytes {
		env.specBuf = make([]byte, kp.nBytes)
	}
	key := env.specBuf[:kp.nBytes]
	for i := range key {
		key[i] = 0
	}
	for si := range kp.steps {
		s := &kp.steps[si]
		if s.width > 64 {
			return
		}
		var v uint64
		var err error
		switch s.kind {
		case keyMeta:
			v, err = pkt.GetBits(nx.Meta, s.bitOff, s.width)
		case keyHdr:
			loc, ok := nx.HV.Loc(s.hdr)
			if !ok {
				return
			}
			v, err = pkt.GetBits(nx.Data, loc.Off*8+s.bitOff, s.width)
		default: // keyValue: params are not bound during match, consts only.
			if s.op == nil || s.op.Kind != template.OpdConst {
				return
			}
			v = s.op.Const
		}
		if err != nil {
			return
		}
		if pkt.SetBits(key, s.dstOff, s.width, v) != nil {
			return
		}
	}
	env.prefetched += sr.pfTable.Prefetch(key)
}

// executeOne is the per-packet core shared by Execute and ExecuteBatch.
// Callers own the stage counters (batches flush them once per batch).
func (sr *StageRuntime) executeOne(p *pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) (applied, hit, isDefault bool) {
	env.Pkt = p
	// Parser submodule: just-in-time parsing of the declared headers. The
	// mask compare short-circuits the per-header walk when everything the
	// stage needs is already in the packet's header vector — Ensure on an
	// already-valid header is a no-op, so skipping it changes nothing.
	if !(sr.parseMaskOK && p.HV.HasAll(sr.parseMask)) {
		parser.EnsureAll(p, sr.tmpl.Parse)
	}
	// Matcher submodule. The outcome lives on the Env, not the stack:
	// its address flows into closure calls on the fused tier, and a
	// stack-local would escape (one allocation per stage per packet).
	out := &env.matchOut
	*out = matchOutcome{}
	if sr.fused != nil {
		if sr.fused.match != nil {
			sr.fused.match(env, backend, out)
		}
	} else if sr.prog != nil {
		env.ensureStack(sr.prog.maxStack)
		env.exec(sr.prog.match, sr.prog, backend, out)
	} else {
		sr.runMatch(sr.tmpl.Match, env, backend, out)
	}
	// Executor submodule: select the arm by the matched entry's tag;
	// misses and no-apply paths take the default arm. Compiled programs
	// carry a precomputed dispatch table; the interpreter scans the
	// template's arm list. Both pick the last declaration on a tie.
	armIdx, defIdx := -1, -1
	if sr.prog != nil {
		defIdx = sr.prog.defaultArm
		if out.applied && out.hit {
			// Backwards with early exit: the first match from the end is
			// the interpreter's last-declaration-wins.
			tags := sr.prog.armTags
			for i := len(tags) - 1; i >= 0; i-- {
				if tags[i] == out.tag {
					armIdx = sr.prog.armAt[i]
					break
				}
			}
		}
	} else {
		for i := range sr.tmpl.Arms {
			a := &sr.tmpl.Arms[i]
			if a.Default {
				defIdx = i
				continue
			}
			if out.applied && out.hit && a.Tag == out.tag {
				armIdx = i
			}
		}
	}
	if armIdx == -1 {
		armIdx = defIdx
		isDefault = armIdx != -1
	}
	if env.Trace != nil {
		ev := telemetry.StageEvent{
			TSP: env.TSPIndex, Stage: sr.tmpl.Name, Table: out.table,
			Applied: out.applied, Hit: out.hit, Tag: out.tag, Default: isDefault,
		}
		if armIdx != -1 {
			ev.Action = sr.tmpl.Arms[armIdx].Action
		}
		env.Trace.AddStage(ev)
	}
	if armIdx != -1 {
		if sr.fused != nil {
			if arm := sr.fused.arms[armIdx]; arm != nil {
				env.Params = out.params
				arm(env)
				env.Params = nil
			}
		} else if sr.prog != nil {
			env.Params = out.params
			env.exec(sr.prog.arms[armIdx].code, sr.prog, backend, out)
			env.Params = nil
		} else if act := sr.actions[sr.tmpl.Arms[armIdx].Action]; act == nil {
			env.Faults.BadTemplate.Add(1)
		} else {
			env.Params = out.params
			env.ExecInstrs(act.Body)
			env.Params = nil
		}
	}
	// Stage epilogue: the INT stamp, when this runtime was built with it.
	// Runs whether or not an arm matched (the stage still processed the
	// packet) but not for drops — a dropped packet's trailer is never
	// egressed, so stamping it would only distort the flow-path counters.
	if sr.fused != nil {
		if sr.fused.post != nil && !p.Drop {
			sr.fused.post(env)
		}
	} else if sr.prog != nil {
		if sr.prog.post != nil && !p.Drop {
			env.exec(sr.prog.post, sr.prog, backend, out)
		}
	} else if sr.intStamp && !p.Drop {
		env.intStamp(sr.intStageID)
	}
	return out.applied, out.hit, isDefault
}

func (sr *StageRuntime) runMatch(stmts []template.MatchStmt, env *Env, backend TableBackend, out *matchOutcome) {
	for i := range stmts {
		st := &stmts[i]
		switch st.Kind {
		case template.MatchIf:
			if env.EvalCond(st.Cond) {
				sr.runMatch(st.Then, env, backend, out)
			} else {
				sr.runMatch(st.Else, env, backend, out)
			}
		case template.MatchApply:
			if out.applied {
				// One table application per stage per packet; extra
				// applies are template bugs.
				env.Faults.BadTemplate.Add(1)
				continue
			}
			t := sr.tables[st.Table]
			if t == nil {
				env.Faults.BadTemplate.Add(1)
				continue
			}
			env.applyTable(t, backend, out)
		}
	}
}

// applyTable performs one table application: key/group construction,
// backend lookup, and outcome recording. Both the interpreter and the
// compiled executor funnel through this so lookup semantics (including the
// skip-on-unreadable-key paths) cannot diverge between the two.
func (e *Env) applyTable(t *template.Table, backend TableBackend, out *matchOutcome) {
	e.applyTableWith(t, nil, nil, nil, backend, out)
}

// applyTableWith is applyTable with optional compile/bind-time shortcuts:
// direct table/selector handles (rt/rs) that skip the backend's name
// resolution, and a key plan (kp) that skips the generic key builder's
// per-field operand dispatch. Key bytes, selector handling, fault
// ordering and outcome recording are byte-identical either way.
func (e *Env) applyTableWith(t *template.Table, rt ResolvedTable, rs ResolvedSelector, kp *keyPlan, backend TableBackend, out *matchOutcome) {
	out.applied = true
	out.table = t.Name
	var res match.Result
	var ok bool
	if t.IsSelector {
		group, gok := e.operandBytes(&t.Keys[0].Operand, e.groupBuf)
		if !gok {
			return
		}
		e.groupBuf = group[:0]
		var h uint64
		if kp != nil && kp.sel {
			h = e.hashPlanned(kp)
		} else {
			h = uint64(fnvOffset64)
			for k := 1; k < len(t.Keys); k++ {
				raw, rok := e.operandBytes(&t.Keys[k].Operand, e.fieldBuf)
				if !rok {
					break
				}
				e.fieldBuf = raw[:0]
				for _, b := range raw {
					h ^= uint64(b)
					h *= fnvPrime64
				}
			}
		}
		if rs != nil {
			res, ok = rs.LookupMember(group, finalizeHash(h))
		} else {
			res, ok = backend.LookupSelector(t.Name, group, finalizeHash(h))
		}
	} else {
		var key []byte
		var kok bool
		if kp != nil {
			key, kok = e.buildKeyPlanned(kp)
		} else {
			key, kok = BuildKey(e, t)
		}
		if !kok {
			return
		}
		if rt != nil {
			res, ok = rt.Lookup(key)
		} else {
			res, ok = backend.Lookup(t.Name, key)
		}
	}
	if ok {
		out.hit = true
		out.tag = uint64(res.ActionID)
		out.params = res.Params
	}
}

// keySlot returns the Env's zeroed n-byte key scratch slice.
func (e *Env) keySlot(n int) []byte {
	if cap(e.keyBuf) < n {
		e.keyBuf = make([]byte, n)
	}
	key := e.keyBuf[:n]
	for i := range key {
		key[i] = 0
	}
	return key
}

// flushTableStats credits the hit/miss counts the fused inline-apply path
// accumulated on this Env to their table and clears the batch. Execute
// flushes per packet, ExecuteBatch once per batch; either way the shared
// table counters are exact at every public boundary.
func (e *Env) flushTableStats() {
	if e.statTbl != nil {
		if e.statHits|e.statMisses != 0 {
			e.statTbl.AddLookupStats(e.statHits, e.statMisses)
			e.statHits, e.statMisses = 0, 0
		}
		e.statTbl = nil
	}
}

// buildKeyPlanned is BuildKey over a compiled key plan: field sources,
// widths and key positions were resolved at compile time, so the
// per-packet work is bounds-checked copies. It must produce the same
// bytes and the same fault/abort sequence as BuildKey on the same table.
func (e *Env) buildKeyPlanned(p *keyPlan) ([]byte, bool) {
	key := e.keySlot(p.nBytes)
	for si := range p.steps {
		s := &p.steps[si]
		switch s.kind {
		case keyMeta:
			if s.aligned {
				so, nb := s.bitOff/8, s.width/8
				if so+nb > len(e.Pkt.Meta) {
					e.Faults.BadTemplate.Add(1)
					return nil, false
				}
				copy(key[s.dstOff/8:], e.Pkt.Meta[so:so+nb])
				continue
			}
			if !e.keyCopyBits(key, s, e.Pkt.Meta, s.bitOff) {
				return nil, false
			}
		case keyHdr:
			loc, ok := e.Pkt.HV.Loc(s.hdr)
			if !ok {
				e.Faults.InvalidHeaderAccess.Add(1)
				return nil, false
			}
			src := loc.Off*8 + s.bitOff
			if s.aligned {
				so, nb := src/8, s.width/8
				if so+nb > len(e.Pkt.Data) {
					e.Faults.BadTemplate.Add(1)
					return nil, false
				}
				copy(key[s.dstOff/8:], e.Pkt.Data[so:so+nb])
				continue
			}
			if !e.keyCopyBits(key, s, e.Pkt.Data, src) {
				return nil, false
			}
		default: // keyValue: constants, params — ReadOperand faults inside.
			v := e.ReadOperand(s.op)
			off, w := s.dstOff, s.width
			if w > 64 {
				// Value kinds carry at most 64 significant bits; the
				// high bits of the field stay zero (the key is zeroed).
				off += w - 64
				w = 64
			}
			if err := pkt.SetBits(key, off, w, v); err != nil {
				return nil, false
			}
		}
	}
	return key, true
}

// hashPlanned folds a selector's hashed fields over a compiled plan.
// Every field fits a register (the compiler rejects wider ones), so the
// fold runs load-shift-mix with no scratch buffer. Byte order, fault
// kinds and the stop-hashing-keep-looking-up behaviour on a faulted
// field all mirror the generic operandBytes loop.
func (e *Env) hashPlanned(p *keyPlan) uint64 {
	h := uint64(fnvOffset64)
loop:
	for si := range p.steps {
		s := &p.steps[si]
		var v uint64
		switch s.kind {
		case keyMeta:
			var err error
			v, err = pkt.GetBits(e.Pkt.Meta, s.bitOff, s.width)
			if err != nil {
				e.Faults.BadTemplate.Add(1)
				break loop
			}
		case keyHdr:
			loc, ok := e.Pkt.HV.Loc(s.hdr)
			if !ok {
				e.Faults.InvalidHeaderAccess.Add(1)
				break loop
			}
			var err error
			v, err = pkt.GetBits(e.Pkt.Data, loc.Off*8+s.bitOff, s.width)
			if err != nil {
				e.Faults.BadTemplate.Add(1)
				break loop
			}
		default: // keyValue — ReadOperand faults inside, never aborts.
			v = e.ReadOperand(s.op)
		}
		// Mix the field's bytes MSB-first, exactly the sequence
		// operandBytes lays out: a leading sub-byte fragment, then
		// whole bytes.
		for sh := ((s.width + 7) / 8) * 8; sh > 0; sh -= 8 {
			h ^= uint64(byte(v >> uint(sh-8)))
			h *= fnvPrime64
		}
	}
	return h
}

// keyCopyBits moves one unaligned planned field into the key, mirroring
// the generic path's extract-then-splice (and its BadTemplate fault on an
// out-of-range source). Fields of at most 64 bits move through a single
// register load/store; wider ones go through the Env's scratch buffer.
// Either route produces the bytes GetBytes+SetBytes would.
func (e *Env) keyCopyBits(key []byte, s *keyStep, src []byte, srcBit int) bool {
	if s.width <= 64 {
		v, err := pkt.GetBits(src, srcBit, s.width)
		if err != nil {
			e.Faults.BadTemplate.Add(1)
			return false
		}
		return pkt.SetBits(key, s.dstOff, s.width, v) == nil
	}
	nb := (s.width + 7) / 8
	if cap(e.fieldBuf) < nb {
		e.fieldBuf = make([]byte, nb)
	}
	raw := e.fieldBuf[:nb]
	if err := pkt.GetBytes(src, srcBit, s.width, raw); err != nil {
		e.Faults.BadTemplate.Add(1)
		return false
	}
	e.fieldBuf = raw[:0]
	return pkt.SetBytes(key, s.dstOff, s.width, raw) == nil
}

// BuildKey assembles a table's lookup key by concatenating its key fields
// bit by bit (MSB first), padded to whole bytes at the tail. The control
// plane uses the same layout via ctrlplane.EncodeKey so inserted entries
// and data-plane lookups agree.
//
// The returned slice aliases the Env's scratch buffer and is valid only
// until the next BuildKey call on the same Env; lookup engines never
// retain it (exact engines copy via string conversion).
func BuildKey(env *Env, t *template.Table) ([]byte, bool) {
	n := (t.KeyWidth + 7) / 8
	if cap(env.keyBuf) < n {
		env.keyBuf = make([]byte, n)
	}
	key := env.keyBuf[:n]
	for i := range key {
		key[i] = 0
	}
	bit := 0
	for i := range t.Keys {
		o := &t.Keys[i].Operand
		raw, ok := env.operandBytes(o, env.fieldBuf)
		if !ok {
			return nil, false
		}
		env.fieldBuf = raw[:0]
		if err := appendBits(key, bit, o.Width, raw); err != nil {
			return nil, false
		}
		bit += o.Width
	}
	return key, true
}

// appendBits copies a width-bit field (right-aligned in raw) into dst at
// bit offset.
func appendBits(dst []byte, bitOff, width int, raw []byte) error {
	return pkt.SetBytes(dst, bitOff, width, raw)
}
