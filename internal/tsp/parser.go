package tsp

import (
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// OnDemandParser is the parser submodule shared by the TSPs of one device:
// it walks the implicit-parser chain only as far as needed to satisfy a
// stage's requested headers, recording results in the packet's header
// vector so later stages never re-parse (paper Sec. 2.1).
type OnDemandParser struct {
	// headers is indexed by HeaderID (IDs are small and dense by
	// construction); nil slots are unknown IDs. A slice keeps the
	// per-packet walk free of map hashing.
	headers []*template.Header
	count   int
	first   pkt.HeaderID
}

// NewOnDemandParser builds the parser from a device configuration.
func NewOnDemandParser(cfg *template.Config) *OnDemandParser {
	max := pkt.HeaderID(0)
	for i := range cfg.Headers {
		if cfg.Headers[i].ID > max {
			max = cfg.Headers[i].ID
		}
	}
	p := &OnDemandParser{
		headers: make([]*template.Header, int(max)+1),
		count:   len(cfg.Headers),
		first:   cfg.FirstHdr,
	}
	for i := range cfg.Headers {
		h := &cfg.Headers[i]
		p.headers[h.ID] = h
	}
	return p
}

// header resolves an ID, nil when unknown.
func (op *OnDemandParser) header(id pkt.HeaderID) *template.Header {
	if id < 0 || int(id) >= len(op.headers) {
		return nil
	}
	return op.headers[id]
}

// headerLen computes a header's total byte length at off in the packet.
func (op *OnDemandParser) headerLen(h *template.Header, data []byte, off int) (int, bool) {
	n := h.WidthBits / 8
	if h.VarLen != nil {
		v, err := pkt.GetBits(data, off*8+h.VarLen.LenOff, h.VarLen.LenWidth)
		if err != nil {
			return 0, false
		}
		n = h.VarLen.BaseBytes + int(v)*h.VarLen.UnitBytes
	}
	if off+n > len(data) {
		return 0, false
	}
	return n, true
}

// Ensure parses headers along the chain until want is in the header vector
// or the chain ends. It reports whether want is valid afterwards. Steps
// are bounded to the header count so linked-header cycles terminate.
//
// Failures are remembered in the packet's tried mask, so a pipeline whose
// stages repeatedly request a header the packet does not carry pays the
// chain walk once, not once per stage. The mask clears whenever the
// packet's header structure changes (see HeaderVector.MarkTried).
func (op *OnDemandParser) Ensure(p *pkt.Packet, want pkt.HeaderID) bool {
	if p.HV.Valid(want) {
		return true
	}
	if p.HV.Tried(want) {
		return false
	}
	if op.ensureWalk(p, want) {
		return true
	}
	p.HV.MarkTried(want)
	return false
}

// ensureWalk is the uncached chain walk behind Ensure.
func (op *OnDemandParser) ensureWalk(p *pkt.Packet, want pkt.HeaderID) bool {
	cur := op.first
	off := 0
	for steps := 0; steps <= op.count; steps++ {
		h := op.header(cur)
		if h == nil {
			return false
		}
		var n int
		if loc, parsed := p.HV.Loc(cur); parsed {
			off = loc.Off
			n = loc.Len
		} else {
			var ok bool
			n, ok = op.headerLen(h, p.Data, off)
			if !ok {
				return false // truncated packet
			}
			p.HV.Set(cur, off, n)
		}
		if cur == want {
			return true
		}
		if h.SelWidth == 0 || len(h.Transitions) == 0 {
			return false // terminal header
		}
		sel, err := pkt.GetBits(p.Data, off*8+h.SelOff, h.SelWidth)
		if err != nil {
			return false
		}
		next := pkt.InvalidHeader
		for _, tr := range h.Transitions {
			if tr.Tag == sel {
				next = tr.Next
				break
			}
		}
		if next == pkt.InvalidHeader {
			return false
		}
		off += n
		cur = next
	}
	return false
}

// EnsureRoot parses the chain's first header, reporting whether the
// frame can carry it. Packet admission uses it to classify truncated or
// garbage frames as parse errors up front; the result lands in the
// packet's header vector (or its tried mask), so the first stage's own
// Ensure of the root header is a cache hit either way. Designs with no
// parse chain accept every frame.
func (op *OnDemandParser) EnsureRoot(p *pkt.Packet) bool {
	if op.header(op.first) == nil {
		return true
	}
	return op.Ensure(p, op.first)
}

// EnsureAll parses every header in want, reporting how many are valid.
func (op *OnDemandParser) EnsureAll(p *pkt.Packet, want []pkt.HeaderID) int {
	n := 0
	for _, id := range want {
		if op.Ensure(p, id) {
			n++
		}
	}
	return n
}
