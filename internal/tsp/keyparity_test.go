package tsp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// TestKeyEncodingParity is the invariant the whole control/data split
// rests on: for any table layout and field contents, the key the
// controller encodes for an entry (ctrlplane.EncodeKey) must be byte-equal
// to the key the matcher builds from the packet (tsp.BuildKey). If these
// ever diverge, installed entries silently stop matching.
func TestKeyEncodingParity(t *testing.T) {
	f := func(seed int64, nKeysRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nKeys := int(nKeysRaw)%4 + 1

		// Random layout: a 64-byte header at offset 0 and a 64-byte
		// metadata area; each key field gets a random width and a
		// non-overlapping offset.
		tbl := &template.Table{Name: "t", Kind: "exact", Size: 16}
		var values []ctrlplane.FieldValue
		hdrBit, metaBit := 0, 0
		data := make([]byte, 64)
		meta := make([]byte, 64)
		for i := 0; i < nKeys; i++ {
			width := rng.Intn(128) + 1
			var opd template.Operand
			if rng.Intn(2) == 0 && hdrBit+width <= len(data)*8 {
				opd = template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: hdrBit, Width: width}
				hdrBit += width
			} else if metaBit+width <= len(meta)*8 {
				opd = template.Operand{Kind: template.OpdMeta, BitOff: metaBit, Width: width}
				metaBit += width
			} else {
				continue
			}
			tbl.Keys = append(tbl.Keys, template.KeySel{Name: "k", Operand: opd, Kind: "exact"})
			tbl.KeyWidth += width

			// Random value, rendered both into the packet and into the
			// control-plane request.
			nBytes := (width + 7) / 8
			raw := make([]byte, nBytes)
			rng.Read(raw)
			// Clear bits beyond the field width (right-aligned field).
			if width%8 != 0 {
				raw[0] &= 0xff >> uint(8-width%8)
			}
			var fv ctrlplane.FieldValue
			if width > 64 {
				fv = ctrlplane.FieldValue{Bytes: raw}
			} else {
				v := uint64(0)
				for _, b := range raw {
					v = v<<8 | uint64(b)
				}
				fv = ctrlplane.FieldValue{Value: v}
			}
			values = append(values, fv)
			var err error
			if opd.Kind == template.OpdHeader {
				err = pkt.SetBytes(data, opd.BitOff, width, raw)
			} else {
				err = pkt.SetBytes(meta, opd.BitOff, width, raw)
			}
			if err != nil {
				return false
			}
		}
		if len(tbl.Keys) == 0 {
			return true
		}

		// Control plane encoding.
		ctrlKey, err := ctrlplane.EncodeKey(tbl, values)
		if err != nil {
			return false
		}
		// Data plane encoding.
		p := pkt.NewPacket(data, 64)
		copy(p.Meta, meta)
		p.HV.Set(0, 0, len(data))
		env := &Env{Pkt: p, Regs: NewRegisterFile(nil), Faults: &Faults{},
			SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
		dataKey, ok := BuildKey(env, tbl)
		if !ok {
			return false
		}
		return bytes.Equal(ctrlKey, dataKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
