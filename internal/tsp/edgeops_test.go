package tsp

import (
	"bytes"
	"fmt"
	"testing"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// These tests pin the executor edge cases where a naive lowering is most
// likely to diverge — division and modulo by zero (hardware-style
// saturation to 0, no fault), shift counts at and beyond the 64-bit
// register width, and >64-bit wide stores at their width boundaries —
// and assert that all three tiers (reference interpreter, flat-program
// VM, fused closures) agree bit-for-bit on packet bytes, metadata and
// fault counters.

// edgeConfig wraps body as the default-arm action of a single stage over
// one 16-byte header.
func edgeConfig(body []template.Instr) *template.Config {
	return &template.Config{
		Headers: []template.Header{{
			Name: "h", ID: 0, WidthBits: 128,
			Fields: map[string][2]int{"f": {0, 8}, "z": {8, 8}},
		}},
		FirstHdr:  0,
		MetaBytes: 40,
		Actions: map[string]*template.Action{
			"act": {Name: "act", Body: body},
		},
		Stages: map[string]*template.Stage{
			"s": {
				Name: "s", Pipe: "ingress",
				Parse: []pkt.HeaderID{0},
				Arms:  []template.Arm{{Default: true, Action: "act"}},
			},
		},
		IngressChain:  []string{"s"},
		TSPAssignment: map[string]int{"s": 0},
	}
}

// edgeModes orders the tiers with the interpreter oracle first.
var edgeModes = []struct {
	name string
	mode ExecMode
}{
	{"interp", ExecInterp},
	{"compiled", ExecCompiled},
	{"fused", ExecFused},
}

// edgeRun is one tier's observable outcome.
type edgeRun struct {
	data, meta []byte
	faults     [3]uint64
}

// runEdgeTiers executes body on the same packet bytes under every tier.
func runEdgeTiers(t *testing.T, body []template.Instr, data []byte) [3]edgeRun {
	t.Helper()
	var out [3]edgeRun
	for i, m := range edgeModes {
		cfg := edgeConfig(body)
		sr, err := NewStageRuntimeMode(cfg, "s", m.mode)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		op := NewOnDemandParser(cfg)
		faults := &Faults{}
		env := &Env{Regs: NewRegisterFile(nil), Faults: faults,
			SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
		p := pkt.NewPacket(append([]byte(nil), data...), cfg.MetaBytes)
		sr.Execute(p, op, &mapBackend{}, env)
		out[i] = edgeRun{
			data: p.Data, meta: p.Meta,
			faults: [3]uint64{
				faults.InvalidHeaderAccess.Load(),
				faults.RegisterFault.Load(),
				faults.BadTemplate.Load(),
			},
		}
	}
	for i := 1; i < len(edgeModes); i++ {
		if !bytes.Equal(out[i].data, out[0].data) {
			t.Errorf("%s packet bytes diverged from interp:\n%s: %x\ninterp: %x",
				edgeModes[i].name, edgeModes[i].name, out[i].data, out[0].data)
		}
		if !bytes.Equal(out[i].meta, out[0].meta) {
			t.Errorf("%s metadata diverged from interp:\n%s: %x\ninterp: %x",
				edgeModes[i].name, edgeModes[i].name, out[i].meta, out[0].meta)
		}
		if out[i].faults != out[0].faults {
			t.Errorf("%s faults diverged from interp: %v vs %v (invalid_header, register, bad_template)",
				edgeModes[i].name, out[i].faults, out[0].faults)
		}
	}
	return out
}

// assign builds meta[dstOff:dstOff+w] = src.
func assign(dstOff, w int, src *template.Expr) template.Instr {
	return template.Instr{
		Op:  template.IAssign,
		Dst: template.Operand{Kind: template.OpdMeta, BitOff: dstOff, Width: w},
		Src: src,
	}
}

func konst(v uint64, w int) *template.Expr {
	return &template.Expr{Kind: template.ExprOperand,
		Operand: &template.Operand{Kind: template.OpdConst, Const: v, Width: w}}
}

func hdrField(bitOff, w int) *template.Expr {
	return &template.Expr{Kind: template.ExprOperand,
		Operand: &template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: bitOff, Width: w}}
}

func bin(op template.ArithOp, a, b *template.Expr) *template.Expr {
	return &template.Expr{Kind: template.ExprBin, Op: op, A: a, B: b}
}

// edgePacket is 16 header bytes: h.f = 0xAA, h.z = 0x00.
func edgePacket() []byte {
	d := make([]byte, 16)
	d[0] = 0xAA
	return d
}

func TestEdgeOpsDivModByZero(t *testing.T) {
	body := []template.Instr{
		// h.f / h.z and h.f % h.z with h.z == 0: saturate to 0, no fault.
		assign(0, 8, bin(template.OpDiv, hdrField(0, 8), hdrField(8, 8))),
		assign(8, 8, bin(template.OpMod, hdrField(0, 8), hdrField(8, 8))),
		// Sanity: a nonzero divisor still divides.
		assign(16, 8, bin(template.OpDiv, konst(0x90, 8), konst(3, 8))),
		assign(24, 8, bin(template.OpMod, konst(0x91, 8), konst(16, 8))),
	}
	out := runEdgeTiers(t, body, edgePacket())
	m := out[0].meta
	if m[0] != 0 || m[1] != 0 {
		t.Errorf("div/mod by zero = %#x/%#x, want 0/0", m[0], m[1])
	}
	if m[2] != 0x30 || m[3] != 0x01 {
		t.Errorf("div/mod sanity = %#x/%#x, want 0x30/0x01", m[2], m[3])
	}
	if out[0].faults != ([3]uint64{}) {
		t.Errorf("division by zero faulted: %v", out[0].faults)
	}
}

func TestEdgeOpsShiftsAtRegisterWidth(t *testing.T) {
	body := []template.Instr{
		// Shift counts 63 / 64 / far beyond 64: Go would panic-free wrap
		// into garbage with a bare shift, the executors must yield 0 once
		// the count reaches the 64-bit register width.
		assign(0, 64, bin(template.OpShl, konst(1, 64), konst(63, 8))),
		assign(64, 64, bin(template.OpShl, konst(1, 64), konst(64, 8))),
		assign(128, 64, bin(template.OpShr, konst(0xFFFFFFFFFFFFFFFF, 64), konst(64, 8))),
		assign(192, 64, bin(template.OpShr, konst(0x8000000000000000, 64), konst(63, 8))),
		assign(256, 8, bin(template.OpShl, konst(1, 8), konst(200, 16))),
	}
	out := runEdgeTiers(t, body, edgePacket())
	m := out[0].meta
	if m[0] != 0x80 { // 1<<63, big-endian meta store
		t.Errorf("1<<63 high byte = %#x, want 0x80", m[0])
	}
	for i := 8; i < 24; i++ { // 1<<64 and max>>64 are all-zero
		if m[i] != 0 {
			t.Fatalf("shift >= 64 left residue at meta[%d] = %#x", i, m[i])
		}
	}
	if m[31] != 0x01 { // 0x80..00 >> 63
		t.Errorf("msb>>63 low byte = %#x, want 0x01", m[31])
	}
	if m[32] != 0 { // 1<<200
		t.Errorf("1<<200 = %#x, want 0", m[32])
	}
}

func TestEdgeOpsWideStoreBoundaries(t *testing.T) {
	const v = 0x1122334455667788
	for _, w := range []int{63, 64, 65, 72, 127, 128} {
		t.Run(fmt.Sprintf("meta-width-%d", w), func(t *testing.T) {
			// Pre-set bits around the destination by first writing ones,
			// then storing through the width under test: a wide store must
			// zero the bits above 64 and keep neighbours intact.
			body := []template.Instr{
				assign(0, 64, konst(0xFFFFFFFFFFFFFFFF, 64)),
				assign(64, 64, konst(0xFFFFFFFFFFFFFFFF, 64)),
				assign(128, 64, konst(0xFFFFFFFFFFFFFFFF, 64)),
				assign(8, w, konst(v, 64)),
			}
			out := runEdgeTiers(t, body, edgePacket())
			if w <= 64 {
				// Truncating store: the field holds the low w bits of v.
				got, err := pkt.GetBits(out[0].meta, 8, w)
				if err != nil {
					t.Fatal(err)
				}
				if want := v & (^uint64(0) >> (64 - w)); got != want {
					t.Errorf("field = %#x, want %#x", got, want)
				}
			} else {
				// Wide store: the low 64 bits of the field hold v.
				got, err := pkt.GetBits(out[0].meta, 8+w-64, 64)
				if err != nil {
					t.Fatal(err)
				}
				if got != v {
					t.Errorf("low 64 bits = %#x, want %#x", got, v)
				}
				hi, err := pkt.GetBits(out[0].meta, 8, w-64)
				if err != nil {
					t.Fatal(err)
				}
				if hi != 0 {
					t.Errorf("high %d bits = %#x, want 0", w-64, hi)
				}
			}
			// The guard bit below the field survived.
			if b, _ := pkt.GetBits(out[0].meta, 0, 8); b != 0xFF {
				t.Errorf("guard bits before field = %#x, want 0xFF", b)
			}
		})
	}
	for _, w := range []int{65, 72, 128} {
		t.Run(fmt.Sprintf("header-width-%d", w), func(t *testing.T) {
			body := []template.Instr{
				{
					Op:  template.IAssign,
					Dst: template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 0, Width: w},
					Src: konst(v, 64),
				},
			}
			data := edgePacket()
			for i := range data {
				data[i] = 0xEE
			}
			out := runEdgeTiers(t, body, data)
			got, err := pkt.GetBits(out[0].data, w-64, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got != v {
				t.Errorf("low 64 bits = %#x, want %#x", got, v)
			}
			hi, err := pkt.GetBits(out[0].data, 0, w-64)
			if err != nil {
				t.Fatal(err)
			}
			if hi != 0 {
				t.Errorf("high %d bits = %#x, want 0", w-64, hi)
			}
		})
	}
}
