package tsp

import (
	"testing"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// Minimal hand-built config: one 2-byte header "h" with an 8-bit field f
// at offset 0 and an 8-bit selector g at offset 8 transitioning to header
// "h2" on tag 7.
func miniConfig() *template.Config {
	return &template.Config{
		Headers: []template.Header{
			{
				Name: "h", ID: 0, WidthBits: 16,
				SelOff: 8, SelWidth: 8,
				Transitions: []template.Transition{{Tag: 7, Next: 1}},
				Fields:      map[string][2]int{"f": {0, 8}, "g": {8, 8}},
			},
			{Name: "h2", ID: 1, WidthBits: 8, Fields: map[string][2]int{"x": {0, 8}}},
		},
		FirstHdr:  0,
		MetaBytes: 8,
		Actions: map[string]*template.Action{
			"NoAction": {Name: "NoAction"},
			"setmeta": {
				Name:        "setmeta",
				ParamWidths: []int{8},
				Body: []template.Instr{
					{
						Op:  template.IAssign,
						Dst: template.Operand{Kind: template.OpdMeta, BitOff: 34, Width: 8},
						Src: &template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdParam, ParamIdx: 0}},
					},
				},
			},
			"dropper": {Name: "dropper", Body: []template.Instr{{Op: template.IDrop}}},
		},
		Tables: map[string]*template.Table{
			"t": {
				Name: "t", Kind: "exact", KeyWidth: 8, Size: 16,
				Keys: []template.KeySel{{
					Name: "h.f", Kind: "exact",
					Operand: template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 0, Width: 8},
				}},
			},
		},
		Stages: map[string]*template.Stage{
			"s": {
				Name: "s", Pipe: "ingress",
				Parse: []pkt.HeaderID{0},
				Match: []template.MatchStmt{{Kind: template.MatchApply, Table: "t"}},
				Arms: []template.Arm{
					{Tag: 1, Action: "setmeta"},
					{Tag: 2, Action: "dropper"},
					{Default: true, Action: "NoAction"},
				},
				Tables: []string{"t"},
			},
		},
		IngressChain:  []string{"s"},
		TSPAssignment: map[string]int{"s": 0},
	}
}

type mapBackend struct {
	entries map[string]match.Result
	groups  map[string][]match.Result
}

func (b *mapBackend) Lookup(table string, key []byte) (match.Result, bool) {
	r, ok := b.entries[table+"/"+string(key)]
	return r, ok
}

func (b *mapBackend) LookupSelector(table string, group []byte, h uint64) (match.Result, bool) {
	m := b.groups[table+"/"+string(group)]
	if len(m) == 0 {
		return match.Result{}, false
	}
	return m[h%uint64(len(m))], true
}

func TestOnDemandParserWalk(t *testing.T) {
	cfg := miniConfig()
	op := NewOnDemandParser(cfg)
	// h.g = 7 -> h2 follows.
	p := pkt.NewPacket([]byte{0xAA, 0x07, 0x42}, cfg.MetaBytes)
	if !op.Ensure(p, 1) {
		t.Fatal("h2 not parsed")
	}
	loc, _ := p.HV.Loc(1)
	if loc.Off != 2 || loc.Len != 1 {
		t.Errorf("h2 loc: %+v", loc)
	}
	if !p.HV.Valid(0) {
		t.Error("walking to h2 must parse h on the way")
	}
	// h.g = 9 -> no transition; h2 unreachable.
	p2 := pkt.NewPacket([]byte{0xAA, 0x09, 0x42}, cfg.MetaBytes)
	if op.Ensure(p2, 1) {
		t.Error("h2 parsed despite missing transition")
	}
	if !p2.HV.Valid(0) {
		t.Error("h should still be parsed")
	}
	// Truncated packet.
	p3 := pkt.NewPacket([]byte{0xAA}, cfg.MetaBytes)
	if op.Ensure(p3, 0) {
		t.Error("truncated header parsed")
	}
	// Already-parsed short path.
	if !op.Ensure(p, 1) {
		t.Error("re-ensure failed")
	}
}

func TestOnDemandParserVarLen(t *testing.T) {
	cfg := miniConfig()
	cfg.Headers[1].VarLen = &template.VarLen{LenOff: 0, LenWidth: 8, BaseBytes: 1, UnitBytes: 2}
	op := NewOnDemandParser(cfg)
	// h2's first byte = 2 -> total length 1 + 2*2 = 5 bytes.
	data := []byte{0xAA, 0x07, 0x02, 1, 2, 3, 4}
	p := pkt.NewPacket(data, cfg.MetaBytes)
	if !op.Ensure(p, 1) {
		t.Fatal("varlen header not parsed")
	}
	loc, _ := p.HV.Loc(1)
	if loc.Len != 5 {
		t.Errorf("varlen len = %d, want 5", loc.Len)
	}
	// Truncated varlen.
	p2 := pkt.NewPacket([]byte{0xAA, 0x07, 0x09}, cfg.MetaBytes)
	if op.Ensure(p2, 1) {
		t.Error("truncated varlen header parsed")
	}
}

func TestStageRuntimeHitMissDefault(t *testing.T) {
	cfg := miniConfig()
	sr, err := NewStageRuntime(cfg, "s")
	if err != nil {
		t.Fatal(err)
	}
	op := NewOnDemandParser(cfg)
	be := &mapBackend{entries: map[string]match.Result{
		"t/\xAA": {ActionID: 1, Params: []uint64{0x5C}},
		"t/\xBB": {ActionID: 2},
	}}
	regs := NewRegisterFile(nil)
	faults := &Faults{}

	// Hit tag 1: setmeta writes the param into meta bits 34..41.
	p := pkt.NewPacket([]byte{0xAA, 0x00}, cfg.MetaBytes)
	env := &Env{Regs: regs, Faults: faults, SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
	sr.Execute(p, op, be, env)
	v, _ := p.MetaBits(34, 8)
	if v != 0x5C {
		t.Errorf("meta = %#x, want 0x5C", v)
	}
	if p.Drop {
		t.Error("hit dropped")
	}
	// Hit tag 2: dropper.
	p2 := pkt.NewPacket([]byte{0xBB, 0x00}, cfg.MetaBytes)
	sr.Execute(p2, op, be, env)
	if !p2.Drop {
		t.Error("dropper arm did not drop")
	}
	dropBit, _ := p2.MetaBits(template.IstdDropOff, 1)
	if dropBit != 1 {
		t.Error("istd.drop not set")
	}
	// Miss: default NoAction.
	p3 := pkt.NewPacket([]byte{0xCC, 0x00}, cfg.MetaBytes)
	sr.Execute(p3, op, be, env)
	if p3.Drop {
		t.Error("miss dropped")
	}
	pkts, hits, misses := sr.Stats()
	if pkts != 3 || hits != 2 || misses != 1 {
		t.Errorf("stats: %d/%d/%d", pkts, hits, misses)
	}
	if faults.BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", faults.BadTemplate.Load())
	}
}

func TestNewStageRuntimeErrors(t *testing.T) {
	cfg := miniConfig()
	if _, err := NewStageRuntime(cfg, "ghost"); err == nil {
		t.Error("unknown stage accepted")
	}
	bad, _ := cfg.Clone()
	bad.Stages["s"].Tables = []string{"missing"}
	if _, err := NewStageRuntime(bad, "s"); err == nil {
		t.Error("unknown table accepted")
	}
	bad2, _ := cfg.Clone()
	bad2.Stages["s"].Arms[0].Action = "missing"
	if _, err := NewStageRuntime(bad2, "s"); err == nil {
		t.Error("unknown action accepted")
	}
}

func TestTSPLoadUnload(t *testing.T) {
	cfg := miniConfig()
	sr, _ := NewStageRuntime(cfg, "s")
	tp := NewTSP(3)
	if tp.Active() || tp.Index() != 3 {
		t.Error("fresh TSP wrong state")
	}
	tp.Load([]*StageRuntime{sr})
	if !tp.Active() || tp.Loads() != 1 {
		t.Error("load not reflected")
	}
	if got := tp.StageNames(); len(got) != 1 || got[0] != "s" {
		t.Errorf("stages: %v", got)
	}
	if tp.String() != "TSP3[s]" {
		t.Errorf("String: %q", tp.String())
	}
	tp.Unload()
	if tp.Active() || tp.Loads() != 2 {
		t.Error("unload not reflected")
	}
	// A dropped packet stops in-TSP processing.
	tp.Load([]*StageRuntime{sr, sr})
	be := &mapBackend{entries: map[string]match.Result{"t/\xBB": {ActionID: 2}}}
	op := NewOnDemandParser(cfg)
	env := &Env{Regs: NewRegisterFile(nil), Faults: &Faults{}, SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
	p := pkt.NewPacket([]byte{0xBB, 0x00}, cfg.MetaBytes)
	tp.Process(p, op, be, env)
	pkts, _, _ := sr.Stats()
	if pkts != 1 {
		t.Errorf("second stage ran on dropped packet: %d executions", pkts)
	}
}

func TestRegisterFile(t *testing.T) {
	rf := NewRegisterFile([]template.Register{{Name: "r", Width: 8, Size: 4}})
	if ok := rf.Write("r", 2, 0x1FF); !ok {
		t.Fatal("write failed")
	}
	v, ok := rf.Read("r", 2)
	if !ok || v != 0xFF { // truncated to 8 bits
		t.Errorf("read = %d, %v", v, ok)
	}
	if _, ok := rf.Read("r", 9); ok {
		t.Error("out-of-range read ok")
	}
	if ok := rf.Write("ghost", 0, 1); ok {
		t.Error("unknown register write ok")
	}
	// Update preserves contents and rejects resizes.
	if err := rf.Update([]template.Register{{Name: "r", Width: 8, Size: 4}, {Name: "s", Width: 16, Size: 2}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := rf.Read("r", 2); v != 0xFF {
		t.Error("update reset contents")
	}
	if len(rf.Names()) != 2 {
		t.Errorf("names: %v", rf.Names())
	}
	if err := rf.Update([]template.Register{{Name: "r", Width: 16, Size: 4}}); err == nil {
		t.Error("resize accepted")
	}
}

func TestEnvExprEval(t *testing.T) {
	faults := &Faults{}
	env := &Env{
		Pkt:    pkt.NewPacket([]byte{0x12, 0x34}, 4),
		Regs:   NewRegisterFile([]template.Register{{Name: "r", Width: 32, Size: 2}}),
		Faults: faults,
		SRHID:  pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader,
	}
	env.Pkt.HV.Set(0, 0, 2)
	num := func(v uint64) *template.Expr {
		return &template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdConst, Const: v}}
	}
	bin := func(op template.ArithOp, a, b *template.Expr) *template.Expr {
		return &template.Expr{Kind: template.ExprBin, Op: op, A: a, B: b}
	}
	cases := []struct {
		e    *template.Expr
		want uint64
	}{
		{bin(template.OpAdd, num(3), num(4)), 7},
		{bin(template.OpSub, num(3), num(4)), ^uint64(0)}, // wraps
		{bin(template.OpMul, num(3), num(4)), 12},
		{bin(template.OpDiv, num(12), num(4)), 3},
		{bin(template.OpDiv, num(12), num(0)), 0}, // div by zero -> 0
		{bin(template.OpMod, num(13), num(4)), 1},
		{bin(template.OpMod, num(13), num(0)), 0},
		{bin(template.OpAnd, num(0xF0), num(0x3C)), 0x30},
		{bin(template.OpOr, num(0xF0), num(0x0C)), 0xFC},
		{bin(template.OpXor, num(0xFF), num(0x0F)), 0xF0},
		{bin(template.OpShl, num(1), num(4)), 16},
		{bin(template.OpShl, num(1), num(70)), 0},
		{bin(template.OpShr, num(16), num(4)), 1},
		{&template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 0, Width: 16}}, 0x1234},
	}
	for i, c := range cases {
		if got := env.EvalExpr(c.e); got != c.want {
			t.Errorf("case %d: %d, want %d", i, got, c.want)
		}
	}
	// Register round trip through expressions.
	env.ExecInstrs([]template.Instr{{Op: template.IRegWrite, Reg: "r", Index: num(1), Value: num(99)}})
	got := env.EvalExpr(&template.Expr{Kind: template.ExprRegRead, Reg: "r", Index: num(1)})
	if got != 99 {
		t.Errorf("reg read = %d", got)
	}
	// Hash is deterministic and finalized.
	h1 := env.EvalExpr(&template.Expr{Kind: template.ExprHash, Args: []*template.Expr{num(1), num(2)}})
	h2 := env.EvalExpr(&template.Expr{Kind: template.ExprHash, Args: []*template.Expr{num(1), num(2)}})
	h3 := env.EvalExpr(&template.Expr{Kind: template.ExprHash, Args: []*template.Expr{num(2), num(1)}})
	if h1 != h2 || h1 == h3 {
		t.Errorf("hash: %x %x %x", h1, h2, h3)
	}
	// Faults: invalid header access reads as zero.
	before := faults.InvalidHeaderAccess.Load()
	v := env.EvalExpr(&template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdHeader, Header: 5, BitOff: 0, Width: 8}})
	if v != 0 || faults.InvalidHeaderAccess.Load() != before+1 {
		t.Errorf("invalid access: v=%d faults=%d", v, faults.InvalidHeaderAccess.Load())
	}
	if env.EvalExpr(nil) != 0 {
		t.Error("nil expr not zero")
	}
}

func TestEnvCondEval(t *testing.T) {
	env := &Env{
		Pkt:    pkt.NewPacket([]byte{9}, 4),
		Regs:   NewRegisterFile(nil),
		Faults: &Faults{},
		SRHID:  pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader,
	}
	env.Pkt.HV.Set(0, 0, 1)
	num := func(v uint64) *template.Expr {
		return &template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdConst, Const: v}}
	}
	cmp := func(op template.CmpOp, a, b uint64) *template.Cond {
		return &template.Cond{Kind: template.CondCmp, Cmp: op, A: num(a), B: num(b)}
	}
	cases := []struct {
		c    *template.Cond
		want bool
	}{
		{&template.Cond{Kind: template.CondBool, Val: true}, true},
		{&template.Cond{Kind: template.CondValid, Header: 0}, true},
		{&template.Cond{Kind: template.CondValid, Header: 3}, false},
		{cmp(template.CmpEq, 5, 5), true},
		{cmp(template.CmpNe, 5, 5), false},
		{cmp(template.CmpLt, 4, 5), true},
		{cmp(template.CmpGt, 4, 5), false},
		{cmp(template.CmpLe, 5, 5), true},
		{cmp(template.CmpGe, 4, 5), false},
		{&template.Cond{Kind: template.CondNot, X: &template.Cond{Kind: template.CondBool, Val: true}}, false},
		{&template.Cond{Kind: template.CondAnd, X: cmp(template.CmpEq, 1, 1), Y: cmp(template.CmpEq, 2, 2)}, true},
		{&template.Cond{Kind: template.CondOr, X: cmp(template.CmpEq, 1, 2), Y: cmp(template.CmpEq, 2, 2)}, true},
	}
	for i, c := range cases {
		if got := env.EvalCond(c.c); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}
