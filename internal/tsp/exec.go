package tsp

// exec.go is the per-packet switch-loop executor for programs produced by
// compile.go. Semantics — including fault-counter side effects — mirror
// interp.go exactly; when changing either, change both, and let the
// differential fuzz (internal/ipbm) catch drift.

import (
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// exec runs one compiled program. The caller must have sized e.stack via
// ensureStack(prog.maxStack).
func (e *Env) exec(code []instr, prog *stageProg, backend TableBackend, out *matchOutcome) {
	if len(code) == 0 {
		return
	}
	stack := e.stack
	sp := 0
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opPushConst:
			stack[sp] = in.val
			sp++
		case opPushParam:
			idx := int(in.a)
			if idx >= 0 && idx < len(e.Params) {
				stack[sp] = e.Params[idx]
			} else {
				e.Faults.BadTemplate.Add(1)
				stack[sp] = 0
			}
			sp++
		case opLoadMeta:
			v, err := e.Pkt.MetaBits(int(in.a), int(in.b))
			if err != nil {
				e.Faults.BadTemplate.Add(1)
				v = 0
			}
			stack[sp] = v
			sp++
		case opLoadHdr:
			var v uint64
			if !e.Pkt.HV.Valid(in.hdr) {
				e.Faults.InvalidHeaderAccess.Add(1)
			} else {
				var err error
				v, err = e.Pkt.FieldBits(in.hdr, int(in.a), int(in.b))
				if err != nil {
					e.Faults.BadTemplate.Add(1)
					v = 0
				}
			}
			stack[sp] = v
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] /= stack[sp]
			}
		case opMod:
			sp--
			if stack[sp] == 0 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] %= stack[sp]
			}
		case opAndB:
			sp--
			stack[sp-1] &= stack[sp]
		case opOrB:
			sp--
			stack[sp-1] |= stack[sp]
		case opXor:
			sp--
			stack[sp-1] ^= stack[sp]
		case opShl:
			sp--
			if stack[sp] >= 64 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] <<= stack[sp]
			}
		case opShr:
			sp--
			if stack[sp] >= 64 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] >>= stack[sp]
			}
		case opHash:
			base := sp - int(in.a)
			h := uint64(fnvOffset64)
			for i := base; i < sp; i++ {
				h = fnvMix(h, stack[i])
			}
			sp = base
			stack[sp] = finalizeHash(h)
			sp++
		case opRegRead:
			v, ok := e.Regs.Read(in.reg, stack[sp-1])
			if !ok {
				e.Faults.RegisterFault.Add(1)
			}
			stack[sp-1] = v
		case opCmpEq:
			sp--
			stack[sp-1] = b2u(stack[sp-1] == stack[sp])
		case opCmpNe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] != stack[sp])
		case opCmpLt:
			sp--
			stack[sp-1] = b2u(stack[sp-1] < stack[sp])
		case opCmpGt:
			sp--
			stack[sp-1] = b2u(stack[sp-1] > stack[sp])
		case opCmpLe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] <= stack[sp])
		case opCmpGe:
			sp--
			stack[sp-1] = b2u(stack[sp-1] >= stack[sp])
		case opValid:
			stack[sp] = b2u(e.Pkt.HV.Valid(in.hdr))
			sp++
		case opBoolNot:
			stack[sp-1] = b2u(stack[sp-1] == 0)
		case opJmp:
			pc = int(in.a) - 1
		case opJz:
			sp--
			if stack[sp] == 0 {
				pc = int(in.a) - 1
			}
		case opJnz:
			sp--
			if stack[sp] != 0 {
				pc = int(in.a) - 1
			}
		case opPop:
			sp -= int(in.a)
		case opFaultZero:
			e.Faults.BadTemplate.Add(1)
			stack[sp] = 0
			sp++
		case opFault:
			e.Faults.BadTemplate.Add(1)
		case opStoreMeta:
			sp--
			if err := e.Pkt.SetMetaBits(int(in.a), int(in.b), stack[sp]); err != nil {
				e.Faults.BadTemplate.Add(1)
			}
		case opStoreMetaWide:
			sp--
			e.storeMetaWide(int(in.a), int(in.b), stack[sp])
		case opStoreHdr:
			sp--
			if !e.Pkt.HV.Valid(in.hdr) {
				e.Faults.InvalidHeaderAccess.Add(1)
				break
			}
			if err := e.Pkt.SetFieldBits(in.hdr, int(in.a), int(in.b), stack[sp]); err != nil {
				e.Faults.BadTemplate.Add(1)
			}
		case opStoreHdrWide:
			sp--
			e.storeHdrWide(in.hdr, int(in.a), int(in.b), stack[sp])
		case opDrop:
			e.markDrop()
		case opToCPU:
			e.Pkt.ToCPU = true
			_ = e.Pkt.SetMetaBits(template.IstdToCPUOff, 1, 1)
		case opSRHAdvance:
			e.srhAdvance()
		case opSRHPop:
			e.srhPop()
		case opRegWrite:
			sp -= 2
			if !e.Regs.Write(in.reg, stack[sp], stack[sp+1]) {
				e.Faults.RegisterFault.Add(1)
			}
		case opApply:
			if out.applied {
				// One table application per stage per packet; extra
				// applies are template bugs.
				e.Faults.BadTemplate.Add(1)
				break
			}
			if in.a < 0 {
				e.Faults.BadTemplate.Add(1)
				break
			}
			var rt ResolvedTable
			if prog.resolved != nil {
				rt = prog.resolved[in.a]
			}
			var rs ResolvedSelector
			if prog.resolvedSels != nil {
				rs = prog.resolvedSels[in.a]
			}
			e.applyTableWith(prog.tables[in.a], rt, rs, prog.keyPlans[in.a], backend, out)
		case opAssignTree:
			e.execAssign(in.tree)
		case opIntStamp:
			e.intStamp(uint16(in.a))
		}
	}
}

// storeMetaWide mirrors WriteOperand's >64-bit metadata path: zero the
// high part, store the low 64 bits.
func (e *Env) storeMetaWide(off, w int, v uint64) {
	for rem, ro := w-64, off; rem > 0; {
		chunk := rem
		if chunk > 64 {
			chunk = 64
		}
		_ = e.Pkt.SetMetaBits(ro, chunk, 0)
		ro += chunk
		rem -= chunk
	}
	off += w - 64
	if err := e.Pkt.SetMetaBits(off, 64, v); err != nil {
		e.Faults.BadTemplate.Add(1)
	}
}

// storeHdrWide mirrors WriteOperand's >64-bit header path.
func (e *Env) storeHdrWide(hdr pkt.HeaderID, off, w int, v uint64) {
	if !e.Pkt.HV.Valid(hdr) {
		e.Faults.InvalidHeaderAccess.Add(1)
		return
	}
	for rem, ro := w-64, off; rem > 0; {
		chunk := rem
		if chunk > 64 {
			chunk = 64
		}
		_ = e.Pkt.SetFieldBits(hdr, ro, chunk, 0)
		ro += chunk
		rem -= chunk
	}
	off += w - 64
	if err := e.Pkt.SetFieldBits(hdr, off, 64, v); err != nil {
		e.Faults.BadTemplate.Add(1)
	}
}
