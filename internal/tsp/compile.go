package tsp

// compile.go lowers a stage template (the tree IR in internal/template)
// into a flat instruction program at config-apply time. The tree
// interpreter in interp.go dispatches on string kinds and re-derives
// operand offsets/widths per packet; the compiled form pre-resolves all of
// that once, so the per-packet cost is a small integer-opcode switch loop
// over a contiguous []instr (see exec.go). The interpreter is kept as the
// reference oracle (ExecInterp) and the two are held bit-for-bit
// equivalent — packet bytes, metadata, verdicts and fault counters — by
// the differential fuzz test in internal/ipbm.

import (
	"fmt"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// ExecMode selects the per-packet executor implementation.
type ExecMode int

// Executor modes. The zero value is the fused second-stage compiler, so a
// zero-valued Options/BuildOpts picks the fastest tier.
const (
	// ExecFused lowers stage templates through the flat program into
	// fused native Go closures (see fuse.go): the per-stage instruction
	// stream is specialized away at build time. The default.
	ExecFused ExecMode = iota
	// ExecCompiled lowers stage templates to flat programs at bind time
	// and runs them with the switch-loop executor; kept as the mid-tier
	// differential oracle for the fused closures.
	ExecCompiled
	// ExecInterp tree-walks the template IR per packet; kept as the
	// reference oracle for differential testing.
	ExecInterp
)

func (m ExecMode) String() string {
	switch m {
	case ExecInterp:
		return "interp"
	case ExecCompiled:
		return "compiled"
	}
	return "fused"
}

// ParseExecMode maps the CLI flag spelling to an ExecMode.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "fused", "":
		return ExecFused, nil
	case "compiled":
		return ExecCompiled, nil
	case "interp":
		return ExecInterp, nil
	}
	return ExecFused, fmt.Errorf("tsp: unknown exec mode %q (want fused|compiled|interp)", s)
}

// opcode is a compiled instruction's operation, an integer so the executor
// dispatch is a jump table rather than string comparisons.
type opcode uint8

const (
	opNop opcode = iota

	// Pushes (one slot each).
	opPushConst // push val
	opPushParam // push Params[a], BadTemplate+0 when out of range
	opLoadMeta  // push meta bits [a, a+b)
	opLoadHdr   // push header hdr bits [a, a+b); InvalidHeaderAccess+0 when invalid

	// Binary arithmetic: pop b, pop a, push a OP b.
	opAdd
	opSub
	opMul
	opDiv // b==0 -> 0 (hardware-style saturation, no fault)
	opMod
	opAndB
	opOrB
	opXor
	opShl // shift >= 64 -> 0
	opShr

	opHash    // pop a args, push finalized FNV-1a
	opRegRead // pop index, push Regs[reg][index]; RegisterFault on bad index

	// Comparisons: pop b, pop a, push bool.
	opCmpEq
	opCmpNe
	opCmpLt
	opCmpGt
	opCmpLe
	opCmpGe

	opValid   // push HV.Valid(hdr)
	opBoolNot // logical negation of top of stack

	// Control flow: jump targets are absolute pcs in field a.
	opJmp
	opJz  // pop; jump when zero
	opJnz // pop; jump when non-zero

	opPop       // pop a slots
	opFaultZero // BadTemplate fault, push 0 (nil/unknown expr or cond)
	opFault     // BadTemplate fault only (unknown statement)

	// Stores: pop value, write to the pre-resolved destination.
	opStoreMeta
	opStoreMetaWide // >64-bit destination: zero high part, store low 64
	opStoreHdr
	opStoreHdrWide

	// Statements.
	opDrop
	opToCPU
	opSRHAdvance
	opSRHPop
	opRegWrite // pop value, pop index, write Regs[reg]
	opApply    // apply table prog.tables[a] (a == -1: unknown table)

	// opAssignTree escapes to the interpreter's execAssign for the rare
	// wide (>64-bit) field-to-field copy, which is byte-granular and
	// already allocation-free; parity is by construction.
	opAssignTree

	// opIntStamp appends one INT hop record (a = the stage's wire ID).
	// Emitted only into stageProg.post, and only when the stage was built
	// with BuildOpts.Int — never into match or arm programs.
	opIntStamp
)

// instr is one compiled instruction. Operands are pre-resolved: a/b carry
// clamped bit offsets and widths (or jump targets/counts), hdr the header
// instance, val an immediate, reg a register name, tree the original IR
// node for opAssignTree.
type instr struct {
	op   opcode
	a, b int32
	hdr  pkt.HeaderID
	val  uint64
	reg  string
	tree *template.Instr
}

// compiledArm is one executor arm's lowered body, parallel to
// template.Stage.Arms so arm selection can share indices with the
// interpreter path.
type compiledArm struct {
	action string
	code   []instr
}

// stageProg is a stage template lowered to flat programs: one for the
// matcher and one per arm, plus the pre-resolved table list opApply
// indexes into.
type stageProg struct {
	match    []instr
	arms     []compiledArm
	tables   []*template.Table
	maxStack int
	// post is the stage epilogue, run after the selected arm (even when
	// no arm matched) unless the packet was dropped. Nil in the default
	// build; NewStageRuntimeOpts emits the INT stamping op here, so the
	// disabled cost is one nil check per stage per packet.
	post []instr
	// resolved holds bind-time table handles parallel to tables, filled
	// by StageRuntime.Bind when the backend supports resolution. Nil
	// slots (selectors, unresolvable names) take the name-keyed path.
	resolved []ResolvedTable
	// resolvedSels is the selector counterpart of resolved: direct
	// group/member handles, parallel to tables.
	resolvedSels []ResolvedSelector
	// direct holds the DirectTable view of resolved handles that support
	// it, parallel to tables; the fused tier's inline apply path reads it
	// to run lookups engine-direct with batched accounting. Nil slots fall
	// back to the generic applyTableWith funnel.
	direct []DirectTable
	// keyPlans holds pre-resolved key-construction plans parallel to
	// tables; nil slots (selectors, inconsistent layouts) fall back to
	// the generic BuildKey.
	keyPlans []*keyPlan
	// Arm dispatch, precomputed from the template's arm list: armTags[i]
	// selects arms[armAt[i]] on a hit with that tag (last declaration
	// wins, like the interpreter's scan); defaultArm is the last default
	// arm's index, or -1.
	armTags    []uint64
	armAt      []int
	defaultArm int
}

// Key-plan step kinds.
const (
	keyMeta uint8 = iota
	keyHdr
	keyValue
)

// keyStep is one pre-resolved field of a table key: where the bits come
// from and where in the key they land, decided at compile time so the
// per-packet build is copies only.
type keyStep struct {
	kind    uint8
	op      *template.Operand // keyValue only, read via ReadOperand
	hdr     pkt.HeaderID      // keyHdr only
	bitOff  int               // source bit offset (meta/header)
	width   int
	dstOff  int  // bit offset in the key
	aligned bool // src, dst and width all byte-aligned: plain copy
}

// keyPlan is a table's compiled key layout. For selector tables (sel
// true) the steps are instead the fields hashed for member choice —
// Keys[0], the group, keeps the generic byte path — and every hashed
// field fits a register (width <= 64).
type keyPlan struct {
	nBytes int
	steps  []keyStep
	sel    bool
}

// compileKeyPlan lowers a table's key description; nil when the declared
// KeyWidth can't hold the fields (the generic builder's error path
// handles that) or a selector hashes a field wider than a register.
func compileKeyPlan(t *template.Table) *keyPlan {
	if t.IsSelector {
		p := &keyPlan{sel: true}
		for i := 1; i < len(t.Keys); i++ {
			o := &t.Keys[i].Operand
			if o.Width <= 0 || o.Width > 64 || o.BitOff < 0 {
				return nil
			}
			s := keyStep{op: o, bitOff: o.BitOff, width: o.Width}
			switch o.Kind {
			case template.OpdMeta:
				s.kind = keyMeta
			case template.OpdHeader:
				s.kind = keyHdr
				s.hdr = o.Header
			default:
				s.kind = keyValue
			}
			p.steps = append(p.steps, s)
		}
		return p
	}
	p := &keyPlan{nBytes: (t.KeyWidth + 7) / 8}
	bit := 0
	for i := range t.Keys {
		o := &t.Keys[i].Operand
		if o.Width <= 0 || o.BitOff < 0 || bit+o.Width > p.nBytes*8 {
			return nil
		}
		s := keyStep{op: o, bitOff: o.BitOff, width: o.Width, dstOff: bit,
			aligned: o.BitOff%8 == 0 && o.Width%8 == 0 && bit%8 == 0}
		switch o.Kind {
		case template.OpdMeta:
			s.kind = keyMeta
		case template.OpdHeader:
			s.kind = keyHdr
			s.hdr = o.Header
		default:
			s.kind = keyValue
		}
		p.steps = append(p.steps, s)
		bit += o.Width
	}
	return p
}

// compiler tracks emitted code and the worst-case operand stack depth so
// the executor can pre-size Env.stack and skip bounds checks.
type compiler struct {
	sr       *StageRuntime
	code     []instr
	tables   []*template.Table
	tblIdx   map[string]int32
	depth    int
	maxDepth int
}

// compileStage lowers every program of a bound stage.
func compileStage(sr *StageRuntime) *stageProg {
	mc := &compiler{sr: sr, tblIdx: make(map[string]int32)}
	mc.matchStmts(sr.tmpl.Match)
	prog := &stageProg{match: mc.code, tables: mc.tables}
	prog.keyPlans = make([]*keyPlan, len(mc.tables))
	for i, t := range mc.tables {
		prog.keyPlans[i] = compileKeyPlan(t)
	}
	maxStack := mc.maxDepth
	bodies := make(map[string][]instr)
	depths := make(map[string]int)
	for i := range sr.tmpl.Arms {
		name := sr.tmpl.Arms[i].Action
		if _, done := bodies[name]; !done {
			ac := &compiler{sr: sr}
			if act := sr.actions[name]; act != nil {
				ac.instrs(act.Body)
			}
			bodies[name] = ac.code
			depths[name] = ac.maxDepth
		}
		if depths[name] > maxStack {
			maxStack = depths[name]
		}
		prog.arms = append(prog.arms, compiledArm{action: name, code: bodies[name]})
	}
	// Headroom so conservative depth accounting can never underrun.
	prog.maxStack = maxStack + 4
	prog.defaultArm = -1
	for i := range sr.tmpl.Arms {
		a := &sr.tmpl.Arms[i]
		if a.Default {
			prog.defaultArm = i
			continue
		}
		prog.armTags = append(prog.armTags, a.Tag)
		prog.armAt = append(prog.armAt, i)
	}
	return prog
}

func (c *compiler) emit(in instr) int32 {
	c.code = append(c.code, in)
	return int32(len(c.code) - 1)
}

func (c *compiler) push(n int) {
	c.depth += n
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *compiler) pop(n int) { c.depth -= n }

func (c *compiler) here() int32 { return int32(len(c.code)) }

// patchJump points the jump at pc to the current end of code.
func (c *compiler) patchJump(pc int32) { c.code[pc].a = c.here() }

// clamp64 mirrors ReadOperand's wide-field truncation: reads wider than 64
// bits take the low 64 bits.
func clamp64(off, w int) (int32, int32) {
	if w > 64 {
		off += w - 64
		w = 64
	}
	return int32(off), int32(w)
}

// operand compiles a read of o, pushing one value. Nil and unknown kinds
// fault at runtime like the interpreter (templates are data, not trusted
// code, so malformed nodes must stay observable per packet).
func (c *compiler) operand(o *template.Operand) {
	if o == nil {
		c.emit(instr{op: opFaultZero})
		c.push(1)
		return
	}
	switch o.Kind {
	case template.OpdConst:
		c.emit(instr{op: opPushConst, val: o.Const})
	case template.OpdParam:
		c.emit(instr{op: opPushParam, a: int32(o.ParamIdx)})
	case template.OpdMeta:
		off, w := clamp64(o.BitOff, o.Width)
		c.emit(instr{op: opLoadMeta, a: off, b: w})
	case template.OpdHeader:
		off, w := clamp64(o.BitOff, o.Width)
		c.emit(instr{op: opLoadHdr, hdr: o.Header, a: off, b: w})
	default:
		c.emit(instr{op: opFaultZero})
	}
	c.push(1)
}

var binOps = map[template.ArithOp]opcode{
	template.OpAdd: opAdd,
	template.OpSub: opSub,
	template.OpMul: opMul,
	template.OpDiv: opDiv,
	template.OpMod: opMod,
	template.OpAnd: opAndB,
	template.OpOr:  opOrB,
	template.OpXor: opXor,
	template.OpShl: opShl,
	template.OpShr: opShr,
}

var cmpOps = map[template.CmpOp]opcode{
	template.CmpEq: opCmpEq,
	template.CmpNe: opCmpNe,
	template.CmpLt: opCmpLt,
	template.CmpGt: opCmpGt,
	template.CmpLe: opCmpLe,
	template.CmpGe: opCmpGe,
}

// expr compiles a value expression, pushing one value.
func (c *compiler) expr(x *template.Expr) {
	if x == nil {
		c.emit(instr{op: opFaultZero})
		c.push(1)
		return
	}
	switch x.Kind {
	case template.ExprOperand:
		c.operand(x.Operand)
	case template.ExprBin:
		c.expr(x.A)
		c.expr(x.B)
		if op, ok := binOps[x.Op]; ok {
			c.emit(instr{op: op})
			c.pop(1)
		} else {
			// The interpreter evaluates both children (with their side
			// effects on fault counters) before noticing the bad operator.
			c.emit(instr{op: opPop, a: 2})
			c.pop(2)
			c.emit(instr{op: opFaultZero})
			c.push(1)
		}
	case template.ExprHash:
		for _, a := range x.Args {
			c.expr(a)
		}
		c.emit(instr{op: opHash, a: int32(len(x.Args))})
		c.pop(len(x.Args))
		c.push(1)
	case template.ExprRegRead:
		c.expr(x.Index)
		c.emit(instr{op: opRegRead, reg: x.Reg})
	default:
		c.emit(instr{op: opFaultZero})
		c.push(1)
	}
}

// cond compiles a boolean expression, pushing 0/1. And/or short-circuit
// via jumps, matching the interpreter's evaluation order exactly (the
// right side's fault side effects must only happen when it is evaluated).
func (c *compiler) cond(cd *template.Cond) {
	if cd == nil {
		c.emit(instr{op: opFaultZero})
		c.push(1)
		return
	}
	switch cd.Kind {
	case template.CondBool:
		var v uint64
		if cd.Val {
			v = 1
		}
		c.emit(instr{op: opPushConst, val: v})
		c.push(1)
	case template.CondValid:
		c.emit(instr{op: opValid, hdr: cd.Header})
		c.push(1)
	case template.CondNot:
		c.cond(cd.X)
		c.emit(instr{op: opBoolNot})
	case template.CondAnd:
		c.cond(cd.X)
		jFalse1 := c.emit(instr{op: opJz})
		c.pop(1)
		c.cond(cd.Y)
		jFalse2 := c.emit(instr{op: opJz})
		c.pop(1)
		c.emit(instr{op: opPushConst, val: 1})
		c.push(1)
		jEnd := c.emit(instr{op: opJmp})
		c.pop(1) // the false arm pushes its own result
		c.patchJump(jFalse1)
		c.patchJump(jFalse2)
		c.emit(instr{op: opPushConst, val: 0})
		c.push(1)
		c.patchJump(jEnd)
	case template.CondOr:
		c.cond(cd.X)
		jTrue1 := c.emit(instr{op: opJnz})
		c.pop(1)
		c.cond(cd.Y)
		jTrue2 := c.emit(instr{op: opJnz})
		c.pop(1)
		c.emit(instr{op: opPushConst, val: 0})
		c.push(1)
		jEnd := c.emit(instr{op: opJmp})
		c.pop(1)
		c.patchJump(jTrue1)
		c.patchJump(jTrue2)
		c.emit(instr{op: opPushConst, val: 1})
		c.push(1)
		c.patchJump(jEnd)
	case template.CondCmp:
		c.expr(cd.A)
		c.expr(cd.B)
		if op, ok := cmpOps[cd.Cmp]; ok {
			c.emit(instr{op: op})
			c.pop(1)
		} else {
			c.emit(instr{op: opPop, a: 2})
			c.pop(2)
			c.emit(instr{op: opFaultZero})
			c.push(1)
		}
	default:
		c.emit(instr{op: opFaultZero})
		c.push(1)
	}
}

// instrs compiles an action body.
func (c *compiler) instrs(body []template.Instr) {
	for i := range body {
		in := &body[i]
		switch in.Op {
		case template.IAssign:
			c.assign(in)
		case template.IRegWrite:
			c.expr(in.Index)
			c.expr(in.Value)
			c.emit(instr{op: opRegWrite, reg: in.Reg})
			c.pop(2)
		case template.IDrop:
			c.emit(instr{op: opDrop})
		case template.IToCPU:
			c.emit(instr{op: opToCPU})
		case template.ISRHAdvance:
			c.emit(instr{op: opSRHAdvance})
		case template.ISRHPop:
			c.emit(instr{op: opSRHPop})
		case template.IIf:
			c.cond(in.Cond)
			jElse := c.emit(instr{op: opJz})
			c.pop(1)
			c.instrs(in.Then)
			jEnd := c.emit(instr{op: opJmp})
			c.patchJump(jElse)
			c.instrs(in.Else)
			c.patchJump(jEnd)
		default:
			c.emit(instr{op: opFault})
		}
	}
}

// assign compiles one assignment. Wide field-to-field copies keep the
// interpreter's byte-granular path (opAssignTree); everything else
// evaluates the source then stores through a pre-resolved destination.
func (c *compiler) assign(in *template.Instr) {
	if in.Dst.Width > 64 && in.Src != nil && in.Src.Kind == template.ExprOperand &&
		in.Src.Operand != nil && in.Src.Operand.Width == in.Dst.Width {
		c.emit(instr{op: opAssignTree, tree: in})
		return
	}
	c.expr(in.Src)
	switch in.Dst.Kind {
	case template.OpdMeta:
		op := opStoreMeta
		if in.Dst.Width > 64 {
			op = opStoreMetaWide
		}
		c.emit(instr{op: op, a: int32(in.Dst.BitOff), b: int32(in.Dst.Width)})
	case template.OpdHeader:
		op := opStoreHdr
		if in.Dst.Width > 64 {
			op = opStoreHdrWide
		}
		c.emit(instr{op: op, hdr: in.Dst.Header, a: int32(in.Dst.BitOff), b: int32(in.Dst.Width)})
	default:
		c.emit(instr{op: opPop, a: 1})
		c.emit(instr{op: opFault})
	}
	c.pop(1)
}

// matchStmts compiles the matcher program. Table pointers are resolved
// now; opApply carries an index into stageProg.tables (-1 for tables the
// stage does not actually own, which fault at runtime like the
// interpreter).
func (c *compiler) matchStmts(stmts []template.MatchStmt) {
	for i := range stmts {
		st := &stmts[i]
		switch st.Kind {
		case template.MatchIf:
			c.cond(st.Cond)
			jElse := c.emit(instr{op: opJz})
			c.pop(1)
			c.matchStmts(st.Then)
			jEnd := c.emit(instr{op: opJmp})
			c.patchJump(jElse)
			c.matchStmts(st.Else)
			c.patchJump(jEnd)
		case template.MatchApply:
			idx := int32(-1)
			if t := c.sr.tables[st.Table]; t != nil {
				if j, ok := c.tblIdx[st.Table]; ok {
					idx = j
				} else {
					idx = int32(len(c.tables))
					c.tables = append(c.tables, t)
					c.tblIdx[st.Table] = idx
				}
			}
			c.emit(instr{op: opApply, a: idx})
		}
	}
}
