package tsp

// int.go is the stamper side of in-band network telemetry (INT-MD): a
// per-stage epilogue that appends one intmd.HopRecord to the packet's
// INT trailer. In compiled mode the epilogue is a real compiled op
// (opIntStamp) emitted into the stage program at apply time; the
// interpreter calls the same Env method directly, so compiled/interp
// parity is by construction. Stamping is off by default: a stage built
// without BuildOpts.Int carries no epilogue at all, keeping the disabled
// hot path branch-only and allocation-free.

import (
	"ipsa/internal/intmd"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// IntStampCtx is the switch-wide stamping context, installed on the Env
// by the dataplane for every packet while INT is enabled (nil otherwise).
// It carries everything a stamp needs that isn't in the packet: identity,
// clock, and a view of TM queue occupancy.
type IntStampCtx struct {
	// SwitchID identifies this switch in hop records.
	SwitchID uint32
	// MaxHops caps the records one packet accumulates (0 = wire limit).
	MaxHops int
	// Now overrides the monotonic clock; nil uses intmd.NowNanos.
	// Differential tests inject a deterministic clock here so compiled
	// and interpreted stamps are byte-identical.
	Now func() int64
	// Depth reports the TM queue depth for an egress port; nil stamps 0.
	// Must be lock-free — it runs on the per-packet path.
	Depth func(port int) int
	// Stamps / Skips count hop records written and stamps suppressed by
	// the MaxHops cap. Optional.
	Stamps *telemetry.Counter
	Skips  *telemetry.Counter
}

// NowNanos returns the context's notion of now.
func (c *IntStampCtx) NowNanos() int64 {
	if c.Now != nil {
		return c.Now()
	}
	return intmd.NowNanos()
}

// IntStageID derives a stage's 16-bit wire identifier from its name
// (xor-folded FNV-1a). Name-derived rather than ordinal so IDs stay
// stable across partial rewrites: an in-situ patch that adds or removes
// a stage must not renumber the compiled programs of untouched TSPs.
// The sink resolves IDs back to names through the same function.
func IntStageID(name string) uint16 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// intStamp appends one hop record for the stage identified by stageID.
// Shared verbatim by the compiled executor (case opIntStamp) and the
// interpreter epilogue — when changing it, there is nothing to keep in
// sync, which is the point.
func (e *Env) intStamp(stageID uint16) {
	ctx := e.Int
	if ctx == nil {
		return
	}
	p := e.Pkt
	maxHops := ctx.MaxHops
	if maxHops <= 0 || maxHops > intmd.MaxHopsWire {
		maxHops = intmd.MaxHopsWire
	}
	now := uint64(ctx.NowNanos())
	var inNs uint64
	if prevOut, ok := intmd.LastHopOut(p.Data); ok {
		if hops, _ := intmd.Hops(p.Data); hops >= maxHops {
			if ctx.Skips != nil {
				ctx.Skips.Inc()
			}
			return
		}
		inNs = prevOut
	} else if p.IngressNanos != 0 {
		inNs = uint64(p.IngressNanos)
	} else {
		inNs = now
	}
	depth := 0
	if ctx.Depth != nil {
		if port, err := p.MetaBits(template.IstdOutPortOff, template.IstdOutPortWidth); err == nil {
			depth = ctx.Depth(int(port))
		}
	}
	p.Data = intmd.AppendHop(p.Data, intmd.HopRecord{
		SwitchID:     ctx.SwitchID,
		TSP:          uint16(e.TSPIndex),
		StageID:      stageID,
		InNanos:      inNs,
		OutNanos:     now,
		LatencyNanos: intmd.SatLatency(inNs, now),
		QDepth:       uint32(depth),
	})
	if ctx.Stamps != nil {
		ctx.Stamps.Inc()
	}
}

// BuildOpts selects how stage runtimes are constructed: which executor,
// and whether each stage gets the INT stamping epilogue. The zero value
// is the default build (fused closures, INT off).
type BuildOpts struct {
	Mode ExecMode
	// Int emits the IntStamp epilogue into every stage: an opIntStamp op
	// appended to the compiled program, or the equivalent interpreter
	// flag. Enabling or disabling it is therefore an in-situ rewrite of
	// the stage programs, not a runtime branch flip.
	Int bool
}

// NewStageRuntimeOpts is NewStageRuntimeMode with full build options.
func NewStageRuntimeOpts(cfg *template.Config, name string, opts BuildOpts) (*StageRuntime, error) {
	sr, err := NewStageRuntimeMode(cfg, name, opts.Mode)
	if err != nil {
		return nil, err
	}
	if opts.Int {
		id := IntStageID(name)
		if sr.prog != nil {
			sr.prog.post = []instr{{op: opIntStamp, a: int32(id)}}
		} else {
			sr.intStamp = true
			sr.intStageID = id
		}
		if sr.fused != nil {
			sr.fused.post = func(e *Env) { e.intStamp(id) }
		}
	}
	return sr, nil
}

// BuildStageRuntimesOpts constructs every stage runtime of a config with
// full build options.
func BuildStageRuntimesOpts(cfg *template.Config, opts BuildOpts) (map[string]*StageRuntime, error) {
	out := make(map[string]*StageRuntime, len(cfg.Stages))
	for name := range cfg.Stages {
		sr, err := NewStageRuntimeOpts(cfg, name, opts)
		if err != nil {
			return nil, err
		}
		out[name] = sr
	}
	return out, nil
}
