package tsp

import (
	"fmt"
	"sync/atomic"
	"time"

	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
)

// TSP is one physical Templated Stage Processor slot of the elastic
// pipeline. After stage merging it may host several logical stages, which
// it executes in order. Reprogramming a TSP means swapping its stage
// runtimes — "downloading the template parameters" (paper Sec. 2.2).
type TSP struct {
	index  int
	stages atomic.Pointer[[]*StageRuntime]
	// loads counts template downloads, an input to the update-cost model.
	loads atomic.Uint64
	// lat, when attached, receives this TSP's stage-batch latency for
	// packets marked Timed (sampled, so steady-state cost stays at one
	// branch per TSP per packet).
	lat *telemetry.Histogram
}

// NewTSP creates an empty (bypassed) TSP.
func NewTSP(index int) *TSP {
	t := &TSP{index: index}
	empty := []*StageRuntime{}
	t.stages.Store(&empty)
	return t
}

// Index returns the physical position in the pipeline.
func (t *TSP) Index() int { return t.index }

// Load downloads new stage templates into the TSP, replacing its current
// program in one atomic step (the hardware analogue writes the template
// registers while the pipeline is drained).
func (t *TSP) Load(stages []*StageRuntime) {
	s := append([]*StageRuntime(nil), stages...)
	t.stages.Store(&s)
	t.loads.Add(1)
}

// Unload empties the TSP (bypass mode, low power).
func (t *TSP) Unload() {
	empty := []*StageRuntime{}
	t.stages.Store(&empty)
	t.loads.Add(1)
}

// Active reports whether the TSP hosts any stage.
func (t *TSP) Active() bool { return len(*t.stages.Load()) > 0 }

// SetLatencyHistogram attaches the latency histogram observed for Timed
// packets. Call before traffic starts; handles are resolved once.
func (t *TSP) SetLatencyHistogram(h *telemetry.Histogram) { t.lat = h }

// Stages returns the currently loaded stage runtimes (telemetry
// collectors read their counters at scrape time).
func (t *TSP) Stages() []*StageRuntime { return *t.stages.Load() }

// Loads reports how many template downloads the TSP has received.
func (t *TSP) Loads() uint64 { return t.loads.Load() }

// StageNames lists the hosted logical stages.
func (t *TSP) StageNames() []string {
	cur := *t.stages.Load()
	out := make([]string, len(cur))
	for i, s := range cur {
		out[i] = s.Name()
	}
	return out
}

// Process runs the hosted stages on a packet. Bypassed TSPs pass packets
// through untouched.
func (t *TSP) Process(p *pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	t.ProcessWith(*t.stages.Load(), p, parser, backend, env)
}

// ProcessWith runs an explicit stage list on a packet instead of the
// currently loaded one. The epoch-versioned program store uses it to
// execute the stage set a packet was pinned to at ingress, regardless of
// what has been downloaded into the TSP since; latency sampling still
// lands on this TSP's histogram.
func (t *TSP) ProcessWith(stages []*StageRuntime, p *pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	if len(stages) == 0 {
		return
	}
	env.TSPIndex = t.index
	var t0 time.Time
	timed := env.Timed && t.lat != nil
	if timed {
		t0 = time.Now()
	}
	for _, s := range stages {
		if p.Drop {
			break
		}
		s.Execute(p, parser, backend, env)
	}
	if timed {
		t.lat.ObserveNanos(int64(time.Since(t0)))
	}
}

// ProcessBatchWith runs an explicit stage list over a whole batch,
// stage-major: every live packet passes through one stage before any
// packet advances to the next, so per-stage closures, key plans and match
// tables stay cache-hot across the batch. Per-packet semantics (including
// drop short-circuiting — a packet dropped by stage k is skipped by stage
// k+1) match a ProcessWith per packet. Latency sampling is per batch: the
// whole stage sweep is timed once and the mean per live packet is
// observed for each Timed packet, since per-packet boundaries do not
// exist in stage-major order.
func (t *TSP) ProcessBatchWith(stages []*StageRuntime, ps []*pkt.Packet, parser *OnDemandParser, backend TableBackend, env *Env) {
	if len(stages) == 0 {
		return
	}
	env.TSPIndex = t.index
	timed, live := 0, 0
	if t.lat != nil {
		for _, p := range ps {
			if p == nil || p.Drop {
				continue
			}
			live++
			if p.Timed {
				timed++
			}
		}
	}
	var t0 time.Time
	if timed > 0 {
		t0 = time.Now()
	}
	for _, s := range stages {
		s.ExecuteBatch(ps, parser, backend, env)
	}
	if timed > 0 {
		mean := int64(time.Since(t0)) / int64(live)
		for i := 0; i < timed; i++ {
			t.lat.ObserveNanos(mean)
		}
	}
}

// BuildStageRuntimes constructs the runtimes for every stage of a config,
// keyed by stage name, lowering each stage to fused closures (the default
// executor).
func BuildStageRuntimes(cfg *template.Config) (map[string]*StageRuntime, error) {
	return BuildStageRuntimesMode(cfg, ExecFused)
}

// BuildStageRuntimesMode is BuildStageRuntimes with an explicit executor
// mode.
func BuildStageRuntimesMode(cfg *template.Config, mode ExecMode) (map[string]*StageRuntime, error) {
	out := make(map[string]*StageRuntime, len(cfg.Stages))
	for name := range cfg.Stages {
		sr, err := NewStageRuntimeMode(cfg, name, mode)
		if err != nil {
			return nil, err
		}
		out[name] = sr
	}
	return out, nil
}

// ResolveSRv6IDs finds the header instances the SRv6 primitives act on.
func ResolveSRv6IDs(cfg *template.Config) (srh, ipv6 pkt.HeaderID) {
	srh, ipv6 = pkt.InvalidHeader, pkt.InvalidHeader
	if h := cfg.HeaderByName("srh"); h != nil {
		srh = h.ID
	}
	if h := cfg.HeaderByName("ipv6"); h != nil {
		ipv6 = h.ID
	}
	return srh, ipv6
}

// String renders the TSP for debugging.
func (t *TSP) String() string {
	return fmt.Sprintf("TSP%d%v", t.index, t.StageNames())
}
