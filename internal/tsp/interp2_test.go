package tsp

import (
	"bytes"
	"testing"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// srv6Env builds a packet with an IPv6+SRH pair already parsed, IDs 0/1.
func srv6Env(t *testing.T, segmentsLeft uint8, nSegs int) (*Env, []byte) {
	t.Helper()
	ip := pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64}
	ip.Dst[15] = 0xAA
	segs := make([][16]byte, nSegs)
	for i := range segs {
		segs[i][0] = 0x20
		segs[i][15] = byte(0x10 + i)
	}
	srh := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: segmentsLeft, Segments: segs}
	raw, err := pkt.Serialize(&ip, &srh, &pkt.TCP{SrcPort: 1, DstPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := pkt.NewPacket(raw, 8)
	p.HV.Set(0, 0, pkt.IPv6Len)
	p.HV.Set(1, pkt.IPv6Len, pkt.SRHFixedLen+nSegs*pkt.SegmentLength)
	env := &Env{Pkt: p, Regs: NewRegisterFile(nil), Faults: &Faults{}, SRHID: 1, IPv6ID: 0}
	return env, raw
}

func TestSRHAdvanceUnit(t *testing.T) {
	env, _ := srv6Env(t, 2, 3)
	env.ExecInstrs([]template.Instr{{Op: template.ISRHAdvance}})
	var ip pkt.IPv6
	_ = ip.Decode(env.Pkt.Data)
	// SL 2 -> 1; dst = segments[1] whose last byte is 0x11.
	if ip.Dst[15] != 0x11 || ip.Dst[0] != 0x20 {
		t.Errorf("dst = %x", ip.Dst)
	}
	var srh pkt.SRH
	_ = srh.Decode(env.Pkt.Data[pkt.IPv6Len:])
	if srh.SegmentsLeft != 1 {
		t.Errorf("SL = %d", srh.SegmentsLeft)
	}
	if env.Faults.BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", env.Faults.BadTemplate.Load())
	}
}

func TestSRHAdvanceAtZeroFaults(t *testing.T) {
	env, before := srv6Env(t, 0, 2)
	orig := append([]byte(nil), before...)
	env.ExecInstrs([]template.Instr{{Op: template.ISRHAdvance}})
	if env.Faults.BadTemplate.Load() == 0 {
		t.Error("SL=0 advance did not fault")
	}
	if !bytes.Equal(env.Pkt.Data, orig) {
		t.Error("packet mutated despite fault")
	}
}

func TestSRHAdvanceWithoutHeadersFaults(t *testing.T) {
	p := pkt.NewPacket(make([]byte, 64), 8)
	env := &Env{Pkt: p, Regs: NewRegisterFile(nil), Faults: &Faults{}, SRHID: 1, IPv6ID: 0}
	env.ExecInstrs([]template.Instr{{Op: template.ISRHAdvance}, {Op: template.ISRHPop}})
	if env.Faults.InvalidHeaderAccess.Load() != 2 {
		t.Errorf("faults: %d", env.Faults.InvalidHeaderAccess.Load())
	}
}

func TestSRHPopUnit(t *testing.T) {
	env, before := srv6Env(t, 0, 2)
	origLen := len(before)
	env.ExecInstrs([]template.Instr{{Op: template.ISRHPop}})
	if got := len(env.Pkt.Data); got != origLen-(pkt.SRHFixedLen+2*pkt.SegmentLength) {
		t.Errorf("len = %d", got)
	}
	var ip pkt.IPv6
	_ = ip.Decode(env.Pkt.Data)
	if ip.NextHeader != pkt.IPProtoTCP {
		t.Errorf("next header = %d", ip.NextHeader)
	}
	if int(ip.PayloadLen) != pkt.TCPMinLen {
		t.Errorf("payload len = %d", ip.PayloadLen)
	}
	if env.Pkt.HV.Valid(1) {
		t.Error("srh still valid after pop")
	}
	// TCP moved up.
	var tcp pkt.TCP
	if err := tcp.Decode(env.Pkt.Data[pkt.IPv6Len:]); err != nil || tcp.SrcPort != 1 {
		t.Errorf("tcp after pop: %+v, %v", tcp, err)
	}
}

func TestSRHAdvanceTruncatedSegmentsFaults(t *testing.T) {
	env, _ := srv6Env(t, 2, 3)
	// Lie about the SRH length: claim it ends before segment[1].
	loc, _ := env.Pkt.HV.Loc(1)
	env.Pkt.HV.Set(1, loc.Off, pkt.SRHFixedLen+pkt.SegmentLength)
	env.ExecInstrs([]template.Instr{{Op: template.ISRHAdvance}})
	if env.Faults.BadTemplate.Load() == 0 {
		t.Error("out-of-bounds segment access did not fault")
	}
}

func TestWriteOperandWideAndMeta(t *testing.T) {
	p := pkt.NewPacket(make([]byte, 40), 40)
	p.HV.Set(0, 0, 40)
	env := &Env{Pkt: p, Regs: NewRegisterFile(nil), Faults: &Faults{},
		SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}

	// Wide meta write: high part cleared, low 64 bits stored.
	wide := template.Operand{Kind: template.OpdMeta, BitOff: 0, Width: 128}
	for i := 0; i < 16; i++ {
		p.Meta[i] = 0xFF
	}
	env.WriteOperand(&wide, 0x1122334455667788)
	want := append(bytes.Repeat([]byte{0}, 8), 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88)
	if !bytes.Equal(p.Meta[:16], want) {
		t.Errorf("meta = %x", p.Meta[:16])
	}
	if got := env.ReadOperand(&wide); got != 0x1122334455667788 {
		t.Errorf("read back %x", got)
	}

	// Wide header write.
	hwide := template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 64, Width: 128}
	env.WriteOperand(&hwide, 0xAB)
	if got := env.ReadOperand(&hwide); got != 0xAB {
		t.Errorf("header wide read %x", got)
	}

	// Invalid header write faults but does not panic.
	bad := template.Operand{Kind: template.OpdHeader, Header: 7, BitOff: 0, Width: 8}
	env.WriteOperand(&bad, 1)
	if env.Faults.InvalidHeaderAccess.Load() == 0 {
		t.Error("invalid header write did not fault")
	}
	// Unknown operand kind faults.
	unk := template.Operand{Kind: "bogus"}
	env.WriteOperand(&unk, 1)
	if env.ReadOperand(&unk) != 0 {
		t.Error("bogus operand read nonzero")
	}
	if env.Faults.BadTemplate.Load() == 0 {
		t.Error("bogus operand did not fault")
	}
}

func TestExecAssignWideCopy(t *testing.T) {
	// 128-bit field-to-field copy (ipv6 address style).
	p := pkt.NewPacket(make([]byte, 64), 32)
	p.HV.Set(0, 0, 64)
	env := &Env{Pkt: p, Regs: NewRegisterFile(nil), Faults: &Faults{},
		SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
	for i := 0; i < 16; i++ {
		p.Data[i] = byte(0xA0 + i)
	}
	src := template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 0, Width: 128}
	dst := template.Operand{Kind: template.OpdHeader, Header: 0, BitOff: 256, Width: 128}
	env.ExecInstrs([]template.Instr{{
		Op: template.IAssign, Dst: dst,
		Src: &template.Expr{Kind: template.ExprOperand, Operand: &src},
	}})
	if !bytes.Equal(p.Data[32:48], p.Data[0:16]) {
		t.Errorf("wide copy: %x vs %x", p.Data[32:48], p.Data[0:16])
	}
	// Wide copy into metadata too.
	mdst := template.Operand{Kind: template.OpdMeta, BitOff: 0, Width: 128}
	env.ExecInstrs([]template.Instr{{
		Op: template.IAssign, Dst: mdst,
		Src: &template.Expr{Kind: template.ExprOperand, Operand: &src},
	}})
	if !bytes.Equal(p.Meta[0:16], p.Data[0:16]) {
		t.Errorf("wide meta copy: %x", p.Meta[0:16])
	}
	if env.Faults.BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", env.Faults.BadTemplate.Load())
	}
}

func TestBuildStageRuntimesAndResolve(t *testing.T) {
	cfg := miniConfig()
	rts, err := BuildStageRuntimes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 1 || rts["s"] == nil || rts["s"].Template().Name != "s" {
		t.Fatalf("runtimes: %+v", rts)
	}
	srh, v6 := ResolveSRv6IDs(cfg)
	if srh != pkt.InvalidHeader || v6 != pkt.InvalidHeader {
		t.Errorf("ids: %d/%d", srh, v6)
	}
	cfg.Headers[0].Name = "srh"
	cfg.Headers[1].Name = "ipv6"
	srh, v6 = ResolveSRv6IDs(cfg)
	if srh != 0 || v6 != 1 {
		t.Errorf("ids: %d/%d", srh, v6)
	}
	bad, _ := cfg.Clone()
	bad.Stages["s"].Arms[0].Action = "ghost"
	if _, err := BuildStageRuntimes(bad); err == nil {
		t.Error("bad config accepted")
	}
}
