package tsp

import (
	"sync/atomic"

	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/verdict"
)

// Faults counts abnormal events the interpreter tolerates the way hardware
// would (reads of invalid headers return zero, bad register indexes are
// dropped) while keeping them observable.
type Faults struct {
	InvalidHeaderAccess atomic.Uint64
	RegisterFault       atomic.Uint64
	BadTemplate         atomic.Uint64
}

// Env is the per-packet evaluation environment of the executor.
type Env struct {
	Pkt    *pkt.Packet
	Params []uint64
	Regs   *RegisterFile
	Faults *Faults
	// srhID/ipv6ID locate the instances the SRv6 action primitives
	// operate on; InvalidHeader when the design has no such headers.
	SRHID  pkt.HeaderID
	IPv6ID pkt.HeaderID

	// Trace, when non-nil, is this packet's flight record: each stage
	// executed appends a telemetry.StageEvent. Nil for the (sampled-out)
	// common case.
	Trace *telemetry.TraceRecord
	// Timed marks this packet as latency-sampled: TSPs with a histogram
	// attached time their stage batch. Kept separate from Trace so
	// latency sampling can run denser than full tracing.
	Timed bool
	// TSPIndex is the physical TSP currently executing, stamped by
	// TSP.Process so stage trace events carry their location.
	TSPIndex int

	// Int is the INT stamping context, set by the dataplane per packet
	// while INT is enabled; nil makes every IntStamp epilogue a no-op.
	Int *IntStampCtx

	// Lane is the counter stripe this executor writes (0 for the shared
	// synchronous/pipelined paths, shard index + 1 for shard workers), so
	// per-packet totals land in per-core cells instead of one contended
	// cache line.
	Lane int

	// Scratch buffers reused across lookups on the hot path. keyBuf backs
	// BuildKey results (valid until the next BuildKey on this Env);
	// groupBuf and fieldBuf back selector group keys and field reads.
	// specBuf backs the batch executor's speculative one-ahead prefetch
	// keys, kept separate so a prefetch never clobbers an in-flight key.
	keyBuf   []byte
	groupBuf []byte
	fieldBuf []byte
	specBuf  []byte

	// prefetched sinks the tag returned by table prefetches so the bucket
	// load has a data dependency the compiler cannot eliminate.
	prefetched uint64

	// statTbl/statHits/statMisses batch table hit/miss accounting for the
	// fused inline-apply path: counts accumulate here in plain registers
	// and flushTableStats credits them to the table's shared atomics at
	// packet (scalar) or batch boundaries.
	statTbl    DirectTable
	statHits   uint64
	statMisses uint64

	// matchOut is the per-stage match outcome, Env-resident because the
	// fused tier hands its address to closure calls: a stack-local would
	// be forced to escape (one heap allocation per stage per packet).
	matchOut matchOutcome

	// stack is the operand stack of the compiled executor, sized to the
	// deepest program of the stage about to run (see ensureStack).
	stack []uint64
}

// Rebind prepares a (possibly pooled) Env for a new packet under the given
// design, clearing all per-packet state while keeping scratch buffers and
// the operand stack.
func (e *Env) Rebind(regs *RegisterFile, faults *Faults, srh, ipv6 pkt.HeaderID) {
	e.Pkt = nil
	e.Params = nil
	e.Regs = regs
	e.Faults = faults
	e.SRHID = srh
	e.IPv6ID = ipv6
	e.Trace = nil
	e.Timed = false
	e.TSPIndex = 0
	e.Int = nil
	e.Lane = 0
	e.statTbl = nil
	e.statHits, e.statMisses = 0, 0
}

func (e *Env) ensureStack(n int) {
	if len(e.stack) < n {
		e.stack = make([]uint64, n)
	}
}

const fnvOffset64 = 14695981039346656037
const fnvPrime64 = 1099511628211

func fnvMix(h, v uint64) uint64 {
	for i := 56; i >= 0; i -= 8 {
		h ^= (v >> uint(i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// finalizeHash applies a splitmix64-style avalanche. FNV-1a's low bit is a
// linear function of the input bytes' low bits, so using a raw FNV value
// modulo a small member count degenerates (every flow picks the same ECMP
// member); finalization restores uniformity in the low bits.
func finalizeHash(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ReadOperand evaluates an operand to a uint64 (wide fields are truncated
// to their low 64 bits).
func (e *Env) ReadOperand(o *template.Operand) uint64 {
	switch o.Kind {
	case template.OpdConst:
		return o.Const
	case template.OpdParam:
		if o.ParamIdx < len(e.Params) {
			return e.Params[o.ParamIdx]
		}
		e.Faults.BadTemplate.Add(1)
		return 0
	case template.OpdMeta:
		w := o.Width
		off := o.BitOff
		if w > 64 {
			off += w - 64
			w = 64
		}
		v, err := e.Pkt.MetaBits(off, w)
		if err != nil {
			e.Faults.BadTemplate.Add(1)
			return 0
		}
		return v
	case template.OpdHeader:
		if !e.Pkt.HV.Valid(o.Header) {
			e.Faults.InvalidHeaderAccess.Add(1)
			return 0
		}
		w := o.Width
		off := o.BitOff
		if w > 64 {
			off += w - 64
			w = 64
		}
		v, err := e.Pkt.FieldBits(o.Header, off, w)
		if err != nil {
			e.Faults.BadTemplate.Add(1)
			return 0
		}
		return v
	}
	e.Faults.BadTemplate.Add(1)
	return 0
}

// WriteOperand stores v into a field destination, truncating to its width.
func (e *Env) WriteOperand(o *template.Operand, v uint64) {
	switch o.Kind {
	case template.OpdMeta:
		w := o.Width
		off := o.BitOff
		if w > 64 {
			// Clear the high part, store the low 64 bits.
			for rem, ro := w-64, off; rem > 0; {
				chunk := rem
				if chunk > 64 {
					chunk = 64
				}
				_ = e.Pkt.SetMetaBits(ro, chunk, 0)
				ro += chunk
				rem -= chunk
			}
			off += w - 64
			w = 64
		}
		if err := e.Pkt.SetMetaBits(off, w, v); err != nil {
			e.Faults.BadTemplate.Add(1)
		}
	case template.OpdHeader:
		if !e.Pkt.HV.Valid(o.Header) {
			e.Faults.InvalidHeaderAccess.Add(1)
			return
		}
		w := o.Width
		off := o.BitOff
		if w > 64 {
			for rem, ro := w-64, off; rem > 0; {
				chunk := rem
				if chunk > 64 {
					chunk = 64
				}
				_ = e.Pkt.SetFieldBits(o.Header, ro, chunk, 0)
				ro += chunk
				rem -= chunk
			}
			off += w - 64
			w = 64
		}
		if err := e.Pkt.SetFieldBits(o.Header, off, w, v); err != nil {
			e.Faults.BadTemplate.Add(1)
		}
	default:
		e.Faults.BadTemplate.Add(1)
	}
}

// operandBytes reads a field operand's raw bytes for wide compares, key
// building and hashing. ok is false for invalid headers.
func (e *Env) operandBytes(o *template.Operand, dst []byte) ([]byte, bool) {
	n := (o.Width + 7) / 8
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	switch o.Kind {
	case template.OpdMeta:
		if err := pkt.GetBytes(e.Pkt.Meta, o.BitOff, o.Width, dst); err != nil {
			e.Faults.BadTemplate.Add(1)
			return dst, false
		}
		return dst, true
	case template.OpdHeader:
		loc, ok := e.Pkt.HV.Loc(o.Header)
		if !ok {
			e.Faults.InvalidHeaderAccess.Add(1)
			return dst, false
		}
		if err := pkt.GetBytes(e.Pkt.Data, loc.Off*8+o.BitOff, o.Width, dst); err != nil {
			e.Faults.BadTemplate.Add(1)
			return dst, false
		}
		return dst, true
	default:
		v := e.ReadOperand(o)
		for i := n - 1; i >= 0; i-- {
			dst[i] = byte(v)
			v >>= 8
		}
		return dst, true
	}
}

// EvalExpr evaluates a compiled expression.
func (e *Env) EvalExpr(x *template.Expr) uint64 {
	if x == nil {
		e.Faults.BadTemplate.Add(1)
		return 0
	}
	switch x.Kind {
	case template.ExprOperand:
		return e.ReadOperand(x.Operand)
	case template.ExprBin:
		a := e.EvalExpr(x.A)
		b := e.EvalExpr(x.B)
		switch x.Op {
		case template.OpAdd:
			return a + b
		case template.OpSub:
			return a - b
		case template.OpMul:
			return a * b
		case template.OpDiv:
			if b == 0 {
				return 0
			}
			return a / b
		case template.OpMod:
			if b == 0 {
				return 0
			}
			return a % b
		case template.OpAnd:
			return a & b
		case template.OpOr:
			return a | b
		case template.OpXor:
			return a ^ b
		case template.OpShl:
			if b >= 64 {
				return 0
			}
			return a << b
		case template.OpShr:
			if b >= 64 {
				return 0
			}
			return a >> b
		}
		e.Faults.BadTemplate.Add(1)
		return 0
	case template.ExprHash:
		h := uint64(fnvOffset64)
		for _, a := range x.Args {
			h = fnvMix(h, e.EvalExpr(a))
		}
		return finalizeHash(h)
	case template.ExprRegRead:
		idx := e.EvalExpr(x.Index)
		v, ok := e.Regs.Read(x.Reg, idx)
		if !ok {
			e.Faults.RegisterFault.Add(1)
		}
		return v
	}
	e.Faults.BadTemplate.Add(1)
	return 0
}

// EvalCond evaluates a compiled boolean.
func (e *Env) EvalCond(c *template.Cond) bool {
	if c == nil {
		e.Faults.BadTemplate.Add(1)
		return false
	}
	switch c.Kind {
	case template.CondBool:
		return c.Val
	case template.CondValid:
		return e.Pkt.HV.Valid(c.Header)
	case template.CondNot:
		return !e.EvalCond(c.X)
	case template.CondAnd:
		return e.EvalCond(c.X) && e.EvalCond(c.Y)
	case template.CondOr:
		return e.EvalCond(c.X) || e.EvalCond(c.Y)
	case template.CondCmp:
		a := e.EvalExpr(c.A)
		b := e.EvalExpr(c.B)
		switch c.Cmp {
		case template.CmpEq:
			return a == b
		case template.CmpNe:
			return a != b
		case template.CmpLt:
			return a < b
		case template.CmpGt:
			return a > b
		case template.CmpLe:
			return a <= b
		case template.CmpGe:
			return a >= b
		}
	}
	e.Faults.BadTemplate.Add(1)
	return false
}

// markDrop is the one drop site shared by all three executor tiers: it
// sets the Drop flag and istd.drop bit as before, and stamps the
// structured loss attribution — the reason (a stage drop action is an
// intentional, ACL-style drop) and the stage (the TSP this Env is
// currently executing, stamped by TSP.Process/ProcessBatch). Both ride
// the packet to the finish hook, which files the loss under
// ipsa_drop_total{reason,stage}.
//
// An admission-stamped parse failure wins over the program drop: designs
// route unparseable frames into a catch-all drop action (base_l2l3's fib
// and dmac defaults), and attributing those to the stage would let a
// garbage-frame storm masquerade as intentional ACL policy, hiding it
// from the unexpected-loss health detector.
func (e *Env) markDrop() {
	e.Pkt.Drop = true
	if e.Pkt.DropReason != verdict.ReasonParse {
		e.Pkt.DropReason = verdict.ReasonACL
		e.Pkt.DropStage = int32(e.TSPIndex)
	}
	_ = e.Pkt.SetMetaBits(template.IstdDropOff, 1, 1)
}

// ExecInstrs runs a compiled action body.
func (e *Env) ExecInstrs(body []template.Instr) {
	for i := range body {
		in := &body[i]
		switch in.Op {
		case template.IAssign:
			e.execAssign(in)
		case template.IRegWrite:
			idx := e.EvalExpr(in.Index)
			v := e.EvalExpr(in.Value)
			if !e.Regs.Write(in.Reg, idx, v) {
				e.Faults.RegisterFault.Add(1)
			}
		case template.IDrop:
			e.markDrop()
		case template.IToCPU:
			e.Pkt.ToCPU = true
			_ = e.Pkt.SetMetaBits(template.IstdToCPUOff, 1, 1)
		case template.ISRHAdvance:
			e.srhAdvance()
		case template.ISRHPop:
			e.srhPop()
		case template.IIf:
			if e.EvalCond(in.Cond) {
				e.ExecInstrs(in.Then)
			} else {
				e.ExecInstrs(in.Else)
			}
		default:
			e.Faults.BadTemplate.Add(1)
		}
	}
}

// execAssign handles both narrow numeric assignment and wide (>64-bit)
// field-to-field copies such as ipv6 addresses.
func (e *Env) execAssign(in *template.Instr) {
	if in.Dst.Width > 64 && in.Src != nil && in.Src.Kind == template.ExprOperand &&
		in.Src.Operand.Width == in.Dst.Width {
		raw, ok := e.operandBytes(in.Src.Operand, nil)
		if !ok {
			return
		}
		switch in.Dst.Kind {
		case template.OpdMeta:
			if err := pkt.SetBytes(e.Pkt.Meta, in.Dst.BitOff, in.Dst.Width, raw); err != nil {
				e.Faults.BadTemplate.Add(1)
			}
		case template.OpdHeader:
			loc, okl := e.Pkt.HV.Loc(in.Dst.Header)
			if !okl {
				e.Faults.InvalidHeaderAccess.Add(1)
				return
			}
			if err := pkt.SetBytes(e.Pkt.Data, loc.Off*8+in.Dst.BitOff, in.Dst.Width, raw); err != nil {
				e.Faults.BadTemplate.Add(1)
			}
		default:
			e.Faults.BadTemplate.Add(1)
		}
		return
	}
	e.WriteOperand(&in.Dst, e.EvalExpr(in.Src))
}

// srhAdvance implements the SRv6 End behaviour: SL -= 1 and
// ipv6.dst_addr = segment_list[SL] (RFC 8754 Sec. 4.3.1).
func (e *Env) srhAdvance() {
	srhLoc, ok := e.Pkt.HV.Loc(e.SRHID)
	if !ok || !e.Pkt.HV.Valid(e.IPv6ID) {
		e.Faults.InvalidHeaderAccess.Add(1)
		return
	}
	sl, err := pkt.GetBits(e.Pkt.Data, srhLoc.Off*8+3*8, 8)
	if err != nil || sl == 0 {
		e.Faults.BadTemplate.Add(1)
		return
	}
	sl--
	if err := pkt.SetBits(e.Pkt.Data, srhLoc.Off*8+3*8, 8, sl); err != nil {
		e.Faults.BadTemplate.Add(1)
		return
	}
	segOff := srhLoc.Off + pkt.SRHFixedLen + int(sl)*pkt.SegmentLength
	if segOff+pkt.SegmentLength > len(e.Pkt.Data) || segOff+pkt.SegmentLength > srhLoc.Off+srhLoc.Len {
		e.Faults.BadTemplate.Add(1)
		return
	}
	v6Loc, _ := e.Pkt.HV.Loc(e.IPv6ID)
	// dst_addr is the last 16 bytes of the 40-byte IPv6 header.
	copy(e.Pkt.Data[v6Loc.Off+24:v6Loc.Off+40], e.Pkt.Data[segOff:segOff+pkt.SegmentLength])
}

// srhPop removes the SRH: ipv6.next_hdr = srh.next_hdr, payload_len is
// reduced, the SRH bytes are excised and the header vector is fixed up.
func (e *Env) srhPop() {
	srhLoc, ok := e.Pkt.HV.Loc(e.SRHID)
	if !ok || !e.Pkt.HV.Valid(e.IPv6ID) {
		e.Faults.InvalidHeaderAccess.Add(1)
		return
	}
	v6Loc, _ := e.Pkt.HV.Loc(e.IPv6ID)
	nh := e.Pkt.Data[srhLoc.Off]
	e.Pkt.Data[v6Loc.Off+6] = nh
	plOff := v6Loc.Off + 4
	pl := uint16(e.Pkt.Data[plOff])<<8 | uint16(e.Pkt.Data[plOff+1])
	pl -= uint16(srhLoc.Len)
	e.Pkt.Data[plOff] = byte(pl >> 8)
	e.Pkt.Data[plOff+1] = byte(pl)
	if err := e.Pkt.RemoveBytes(srhLoc.Off, srhLoc.Len); err != nil {
		e.Faults.BadTemplate.Add(1)
		return
	}
	e.Pkt.HV.Invalidate(e.SRHID)
}
