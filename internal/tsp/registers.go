package tsp

import (
	"fmt"
	"sync"

	"ipsa/internal/template"
)

// RegisterFile holds every stateful register array of a design. It lives in
// the device (not in any one TSP) so registers survive stage relocation.
type RegisterFile struct {
	mu   sync.RWMutex
	regs map[string]*regArray
}

type regArray struct {
	width int
	data  []uint64
}

// NewRegisterFile allocates registers from templates.
func NewRegisterFile(defs []template.Register) *RegisterFile {
	rf := &RegisterFile{regs: make(map[string]*regArray, len(defs))}
	for _, d := range defs {
		rf.regs[d.Name] = &regArray{width: d.Width, data: make([]uint64, d.Size)}
	}
	return rf
}

// Update adds registers that appear in a new configuration, preserving the
// contents of existing ones — in-situ updates must not reset state.
func (rf *RegisterFile) Update(defs []template.Register) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	for _, d := range defs {
		if old, ok := rf.regs[d.Name]; ok {
			if old.width != d.Width || len(old.data) != d.Size {
				return fmt.Errorf("tsp: register %q resized by update", d.Name)
			}
			continue
		}
		rf.regs[d.Name] = &regArray{width: d.Width, data: make([]uint64, d.Size)}
	}
	return nil
}

// Read returns register[idx], or 0 when the register or index is invalid
// (hardware reads of out-of-range addresses return garbage; we pick 0 and
// count it via the caller's fault counter).
func (rf *RegisterFile) Read(name string, idx uint64) (uint64, bool) {
	rf.mu.RLock()
	defer rf.mu.RUnlock()
	r, ok := rf.regs[name]
	if !ok || idx >= uint64(len(r.data)) {
		return 0, false
	}
	return r.data[idx], true
}

// Write stores the low width bits of v at register[idx].
func (rf *RegisterFile) Write(name string, idx, v uint64) bool {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	r, ok := rf.regs[name]
	if !ok || idx >= uint64(len(r.data)) {
		return false
	}
	if r.width < 64 {
		v &= (1 << uint(r.width)) - 1
	}
	r.data[idx] = v
	return true
}

// Names lists the registers, for debugging and the control channel.
func (rf *RegisterFile) Names() []string {
	rf.mu.RLock()
	defer rf.mu.RUnlock()
	out := make([]string, 0, len(rf.regs))
	for n := range rf.regs {
		out = append(out, n)
	}
	return out
}
