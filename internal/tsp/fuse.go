package tsp

// fuse.go is the second-stage compiler: it lowers a stage past the flat
// program of compile.go into fused native Go closures. Where the VM pays
// one dispatch per instruction, the fused tier pays one indirect call per
// template *node*, built once at bind time: constant subtrees are folded,
// field offsets are burned into the closure, byte-aligned loads/stores
// skip the generic bit helpers, and table applies capture their slot in
// the compiled program's handle arrays (filled by Bind) so per-packet
// applies are a direct call through the same applyTableWith funnel as the
// VM. Fault-counter side effects and evaluation order mirror exec.go and
// interp.go exactly; the differential fuzz (internal/ipbm) guards drift
// across all three tiers.

import (
	"encoding/binary"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/template"
)

// The closure kinds. A fusedVal pushes nothing: it *returns* the value
// the VM would leave on its stack.
type (
	fusedVal   func(*Env) uint64
	fusedCond  func(*Env) bool
	fusedStmt  func(*Env)
	fusedMatch func(*Env, TableBackend, *matchOutcome)
)

// fusedProg is a stage lowered to closures. arms is parallel to
// template.Stage.Arms (sharing indices with the VM's dispatch); nil
// entries are empty bodies. post is the INT epilogue, when built with it.
type fusedProg struct {
	match fusedMatch
	arms  []fusedStmt
	post  fusedStmt
}

type fuser struct {
	sr     *StageRuntime
	prog   *stageProg
	tblIdx map[string]int
}

// fuseStage lowers a compiled stage to closures. It requires sr.prog: the
// fused tier reuses the flat program's table list, key plans and
// bind-time handle arrays (closures capture the prog pointer, so handles
// resolved by Bind after fusing are visible without a rebuild).
func fuseStage(sr *StageRuntime) *fusedProg {
	f := &fuser{sr: sr, prog: sr.prog, tblIdx: make(map[string]int, len(sr.prog.tables))}
	for i, t := range sr.prog.tables {
		f.tblIdx[t.Name] = i
	}
	fp := &fusedProg{match: f.fuseMatchStmts(sr.tmpl.Match)}
	bodies := make(map[string]fusedStmt, len(sr.actions))
	done := make(map[string]bool, len(sr.actions))
	fp.arms = make([]fusedStmt, len(sr.tmpl.Arms))
	for i := range sr.tmpl.Arms {
		name := sr.tmpl.Arms[i].Action
		if !done[name] {
			if act := sr.actions[name]; act != nil {
				bodies[name] = f.fuseInstrs(act.Body)
			}
			done[name] = true
		}
		fp.arms[i] = bodies[name]
	}
	return fp
}

// faultZeroVal is the lowering of nil/unknown value nodes: fault, yield 0.
func faultZeroVal(e *Env) uint64 {
	e.Faults.BadTemplate.Add(1)
	return 0
}

// faultFalseCond is the lowering of nil/unknown boolean nodes.
func faultFalseCond(e *Env) bool {
	e.Faults.BadTemplate.Add(1)
	return false
}

// beLoadFn returns a big-endian loader for nb bytes (1..8); callers
// guarantee len(b) >= nb.
func beLoadFn(nb int) func(b []byte) uint64 {
	switch nb {
	case 1:
		return func(b []byte) uint64 { return uint64(b[0]) }
	case 2:
		return func(b []byte) uint64 { return uint64(binary.BigEndian.Uint16(b)) }
	case 3:
		return func(b []byte) uint64 {
			return uint64(binary.BigEndian.Uint16(b))<<8 | uint64(b[2])
		}
	case 4:
		return func(b []byte) uint64 { return uint64(binary.BigEndian.Uint32(b)) }
	case 5:
		return func(b []byte) uint64 {
			return uint64(binary.BigEndian.Uint32(b))<<8 | uint64(b[4])
		}
	case 6:
		return func(b []byte) uint64 {
			return uint64(binary.BigEndian.Uint32(b))<<16 | uint64(binary.BigEndian.Uint16(b[4:]))
		}
	case 7:
		return func(b []byte) uint64 {
			return uint64(binary.BigEndian.Uint32(b))<<24 |
				uint64(binary.BigEndian.Uint16(b[4:]))<<8 | uint64(b[6])
		}
	case 8:
		return binary.BigEndian.Uint64
	}
	return func(b []byte) uint64 {
		var v uint64
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
		return v
	}
}

// beStoreFn returns a big-endian store of the low nb bytes of v. Storing
// only nb bytes is the same truncation SetBits applies for width nb*8.
func beStoreFn(nb int) func(b []byte, v uint64) {
	switch nb {
	case 1:
		return func(b []byte, v uint64) { b[0] = byte(v) }
	case 2:
		return func(b []byte, v uint64) { binary.BigEndian.PutUint16(b, uint16(v)) }
	case 3:
		return func(b []byte, v uint64) {
			binary.BigEndian.PutUint16(b, uint16(v>>8))
			b[2] = byte(v)
		}
	case 4:
		return func(b []byte, v uint64) { binary.BigEndian.PutUint32(b, uint32(v)) }
	case 5:
		return func(b []byte, v uint64) {
			binary.BigEndian.PutUint32(b, uint32(v>>8))
			b[4] = byte(v)
		}
	case 6:
		return func(b []byte, v uint64) {
			binary.BigEndian.PutUint32(b, uint32(v>>16))
			binary.BigEndian.PutUint16(b[4:], uint16(v))
		}
	case 7:
		return func(b []byte, v uint64) {
			binary.BigEndian.PutUint32(b, uint32(v>>24))
			binary.BigEndian.PutUint16(b[4:], uint16(v>>8))
			b[6] = byte(v)
		}
	case 8:
		return binary.BigEndian.PutUint64
	}
	return func(b []byte, v uint64) {
		for i := nb - 1; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// alignedByteSpan reports whether a clamped (off, w) read/write can use
// the direct byte path: in-range offsets on byte boundaries, whole-byte
// widths within a register.
func alignedByteSpan(off, w int) bool {
	return off >= 0 && w >= 1 && w <= 64 && off%8 == 0 && w%8 == 0
}

// bitSpan is the fuse-time decomposition of a constant (bitOff, width)
// field access into one byte-aligned load: which bytes the field spans,
// the right-shift that lands the field's LSB at bit 0, and the width
// mask. Any constant access of at most 64 bits whose span fits 8 bytes
// lowers this way — alignment no longer matters, which is what makes
// bit-packed metadata layouts cheap on the fused tier. Spans of 9 bytes
// (width > 56 straddling a byte boundary) keep the generic bit helpers.
type bitSpan struct {
	firstByte, nb int
	slack         uint
	mask          uint64
}

func bitSpanOf(off, w int) (bitSpan, bool) {
	if off < 0 || w < 1 || w > 64 {
		return bitSpan{}, false
	}
	first := off / 8
	nb := (off+w-1)/8 - first + 1
	if nb > 8 {
		return bitSpan{}, false
	}
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<uint(w) - 1
	}
	return bitSpan{firstByte: first, nb: nb, slack: uint(nb*8 - off%8 - w), mask: mask}, true
}

// fuseMetaLoad lowers a metadata read (offsets pre-clamped by clamp64).
func fuseMetaLoad(off, w int) fusedVal {
	if sp, ok := bitSpanOf(off, w); ok {
		byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
		load := beLoadFn(nb)
		return func(e *Env) uint64 {
			m := e.Pkt.Meta
			if uint(byteOff)+uint(nb) > uint(len(m)) {
				e.Faults.BadTemplate.Add(1)
				return 0
			}
			return load(m[byteOff:]) >> slack & mask
		}
	}
	return func(e *Env) uint64 {
		v, err := e.Pkt.MetaBits(off, w)
		if err != nil {
			e.Faults.BadTemplate.Add(1)
			return 0
		}
		return v
	}
}

// fuseHdrLoad lowers a header-field read. The location lookup replaces
// the VM's Valid check + FieldBits re-lookup with one Loc call; the
// observable fault sequence is identical. The in-header bit offset is
// constant, so the sub-byte alignment (and hence the shift and mask) is
// known at fuse time even though the header's packet offset is not.
func fuseHdrLoad(id pkt.HeaderID, off, w int) fusedVal {
	if off >= 0 {
		if sp, ok := bitSpanOf(off%8, w); ok {
			relByte := off / 8
			nb, slack, mask := sp.nb, sp.slack, sp.mask
			load := beLoadFn(nb)
			return func(e *Env) uint64 {
				loc, hok := e.Pkt.HV.Loc(id)
				if !hok {
					e.Faults.InvalidHeaderAccess.Add(1)
					return 0
				}
				d := e.Pkt.Data
				o := loc.Off + relByte
				if uint(o)+uint(nb) > uint(len(d)) {
					e.Faults.BadTemplate.Add(1)
					return 0
				}
				return load(d[o:]) >> slack & mask
			}
		}
	}
	return func(e *Env) uint64 {
		if !e.Pkt.HV.Valid(id) {
			e.Faults.InvalidHeaderAccess.Add(1)
			return 0
		}
		v, err := e.Pkt.FieldBits(id, off, w)
		if err != nil {
			e.Faults.BadTemplate.Add(1)
			return 0
		}
		return v
	}
}

// fuseOperand lowers one operand read. konst marks a side-effect-free
// compile-time constant the caller may fold.
func (f *fuser) fuseOperand(o *template.Operand) (fn fusedVal, konst bool, kv uint64) {
	if o == nil {
		return faultZeroVal, false, 0
	}
	switch o.Kind {
	case template.OpdConst:
		v := o.Const
		return func(*Env) uint64 { return v }, true, v
	case template.OpdParam:
		idx := o.ParamIdx
		return func(e *Env) uint64 {
			if idx >= 0 && idx < len(e.Params) {
				return e.Params[idx]
			}
			e.Faults.BadTemplate.Add(1)
			return 0
		}, false, 0
	case template.OpdMeta:
		off, w := clamp64(o.BitOff, o.Width)
		return fuseMetaLoad(int(off), int(w)), false, 0
	case template.OpdHeader:
		off, w := clamp64(o.BitOff, o.Width)
		return fuseHdrLoad(o.Header, int(off), int(w)), false, 0
	}
	return faultZeroVal, false, 0
}

// fuseBin lowers one arithmetic node over already-fused children; known
// reports whether the operator exists (unknown operators keep the
// children's side effects and fault, like the VM's opFaultZero tail).
// Division, modulo and shift semantics match exec.go: x/0 == x%0 == 0,
// shifts of 64 or more yield 0.
func fuseBin(op template.ArithOp, a, b fusedVal) (fusedVal, bool) {
	switch op {
	case template.OpAdd:
		return func(e *Env) uint64 { x := a(e); return x + b(e) }, true
	case template.OpSub:
		return func(e *Env) uint64 { x := a(e); return x - b(e) }, true
	case template.OpMul:
		return func(e *Env) uint64 { x := a(e); return x * b(e) }, true
	case template.OpDiv:
		return func(e *Env) uint64 {
			x, y := a(e), b(e)
			if y == 0 {
				return 0
			}
			return x / y
		}, true
	case template.OpMod:
		return func(e *Env) uint64 {
			x, y := a(e), b(e)
			if y == 0 {
				return 0
			}
			return x % y
		}, true
	case template.OpAnd:
		return func(e *Env) uint64 { x := a(e); return x & b(e) }, true
	case template.OpOr:
		return func(e *Env) uint64 { x := a(e); return x | b(e) }, true
	case template.OpXor:
		return func(e *Env) uint64 { x := a(e); return x ^ b(e) }, true
	case template.OpShl:
		return func(e *Env) uint64 {
			x, y := a(e), b(e)
			if y >= 64 {
				return 0
			}
			return x << y
		}, true
	case template.OpShr:
		return func(e *Env) uint64 {
			x, y := a(e), b(e)
			if y >= 64 {
				return 0
			}
			return x >> y
		}, true
	}
	return nil, false
}

func fuseCmp(op template.CmpOp, a, b fusedVal) (fusedCond, bool) {
	switch op {
	case template.CmpEq:
		return func(e *Env) bool { x := a(e); return x == b(e) }, true
	case template.CmpNe:
		return func(e *Env) bool { x := a(e); return x != b(e) }, true
	case template.CmpLt:
		return func(e *Env) bool { x := a(e); return x < b(e) }, true
	case template.CmpGt:
		return func(e *Env) bool { x := a(e); return x > b(e) }, true
	case template.CmpLe:
		return func(e *Env) bool { x := a(e); return x <= b(e) }, true
	case template.CmpGe:
		return func(e *Env) bool { x := a(e); return x >= b(e) }, true
	}
	return nil, false
}

// fuseExpr lowers a value expression. Constant subtrees (which by
// construction carry no fault side effects) are folded by evaluating the
// fused closure with a nil Env — constant closures never touch it.
func (f *fuser) fuseExpr(x *template.Expr) (fusedVal, bool, uint64) {
	if x == nil {
		return faultZeroVal, false, 0
	}
	switch x.Kind {
	case template.ExprOperand:
		return f.fuseOperand(x.Operand)
	case template.ExprBin:
		a, ak, _ := f.fuseExpr(x.A)
		b, bk, _ := f.fuseExpr(x.B)
		fn, known := fuseBin(x.Op, a, b)
		if !known {
			return func(e *Env) uint64 {
				a(e)
				b(e)
				e.Faults.BadTemplate.Add(1)
				return 0
			}, false, 0
		}
		if ak && bk {
			v := fn(nil)
			return func(*Env) uint64 { return v }, true, v
		}
		return fn, false, 0
	case template.ExprHash:
		args := make([]fusedVal, len(x.Args))
		allConst := true
		for i, ax := range x.Args {
			var k bool
			args[i], k, _ = f.fuseExpr(ax)
			allConst = allConst && k
		}
		fn := func(e *Env) uint64 {
			h := uint64(fnvOffset64)
			for _, a := range args {
				h = fnvMix(h, a(e))
			}
			return finalizeHash(h)
		}
		if allConst {
			v := fn(nil)
			return func(*Env) uint64 { return v }, true, v
		}
		return fn, false, 0
	case template.ExprRegRead:
		idx, _, _ := f.fuseExpr(x.Index)
		reg := x.Reg
		return func(e *Env) uint64 {
			i := idx(e)
			v, ok := e.Regs.Read(reg, i)
			if !ok {
				e.Faults.RegisterFault.Add(1)
			}
			return v
		}, false, 0
	}
	return faultZeroVal, false, 0
}

// fuseCond lowers a boolean. And/Or compile to Go's own && and ||, which
// is exactly the interpreter's short-circuit order; constant left sides
// fold the whole node (skipping the right side's effects is then correct
// by the same short-circuit rule).
func (f *fuser) fuseCond(c *template.Cond) (fusedCond, bool, bool) {
	if c == nil {
		return faultFalseCond, false, false
	}
	switch c.Kind {
	case template.CondBool:
		v := c.Val
		return func(*Env) bool { return v }, true, v
	case template.CondValid:
		id := c.Header
		return func(e *Env) bool { return e.Pkt.HV.Valid(id) }, false, false
	case template.CondNot:
		x, k, kv := f.fuseCond(c.X)
		if k {
			v := !kv
			return func(*Env) bool { return v }, true, v
		}
		return func(e *Env) bool { return !x(e) }, false, false
	case template.CondAnd:
		x, xk, xv := f.fuseCond(c.X)
		y, yk, yv := f.fuseCond(c.Y)
		if xk {
			if !xv {
				return func(*Env) bool { return false }, true, false
			}
			return y, yk, yv
		}
		return func(e *Env) bool { return x(e) && y(e) }, false, false
	case template.CondOr:
		x, xk, xv := f.fuseCond(c.X)
		y, yk, yv := f.fuseCond(c.Y)
		if xk {
			if xv {
				return func(*Env) bool { return true }, true, true
			}
			return y, yk, yv
		}
		return func(e *Env) bool { return x(e) || y(e) }, false, false
	case template.CondCmp:
		a, ak, _ := f.fuseExpr(c.A)
		b, bk, _ := f.fuseExpr(c.B)
		fn, known := fuseCmp(c.Cmp, a, b)
		if !known {
			return func(e *Env) bool {
				a(e)
				b(e)
				e.Faults.BadTemplate.Add(1)
				return false
			}, false, false
		}
		if ak && bk {
			v := fn(nil)
			return func(*Env) bool { return v }, true, v
		}
		return fn, false, false
	}
	return faultFalseCond, false, false
}

// fuseMetaStore lowers a narrow (<=64-bit) metadata store. The source is
// evaluated before the bounds check, matching the VM's evaluate-then-
// store order. Aligned whole-byte stores write directly; any other
// constant span of at most 8 bytes becomes a read-modify-write splice
// with fuse-time masks — the same bytes SetBits produces.
func fuseMetaStore(off, w int, src fusedVal) fusedStmt {
	if alignedByteSpan(off, w) {
		byteOff, nb := off/8, w/8
		store := beStoreFn(nb)
		return func(e *Env) {
			v := src(e)
			m := e.Pkt.Meta
			if uint(byteOff)+uint(nb) > uint(len(m)) {
				e.Faults.BadTemplate.Add(1)
				return
			}
			store(m[byteOff:byteOff+nb], v)
		}
	}
	if sp, ok := bitSpanOf(off, w); ok {
		byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
		load, store := beLoadFn(nb), beStoreFn(nb)
		clr := ^(mask << slack)
		return func(e *Env) {
			v := src(e)
			m := e.Pkt.Meta
			if uint(byteOff)+uint(nb) > uint(len(m)) {
				e.Faults.BadTemplate.Add(1)
				return
			}
			b := m[byteOff : byteOff+nb]
			store(b, load(b)&clr|(v&mask)<<slack)
		}
	}
	return func(e *Env) {
		if err := e.Pkt.SetMetaBits(off, w, src(e)); err != nil {
			e.Faults.BadTemplate.Add(1)
		}
	}
}

func fuseHdrStore(id pkt.HeaderID, off, w int, src fusedVal) fusedStmt {
	if alignedByteSpan(off, w) {
		byteOff, nb := off/8, w/8
		store := beStoreFn(nb)
		return func(e *Env) {
			v := src(e)
			loc, ok := e.Pkt.HV.Loc(id)
			if !ok {
				e.Faults.InvalidHeaderAccess.Add(1)
				return
			}
			d := e.Pkt.Data
			o := loc.Off + byteOff
			if uint(o)+uint(nb) > uint(len(d)) {
				e.Faults.BadTemplate.Add(1)
				return
			}
			store(d[o:o+nb], v)
		}
	}
	if off >= 0 {
		if sp, ok := bitSpanOf(off%8, w); ok {
			relByte := off / 8
			nb, slack, mask := sp.nb, sp.slack, sp.mask
			load, store := beLoadFn(nb), beStoreFn(nb)
			clr := ^(mask << slack)
			return func(e *Env) {
				v := src(e)
				loc, hok := e.Pkt.HV.Loc(id)
				if !hok {
					e.Faults.InvalidHeaderAccess.Add(1)
					return
				}
				d := e.Pkt.Data
				o := loc.Off + relByte
				if uint(o)+uint(nb) > uint(len(d)) {
					e.Faults.BadTemplate.Add(1)
					return
				}
				b := d[o : o+nb]
				store(b, load(b)&clr|(v&mask)<<slack)
			}
		}
	}
	return func(e *Env) {
		v := src(e)
		if !e.Pkt.HV.Valid(id) {
			e.Faults.InvalidHeaderAccess.Add(1)
			return
		}
		if err := e.Pkt.SetFieldBits(id, off, w, v); err != nil {
			e.Faults.BadTemplate.Add(1)
		}
	}
}

// fuseAssign mirrors compiler.assign: wide field-to-field copies escape
// to the interpreter's byte-granular execAssign, wide numeric stores to
// the shared storeMetaWide/storeHdrWide helpers, everything else to a
// direct store closure.
func (f *fuser) fuseAssign(in *template.Instr) fusedStmt {
	if in.Dst.Width > 64 && in.Src != nil && in.Src.Kind == template.ExprOperand &&
		in.Src.Operand != nil && in.Src.Operand.Width == in.Dst.Width {
		tree := in
		return func(e *Env) { e.execAssign(tree) }
	}
	src, _, _ := f.fuseExpr(in.Src)
	switch in.Dst.Kind {
	case template.OpdMeta:
		if in.Dst.Width > 64 {
			off, w := in.Dst.BitOff, in.Dst.Width
			return func(e *Env) { e.storeMetaWide(off, w, src(e)) }
		}
		return fuseMetaStore(in.Dst.BitOff, in.Dst.Width, src)
	case template.OpdHeader:
		if in.Dst.Width > 64 {
			id, off, w := in.Dst.Header, in.Dst.BitOff, in.Dst.Width
			return func(e *Env) { e.storeHdrWide(id, off, w, src(e)) }
		}
		return fuseHdrStore(in.Dst.Header, in.Dst.BitOff, in.Dst.Width, src)
	}
	// Unknown destination kind: evaluate the source (for its side
	// effects), then fault — the VM's pop+opFault sequence.
	return func(e *Env) {
		src(e)
		e.Faults.BadTemplate.Add(1)
	}
}

// fuseInstrs lowers an action body; nil means empty (the caller skips the
// call entirely).
func (f *fuser) fuseInstrs(body []template.Instr) fusedStmt {
	if len(body) == 0 {
		return nil
	}
	parts := make([]fusedStmt, len(body))
	for i := range body {
		parts[i] = f.fuseInstr(&body[i])
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return func(e *Env) {
		for _, p := range parts {
			p(e)
		}
	}
}

func (f *fuser) fuseInstr(in *template.Instr) fusedStmt {
	switch in.Op {
	case template.IAssign:
		return f.fuseAssign(in)
	case template.IRegWrite:
		idx, _, _ := f.fuseExpr(in.Index)
		val, _, _ := f.fuseExpr(in.Value)
		reg := in.Reg
		return func(e *Env) {
			i := idx(e)
			v := val(e)
			if !e.Regs.Write(reg, i, v) {
				e.Faults.RegisterFault.Add(1)
			}
		}
	case template.IDrop:
		return func(e *Env) { e.markDrop() }
	case template.IToCPU:
		return func(e *Env) {
			e.Pkt.ToCPU = true
			_ = e.Pkt.SetMetaBits(template.IstdToCPUOff, 1, 1)
		}
	case template.ISRHAdvance:
		return func(e *Env) { e.srhAdvance() }
	case template.ISRHPop:
		return func(e *Env) { e.srhPop() }
	case template.IIf:
		c, k, kv := f.fuseCond(in.Cond)
		thenS := f.fuseInstrs(in.Then)
		elseS := f.fuseInstrs(in.Else)
		if k {
			// Constant condition (CondBool has no side effects): the dead
			// branch folds away entirely.
			br := elseS
			if kv {
				br = thenS
			}
			if br == nil {
				return func(*Env) {}
			}
			return br
		}
		return func(e *Env) {
			if c(e) {
				if thenS != nil {
					thenS(e)
				}
			} else if elseS != nil {
				elseS(e)
			}
		}
	}
	return func(e *Env) { e.Faults.BadTemplate.Add(1) }
}

// fusedKey builds a plain table's lookup key into the Env's key buffer.
// The returned slice aliases the buffer, like buildKeyPlanned; false
// means a source field was unreadable and the apply records a no-lookup
// outcome (applied, no hit) — the same abort the generic builder takes.
type fusedKey func(*Env) ([]byte, bool)

// keyStepFn is one fused key field: read the source, splice into key.
type keyStepFn func(e *Env, key []byte) bool

// fuseKeySplice lowers the destination half of a key step: a constant
// (dstOff, width) splice into the zeroed key buffer. The plan guarantees
// the destination range fits the key, so no bounds check is needed; the
// rare 9-byte span stages through SetBits (which cannot fail for the
// same reason). exclusive marks a field whose bytes no other step of the
// plan touches: since the key buffer starts zeroed, such a field can
// store its bytes outright instead of read-modify-writing them — and a
// whole-byte exclusive field is a bare store. Single-field keys (the
// common table shape) always qualify.
func fuseKeySplice(off, w int, exclusive bool) func(key []byte, v uint64) {
	sp, ok := bitSpanOf(off, w)
	if !ok {
		return func(key []byte, v uint64) { _ = pkt.SetBits(key, off, w, v) }
	}
	byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
	store := beStoreFn(nb)
	if exclusive {
		if slack == 0 && w == nb*8 {
			return func(key []byte, v uint64) {
				store(key[byteOff:byteOff+nb], v)
			}
		}
		return func(key []byte, v uint64) {
			store(key[byteOff:byteOff+nb], (v&mask)<<slack)
		}
	}
	load := beLoadFn(nb)
	clr := ^(mask << slack)
	return func(key []byte, v uint64) {
		b := key[byteOff : byteOff+nb]
		store(b, load(b)&clr|(v&mask)<<slack)
	}
}

// keyStepExclusive reports whether step i's destination bytes are
// untouched by every other step of the plan.
func keyStepExclusive(kp *keyPlan, i int) bool {
	lo, hi := kp.steps[i].dstOff/8, (kp.steps[i].dstOff+kp.steps[i].width-1)/8
	for j := range kp.steps {
		if j == i {
			continue
		}
		jlo, jhi := kp.steps[j].dstOff/8, (kp.steps[j].dstOff+kp.steps[j].width-1)/8
		if lo <= jhi && jlo <= hi {
			return false
		}
	}
	return true
}

// fuseKeyPlan lowers a compiled plain-table key plan to a closure chain:
// per-field source offsets, spans and key positions are burned in, so the
// per-packet build is constant loads and splices. Key bytes and the
// fault/abort sequence mirror buildKeyPlanned exactly (the differential
// fuzz holds them together). Selector plans keep the generic hash path.
func fuseKeyPlan(kp *keyPlan) fusedKey {
	if kp == nil || kp.sel {
		return nil
	}
	steps := make([]keyStepFn, len(kp.steps))
	for i := range kp.steps {
		steps[i] = fuseKeyStep(&kp.steps[i], keyStepExclusive(kp, i))
	}
	nBytes := kp.nBytes
	if len(steps) == 1 {
		st := steps[0]
		return func(e *Env) ([]byte, bool) {
			key := e.keySlot(nBytes)
			if !st(e, key) {
				return nil, false
			}
			return key, true
		}
	}
	return func(e *Env) ([]byte, bool) {
		key := e.keySlot(nBytes)
		for _, st := range steps {
			if !st(e, key) {
				return nil, false
			}
		}
		return key, true
	}
}

func fuseKeyStep(s *keyStep, exclusive bool) keyStepFn {
	switch s.kind {
	case keyMeta:
		return fuseKeyMeta(s, exclusive)
	case keyHdr:
		return fuseKeyHdr(s, exclusive)
	}
	return fuseKeyValue(s, exclusive)
}

func fuseKeyMeta(s *keyStep, exclusive bool) keyStepFn {
	if s.width > 64 {
		if s.aligned {
			so, nb, dst := s.bitOff/8, s.width/8, s.dstOff/8
			return func(e *Env, key []byte) bool {
				m := e.Pkt.Meta
				if so+nb > len(m) {
					e.Faults.BadTemplate.Add(1)
					return false
				}
				copy(key[dst:], m[so:so+nb])
				return true
			}
		}
		sref := s
		return func(e *Env, key []byte) bool {
			return e.keyCopyBits(key, sref, e.Pkt.Meta, sref.bitOff)
		}
	}
	sp, ok := bitSpanOf(s.bitOff, s.width)
	if !ok {
		sref := s
		return func(e *Env, key []byte) bool {
			return e.keyCopyBits(key, sref, e.Pkt.Meta, sref.bitOff)
		}
	}
	byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
	load := beLoadFn(nb)
	splice := fuseKeySplice(s.dstOff, s.width, exclusive)
	return func(e *Env, key []byte) bool {
		m := e.Pkt.Meta
		if uint(byteOff)+uint(nb) > uint(len(m)) {
			e.Faults.BadTemplate.Add(1)
			return false
		}
		splice(key, load(m[byteOff:])>>slack&mask)
		return true
	}
}

func fuseKeyHdr(s *keyStep, exclusive bool) keyStepFn {
	id := s.hdr
	if s.width <= 64 && s.bitOff >= 0 {
		if sp, ok := bitSpanOf(s.bitOff%8, s.width); ok {
			relByte := s.bitOff / 8
			nb, slack, mask := sp.nb, sp.slack, sp.mask
			load := beLoadFn(nb)
			splice := fuseKeySplice(s.dstOff, s.width, exclusive)
			return func(e *Env, key []byte) bool {
				loc, hok := e.Pkt.HV.Loc(id)
				if !hok {
					e.Faults.InvalidHeaderAccess.Add(1)
					return false
				}
				d := e.Pkt.Data
				o := loc.Off + relByte
				if uint(o)+uint(nb) > uint(len(d)) {
					e.Faults.BadTemplate.Add(1)
					return false
				}
				splice(key, load(d[o:])>>slack&mask)
				return true
			}
		}
	}
	sref := s
	return func(e *Env, key []byte) bool {
		loc, hok := e.Pkt.HV.Loc(id)
		if !hok {
			e.Faults.InvalidHeaderAccess.Add(1)
			return false
		}
		src := loc.Off*8 + sref.bitOff
		if sref.aligned {
			so, nb := src/8, sref.width/8
			if so+nb > len(e.Pkt.Data) {
				e.Faults.BadTemplate.Add(1)
				return false
			}
			copy(key[sref.dstOff/8:], e.Pkt.Data[so:so+nb])
			return true
		}
		return e.keyCopyBits(key, sref, e.Pkt.Data, src)
	}
}

func fuseKeyValue(s *keyStep, exclusive bool) keyStepFn {
	op := s.op
	off, w := s.dstOff, s.width
	if w > 64 {
		// Value kinds carry at most 64 significant bits; the high bits of
		// the field stay zero (the key is zeroed) — buildKeyPlanned's clamp.
		off += w - 64
		w = 64
	}
	splice := fuseKeySplice(off, w, exclusive)
	return func(e *Env, key []byte) bool {
		splice(key, e.ReadOperand(op))
		return true
	}
}

// fusedGroup builds a selector's group-id bytes into the Env's group
// buffer. It mirrors operandBytes on Keys[0]: same byte layout (the
// field's value big-endian in (width+7)/8 bytes), same fault kinds, same
// abort-the-apply on an unreadable source.
type fusedGroup func(*Env) ([]byte, bool)

// groupSlot returns the Env's n-byte group scratch slice, managed the way
// operandBytes manages it (handed out full, retained empty). Not zeroed:
// callers overwrite every byte.
func (e *Env) groupSlot(n int) []byte {
	if cap(e.groupBuf) < n {
		e.groupBuf = make([]byte, n)
	}
	g := e.groupBuf[:n]
	e.groupBuf = g[:0]
	return g
}

// fuseGroupOperand lowers the group-id operand of a selector apply. nil
// means the operand is not fusible (wide or irregular) and the apply keeps
// the generic funnel.
func (f *fuser) fuseGroupOperand(o *template.Operand) fusedGroup {
	if o == nil || o.Width < 1 || o.Width > 64 {
		return nil
	}
	n := (o.Width + 7) / 8
	store := beStoreFn(n)
	switch o.Kind {
	case template.OpdMeta:
		sp, ok := bitSpanOf(o.BitOff, o.Width)
		if !ok {
			return nil
		}
		byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
		load := beLoadFn(nb)
		return func(e *Env) ([]byte, bool) {
			m := e.Pkt.Meta
			if uint(byteOff)+uint(nb) > uint(len(m)) {
				e.Faults.BadTemplate.Add(1)
				return nil, false
			}
			g := e.groupSlot(n)
			store(g, load(m[byteOff:])>>slack&mask)
			return g, true
		}
	case template.OpdHeader:
		if o.BitOff < 0 {
			return nil
		}
		sp, ok := bitSpanOf(o.BitOff%8, o.Width)
		if !ok {
			return nil
		}
		id, relByte := o.Header, o.BitOff/8
		nb, slack, mask := sp.nb, sp.slack, sp.mask
		load := beLoadFn(nb)
		return func(e *Env) ([]byte, bool) {
			loc, hok := e.Pkt.HV.Loc(id)
			if !hok {
				e.Faults.InvalidHeaderAccess.Add(1)
				return nil, false
			}
			d := e.Pkt.Data
			o := loc.Off + relByte
			if uint(o)+uint(nb) > uint(len(d)) {
				e.Faults.BadTemplate.Add(1)
				return nil, false
			}
			g := e.groupSlot(n)
			store(g, load(d[o:])>>slack&mask)
			return g, true
		}
	default:
		// Constants and params: operandBytes stores the low n bytes of
		// ReadOperand's value, unmasked — beStoreFn truncates identically.
		op := o
		return func(e *Env) ([]byte, bool) {
			g := e.groupSlot(n)
			store(g, e.ReadOperand(op))
			return g, true
		}
	}
}

// fusedHashStep reads one selector hash field. ok == false stops the hash
// fold but not the lookup — hashPlanned's stop-hashing-keep-looking-up
// rule. bits is the mix span, ((width+7)/8)*8, burned in at fuse time.
type fusedHashStep struct {
	bits int
	read func(*Env) (uint64, bool)
}

// fuseHashSteps lowers a selector key plan's hashed fields (Keys[1:]) to
// constant-offset readers. Fault kinds per step mirror hashPlanned.
func fuseHashSteps(kp *keyPlan) []fusedHashStep {
	steps := make([]fusedHashStep, len(kp.steps))
	for i := range kp.steps {
		s := &kp.steps[i]
		hs := fusedHashStep{bits: ((s.width + 7) / 8) * 8}
		switch s.kind {
		case keyMeta:
			off, w := s.bitOff, s.width
			if sp, ok := bitSpanOf(off, w); ok {
				byteOff, nb, slack, mask := sp.firstByte, sp.nb, sp.slack, sp.mask
				load := beLoadFn(nb)
				hs.read = func(e *Env) (uint64, bool) {
					m := e.Pkt.Meta
					if uint(byteOff)+uint(nb) > uint(len(m)) {
						e.Faults.BadTemplate.Add(1)
						return 0, false
					}
					return load(m[byteOff:]) >> slack & mask, true
				}
			} else {
				hs.read = func(e *Env) (uint64, bool) {
					v, err := pkt.GetBits(e.Pkt.Meta, off, w)
					if err != nil {
						e.Faults.BadTemplate.Add(1)
						return 0, false
					}
					return v, true
				}
			}
		case keyHdr:
			id, off, w := s.hdr, s.bitOff, s.width
			if off >= 0 {
				if sp, ok := bitSpanOf(off%8, w); ok {
					relByte := off / 8
					nb, slack, mask := sp.nb, sp.slack, sp.mask
					load := beLoadFn(nb)
					hs.read = func(e *Env) (uint64, bool) {
						loc, hok := e.Pkt.HV.Loc(id)
						if !hok {
							e.Faults.InvalidHeaderAccess.Add(1)
							return 0, false
						}
						d := e.Pkt.Data
						o := loc.Off + relByte
						if uint(o)+uint(nb) > uint(len(d)) {
							e.Faults.BadTemplate.Add(1)
							return 0, false
						}
						return load(d[o:]) >> slack & mask, true
					}
				}
			}
			if hs.read == nil {
				hs.read = func(e *Env) (uint64, bool) {
					loc, hok := e.Pkt.HV.Loc(id)
					if !hok {
						e.Faults.InvalidHeaderAccess.Add(1)
						return 0, false
					}
					v, err := pkt.GetBits(e.Pkt.Data, loc.Off*8+off, w)
					if err != nil {
						e.Faults.BadTemplate.Add(1)
						return 0, false
					}
					return v, true
				}
			}
		default: // keyValue — ReadOperand faults inside, never aborts.
			op := s.op
			hs.read = func(e *Env) (uint64, bool) { return e.ReadOperand(op), true }
		}
		steps[i] = hs
	}
	return steps
}

// fuseMatchStmts lowers the matcher. Applies funnel through the same
// applyTableWith as the VM and interpreter, reading the handle slots of
// the captured compiled program — Bind fills those after fusing, so
// closures see bind-time handles with no rebuild.
func (f *fuser) fuseMatchStmts(stmts []template.MatchStmt) fusedMatch {
	if len(stmts) == 0 {
		return nil
	}
	parts := make([]fusedMatch, 0, len(stmts))
	for i := range stmts {
		st := &stmts[i]
		switch st.Kind {
		case template.MatchIf:
			c, k, kv := f.fuseCond(st.Cond)
			thenM := f.fuseMatchStmts(st.Then)
			elseM := f.fuseMatchStmts(st.Else)
			if k {
				br := elseM
				if kv {
					br = thenM
				}
				if br != nil {
					parts = append(parts, br)
				}
				continue
			}
			cc, tm, em := c, thenM, elseM
			parts = append(parts, func(e *Env, b TableBackend, out *matchOutcome) {
				if cc(e) {
					if tm != nil {
						tm(e, b, out)
					}
				} else if em != nil {
					em(e, b, out)
				}
			})
		case template.MatchApply:
			idx := -1
			if t := f.sr.tables[st.Table]; t != nil {
				idx = f.tblIdx[st.Table]
			}
			if idx < 0 {
				// Unknown table: one BadTemplate per attempt, whether or
				// not a table already applied — the VM's double check
				// collapses to a single fault either way.
				parts = append(parts, func(e *Env, _ TableBackend, _ *matchOutcome) {
					e.Faults.BadTemplate.Add(1)
				})
				continue
			}
			prog, ti := f.prog, idx
			t := prog.tables[ti]
			if kp := prog.keyPlans[ti]; t.IsSelector && kp != nil && kp.sel && len(t.Keys) > 0 {
				if fg := f.fuseGroupOperand(&t.Keys[0].Operand); fg != nil {
					// Selector with a fusible group operand: group build and
					// hash fold run over fuse-time constant offsets; the member
					// lookup goes through the bind-time selector handle exactly
					// as the generic funnel would. Group bytes, hash sequence,
					// fault ordering and outcome recording are byte-identical
					// to applyTableWith's selector arm.
					hsteps := fuseHashSteps(kp)
					tname := t.Name
					parts = append(parts, func(e *Env, backend TableBackend, out *matchOutcome) {
						if out.applied {
							e.Faults.BadTemplate.Add(1)
							return
						}
						out.applied = true
						out.table = tname
						group, gok := fg(e)
						if !gok {
							return
						}
						h := uint64(fnvOffset64)
						for i := range hsteps {
							v, vok := hsteps[i].read(e)
							if !vok {
								break
							}
							for sh := hsteps[i].bits; sh > 0; sh -= 8 {
								h ^= uint64(byte(v >> uint(sh-8)))
								h *= fnvPrime64
							}
						}
						var res match.Result
						var ok bool
						var rs ResolvedSelector
						if prog.resolvedSels != nil {
							rs = prog.resolvedSels[ti]
						}
						if rs != nil {
							res, ok = rs.LookupMember(group, finalizeHash(h))
						} else {
							res, ok = backend.LookupSelector(tname, group, finalizeHash(h))
						}
						if ok {
							out.hit = true
							out.tag = uint64(res.ActionID)
							out.params = res.Params
						}
					})
					continue
				}
			}
			if fk := fuseKeyPlan(prog.keyPlans[ti]); fk != nil && !t.IsSelector {
				// Plain table with a fused key builder: when Bind resolved a
				// direct handle that splits lookup from accounting, run the
				// engine probe inline — fused key splices, no name funnel, and
				// hit/miss counts batched on the Env instead of two shared
				// atomics per packet. Outcome recording is byte-identical to
				// applyTableWith; anything less than a full direct handle
				// falls through to the generic funnel.
				tname, kp := t.Name, prog.keyPlans[ti]
				parts = append(parts, func(e *Env, backend TableBackend, out *matchOutcome) {
					if out.applied {
						// One table application per stage per packet; extra
						// applies are template bugs.
						e.Faults.BadTemplate.Add(1)
						return
					}
					var dt DirectTable
					if prog.direct != nil {
						dt = prog.direct[ti]
					}
					if dt == nil {
						var rt ResolvedTable
						if prog.resolved != nil {
							rt = prog.resolved[ti]
						}
						e.applyTableWith(t, rt, nil, kp, backend, out)
						return
					}
					out.applied = true
					out.table = tname
					key, kok := fk(e)
					if !kok {
						return
					}
					if e.statTbl != dt {
						e.flushTableStats()
						e.statTbl = dt
					}
					if res, ok := dt.LookupNoCount(key); ok {
						e.statHits++
						out.hit = true
						out.tag = uint64(res.ActionID)
						out.params = res.Params
					} else {
						e.statMisses++
					}
				})
				continue
			}
			parts = append(parts, func(e *Env, backend TableBackend, out *matchOutcome) {
				if out.applied {
					// One table application per stage per packet; extra
					// applies are template bugs.
					e.Faults.BadTemplate.Add(1)
					return
				}
				var rt ResolvedTable
				if prog.resolved != nil {
					rt = prog.resolved[ti]
				}
				var rs ResolvedSelector
				if prog.resolvedSels != nil {
					rs = prog.resolvedSels[ti]
				}
				e.applyTableWith(prog.tables[ti], rt, rs, prog.keyPlans[ti], backend, out)
			})
		}
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	return func(e *Env, b TableBackend, out *matchOutcome) {
		for _, p := range parts {
			p(e, b, out)
		}
	}
}
