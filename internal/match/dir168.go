package match

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// dir168 is a DIR-24-8-style longest-prefix-match engine scaled to
// 16+8+8: a 2^16 first-level table resolves prefixes up to /16 in one
// probe, with on-demand 256-slot second- and third-level blocks for
// /17–/24 and /25–/32. Lookups are one to three array probes — the
// standard software fast path for IPv4 FIBs — while a shadow binary trie
// remains the source of truth for updates, handles and snapshots.
// match.New selects it automatically for 32-bit LPM tables;
// TestDIR168MatchesTrie differentially validates it against the trie.
//
// Lookups are lock-free. Every directory slot is an atomically published
// pointer to an immutable dirSlot (nil = empty), and the block maps are
// an immutable pair swapped by pointer when a block appears or retires —
// the software analogue of per-entry shadow writes into lookup SRAM.
// Writers serialise on mu; a multi-slot update (a short prefix covering a
// slot range) publishes slot by slot, so a concurrent reader sees each
// address flip from old route to new route individually, never a torn
// slot. All covered slots of one insert share a single dirSlot value.
type dir168 struct {
	mu   sync.Mutex // serialises writers; readers never take it
	trie *lpmTrie

	l1   []atomic.Pointer[dirSlot] // indexed by the top 16 bits
	maps atomic.Pointer[dirMaps]
}

// dirMaps is the immutable published pair of block maps. Cloned (cheaply:
// it holds block pointers, not blocks) only when the block set changes.
type dirMaps struct {
	l2 map[uint32]*dirBlock // key: top 16 bits
	l3 map[uint32]*dirBlock // key: top 24 bits
}

// dirSlot is immutable once published.
type dirSlot struct {
	plen   int8
	action int
	params []uint64
	handle int
}

type dirBlock struct {
	used  int // writer-side population count, guarded by dir168.mu
	slots [256]atomic.Pointer[dirSlot]
}

func newDIR168(capacity int) *dir168 {
	d := &dir168{
		trie: newLPMTrie(32, capacity),
		l1:   make([]atomic.Pointer[dirSlot], 1<<16),
	}
	d.maps.Store(&dirMaps{l2: map[uint32]*dirBlock{}, l3: map[uint32]*dirBlock{}})
	return d
}

func (d *dir168) Kind() Kind    { return LPM }
func (d *dir168) KeyWidth() int { return 32 }

func (d *dir168) Lookup(key []byte) (Result, bool) {
	if len(key) < 4 {
		return Result{}, false
	}
	k := binary.BigEndian.Uint32(key)
	m := d.maps.Load()
	if b, ok := m.l3[k>>8]; ok {
		if s := b.slots[k&0xff].Load(); s != nil {
			return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
		}
	}
	if b, ok := m.l2[k>>16]; ok {
		if s := b.slots[(k>>8)&0xff].Load(); s != nil {
			return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
		}
	}
	if s := d.l1[k>>16].Load(); s != nil {
		return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
	}
	return Result{}, false
}

// level buckets a prefix length: 1 for /0–/16, 2 for /17–/24, 3 else.
func dirLevel(plen int) int {
	switch {
	case plen <= 16:
		return 1
	case plen <= 24:
		return 2
	default:
		return 3
	}
}

// block returns the block for key, growing the published map pair by one
// cloned map when the block does not exist yet. A new block is visible to
// readers immediately but empty until slots are stored into it.
func (d *dir168) block(level int, key uint32) *dirBlock {
	cur := d.maps.Load()
	m := cur.l2
	if level == 3 {
		m = cur.l3
	}
	if b, ok := m[key]; ok {
		return b
	}
	b := &dirBlock{}
	nm := make(map[uint32]*dirBlock, len(m)+1)
	for k, v := range m {
		nm[k] = v
	}
	nm[key] = b
	next := &dirMaps{l2: cur.l2, l3: cur.l3}
	if level == 3 {
		next.l3 = nm
	} else {
		next.l2 = nm
	}
	d.maps.Store(next)
	return b
}

// dropBlock unpublishes an empty block. Readers still holding the
// previous map pair keep probing it, but every slot is already nil.
func (d *dir168) dropBlock(level int, key uint32) {
	cur := d.maps.Load()
	m := cur.l2
	if level == 3 {
		m = cur.l3
	}
	nm := make(map[uint32]*dirBlock, len(m))
	for k, v := range m {
		if k != key {
			nm[k] = v
		}
	}
	next := &dirMaps{l2: cur.l2, l3: cur.l3}
	if level == 3 {
		next.l3 = nm
	} else {
		next.l2 = nm
	}
	d.maps.Store(next)
}

func (d *dir168) Insert(e Entry) (int, error) {
	if err := checkKeyLen(e.Key, 32); err != nil {
		return 0, err
	}
	if e.PrefixLen < 0 || e.PrefixLen > 32 {
		return 0, fmt.Errorf("match: prefix length %d out of range [0,32]", e.PrefixLen)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	handle, err := d.trie.Insert(e)
	if err != nil {
		return 0, err
	}
	k := binary.BigEndian.Uint32(e.Key)
	slot := &dirSlot{
		plen:   int8(e.PrefixLen),
		action: e.ActionID, params: append([]uint64(nil), e.Params...),
		handle: handle,
	}
	// An insert can only improve covered slots at its own level: replace
	// when the new prefix is at least as long as the incumbent.
	switch dirLevel(e.PrefixLen) {
	case 1:
		lo := k >> 16
		n := uint32(1) << uint(16-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := d.l1[lo+i].Load(); s == nil || s.plen <= slot.plen {
				d.l1[lo+i].Store(slot)
			}
		}
	case 2:
		b := d.block(2, k>>16)
		lo := (k >> 8) & 0xff
		n := uint32(1) << uint(24-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := b.slots[lo+i].Load(); s == nil || s.plen <= slot.plen {
				if s == nil {
					b.used++
				}
				b.slots[lo+i].Store(slot)
			}
		}
	case 3:
		b := d.block(3, k>>8)
		lo := k & 0xff
		n := uint32(1) << uint(32-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := b.slots[lo+i].Load(); s == nil || s.plen <= slot.plen {
				if s == nil {
					b.used++
				}
				b.slots[lo+i].Store(slot)
			}
		}
	}
	return handle, nil
}

func (d *dir168) Delete(handle int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.trie.EntryByHandle(handle)
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	if err := d.trie.Delete(handle); err != nil {
		return err
	}
	// Recompute every slot the removed prefix covered from the trie,
	// restricted to the slot's level band. Slots resolving to the same
	// surviving prefix share one recomputed dirSlot (memo by handle).
	memo := make(map[int]*dirSlot)
	k := binary.BigEndian.Uint32(ent.Key)
	switch dirLevel(ent.PrefixLen) {
	case 1:
		lo := k >> 16
		n := uint32(1) << uint(16-ent.PrefixLen)
		for i := uint32(0); i < n; i++ {
			d.l1[lo+i].Store(d.recompute((lo+i)<<16, 0, 16, memo))
		}
	case 2:
		if b, bok := d.maps.Load().l2[k>>16]; bok {
			lo := (k >> 8) & 0xff
			n := uint32(1) << uint(24-ent.PrefixLen)
			for i := uint32(0); i < n; i++ {
				was := b.slots[lo+i].Load()
				now := d.recompute((k>>16)<<16|(lo+i)<<8, 17, 24, memo)
				b.slots[lo+i].Store(now)
				if was != nil && now == nil {
					b.used--
				}
			}
			if b.used == 0 {
				d.dropBlock(2, k>>16)
			}
		}
	case 3:
		if b, bok := d.maps.Load().l3[k>>8]; bok {
			lo := k & 0xff
			n := uint32(1) << uint(32-ent.PrefixLen)
			for i := uint32(0); i < n; i++ {
				was := b.slots[lo+i].Load()
				now := d.recompute((k>>8)<<8|(lo+i), 25, 32, memo)
				b.slots[lo+i].Store(now)
				if was != nil && now == nil {
					b.used--
				}
			}
			if b.used == 0 {
				d.dropBlock(3, k>>8)
			}
		}
	}
	return nil
}

// recompute asks the trie for the best prefix matching addr whose length
// lies in [loPlen, hiPlen]; nil means no surviving prefix covers addr.
func (d *dir168) recompute(addr uint32, loPlen, hiPlen int, memo map[int]*dirSlot) *dirSlot {
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], addr)
	e, ok := d.trie.lookupRange(key[:], loPlen, hiPlen)
	if !ok {
		return nil
	}
	if s, hit := memo[e.Handle]; hit {
		return s
	}
	s := &dirSlot{
		plen:   int8(e.PrefixLen),
		action: e.ActionID, params: e.Params, handle: e.Handle,
	}
	memo[e.Handle] = s
	return s
}

func (d *dir168) Len() int {
	return d.trie.Len()
}

func (d *dir168) Entries() []Entry {
	return d.trie.Entries()
}
