package match

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// dir168 is a DIR-24-8-style longest-prefix-match engine scaled to
// 16+8+8: a 2^16 first-level table resolves prefixes up to /16 in one
// probe, with on-demand 256-slot second- and third-level blocks for
// /17–/24 and /25–/32. Lookups are one to three array probes — the
// standard software fast path for IPv4 FIBs — while a shadow binary trie
// remains the source of truth for updates, handles and snapshots.
// match.New selects it automatically for 32-bit LPM tables;
// TestDIR168MatchesTrie differentially validates it against the trie.
type dir168 struct {
	mu   sync.RWMutex
	trie *lpmTrie

	l1 []dirSlot            // indexed by the top 16 bits
	l2 map[uint32]*dirBlock // key: top 16 bits
	l3 map[uint32]*dirBlock // key: top 24 bits
}

type dirSlot struct {
	ok     bool
	plen   int8
	action int
	params []uint64
	handle int
}

type dirBlock struct {
	used  int
	slots [256]dirSlot
}

func newDIR168(capacity int) *dir168 {
	return &dir168{
		trie: newLPMTrie(32, capacity),
		l1:   make([]dirSlot, 1<<16),
		l2:   make(map[uint32]*dirBlock),
		l3:   make(map[uint32]*dirBlock),
	}
}

func (d *dir168) Kind() Kind    { return LPM }
func (d *dir168) KeyWidth() int { return 32 }

func (d *dir168) Lookup(key []byte) (Result, bool) {
	if len(key) < 4 {
		return Result{}, false
	}
	k := binary.BigEndian.Uint32(key)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if b, ok := d.l3[k>>8]; ok {
		if s := &b.slots[k&0xff]; s.ok {
			return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
		}
	}
	if b, ok := d.l2[k>>16]; ok {
		if s := &b.slots[(k>>8)&0xff]; s.ok {
			return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
		}
	}
	if s := &d.l1[k>>16]; s.ok {
		return Result{ActionID: s.action, Params: s.params, EntryHandle: s.handle}, true
	}
	return Result{}, false
}

// level buckets a prefix length: 1 for /0–/16, 2 for /17–/24, 3 else.
func dirLevel(plen int) int {
	switch {
	case plen <= 16:
		return 1
	case plen <= 24:
		return 2
	default:
		return 3
	}
}

func (d *dir168) Insert(e Entry) (int, error) {
	if err := checkKeyLen(e.Key, 32); err != nil {
		return 0, err
	}
	if e.PrefixLen < 0 || e.PrefixLen > 32 {
		return 0, fmt.Errorf("match: prefix length %d out of range [0,32]", e.PrefixLen)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	handle, err := d.trie.Insert(e)
	if err != nil {
		return 0, err
	}
	k := binary.BigEndian.Uint32(e.Key)
	slot := dirSlot{
		ok: true, plen: int8(e.PrefixLen),
		action: e.ActionID, params: append([]uint64(nil), e.Params...),
		handle: handle,
	}
	// An insert can only improve covered slots at its own level: replace
	// when the new prefix is at least as long as the incumbent.
	switch dirLevel(e.PrefixLen) {
	case 1:
		lo := k >> 16
		n := uint32(1) << uint(16-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := &d.l1[lo+i]; !s.ok || s.plen <= slot.plen {
				*s = slot
			}
		}
	case 2:
		b := d.l2[k>>16]
		if b == nil {
			b = &dirBlock{}
			d.l2[k>>16] = b
		}
		lo := (k >> 8) & 0xff
		n := uint32(1) << uint(24-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := &b.slots[lo+i]; !s.ok || s.plen <= slot.plen {
				if !s.ok {
					b.used++
				}
				*s = slot
			}
		}
	case 3:
		b := d.l3[k>>8]
		if b == nil {
			b = &dirBlock{}
			d.l3[k>>8] = b
		}
		lo := k & 0xff
		n := uint32(1) << uint(32-e.PrefixLen)
		for i := uint32(0); i < n; i++ {
			if s := &b.slots[lo+i]; !s.ok || s.plen <= slot.plen {
				if !s.ok {
					b.used++
				}
				*s = slot
			}
		}
	}
	return handle, nil
}

func (d *dir168) Delete(handle int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.trie.EntryByHandle(handle)
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	if err := d.trie.Delete(handle); err != nil {
		return err
	}
	// Recompute every slot the removed prefix covered from the trie,
	// restricted to the slot's level band.
	k := binary.BigEndian.Uint32(ent.Key)
	switch dirLevel(ent.PrefixLen) {
	case 1:
		lo := k >> 16
		n := uint32(1) << uint(16-ent.PrefixLen)
		for i := uint32(0); i < n; i++ {
			d.l1[lo+i] = d.recompute((lo+i)<<16, 0, 16)
		}
	case 2:
		if b := d.l2[k>>16]; b != nil {
			lo := (k >> 8) & 0xff
			n := uint32(1) << uint(24-ent.PrefixLen)
			for i := uint32(0); i < n; i++ {
				s := &b.slots[lo+i]
				was := s.ok
				*s = d.recompute((k>>16)<<16|(lo+i)<<8, 17, 24)
				if was && !s.ok {
					b.used--
				}
			}
			if b.used == 0 {
				delete(d.l2, k>>16)
			}
		}
	case 3:
		if b := d.l3[k>>8]; b != nil {
			lo := k & 0xff
			n := uint32(1) << uint(32-ent.PrefixLen)
			for i := uint32(0); i < n; i++ {
				s := &b.slots[lo+i]
				was := s.ok
				*s = d.recompute((k>>8)<<8|(lo+i), 25, 32)
				if was && !s.ok {
					b.used--
				}
			}
			if b.used == 0 {
				delete(d.l3, k>>8)
			}
		}
	}
	return nil
}

// recompute asks the trie for the best prefix matching addr whose length
// lies in [loPlen, hiPlen].
func (d *dir168) recompute(addr uint32, loPlen, hiPlen int) dirSlot {
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], addr)
	e, ok := d.trie.lookupRange(key[:], loPlen, hiPlen)
	if !ok {
		return dirSlot{}
	}
	return dirSlot{
		ok: true, plen: int8(e.PrefixLen),
		action: e.ActionID, params: e.Params, handle: e.Handle,
	}
}

func (d *dir168) Len() int {
	return d.trie.Len()
}

func (d *dir168) Entries() []Entry {
	return d.trie.Entries()
}
