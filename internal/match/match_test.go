package match

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func key32(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Exact, LPM, Ternary, Range, Hash} {
		s := k.String()
		got, err := ParseKind(s)
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind has empty String")
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(Exact, 0, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(Kind(42), 32, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestExactBasic(t *testing.T) {
	e, err := New(Exact, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind() != Exact || e.KeyWidth() != 32 {
		t.Errorf("kind/width = %v/%d", e.Kind(), e.KeyWidth())
	}
	h1, err := e.Insert(Entry{Key: key32(1), ActionID: 10, Params: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(Entry{Key: key32(2), ActionID: 20}); err != nil {
		t.Fatal(err)
	}
	r, ok := e.Lookup(key32(1))
	if !ok || r.ActionID != 10 || r.Params[0] != 100 || r.EntryHandle != h1 {
		t.Errorf("lookup = %+v, %v", r, ok)
	}
	if _, ok := e.Lookup(key32(3)); ok {
		t.Error("miss reported as hit")
	}
	// Replace keeps the handle.
	h1b, err := e.Insert(Entry{Key: key32(1), ActionID: 11})
	if err != nil || h1b != h1 {
		t.Errorf("replace: handle %d, err %v", h1b, err)
	}
	r, _ = e.Lookup(key32(1))
	if r.ActionID != 11 {
		t.Errorf("replace not visible: %+v", r)
	}
	// Capacity.
	if _, err := e.Insert(Entry{Key: key32(9), ActionID: 1}); !errors.Is(err, ErrFull) {
		t.Errorf("full table insert: %v", err)
	}
	// Delete.
	if err := e.Delete(h1); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Lookup(key32(1)); ok {
		t.Error("deleted entry still matches")
	}
	if err := e.Delete(h1); !errors.Is(err, ErrNoEntry) {
		t.Errorf("double delete: %v", err)
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d", e.Len())
	}
	// Wrong key size rejected.
	if _, err := e.Insert(Entry{Key: []byte{1}, ActionID: 1}); err == nil {
		t.Error("short key accepted")
	}
}

func TestLPMLongestWins(t *testing.T) {
	e, err := New(LPM, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10.0.0.0/8 -> 1, 10.1.0.0/16 -> 2, 10.1.2.0/24 -> 3, default /0 -> 99
	ins := func(a, b, c, d byte, plen, act int) int {
		h, err := e.Insert(Entry{Key: []byte{a, b, c, d}, PrefixLen: plen, ActionID: act})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ins(0, 0, 0, 0, 0, 99)
	ins(10, 0, 0, 0, 8, 1)
	h16 := ins(10, 1, 0, 0, 16, 2)
	ins(10, 1, 2, 0, 24, 3)

	cases := []struct {
		key  []byte
		want int
	}{
		{[]byte{10, 1, 2, 3}, 3},
		{[]byte{10, 1, 9, 9}, 2},
		{[]byte{10, 9, 9, 9}, 1},
		{[]byte{11, 0, 0, 1}, 99},
	}
	for _, c := range cases {
		r, ok := e.Lookup(c.key)
		if !ok || r.ActionID != c.want {
			t.Errorf("lookup %v = %+v (ok=%v), want action %d", c.key, r, ok, c.want)
		}
	}
	// Delete the /16: /8 takes over.
	if err := e.Delete(h16); err != nil {
		t.Fatal(err)
	}
	if r, _ := e.Lookup([]byte{10, 1, 9, 9}); r.ActionID != 1 {
		t.Errorf("after delete: action %d, want 1", r.ActionID)
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestLPMErrors(t *testing.T) {
	e, _ := New(LPM, 32, 1)
	if _, err := e.Insert(Entry{Key: key32(0), PrefixLen: 33}); err == nil {
		t.Error("prefix 33 accepted for 32-bit key")
	}
	if _, err := e.Insert(Entry{Key: key32(0), PrefixLen: -1}); err == nil {
		t.Error("negative prefix accepted")
	}
	if _, err := e.Insert(Entry{Key: key32(0), PrefixLen: 8, ActionID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(Entry{Key: key32(1 << 24), PrefixLen: 16}); !errors.Is(err, ErrFull) {
		t.Errorf("full trie insert: %v", err)
	}
	// Replacing the same prefix is allowed even when full.
	if _, err := e.Insert(Entry{Key: key32(0), PrefixLen: 8, ActionID: 2}); err != nil {
		t.Errorf("replace on full trie: %v", err)
	}
	if _, ok := e.Lookup([]byte{1}); ok {
		t.Error("short key matched")
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	e, _ := New(LPM, 128, 0)
	zero := make([]byte, 16)
	if _, err := e.Insert(Entry{Key: zero, PrefixLen: 0, ActionID: 7}); err != nil {
		t.Fatal(err)
	}
	anyKey := make([]byte, 16)
	anyKey[0] = 0xFE
	if r, ok := e.Lookup(anyKey); !ok || r.ActionID != 7 {
		t.Errorf("default route miss: %+v, %v", r, ok)
	}
}

func TestTernaryPriority(t *testing.T) {
	e, err := New(Ternary, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Low-priority catch-all and a high-priority specific match.
	hAll, err := e.Insert(Entry{Key: []byte{0, 0}, Mask: []byte{0, 0}, Priority: 1, ActionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Insert(Entry{Key: []byte{0x12, 0x00}, Mask: []byte{0xff, 0x00}, Priority: 10, ActionID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := e.Lookup([]byte{0x12, 0x34}); r.ActionID != 2 {
		t.Errorf("high priority lost: %+v", r)
	}
	if r, _ := e.Lookup([]byte{0x99, 0x00}); r.ActionID != 1 {
		t.Errorf("catch-all lost: %+v", r)
	}
	// Equal priority: earlier insertion wins.
	_, _ = e.Insert(Entry{Key: []byte{0x12, 0x34}, Mask: []byte{0xff, 0xff}, Priority: 10, ActionID: 3})
	if r, _ := e.Lookup([]byte{0x12, 0x34}); r.ActionID != 2 {
		t.Errorf("tie-break changed winner: %+v", r)
	}
	if err := e.Delete(hAll); err != nil {
		t.Fatal(err)
	}
	if r, ok := e.Lookup([]byte{0x99, 0x00}); ok {
		t.Errorf("deleted catch-all still matches: %+v", r)
	}
	// Replace same value/mask/priority.
	h2, _ := e.Insert(Entry{Key: []byte{0x12, 0x00}, Mask: []byte{0xff, 0x00}, Priority: 10, ActionID: 9})
	if r, _ := e.Lookup([]byte{0x12, 0x55}); r.ActionID != 9 || r.EntryHandle != h2 {
		t.Errorf("in-place replace: %+v", r)
	}
	if _, err := e.Insert(Entry{Key: []byte{1, 2}, Mask: []byte{1}, Priority: 0}); err == nil {
		t.Error("short mask accepted")
	}
}

func TestRangeMatch(t *testing.T) {
	e, err := New(Range, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins := func(lo, hi uint16, prio, act int) {
		l := []byte{byte(lo >> 8), byte(lo)}
		h := []byte{byte(hi >> 8), byte(hi)}
		if _, err := e.Insert(Entry{Key: l, High: h, Priority: prio, ActionID: act}); err != nil {
			t.Fatal(err)
		}
	}
	ins(0, 1023, 1, 1)     // well-known ports
	ins(80, 80, 10, 2)     // http overrides
	ins(1024, 65535, 1, 3) // ephemeral
	check := func(p uint16, want int) {
		r, ok := e.Lookup([]byte{byte(p >> 8), byte(p)})
		if !ok || r.ActionID != want {
			t.Errorf("port %d -> %+v (ok=%v), want %d", p, r, ok, want)
		}
	}
	check(80, 2)
	check(22, 1)
	check(8080, 3)
	if _, err := e.Insert(Entry{Key: []byte{1, 0}, High: []byte{0, 0}}); err == nil {
		t.Error("inverted range accepted")
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestRangeCapacityAndDelete(t *testing.T) {
	e, _ := New(Range, 8, 1)
	h, err := e.Insert(Entry{Key: []byte{0}, High: []byte{10}, ActionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(Entry{Key: []byte{20}, High: []byte{30}}); !errors.Is(err, ErrFull) {
		t.Errorf("full range insert: %v", err)
	}
	if err := e.Delete(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(h); !errors.Is(err, ErrNoEntry) {
		t.Errorf("double delete: %v", err)
	}
}

func TestEntriesSnapshot(t *testing.T) {
	for _, kind := range []Kind{Exact, LPM, Ternary, Range} {
		e, _ := New(kind, 8, 0)
		ent := Entry{Key: []byte{5}, Mask: []byte{0xff}, High: []byte{9}, PrefixLen: 8, ActionID: 4, Params: []uint64{1, 2}}
		if _, err := e.Insert(ent); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		snap := e.Entries()
		if len(snap) != 1 || snap[0].ActionID != 4 || len(snap[0].Params) != 2 {
			t.Errorf("%v: snapshot %+v", kind, snap)
		}
		// Mutating the snapshot must not affect the engine.
		snap[0].Key[0] = 99
		snap[0].Params[0] = 99
		if r, ok := e.Lookup([]byte{5}); !ok || r.Params[0] != 1 {
			t.Errorf("%v: engine mutated via snapshot: %+v, %v", kind, r, ok)
		}
	}
}

// TestLPMAgainstLinearScan cross-checks the trie against a brute-force
// longest-prefix scan on random prefixes and keys.
func TestLPMAgainstLinearScan(t *testing.T) {
	type pfx struct {
		key  uint32
		plen int
		act  int
	}
	f := func(seedPrefixes []uint32, plens []uint8, probes []uint32) bool {
		e, _ := New(LPM, 32, 0)
		var prefixes []pfx
		for i, k := range seedPrefixes {
			if i >= len(plens) {
				break
			}
			plen := int(plens[i]) % 33
			mask := uint32(0)
			if plen > 0 {
				mask = ^uint32(0) << (32 - plen)
			}
			p := pfx{key: k & mask, plen: plen, act: i + 1}
			if _, err := e.Insert(Entry{Key: key32(p.key), PrefixLen: p.plen, ActionID: p.act}); err != nil {
				return false
			}
			// Later duplicates replace earlier ones, mirror that.
			replaced := false
			for j := range prefixes {
				if prefixes[j].key == p.key && prefixes[j].plen == p.plen {
					prefixes[j].act = p.act
					replaced = true
					break
				}
			}
			if !replaced {
				prefixes = append(prefixes, p)
			}
		}
		for _, probe := range probes {
			bestLen, bestAct, found := -1, 0, false
			for _, p := range prefixes {
				mask := uint32(0)
				if p.plen > 0 {
					mask = ^uint32(0) << (32 - p.plen)
				}
				if probe&mask == p.key && p.plen > bestLen {
					bestLen, bestAct, found = p.plen, p.act, true
				}
			}
			r, ok := e.Lookup(key32(probe))
			if ok != found {
				return false
			}
			if found && r.ActionID != bestAct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentLookupInsert(t *testing.T) {
	e, _ := New(Exact, 32, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if _, err := e.Insert(Entry{Key: key32(uint32(i)), ActionID: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		e.Lookup(key32(uint32(i)))
	}
	<-done
	if e.Len() != 1000 {
		t.Errorf("Len = %d", e.Len())
	}
}

// TestDIR168MatchesTrie differentially validates the DIR-16-8-8 fast path
// against the binary trie under random insert/delete/lookup interleavings.
func TestDIR168MatchesTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fast := newDIR168(0)
	slow := newLPMTrie(32, 0)
	type live struct{ fastH, slowH int }
	var handles []live
	for step := 0; step < 4000; step++ {
		op := rng.Intn(10)
		switch {
		case op < 6: // insert
			plen := rng.Intn(33)
			addr := rng.Uint32()
			if plen < 32 {
				addr &= ^uint32(0) << uint(32-plen)
			}
			if plen == 0 {
				addr = 0
			}
			e := Entry{Key: key32(addr), PrefixLen: plen, ActionID: step + 1}
			fh, err1 := fast.Insert(e)
			sh, err2 := slow.Insert(e)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("insert divergence: %v vs %v", err1, err2)
			}
			if err1 == nil {
				handles = append(handles, live{fh, sh})
			}
		case op < 8 && len(handles) > 0: // delete
			i := rng.Intn(len(handles))
			h := handles[i]
			err1 := fast.Delete(h.fastH)
			err2 := slow.Delete(h.slowH)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("delete divergence: %v vs %v", err1, err2)
			}
			handles = append(handles[:i], handles[i+1:]...)
		default: // lookups
			for j := 0; j < 16; j++ {
				probe := key32(rng.Uint32())
				rf, okF := fast.Lookup(probe)
				rs, okS := slow.Lookup(probe)
				if okF != okS || (okF && rf.ActionID != rs.ActionID) {
					t.Fatalf("lookup divergence on %x: fast=%v/%v slow=%v/%v",
						probe, rf.ActionID, okF, rs.ActionID, okS)
				}
			}
		}
		if fast.Len() != slow.Len() {
			t.Fatalf("len divergence: %d vs %d", fast.Len(), slow.Len())
		}
	}
}

func TestDIR168Basics(t *testing.T) {
	e, err := New(LPM, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*dir168); !ok {
		t.Fatalf("32-bit LPM engine is %T, want dir168", e)
	}
	if e.Kind() != LPM || e.KeyWidth() != 32 {
		t.Error("kind/width wrong")
	}
	// Capacity enforced via the shadow trie.
	for i := 0; i < 4; i++ {
		if _, err := e.Insert(Entry{Key: key32(uint32(i) << 24), PrefixLen: 8, ActionID: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Insert(Entry{Key: key32(0xF0000000), PrefixLen: 8}); !errors.Is(err, ErrFull) {
		t.Errorf("full insert: %v", err)
	}
	if _, err := e.Insert(Entry{Key: key32(0), PrefixLen: 40}); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, ok := e.Lookup([]byte{1}); ok {
		t.Error("short key matched")
	}
	if err := e.Delete(12345); !errors.Is(err, ErrNoEntry) {
		t.Errorf("ghost delete: %v", err)
	}
	// Entries snapshot via the trie.
	if got := len(e.Entries()); got != 4 {
		t.Errorf("entries = %d", got)
	}
}
