package match

import (
	"math/rand"
	"testing"
)

func fibEntries(n int) []Entry {
	rng := rand.New(rand.NewSource(3))
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		plen := 8 + rng.Intn(25) // 8..32, FIB-like
		addr := rng.Uint32()
		if plen < 32 {
			addr &= ^uint32(0) << uint(32-plen)
		}
		out = append(out, Entry{Key: key32(addr), PrefixLen: plen, ActionID: i + 1})
	}
	return out
}

// BenchmarkLPMLookup compares the binary trie against the DIR-16-8-8 fast
// path on a 100k-route FIB — the substrate ablation behind making DIR the
// default engine for IPv4 tables.
func BenchmarkLPMLookup(b *testing.B) {
	entries := fibEntries(100000)
	probes := make([][]byte, 4096)
	rng := rand.New(rand.NewSource(4))
	for i := range probes {
		probes[i] = key32(rng.Uint32())
	}
	engines := map[string]Engine{
		"trie":   newLPMTrie(32, 0),
		"dir168": newDIR168(0),
	}
	for name, eng := range engines {
		for _, e := range entries {
			if _, err := eng.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Lookup(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkLPMInsert compares update cost (DIR pays slot expansion).
func BenchmarkLPMInsert(b *testing.B) {
	entries := fibEntries(4096)
	b.Run("trie", func(b *testing.B) {
		eng := newLPMTrie(32, 0)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Insert(entries[i%len(entries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dir168", func(b *testing.B) {
		eng := newDIR168(0)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Insert(entries[i%len(entries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
