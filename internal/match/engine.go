package match

import "fmt"

// Kind enumerates the supported match kinds.
type Kind int

// Match kinds. Hash is the rP4 spelling for an exact match whose result
// feeds a hash-based selector (Fig. 5a uses `hash` keys for ECMP); it is
// stored exactly like Exact.
const (
	Exact Kind = iota
	LPM
	Ternary
	Range
	Hash
)

// String returns the rP4 spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case LPM:
		return "lpm"
	case Ternary:
		return "ternary"
	case Range:
		return "range"
	case Hash:
		return "hash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses the rP4 spelling of a match kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "exact":
		return Exact, nil
	case "lpm":
		return LPM, nil
	case "ternary":
		return Ternary, nil
	case "range":
		return Range, nil
	case "hash":
		return Hash, nil
	default:
		return 0, fmt.Errorf("match: unknown match kind %q", s)
	}
}

// Result is what a lookup returns: the action id bound to the entry and its
// parameter words, as compiled by rp4bc.
type Result struct {
	ActionID int
	Params   []uint64
	// EntryHandle identifies the matched entry for counters and deletion.
	EntryHandle int
}

// Engine is a table lookup engine. Implementations are safe for concurrent
// Lookup with exclusive Insert/Delete.
type Engine interface {
	// Kind reports the engine's match kind.
	Kind() Kind
	// KeyWidth reports the key width in bits.
	KeyWidth() int
	// Lookup finds the entry matching key, or ok=false for a miss.
	Lookup(key []byte) (Result, bool)
	// Insert adds or replaces an entry. The meaning of aux depends on the
	// kind: prefix length for LPM, mask bytes for Ternary, upper bound for
	// Range; it is ignored for Exact/Hash.
	Insert(e Entry) (handle int, err error)
	// Delete removes the entry with the given handle.
	Delete(handle int) error
	// Len reports the number of installed entries.
	Len() int
	// Entries returns a snapshot of installed entries (for migration and
	// table dumps).
	Entries() []Entry
}

// Entry is one table entry in engine-independent form.
type Entry struct {
	Key       []byte
	Mask      []byte // Ternary only
	PrefixLen int    // LPM only
	High      []byte // Range only: Key..High inclusive
	Priority  int    // Ternary/Range tie-break: higher wins
	ActionID  int
	Params    []uint64
	Handle    int // assigned by Insert; round-tripped by Entries
}

func checkKeyLen(key []byte, widthBits int) error {
	want := (widthBits + 7) / 8
	if len(key) != want {
		return fmt.Errorf("match: key of %d bytes, want %d for %d-bit key", len(key), want, widthBits)
	}
	return nil
}

// New builds an engine of the given kind with the given key width in bits
// and capacity (maximum entries; 0 means unlimited).
func New(kind Kind, keyWidthBits, capacity int) (Engine, error) {
	if keyWidthBits <= 0 {
		return nil, fmt.Errorf("match: key width %d invalid", keyWidthBits)
	}
	switch kind {
	case Exact, Hash:
		return newExact(kind, keyWidthBits, capacity), nil
	case LPM:
		if keyWidthBits == 32 {
			// IPv4 FIBs take the DIR-16-8-8 fast path; wider keys (IPv6)
			// use the binary trie.
			return newDIR168(capacity), nil
		}
		return newLPMTrie(keyWidthBits, capacity), nil
	case Ternary:
		return newTernary(keyWidthBits, capacity), nil
	case Range:
		return newRange(keyWidthBits, capacity), nil
	default:
		return nil, fmt.Errorf("match: unknown kind %v", kind)
	}
}

// ErrFull is wrapped by Insert when a capacity-limited table is full.
var ErrFull = fmt.Errorf("match: table full")

// ErrNoEntry is wrapped by Delete when the handle does not exist.
var ErrNoEntry = fmt.Errorf("match: no such entry")
