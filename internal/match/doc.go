// Package match implements the table lookup engines behind every
// match-action stage: exact match (hashed SRAM), longest-prefix match (a
// binary trie, the software stand-in for an LPM-capable TCAM/SRAM design),
// ternary match (priority-ordered value/mask pairs, the TCAM model) and
// range match.
//
// Keys are opaque byte strings assembled by the matcher submodule of a TSP
// from the header/metadata fields named in the table definition. Every
// engine satisfies the Engine interface so the data plane can treat tables
// uniformly, and every engine is safe for concurrent lookups with
// single-writer updates (sync.RWMutex), matching the control/data plane
// split of a switch.
package match
