// Package match implements the table lookup engines behind every
// match-action stage: exact match (hashed SRAM), longest-prefix match (a
// binary trie, the software stand-in for an LPM-capable TCAM/SRAM design),
// ternary match (priority-ordered value/mask pairs, the TCAM model) and
// range match.
//
// Keys are opaque byte strings assembled by the matcher submodule of a TSP
// from the header/metadata fields named in the table definition. Every
// engine satisfies the Engine interface so the data plane can treat tables
// uniformly, and every engine is safe for concurrent lookups with
// single-writer updates, matching the control/data plane split of a
// switch. The exact-match engine publishes copy-on-write snapshots so the
// per-packet lookup takes no lock at all (the software analogue of a
// shadow-bank swap); the trie/TCAM models keep a sync.RWMutex.
package match
