package match

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// lpmTrie is a binary (one bit per level) trie for longest-prefix match.
// It is the software model of the LPM capability the paper's designs use
// for IPv4/IPv6 FIB lookups (stages D–G of the base design).
//
// Lookups are lock-free: readers follow an atomic root pointer into an
// immutable node graph, the same discipline as the exact-match engine's
// snapshot swap. Writers serialise on mu and publish by path copy — an
// update clones only the nodes on the root-to-prefix path (at most width
// of them) and shares every subtree off the path, so update cost stays
// proportional to the prefix length, not the table size.
type lpmTrie struct {
	mu       sync.Mutex // serialises writers; readers never take it
	width    int
	capacity int
	root     atomic.Pointer[trieNode]
	// byHandle is the writer-side handle index. Values are full entry
	// copies rather than node pointers: path copy retires nodes on every
	// update, so a node pointer would go stale immediately.
	byHandle map[int]Entry
	count    atomic.Int64
	next     int
}

// trieNode is immutable once published: writers clone nodes along the
// update path and never modify a node reachable from a published root.
type trieNode struct {
	children [2]*trieNode
	// set marks a stored prefix ending at this node.
	set    bool
	handle int
	entry  Entry
}

func newLPMTrie(widthBits, capacity int) *lpmTrie {
	t := &lpmTrie{
		width:    widthBits,
		capacity: capacity,
		byHandle: make(map[int]Entry),
	}
	t.root.Store(&trieNode{})
	return t
}

func (t *lpmTrie) Kind() Kind    { return LPM }
func (t *lpmTrie) KeyWidth() int { return t.width }

func bitAt(key []byte, i int) int {
	return int(key[i/8]>>uint(7-i%8)) & 1
}

func (t *lpmTrie) Lookup(key []byte) (Result, bool) {
	if len(key)*8 < t.width {
		return Result{}, false
	}
	var best *trieNode
	n := t.root.Load()
	if n.set {
		best = n
	}
	for i := 0; i < t.width && n != nil; i++ {
		n = n.children[bitAt(key, i)]
		if n != nil && n.set {
			best = n
		}
	}
	if best == nil {
		return Result{}, false
	}
	return Result{ActionID: best.entry.ActionID, Params: best.entry.Params, EntryHandle: best.handle}, true
}

// clonePath copies the nodes from the current root down plen bits of key,
// creating missing nodes, and returns the new root plus the terminal
// node. Children off the path are shared with the published graph.
func (t *lpmTrie) clonePath(key []byte, plen int) (root, term *trieNode) {
	cp := *t.root.Load()
	root = &cp
	n := root
	for i := 0; i < plen; i++ {
		b := bitAt(key, i)
		var child trieNode
		if old := n.children[b]; old != nil {
			child = *old
		}
		n.children[b] = &child
		n = &child
	}
	return root, n
}

func (t *lpmTrie) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, t.width); err != nil {
		return 0, err
	}
	if ent.PrefixLen < 0 || ent.PrefixLen > t.width {
		return 0, fmt.Errorf("match: prefix length %d out of range [0,%d]", ent.PrefixLen, t.width)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	root, n := t.clonePath(ent.Key, ent.PrefixLen)
	if n.set {
		// Replace, keeping the handle. The unpublished clone is mutable.
		n.entry.ActionID = ent.ActionID
		n.entry.Params = append([]uint64(nil), ent.Params...)
		t.byHandle[n.handle] = n.entry
		t.root.Store(root)
		return n.handle, nil
	}
	if t.capacity > 0 && int(t.count.Load()) >= t.capacity {
		// The cloned path is discarded unpublished; no rollback needed.
		return 0, fmt.Errorf("%w: %d entries", ErrFull, t.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	n.set = true
	n.handle = t.next
	cp.Handle = n.handle
	n.entry = cp
	t.next++
	t.count.Add(1)
	t.byHandle[n.handle] = cp
	t.root.Store(root)
	return n.handle, nil
}

// EntryByHandle returns a copy of the entry with the given handle.
func (t *lpmTrie) EntryByHandle(handle int) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ent, ok := t.byHandle[handle]
	if !ok {
		return Entry{}, false
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	return cp, true
}

// lookupRange finds the longest prefix matching key whose length lies in
// [loPlen, hiPlen]; used by the DIR-16-8-8 engine's slot recomputation.
// Like Lookup it reads the published root without locking.
func (t *lpmTrie) lookupRange(key []byte, loPlen, hiPlen int) (Entry, bool) {
	if len(key)*8 < t.width {
		return Entry{}, false
	}
	var best *trieNode
	n := t.root.Load()
	if n.set && loPlen <= 0 {
		best = n
	}
	limit := hiPlen
	if limit > t.width {
		limit = t.width
	}
	for i := 0; i < limit && n != nil; i++ {
		n = n.children[bitAt(key, i)]
		if n != nil && n.set && i+1 >= loPlen {
			best = n
		}
	}
	if best == nil {
		return Entry{}, false
	}
	return best.entry, true
}

func (t *lpmTrie) Delete(handle int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ent, ok := t.byHandle[handle]
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	root, n := t.clonePath(ent.Key, ent.PrefixLen)
	n.set = false
	n.entry = Entry{}
	delete(t.byHandle, handle)
	t.count.Add(-1)
	t.root.Store(root)
	return nil
}

func (t *lpmTrie) Len() int {
	return int(t.count.Load())
}

func (t *lpmTrie) Entries() []Entry {
	out := make([]Entry, 0, t.Len())
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.set {
			cp := n.entry
			cp.Key = append([]byte(nil), n.entry.Key...)
			cp.Params = append([]uint64(nil), n.entry.Params...)
			out = append(out, cp)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root.Load())
	return out
}
