package match

import (
	"fmt"
	"sync"
)

// lpmTrie is a binary (one bit per level) trie for longest-prefix match.
// It is the software model of the LPM capability the paper's designs use
// for IPv4/IPv6 FIB lookups (stages D–G of the base design).
type lpmTrie struct {
	mu       sync.RWMutex
	width    int
	capacity int
	root     *trieNode
	byHandle map[int]*trieNode
	count    int
	next     int
}

type trieNode struct {
	children [2]*trieNode
	// set marks a stored prefix ending at this node.
	set    bool
	handle int
	entry  Entry
}

func newLPMTrie(widthBits, capacity int) *lpmTrie {
	return &lpmTrie{
		width:    widthBits,
		capacity: capacity,
		root:     &trieNode{},
		byHandle: make(map[int]*trieNode),
	}
}

func (t *lpmTrie) Kind() Kind    { return LPM }
func (t *lpmTrie) KeyWidth() int { return t.width }

func bitAt(key []byte, i int) int {
	return int(key[i/8]>>uint(7-i%8)) & 1
}

func (t *lpmTrie) Lookup(key []byte) (Result, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(key)*8 < t.width {
		return Result{}, false
	}
	var best *trieNode
	n := t.root
	if n.set {
		best = n
	}
	for i := 0; i < t.width && n != nil; i++ {
		n = n.children[bitAt(key, i)]
		if n != nil && n.set {
			best = n
		}
	}
	if best == nil {
		return Result{}, false
	}
	return Result{ActionID: best.entry.ActionID, Params: best.entry.Params, EntryHandle: best.handle}, true
}

func (t *lpmTrie) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, t.width); err != nil {
		return 0, err
	}
	if ent.PrefixLen < 0 || ent.PrefixLen > t.width {
		return 0, fmt.Errorf("match: prefix length %d out of range [0,%d]", ent.PrefixLen, t.width)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for i := 0; i < ent.PrefixLen; i++ {
		b := bitAt(ent.Key, i)
		if n.children[b] == nil {
			n.children[b] = &trieNode{}
		}
		n = n.children[b]
	}
	if n.set {
		n.entry.ActionID = ent.ActionID
		n.entry.Params = append([]uint64(nil), ent.Params...)
		return n.handle, nil
	}
	if t.capacity > 0 && t.count >= t.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, t.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	n.set = true
	n.handle = t.next
	cp.Handle = n.handle
	n.entry = cp
	t.next++
	t.count++
	t.byHandle[n.handle] = n
	return n.handle, nil
}

// EntryByHandle returns a copy of the entry with the given handle.
func (t *lpmTrie) EntryByHandle(handle int) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.byHandle[handle]
	if !ok {
		return Entry{}, false
	}
	cp := n.entry
	cp.Key = append([]byte(nil), n.entry.Key...)
	cp.Params = append([]uint64(nil), n.entry.Params...)
	return cp, true
}

// lookupRange finds the longest prefix matching key whose length lies in
// [loPlen, hiPlen]; used by the DIR-16-8-8 engine's slot recomputation.
func (t *lpmTrie) lookupRange(key []byte, loPlen, hiPlen int) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(key)*8 < t.width {
		return Entry{}, false
	}
	var best *trieNode
	n := t.root
	if n.set && loPlen <= 0 {
		best = n
	}
	limit := hiPlen
	if limit > t.width {
		limit = t.width
	}
	for i := 0; i < limit && n != nil; i++ {
		n = n.children[bitAt(key, i)]
		if n != nil && n.set && i+1 >= loPlen {
			best = n
		}
	}
	if best == nil {
		return Entry{}, false
	}
	return best.entry, true
}

func (t *lpmTrie) Delete(handle int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byHandle[handle]
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	n.set = false
	n.entry = Entry{}
	delete(t.byHandle, handle)
	t.count--
	return nil
}

func (t *lpmTrie) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

func (t *lpmTrie) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, t.count)
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.set {
			cp := n.entry
			cp.Key = append([]byte(nil), n.entry.Key...)
			cp.Params = append([]uint64(nil), n.entry.Params...)
			out = append(out, cp)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(t.root)
	return out
}
