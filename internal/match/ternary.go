package match

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// ternaryEngine models a TCAM: entries are (value, mask) pairs searched in
// priority order (higher Priority wins; insertion order breaks ties, older
// first, matching the first-match semantics of a physical TCAM).
type ternaryEngine struct {
	mu       sync.RWMutex
	width    int
	capacity int
	// entries kept sorted by descending priority, then ascending handle.
	entries []*Entry
	next    int
}

func newTernary(widthBits, capacity int) *ternaryEngine {
	return &ternaryEngine{width: widthBits, capacity: capacity}
}

func (t *ternaryEngine) Kind() Kind    { return Ternary }
func (t *ternaryEngine) KeyWidth() int { return t.width }

func (t *ternaryEngine) Lookup(key []byte) (Result, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, e := range t.entries {
		if ternaryMatches(key, e.Key, e.Mask) {
			return Result{ActionID: e.ActionID, Params: e.Params, EntryHandle: e.Handle}, true
		}
	}
	return Result{}, false
}

func ternaryMatches(key, value, mask []byte) bool {
	if len(key) < len(value) {
		return false
	}
	for i := range value {
		if (key[i]^value[i])&mask[i] != 0 {
			return false
		}
	}
	return true
}

func (t *ternaryEngine) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, t.width); err != nil {
		return 0, err
	}
	if len(ent.Mask) != len(ent.Key) {
		return 0, fmt.Errorf("match: mask of %d bytes, want %d", len(ent.Mask), len(ent.Key))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Replace an identical value/mask/priority entry in place.
	for _, e := range t.entries {
		if e.Priority == ent.Priority && bytes.Equal(e.Key, ent.Key) && bytes.Equal(e.Mask, ent.Mask) {
			e.ActionID = ent.ActionID
			e.Params = append([]uint64(nil), ent.Params...)
			return e.Handle, nil
		}
	}
	if t.capacity > 0 && len(t.entries) >= t.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, t.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Mask = append([]byte(nil), ent.Mask...)
	cp.Params = append([]uint64(nil), ent.Params...)
	cp.Handle = t.next
	t.next++
	t.entries = append(t.entries, &cp)
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return t.entries[i].Handle < t.entries[j].Handle
	})
	return cp.Handle, nil
}

func (t *ternaryEngine) Delete(handle int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.entries {
		if e.Handle == handle {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
}

func (t *ternaryEngine) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

func (t *ternaryEngine) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		cp := *e
		cp.Key = append([]byte(nil), e.Key...)
		cp.Mask = append([]byte(nil), e.Mask...)
		cp.Params = append([]uint64(nil), e.Params...)
		out = append(out, cp)
	}
	return out
}

// rangeEngine matches keys within [Key, High] treated as big-endian
// unsigned integers, searched in priority order.
type rangeEngine struct {
	mu       sync.RWMutex
	width    int
	capacity int
	entries  []*Entry
	next     int
}

func newRange(widthBits, capacity int) *rangeEngine {
	return &rangeEngine{width: widthBits, capacity: capacity}
}

func (r *rangeEngine) Kind() Kind    { return Range }
func (r *rangeEngine) KeyWidth() int { return r.width }

func (r *rangeEngine) Lookup(key []byte) (Result, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if bytes.Compare(key, e.Key) >= 0 && bytes.Compare(key, e.High) <= 0 {
			return Result{ActionID: e.ActionID, Params: e.Params, EntryHandle: e.Handle}, true
		}
	}
	return Result{}, false
}

func (r *rangeEngine) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, r.width); err != nil {
		return 0, err
	}
	if len(ent.High) != len(ent.Key) {
		return 0, fmt.Errorf("match: range high of %d bytes, want %d", len(ent.High), len(ent.Key))
	}
	if bytes.Compare(ent.Key, ent.High) > 0 {
		return 0, fmt.Errorf("match: empty range %x..%x", ent.Key, ent.High)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.capacity > 0 && len(r.entries) >= r.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, r.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.High = append([]byte(nil), ent.High...)
	cp.Params = append([]uint64(nil), ent.Params...)
	cp.Handle = r.next
	r.next++
	r.entries = append(r.entries, &cp)
	sort.SliceStable(r.entries, func(i, j int) bool {
		if r.entries[i].Priority != r.entries[j].Priority {
			return r.entries[i].Priority > r.entries[j].Priority
		}
		return r.entries[i].Handle < r.entries[j].Handle
	})
	return cp.Handle, nil
}

func (r *rangeEngine) Delete(handle int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if e.Handle == handle {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
}

func (r *rangeEngine) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

func (r *rangeEngine) Entries() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		cp := *e
		cp.Key = append([]byte(nil), e.Key...)
		cp.High = append([]byte(nil), e.High...)
		cp.Params = append([]uint64(nil), e.Params...)
		out = append(out, cp)
	}
	return out
}
