package match

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// exactEngine is a hash-table exact-match engine, the software model of an
// SRAM exact-match table. Lookups are lock-free: readers follow an atomic
// pointer to an immutable map snapshot (the software analogue of a shadow
// bank swap), while writers serialise on mu and publish a fresh copy.
type exactEngine struct {
	mu       sync.Mutex // serialises writers; readers never take it
	kind     Kind
	width    int
	capacity int
	snap     atomic.Pointer[map[string]*Entry]
	byHandle map[int]*Entry // writer-side index, guarded by mu
	next     int
}

func newExact(kind Kind, widthBits, capacity int) *exactEngine {
	e := &exactEngine{
		kind:     kind,
		width:    widthBits,
		capacity: capacity,
		byHandle: make(map[int]*Entry),
	}
	m := make(map[string]*Entry)
	e.snap.Store(&m)
	return e
}

func (e *exactEngine) Kind() Kind    { return e.kind }
func (e *exactEngine) KeyWidth() int { return e.width }

func (e *exactEngine) Lookup(key []byte) (Result, bool) {
	ent, ok := (*e.snap.Load())[string(key)]
	if !ok {
		return Result{}, false
	}
	return Result{ActionID: ent.ActionID, Params: ent.Params, EntryHandle: ent.Handle}, true
}

// publish installs ent under k in a fresh snapshot. Callers hold mu.
// Entries in a published snapshot are immutable; replacement clones.
func (e *exactEngine) publish(old map[string]*Entry, k string, ent *Entry) {
	m := make(map[string]*Entry, len(old)+1)
	for kk, vv := range old {
		m[kk] = vv
	}
	m[k] = ent
	e.snap.Store(&m)
}

func (e *exactEngine) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, e.width); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old := *e.snap.Load()
	k := string(ent.Key)
	if prev, ok := old[k]; ok {
		// Replace, keeping the handle.
		cp := *prev
		cp.ActionID = ent.ActionID
		cp.Params = append([]uint64(nil), ent.Params...)
		e.publish(old, k, &cp)
		e.byHandle[cp.Handle] = &cp
		return cp.Handle, nil
	}
	if e.capacity > 0 && len(old) >= e.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, e.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	cp.Handle = e.next
	e.next++
	e.publish(old, k, &cp)
	e.byHandle[cp.Handle] = &cp
	return cp.Handle, nil
}

func (e *exactEngine) Delete(handle int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byHandle[handle]
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	delete(e.byHandle, handle)
	old := *e.snap.Load()
	m := make(map[string]*Entry, len(old))
	k := string(ent.Key)
	for kk, vv := range old {
		if kk != k {
			m[kk] = vv
		}
	}
	e.snap.Store(&m)
	return nil
}

func (e *exactEngine) Len() int {
	return len(*e.snap.Load())
}

func (e *exactEngine) Entries() []Entry {
	m := *e.snap.Load()
	out := make([]Entry, 0, len(m))
	for _, ent := range m {
		cp := *ent
		cp.Key = append([]byte(nil), ent.Key...)
		cp.Params = append([]uint64(nil), ent.Params...)
		out = append(out, cp)
	}
	return out
}
