package match

import (
	"fmt"
	"sync"
)

// exactEngine is a hash-table exact-match engine, the software model of an
// SRAM exact-match table.
type exactEngine struct {
	mu       sync.RWMutex
	kind     Kind
	width    int
	capacity int
	entries  map[string]*Entry
	byHandle map[int]*Entry
	next     int
}

func newExact(kind Kind, widthBits, capacity int) *exactEngine {
	return &exactEngine{
		kind:     kind,
		width:    widthBits,
		capacity: capacity,
		entries:  make(map[string]*Entry),
		byHandle: make(map[int]*Entry),
	}
}

func (e *exactEngine) Kind() Kind    { return e.kind }
func (e *exactEngine) KeyWidth() int { return e.width }

func (e *exactEngine) Lookup(key []byte) (Result, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ent, ok := e.entries[string(key)]
	if !ok {
		return Result{}, false
	}
	return Result{ActionID: ent.ActionID, Params: ent.Params, EntryHandle: ent.Handle}, true
}

func (e *exactEngine) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, e.width); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := string(ent.Key)
	if old, ok := e.entries[k]; ok {
		// Replace in place, keeping the handle.
		old.ActionID = ent.ActionID
		old.Params = append([]uint64(nil), ent.Params...)
		return old.Handle, nil
	}
	if e.capacity > 0 && len(e.entries) >= e.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, e.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	cp.Handle = e.next
	e.next++
	e.entries[k] = &cp
	e.byHandle[cp.Handle] = &cp
	return cp.Handle, nil
}

func (e *exactEngine) Delete(handle int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byHandle[handle]
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	delete(e.byHandle, handle)
	delete(e.entries, string(ent.Key))
	return nil
}

func (e *exactEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.entries)
}

func (e *exactEngine) Entries() []Entry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Entry, 0, len(e.entries))
	for _, ent := range e.entries {
		cp := *ent
		cp.Key = append([]byte(nil), ent.Key...)
		cp.Params = append([]uint64(nil), ent.Params...)
		out = append(out, cp)
	}
	return out
}
