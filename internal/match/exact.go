package match

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// exactEngine is a hash-table exact-match engine, the software model of an
// SRAM exact-match table. Lookups are lock-free: readers follow an atomic
// pointer to an immutable open-addressing snapshot (the software analogue
// of a shadow bank swap), while writers serialise on mu and publish a
// fresh copy. The snapshot is a flat power-of-two slot array with linear
// probing rather than a Go map so that the bucket a key hashes to is an
// addressable cache line: Prefetch can touch it one packet ahead of the
// real lookup, which a map's opaque internals cannot offer.
type exactEngine struct {
	mu       sync.Mutex // serialises writers; readers never take it
	kind     Kind
	width    int
	capacity int
	snap     atomic.Pointer[exactSnap]
	byKey    map[string]*Entry // writer-side index, guarded by mu
	byHandle map[int]*Entry    // writer-side index, guarded by mu
	next     int
}

// exactSlot is one open-addressing bucket: the key's full hash (checked
// before the key bytes so a probe over a miss run costs one word per
// slot), the interned key and the immutable entry. ent == nil marks an
// empty slot and terminates probe chains.
type exactSlot struct {
	hash uint64
	key  string
	ent  *Entry
}

// exactSnap is an immutable published generation of the table.
type exactSnap struct {
	slots []exactSlot
	mask  uint64
	n     int
}

func newExact(kind Kind, widthBits, capacity int) *exactEngine {
	e := &exactEngine{
		kind:     kind,
		width:    widthBits,
		capacity: capacity,
		byKey:    make(map[string]*Entry),
		byHandle: make(map[int]*Entry),
	}
	e.snap.Store(buildExactSnap(e.byKey))
	return e
}

func (e *exactEngine) Kind() Kind    { return e.kind }
func (e *exactEngine) KeyWidth() int { return e.width }

// exactHash is FNV-1a 64 over the key bytes. Cheap, stateless and good
// enough for exact-match keys, which the control plane chooses, not an
// adversary on the wire (header bits only select among installed keys).
func exactHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// buildExactSnap lays the writer-side index out as a fresh probe array at
// ≤50% load (minimum 8 slots, so probes stay short even when full to the
// logical capacity).
func buildExactSnap(byKey map[string]*Entry) *exactSnap {
	n := len(byKey)
	want := 2 * n
	if want < 8 {
		want = 8
	}
	size := 1 << bits.Len(uint(want-1))
	s := &exactSnap{slots: make([]exactSlot, size), mask: uint64(size - 1), n: n}
	for k, ent := range byKey {
		h := exactHash([]byte(k))
		i := h & s.mask
		for s.slots[i].ent != nil {
			i = (i + 1) & s.mask
		}
		s.slots[i] = exactSlot{hash: h, key: k, ent: ent}
	}
	return s
}

func (e *exactEngine) Lookup(key []byte) (Result, bool) {
	s := e.snap.Load()
	h := exactHash(key)
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		sl := &s.slots[i]
		if sl.ent == nil {
			return Result{}, false
		}
		if sl.hash == h && sl.key == string(key) {
			return Result{ActionID: sl.ent.ActionID, Params: sl.ent.Params, EntryHandle: sl.ent.Handle}, true
		}
	}
}

// Prefetch touches the bucket cache line key hashes to, so the lookup a
// packet later finds it warm. The returned word is derived from the
// touched slot; callers sink it to keep the load from being optimised
// away. Never faults, never allocates.
func (e *exactEngine) Prefetch(key []byte) uint64 {
	s := e.snap.Load()
	return s.slots[exactHash(key)&s.mask].hash
}

// prefetchMinSlots is the probe-array size below which a one-ahead
// prefetch is pure overhead: 4096 slots is ~160KB of slot array — past
// L1 and a meaningful slice of L2 — so smaller snapshots are presumed
// cache-resident and PrefetchUseful declines the speculative key builds.
const prefetchMinSlots = 4096

// PrefetchUseful reports whether the current snapshot is large enough
// that touching a bucket one packet ahead actually hides a miss.
func (e *exactEngine) PrefetchUseful() bool {
	return len(e.snap.Load().slots) >= prefetchMinSlots
}

// publish rebuilds and installs a snapshot from the writer-side index.
// Callers hold mu. Entries in a published snapshot are immutable;
// replacement clones.
func (e *exactEngine) publish() {
	e.snap.Store(buildExactSnap(e.byKey))
}

func (e *exactEngine) Insert(ent Entry) (int, error) {
	if err := checkKeyLen(ent.Key, e.width); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := string(ent.Key)
	if prev, ok := e.byKey[k]; ok {
		// Replace, keeping the handle.
		cp := *prev
		cp.ActionID = ent.ActionID
		cp.Params = append([]uint64(nil), ent.Params...)
		e.byKey[k] = &cp
		e.byHandle[cp.Handle] = &cp
		e.publish()
		return cp.Handle, nil
	}
	if e.capacity > 0 && len(e.byKey) >= e.capacity {
		return 0, fmt.Errorf("%w: %d entries", ErrFull, e.capacity)
	}
	cp := ent
	cp.Key = append([]byte(nil), ent.Key...)
	cp.Params = append([]uint64(nil), ent.Params...)
	cp.Handle = e.next
	e.next++
	e.byKey[k] = &cp
	e.byHandle[cp.Handle] = &cp
	e.publish()
	return cp.Handle, nil
}

func (e *exactEngine) Delete(handle int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.byHandle[handle]
	if !ok {
		return fmt.Errorf("%w: handle %d", ErrNoEntry, handle)
	}
	delete(e.byHandle, handle)
	delete(e.byKey, string(ent.Key))
	e.publish()
	return nil
}

func (e *exactEngine) Len() int {
	return e.snap.Load().n
}

func (e *exactEngine) Entries() []Entry {
	s := e.snap.Load()
	out := make([]Entry, 0, s.n)
	for i := range s.slots {
		ent := s.slots[i].ent
		if ent == nil {
			continue
		}
		cp := *ent
		cp.Key = append([]byte(nil), ent.Key...)
		cp.Params = append([]uint64(nil), ent.Params...)
		out = append(out, cp)
	}
	return out
}
