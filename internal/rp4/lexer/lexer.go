// Package lexer tokenizes rP4 source (and the P4 subset, which shares its
// lexical structure).
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"ipsa/internal/rp4/token"
)

// Lexer scans rP4 source text.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	// keywords in effect; the P4 front end swaps in its own set.
	keywords map[string]token.Type
}

// New returns a lexer over src, reporting positions against file.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, keywords: token.Keywords}
}

// NewWithKeywords returns a lexer using a custom keyword set (used by the
// P4 front end).
func NewWithKeywords(file, src string, kw map[string]token.Type) *Lexer {
	l := New(file, src)
	l.keywords = kw
	return l
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (token.Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Type: token.EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if t, ok := l.keywords[lit]; ok {
			return token.Token{Type: t, Lit: lit, Pos: pos}, nil
		}
		return token.Token{Type: token.Ident, Lit: lit, Pos: pos}, nil
	case isDigit(c):
		return l.number(pos)
	}
	l.advance()
	two := func(next byte, ifTwo, ifOne token.Type) (token.Token, error) {
		if l.peek() == next {
			l.advance()
			return token.Token{Type: ifTwo, Pos: pos}, nil
		}
		return token.Token{Type: ifOne, Pos: pos}, nil
	}
	switch c {
	case '{':
		return token.Token{Type: token.LBrace, Pos: pos}, nil
	case '}':
		return token.Token{Type: token.RBrace, Pos: pos}, nil
	case '(':
		return token.Token{Type: token.LParen, Pos: pos}, nil
	case ')':
		return token.Token{Type: token.RParen, Pos: pos}, nil
	case ':':
		return token.Token{Type: token.Colon, Pos: pos}, nil
	case ';':
		return token.Token{Type: token.Semicolon, Pos: pos}, nil
	case ',':
		return token.Token{Type: token.Comma, Pos: pos}, nil
	case '.':
		return token.Token{Type: token.Dot, Pos: pos}, nil
	case '+':
		return token.Token{Type: token.Plus, Pos: pos}, nil
	case '-':
		return token.Token{Type: token.Minus, Pos: pos}, nil
	case '*':
		return token.Token{Type: token.Star, Pos: pos}, nil
	case '/':
		return token.Token{Type: token.Slash, Pos: pos}, nil
	case '%':
		return token.Token{Type: token.Percent, Pos: pos}, nil
	case '^':
		return token.Token{Type: token.Caret, Pos: pos}, nil
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Neq, token.Not)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Type: token.Shl, Pos: pos}, nil
		}
		return two('=', token.Leq, token.LAngle)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Type: token.Shr, Pos: pos}, nil
		}
		return two('=', token.Geq, token.RAngle)
	case '&':
		return two('&', token.AndAnd, token.Amp)
	case '|':
		return two('|', token.OrOr, token.Pipe)
	}
	return token.Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

func (l *Lexer) number(pos token.Pos) (token.Token, error) {
	start := l.off
	base := 10
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		base = 16
		l.advance()
		l.advance()
	} else if l.peek() == '0' && (l.peek2() == 'b' || l.peek2() == 'B') {
		base = 2
		l.advance()
		l.advance()
	}
	digStart := l.off
	for l.off < len(l.src) {
		c := l.peek()
		if c == '_' || isDigit(c) ||
			(base == 16 && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) {
			l.advance()
			continue
		}
		break
	}
	digits := strings.ReplaceAll(l.src[digStart:l.off], "_", "")
	if digits == "" {
		return token.Token{}, fmt.Errorf("%s: malformed number %q", pos, l.src[start:l.off])
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return token.Token{}, fmt.Errorf("%s: number %q: %v", pos, l.src[start:l.off], err)
	}
	return token.Token{Type: token.Number, Lit: l.src[start:l.off], Val: v, Pos: pos}, nil
}

// All scans the entire input, returning the token stream without the final
// EOF token.
func (l *Lexer) All() ([]token.Token, error) {
	var out []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Type == token.EOF {
			return out, nil
		}
		out = append(out, t)
	}
}
