package lexer

import (
	"testing"

	"ipsa/internal/rp4/token"
)

func TestBasicTokens(t *testing.T) {
	src := `table ecmp { key = { meta.nexthop: hash; } size = 4096; }`
	toks, err := New("t.rp4", src).All()
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Type{
		token.KwTable, token.Ident, token.LBrace,
		token.KwKey, token.Assign, token.LBrace,
		token.Ident, token.Dot, token.Ident, token.Colon, token.Ident, token.Semicolon,
		token.RBrace,
		token.KwSize, token.Assign, token.Number, token.Semicolon,
		token.RBrace,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Errorf("token %d = %v, want %v", i, toks[i], w)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"42", 42},
		{"0x0800", 0x0800},
		{"0X86DD", 0x86DD},
		{"0b1010", 10},
		{"1_000_000", 1000000},
		{"0", 0},
	}
	for _, c := range cases {
		toks, err := New("", c.src).All()
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Type != token.Number || toks[0].Val != c.want {
			t.Errorf("%q -> %v, want value %d", c.src, toks, c.want)
		}
	}
	if _, err := New("", "0x").All(); err == nil {
		t.Error("bare 0x accepted")
	}
	if _, err := New("", "0xFFFFFFFFFFFFFFFFF").All(); err == nil {
		t.Error("65-bit literal accepted")
	}
}

func TestOperators(t *testing.T) {
	src := `== != <= >= && || << >> < > = ! & | ^ + - * / %`
	toks, err := New("", src).All()
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Type{
		token.Eq, token.Neq, token.Leq, token.Geq, token.AndAnd, token.OrOr,
		token.Shl, token.Shr, token.LAngle, token.RAngle, token.Assign, token.Not,
		token.Amp, token.Pipe, token.Caret, token.Plus, token.Minus,
		token.Star, token.Slash, token.Percent,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Errorf("token %d = %v, want %v", i, toks[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	src := "a // line comment\n/* block\ncomment */ b /*inline*/ c"
	toks, err := New("", src).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %v", toks)
	}
	for i, lit := range []string{"a", "b", "c"} {
		if toks[i].Lit != lit {
			t.Errorf("token %d = %q", i, toks[i].Lit)
		}
	}
	if _, err := New("", "/* unterminated").All(); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestPositions(t *testing.T) {
	src := "aa\n  bb"
	toks, err := New("f.rp4", src).All()
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token at %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "f.rp4:2:3" {
		t.Errorf("pos string = %q", toks[1].Pos.String())
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := New("", "a @ b").All(); err == nil {
		t.Error("@ accepted")
	}
}

func TestKeywordsRecognized(t *testing.T) {
	for kw, typ := range token.Keywords {
		toks, err := New("", kw).All()
		if err != nil || len(toks) != 1 || toks[0].Type != typ {
			t.Errorf("keyword %q: %v, %v", kw, toks, err)
		}
	}
}
