package printer

import (
	"os"
	"strings"
	"testing"

	"ipsa/internal/rp4/parser"
)

// TestRoundTrip checks print -> parse -> print is a fixed point for every
// shipped design.
func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"base_l2l3.rp4", "ecmp.rp4", "srv6.rp4", "flowprobe.rp4"} {
		src, err := os.ReadFile("../../../testdata/" + name)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := parser.Parse(name, string(src))
		if err != nil {
			t.Fatal(err)
		}
		out1 := Print(p1)
		p2, err := parser.Parse(name+".printed", out1)
		if err != nil {
			t.Fatalf("%s: reprint does not parse: %v\n%s", name, err, out1)
		}
		out2 := Print(p2)
		if out1 != out2 {
			t.Errorf("%s: print not a fixed point", name)
		}
	}
}

func TestPrintCoversConstructs(t *testing.T) {
	src := `
headers {
    header h {
        bit<8> f;
        varlen (f) 8 8;
        implicit parser (f) { 4: h2; }
    }
    header h2 { bit<16> g; }
}
structs { struct m { bit<4> x; } meta; }
header_vector { h h; h2 h2; }
register<bit<32>>(64) r;
action a(bit<8> p) {
    meta.x = p + 1;
    if (h.isValid()) { drop(); } else { to_cpu(); }
    r.write(0, r.read(0) + 1);
}
table t {
    key = { h.f: ternary; }
    actions = { a; }
    size = 16;
    default_action = NoAction;
}
control rP4_Ingress {
    stage s {
        parser { h };
        matcher { if (!(h2.isValid()) && meta.x != 3) t.apply(); else; };
        executor { 1: a; default: NoAction; };
    }
}
user_funcs { func f { s } ingress_entry: s; }
`
	p, err := parser.Parse("all.rp4", src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p)
	for _, frag := range []string{
		"varlen (f) 8 8;", "implicit parser (f)", "header_vector",
		"register<bit<32>>(64) r;", "default_action = NoAction;",
		"ternary", "ingress_entry: s;", "func f { s }",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed output lacks %q:\n%s", frag, out)
		}
	}
	if _, err := parser.Parse("all.printed", out); err != nil {
		t.Fatalf("reprint does not parse: %v\n%s", err, out)
	}
}
