// Package printer renders rP4 ASTs back to source text. rp4fc uses it to
// emit the rP4 translation of a P4 program; rp4bc uses it to emit the
// updated base design after an incremental update (paper Sec. 3.2: "the
// first output is the updated base design").
package printer

import (
	"fmt"
	"strings"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/token"
)

// Print renders a complete program.
func Print(p *ast.Program) string {
	var b strings.Builder
	for _, c := range p.Consts {
		fmt.Fprintf(&b, "const bit<%d> %s = %d;\n", c.Width, c.Name, c.Value)
	}
	if len(p.Consts) > 0 {
		b.WriteString("\n")
	}
	if len(p.Headers) > 0 {
		b.WriteString("headers {\n")
		for _, h := range p.Headers {
			printHeader(&b, h)
		}
		b.WriteString("}\n\n")
	}
	if len(p.Structs) > 0 {
		b.WriteString("structs {\n")
		for _, s := range p.Structs {
			printStruct(&b, s)
		}
		b.WriteString("}\n\n")
	}
	if len(p.Instances) > 0 {
		b.WriteString("header_vector {\n")
		for _, hi := range p.Instances {
			fmt.Fprintf(&b, "    %s %s;\n", hi.Type, hi.Name)
		}
		b.WriteString("}\n\n")
	}
	for _, r := range p.Registers {
		fmt.Fprintf(&b, "register<bit<%d>>(%d) %s;\n", r.Width, r.Size, r.Name)
	}
	if len(p.Registers) > 0 {
		b.WriteString("\n")
	}
	for _, a := range p.Actions {
		printAction(&b, a)
		b.WriteString("\n")
	}
	for _, t := range p.Tables {
		printTable(&b, t)
		b.WriteString("\n")
	}
	if p.Ingress != nil {
		printPipe(&b, "rP4_Ingress", p.Ingress)
		b.WriteString("\n")
	}
	if p.Egress != nil {
		printPipe(&b, "rP4_Egress", p.Egress)
		b.WriteString("\n")
	}
	for _, s := range p.Floating {
		printStage(&b, s, "")
		b.WriteString("\n")
	}
	if p.Funcs != nil {
		printFuncs(&b, p.Funcs)
	}
	return b.String()
}

func printHeader(b *strings.Builder, h *ast.HeaderDef) {
	fmt.Fprintf(b, "    header %s {\n", h.Name)
	for _, f := range h.Fields {
		fmt.Fprintf(b, "        bit<%d> %s;\n", f.Width, f.Name)
	}
	if h.VarLen != nil {
		fmt.Fprintf(b, "        varlen (%s) %d %d;\n", h.VarLen.Field, h.VarLen.BaseBytes, h.VarLen.UnitBytes)
	}
	if h.Parser != nil {
		fmt.Fprintf(b, "        implicit parser (%s) {\n", strings.Join(h.Parser.SelectorFields, ", "))
		for _, tr := range h.Parser.Transitions {
			fmt.Fprintf(b, "            %d: %s;\n", tr.Tag, tr.Next)
		}
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n")
}

func printStruct(b *strings.Builder, s *ast.StructDef) {
	fmt.Fprintf(b, "    struct %s {\n", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(b, "        bit<%d> %s;\n", f.Width, f.Name)
	}
	if s.Alias != "" {
		fmt.Fprintf(b, "    } %s;\n", s.Alias)
	} else {
		b.WriteString("    }\n")
	}
}

func printAction(b *strings.Builder, a *ast.ActionDef) {
	params := make([]string, len(a.Params))
	for i, p := range a.Params {
		params[i] = fmt.Sprintf("bit<%d> %s", p.Width, p.Name)
	}
	fmt.Fprintf(b, "action %s(%s) {\n", a.Name, strings.Join(params, ", "))
	printStmts(b, a.Body, 1)
	b.WriteString("}\n")
}

func printTable(b *strings.Builder, t *ast.TableDef) {
	fmt.Fprintf(b, "table %s {\n", t.Name)
	if len(t.Keys) > 0 {
		b.WriteString("    key = {\n")
		for _, k := range t.Keys {
			fmt.Fprintf(b, "        %s: %s;\n", k.Field, k.Kind)
		}
		b.WriteString("    }\n")
	}
	if len(t.Actions) > 0 {
		fmt.Fprintf(b, "    actions = { %s; }\n", strings.Join(t.Actions, "; "))
	}
	if t.Size > 0 {
		fmt.Fprintf(b, "    size = %d;\n", t.Size)
	}
	if t.DefaultAction != "" {
		fmt.Fprintf(b, "    default_action = %s;\n", t.DefaultAction)
	}
	b.WriteString("}\n")
}

func printPipe(b *strings.Builder, name string, p *ast.Pipe) {
	fmt.Fprintf(b, "control %s {\n", name)
	for _, s := range p.Stages {
		printStage(b, s, "    ")
	}
	b.WriteString("}\n")
}

func printStage(b *strings.Builder, s *ast.StageDef, indent string) {
	fmt.Fprintf(b, "%sstage %s {\n", indent, s.Name)
	if len(s.Parser) > 0 {
		fmt.Fprintf(b, "%s    parser { %s };\n", indent, strings.Join(s.Parser, ", "))
	}
	if len(s.Matcher) > 0 {
		fmt.Fprintf(b, "%s    matcher {\n", indent)
		printStmtsIndent(b, s.Matcher, indent+"        ")
		fmt.Fprintf(b, "%s    };\n", indent)
	}
	if len(s.Exec) > 0 {
		fmt.Fprintf(b, "%s    executor {\n", indent)
		for _, arm := range s.Exec {
			if arm.Default {
				fmt.Fprintf(b, "%s        default: %s;\n", indent, arm.Action)
			} else {
				fmt.Fprintf(b, "%s        %d: %s;\n", indent, arm.Tag, arm.Action)
			}
		}
		fmt.Fprintf(b, "%s    };\n", indent)
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

func printFuncs(b *strings.Builder, uf *ast.UserFuncs) {
	b.WriteString("user_funcs {\n")
	for _, f := range uf.Funcs {
		fmt.Fprintf(b, "    func %s { %s }\n", f.Name, strings.Join(f.Stages, " "))
	}
	if uf.IngressEntry != "" {
		fmt.Fprintf(b, "    ingress_entry: %s;\n", uf.IngressEntry)
	}
	if uf.EgressEntry != "" {
		fmt.Fprintf(b, "    egress_entry: %s;\n", uf.EgressEntry)
	}
	b.WriteString("}\n")
}

func printStmts(b *strings.Builder, stmts []ast.Stmt, depth int) {
	printStmtsIndent(b, stmts, strings.Repeat("    ", depth))
}

func printStmtsIndent(b *strings.Builder, stmts []ast.Stmt, indent string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.EmptyStmt:
			fmt.Fprintf(b, "%s;\n", indent)
		case *ast.AssignStmt:
			fmt.Fprintf(b, "%s%s = %s;\n", indent, st.LHS, exprSrc(st.RHS))
		case *ast.CallStmt:
			recv := ""
			if st.Recv != "" {
				recv = st.Recv + "."
			}
			args := make([]string, len(st.Args))
			for i, a := range st.Args {
				args[i] = exprSrc(a)
			}
			fmt.Fprintf(b, "%s%s%s(%s);\n", indent, recv, st.Method, strings.Join(args, ", "))
		case *ast.IfStmt:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, exprSrc(st.Cond))
			printStmtsIndent(b, st.Then, indent+"    ")
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				printStmtsIndent(b, st.Else, indent+"    ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}

var opSrc = map[token.Type]string{
	token.Plus: "+", token.Minus: "-", token.Star: "*", token.Slash: "/",
	token.Percent: "%", token.Amp: "&", token.Pipe: "|", token.Caret: "^",
	token.Shl: "<<", token.Shr: ">>",
	token.Eq: "==", token.Neq: "!=", token.LAngle: "<", token.RAngle: ">",
	token.Leq: "<=", token.Geq: ">=", token.AndAnd: "&&", token.OrOr: "||",
	token.Not: "!",
}

func exprSrc(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.NumberLit:
		return fmt.Sprintf("%d", x.Val)
	case *ast.BoolLit:
		return fmt.Sprintf("%t", x.Val)
	case *ast.FieldRef:
		return x.String()
	case *ast.CallExpr:
		recv := ""
		if x.Recv != "" {
			recv = x.Recv + "."
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprSrc(a)
		}
		return fmt.Sprintf("%s%s(%s)", recv, x.Method, strings.Join(args, ", "))
	case *ast.UnaryExpr:
		return fmt.Sprintf("%s(%s)", opSrc[x.Op], exprSrc(x.X))
	case *ast.BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", exprSrc(x.X), opSrc[x.Op], exprSrc(x.Y))
	}
	return "/*?*/"
}
