// Package sem performs semantic analysis of rP4 programs: name resolution,
// width/type checking, metadata layout, and the per-stage read/write sets
// that rp4bc's dependency analysis and stage merging build on.
package sem

import (
	"fmt"
	"sort"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/token"
)

// Space says where a field lives.
type Space int

// Field spaces.
const (
	SpaceHeader Space = iota
	SpaceMeta
)

// FieldInfo locates one resolvable field.
type FieldInfo struct {
	Space  Space
	Header pkt.HeaderID // valid for SpaceHeader
	BitOff int          // within the header or the metadata area
	Width  int
}

// Instance is one header instance in the header vector.
type Instance struct {
	Name  string
	Type  string
	ID    pkt.HeaderID
	Width int // bits
	Def   *ast.HeaderDef
}

// KeyInfo is one resolved table key component.
type KeyInfo struct {
	Name  string // canonical "inst.field" spelling
	Field FieldInfo
	Kind  match.Kind
}

// TableInfo is a resolved table.
type TableInfo struct {
	Def      *ast.TableDef
	Keys     []KeyInfo
	KeyWidth int // concatenated key width in bits
	// IsSelector marks hash-kind tables: the first key selects the ECMP
	// group exactly, the remaining keys feed the member-selection hash.
	IsSelector bool
}

// ActionInfo is a resolved action.
type ActionInfo struct {
	Def *ast.ActionDef
	// Reads/Writes are canonical field names touched by the body
	// (parameters excluded).
	Reads, Writes map[string]bool
	// RegistersRead/Written name registers the body touches.
	RegistersRead, RegistersWritten map[string]bool
	// Builtins lists builtin primitives invoked (drop, to_cpu,
	// srh_advance, srh_pop).
	Builtins map[string]bool
}

// StageInfo is a resolved stage with its dependency footprint.
type StageInfo struct {
	Def    *ast.StageDef
	Pipe   string // "ingress" or "egress"
	Tables []string
	// Reads/Writes are the union over matcher conditions, table keys and
	// all executor actions.
	Reads, Writes map[string]bool
	// ParsesNew lists instances this stage may add to the header vector.
	ParsesNew []string
	// PopsHeaders marks stages whose actions remove headers (srh_pop),
	// which makes header-validity predicates unstable across the stage.
	PopsHeaders bool
}

// Design is the fully analyzed program.
type Design struct {
	Prog *ast.Program

	Instances      []*Instance
	InstanceByName map[string]*Instance

	// MetaFields maps "alias.field" (and "istd.*") to layout info.
	MetaFields map[string]FieldInfo
	MetaBits   int

	Consts    map[string]*ast.ConstDef
	Tables    map[string]*TableInfo
	Actions   map[string]*ActionInfo
	Registers map[string]*ast.RegisterDef
	Stages    map[string]*StageInfo

	// StageOrder lists stage names in declaration order, ingress first —
	// the initial chain rp4bc derives links from.
	StageOrder []string
}

// Intrinsic standard metadata, always present at the start of the metadata
// area (the istd instance).
var istdFields = []struct {
	name  string
	width int
}{
	{"in_port", 16},
	{"out_port", 16},
	{"drop", 1},
	{"to_cpu", 1},
}

// Builtin zero-argument action primitives usable as statements.
var builtinStmts = map[string]int{ // name -> arg count
	"drop":        0,
	"to_cpu":      0,
	"srh_advance": 0,
	"srh_pop":     0,
}

// NoActionName is the implicitly defined empty action.
const NoActionName = "NoAction"

type checker struct {
	d      *Design
	errors []error
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	c.errors = append(c.errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// Analyze checks prog and returns the resolved design. All detected errors
// are joined into one error.
func Analyze(prog *ast.Program) (*Design, error) {
	d := &Design{
		Prog:           prog,
		InstanceByName: make(map[string]*Instance),
		MetaFields:     make(map[string]FieldInfo),
		Consts:         make(map[string]*ast.ConstDef),
		Tables:         make(map[string]*TableInfo),
		Actions:        make(map[string]*ActionInfo),
		Registers:      make(map[string]*ast.RegisterDef),
		Stages:         make(map[string]*StageInfo),
	}
	c := &checker{d: d}
	c.consts()
	c.headers()
	c.metadata()
	c.registers()
	c.actions()
	c.tables()
	c.stages()
	c.funcs()
	if len(c.errors) > 0 {
		msg := ""
		for i, e := range c.errors {
			if i > 0 {
				msg += "\n"
			}
			msg += e.Error()
		}
		return nil, fmt.Errorf("%s", msg)
	}
	return d, nil
}

func (c *checker) consts() {
	for _, cd := range c.d.Prog.Consts {
		if _, dup := c.d.Consts[cd.Name]; dup {
			c.errf(cd.Pos, "duplicate const %q", cd.Name)
			continue
		}
		if cd.Width < 64 && cd.Value >= 1<<uint(cd.Width) {
			c.errf(cd.Pos, "const %q value %d does not fit in bit<%d>", cd.Name, cd.Value, cd.Width)
			continue
		}
		c.d.Consts[cd.Name] = cd
	}
}

func (c *checker) headers() {
	types := make(map[string]*ast.HeaderDef)
	for _, h := range c.d.Prog.Headers {
		if _, dup := types[h.Name]; dup {
			c.errf(h.Pos, "duplicate header type %q", h.Name)
			continue
		}
		types[h.Name] = h
		seen := make(map[string]bool)
		for _, f := range h.Fields {
			if seen[f.Name] {
				c.errf(f.Pos, "duplicate field %q in header %q", f.Name, h.Name)
			}
			seen[f.Name] = true
		}
		if h.Parser != nil {
			for _, sf := range h.Parser.SelectorFields {
				if fld, _ := h.Field(sf); fld == nil {
					c.errf(h.Parser.Pos, "implicit parser of %q selects unknown field %q", h.Name, sf)
				}
			}
			tags := make(map[uint64]bool)
			for _, tr := range h.Parser.Transitions {
				if tags[tr.Tag] {
					c.errf(tr.Pos, "implicit parser of %q has duplicate tag %d", h.Name, tr.Tag)
				}
				tags[tr.Tag] = true
			}
		}
		if h.VarLen != nil {
			if fld, _ := h.Field(h.VarLen.Field); fld == nil {
				c.errf(h.VarLen.Pos, "varlen of %q uses unknown field %q", h.Name, h.VarLen.Field)
			}
			if h.VarLen.BaseBytes < h.Width()/8 || h.VarLen.UnitBytes <= 0 {
				c.errf(h.VarLen.Pos, "varlen of %q: base %d must cover the %d fixed bytes and unit must be positive",
					h.Name, h.VarLen.BaseBytes, h.Width()/8)
			}
		}
	}
	// Instances: declared header_vector or one per type.
	insts := c.d.Prog.Instances
	if len(insts) == 0 {
		for _, h := range c.d.Prog.Headers {
			insts = append(insts, &ast.HeaderInstance{Type: h.Name, Name: h.Name, Pos: h.Pos})
		}
	}
	for i, hi := range insts {
		def, ok := types[hi.Type]
		if !ok {
			c.errf(hi.Pos, "header instance %q has unknown type %q", hi.Name, hi.Type)
			continue
		}
		if _, dup := c.d.InstanceByName[hi.Name]; dup {
			c.errf(hi.Pos, "duplicate header instance %q", hi.Name)
			continue
		}
		inst := &Instance{Name: hi.Name, Type: hi.Type, ID: pkt.HeaderID(i), Width: def.Width(), Def: def}
		c.d.Instances = append(c.d.Instances, inst)
		c.d.InstanceByName[hi.Name] = inst
	}
	// Transition targets must name instances.
	for _, h := range c.d.Prog.Headers {
		if h.Parser == nil {
			continue
		}
		for _, tr := range h.Parser.Transitions {
			if _, ok := c.d.InstanceByName[tr.Next]; !ok {
				c.errf(tr.Pos, "implicit parser of %q transitions to unknown instance %q", h.Name, tr.Next)
			}
		}
	}
}

func (c *checker) metadata() {
	off := 0
	for _, f := range istdFields {
		c.d.MetaFields["istd."+f.name] = FieldInfo{Space: SpaceMeta, BitOff: off, Width: f.width}
		off += f.width
	}
	aliases := map[string]bool{"istd": true}
	for _, s := range c.d.Prog.Structs {
		alias := s.Alias
		if alias == "" {
			// An un-instantiated struct contributes no metadata fields.
			continue
		}
		if aliases[alias] {
			c.errf(s.Pos, "duplicate metadata instance %q", alias)
			continue
		}
		if _, clash := c.d.InstanceByName[alias]; clash {
			c.errf(s.Pos, "metadata instance %q collides with a header instance", alias)
			continue
		}
		aliases[alias] = true
		seen := make(map[string]bool)
		for _, f := range s.Fields {
			if seen[f.Name] {
				c.errf(f.Pos, "duplicate field %q in struct %q", f.Name, s.Name)
				continue
			}
			seen[f.Name] = true
			c.d.MetaFields[alias+"."+f.Name] = FieldInfo{Space: SpaceMeta, BitOff: off, Width: f.Width}
			off += f.Width
		}
	}
	c.d.MetaBits = off
}

// MetaBytes returns the metadata area size in bytes.
func (d *Design) MetaBytes() int { return (d.MetaBits + 7) / 8 }

func (c *checker) registers() {
	for _, r := range c.d.Prog.Registers {
		if _, dup := c.d.Registers[r.Name]; dup {
			c.errf(r.Pos, "duplicate register %q", r.Name)
			continue
		}
		if r.Width > 64 {
			c.errf(r.Pos, "register %q width %d exceeds 64", r.Name, r.Width)
			continue
		}
		c.d.Registers[r.Name] = r
	}
}

func (c *checker) actions() {
	// Implicit NoAction.
	if c.d.Prog.Action(NoActionName) == nil {
		c.d.Actions[NoActionName] = &ActionInfo{
			Def:           &ast.ActionDef{Name: NoActionName},
			Reads:         map[string]bool{},
			Writes:        map[string]bool{},
			RegistersRead: map[string]bool{}, RegistersWritten: map[string]bool{},
			Builtins: map[string]bool{},
		}
	}
	for _, a := range c.d.Prog.Actions {
		if _, dup := c.d.Actions[a.Name]; dup {
			c.errf(a.Pos, "duplicate action %q", a.Name)
			continue
		}
		info := &ActionInfo{
			Def:           a,
			Reads:         map[string]bool{},
			Writes:        map[string]bool{},
			RegistersRead: map[string]bool{}, RegistersWritten: map[string]bool{},
			Builtins: map[string]bool{},
		}
		params := make(map[string]int)
		seen := make(map[string]bool)
		for i, p := range a.Params {
			if seen[p.Name] {
				c.errf(p.Pos, "duplicate parameter %q in action %q", p.Name, a.Name)
			}
			seen[p.Name] = true
			params[p.Name] = i
		}
		c.stmts(a.Body, params, info, fmt.Sprintf("action %q", a.Name))
		c.d.Actions[a.Name] = info
	}
}

// ResolveField resolves a dotted reference to a header or metadata field.
func (d *Design) ResolveField(ref *ast.FieldRef) (FieldInfo, error) {
	if len(ref.Parts) != 2 {
		return FieldInfo{}, fmt.Errorf("%s: field reference %q must be instance.field", ref.Pos, ref)
	}
	inst, fld := ref.Parts[0], ref.Parts[1]
	if hi, ok := d.InstanceByName[inst]; ok {
		f, off := hi.Def.Field(fld)
		if f == nil {
			return FieldInfo{}, fmt.Errorf("%s: header %q has no field %q", ref.Pos, inst, fld)
		}
		return FieldInfo{Space: SpaceHeader, Header: hi.ID, BitOff: off, Width: f.Width}, nil
	}
	if fi, ok := d.MetaFields[inst+"."+fld]; ok {
		return fi, nil
	}
	return FieldInfo{}, fmt.Errorf("%s: unknown field %q", ref.Pos, ref)
}

// exprKind is the minimal type lattice: bits or bool.
type exprKind int

const (
	kindBits exprKind = iota
	kindBool
)

// checkExpr type-checks an expression, recording reads into info.
func (c *checker) checkExpr(e ast.Expr, params map[string]int, info *ActionInfo, where string) exprKind {
	switch x := e.(type) {
	case *ast.NumberLit:
		return kindBits
	case *ast.BoolLit:
		return kindBool
	case *ast.FieldRef:
		if len(x.Parts) == 1 {
			if _, ok := params[x.Parts[0]]; ok {
				return kindBits
			}
			if _, ok := c.d.Consts[x.Parts[0]]; ok {
				return kindBits
			}
			c.errf(x.Pos, "%s: unknown name %q", where, x.Parts[0])
			return kindBits
		}
		if _, err := c.d.ResolveField(x); err != nil {
			c.errors = append(c.errors, fmt.Errorf("%s: %v", where, err))
			return kindBits
		}
		info.Reads[x.String()] = true
		return kindBits
	case *ast.CallExpr:
		return c.checkCallExpr(x, params, info, where)
	case *ast.UnaryExpr:
		k := c.checkExpr(x.X, params, info, where)
		if x.Op == token.Not && k != kindBool {
			c.errf(x.Pos, "%s: ! applied to non-boolean", where)
		}
		if x.Op == token.Minus && k != kindBits {
			c.errf(x.Pos, "%s: - applied to non-numeric", where)
		}
		return k
	case *ast.BinaryExpr:
		kx := c.checkExpr(x.X, params, info, where)
		ky := c.checkExpr(x.Y, params, info, where)
		switch x.Op {
		case token.AndAnd, token.OrOr:
			if kx != kindBool || ky != kindBool {
				c.errf(x.Pos, "%s: %s requires boolean operands", where, x.Op)
			}
			return kindBool
		case token.Eq, token.Neq, token.LAngle, token.RAngle, token.Leq, token.Geq:
			if kx != kindBits || ky != kindBits {
				c.errf(x.Pos, "%s: %s requires numeric operands", where, x.Op)
			}
			return kindBool
		default:
			if kx != kindBits || ky != kindBits {
				c.errf(x.Pos, "%s: %s requires numeric operands", where, x.Op)
			}
			return kindBits
		}
	}
	c.errf(token.Pos{}, "%s: unhandled expression", where)
	return kindBits
}

func (c *checker) checkCallExpr(x *ast.CallExpr, params map[string]int, info *ActionInfo, where string) exprKind {
	switch {
	case x.Method == "isValid" && x.Recv != "":
		if _, ok := c.d.InstanceByName[x.Recv]; !ok {
			c.errf(x.Pos, "%s: isValid on unknown header %q", where, x.Recv)
		}
		if len(x.Args) != 0 {
			c.errf(x.Pos, "%s: isValid takes no arguments", where)
		}
		return kindBool
	case x.Method == "read" && x.Recv != "":
		if _, ok := c.d.Registers[x.Recv]; !ok {
			c.errf(x.Pos, "%s: read on unknown register %q", where, x.Recv)
		} else {
			info.RegistersRead[x.Recv] = true
		}
		if len(x.Args) != 1 {
			c.errf(x.Pos, "%s: %s.read takes one index argument", where, x.Recv)
		}
		for _, a := range x.Args {
			if c.checkExpr(a, params, info, where) != kindBits {
				c.errf(x.Pos, "%s: register index must be numeric", where)
			}
		}
		return kindBits
	case x.Method == "hash" && x.Recv == "":
		if len(x.Args) == 0 {
			c.errf(x.Pos, "%s: hash needs at least one argument", where)
		}
		for _, a := range x.Args {
			if c.checkExpr(a, params, info, where) != kindBits {
				c.errf(x.Pos, "%s: hash arguments must be numeric", where)
			}
		}
		return kindBits
	}
	c.errf(x.Pos, "%s: unknown call %s", where, ast.ExprString(x))
	return kindBits
}

func (c *checker) stmts(body []ast.Stmt, params map[string]int, info *ActionInfo, where string) {
	for _, s := range body {
		switch st := s.(type) {
		case *ast.EmptyStmt:
		case *ast.AssignStmt:
			if len(st.LHS.Parts) == 1 {
				c.errf(st.Pos, "%s: cannot assign to parameter %q", where, st.LHS.Parts[0])
				continue
			}
			if _, err := c.d.ResolveField(st.LHS); err != nil {
				c.errors = append(c.errors, fmt.Errorf("%s: %v", where, err))
				continue
			}
			info.Writes[st.LHS.String()] = true
			if c.checkExpr(st.RHS, params, info, where) != kindBits {
				c.errf(st.Pos, "%s: assigning non-numeric value to %s", where, st.LHS)
			}
		case *ast.CallStmt:
			c.checkCallStmt(st, params, info, where)
		case *ast.IfStmt:
			if c.checkExpr(st.Cond, params, info, where) != kindBool {
				c.errf(st.Pos, "%s: if condition is not boolean", where)
			}
			c.stmts(st.Then, params, info, where)
			c.stmts(st.Else, params, info, where)
		}
	}
}

func (c *checker) checkCallStmt(st *ast.CallStmt, params map[string]int, info *ActionInfo, where string) {
	if st.Recv == "" {
		if argc, ok := builtinStmts[st.Method]; ok {
			if len(st.Args) != argc {
				c.errf(st.Pos, "%s: %s takes %d arguments", where, st.Method, argc)
			}
			info.Builtins[st.Method] = true
			// Builtins touch intrinsic metadata.
			switch st.Method {
			case "drop":
				info.Writes["istd.drop"] = true
			case "to_cpu":
				info.Writes["istd.to_cpu"] = true
			case "srh_advance", "srh_pop":
				info.Writes["ipv6.dst_addr"] = true
			}
			return
		}
		c.errf(st.Pos, "%s: unknown builtin %q", where, st.Method)
		return
	}
	switch st.Method {
	case "write":
		if _, ok := c.d.Registers[st.Recv]; !ok {
			c.errf(st.Pos, "%s: write on unknown register %q", where, st.Recv)
			return
		}
		info.RegistersWritten[st.Recv] = true
		if len(st.Args) != 2 {
			c.errf(st.Pos, "%s: %s.write takes (index, value)", where, st.Recv)
			return
		}
		for _, a := range st.Args {
			if c.checkExpr(a, params, info, where) != kindBits {
				c.errf(st.Pos, "%s: register write arguments must be numeric", where)
			}
		}
	case "apply":
		c.errf(st.Pos, "%s: table apply is only allowed in a stage matcher", where)
	default:
		c.errf(st.Pos, "%s: unknown call %s.%s", where, st.Recv, st.Method)
	}
}

func (c *checker) tables() {
	for _, t := range c.d.Prog.Tables {
		if _, dup := c.d.Tables[t.Name]; dup {
			c.errf(t.Pos, "duplicate table %q", t.Name)
			continue
		}
		info := &TableInfo{Def: t}
		hashCount := 0
		lpmCount := 0
		for _, k := range t.Keys {
			kind, err := match.ParseKind(k.Kind)
			if err != nil {
				c.errf(k.Pos, "table %q: %v", t.Name, err)
				continue
			}
			fi, err := c.d.ResolveField(k.Field)
			if err != nil {
				c.errors = append(c.errors, fmt.Errorf("table %q: %v", t.Name, err))
				continue
			}
			info.Keys = append(info.Keys, KeyInfo{Name: k.Field.String(), Field: fi, Kind: kind})
			info.KeyWidth += fi.Width
			switch kind {
			case match.Hash:
				hashCount++
			case match.LPM:
				lpmCount++
			}
		}
		if len(info.Keys) == 0 {
			c.errf(t.Pos, "table %q has no key", t.Name)
		}
		if lpmCount > 1 || (lpmCount == 1 && len(info.Keys) != 1) {
			c.errf(t.Pos, "table %q: an lpm key must be the table's only key", t.Name)
		}
		if hashCount > 0 {
			if hashCount != len(info.Keys) {
				c.errf(t.Pos, "table %q: hash keys cannot be mixed with other kinds", t.Name)
			} else if len(info.Keys) < 2 {
				c.errf(t.Pos, "table %q: a selector table needs a group key and at least one hashed key", t.Name)
			} else {
				info.IsSelector = true
			}
		}
		for _, an := range t.Actions {
			if _, ok := c.d.Actions[an]; !ok && c.d.Prog.Action(an) == nil && an != NoActionName {
				c.errf(t.Pos, "table %q references unknown action %q", t.Name, an)
			}
		}
		if t.DefaultAction != "" {
			if _, ok := c.d.Actions[t.DefaultAction]; !ok && c.d.Prog.Action(t.DefaultAction) == nil && t.DefaultAction != NoActionName {
				c.errf(t.Pos, "table %q has unknown default action %q", t.Name, t.DefaultAction)
			}
		}
		if t.Size <= 0 {
			c.errf(t.Pos, "table %q has non-positive size %d", t.Name, t.Size)
		}
		c.d.Tables[t.Name] = info
	}
}

func (c *checker) stages() {
	addPipe := func(pipe *ast.Pipe, name string) {
		if pipe == nil {
			return
		}
		for _, s := range pipe.Stages {
			if _, dup := c.d.Stages[s.Name]; dup {
				c.errf(s.Pos, "duplicate stage %q", s.Name)
				continue
			}
			info := &StageInfo{
				Def: s, Pipe: name,
				Reads:  map[string]bool{},
				Writes: map[string]bool{},
			}
			c.checkStage(s, info)
			c.d.Stages[s.Name] = info
			c.d.StageOrder = append(c.d.StageOrder, s.Name)
		}
	}
	addPipe(c.d.Prog.Ingress, "ingress")
	addPipe(c.d.Prog.Egress, "egress")
	// Floating snippet stages carry no pipe until linked.
	for _, s := range c.d.Prog.Floating {
		if _, dup := c.d.Stages[s.Name]; dup {
			c.errf(s.Pos, "duplicate stage %q", s.Name)
			continue
		}
		info := &StageInfo{
			Def: s, Pipe: "",
			Reads:  map[string]bool{},
			Writes: map[string]bool{},
		}
		c.checkStage(s, info)
		c.d.Stages[s.Name] = info
		c.d.StageOrder = append(c.d.StageOrder, s.Name)
	}
}

func (c *checker) checkStage(s *ast.StageDef, info *StageInfo) {
	where := fmt.Sprintf("stage %q", s.Name)
	for _, hn := range s.Parser {
		if _, ok := c.d.InstanceByName[hn]; !ok {
			c.errf(s.Pos, "%s: parser references unknown header instance %q", where, hn)
			continue
		}
		info.ParsesNew = append(info.ParsesNew, hn)
	}
	// Matcher: walk statements collecting applies and condition reads.
	scratch := &ActionInfo{
		Reads: info.Reads, Writes: info.Writes,
		RegistersRead: map[string]bool{}, RegistersWritten: map[string]bool{},
		Builtins: map[string]bool{},
	}
	var walk func(body []ast.Stmt)
	walk = func(body []ast.Stmt) {
		for _, st := range body {
			switch x := st.(type) {
			case *ast.EmptyStmt:
			case *ast.CallStmt:
				if x.Method != "apply" || x.Recv == "" {
					c.errf(x.Position(), "%s: matcher only allows table.apply(), found %s.%s", where, x.Recv, x.Method)
					continue
				}
				ti, ok := c.d.Tables[x.Recv]
				if !ok {
					c.errf(x.Position(), "%s: apply of unknown table %q", where, x.Recv)
					continue
				}
				info.Tables = append(info.Tables, x.Recv)
				for _, k := range ti.Keys {
					info.Reads[k.Name] = true
				}
			case *ast.IfStmt:
				if c.checkExpr(x.Cond, nil, scratch, where) != kindBool {
					c.errf(x.Pos, "%s: matcher condition is not boolean", where)
				}
				walk(x.Then)
				walk(x.Else)
			default:
				c.errf(st.Position(), "%s: matcher only allows apply and if statements", where)
			}
		}
	}
	walk(s.Matcher)
	// Executor arms.
	seenTags := make(map[uint64]bool)
	seenDefault := false
	for _, arm := range s.Exec {
		if arm.Default {
			if seenDefault {
				c.errf(arm.Pos, "%s: duplicate default executor arm", where)
			}
			seenDefault = true
		} else {
			if seenTags[arm.Tag] {
				c.errf(arm.Pos, "%s: duplicate executor tag %d", where, arm.Tag)
			}
			if arm.Tag == 0 {
				c.errf(arm.Pos, "%s: executor tag 0 is reserved for miss (use default)", where)
			}
			seenTags[arm.Tag] = true
		}
		ai, ok := c.d.Actions[arm.Action]
		if !ok {
			c.errf(arm.Pos, "%s: executor references unknown action %q", where, arm.Action)
			continue
		}
		for f := range ai.Reads {
			info.Reads[f] = true
		}
		for f := range ai.Writes {
			info.Writes[f] = true
		}
		if ai.Builtins["srh_pop"] {
			info.PopsHeaders = true
		}
	}
}

func (c *checker) funcs() {
	uf := c.d.Prog.Funcs
	if uf == nil {
		return
	}
	seen := make(map[string]bool)
	owned := make(map[string]string)
	for _, f := range uf.Funcs {
		if seen[f.Name] {
			c.errf(f.Pos, "duplicate function %q", f.Name)
			continue
		}
		seen[f.Name] = true
		for _, sn := range f.Stages {
			if _, ok := c.d.Stages[sn]; !ok {
				c.errf(f.Pos, "function %q references unknown stage %q", f.Name, sn)
				continue
			}
			if prev, dup := owned[sn]; dup {
				c.errf(f.Pos, "stage %q belongs to both function %q and %q", sn, prev, f.Name)
			}
			owned[sn] = f.Name
		}
	}
	if uf.IngressEntry != "" {
		if si, ok := c.d.Stages[uf.IngressEntry]; !ok {
			c.errf(uf.Pos, "ingress_entry references unknown stage %q", uf.IngressEntry)
		} else if si.Pipe != "ingress" {
			c.errf(uf.Pos, "ingress_entry %q is not an ingress stage", uf.IngressEntry)
		}
	}
	if uf.EgressEntry != "" {
		if si, ok := c.d.Stages[uf.EgressEntry]; !ok {
			c.errf(uf.Pos, "egress_entry references unknown stage %q", uf.EgressEntry)
		} else if si.Pipe != "egress" {
			c.errf(uf.Pos, "egress_entry %q is not an egress stage", uf.EgressEntry)
		}
	}
}

// FuncOfStage reports which user function owns a stage, or "".
func (d *Design) FuncOfStage(stage string) string {
	if d.Prog.Funcs == nil {
		return ""
	}
	for _, f := range d.Prog.Funcs.Funcs {
		for _, s := range f.Stages {
			if s == stage {
				return f.Name
			}
		}
	}
	return ""
}

// IngressStages returns ingress stage names in declaration order.
func (d *Design) IngressStages() []string {
	var out []string
	for _, n := range d.StageOrder {
		if d.Stages[n].Pipe == "ingress" {
			out = append(out, n)
		}
	}
	return out
}

// EgressStages returns egress stage names in declaration order.
func (d *Design) EgressStages() []string {
	var out []string
	for _, n := range d.StageOrder {
		if d.Stages[n].Pipe == "egress" {
			out = append(out, n)
		}
	}
	return out
}

// SortedTableNames returns table names sorted for deterministic output.
func (d *Design) SortedTableNames() []string {
	out := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
