package sem

import (
	"os"
	"strings"
	"testing"

	"ipsa/internal/match"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
)

func analyzeFile(t *testing.T, name string) *Design {
	t.Helper()
	src, err := os.ReadFile("../../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(name, string(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func analyzeSrc(t *testing.T, src string) (*Design, error) {
	t.Helper()
	prog, err := parser.Parse("test.rp4", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func TestAnalyzeBaseDesign(t *testing.T) {
	d := analyzeFile(t, "base_l2l3.rp4")
	// Instances auto-created, one per header type.
	if len(d.Instances) != 5 {
		t.Fatalf("instances = %d", len(d.Instances))
	}
	eth := d.InstanceByName["ethernet"]
	if eth == nil || eth.Width != 112 {
		t.Fatalf("ethernet instance: %+v", eth)
	}
	// Metadata layout: istd first, then meta struct.
	istd := d.MetaFields["istd.in_port"]
	if istd.BitOff != 0 || istd.Width != 16 {
		t.Errorf("istd.in_port: %+v", istd)
	}
	iif := d.MetaFields["meta.iif"]
	if iif.BitOff != 34 || iif.Width != 16 {
		t.Errorf("meta.iif: %+v (istd is 34 bits)", iif)
	}
	if d.MetaBytes() <= 0 {
		t.Error("no metadata bytes")
	}
	// Tables resolved.
	lpm := d.Tables["ipv4_lpm"]
	if lpm == nil || lpm.Keys[0].Kind != match.LPM || lpm.KeyWidth != 32 {
		t.Fatalf("ipv4_lpm: %+v", lpm)
	}
	host := d.Tables["ipv4_host"]
	if host == nil || host.KeyWidth != 48 { // vrf 16 + dst 32
		t.Fatalf("ipv4_host: %+v", host)
	}
	// Stage dependency footprints.
	nh := d.Stages["nexthop"]
	if nh == nil || nh.Pipe != "ingress" {
		t.Fatalf("nexthop stage: %+v", nh)
	}
	if !nh.Reads["meta.nexthop"] || !nh.Writes["meta.bd"] || !nh.Writes["ethernet.dst_addr"] {
		t.Errorf("nexthop footprint: reads %v writes %v", nh.Reads, nh.Writes)
	}
	if got := d.FuncOfStage("nexthop"); got != "nexthop_resolve" {
		t.Errorf("FuncOfStage = %q", got)
	}
	if len(d.IngressStages()) != 8 || len(d.EgressStages()) != 2 {
		t.Errorf("stage partition: %v / %v", d.IngressStages(), d.EgressStages())
	}
	// NoAction implicitly defined.
	if _, ok := d.Actions["NoAction"]; !ok {
		t.Error("NoAction not implicitly defined")
	}
}

func TestAnalyzeECMPSnippet(t *testing.T) {
	// The snippet references base-design names, so analyze it merged with
	// the headers/structs it needs.
	src, _ := os.ReadFile("../../../testdata/base_l2l3.rp4")
	snip, _ := os.ReadFile("../../../testdata/ecmp.rp4")
	// Strip the duplicate action from the snippet for this merged parse.
	snippet := strings.Replace(string(snip),
		"action set_bd_dmac(bit<16> bd, bit<48> dmac) {\n    meta.bd = bd;\n    ethernet.dst_addr = dmac;\n}", "", 1)
	prog, err := parser.Parse("merged.rp4", string(src)+"\n"+snippet)
	if err != nil {
		t.Fatal(err)
	}
	// Two user_funcs sections would both have parsed; the snippet's
	// replaces the base one in this simple concatenation, so restore.
	d, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	ecmp := d.Tables["ecmp_ipv4"]
	if ecmp == nil || !ecmp.IsSelector {
		t.Fatalf("ecmp_ipv4 not a selector table: %+v", ecmp)
	}
	st := d.Stages["ecmp_stage"]
	if st == nil || st.Pipe != "" {
		t.Fatalf("ecmp_stage: %+v", st)
	}
	if len(st.Tables) != 2 {
		t.Errorf("ecmp_stage tables: %v", st.Tables)
	}
	if !st.Reads["meta.nexthop"] || !st.Reads["ipv4.dst_addr"] {
		t.Errorf("ecmp_stage reads: %v", st.Reads)
	}
}

func TestAnalyzeFlowProbe(t *testing.T) {
	src, _ := os.ReadFile("../../../testdata/base_l2l3.rp4")
	snip, _ := os.ReadFile("../../../testdata/flowprobe.rp4")
	prog, err := parser.Parse("merged.rp4", string(src)+"\n"+string(snip))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registers["flow_cnt"]; !ok {
		t.Fatal("flow_cnt register missing")
	}
	pc := d.Actions["probe_count"]
	if pc == nil {
		t.Fatal("probe_count missing")
	}
	if !pc.RegistersRead["flow_cnt"] || !pc.RegistersWritten["flow_cnt"] {
		t.Errorf("register footprint: %v / %v", pc.RegistersRead, pc.RegistersWritten)
	}
	if !pc.Builtins["to_cpu"] {
		t.Errorf("builtins: %v", pc.Builtins)
	}
	if !pc.Writes["pmeta.probe_mark"] {
		t.Errorf("writes: %v", pc.Writes)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"dup header", `headers { header h { bit<8> f; } header h { bit<8> f; } }`, "duplicate header"},
		{"dup field", `headers { header h { bit<8> f; bit<8> f; } }`, "duplicate field"},
		{"bad selector", `headers { header h { bit<8> f; implicit parser (zz) { } } }`, "unknown field"},
		{"dup tag", `headers { header h { bit<8> f; implicit parser (f) { 1: h; 1: h; } } }`, "duplicate tag"},
		{"bad transition", `headers { header h { bit<8> f; implicit parser (f) { 1: nope; } } }`, "unknown instance"},
		{"bad instance type", `headers { header h { bit<8> f; } } header_vector { ghost g; }`, "unknown type"},
		{"dup instance", `headers { header h { bit<8> f; } } header_vector { h a; h a; }`, "duplicate header instance"},
		{"meta clash", `headers { header h { bit<8> f; } } structs { struct s { bit<8> g; } h; }`, "collides"},
		{"dup register", "register<bit<8>>(4) r;\nregister<bit<8>>(4) r;", "duplicate register"},
		{"wide register", `register<bit<128>>(4) r;`, "exceeds 64"},
		{"dup action", `action a() { } action a() { }`, "duplicate action"},
		{"dup param", `action a(bit<8> x, bit<8> x) { }`, "duplicate parameter"},
		{"unknown name", `action a() { meta.q = zz; } structs { struct m { bit<8> q; } meta; }`, "unknown name"},
		{"assign to param", `action a(bit<8> x) { x = 1; }`, "cannot assign"},
		{"unknown field write", `action a() { ghost.f = 1; }`, "unknown field"},
		{"bad isValid", `action a() { if (nothdr.isValid()) { drop(); } }`, "unknown header"},
		{"bad register call", `action a() { meta.q = nor.read(0); } structs { struct m { bit<8> q; } meta; }`, "unknown register"},
		{"apply in action", `action a() { t.apply(); }`, "only allowed in a stage matcher"},
		{"unknown builtin", `action a() { frobnicate(); }`, "unknown builtin"},
		{"no key", `table t { size = 4; }`, "no key"},
		{"bad kind", `headers { header h { bit<8> f; } } table t { key = { h.f: fuzzy; } size = 4; }`, "unknown match kind"},
		{"multi lpm", `headers { header h { bit<8> f; bit<8> g; } } table t { key = { h.f: lpm; h.g: lpm; } size = 4; }`, "only key"},
		{"mixed hash", `headers { header h { bit<8> f; bit<8> g; } } table t { key = { h.f: hash; h.g: exact; } size = 4; }`, "cannot be mixed"},
		{"single hash", `headers { header h { bit<8> f; } } table t { key = { h.f: hash; } size = 4; }`, "group key"},
		{"zero size", `headers { header h { bit<8> f; } } table t { key = { h.f: exact; } }`, "non-positive size"},
		{"unknown action ref", `headers { header h { bit<8> f; } } table t { key = { h.f: exact; } actions = { ghost; } size = 4; }`, "unknown action"},
		{"dup stage", "control rP4_Ingress { stage s { executor { default: NoAction; } } stage s { executor { default: NoAction; } } }", "duplicate stage"},
		{"bad apply", `control rP4_Ingress { stage s { matcher { nosuch.apply(); } } }`, "unknown table"},
		{"bad matcher call", `control rP4_Ingress { stage s { matcher { drop(); } } }`, "only allows table.apply()"},
		{"tag zero", `control rP4_Ingress { stage s { executor { 0: NoAction; } } }`, "reserved"},
		{"dup arm", `control rP4_Ingress { stage s { executor { 1: NoAction; 1: NoAction; } } }`, "duplicate executor tag"},
		{"dup default", `control rP4_Ingress { stage s { executor { default: NoAction; default: NoAction; } } }`, "duplicate default"},
		{"unknown exec action", `control rP4_Ingress { stage s { executor { 1: ghost; } } }`, "unknown action"},
		{"bad func stage", `user_funcs { func f { nosuch } }`, "unknown stage"},
		{"stage two funcs", `control rP4_Ingress { stage s { executor { default: NoAction; } } } user_funcs { func f { s } func g { s } }`, "belongs to both"},
		{"bad ingress entry", `user_funcs { ingress_entry: nosuch; }`, "unknown stage"},
		{"egress entry wrong pipe", `control rP4_Ingress { stage s { executor { default: NoAction; } } } user_funcs { egress_entry: s; }`, "not an egress stage"},
		{"bool misuse", `action a() { meta.q = 1 && 2; } structs { struct m { bit<8> q; } meta; }`, "boolean operands"},
		{"cmp misuse", `action a() { if (ipv4.isValid() == 1) { drop(); } } headers { header ipv4 { bit<8> f; } }`, "numeric operands"},
		{"if not bool", `action a() { if (1 + 1) { drop(); } }`, "not boolean"},
	}
	for _, c := range cases {
		_, err := analyzeSrc(t, c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestResolveField(t *testing.T) {
	d := analyzeFile(t, "base_l2l3.rp4")
	fi, err := d.ResolveField(&ast.FieldRef{Parts: []string{"ipv4", "ttl"}})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Space != SpaceHeader || fi.BitOff != 64 || fi.Width != 8 {
		t.Errorf("ipv4.ttl: %+v", fi)
	}
	fi, err = d.ResolveField(&ast.FieldRef{Parts: []string{"meta", "nexthop"}})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Space != SpaceMeta || fi.Width != 32 {
		t.Errorf("meta.nexthop: %+v", fi)
	}
	if _, err := d.ResolveField(&ast.FieldRef{Parts: []string{"one"}}); err == nil {
		t.Error("one-part ref accepted")
	}
	if _, err := d.ResolveField(&ast.FieldRef{Parts: []string{"ipv4", "nope"}}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSortedTableNames(t *testing.T) {
	d := analyzeFile(t, "base_l2l3.rp4")
	names := d.SortedTableNames()
	if len(names) != 10 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestFloatingStageHasNoPipe(t *testing.T) {
	d, err := analyzeSrc(t, `
headers { header h { bit<8> f; } }
table t { key = { h.f: exact; } size = 4; }
stage s {
    parser { h };
    matcher { t.apply(); };
    executor { default: NoAction; };
}
user_funcs { func f { s } }`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stages["s"].Pipe != "" {
		t.Errorf("floating stage pipe = %q", d.Stages["s"].Pipe)
	}
	if d.FuncOfStage("s") != "f" {
		t.Errorf("func = %q", d.FuncOfStage("s"))
	}
}
