// Package ast defines the abstract syntax tree of rP4 programs (paper
// Fig. 2). The same statement/expression nodes are reused by the P4-subset
// front end, whose control blocks are decomposed into rP4 stages by rp4fc.
package ast

import (
	"fmt"
	"strings"

	"ipsa/internal/rp4/token"
)

// Program is a complete rP4 compilation unit.
type Program struct {
	Consts    []*ConstDef
	Headers   []*HeaderDef
	Structs   []*StructDef
	Instances []*HeaderInstance // header_vector; empty means one instance per header type
	Registers []*RegisterDef
	Actions   []*ActionDef
	Tables    []*TableDef
	Ingress   *Pipe
	Egress    *Pipe
	// Floating holds top-level stages from incremental-update snippets
	// that have not yet been linked into a pipe.
	Floating []*StageDef
	Funcs    *UserFuncs
}

// Header returns the header definition with the given name.
func (p *Program) Header(name string) *HeaderDef {
	for _, h := range p.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Table returns the table definition with the given name.
func (p *Program) Table(name string) *TableDef {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Action returns the action definition with the given name.
func (p *Program) Action(name string) *ActionDef {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Stage returns the stage with the given name from either pipe, along with
// the pipe it belongs to ("ingress" or "egress").
func (p *Program) Stage(name string) (*StageDef, string) {
	if p.Ingress != nil {
		for _, s := range p.Ingress.Stages {
			if s.Name == name {
				return s, "ingress"
			}
		}
	}
	if p.Egress != nil {
		for _, s := range p.Egress.Stages {
			if s.Name == name {
				return s, "egress"
			}
		}
	}
	for _, s := range p.Floating {
		if s.Name == name {
			return s, ""
		}
	}
	return nil, ""
}

// ConstDef declares a named constant: `const bit<N> NAME = value;`.
type ConstDef struct {
	Name  string
	Width int
	Value uint64
	Pos   token.Pos
}

// HeaderDef declares a header type with its fields and implicit parser
// (the per-header transition table that powers distributed parsing).
type HeaderDef struct {
	Name   string
	Fields []*FieldDef
	Parser *ImplicitParser // nil if the header is terminal
	VarLen *VarLenSpec     // nil for fixed-length headers
	Pos    token.Pos
}

// VarLenSpec declares a variable-length header:
// total bytes = BaseBytes + value(Field) * UnitBytes
// (`varlen (hdr_ext_len) 8 8;` for the SRH).
type VarLenSpec struct {
	Field     string
	BaseBytes int
	UnitBytes int
	Pos       token.Pos
}

// Width returns the header width in bits.
func (h *HeaderDef) Width() int {
	w := 0
	for _, f := range h.Fields {
		w += f.Width
	}
	return w
}

// Field returns the named field and its bit offset within the header.
func (h *HeaderDef) Field(name string) (*FieldDef, int) {
	off := 0
	for _, f := range h.Fields {
		if f.Name == name {
			return f, off
		}
		off += f.Width
	}
	return nil, 0
}

// FieldDef is one bit<N> field.
type FieldDef struct {
	Name  string
	Width int
	Pos   token.Pos
}

// ImplicitParser is the `implicit parser (fields) { tag: next; ... }`
// clause: given the value of the selector fields, which header follows.
type ImplicitParser struct {
	// SelectorFields are field names within the enclosing header whose
	// concatenated value selects the transition.
	SelectorFields []string
	Transitions    []*Transition
	Pos            token.Pos
}

// Transition maps one selector value to the next header.
type Transition struct {
	Tag  uint64
	Next string // header instance name
	Pos  token.Pos
}

// StructDef declares a struct; the optional Alias instantiates it (the
// paper's grammar allows `struct S {...} alias;`, used for metadata).
type StructDef struct {
	Name   string
	Fields []*FieldDef
	Alias  string
	Pos    token.Pos
}

// Width returns the struct width in bits.
func (s *StructDef) Width() int {
	w := 0
	for _, f := range s.Fields {
		w += f.Width
	}
	return w
}

// HeaderInstance names one header instance in the header vector.
type HeaderInstance struct {
	Type string
	Name string
	Pos  token.Pos
}

// RegisterDef declares a stateful register array:
// `register<bit<W>>(size) name;`.
type RegisterDef struct {
	Name  string
	Width int
	Size  int
	Pos   token.Pos
}

// ActionDef declares an action with typed parameters.
type ActionDef struct {
	Name   string
	Params []*Param
	Body   []Stmt
	Pos    token.Pos
}

// Param is one action parameter.
type Param struct {
	Name  string
	Width int
	Pos   token.Pos
}

// TableDef declares a match-action table.
type TableDef struct {
	Name          string
	Keys          []*TableKey
	Actions       []string
	Size          int
	DefaultAction string
	Pos           token.Pos
}

// String names the table for diagnostics.
func (t *TableDef) String() string { return "table " + t.Name }

// TableKey is one `expr : match_kind` key component.
type TableKey struct {
	Field *FieldRef
	Kind  string // exact | lpm | ternary | range | hash
	Pos   token.Pos
}

// Pipe is rP4_Ingress or rP4_Egress.
type Pipe struct {
	Name   string
	Stages []*StageDef
	Pos    token.Pos
}

// StageDef is one parse-match-action stage, the unit mapped onto a TSP.
type StageDef struct {
	Name    string
	Parser  []string // header instances this stage needs parsed
	Matcher []Stmt   // apply/if statements
	Exec    []*ExecutorArm
	Pos     token.Pos
}

// ExecutorArm maps a switch tag (the per-table action index of the matched
// entry) to the action to execute; Default handles table miss.
type ExecutorArm struct {
	Default bool
	Tag     uint64
	Action  string
	Pos     token.Pos
}

// UserFuncs groups stages into named functions and declares the pipeline
// entry points.
type UserFuncs struct {
	Funcs        []*FuncDef
	IngressEntry string
	EgressEntry  string
	Pos          token.Pos
}

// FuncDef names a loadable/offloadable function made of stages.
type FuncDef struct {
	Name   string
	Stages []string
	Pos    token.Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() token.Pos
}

// AssignStmt is `lhs = expr;`.
type AssignStmt struct {
	LHS *FieldRef
	RHS Expr
	Pos token.Pos
}

// CallStmt is a procedure call: `table.apply();`, `drop();`,
// `reg.write(i, v);`, `push_header(srh);` ...
type CallStmt struct {
	Recv   string // receiver instance name, "" for bare calls
	Method string
	Args   []Expr
	Pos    token.Pos
}

// IfStmt is `if (cond) {...} else {...}`; Else may hold another IfStmt for
// else-if chains.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  token.Pos
}

// EmptyStmt is a lone `;` (the grammar's "else ;" arm).
type EmptyStmt struct {
	Pos token.Pos
}

func (*AssignStmt) stmtNode() {}
func (*CallStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*EmptyStmt) stmtNode()  {}

// Position returns the statement's source position.
func (s *AssignStmt) Position() token.Pos { return s.Pos }

// Position returns the statement's source position.
func (s *CallStmt) Position() token.Pos { return s.Pos }

// Position returns the statement's source position.
func (s *IfStmt) Position() token.Pos { return s.Pos }

// Position returns the statement's source position.
func (s *EmptyStmt) Position() token.Pos { return s.Pos }

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() token.Pos
}

// NumberLit is an integer literal.
type NumberLit struct {
	Val uint64
	Pos token.Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Val bool
	Pos token.Pos
}

// FieldRef references a field (`ethernet.dst_addr`, `meta.bd`), a bare
// action parameter or a bare local name.
type FieldRef struct {
	Parts []string
	Pos   token.Pos
}

// String joins the reference parts with dots.
func (f *FieldRef) String() string { return strings.Join(f.Parts, ".") }

// CallExpr is a value-returning call: `ipv4.isValid()`, `reg.read(i)`,
// `hash(a, b)`.
type CallExpr struct {
	Recv   string
	Method string
	Args   []Expr
	Pos    token.Pos
}

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	Op  token.Type
	X   Expr
	Pos token.Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   token.Type
	X, Y Expr
	Pos  token.Pos
}

func (*NumberLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*FieldRef) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Position returns the expression's source position.
func (e *NumberLit) Position() token.Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BoolLit) Position() token.Pos { return e.Pos }

// Position returns the expression's source position.
func (e *FieldRef) Position() token.Pos { return e.Pos }

// Position returns the expression's source position.
func (e *CallExpr) Position() token.Pos { return e.Pos }

// Position returns the expression's source position.
func (e *UnaryExpr) Position() token.Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BinaryExpr) Position() token.Pos { return e.Pos }

// ExprString renders an expression back to (approximately) source form for
// diagnostics and compiler dumps.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", x.Val)
	case *BoolLit:
		return fmt.Sprintf("%t", x.Val)
	case *FieldRef:
		return x.String()
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		recv := ""
		if x.Recv != "" {
			recv = x.Recv + "."
		}
		return fmt.Sprintf("%s%s(%s)", recv, x.Method, strings.Join(args, ", "))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, ExprString(x.X))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), x.Op, ExprString(x.Y))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
