package parser

import "testing"

// FuzzParse is a native fuzz target (go test -fuzz=FuzzParse); under plain
// `go test` it runs the seed corpus as regression tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"headers { header h { bit<8> f; } }",
		"table t { key = { h.f: exact; } size = 4; }",
		"control rP4_Ingress { stage s { matcher { t.apply(); }; } }",
		"register<bit<32>>(4) r;",
		"action a(bit<8> x) { meta.y = x + 1; }",
		"headers { header h { bit<8> f; varlen (f) 8 8; implicit parser (f) { 1: h; } } }",
		"user_funcs { func f { s } ingress_entry: s; }",
		"stage s { executor { 1: a; default: NoAction; }; }",
		"/* unterminated",
		"0xZZ",
		"header_vector { h a; h b; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic or hang; errors are fine.
		_, _ = Parse("fuzz.rp4", src)
	})
}
