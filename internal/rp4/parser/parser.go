// Package parser implements a recursive-descent parser for rP4 following
// the EBNF of the paper's Fig. 2. Top-level sections may appear in any
// order; separators inside sub-blocks accept both the comma style of the
// paper's Fig. 5(a) listing (`parser { ipv4, ipv6 };`) and semicolons.
package parser

import (
	"fmt"
	"strings"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/lexer"
	"ipsa/internal/rp4/token"
)

// Parser holds parse state.
type Parser struct {
	toks []token.Token
	pos  int
	file string
}

// Parse parses a complete rP4 program.
func Parse(file, src string) (*ast.Program, error) {
	toks, err := lexer.New(file, src).All()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: file}
	return p.program()
}

// ParseSnippet parses a partial program (e.g. an incremental-update file
// holding only tables, actions, stages and user_funcs). It is the same
// grammar; the distinction is semantic and enforced later.
func ParseSnippet(file, src string) (*ast.Program, error) {
	return Parse(file, src)
}

func (p *Parser) cur() token.Token {
	if p.pos >= len(p.toks) {
		last := token.Pos{File: p.file, Line: 0, Col: 0}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return token.Token{Type: token.EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() token.Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) accept(t token.Type) bool {
	if p.cur().Type == t {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(t token.Type) (token.Token, error) {
	c := p.cur()
	if c.Type != t {
		return c, fmt.Errorf("%s: expected %s, found %s", c.Pos, t, c)
	}
	p.pos++
	return c, nil
}

func (p *Parser) ident() (string, token.Pos, error) {
	c := p.cur()
	if c.Type != token.Ident {
		return "", c.Pos, fmt.Errorf("%s: expected identifier, found %s", c.Pos, c)
	}
	p.pos++
	return c.Lit, c.Pos, nil
}

func (p *Parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for {
		c := p.cur()
		switch c.Type {
		case token.EOF:
			return prog, nil
		case token.KwHeaders:
			if err := p.headersSection(prog); err != nil {
				return nil, err
			}
		case token.KwStructs:
			if err := p.structsSection(prog); err != nil {
				return nil, err
			}
		case token.KwHeaderVector:
			if err := p.headerVectorSection(prog); err != nil {
				return nil, err
			}
		case token.KwConst:
			c, err := p.constDef()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, c)
		case token.KwRegister:
			r, err := p.registerDef()
			if err != nil {
				return nil, err
			}
			prog.Registers = append(prog.Registers, r)
		case token.KwAction:
			a, err := p.actionDef()
			if err != nil {
				return nil, err
			}
			prog.Actions = append(prog.Actions, a)
		case token.KwTable:
			t, err := p.tableDef()
			if err != nil {
				return nil, err
			}
			prog.Tables = append(prog.Tables, t)
		case token.KwStage:
			// A top-level stage, as incremental-update snippets use
			// (paper Fig. 5a): it floats until a load script links it
			// into a pipe.
			s, err := p.stageDef()
			if err != nil {
				return nil, err
			}
			prog.Floating = append(prog.Floating, s)
		case token.KwControl:
			if err := p.controlSection(prog); err != nil {
				return nil, err
			}
		case token.KwUserFuncs:
			f, err := p.userFuncs()
			if err != nil {
				return nil, err
			}
			prog.Funcs = f
		default:
			return nil, fmt.Errorf("%s: unexpected %s at top level", c.Pos, c)
		}
	}
}

func (p *Parser) headersSection(prog *ast.Program) error {
	p.next() // headers
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	for !p.accept(token.RBrace) {
		if p.cur().Type != token.KwHeader {
			return fmt.Errorf("%s: expected header definition, found %s", p.cur().Pos, p.cur())
		}
		h, err := p.headerDef()
		if err != nil {
			return err
		}
		prog.Headers = append(prog.Headers, h)
	}
	return nil
}

func (p *Parser) headerDef() (*ast.HeaderDef, error) {
	start := p.next() // header
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	h := &ast.HeaderDef{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		switch p.cur().Type {
		case token.KwBit:
			f, err := p.fieldDef()
			if err != nil {
				return nil, err
			}
			h.Fields = append(h.Fields, f)
		case token.KwImplicit:
			ip, err := p.implicitParser()
			if err != nil {
				return nil, err
			}
			if h.Parser != nil {
				return nil, fmt.Errorf("%s: header %s has two implicit parsers", ip.Pos, name)
			}
			h.Parser = ip
		case token.Ident:
			if p.cur().Lit != "varlen" {
				return nil, fmt.Errorf("%s: expected field, varlen or implicit parser in header %s, found %s", p.cur().Pos, name, p.cur())
			}
			vl, err := p.varLenSpec()
			if err != nil {
				return nil, err
			}
			if h.VarLen != nil {
				return nil, fmt.Errorf("%s: header %s has two varlen clauses", vl.Pos, name)
			}
			h.VarLen = vl
		default:
			return nil, fmt.Errorf("%s: expected field or implicit parser in header %s, found %s", p.cur().Pos, name, p.cur())
		}
	}
	return h, nil
}

func (p *Parser) fieldDef() (*ast.FieldDef, error) {
	start := p.cur()
	w, err := p.bitType()
	if err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.FieldDef{Name: name, Width: w, Pos: start.Pos}, nil
}

func (p *Parser) bitType() (int, error) {
	if _, err := p.expect(token.KwBit); err != nil {
		return 0, err
	}
	if _, err := p.expect(token.LAngle); err != nil {
		return 0, err
	}
	n, err := p.expect(token.Number)
	if err != nil {
		return 0, err
	}
	if err := p.closeAngle(); err != nil {
		return 0, err
	}
	if n.Val == 0 || n.Val > 2048 {
		return 0, fmt.Errorf("%s: bit width %d out of range [1,2048]", n.Pos, n.Val)
	}
	return int(n.Val), nil
}

// constDef parses `const bit<N> NAME = value;`.
func (p *Parser) constDef() (*ast.ConstDef, error) {
	start := p.next() // const
	w, err := p.bitType()
	if err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	v, err := p.expect(token.Number)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.ConstDef{Name: name, Width: w, Value: v.Val, Pos: start.Pos}, nil
}

// varLenSpec parses `varlen (field) base unit;` declaring a
// variable-length header whose total byte length is base + field*unit.
func (p *Parser) varLenSpec() (*ast.VarLenSpec, error) {
	start := p.next() // "varlen" ident
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	field, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	base, err := p.expect(token.Number)
	if err != nil {
		return nil, err
	}
	unit, err := p.expect(token.Number)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	return &ast.VarLenSpec{Field: field, BaseBytes: int(base.Val), UnitBytes: int(unit.Val), Pos: start.Pos}, nil
}

// closeAngle consumes a closing `>`. A `>>` token (produced when two
// closing angles of nested generics like register<bit<32>> touch) is split:
// the first `>` is consumed and the second remains pending.
func (p *Parser) closeAngle() error {
	c := p.cur()
	switch c.Type {
	case token.RAngle:
		p.pos++
		return nil
	case token.Shr:
		p.toks[p.pos].Type = token.RAngle
		return nil
	}
	return fmt.Errorf("%s: expected >, found %s", c.Pos, c)
}

func (p *Parser) implicitParser() (*ast.ImplicitParser, error) {
	start := p.next() // implicit
	if _, err := p.expect(token.KwParser); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	ip := &ast.ImplicitParser{Pos: start.Pos}
	for !p.accept(token.RParen) {
		name, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ip.SelectorFields = append(ip.SelectorFields, name)
		p.accept(token.Comma)
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	for !p.accept(token.RBrace) {
		tag, err := p.expect(token.Number)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		next, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.accept(token.Semicolon)
		ip.Transitions = append(ip.Transitions, &ast.Transition{Tag: tag.Val, Next: next, Pos: tag.Pos})
	}
	p.accept(token.Semicolon)
	return ip, nil
}

func (p *Parser) structsSection(prog *ast.Program) error {
	p.next() // structs
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	for !p.accept(token.RBrace) {
		if p.cur().Type != token.KwStruct {
			return fmt.Errorf("%s: expected struct definition, found %s", p.cur().Pos, p.cur())
		}
		start := p.next()
		name, _, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect(token.LBrace); err != nil {
			return err
		}
		s := &ast.StructDef{Name: name, Pos: start.Pos}
		for !p.accept(token.RBrace) {
			f, err := p.fieldDef()
			if err != nil {
				return err
			}
			s.Fields = append(s.Fields, f)
		}
		// Optional instance alias: `struct S { ... } meta;`
		if p.cur().Type == token.Ident {
			s.Alias, _, _ = p.ident()
		}
		p.accept(token.Semicolon)
		prog.Structs = append(prog.Structs, s)
	}
	return nil
}

func (p *Parser) headerVectorSection(prog *ast.Program) error {
	p.next() // header_vector
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	for !p.accept(token.RBrace) {
		typ, pos, err := p.ident()
		if err != nil {
			return err
		}
		name, _, err := p.ident()
		if err != nil {
			return err
		}
		if _, err := p.expect(token.Semicolon); err != nil {
			return err
		}
		prog.Instances = append(prog.Instances, &ast.HeaderInstance{Type: typ, Name: name, Pos: pos})
	}
	return nil
}

func (p *Parser) registerDef() (*ast.RegisterDef, error) {
	start := p.next() // register
	if _, err := p.expect(token.LAngle); err != nil {
		return nil, err
	}
	w, err := p.bitType()
	if err != nil {
		return nil, err
	}
	if err := p.closeAngle(); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	n, err := p.expect(token.Number)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semicolon); err != nil {
		return nil, err
	}
	if n.Val == 0 {
		return nil, fmt.Errorf("%s: register %s has zero size", start.Pos, name)
	}
	return &ast.RegisterDef{Name: name, Width: w, Size: int(n.Val), Pos: start.Pos}, nil
}

func (p *Parser) actionDef() (*ast.ActionDef, error) {
	start := p.next() // action
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	a := &ast.ActionDef{Name: name, Pos: start.Pos}
	for !p.accept(token.RParen) {
		w, err := p.bitType()
		if err != nil {
			return nil, err
		}
		pname, ppos, err := p.ident()
		if err != nil {
			return nil, err
		}
		a.Params = append(a.Params, &ast.Param{Name: pname, Width: w, Pos: ppos})
		p.accept(token.Comma)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *Parser) tableDef() (*ast.TableDef, error) {
	start := p.next() // table
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	t := &ast.TableDef{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		c := p.cur()
		switch c.Type {
		case token.KwKey:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				ref, err := p.fieldRef()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Colon); err != nil {
					return nil, err
				}
				kind, kpos, err := p.ident()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Semicolon); err != nil {
					return nil, err
				}
				t.Keys = append(t.Keys, &ast.TableKey{Field: ref, Kind: kind, Pos: kpos})
			}
			p.accept(token.Semicolon)
		case token.KwActions:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				an, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				t.Actions = append(t.Actions, an)
				if !p.accept(token.Semicolon) {
					p.accept(token.Comma)
				}
			}
			p.accept(token.Semicolon)
		case token.KwSize:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			n, err := p.expect(token.Number)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			t.Size = int(n.Val)
		case token.KwDefaultAction:
			p.next()
			if _, err := p.expect(token.Assign); err != nil {
				return nil, err
			}
			an, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			t.DefaultAction = an
		default:
			return nil, fmt.Errorf("%s: unexpected %s in table %s", c.Pos, c, name)
		}
	}
	return t, nil
}

func (p *Parser) controlSection(prog *ast.Program) error {
	start := p.next() // control
	name, _, err := p.ident()
	if err != nil {
		return err
	}
	pipe := &ast.Pipe{Name: name, Pos: start.Pos}
	if _, err := p.expect(token.LBrace); err != nil {
		return err
	}
	for !p.accept(token.RBrace) {
		if p.cur().Type != token.KwStage {
			return fmt.Errorf("%s: expected stage in control %s, found %s", p.cur().Pos, name, p.cur())
		}
		s, err := p.stageDef()
		if err != nil {
			return err
		}
		pipe.Stages = append(pipe.Stages, s)
	}
	switch strings.ToLower(name) {
	case "rp4_ingress":
		if prog.Ingress != nil {
			return fmt.Errorf("%s: duplicate control rP4_Ingress", start.Pos)
		}
		prog.Ingress = pipe
	case "rp4_egress":
		if prog.Egress != nil {
			return fmt.Errorf("%s: duplicate control rP4_Egress", start.Pos)
		}
		prog.Egress = pipe
	default:
		return fmt.Errorf("%s: control %q is neither rP4_Ingress nor rP4_Egress", start.Pos, name)
	}
	return nil
}

func (p *Parser) stageDef() (*ast.StageDef, error) {
	start := p.next() // stage
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	s := &ast.StageDef{Name: name, Pos: start.Pos}
	for !p.accept(token.RBrace) {
		c := p.cur()
		switch c.Type {
		case token.KwParser:
			p.next()
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			for !p.accept(token.RBrace) {
				hn, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				s.Parser = append(s.Parser, hn)
				if !p.accept(token.Comma) {
					p.accept(token.Semicolon)
				}
			}
			p.accept(token.Semicolon)
		case token.KwMatcher:
			p.next()
			stmts, err := p.block()
			if err != nil {
				return nil, err
			}
			p.accept(token.Semicolon)
			s.Matcher = stmts
		case token.KwExecutor:
			p.next()
			arms, err := p.executorArms()
			if err != nil {
				return nil, err
			}
			p.accept(token.Semicolon)
			s.Exec = arms
		default:
			return nil, fmt.Errorf("%s: unexpected %s in stage %s", c.Pos, c, name)
		}
	}
	return s, nil
}

func (p *Parser) executorArms() ([]*ast.ExecutorArm, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var arms []*ast.ExecutorArm
	for !p.accept(token.RBrace) {
		c := p.cur()
		arm := &ast.ExecutorArm{Pos: c.Pos}
		switch c.Type {
		case token.KwDefault:
			p.next()
			arm.Default = true
		case token.Number:
			p.next()
			arm.Tag = c.Val
		default:
			return nil, fmt.Errorf("%s: expected executor tag, found %s", c.Pos, c)
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		an, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		arm.Action = an
		p.accept(token.Semicolon)
		arms = append(arms, arm)
	}
	return arms, nil
}

func (p *Parser) userFuncs() (*ast.UserFuncs, error) {
	start := p.next() // user_funcs
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	uf := &ast.UserFuncs{Pos: start.Pos}
	for !p.accept(token.RBrace) {
		c := p.cur()
		switch c.Type {
		case token.KwFunc:
			p.next()
			name, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.LBrace); err != nil {
				return nil, err
			}
			f := &ast.FuncDef{Name: name, Pos: c.Pos}
			for !p.accept(token.RBrace) {
				sn, _, err := p.ident()
				if err != nil {
					return nil, err
				}
				f.Stages = append(f.Stages, sn)
				if !p.accept(token.Comma) {
					p.accept(token.Semicolon)
				}
			}
			p.accept(token.Semicolon)
			uf.Funcs = append(uf.Funcs, f)
		case token.KwIngressEntry:
			p.next()
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			sn, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			p.accept(token.Semicolon)
			uf.IngressEntry = sn
		case token.KwEgressEntry:
			p.next()
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
			sn, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			p.accept(token.Semicolon)
			uf.EgressEntry = sn
		default:
			return nil, fmt.Errorf("%s: unexpected %s in user_funcs", c.Pos, c)
		}
	}
	return uf, nil
}

// block parses `{ stmt* }`.
func (p *Parser) block() ([]ast.Stmt, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	for !p.accept(token.RBrace) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// statement parses one statement; used inside blocks and for brace-less if
// branches.
func (p *Parser) statement() (ast.Stmt, error) {
	c := p.cur()
	switch c.Type {
	case token.Semicolon:
		p.next()
		return &ast.EmptyStmt{Pos: c.Pos}, nil
	case token.KwIf:
		return p.ifStmt()
	case token.Ident:
		ref, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		switch p.cur().Type {
		case token.LParen:
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			recv, method := splitRecv(ref)
			return &ast.CallStmt{Recv: recv, Method: method, Args: args, Pos: c.Pos}, nil
		case token.Assign:
			p.next()
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Semicolon); err != nil {
				return nil, err
			}
			return &ast.AssignStmt{LHS: ref, RHS: rhs, Pos: c.Pos}, nil
		default:
			return nil, fmt.Errorf("%s: expected call or assignment after %s", p.cur().Pos, ref)
		}
	}
	return nil, fmt.Errorf("%s: expected statement, found %s", c.Pos, c)
}

func splitRecv(ref *ast.FieldRef) (recv, method string) {
	if len(ref.Parts) == 1 {
		return "", ref.Parts[0]
	}
	return strings.Join(ref.Parts[:len(ref.Parts)-1], "."), ref.Parts[len(ref.Parts)-1]
}

func (p *Parser) ifStmt() (ast.Stmt, error) {
	start := p.next() // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.branch()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: then, Pos: start.Pos}
	if p.accept(token.KwElse) {
		if p.cur().Type == token.KwIf {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []ast.Stmt{elif}
		} else {
			els, err := p.branch()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// branch parses either a braced block or a single statement.
func (p *Parser) branch() ([]ast.Stmt, error) {
	if p.cur().Type == token.LBrace {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, ok := s.(*ast.EmptyStmt); ok {
		return nil, nil
	}
	return []ast.Stmt{s}, nil
}

func (p *Parser) fieldRef() (*ast.FieldRef, error) {
	name, pos, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &ast.FieldRef{Parts: []string{name}, Pos: pos}
	for p.accept(token.Dot) {
		part, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Parts = append(ref.Parts, part)
	}
	return ref, nil
}

func (p *Parser) callArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.accept(token.RParen) {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(token.Comma) && p.cur().Type != token.RParen {
			return nil, fmt.Errorf("%s: expected , or ) in arguments, found %s", p.cur().Pos, p.cur())
		}
	}
	return args, nil
}

// Expression parsing with precedence climbing.

var binPrec = map[token.Type]int{
	token.OrOr:   1,
	token.AndAnd: 2,
	token.Eq:     3, token.Neq: 3,
	token.LAngle: 4, token.RAngle: 4, token.Leq: 4, token.Geq: 4,
	token.Pipe:  5,
	token.Caret: 6,
	token.Amp:   7,
	token.Shl:   8, token.Shr: 8,
	token.Plus: 9, token.Minus: 9,
	token.Star: 10, token.Slash: 10, token.Percent: 10,
}

func (p *Parser) expr() (ast.Expr, error) { return p.binExpr(0) }

func (p *Parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Type]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op.Type, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *Parser) unary() (ast.Expr, error) {
	c := p.cur()
	switch c.Type {
	case token.Not, token.Minus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: c.Type, X: x, Pos: c.Pos}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (ast.Expr, error) {
	c := p.cur()
	switch c.Type {
	case token.Number:
		p.next()
		return &ast.NumberLit{Val: c.Val, Pos: c.Pos}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Val: true, Pos: c.Pos}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Val: false, Pos: c.Pos}, nil
	case token.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case token.Ident:
		ref, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		if p.cur().Type == token.LParen {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			recv, method := splitRecv(ref)
			return &ast.CallExpr{Recv: recv, Method: method, Args: args, Pos: c.Pos}, nil
		}
		return ref, nil
	}
	return nil, fmt.Errorf("%s: expected expression, found %s", c.Pos, c)
}
