package parser

import (
	"os"
	"strings"
	"testing"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse("test.rp4", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBaseDesignFile(t *testing.T) {
	src, err := os.ReadFile("../../../testdata/base_l2l3.rp4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse("base_l2l3.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Headers) != 5 {
		t.Errorf("headers = %d, want 5", len(p.Headers))
	}
	if len(p.Tables) != 10 {
		t.Errorf("tables = %d, want 10", len(p.Tables))
	}
	if p.Ingress == nil || len(p.Ingress.Stages) != 8 {
		t.Fatalf("ingress stages wrong: %+v", p.Ingress)
	}
	if p.Egress == nil || len(p.Egress.Stages) != 2 {
		t.Fatalf("egress stages wrong: %+v", p.Egress)
	}
	if p.Funcs == nil || p.Funcs.IngressEntry != "port_map" || p.Funcs.EgressEntry != "l2_l3_rewrite" {
		t.Errorf("user_funcs = %+v", p.Funcs)
	}
	eth := p.Header("ethernet")
	if eth == nil || eth.Width() != 112 {
		t.Fatalf("ethernet header: %+v", eth)
	}
	if eth.Parser == nil || len(eth.Parser.Transitions) != 2 {
		t.Errorf("ethernet implicit parser: %+v", eth.Parser)
	}
	f, off := eth.Field("ether_type")
	if f == nil || f.Width != 16 || off != 96 {
		t.Errorf("ether_type: %+v at %d", f, off)
	}
}

func TestParseUseCaseFiles(t *testing.T) {
	for _, name := range []string{"ecmp.rp4", "srv6.rp4", "flowprobe.rp4"} {
		src, err := os.ReadFile("../../../testdata/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSnippet(name, string(src)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseECMPShape(t *testing.T) {
	src, _ := os.ReadFile("../../../testdata/ecmp.rp4")
	p, err := Parse("ecmp.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	tbl := p.Table("ecmp_ipv4")
	if tbl == nil || len(tbl.Keys) != 3 || tbl.Size != 4096 {
		t.Fatalf("ecmp_ipv4: %+v", tbl)
	}
	if tbl.Keys[0].Kind != "hash" || tbl.Keys[0].Field.String() != "meta.nexthop" {
		t.Errorf("key 0: %+v", tbl.Keys[0])
	}
	st, pipe := p.Stage("ecmp_stage")
	if st == nil {
		t.Fatal("ecmp_stage missing")
	}
	// A snippet stage is parsed but the pipe is unset until linked.
	_ = pipe
	if len(st.Parser) != 2 || st.Parser[0] != "ipv4" || st.Parser[1] != "ipv6" {
		t.Errorf("parser list: %v", st.Parser)
	}
	if len(st.Matcher) != 1 {
		t.Fatalf("matcher: %+v", st.Matcher)
	}
	ifs, ok := st.Matcher[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("matcher stmt is %T", st.Matcher[0])
	}
	call, ok := ifs.Cond.(*ast.CallExpr)
	if !ok || call.Recv != "ipv4" || call.Method != "isValid" {
		t.Errorf("cond: %s", ast.ExprString(ifs.Cond))
	}
	if len(ifs.Then) != 1 {
		t.Fatalf("then: %+v", ifs.Then)
	}
	apply, ok := ifs.Then[0].(*ast.CallStmt)
	if !ok || apply.Recv != "ecmp_ipv4" || apply.Method != "apply" {
		t.Errorf("then stmt: %+v", ifs.Then[0])
	}
	// else if chain present, with empty final else.
	if len(ifs.Else) != 1 {
		t.Fatalf("else: %+v", ifs.Else)
	}
	elif, ok := ifs.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else stmt is %T", ifs.Else[0])
	}
	if elif.Else != nil {
		t.Errorf("final else should be empty, got %+v", elif.Else)
	}
	if len(st.Exec) != 2 || st.Exec[0].Tag != 1 || st.Exec[0].Action != "set_bd_dmac" || !st.Exec[1].Default {
		t.Errorf("executor: %+v", st.Exec)
	}
}

func TestStageWhereverSections(t *testing.T) {
	// Sub-blocks in any order, with and without trailing semicolons.
	p := mustParse(t, `
control rP4_Ingress {
    stage s {
        executor { default: NoAction; }
        matcher { t.apply(); }
        parser { a; b; c }
    }
}`)
	st, pipe := p.Stage("s")
	if pipe != "ingress" {
		t.Errorf("pipe = %q", pipe)
	}
	if len(st.Parser) != 3 {
		t.Errorf("parser: %v", st.Parser)
	}
}

func TestRegisterAndStructs(t *testing.T) {
	p := mustParse(t, `
register<bit<32>>(1024) cnt;
structs {
    struct md { bit<16> a; bit<8> b; } meta;
    struct unused { bit<4> x; }
}`)
	if len(p.Registers) != 1 || p.Registers[0].Width != 32 || p.Registers[0].Size != 1024 {
		t.Errorf("register: %+v", p.Registers[0])
	}
	if len(p.Structs) != 2 || p.Structs[0].Alias != "meta" || p.Structs[1].Alias != "" {
		t.Errorf("structs: %+v", p.Structs)
	}
	if p.Structs[0].Width() != 24 {
		t.Errorf("struct width = %d", p.Structs[0].Width())
	}
}

func TestExpressionPrecedence(t *testing.T) {
	p := mustParse(t, `
action a(bit<8> x) {
    meta.v = 1 + 2 * 3;
    meta.w = x << 2 | 1;
}
structs { struct m { bit<8> v; bit<8> w; } meta; }`)
	body := p.Actions[0].Body
	as := body[0].(*ast.AssignStmt)
	if got := ast.ExprString(as.RHS); got != "(1 + (2 * 3))" {
		t.Errorf("precedence: %s", got)
	}
	as2 := body[1].(*ast.AssignStmt)
	if got := ast.ExprString(as2.RHS); got != "((x << 2) | 1)" {
		t.Errorf("precedence: %s", got)
	}
}

func TestUnaryAndParens(t *testing.T) {
	p := mustParse(t, `
action a() {
    if (!(ipv4.isValid()) && -1 != 0) { drop(); }
}`)
	ifs := p.Actions[0].Body[0].(*ast.IfStmt)
	cond := ifs.Cond.(*ast.BinaryExpr)
	if cond.Op != token.AndAnd {
		t.Errorf("cond op = %v", cond.Op)
	}
	if _, ok := cond.X.(*ast.UnaryExpr); !ok {
		t.Errorf("lhs is %T", cond.X)
	}
}

func TestHeaderVectorSection(t *testing.T) {
	p := mustParse(t, `
headers { header h { bit<8> f; } }
header_vector {
    h outer;
    h inner;
}`)
	if len(p.Instances) != 2 || p.Instances[1].Name != "inner" || p.Instances[1].Type != "h" {
		t.Errorf("instances: %+v", p.Instances)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"header x {}",                                     // header outside headers{}
		"headers { header h { bit<0> f; } }",              // zero width
		"headers { header h { bit<8> f } }",               // missing semicolon
		"table t { bogus = 1; }",                          // unknown table property
		"control rP4_Middle { }",                          // unknown control
		"control rP4_Ingress { stage s { junk } }",        // bad stage section
		"user_funcs { func f { } stray",                   // unterminated
		"action a() { meta.x; }",                          // statement is neither call nor assign
		"register<bit<32>>(0) r;",                         // zero-size register
		"control rP4_Ingress { } control rP4_Ingress { }", // duplicate pipe
		"headers { header h { implicit parser (f) { 1: x; } implicit parser (f) { } } }",
		"action a() { if meta.x == 1 { drop(); } }", // missing parens
		"table t { key = { x: } }",                  // missing kind
	}
	for _, src := range cases {
		if _, err := Parse("bad.rp4", src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("pos.rp4", "headers {\n  header h { bit<8> f }\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.rp4:2:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestEmptyElseBranch(t *testing.T) {
	p := mustParse(t, `
control rP4_Ingress {
    stage s {
        matcher {
            if (ipv4.isValid()) t.apply();
            else;
        };
        executor { default: NoAction; };
    }
}`)
	st, _ := p.Stage("s")
	ifs := st.Matcher[0].(*ast.IfStmt)
	if ifs.Else != nil {
		t.Errorf("empty else should yield nil, got %+v", ifs.Else)
	}
}
