package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser random byte soup and random
// recombinations of valid rP4 fragments: it must always return (program or
// error), never panic and never hang.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Pure noise.
	for i := 0; i < 500; i++ {
		n := rng.Intn(256)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(128))
		}
		_, _ = Parse("fuzz.rp4", string(b))
	}
	// Token soup from the language's own vocabulary — more likely to get
	// deep into the grammar.
	vocab := []string{
		"headers", "header", "implicit", "parser", "structs", "struct",
		"header_vector", "action", "table", "key", "actions", "size",
		"default_action", "control", "stage", "matcher", "executor",
		"user_funcs", "func", "ingress_entry", "egress_entry", "bit",
		"if", "else", "default", "register", "varlen",
		"{", "}", "(", ")", "<", ">", ":", ";", ",", ".", "=",
		"==", "!=", "&&", "||", "+", "-",
		"x", "y", "ipv4", "meta", "0", "1", "16", "0x800", "isValid", "apply",
	}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		_, _ = Parse("soup.rp4", sb.String())
	}
	// Mutations of a valid program.
	valid := `
headers { header h { bit<8> f; implicit parser (f) { 1: h2; } } header h2 { bit<8> g; } }
structs { struct m { bit<4> x; } meta; }
register<bit<32>>(16) r;
action a(bit<8> p) { meta.x = p + 1; if (h.isValid()) { drop(); } }
table t { key = { h.f: exact; } actions = { a; } size = 4; }
control rP4_Ingress { stage s { parser { h }; matcher { t.apply(); }; executor { 1: a; default: NoAction; }; } }
user_funcs { func f { s } ingress_entry: s; }
`
	for i := 0; i < 2000; i++ {
		b := []byte(valid)
		switch rng.Intn(3) {
		case 0:
			b = b[:rng.Intn(len(b))]
		case 1:
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		case 2:
			// Delete a random span.
			a := rng.Intn(len(b))
			z := a + rng.Intn(len(b)-a)
			b = append(b[:a], b[z:]...)
		}
		_, _ = Parse("mut.rp4", string(b))
	}
}
