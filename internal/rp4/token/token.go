// Package token defines the lexical tokens of the rP4 language (paper
// Fig. 2) and source positions used in diagnostics.
package token

import "fmt"

// Type identifies a token class.
type Type int

// Token classes. Keywords not in this list (e.g. match kinds, "drop") are
// ordinary identifiers resolved by the parser or semantic analysis, which
// keeps the lexer stable as the action-primitive set grows.
const (
	EOF Type = iota
	Ident
	Number // integer literal: decimal, 0x hex, 0b binary

	// Punctuation.
	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	LAngle    // <
	RAngle    // >
	Colon     // :
	Semicolon // ;
	Comma     // ,
	Dot       // .
	Assign    // =

	// Operators.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Amp     // &
	Pipe    // |
	Caret   // ^
	Not     // !
	Shl     // <<
	Shr     // >>
	Eq      // ==
	Neq     // !=
	Leq     // <=
	Geq     // >=
	AndAnd  // &&
	OrOr    // ||

	// Keywords.
	KwHeaders
	KwHeader
	KwImplicit
	KwParser
	KwStructs
	KwStruct
	KwHeaderVector
	KwAction
	KwTable
	KwKey
	KwActions
	KwSize
	KwDefaultAction
	KwControl
	KwStage
	KwMatcher
	KwExecutor
	KwUserFuncs
	KwFunc
	KwIngressEntry
	KwEgressEntry
	KwBit
	KwBool
	KwIf
	KwElse
	KwDefault
	KwRegister
	KwConst
	KwTrue
	KwFalse
)

var names = map[Type]string{
	EOF: "EOF", Ident: "identifier", Number: "number",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")",
	LAngle: "<", RAngle: ">", Colon: ":", Semicolon: ";", Comma: ",",
	Dot: ".", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Not: "!",
	Shl: "<<", Shr: ">>", Eq: "==", Neq: "!=", Leq: "<=", Geq: ">=",
	AndAnd: "&&", OrOr: "||",
	KwHeaders: "headers", KwHeader: "header", KwImplicit: "implicit",
	KwParser: "parser", KwStructs: "structs", KwStruct: "struct",
	KwHeaderVector: "header_vector",
	KwAction:       "action", KwTable: "table", KwKey: "key",
	KwActions: "actions", KwSize: "size", KwDefaultAction: "default_action",
	KwControl: "control", KwStage: "stage", KwMatcher: "matcher",
	KwExecutor: "executor", KwUserFuncs: "user_funcs", KwFunc: "func",
	KwIngressEntry: "ingress_entry", KwEgressEntry: "egress_entry",
	KwBit: "bit", KwBool: "bool", KwIf: "if", KwElse: "else",
	KwDefault: "default", KwRegister: "register", KwConst: "const",
	KwTrue: "true", KwFalse: "false",
}

// String names the token type.
func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Keywords maps keyword spellings to token types.
var Keywords = map[string]Type{
	"headers": KwHeaders, "header": KwHeader, "implicit": KwImplicit,
	"parser": KwParser, "structs": KwStructs, "struct": KwStruct,
	"header_vector": KwHeaderVector,
	"action":        KwAction, "table": KwTable, "key": KwKey,
	"actions": KwActions, "size": KwSize, "default_action": KwDefaultAction,
	"control": KwControl, "stage": KwStage, "matcher": KwMatcher,
	"executor": KwExecutor, "user_funcs": KwUserFuncs, "func": KwFunc,
	"ingress_entry": KwIngressEntry, "egress_entry": KwEgressEntry,
	"bit": KwBit, "bool": KwBool, "if": KwIf, "else": KwElse,
	"default": KwDefault, "register": KwRegister, "const": KwConst,
	"true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	f := p.File
	if f == "" {
		f = "<input>"
	}
	return fmt.Sprintf("%s:%d:%d", f, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Type Type
	Lit  string // literal text for Ident and Number
	Val  uint64 // parsed value for Number
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Type {
	case Ident, Number:
		return fmt.Sprintf("%s %q", t.Type, t.Lit)
	default:
		return t.Type.String()
	}
}
