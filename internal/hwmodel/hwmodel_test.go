package hwmodel

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/want > tolFrac {
		t.Errorf("%s = %.2f, want %.2f (±%.0f%%)", name, got, want, tolFrac*100)
	}
}

func TestThroughputMatchesPaperShape(t *testing.T) {
	p := DefaultCycleParams()
	c1, err := p.Model("C1", C1Classes())
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := p.Model("C2", C2Classes())
	c3, _ := p.Model("C3", C3Classes())

	// Paper Sec. 5: PISA 187.33 / 153.71 / 191.93; IPSA 65.81 / 51.36 / 86.62.
	within(t, "PISA C1", c1.PISAMpps, 187.33, 0.10)
	within(t, "PISA C2", c2.PISAMpps, 153.71, 0.15)
	within(t, "PISA C3", c3.PISAMpps, 191.93, 0.10)
	within(t, "IPSA C1", c1.IPSAMpps, 65.81, 0.10)
	within(t, "IPSA C2", c2.IPSAMpps, 51.36, 0.10)
	within(t, "IPSA C3", c3.IPSAMpps, 86.62, 0.10)

	// Shape: PISA wins every case by 2x-3.5x.
	for _, r := range []Throughput{c1, c2, c3} {
		ratio := r.PISAMpps / r.IPSAMpps
		if ratio < 2 || ratio > 3.6 {
			t.Errorf("%s: PISA/IPSA ratio %.2f outside [2, 3.6]", r.UseCase, ratio)
		}
	}
	// Shape: C2 is the slowest, C3 the fastest on IPSA.
	if !(c2.IPSAMpps < c1.IPSAMpps && c1.IPSAMpps < c3.IPSAMpps) {
		t.Errorf("IPSA ordering wrong: C1=%.1f C2=%.1f C3=%.1f", c1.IPSAMpps, c2.IPSAMpps, c3.IPSAMpps)
	}
	if !(c2.PISAMpps < c1.PISAMpps && c2.PISAMpps < c3.PISAMpps) {
		t.Errorf("PISA C2 not slowest: C1=%.1f C2=%.1f C3=%.1f", c1.PISAMpps, c2.PISAMpps, c3.PISAMpps)
	}
}

func TestModelValidation(t *testing.T) {
	p := DefaultCycleParams()
	if _, err := p.Model("empty", nil); err == nil {
		t.Error("zero-weight workload accepted")
	}
	if _, err := p.Model("neg", []WorkloadClass{{Name: "x", Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	// A class with no applied tables still costs at least one cycle.
	ii := p.IPSAII(WorkloadClass{Name: "idle"})
	if ii < 1 {
		t.Errorf("II = %f < 1", ii)
	}
}

func TestIntStampOverhead(t *testing.T) {
	p := DefaultCycleParams()
	base := WorkloadClass{Name: "l3", Applied: [][]TableCost{{{KeyBits: 32}}}}
	plain := p.IPSAII(base)
	base.IntHops = 3
	stamped := p.IPSAII(base)
	if want := plain + float64(3*p.IntStampCycles); stamped != want {
		t.Errorf("II with 3 INT hops = %v, want %v", stamped, want)
	}
	// IntHops = 0 must leave the model untouched (paper numbers above).
	base.IntHops = 0
	if p.IPSAII(base) != plain {
		t.Error("IntHops=0 changed the II")
	}
}

func TestTableCostAccesses(t *testing.T) {
	tc := TableCost{KeyBits: 144, ActionBits: 32}
	if got := tc.Accesses(128); got != 2 { // 176-bit entry over a 128-bit bus
		t.Errorf("accesses = %d, want 2", got)
	}
	tc = TableCost{KeyBits: 16}
	if got := tc.Accesses(128); got != 1 {
		t.Errorf("accesses = %d, want 1", got)
	}
}

func TestResourcesMatchTable2(t *testing.T) {
	p := DefaultResourceParams()
	// Both prototypes: 8 stage processors; the base design parses ~912
	// header bits; the pool has 64 blocks.
	pisa := p.PISAResources(8, 912)
	ipsa := p.IPSAResources(8, 64)

	// Paper Table 2 (percent): PISA parser 0.88/0.10, processors
	// 5.32/0.47, total 6.20/0.57; IPSA processors 5.83/0.85, crossbar
	// 1.29/0.07, total 7.12/0.92.
	within(t, "PISA parser LUT", pisa.FrontParserLUT, 0.88, 0.05)
	within(t, "PISA parser FF", pisa.FrontParserFF, 0.10, 0.05)
	within(t, "PISA proc LUT", pisa.ProcessorsLUT, 5.32, 0.05)
	within(t, "PISA proc FF", pisa.ProcessorsFF, 0.47, 0.05)
	within(t, "PISA total LUT", pisa.TotalLUT, 6.20, 0.05)
	within(t, "IPSA proc LUT", ipsa.ProcessorsLUT, 5.83, 0.05)
	within(t, "IPSA proc FF", ipsa.ProcessorsFF, 0.85, 0.05)
	within(t, "IPSA xbar LUT", ipsa.CrossbarLUT, 1.29, 0.05)
	within(t, "IPSA total LUT", ipsa.TotalLUT, 7.12, 0.05)
	within(t, "IPSA total FF", ipsa.TotalFF, 0.92, 0.05)

	// Shape: IPSA pays ~+15% LUT and ~+61% FF for in-situ programmability.
	lutOverhead := (ipsa.TotalLUT - pisa.TotalLUT) / pisa.TotalLUT
	ffOverhead := (ipsa.TotalFF - pisa.TotalFF) / pisa.TotalFF
	if lutOverhead < 0.10 || lutOverhead > 0.20 {
		t.Errorf("LUT overhead %.1f%% outside [10,20]", lutOverhead*100)
	}
	if ffOverhead < 0.50 || ffOverhead > 0.75 {
		t.Errorf("FF overhead %.1f%% outside [50,75]", ffOverhead*100)
	}
}

func TestPowerMatchesTable3AndFig6(t *testing.T) {
	p := DefaultPowerParams()
	pisa8 := p.PISAPower(8)
	ipsa8 := p.IPSAPower(8, 8)
	// Paper Table 3: ~2.95 W PISA, IPSA about 10% more.
	within(t, "PISA power", pisa8, 2.95, 0.05)
	overhead := (ipsa8 - pisa8) / pisa8
	if overhead < 0.05 || overhead > 0.15 {
		t.Errorf("IPSA power overhead %.1f%% outside [5,15]", overhead*100)
	}
	// Fig. 6 shape: PISA flat in effective stages, IPSA linear in active
	// TSPs, crossing below 8.
	if p.PISAPower(8) != pisa8 {
		t.Error("PISA power should not depend on effective stages")
	}
	prev := 0.0
	for k := 1; k <= 8; k++ {
		cur := p.IPSAPower(k, 8)
		if cur <= prev {
			t.Errorf("IPSA power not increasing at %d stages", k)
		}
		prev = cur
	}
	cross := p.PowerCrossover(8)
	if cross < 5 || cross > 7 {
		t.Errorf("crossover at %d stages, want 5-7 (IPSA wins below it)", cross)
	}
	if p.IPSAPower(2, 8) >= p.PISAPower(8) {
		t.Error("IPSA with 2 active TSPs should beat PISA")
	}
}

func TestLoadTimeMatchesTable1(t *testing.T) {
	p := DefaultLoadTimeParams()
	// Use-case costs (design totals for the full flow, deltas for the
	// incremental flow) as rp4bc reports them.
	c1 := UpdateCost{TotalStages: 10, TotalTables: 11, ChangedStages: 2, NewTables: 2, RewrittenTSPs: 1}
	c2 := UpdateCost{TotalStages: 12, TotalTables: 12, VarLenHeaders: 1, ChangedStages: 2, NewTables: 2, RewrittenTSPs: 2, HeaderLinksChanged: true}
	c3 := UpdateCost{TotalStages: 11, TotalTables: 11, Registers: 1, ChangedStages: 1, NewTables: 1, RewrittenTSPs: 1}

	// Paper Table 1 (ms): PISA tC 3126/6061/3373, tL 917/1297/1048;
	// IPSA tC 73/187/98, tL 22/30/25.
	within(t, "PISA tC C1", p.PISACompileMs(c1), 3126, 0.10)
	within(t, "PISA tC C2", p.PISACompileMs(c2), 6061, 0.10)
	within(t, "PISA tC C3", p.PISACompileMs(c3), 3373, 0.10)
	within(t, "PISA tL C1", p.PISALoadMs(c1), 917, 0.10)
	within(t, "PISA tL C2", p.PISALoadMs(c2), 1297, 0.10)
	within(t, "PISA tL C3", p.PISALoadMs(c3), 1048, 0.10)
	within(t, "IPSA tC C1", p.IPSACompileMs(c1), 73, 0.15)
	within(t, "IPSA tC C2", p.IPSACompileMs(c2), 187, 0.15)
	within(t, "IPSA tC C3", p.IPSACompileMs(c3), 98, 0.15)
	within(t, "IPSA tL C1", p.IPSALoadMs(c1), 22, 0.20)
	within(t, "IPSA tL C2", p.IPSALoadMs(c2), 30, 0.20)
	within(t, "IPSA tL C3", p.IPSALoadMs(c3), 25, 0.20)

	// Shape: the rP4 flow is a few percent of the P4 flow.
	for _, c := range []UpdateCost{c1, c2, c3} {
		total := (p.IPSACompileMs(c) + p.IPSALoadMs(c)) / (p.PISACompileMs(c) + p.PISALoadMs(c))
		if total > 0.06 {
			t.Errorf("rP4/P4 total ratio %.2f%% exceeds 6%%", total*100)
		}
	}
}
