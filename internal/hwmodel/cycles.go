package hwmodel

import (
	"fmt"

	"ipsa/internal/template"
)

// CycleParams configures the throughput model.
type CycleParams struct {
	// ClockMHz is the prototype clock (200 MHz in the paper).
	ClockMHz float64
	// IPSABusBits is the TSP-to-memory-pool data bus width; entries wider
	// than the bus serialize into multiple accesses (the paper's first
	// throughput penalty).
	IPSABusBits int
	// TemplateLoadCycles is the per-packet cost of loading the TSP's
	// configuration parameters (the paper's second penalty, "eliminated by
	// pipelining the TSP internal design").
	TemplateLoadCycles int
	// VarLenPenaltyCycles charges the extra sequential step a
	// variable-length header (SRH) costs the distributed parser.
	VarLenPenaltyCycles int
	// PISAParserBusBits is the front parser's extraction bandwidth per
	// cycle.
	PISAParserBusBits int
	// PISAParserStall is the fractional initiation-interval penalty per
	// extra parser word (PISA misses one-cycle-per-packet "for
	// simplicity", Sec. 5).
	PISAParserStall float64
	// IntStampCycles charges each INT hop record a stage appends: the
	// stamp is one wide write at the tail of the stage's cycle budget
	// (clock read + queue-depth register read + record write).
	IntStampCycles int
}

// DefaultCycleParams reproduce the paper's Sec. 5 numbers within a few
// percent at 200 MHz.
func DefaultCycleParams() CycleParams {
	return CycleParams{
		ClockMHz:            200,
		IPSABusBits:         128,
		TemplateLoadCycles:  1,
		VarLenPenaltyCycles: 1,
		PISAParserBusBits:   512,
		PISAParserStall:     0.25,
		IntStampCycles:      1,
	}
}

// TableCost is the per-lookup cost of one table.
type TableCost struct {
	Name       string
	KeyBits    int
	ActionBits int // widest action-data among the table's entries
}

// Accesses is the number of bus transactions one lookup needs: the match
// word and its action data stream back over the same bus, so the entry's
// total width is what serializes ("especially when the table entry size
// exceeds the data bus width", Sec. 5).
func (t TableCost) Accesses(busBits int) int {
	n := (t.KeyBits + t.ActionBits + busBits - 1) / busBits
	if n < 1 {
		n = 1
	}
	return n
}

// WorkloadClass is one packet class of a use-case workload: how much
// header it parses and which tables it actually applies.
type WorkloadClass struct {
	Name       string
	Weight     float64
	ParsedBits int
	// ParsesVarLen marks classes that traverse a variable-length header.
	ParsesVarLen bool
	// Applied lists the tables the class looks up, grouped by the TSP
	// that drives them (outer slice = TSPs; a merged TSP's exclusive
	// tables appear in different classes, so one entry per TSP is usual).
	Applied [][]TableCost
	// IntHops is how many stages stamp INT metadata onto this class's
	// packets (0 = INT disabled, the default, which leaves every modeled
	// number identical to the non-INT model).
	IntHops int
}

// IPSAII is the initiation interval of one class on IPSA: template load
// plus the bottleneck TSP's memory transactions, plus the varlen parsing
// penalty.
func (p CycleParams) IPSAII(c WorkloadClass) float64 {
	maxAcc := 0
	for _, tsp := range c.Applied {
		acc := 0
		for _, t := range tsp {
			acc += t.Accesses(p.IPSABusBits)
		}
		if acc > maxAcc {
			maxAcc = acc
		}
	}
	ii := float64(p.TemplateLoadCycles + maxAcc)
	if c.ParsesVarLen {
		ii += float64(p.VarLenPenaltyCycles)
	}
	if c.IntHops > 0 {
		// Stamps happen in different TSPs, but they lengthen the packet on
		// the inter-TSP bus, so the II charge accumulates per hop.
		ii += float64(c.IntHops * p.IntStampCycles)
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// PISAII is the initiation interval on PISA: one cycle per packet plus the
// front-parser stall for each extra extraction word.
func (p CycleParams) PISAII(c WorkloadClass) float64 {
	words := (c.ParsedBits + p.PISAParserBusBits - 1) / p.PISAParserBusBits
	if words < 1 {
		words = 1
	}
	return 1 + p.PISAParserStall*float64(words-1)
}

// Throughput is a modeled use-case result.
type Throughput struct {
	UseCase  string
	PISAMpps float64
	IPSAMpps float64
	// AvgII for inspection.
	PISAII, IPSAII float64
}

// Model computes modeled throughput for a workload (a weighted class mix).
func (p CycleParams) Model(useCase string, classes []WorkloadClass) (Throughput, error) {
	var wsum, pisaII, ipsaII float64
	for _, c := range classes {
		if c.Weight < 0 {
			return Throughput{}, fmt.Errorf("hwmodel: class %q has negative weight", c.Name)
		}
		wsum += c.Weight
		pisaII += c.Weight * p.PISAII(c)
		ipsaII += c.Weight * p.IPSAII(c)
	}
	if wsum == 0 {
		return Throughput{}, fmt.Errorf("hwmodel: workload %q has zero total weight", useCase)
	}
	pisaII /= wsum
	ipsaII /= wsum
	return Throughput{
		UseCase:  useCase,
		PISAMpps: p.ClockMHz / pisaII,
		IPSAMpps: p.ClockMHz / ipsaII,
		PISAII:   pisaII,
		IPSAII:   ipsaII,
	}, nil
}

// TableCostFromConfig derives a table's lookup cost from its compiled
// template: the key width plus the widest action data bound to the stage's
// executor arms.
func TableCostFromConfig(cfg *template.Config, table string) (TableCost, error) {
	t, ok := cfg.Tables[table]
	if !ok {
		return TableCost{}, fmt.Errorf("hwmodel: unknown table %q", table)
	}
	tc := TableCost{Name: table, KeyBits: t.KeyWidth}
	for _, s := range cfg.Stages {
		uses := false
		for _, tn := range s.Tables {
			if tn == table {
				uses = true
			}
		}
		if !uses {
			continue
		}
		for _, arm := range s.Arms {
			if a := cfg.Actions[arm.Action]; a != nil {
				bits := 0
				for _, w := range a.ParamWidths {
					bits += w
				}
				if bits > tc.ActionBits {
					tc.ActionBits = bits
				}
			}
		}
	}
	return tc, nil
}
