package hwmodel

// Pipeline latency model (paper Sec. 5, discussion point 3: "since only
// used TSPs are kept in the pipeline in IPSA, not only the power
// consumption but also the pipeline latency is reduced, which offsets the
// extra power and latency introduced by the crossbar and distributed
// parser").

// LatencyParams models per-packet pipeline latency in clock cycles.
type LatencyParams struct {
	// PISAParserCycles / DeparserCycles bracket the fixed pipeline.
	PISAParserCycles   int
	PISADeparserCycles int
	// PISAStageCycles is one fixed stage's latency; every physical stage
	// is traversed whether programmed or not.
	PISAStageCycles int
	// TSPCycles is one active TSP's latency (match + execute + the
	// distributed parser's occasional work).
	TSPCycles int
	// BypassCycles is the cost of flowing through an idle TSP.
	BypassCycles int
	// CrossbarCycles is the per-memory-access interconnect overhead,
	// charged once per active TSP here.
	CrossbarCycles int
}

// DefaultLatencyParams give PISA a small per-stage edge (local memory) and
// IPSA the crossbar tax, so the crossover behaviour mirrors Fig. 6's power
// story: IPSA's latency wins once enough TSPs are bypassed.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{
		PISAParserCycles:   4,
		PISADeparserCycles: 2,
		PISAStageCycles:    3,
		TSPCycles:          3,
		BypassCycles:       1,
		CrossbarCycles:     1,
	}
}

// PISALatency is the fixed pipeline's end-to-end latency in cycles: parser
// + every physical stage + deparser, independent of how many stages the
// design actually uses (the paper's criticism of PISA's elasticity).
func (p LatencyParams) PISALatency(totalStages int) int {
	return p.PISAParserCycles + totalStages*p.PISAStageCycles + p.PISADeparserCycles
}

// IPSALatency is the elastic pipeline's latency: active TSPs pay full
// cost plus the crossbar, bypassed TSPs a single forwarding cycle, and
// there is no front parser or deparser.
func (p LatencyParams) IPSALatency(activeTSPs, totalTSPs int) int {
	idle := totalTSPs - activeTSPs
	if idle < 0 {
		idle = 0
	}
	return activeTSPs*(p.TSPCycles+p.CrossbarCycles) + idle*p.BypassCycles
}

// LatencyCrossover returns the largest active-TSP count at which IPSA's
// latency does not exceed PISA's on a machine of totalStages.
func (p LatencyParams) LatencyCrossover(totalStages int) int {
	k := 0
	for n := 0; n <= totalStages; n++ {
		if p.IPSALatency(n, totalStages) <= p.PISALatency(totalStages) {
			k = n
		}
	}
	return k
}
