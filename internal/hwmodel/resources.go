package hwmodel

// ResourceParams is the analytic LUT/FF model, calibrated so the paper's
// 8-processor U280 prototypes land on Table 2.
type ResourceParams struct {
	// DeviceLUT/DeviceFF are the FPGA's totals (Alveo U280).
	DeviceLUT float64
	DeviceFF  float64

	// FrontParserLUTPerBit / FFPerBit scale the PISA front parser with the
	// total header bits it must be able to extract.
	FrontParserLUTPerBit float64
	FrontParserFFPerBit  float64

	// PISAStageLUT/FF is one fixed match-action stage processor.
	PISAStageLUT float64
	PISAStageFF  float64

	// TSPLUT/FF is one templated stage processor: a PISA stage plus the
	// distributed parser submodule and the template/configuration
	// registers (the FF-heavy part: +61.4% FF in Table 2).
	TSPLUT float64
	TSPFF  float64

	// CrossbarLUTPerPort/FFPerPort scale with TSPs × memory blocks.
	CrossbarLUTPerPort float64
	CrossbarFFPerPort  float64
}

// DefaultResourceParams calibrate to Table 2 on an Alveo U280
// (1,303,680 LUTs, 2,607,360 FFs).
func DefaultResourceParams() ResourceParams {
	return ResourceParams{
		DeviceLUT:            1303680,
		DeviceFF:             2607360,
		FrontParserLUTPerBit: 12.6,
		FrontParserFFPerBit:  2.86,
		PISAStageLUT:         8670,
		PISAStageFF:          1532,
		TSPLUT:               9503,
		TSPFF:                2770,
		CrossbarLUTPerPort:   32.8,
		CrossbarFFPerPort:    3.57,
	}
}

// ResourceReport is one architecture's utilization breakdown in percent of
// the device, the layout of the paper's Table 2.
type ResourceReport struct {
	FrontParserLUT, FrontParserFF float64
	ProcessorsLUT, ProcessorsFF   float64
	CrossbarLUT, CrossbarFF       float64
	TotalLUT, TotalFF             float64
}

// PISAResources models a PISA prototype with the given stage count and
// total parsed header bits.
func (p ResourceParams) PISAResources(stages, headerBits int) ResourceReport {
	r := ResourceReport{
		FrontParserLUT: p.FrontParserLUTPerBit * float64(headerBits) / p.DeviceLUT * 100,
		FrontParserFF:  p.FrontParserFFPerBit * float64(headerBits) / p.DeviceFF * 100,
		ProcessorsLUT:  p.PISAStageLUT * float64(stages) / p.DeviceLUT * 100,
		ProcessorsFF:   p.PISAStageFF * float64(stages) / p.DeviceFF * 100,
	}
	r.TotalLUT = r.FrontParserLUT + r.ProcessorsLUT
	r.TotalFF = r.FrontParserFF + r.ProcessorsFF
	return r
}

// IPSAResources models an IPSA prototype with the given TSP count and
// memory-pool block count (the crossbar's far side).
func (p ResourceParams) IPSAResources(tsps, blocks int) ResourceReport {
	ports := float64(tsps * blocks)
	r := ResourceReport{
		ProcessorsLUT: p.TSPLUT * float64(tsps) / p.DeviceLUT * 100,
		ProcessorsFF:  p.TSPFF * float64(tsps) / p.DeviceFF * 100,
		CrossbarLUT:   p.CrossbarLUTPerPort * ports / p.DeviceLUT * 100,
		CrossbarFF:    p.CrossbarFFPerPort * ports / p.DeviceFF * 100,
	}
	r.TotalLUT = r.ProcessorsLUT + r.CrossbarLUT
	r.TotalFF = r.ProcessorsFF + r.CrossbarFF
	return r
}

// PowerParams is the power model (Table 3 and Fig. 6).
type PowerParams struct {
	// PISAStatic includes the always-on pipeline infrastructure and the
	// front parser.
	PISAStatic float64
	// PISAPerStage is one fixed stage's power; every physical stage burns
	// it whether the design uses it or not.
	PISAPerStage float64
	// IPSAStatic includes the pool and control plane.
	IPSAStatic float64
	// IPSACrossbar is the crossbar's share.
	IPSACrossbar float64
	// IPSAPerActiveTSP / PerIdleTSP implement the bypass power gating:
	// "the bypassed TSPs can be kept in low power state".
	IPSAPerActiveTSP float64
	IPSAPerIdleTSP   float64
}

// DefaultPowerParams calibrate so eight fully active stages give the
// paper's ~+10% IPSA penalty (Table 3) and the Fig. 6 crossover falls
// around seven effective stages.
func DefaultPowerParams() PowerParams {
	return PowerParams{
		PISAStatic:       0.87, // static + front parser
		PISAPerStage:     0.26,
		IPSAStatic:       0.80,
		IPSACrossbar:     0.15,
		IPSAPerActiveTSP: 0.2875,
		IPSAPerIdleTSP:   0.02,
	}
}

// PISAPower models a PISA pipeline of totalStages physical stages; the
// effective-stage count does not matter because unprogrammed stages stay
// in the pipeline (paper Sec. 2.3: "non-functional stages remain in the
// pipeline, costing extra latency and power").
func (p PowerParams) PISAPower(totalStages int) float64 {
	return p.PISAStatic + p.PISAPerStage*float64(totalStages)
}

// IPSAPower models an IPSA pipeline with activeTSPs of totalTSPs in use;
// the rest idle in low-power bypass.
func (p PowerParams) IPSAPower(activeTSPs, totalTSPs int) float64 {
	idle := totalTSPs - activeTSPs
	if idle < 0 {
		idle = 0
	}
	return p.IPSAStatic + p.IPSACrossbar +
		p.IPSAPerActiveTSP*float64(activeTSPs) +
		p.IPSAPerIdleTSP*float64(idle)
}

// PowerCrossover returns the largest effective-stage count at which IPSA
// consumes no more power than PISA on a machine of totalStages.
func (p PowerParams) PowerCrossover(totalStages int) int {
	k := 0
	for n := 0; n <= totalStages; n++ {
		if p.IPSAPower(n, totalStages) <= p.PISAPower(totalStages) {
			k = n
		}
	}
	return k
}
