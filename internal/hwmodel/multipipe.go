package hwmodel

// Multi-pipeline memory-efficiency model (paper Sec. 5, discussion point
// 1: "a typical forwarding chip is usually built with multiple parallel
// pipelines to boost the throughput. PISA requires replicating most tables
// in each pipeline, reducing the effective table storage. The
// disaggregated memory pool in IPSA, on the other hand, can avoid table
// replication by providing multiple access ports to the memory blocks").

// MultiPipeParams models a chip with several parallel pipelines.
type MultiPipeParams struct {
	// ReplicatedFraction is the fraction of table capacity PISA must
	// copy into every pipeline (global tables: FIBs, nexthops); the rest
	// is naturally partitionable (per-port state).
	ReplicatedFraction float64
	// PortOverheadFraction is the extra block capacity IPSA spends per
	// additional memory port (multi-ported SRAM costs area).
	PortOverheadFraction float64
}

// DefaultMultiPipeParams reflect FIB-dominated designs: ~80% of capacity
// is global state, and each extra memory port costs ~8% block area.
func DefaultMultiPipeParams() MultiPipeParams {
	return MultiPipeParams{ReplicatedFraction: 0.8, PortOverheadFraction: 0.08}
}

// PISAEffectiveCapacity is the fraction of the chip's total table SRAM
// that holds *distinct* entries with n parallel pipelines: replicated
// tables are stored n times.
func (p MultiPipeParams) PISAEffectiveCapacity(n int) float64 {
	if n < 1 {
		n = 1
	}
	// One unit of physical storage per pipeline. Replicated entries
	// occupy one copy in each pipeline, so the distinct fraction of the
	// replicated part is 1/n.
	return p.ReplicatedFraction/float64(n) + (1 - p.ReplicatedFraction)
}

// IPSAEffectiveCapacity with a shared pool: no replication, but each
// pipeline's access port shaves block area.
func (p MultiPipeParams) IPSAEffectiveCapacity(n int) float64 {
	if n < 1 {
		n = 1
	}
	eff := 1 - p.PortOverheadFraction*float64(n-1)
	if eff < 0 {
		eff = 0
	}
	return eff
}

// CapacityAdvantage is IPSA's effective-capacity multiple over PISA at n
// pipelines.
func (p MultiPipeParams) CapacityAdvantage(n int) float64 {
	pisa := p.PISAEffectiveCapacity(n)
	if pisa == 0 {
		return 0
	}
	return p.IPSAEffectiveCapacity(n) / pisa
}
