package hwmodel

import "testing"

func TestLatencyModelShape(t *testing.T) {
	p := DefaultLatencyParams()
	// PISA latency is flat in effective stages.
	pisa := p.PISALatency(8)
	if pisa != 4+8*3+2 {
		t.Errorf("PISA latency = %d", pisa)
	}
	// IPSA latency grows with active TSPs and beats PISA when TSPs idle.
	prev := -1
	for k := 0; k <= 8; k++ {
		cur := p.IPSALatency(k, 8)
		if cur <= prev {
			t.Errorf("latency not increasing at %d", k)
		}
		prev = cur
	}
	// Fully active, IPSA pays the crossbar tax but saves parser/deparser:
	// 8*(3+1)=32 vs PISA's 30 — slightly worse, as the paper's "offsets"
	// discussion implies.
	if p.IPSALatency(8, 8) <= pisa-4 || p.IPSALatency(8, 8) > pisa+6 {
		t.Errorf("fully-active IPSA latency %d vs PISA %d out of band", p.IPSALatency(8, 8), pisa)
	}
	// The base design's 7-TSP layout already undercuts PISA.
	if p.IPSALatency(7, 8) >= pisa {
		t.Errorf("7-active IPSA latency %d should beat PISA %d", p.IPSALatency(7, 8), pisa)
	}
	cross := p.LatencyCrossover(8)
	if cross < 6 || cross > 8 {
		t.Errorf("crossover = %d", cross)
	}
}

func TestMultiPipeModelShape(t *testing.T) {
	p := DefaultMultiPipeParams()
	// Single pipeline: both architectures hold one full copy; IPSA has no
	// port overhead yet.
	if p.PISAEffectiveCapacity(1) != 1 || p.IPSAEffectiveCapacity(1) != 1 {
		t.Errorf("single pipeline: %f / %f", p.PISAEffectiveCapacity(1), p.IPSAEffectiveCapacity(1))
	}
	// PISA's effective capacity collapses with pipeline count; IPSA decays
	// only by port overhead.
	for n := 2; n <= 8; n++ {
		if p.PISAEffectiveCapacity(n) >= p.PISAEffectiveCapacity(n-1) {
			t.Errorf("PISA capacity not decreasing at %d", n)
		}
		if adv := p.CapacityAdvantage(n); adv <= 1 {
			t.Errorf("IPSA advantage %f at %d pipelines should exceed 1", adv, n)
		}
	}
	// At 4 pipelines the advantage is roughly 2x (0.8/4+0.2=0.4 vs 0.76).
	if adv := p.CapacityAdvantage(4); adv < 1.5 || adv > 2.5 {
		t.Errorf("advantage at 4 pipelines = %f", adv)
	}
}
