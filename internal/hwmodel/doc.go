// Package hwmodel substitutes for the paper's Xilinx Alveo U280 FPGA
// prototypes (DESIGN.md, substitution table): a cycle-level throughput
// model, an analytic LUT/FF resource model and a power model, each
// parameterized by the same architectural quantities the paper identifies
// as the cost drivers — memory access serialized over the data bus width,
// per-packet TSP template loading, the crossbar, the front parser, and
// idle-TSP power gating.
//
// The models are calibrated so an 8-processor configuration reproduces the
// paper's Table 2/Table 3 component breakdown and Sec. 5 throughput
// within a few percent; the calibration constants are exported so the
// benches can sweep them. Absolute numbers are modeled, shapes (who wins,
// by what factor, where the Fig. 6 crossover falls) are the reproduction
// targets — see EXPERIMENTS.md.
package hwmodel
