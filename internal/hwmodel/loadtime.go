package hwmodel

// The FPGA-flow time model behind Table 1's hardware rows. The P4 flow
// recompiles and reloads the whole design (p4c + synthesis + bitstream +
// full table repopulation); the rP4 flow compiles only the increment and
// writes only the affected TSP templates. The model is driven by the same
// quantities rp4bc's UpdateReport measures, so different use cases land on
// different times the way the paper's C1/C2/C3 do.

// UpdateCost describes one design (for the full flow) or one update (for
// the incremental flow).
type UpdateCost struct {
	// Full-design quantities.
	TotalStages   int
	TotalTables   int
	VarLenHeaders int
	Registers     int
	// Incremental quantities (from backend.UpdateReport).
	ChangedStages      int // added + removed logical stages
	NewTables          int
	RewrittenTSPs      int
	HeaderLinksChanged bool
}

// LoadTimeParams calibrates the model; defaults land on the paper's
// Table 1 hardware rows within ~10%.
type LoadTimeParams struct {
	// Full (P4) flow.
	SynthBaseMs     float64 // p4c + synthesis + place&route floor
	SynthPerStageMs float64
	SynthPerTableMs float64
	SynthVarLenMs   float64 // variable-length parser logic
	SynthRegisterMs float64
	LoadBaseMs      float64 // bitstream + pipeline bring-up
	LoadPerStageMs  float64
	LoadPerTableMs  float64 // full table repopulation
	LoadVarLenMs    float64
	LoadRegisterMs  float64

	// Incremental (rP4) flow.
	IncBaseMs         float64 // rp4bc dependency analysis + layout
	IncPerStageMs     float64
	IncPerTableMs     float64
	IncVarLenMs       float64
	IncRegisterMs     float64
	PatchBaseMs       float64 // control-channel session
	PatchPerTSPMs     float64 // one template download
	PatchPerTableMs   float64 // new-table configuration only
	PatchHeaderLinkMs float64
	PatchRegisterMs   float64 // register-file allocation
}

// DefaultLoadTimeParams reproduce Table 1's FPGA rows.
func DefaultLoadTimeParams() LoadTimeParams {
	return LoadTimeParams{
		SynthBaseMs: 2306, SynthPerStageMs: 60, SynthPerTableMs: 20,
		SynthVarLenMs: 2500, SynthRegisterMs: 150,
		LoadBaseMs: 550, LoadPerStageMs: 30, LoadPerTableMs: 6,
		LoadVarLenMs: 300, LoadRegisterMs: 90,

		IncBaseMs: 40, IncPerStageMs: 15, IncPerTableMs: 4,
		IncVarLenMs: 110, IncRegisterMs: 30,
		PatchBaseMs: 10, PatchPerTSPMs: 5, PatchPerTableMs: 2,
		PatchHeaderLinkMs: 5, PatchRegisterMs: 5,
	}
}

// PISACompileMs models the full-flow compile time t_C.
func (p LoadTimeParams) PISACompileMs(c UpdateCost) float64 {
	return p.SynthBaseMs +
		p.SynthPerStageMs*float64(c.TotalStages) +
		p.SynthPerTableMs*float64(c.TotalTables) +
		p.SynthVarLenMs*float64(c.VarLenHeaders) +
		p.SynthRegisterMs*float64(c.Registers)
}

// PISALoadMs models the full-flow loading time t_L, including the full
// table repopulation the paper notes the P4 flow additionally needs.
func (p LoadTimeParams) PISALoadMs(c UpdateCost) float64 {
	return p.LoadBaseMs +
		p.LoadPerStageMs*float64(c.TotalStages) +
		p.LoadPerTableMs*float64(c.TotalTables) +
		p.LoadVarLenMs*float64(c.VarLenHeaders) +
		p.LoadRegisterMs*float64(c.Registers)
}

// IPSACompileMs models the incremental rp4bc compile time t_C.
func (p LoadTimeParams) IPSACompileMs(c UpdateCost) float64 {
	t := p.IncBaseMs +
		p.IncPerStageMs*float64(c.ChangedStages) +
		p.IncPerTableMs*float64(c.NewTables) +
		p.IncRegisterMs*float64(c.Registers)
	if c.VarLenHeaders > 0 && c.HeaderLinksChanged {
		t += p.IncVarLenMs * float64(c.VarLenHeaders)
	}
	return t
}

// IPSALoadMs models the incremental patch time t_L: only the rewritten
// TSP templates and the new tables are configured.
func (p LoadTimeParams) IPSALoadMs(c UpdateCost) float64 {
	t := p.PatchBaseMs +
		p.PatchPerTSPMs*float64(c.RewrittenTSPs) +
		p.PatchPerTableMs*float64(c.NewTables)
	if c.HeaderLinksChanged {
		t += p.PatchHeaderLinkMs
	}
	if c.Registers > 0 {
		t += p.PatchRegisterMs * float64(c.Registers)
	}
	return t
}
