package hwmodel

// Calibrated workload class mixes for the paper's three use cases. The
// mixes (v4/v6 shares, SRv6 endpoint/transit shares) are calibration
// choices documented in EXPERIMENTS.md; the per-class table costs follow
// directly from the compiled designs.

// C1Classes models the ECMP workload: v4-dominated routed traffic where
// every routed packet resolves through an ECMP selector table.
func C1Classes() []WorkloadClass {
	return []WorkloadClass{
		{
			Name: "v4-ecmp", Weight: 0.9, ParsedBits: 432,
			Applied: [][]TableCost{
				{{Name: "port_map_tbl", KeyBits: 16, ActionBits: 16}},
				{{Name: "bd_vrf_tbl", KeyBits: 16, ActionBits: 32}},
				{{Name: "l2_l3_tbl", KeyBits: 64}},
				{{Name: "ipv4_host", KeyBits: 48, ActionBits: 32}},
				{{Name: "ecmp_ipv4", KeyBits: 96, ActionBits: 64}},
				{{Name: "smac_tbl", KeyBits: 16, ActionBits: 48}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
		{
			Name: "v6-ecmp", Weight: 0.1, ParsedBits: 592,
			Applied: [][]TableCost{
				{{Name: "ipv6_host", KeyBits: 144, ActionBits: 32}},
				{{Name: "ecmp_ipv6", KeyBits: 288, ActionBits: 64}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
	}
}

// C2Classes models the SRv6 workload: endpoint and transit segments with a
// small plain-v4 background.
func C2Classes() []WorkloadClass {
	return []WorkloadClass{
		{
			Name: "srv6-end", Weight: 0.45, ParsedBits: 912, ParsesVarLen: true,
			Applied: [][]TableCost{
				{{Name: "local_sid", KeyBits: 128}},
				{{Name: "ipv6_host", KeyBits: 144, ActionBits: 32}},
				{{Name: "nexthop_tbl", KeyBits: 32, ActionBits: 64}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
		{
			Name: "srv6-transit", Weight: 0.45, ParsedBits: 912, ParsesVarLen: true,
			Applied: [][]TableCost{
				{{Name: "end_transit", KeyBits: 128, ActionBits: 32}},
				{{Name: "ipv6_host", KeyBits: 144, ActionBits: 32}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
		{
			Name: "plain-v4", Weight: 0.1, ParsedBits: 432,
			Applied: [][]TableCost{
				{{Name: "ipv4_host", KeyBits: 48, ActionBits: 32}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
	}
}

// C3Classes models the flow-probe workload: mostly probed v4 flows.
func C3Classes() []WorkloadClass {
	return []WorkloadClass{
		{
			Name: "v4-probe", Weight: 0.7, ParsedBits: 432,
			Applied: [][]TableCost{
				{{Name: "ipv4_host", KeyBits: 48, ActionBits: 32}},
				{{Name: "flow_probe", KeyBits: 64, ActionBits: 64}},
				{{Name: "nexthop_tbl", KeyBits: 32, ActionBits: 64}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
		{
			Name: "v6", Weight: 0.3, ParsedBits: 592,
			Applied: [][]TableCost{
				{{Name: "ipv6_host", KeyBits: 144, ActionBits: 32}},
				{{Name: "dmac_tbl", KeyBits: 64, ActionBits: 16}},
			},
		},
	}
}

// UseCaseClasses maps a use-case id (C1/C2/C3) to its workload.
func UseCaseClasses(useCase string) []WorkloadClass {
	switch useCase {
	case "C1":
		return C1Classes()
	case "C2":
		return C2Classes()
	case "C3":
		return C3Classes()
	}
	return nil
}
