package netio

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Classic libpcap file format (not pcapng): 24-byte global header,
// per-packet 16-byte record headers. Little-endian with the standard
// 0xa1b2c3d4 magic.

const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapLinkEthernet = 1
	pcapSnapLen      = 65535
)

// PcapWriter streams packets into a pcap file.
type PcapWriter struct {
	w     io.Writer
	count int
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one packet with the given capture timestamp.
func (pw *PcapWriter) WritePacket(ts time.Time, data []byte) error {
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(data)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	if _, err := pw.w.Write(data); err != nil {
		return fmt.Errorf("pcap: %w", err)
	}
	pw.count++
	return nil
}

// Count reports packets written.
func (pw *PcapWriter) Count() int { return pw.count }

// PcapReader streams packets out of a pcap file.
type PcapReader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	count     int
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	pr := &PcapReader{r: r}
	switch {
	case binary.LittleEndian.Uint32(hdr[0:4]) == pcapMagic:
		pr.byteOrder = binary.LittleEndian
	case binary.BigEndian.Uint32(hdr[0:4]) == pcapMagic:
		pr.byteOrder = binary.BigEndian
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", hdr[0:4])
	}
	if lt := pr.byteOrder.Uint32(hdr[20:24]); lt != pcapLinkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return pr, nil
}

// ReadPacket returns the next packet, or io.EOF at the end.
func (pr *PcapReader) ReadPacket() (ts time.Time, data []byte, err error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return time.Time{}, nil, io.EOF
		}
		return time.Time{}, nil, fmt.Errorf("pcap: record: %w", err)
	}
	sec := pr.byteOrder.Uint32(rec[0:4])
	usec := pr.byteOrder.Uint32(rec[4:8])
	capLen := pr.byteOrder.Uint32(rec[8:12])
	if capLen > pcapSnapLen {
		return time.Time{}, nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", capLen)
	}
	data = make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return time.Time{}, nil, fmt.Errorf("pcap: truncated packet: %w", err)
	}
	pr.count++
	return time.Unix(int64(sec), int64(usec)*1000), data, nil
}

// Count reports packets read.
func (pr *PcapReader) Count() int { return pr.count }
