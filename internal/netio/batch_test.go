package netio

import (
	"bytes"
	"testing"
	"time"
)

// TestChanPortRecvBatch: the first frame blocks, the rest of the batch is
// whatever is already queued, and the received counter advances once per
// frame despite a single add per batch.
func TestChanPortRecvBatch(t *testing.T) {
	p := NewChanPort(16)
	for i := 0; i < 5; i++ {
		if !p.Inject([]byte{byte(i)}) {
			t.Fatal("inject failed")
		}
	}
	buf := make([][]byte, 8)
	n, ok := p.RecvBatch(buf)
	if !ok || n != 5 {
		t.Fatalf("RecvBatch = %d,%v want 5,true", n, ok)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(buf[i], []byte{byte(i)}) {
			t.Fatalf("frame %d = %v (order broken)", i, buf[i])
		}
	}
	if _, recvd, _ := p.Stats(); recvd != 5 {
		t.Fatalf("received counter = %d want 5", recvd)
	}
}

// TestChanPortRecvBatchCapped: a batch never exceeds len(buf); the
// overflow stays queued for the next call.
func TestChanPortRecvBatchCapped(t *testing.T) {
	p := NewChanPort(16)
	for i := 0; i < 6; i++ {
		p.Inject([]byte{byte(i)})
	}
	buf := make([][]byte, 4)
	if n, ok := p.RecvBatch(buf); !ok || n != 4 {
		t.Fatalf("first batch = %d,%v want 4,true", n, ok)
	}
	if n, ok := p.RecvBatch(buf); !ok || n != 2 {
		t.Fatalf("second batch = %d,%v want 2,true", n, ok)
	}
}

// TestChanPortRecvBatchBlocks: an empty port parks the caller until a
// frame arrives — no spinning, no timeout path.
func TestChanPortRecvBatchBlocks(t *testing.T) {
	p := NewChanPort(4)
	got := make(chan int, 1)
	go func() {
		buf := make([][]byte, 4)
		n, _ := p.RecvBatch(buf)
		got <- n
	}()
	select {
	case n := <-got:
		t.Fatalf("RecvBatch returned %d frames from an empty port", n)
	case <-time.After(20 * time.Millisecond):
	}
	p.Inject([]byte{1})
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("woke with %d frames, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvBatch never woke after Inject")
	}
}

// TestChanPortRecvBatchClose: Close unblocks a parked RecvBatch with
// ok=false.
func TestChanPortRecvBatchClose(t *testing.T) {
	p := NewChanPort(4)
	done := make(chan bool, 1)
	go func() {
		buf := make([][]byte, 4)
		_, ok := p.RecvBatch(buf)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("RecvBatch reported ok=true after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvBatch never unblocked after Close")
	}
}

// TestChanPortXmitBatch: accepted frames count as sent, the overflow as
// per-frame tail drops — identical accounting to a Send loop.
func TestChanPortXmitBatch(t *testing.T) {
	p := NewChanPort(4)
	frames := make([][]byte, 7)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	if sent := p.XmitBatch(frames); sent != 4 {
		t.Fatalf("XmitBatch = %d want 4", sent)
	}
	st := p.DetailedStats()
	if st.Sent != 4 || st.TxDrops != 3 {
		t.Fatalf("stats sent=%d txDrops=%d want 4/3", st.Sent, st.TxDrops)
	}
	for i := 0; i < 4; i++ {
		d, ok := p.Drain()
		if !ok || !bytes.Equal(d, []byte{byte(i)}) {
			t.Fatalf("drained frame %d = %v,%v", i, d, ok)
		}
	}
}

// TestChanPortXmitBatchClosed: a closed port accepts nothing.
func TestChanPortXmitBatchClosed(t *testing.T) {
	p := NewChanPort(4)
	p.Close()
	if sent := p.XmitBatch([][]byte{{1}, {2}}); sent != 0 {
		t.Fatalf("XmitBatch on closed port = %d want 0", sent)
	}
}

// plainPort is a minimal Port that does NOT implement BatchPort, to
// exercise the adapter path of Batched.
type plainPort struct {
	rx     chan []byte
	sent   [][]byte
	refuse bool
}

func (p *plainPort) Recv() ([]byte, bool) { d, ok := <-p.rx; return d, ok }
func (p *plainPort) Send(data []byte) bool {
	if p.refuse {
		return false
	}
	p.sent = append(p.sent, data)
	return true
}
func (p *plainPort) Close() { close(p.rx) }

// TestBatchedAdapter: Batched wraps a plain Port with one-frame RecvBatch
// semantics and a Send-loop XmitBatch, and passes a native BatchPort
// through unwrapped.
func TestBatchedAdapter(t *testing.T) {
	cp := NewChanPort(4)
	if _, native := Batched(cp).(*ChanPort); !native {
		t.Fatal("Batched(ChanPort) did not pass through the native implementation")
	}

	pp := &plainPort{rx: make(chan []byte, 4)}
	bp := Batched(pp)
	if _, wrapped := bp.(*batchAdapter); !wrapped {
		t.Fatal("Batched(plain Port) did not wrap")
	}
	pp.rx <- []byte{1}
	pp.rx <- []byte{2}
	buf := make([][]byte, 4)
	if n, ok := bp.RecvBatch(buf); !ok || n != 1 {
		t.Fatalf("adapter RecvBatch = %d,%v want 1,true (one frame per call)", n, ok)
	}
	if sent := bp.XmitBatch([][]byte{{3}, {4}}); sent != 2 || len(pp.sent) != 2 {
		t.Fatalf("adapter XmitBatch sent=%d forwarded=%d", sent, len(pp.sent))
	}
	pp.refuse = true
	if sent := bp.XmitBatch([][]byte{{5}}); sent != 0 {
		t.Fatalf("adapter XmitBatch on refusing port = %d want 0", sent)
	}
	if n, ok := bp.RecvBatch(buf); !ok || n != 1 {
		t.Fatalf("adapter RecvBatch (second frame) = %d,%v", n, ok)
	}
	pp.Close()
	if n, ok := bp.RecvBatch(buf); ok {
		t.Fatalf("adapter RecvBatch after close = %d,%v", n, ok)
	}
}

// TestRecvBatchZeroBuf: a zero-length buffer is a no-op, not a block.
func TestRecvBatchZeroBuf(t *testing.T) {
	p := NewChanPort(4)
	if n, ok := p.RecvBatch(nil); n != 0 || !ok {
		t.Fatalf("RecvBatch(nil) = %d,%v", n, ok)
	}
}
