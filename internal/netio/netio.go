// Package netio is the Communication Module (CM) substrate: packet I/O
// decoupled from the OS protocol stack (paper Sec. 4.1). The reproduction
// provides in-memory channel ports (wired back to back for switch-to-switch
// topologies and tests), pcap file sources/sinks for replaying captures,
// and UDP-encapsulated ports for crossing real sockets.
package netio

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Port moves raw frames in and out of a switch port.
type Port interface {
	// Recv blocks until a frame arrives; ok=false means the port closed.
	Recv() (data []byte, ok bool)
	// Send transmits a frame; it reports false when the port is closed or
	// full (tail drop).
	Send(data []byte) bool
	// Close shuts the port down.
	Close()
}

// ChanPort is an in-memory port over buffered channels.
type ChanPort struct {
	rx, tx chan []byte
	done   chan struct{}
	closed atomic.Bool
	// closeMu serializes Inject/Send against Close: Close closes rx while
	// holding the write lock, so no sender can be past its closed check
	// with a send still pending (a bare closed.Load() left a window where
	// a concurrent Close panicked the sender with "send on closed
	// channel").
	closeMu sync.RWMutex

	sent, received   atomic.Uint64
	rxDrops, txDrops atomic.Uint64
}

// PortStats is one port's counter snapshot with drops split by direction:
// RxDrops are ingress tail drops (Inject into a full or closed queue),
// TxDrops egress tail drops (Send into a full queue).
type PortStats struct {
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	RxDrops  uint64 `json:"rx_drops"`
	TxDrops  uint64 `json:"tx_drops"`
}

// NewChanPort builds a port with the given queue depth per direction.
func NewChanPort(depth int) *ChanPort {
	if depth <= 0 {
		depth = 64
	}
	return &ChanPort{
		rx:   make(chan []byte, depth),
		tx:   make(chan []byte, depth),
		done: make(chan struct{}),
	}
}

// Recv blocks for the next ingress frame.
func (p *ChanPort) Recv() ([]byte, bool) {
	d, ok := <-p.rx
	if ok {
		p.received.Add(1)
	}
	return d, ok
}

// TryRecv returns immediately; ok=false when no frame is waiting.
func (p *ChanPort) TryRecv() ([]byte, bool) {
	select {
	case d, ok := <-p.rx:
		if ok {
			p.received.Add(1)
		}
		return d, ok
	default:
		return nil, false
	}
}

// Send transmits on the egress side; false on tail drop or closed port.
func (p *ChanPort) Send(data []byte) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return false
	}
	select {
	case p.tx <- data:
		p.sent.Add(1)
		return true
	default:
		p.txDrops.Add(1)
		return false
	}
}

// Inject places a frame on the ingress side, as a peer or test would.
func (p *ChanPort) Inject(data []byte) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return false
	}
	select {
	case p.rx <- data:
		return true
	default:
		p.rxDrops.Add(1)
		return false
	}
}

// Drain removes one transmitted frame (what the peer receives).
func (p *ChanPort) Drain() ([]byte, bool) {
	select {
	case d := <-p.tx:
		return d, true
	default:
		return nil, false
	}
}

// DrainBlocking removes one transmitted frame, waiting until one arrives
// or the port closes.
func (p *ChanPort) DrainBlocking() ([]byte, bool) {
	select {
	case d := <-p.tx:
		return d, true
	case <-p.done:
		// Drain anything already queued before reporting closed.
		select {
		case d := <-p.tx:
			return d, true
		default:
			return nil, false
		}
	}
}

// Close shuts the port; Recv and DrainBlocking unblock. Safe against
// concurrent Inject/Send.
func (p *ChanPort) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closed.CompareAndSwap(false, true) {
		close(p.rx)
		close(p.done)
	}
}

// Stats reports sent/received/dropped counters (drops summed over both
// directions; DetailedStats splits them).
func (p *ChanPort) Stats() (sent, received, drops uint64) {
	return p.sent.Load(), p.received.Load(), p.rxDrops.Load() + p.txDrops.Load()
}

// DetailedStats snapshots the port's counters with directional drops.
func (p *ChanPort) DetailedStats() PortStats {
	return PortStats{
		Sent:     p.sent.Load(),
		Received: p.received.Load(),
		RxDrops:  p.rxDrops.Load(),
		TxDrops:  p.txDrops.Load(),
	}
}

// Wire cross-connects two ports: frames sent on a appear at b's ingress
// and vice versa. It spawns two forwarding goroutines that exit when
// either port closes.
func Wire(a, b *ChanPort) {
	go func() {
		for {
			d, ok := a.DrainBlocking()
			if !ok {
				return
			}
			if !b.Inject(d) && b.closed.Load() {
				return
			}
		}
	}()
	go func() {
		for {
			d, ok := b.DrainBlocking()
			if !ok {
				return
			}
			if !a.Inject(d) && a.closed.Load() {
				return
			}
		}
	}()
}

// PortSet groups a switch's ports.
type PortSet struct {
	ports []*ChanPort
}

// NewPortSet builds n ports with the given depth.
func NewPortSet(n, depth int) (*PortSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netio: need at least one port, got %d", n)
	}
	ps := &PortSet{}
	for i := 0; i < n; i++ {
		ps.ports = append(ps.ports, NewChanPort(depth))
	}
	return ps, nil
}

// Len reports the port count.
func (ps *PortSet) Len() int { return len(ps.ports) }

// Port returns port i.
func (ps *PortSet) Port(i int) (*ChanPort, error) {
	if i < 0 || i >= len(ps.ports) {
		return nil, fmt.Errorf("netio: port %d out of range [0,%d)", i, len(ps.ports))
	}
	return ps.ports[i], nil
}

// Close closes every port.
func (ps *PortSet) Close() {
	for _, p := range ps.ports {
		p.Close()
	}
}
