package netio

// BatchPort is the batched extension of Port: one wakeup moves up to
// len(buf) frames, so the caller amortizes per-frame costs (pool gets,
// telemetry increments, TM admissions) across the batch. Ports that can
// batch natively (ChanPort drains its channel, UDPPort loops its socket)
// implement it directly; Batched adapts any other Port with one-frame
// semantics so callers can always program against BatchPort.
type BatchPort interface {
	Port
	// RecvBatch blocks until at least one frame arrives, then fills buf
	// with as many frames as are immediately available without blocking
	// again. ok=false means the port closed; n frames may still be valid.
	RecvBatch(buf [][]byte) (n int, ok bool)
	// XmitBatch transmits the frames in order, reporting how many were
	// accepted; the rest are tail drops (counted by the port).
	XmitBatch(frames [][]byte) (sent int)
}

// Batched returns p as a BatchPort: natively when the implementation
// supports batching, otherwise wrapped in a one-frame-at-a-time adapter.
func Batched(p Port) BatchPort {
	if bp, ok := p.(BatchPort); ok {
		return bp
	}
	return &batchAdapter{Port: p}
}

// batchAdapter lifts a plain Port to BatchPort. RecvBatch degenerates to
// one frame per call (a plain Port has no non-blocking probe), XmitBatch
// to a Send loop — correct, just without the amortization.
type batchAdapter struct {
	Port
}

func (a *batchAdapter) RecvBatch(buf [][]byte) (int, bool) {
	if len(buf) == 0 {
		return 0, true
	}
	d, ok := a.Recv()
	if !ok {
		return 0, false
	}
	buf[0] = d
	return 1, true
}

func (a *batchAdapter) XmitBatch(frames [][]byte) int {
	sent := 0
	for _, f := range frames {
		if a.Send(f) {
			sent++
		}
	}
	return sent
}

// RecvBatch blocks for the first ingress frame, then drains whatever else
// is already queued, up to len(buf) frames total. One counter add covers
// the whole batch.
func (p *ChanPort) RecvBatch(buf [][]byte) (int, bool) {
	if len(buf) == 0 {
		return 0, true
	}
	d, ok := <-p.rx
	if !ok {
		return 0, false
	}
	buf[0] = d
	n := 1
	for n < len(buf) {
		select {
		case d, ok := <-p.rx:
			if !ok {
				p.received.Add(uint64(n))
				return n, false
			}
			buf[n] = d
			n++
		default:
			p.received.Add(uint64(n))
			return n, true
		}
	}
	p.received.Add(uint64(n))
	return n, true
}

// XmitBatch transmits frames in order under one closed-check lock,
// counting accepted frames and tail drops once per batch.
func (p *ChanPort) XmitBatch(frames [][]byte) int {
	if len(frames) == 0 {
		return 0
	}
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return 0
	}
	sent := 0
	for _, f := range frames {
		select {
		case p.tx <- f:
			sent++
		default:
			// The tx ring is full; everything behind this frame would
			// tail-drop the same way, but try each so drop accounting
			// matches the unbatched path frame for frame.
			p.txDrops.Add(1)
		}
	}
	if sent > 0 {
		p.sent.Add(uint64(sent))
	}
	return sent
}

// RecvBatch on a UDP port reads one datagram per call: the blocking socket
// read has no portable non-blocking probe, so batching degenerates to
// frame-at-a-time (the adapter semantics) while still satisfying BatchPort.
func (p *UDPPort) RecvBatch(buf [][]byte) (int, bool) {
	if len(buf) == 0 {
		return 0, true
	}
	d, ok := p.Recv()
	if !ok {
		return 0, false
	}
	buf[0] = d
	return 1, true
}

// XmitBatch sends each frame as one datagram.
func (p *UDPPort) XmitBatch(frames [][]byte) int {
	sent := 0
	for _, f := range frames {
		if p.Send(f) {
			sent++
		}
	}
	return sent
}
