package netio

import (
	"io"

	"ipsa/internal/intmd"
)

// IntScanSummary aggregates the INT trailers found in a capture: how
// many frames carried one, the total and deepest hop counts, and the
// decoded reports themselves (capped by the scanner).
type IntScanSummary struct {
	Packets int // frames in the capture
	Stamped int // frames carrying a valid INT trailer
	Hops    int // total hop records across all stamped frames
	MaxHops int // deepest single trailer
	Reports []intmd.Report
}

// ScanIntTrailers reads a pcap stream to EOF and summarizes the INT
// trailers it finds; keep bounds how many decoded reports are retained
// (<= 0 keeps all). Frames without a trailer just count toward Packets.
func ScanIntTrailers(pr *PcapReader, keep int) (IntScanSummary, error) {
	var sum IntScanSummary
	for {
		_, data, err := pr.ReadPacket()
		if err == io.EOF {
			return sum, nil
		}
		if err != nil {
			return sum, err
		}
		sum.Packets++
		hops, payloadLen, ok := intmd.Parse(data)
		if !ok {
			continue
		}
		sum.Stamped++
		sum.Hops += len(hops)
		if len(hops) > sum.MaxHops {
			sum.MaxHops = len(hops)
		}
		if keep <= 0 || len(sum.Reports) < keep {
			sum.Reports = append(sum.Reports, intmd.Report{Bytes: payloadLen, Hops: hops})
		}
	}
}
