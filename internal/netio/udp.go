package netio

import (
	"fmt"
	"log/slog"
	"net"
	"sync/atomic"
)

// UDPPort carries switch frames over a UDP socket, the CM's substitute for
// kernel-bypass NIC access when two switch processes (or a switch and a
// traffic source) live on different machines or processes. One frame per
// datagram.
type UDPPort struct {
	conn   *net.UDPConn
	peer   *net.UDPAddr
	closed atomic.Bool

	sent, received, drops atomic.Uint64
}

// maxFrame bounds one datagram read.
const maxFrame = 65536

// NewUDPPort binds localAddr ("127.0.0.1:0" for ephemeral) and points the
// port at peerAddr; Pair is more convenient for tests.
func NewUDPPort(localAddr, peerAddr string) (*UDPPort, error) {
	laddr, err := net.ResolveUDPAddr("udp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	p := &UDPPort{conn: conn}
	if peerAddr != "" {
		peer, err := net.ResolveUDPAddr("udp", peerAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("netio: %w", err)
		}
		p.peer = peer
	}
	return p, nil
}

// LocalAddr reports the bound address.
func (p *UDPPort) LocalAddr() string { return p.conn.LocalAddr().String() }

// SetPeer (re)points the egress side.
func (p *UDPPort) SetPeer(addr string) error {
	peer, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	p.peer = peer
	return nil
}

// Recv blocks for the next datagram.
func (p *UDPPort) Recv() ([]byte, bool) {
	buf := make([]byte, maxFrame)
	n, _, err := p.conn.ReadFromUDP(buf)
	if err != nil {
		if !p.closed.Load() {
			slog.Debug("udp port recv failed", "component", "netio",
				"local", p.conn.LocalAddr().String(), "err", err)
		}
		return nil, false
	}
	p.received.Add(1)
	return buf[:n], true
}

// Send transmits one frame to the peer.
func (p *UDPPort) Send(data []byte) bool {
	if p.closed.Load() || p.peer == nil {
		p.drops.Add(1)
		return false
	}
	if _, err := p.conn.WriteToUDP(data, p.peer); err != nil {
		p.drops.Add(1)
		if !p.closed.Load() {
			slog.Debug("udp port send failed", "component", "netio",
				"peer", p.peer.String(), "err", err)
		}
		return false
	}
	p.sent.Add(1)
	return true
}

// Close shuts the socket; Recv unblocks.
func (p *UDPPort) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.conn.Close()
	}
}

// Stats reports counters.
func (p *UDPPort) Stats() (sent, received, drops uint64) {
	return p.sent.Load(), p.received.Load(), p.drops.Load()
}

// PairUDP builds two localhost UDP ports pointed at each other.
func PairUDP() (*UDPPort, *UDPPort, error) {
	a, err := NewUDPPort("127.0.0.1:0", "")
	if err != nil {
		return nil, nil, err
	}
	b, err := NewUDPPort("127.0.0.1:0", a.LocalAddr())
	if err != nil {
		a.Close()
		return nil, nil, err
	}
	if err := a.SetPeer(b.LocalAddr()); err != nil {
		a.Close()
		b.Close()
		return nil, nil, err
	}
	return a, b, nil
}
