package netio

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"ipsa/internal/intmd"
)

func TestChanPortBasics(t *testing.T) {
	p := NewChanPort(2)
	if !p.Inject([]byte{1}) {
		t.Fatal("inject failed")
	}
	d, ok := p.Recv()
	if !ok || d[0] != 1 {
		t.Fatalf("recv: %v %v", d, ok)
	}
	if !p.Send([]byte{2}) {
		t.Fatal("send failed")
	}
	d, ok = p.Drain()
	if !ok || d[0] != 2 {
		t.Fatalf("drain: %v %v", d, ok)
	}
	if _, ok := p.Drain(); ok {
		t.Error("empty drain succeeded")
	}
	if _, ok := p.TryRecv(); ok {
		t.Error("empty tryrecv succeeded")
	}
	// Tail drop when full.
	p.Send([]byte{3})
	p.Send([]byte{4})
	if p.Send([]byte{5}) {
		t.Error("overfull send accepted")
	}
	sent, recvd, drops := p.Stats()
	if sent != 3 || recvd != 1 || drops != 1 {
		t.Errorf("stats: %d/%d/%d", sent, recvd, drops)
	}
	p.Close()
	if p.Inject([]byte{9}) {
		t.Error("inject after close accepted")
	}
	if _, ok := p.Recv(); ok {
		t.Error("recv after close returned data")
	}
	p.Close() // double close is safe
}

func TestWire(t *testing.T) {
	a := NewChanPort(8)
	b := NewChanPort(8)
	Wire(a, b)
	if !a.Send([]byte("ping")) {
		t.Fatal("send failed")
	}
	deadline := time.After(time.Second)
	for {
		if d, ok := b.TryRecv(); ok {
			if string(d) != "ping" {
				t.Fatalf("got %q", d)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("frame never crossed the wire")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	a.Close()
	b.Close()
}

func TestPortSet(t *testing.T) {
	ps, err := NewPortSet(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 3 {
		t.Errorf("len = %d", ps.Len())
	}
	if _, err := ps.Port(3); err == nil {
		t.Error("out-of-range port accepted")
	}
	if _, err := NewPortSet(0, 4); err == nil {
		t.Error("zero ports accepted")
	}
	ps.Close()
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 123456000)
	pkts := [][]byte{{1, 2, 3}, {4, 5, 6, 7}, make([]byte, 1500)}
	for _, p := range pkts {
		if err := w.WritePacket(ts, p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("written = %d", w.Count())
	}
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		gotTS, got, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("packet %d: %d bytes, want %d", i, len(got), len(want))
		}
		if gotTS.Unix() != ts.Unix() {
			t.Errorf("packet %d: ts %v", i, gotTS)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if r.Count() != 3 {
		t.Errorf("read = %d", r.Count())
	}
}

func TestPcapBadInputs(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewPcapReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	_ = w.WritePacket(time.Now(), []byte{1, 2, 3})
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewPcapReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err == nil {
		t.Error("truncated packet accepted")
	}
}

func TestUDPPortDirect(t *testing.T) {
	a, b, err := PairUDP()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if a.LocalAddr() == "" || b.LocalAddr() == "" {
		t.Error("no local address")
	}
	if !a.Send([]byte{1, 2, 3}) {
		t.Fatal("send failed")
	}
	d, ok := b.Recv()
	if !ok || len(d) != 3 {
		t.Fatalf("recv: %v %v", d, ok)
	}
	// A port without a peer drops sends.
	lone, err := NewUDPPort("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	if lone.Send([]byte{9}) {
		t.Error("send without peer succeeded")
	}
	_, _, drops := lone.Stats()
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
	if err := lone.SetPeer("this is not an address"); err == nil {
		t.Error("bad peer accepted")
	}
	lone.Close()
	lone.Close() // double close safe
	if _, ok := lone.Recv(); ok {
		t.Error("recv on closed port returned data")
	}
	// Bad constructor inputs.
	if _, err := NewUDPPort("nonsense::address::", ""); err == nil {
		t.Error("bad local addr accepted")
	}
	if _, err := NewUDPPort("127.0.0.1:0", "bad peer"); err == nil {
		t.Error("bad peer addr accepted")
	}
}

func TestWireStopsOnClose(t *testing.T) {
	a := NewChanPort(4)
	b := NewChanPort(4)
	Wire(a, b)
	a.Close()
	b.Close()
	// Sends after close are rejected; the forwarders exit without panic.
	if a.Send([]byte{1}) {
		t.Error("send after close succeeded")
	}
	time.Sleep(10 * time.Millisecond)
}

// TestInjectCloseRace hammers Inject and Send from many goroutines while
// the port closes concurrently. Before ChanPort serialized senders
// against Close, this panicked under -race with "send on closed channel"
// (Close closes rx between a sender's closed check and its channel send).
func TestInjectCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := NewChanPort(2)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					p.Inject([]byte{byte(i)})
					p.Send([]byte{byte(i)})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p.Close()
		}()
		close(start)
		wg.Wait()
		// Post-close sends are cleanly rejected.
		if p.Inject([]byte{1}) {
			t.Fatal("inject after close succeeded")
		}
		if p.Send([]byte{1}) {
			t.Fatal("send after close succeeded")
		}
	}
}

// TestDetailedStatsSplitsDrops checks the directional drop accounting.
func TestDetailedStatsSplitsDrops(t *testing.T) {
	p := NewChanPort(1)
	if !p.Inject([]byte{1}) || p.Inject([]byte{2}) {
		t.Fatal("inject accounting broken")
	}
	if !p.Send([]byte{3}) || p.Send([]byte{4}) {
		t.Fatal("send accounting broken")
	}
	st := p.DetailedStats()
	if st.RxDrops != 1 || st.TxDrops != 1 || st.Sent != 1 {
		t.Fatalf("detailed stats: %+v", st)
	}
	_, _, drops := p.Stats()
	if drops != 2 {
		t.Fatalf("summed drops = %d", drops)
	}
}

// TestScanIntTrailers summarizes a capture mixing stamped and plain frames.
func TestScanIntTrailers(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03}
	stamped := append([]byte(nil), plain...)
	for h := 0; h < 3; h++ {
		stamped = intmd.AppendHop(stamped, intmd.HopRecord{
			SwitchID: 7, StageID: uint16(h), InNanos: uint64(h * 10), OutNanos: uint64(h*10 + 5),
		})
	}
	now := time.Now()
	for _, frame := range [][]byte{plain, stamped, plain} {
		if err := w.WritePacket(now, frame); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ScanIntTrailers(rd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Packets != 3 || sum.Stamped != 1 || sum.Hops != 3 || sum.MaxHops != 3 {
		t.Fatalf("summary: %+v", sum)
	}
	if len(sum.Reports) != 1 || len(sum.Reports[0].Hops) != 3 || sum.Reports[0].Bytes != len(plain) {
		t.Fatalf("reports: %+v", sum.Reports)
	}
}
