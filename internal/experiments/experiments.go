// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each
// experiment returns a structured result with a paper-style text
// rendering; cmd/experiments prints them and the top-level benchmarks wrap
// them in testing.B loops.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/compiler/frontend"
	"ipsa/internal/ctrlplane"
	"ipsa/internal/hwmodel"
	"ipsa/internal/ipbm"
	"ipsa/internal/p4"
	"ipsa/internal/pisa"
	"ipsa/internal/pkt"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// Config parameterizes the harness.
type Config struct {
	// TestdataDir holds the shipped designs and scripts.
	TestdataDir string
	// NumTSPs sizes the IPSA device (software scale).
	NumTSPs int
	// Packets per software throughput measurement.
	Packets int
	// Entries installed per table when measuring repopulation cost.
	Entries int
	// Exec selects the stage executor on both devices (compiled flat
	// programs by default; the reference interpreter for comparison runs).
	Exec tsp.ExecMode
	// FlowOff disables the IPSA switch's always-on flow accounting — the
	// ablation knob for measuring its per-packet overhead.
	FlowOff bool
}

// Default returns the standard configuration rooted at dir.
func Default(dir string) Config {
	return Config{TestdataDir: dir, NumTSPs: 16, Packets: 20000, Entries: 256}
}

// UseCases in paper order.
var UseCases = []string{"C1", "C2", "C3"}

func scriptFile(uc string) string {
	switch uc {
	case "C1":
		return "ecmp.script"
	case "C2":
		return "srv6.script"
	case "C3":
		return "flowprobe.script"
	}
	return ""
}

func (c Config) read(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(c.TestdataDir, name))
	return string(b), err
}

func (c Config) loader() backend.Loader {
	return func(name string) (string, error) { return c.read(name) }
}

func (c Config) compilerOpts() backend.Options {
	o := backend.DefaultOptions()
	o.NumTSPs = c.NumTSPs
	return o
}

// baseWorkspace compiles the rP4 base design.
func (c Config) baseWorkspace() (*backend.Workspace, error) {
	src, err := c.read("base_l2l3.rp4")
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse("base_l2l3.rp4", src)
	if err != nil {
		return nil, err
	}
	return backend.NewWorkspace(prog, c.compilerOpts())
}

// p4FullCompile runs the complete P4 flow (parse, rp4fc, rp4bc) on the
// *updated* P4 source of a use case — the thing the P4 flow must redo from
// scratch for every change. The updated source is the base design merged
// with the use case's rP4 snippet, so both flows compile the same design.
func (c Config) p4FullCompile(uc string) (*template.Config, error) {
	src, err := c.read("base_l2l3.p4")
	if err != nil {
		return nil, err
	}
	hlir, err := p4.Parse("base_l2l3.p4", src)
	if err != nil {
		return nil, err
	}
	prog, _, err := frontend.Transform(hlir)
	if err != nil {
		return nil, err
	}
	opts := c.compilerOpts()
	opts.EnableMerge = false // the PISA target maps one stage per processor
	ws, err := backend.NewWorkspace(prog, opts)
	if err != nil {
		return nil, err
	}
	// Merge the use case's increment the way a developer editing the P4
	// source would (the full flow has no script language; we reuse the
	// snippet merge to build the same final design).
	if uc != "" {
		script, err := c.read(scriptFile(uc))
		if err != nil {
			return nil, err
		}
		script = rewriteScriptForP4Stages(script)
		rep, err := ws.ApplyScript(script, c.loader())
		if err != nil {
			return nil, err
		}
		return rep.Config, nil
	}
	return ws.Current().Config, nil
}

// rewriteScriptForP4Stages maps the rP4-native stage names used by the
// shipped scripts onto the <table>_stage names rp4fc generates.
func rewriteScriptForP4Stages(script string) string {
	repl := strings.NewReplacer(
		"port_map ", "port_map_tbl_stage ",
		"bd_vrf ", "bd_vrf_tbl_stage ",
		"l2_l3 ", "l2_l3_tbl_stage ",
		"ipv4_host_fib", "ipv4_host_stage",
		"ipv4_lpm_fib", "ipv4_lpm_stage",
		"ipv6_host_fib", "ipv6_host_stage",
		"ipv6_lpm_fib", "ipv6_lpm_stage",
		"nexthop ", "nexthop_tbl_stage ",
		"nexthop\n", "nexthop_tbl_stage\n",
		"l2_l3_rewrite", "smac_tbl_stage",
		"dmac ", "dmac_tbl_stage ",
	)
	return repl.Replace(script)
}

// --- Population ------------------------------------------------------------

type entryTarget interface {
	InsertEntry(req ctrlplane.EntryReq) (int, error)
	AddMember(req ctrlplane.MemberReq) error
}

// RouterMAC etc. are the canonical test topology addresses.
var (
	RouterMAC = pkt.MAC{0x02, 0, 0, 0, 0, 0x01}
	HostMAC   = pkt.MAC{0x02, 0, 0, 0, 0, 0x02}
	NhMAC     = pkt.MAC{0x02, 0, 0, 0, 0, 0x03}
	SmacMAC   = pkt.MAC{0x02, 0, 0, 0, 0, 0x04}
)

// PopulateBase installs the base forwarding state plus n filler entries
// per FIB table (so repopulation cost is visible in the full flow).
// Entries for tables the installed design no longer has (e.g. nexthop_tbl
// after ECMP replaced it) are skipped.
func PopulateBase(t entryTarget, cfg *template.Config, n int) error {
	type e = ctrlplane.EntryReq
	type fv = ctrlplane.FieldValue
	base := []e{
		{Table: "port_map_tbl", Keys: []fv{{Value: 1}}, Tag: 1, Params: []uint64{10}},
		{Table: "bd_vrf_tbl", Keys: []fv{{Value: 10}}, Tag: 1, Params: []uint64{100, 1}},
		{Table: "l2_l3_tbl", Keys: []fv{{Value: 100}, {Value: RouterMAC.Uint64()}}, Tag: 1},
		{Table: "nexthop_tbl", Keys: []fv{{Value: 7}}, Tag: 1, Params: []uint64{200, NhMAC.Uint64()}},
		{Table: "smac_tbl", Keys: []fv{{Value: 200}}, Tag: 1, Params: []uint64{SmacMAC.Uint64()}},
		{Table: "dmac_tbl", Keys: []fv{{Value: 200}, {Value: NhMAC.Uint64()}}, Tag: 1, Params: []uint64{3}},
		{Table: "dmac_tbl", Keys: []fv{{Value: 100}, {Value: HostMAC.Uint64()}}, Tag: 1, Params: []uint64{5}},
		// Covering route for the generated traffic.
		{Table: "ipv4_lpm", Keys: []fv{{Value: 0x0A000000}}, PrefixLen: 8, Tag: 1, Params: []uint64{7}},
	}
	for _, req := range base {
		if _, ok := cfg.Tables[req.Table]; !ok {
			continue
		}
		if _, err := t.InsertEntry(req); err != nil {
			return fmt.Errorf("populate %s: %w", req.Table, err)
		}
	}
	v6 := make([]byte, 16)
	v6[0], v6[1] = 0x20, 0x01
	if _, err := t.InsertEntry(e{Table: "ipv6_lpm", Keys: []fv{{Bytes: v6}}, PrefixLen: 32, Tag: 1, Params: []uint64{7}}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := t.InsertEntry(e{
			Table: "ipv4_host",
			Keys:  []fv{{Value: 1}, {Value: uint64(0x0B000000 + i)}},
			Tag:   1, Params: []uint64{7},
		}); err != nil {
			return err
		}
		if _, err := t.InsertEntry(e{
			Table: "ipv4_lpm",
			Keys:  []fv{{Value: uint64(0x0C000000 + i<<8)}}, PrefixLen: 24,
			Tag: 1, Params: []uint64{7},
		}); err != nil {
			return err
		}
	}
	return nil
}

// PopulateUseCase installs the entries a use case's new tables need.
func PopulateUseCase(t entryTarget, uc string, n int) error {
	type e = ctrlplane.EntryReq
	type fv = ctrlplane.FieldValue
	switch uc {
	case "C1":
		for _, tbl := range []string{"ecmp_ipv4", "ecmp_ipv6"} {
			if err := t.AddMember(ctrlplane.MemberReq{
				Table: tbl, Group: fv{Value: 7}, Tag: 1,
				Params: []uint64{200, NhMAC.Uint64()},
			}); err != nil {
				return err
			}
			if err := t.AddMember(ctrlplane.MemberReq{
				Table: tbl, Group: fv{Value: 7}, Tag: 1,
				Params: []uint64{200, NhMAC.Uint64() + 1},
			}); err != nil {
				return err
			}
		}
		// Second member's MAC needs a dmac entry.
		if _, err := t.InsertEntry(e{
			Table: "dmac_tbl",
			Keys:  []fv{{Value: 200}, {Value: NhMAC.Uint64() + 1}},
			Tag:   1, Params: []uint64{4},
		}); err != nil {
			return err
		}
	case "C2":
		sid := make([]byte, 16)
		sid[0], sid[15] = 0x20, 0xAA
		if _, err := t.InsertEntry(e{Table: "local_sid", Keys: []fv{{Bytes: sid}}, Tag: 1}); err != nil {
			return err
		}
		pfx := make([]byte, 16)
		pfx[0] = 0xfd
		if _, err := t.InsertEntry(e{Table: "end_transit", Keys: []fv{{Bytes: pfx}}, PrefixLen: 8, Tag: 1, Params: []uint64{7}}); err != nil {
			return err
		}
	case "C3":
		for i := 0; i < n; i++ {
			if _, err := t.InsertEntry(e{
				Table: "flow_probe",
				Keys:  []fv{{Value: 0x0A000001}, {Value: uint64(0x0A010000 + i)}},
				Tag:   1, Params: []uint64{uint64(i % 1024), 1 << 30},
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Table 1 ---------------------------------------------------------------

// Table1Row is one flow × use-case measurement.
type Table1Row struct {
	Flow      string // "PISA" | "IPSA" | "bmv2-equiv" | "ipbm"
	UseCase   string
	CompileMs float64
	LoadMs    float64
}

// Table1Result regenerates Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the update performance of the P4 flow (full recompile +
// full reload + full repopulation) against the rP4 flow (incremental
// compile + patch + new-table population). The hardware rows come from the
// FPGA time model fed with the real compiler deltas; the software rows are
// wall-clock measurements of the two behavioral models.
func Table1(cfg Config) (*Table1Result, error) {
	res := &Table1Result{}
	ltp := hwmodel.DefaultLoadTimeParams()
	for _, uc := range UseCases {
		// rP4 incremental flow, measured on ipbm.
		ws, err := cfg.baseWorkspace()
		if err != nil {
			return nil, err
		}
		sw, err := ipbm.New(swOpts(cfg))
		if err != nil {
			return nil, err
		}
		if _, err := sw.ApplyConfig(ws.Current().Config); err != nil {
			return nil, err
		}
		if err := PopulateBase(sw, ws.Current().Config, cfg.Entries); err != nil {
			return nil, err
		}
		script, err := cfg.read(scriptFile(uc))
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		rep, err := ws.ApplyScript(script, cfg.loader())
		if err != nil {
			return nil, err
		}
		ipbmCompile := time.Since(t0)
		t1 := time.Now()
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			return nil, err
		}
		if err := PopulateUseCase(sw, uc, cfg.Entries); err != nil {
			return nil, err
		}
		ipbmLoad := time.Since(t1)

		// P4 full flow, measured on the PISA behavioral model.
		popts := pisa.DefaultOptions()
		popts.Exec = cfg.Exec
		psw, err := pisa.New(popts)
		if err != nil {
			return nil, err
		}
		t2 := time.Now()
		fullCfg, err := cfg.p4FullCompile(uc)
		if err != nil {
			return nil, err
		}
		bmv2Compile := time.Since(t2)
		t3 := time.Now()
		if _, err := psw.ApplyConfig(fullCfg); err != nil {
			return nil, err
		}
		// Full reload discards everything: the P4 flow must repopulate
		// every table, not just the new ones.
		if err := PopulateBase(psw, fullCfg, cfg.Entries); err != nil {
			return nil, err
		}
		if err := PopulateUseCase(psw, uc, cfg.Entries); err != nil {
			return nil, err
		}
		bmv2Load := time.Since(t3)

		// Hardware rows from the FPGA time model, fed the real deltas.
		cost := hwmodel.UpdateCost{
			TotalStages:        len(rep.Config.IngressChain) + len(rep.Config.EgressChain),
			TotalTables:        len(rep.Config.Tables),
			ChangedStages:      len(rep.AddedStages) + len(rep.RemovedStages),
			NewTables:          len(rep.NewTables),
			RewrittenTSPs:      len(rep.RewrittenTSPs),
			HeaderLinksChanged: rep.HeaderLinksChanged,
		}
		for _, h := range rep.Config.Headers {
			if h.VarLen != nil {
				cost.VarLenHeaders++
			}
		}
		cost.Registers = len(rep.Config.Registers)

		res.Rows = append(res.Rows,
			Table1Row{Flow: "PISA", UseCase: uc, CompileMs: ltp.PISACompileMs(cost), LoadMs: ltp.PISALoadMs(cost)},
			Table1Row{Flow: "IPSA", UseCase: uc, CompileMs: ltp.IPSACompileMs(cost), LoadMs: ltp.IPSALoadMs(cost)},
			Table1Row{Flow: "bmv2-equiv", UseCase: uc, CompileMs: ms(bmv2Compile), LoadMs: ms(bmv2Load)},
			Table1Row{Flow: "ipbm", UseCase: uc, CompileMs: ms(ipbmCompile), LoadMs: ms(ipbmLoad)},
		)
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func swOpts(cfg Config) ipbm.Options {
	o := ipbm.DefaultOptions()
	o.NumTSPs = cfg.NumTSPs
	o.Exec = cfg.Exec
	o.FlowDisable = cfg.FlowOff
	return o
}

// Ratio reports incremental/full for a use case in one flow family.
func (r *Table1Result) Ratio(fullFlow, incFlow, uc string) float64 {
	var full, inc float64
	for _, row := range r.Rows {
		if row.UseCase != uc {
			continue
		}
		switch row.Flow {
		case fullFlow:
			full = row.CompileMs + row.LoadMs
		case incFlow:
			inc = row.CompileMs + row.LoadMs
		}
	}
	if full == 0 {
		return 0
	}
	return inc / full
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: compiling time t_C and loading time t_L (ms)\n")
	fmt.Fprintf(&b, "%-12s %-4s %12s %12s\n", "flow", "case", "t_C", "t_L")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-4s %12.2f %12.2f\n", row.Flow, row.UseCase, row.CompileMs, row.LoadMs)
	}
	for _, uc := range UseCases {
		fmt.Fprintf(&b, "ratio IPSA/PISA %s: %5.2f%%   ratio ipbm/bmv2 %s: %5.2f%%\n",
			uc, r.Ratio("PISA", "IPSA", uc)*100, uc, r.Ratio("bmv2-equiv", "ipbm", uc)*100)
	}
	return b.String()
}

// parseRP4 is a tiny indirection so throughput.go can parse without
// importing the parser twice.
func parseRP4(name, src string) (*ast.Program, error) { return parser.Parse(name, src) }

// P4FullCompile exposes the full P4-flow compile for the benches.
func P4FullCompile(cfg Config, uc string) (*template.Config, error) {
	return cfg.p4FullCompile(uc)
}

// NewPISASwitch builds a default-sized PISA baseline switch.
func NewPISASwitch() (*pisa.Switch, error) { return pisa.New(pisa.DefaultOptions()) }
