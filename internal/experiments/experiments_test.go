package experiments

import (
	"strings"
	"testing"
)

func testCfg() Config {
	cfg := Default("../../testdata")
	cfg.Packets = 2000
	cfg.Entries = 256
	return cfg
}

func TestTable1Shapes(t *testing.T) {
	r, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Hardware rows: the rP4 flow is a few percent of the P4 flow, as in
	// the paper (2.35% / 2.94% / 2.78% totals).
	for _, uc := range UseCases {
		ratio := r.Ratio("PISA", "IPSA", uc)
		if ratio <= 0 || ratio > 0.06 {
			t.Errorf("%s: hardware IPSA/PISA ratio %.2f%% outside (0, 6%%]", uc, ratio*100)
		}
	}
	// Software rows: the incremental patch writes far fewer entries, so
	// its loading time stays below the full flow's reload+repopulate.
	for _, uc := range UseCases {
		var full, inc float64
		for _, row := range r.Rows {
			if row.UseCase != uc {
				continue
			}
			switch row.Flow {
			case "bmv2-equiv":
				full = row.LoadMs
			case "ipbm":
				inc = row.LoadMs
			}
		}
		if inc >= full {
			t.Errorf("%s: ipbm load %.3fms not below bmv2-equiv %.3fms", uc, inc, full)
		}
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Error("rendering broken")
	}
}

func TestThroughputShapes(t *testing.T) {
	r, err := Throughput(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Modeled: PISA ahead by 2-3.6x (paper's 2.2-3x).
		ratio := row.PISAModelMpps / row.IPSAModelMpps
		if ratio < 2 || ratio > 3.6 {
			t.Errorf("%s: modeled ratio %.2f", row.UseCase, ratio)
		}
		// Software: both models forward; PISA's simpler per-packet path
		// is also faster in software.
		if row.IPSASoftPps <= 0 || row.PISASoftPps <= 0 {
			t.Errorf("%s: zero software throughput", row.UseCase)
		}
	}
	// C2 is the slowest case on IPSA in the cycle model (the hardware
	// claim); software pps ordering is scheduling noise at small packet
	// counts, so only sanity-bound it.
	byUC := map[string]ThroughputRow{}
	for _, row := range r.Rows {
		byUC[row.UseCase] = row
	}
	if !(byUC["C2"].IPSAModelMpps < byUC["C1"].IPSAModelMpps && byUC["C2"].IPSAModelMpps < byUC["C3"].IPSAModelMpps) {
		t.Error("modeled C2 not slowest")
	}
	if byUC["C2"].IPSASoftPps < byUC["C1"].IPSASoftPps/4 {
		t.Error("measured C2 implausibly slow")
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(testCfg())
	if r.IPSA.TotalLUT <= r.PISA.TotalLUT {
		t.Error("IPSA should cost more LUTs")
	}
	if r.IPSA.TotalFF <= r.PISA.TotalFF {
		t.Error("IPSA should cost more FFs")
	}
}

func TestTable3UsesRealLayouts(t *testing.T) {
	r, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	byUC := map[string]Table3Row{}
	for _, row := range r.Rows {
		byUC[row.UseCase] = row
	}
	// C1 keeps the base's 7 TSPs (ECMP replaces nexthop's slot); the idle
	// TSP keeps C1's power below the fully active C2's.
	if byUC["C1"].ActiveTSPs != 7 {
		t.Errorf("C1 active = %d", byUC["C1"].ActiveTSPs)
	}
	if byUC["C1"].IPSAWatts >= byUC["C2"].IPSAWatts {
		t.Error("C1 with an idle TSP should consume less than fully active C2")
	}
	// C2 outgrows 8 TSPs (header linkage defeats the v4/v6 merges) and is
	// clamped to a fully active machine: the paper's ~+10%.
	if byUC["C2"].ActiveTSPs != 8 {
		t.Errorf("C2 active = %d", byUC["C2"].ActiveTSPs)
	}
	over := (byUC["C2"].IPSAWatts - byUC["C2"].PISAWatts) / byUC["C2"].PISAWatts
	if over < 0.05 || over > 0.15 {
		t.Errorf("C2 overhead %.1f%%", over*100)
	}
}

func TestFig4BaseMapsToSevenTSPs(t *testing.T) {
	r, err := Fig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "base design (7 TSPs):") {
		t.Errorf("fig4 header missing:\n%s", s)
	}
	// The base mapping shows the paper's merges.
	if !strings.Contains(s, "ipv4_host_fib") || !strings.Contains(s, "+") {
		t.Errorf("merged TSPs missing:\n%s", s)
	}
}

func TestFig6Crossover(t *testing.T) {
	r := Fig6(testCfg())
	if len(r.Stages) != 8 {
		t.Fatalf("sweep length %d", len(r.Stages))
	}
	if r.Crossover < 5 || r.Crossover > 7 {
		t.Errorf("crossover = %d", r.Crossover)
	}
	// PISA flat, IPSA increasing.
	for i := 1; i < 8; i++ {
		if r.PISA[i] != r.PISA[0] {
			t.Error("PISA power not flat")
		}
		if r.IPSA[i] <= r.IPSA[i-1] {
			t.Error("IPSA power not increasing")
		}
	}
}

func TestDiscussionModels(t *testing.T) {
	r, err := Discussion(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPSALatencyCycles >= r.PISALatencyCycles {
		t.Errorf("base-layout IPSA latency %d should beat PISA %d", r.IPSALatencyCycles, r.PISALatencyCycles)
	}
	if r.AdvantageAt4 < 1.5 {
		t.Errorf("capacity advantage %f", r.AdvantageAt4)
	}
	if len(r.Pipelines) != 8 {
		t.Errorf("sweep: %v", r.Pipelines)
	}
}
