package experiments

import (
	"fmt"
	"strings"
	"time"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/hwmodel"
	"ipsa/internal/ipbm"
	"ipsa/internal/pisa"
	"ipsa/internal/template"
	"ipsa/internal/trafficgen"
)

// ThroughputRow is one use case's throughput, modeled (the FPGA cycle
// model at 200 MHz) and measured (the software behavioral models).
type ThroughputRow struct {
	UseCase string
	// Modeled Mpps (hardware substitute for Sec. 5).
	PISAModelMpps, IPSAModelMpps float64
	// Measured software packets/sec.
	PISASoftPps, IPSASoftPps float64
}

// ThroughputResult regenerates the Sec. 5 throughput comparison.
type ThroughputResult struct {
	Rows []ThroughputRow
}

// prepared holds a pair of populated switches for one use case.
type prepared struct {
	ipsa *ipbm.Switch
	pisa *pisa.Switch
	gen  *trafficgen.Generator
}

// PrepareUseCase builds both switches with the use case installed and
// populated, plus a matching traffic generator. Exported for the benches.
func PrepareUseCase(cfg Config, uc string) (*prepared, error) {
	ws, err := cfg.baseWorkspace()
	if err != nil {
		return nil, err
	}
	script, err := cfg.read(scriptFile(uc))
	if err != nil {
		return nil, err
	}
	rep, err := ws.ApplyScript(script, cfg.loader())
	if err != nil {
		return nil, err
	}

	sw, err := ipbm.New(swOpts(cfg))
	if err != nil {
		return nil, err
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		return nil, err
	}
	if err := PopulateBase(sw, rep.Config, 8); err != nil {
		return nil, err
	}
	if err := PopulateUseCase(sw, uc, 8); err != nil {
		return nil, err
	}

	popts := pisa.DefaultOptions()
	psw, err := pisa.New(popts)
	if err != nil {
		return nil, err
	}
	if err := applyToPISA(psw, rep.Config, cfg); err != nil {
		return nil, err
	}
	if err := PopulateBase(psw, rep.Config, 8); err != nil {
		return nil, err
	}
	if err := PopulateUseCase(psw, uc, 8); err != nil {
		return nil, err
	}

	gcfg := trafficgen.DefaultConfig()
	gcfg.RouterMAC, gcfg.HostMAC = RouterMAC, HostMAC
	switch uc {
	case "C1":
		gcfg.Profile = trafficgen.Mixed46
		gcfg.V4Base = [4]byte{10, 2, 0, 0}
	case "C2":
		gcfg.Profile = trafficgen.SRv6
		gcfg.SID[0], gcfg.SID[15] = 0x20, 0xAA
		gcfg.NextSegment[0], gcfg.NextSegment[1] = 0x20, 0x01
	case "C3":
		gcfg.Profile = trafficgen.IPv4Routed
		gcfg.V4Base = [4]byte{10, 1, 0, 0}
	}
	gen, err := trafficgen.New(gcfg)
	if err != nil {
		return nil, err
	}
	return &prepared{ipsa: sw, pisa: psw, gen: gen}, nil
}

// applyToPISA recompiles the same design without IPSA-specific merging and
// installs it on the fixed pipeline.
func applyToPISA(psw *pisa.Switch, ipsaCfg *template.Config, cfg Config) error {
	// The config already carries per-stage templates; PISA maps chains
	// onto fixed stages itself, so the same config loads directly.
	_, err := psw.ApplyConfig(ipsaCfg)
	return err
}

// IPSA exposes the prepared IPSA switch (for benches).
func (p *prepared) IPSA() *ipbm.Switch { return p.ipsa }

// PISA exposes the prepared PISA switch.
func (p *prepared) PISA() *pisa.Switch { return p.pisa }

// Gen exposes the traffic generator.
func (p *prepared) Gen() *trafficgen.Generator { return p.gen }

// measure pushes n packets and returns packets/second.
func measureIPSA(p *prepared, n int) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := p.ipsa.ProcessPacket(p.gen.NextShared(), 1); err != nil {
			return 0, err
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

func measurePISA(p *prepared, n int) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := p.pisa.ProcessPacket(p.gen.NextShared(), 1); err != nil {
			return 0, err
		}
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// Throughput regenerates the Sec. 5 comparison.
func Throughput(cfg Config) (*ThroughputResult, error) {
	res := &ThroughputResult{}
	params := hwmodel.DefaultCycleParams()
	for _, uc := range UseCases {
		modeled, err := params.Model(uc, hwmodel.UseCaseClasses(uc))
		if err != nil {
			return nil, err
		}
		prep, err := PrepareUseCase(cfg, uc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", uc, err)
		}
		ipsaPps, err := measureIPSA(prep, cfg.Packets)
		if err != nil {
			return nil, err
		}
		pisaPps, err := measurePISA(prep, cfg.Packets)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ThroughputRow{
			UseCase:       uc,
			PISAModelMpps: modeled.PISAMpps,
			IPSAModelMpps: modeled.IPSAMpps,
			PISASoftPps:   pisaPps,
			IPSASoftPps:   ipsaPps,
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *ThroughputResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. 5 throughput (hardware model @200MHz, software measured)\n")
	fmt.Fprintf(&b, "%-4s %14s %14s %16s %16s\n", "case",
		"PISA model", "IPSA model", "PISA soft pps", "ipbm soft pps")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4s %11.2f Mpps %11.2f Mpps %16.0f %16.0f\n",
			row.UseCase, row.PISAModelMpps, row.IPSAModelMpps, row.PISASoftPps, row.IPSASoftPps)
	}
	return b.String()
}

// --- Tables 2 & 3, Fig. 6 ---------------------------------------------------

// Table2Result regenerates the FPGA resource comparison.
type Table2Result struct {
	PISA hwmodel.ResourceReport
	IPSA hwmodel.ResourceReport
}

// Table2 models both 8-processor prototypes.
func Table2(cfg Config) *Table2Result {
	p := hwmodel.DefaultResourceParams()
	return &Table2Result{
		PISA: p.PISAResources(8, 912),
		IPSA: p.IPSAResources(8, 64),
	}
}

// String renders Table 2.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: FPGA resource comparison (% of Alveo U280)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s\n", "component", "PISA LUT", "PISA FF", "IPSA LUT", "IPSA FF")
	fmt.Fprintf(&b, "%-14s %7.2f%% %7.2f%% %8s %8s\n", "front parser", r.PISA.FrontParserLUT, r.PISA.FrontParserFF, "-", "-")
	fmt.Fprintf(&b, "%-14s %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n", "processors", r.PISA.ProcessorsLUT, r.PISA.ProcessorsFF, r.IPSA.ProcessorsLUT, r.IPSA.ProcessorsFF)
	fmt.Fprintf(&b, "%-14s %8s %8s %7.2f%% %7.2f%%\n", "crossbar", "-", "-", r.IPSA.CrossbarLUT, r.IPSA.CrossbarFF)
	fmt.Fprintf(&b, "%-14s %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n", "total", r.PISA.TotalLUT, r.PISA.TotalFF, r.IPSA.TotalLUT, r.IPSA.TotalFF)
	return b.String()
}

// Table3Result regenerates the power comparison for the three use cases.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one use case's modeled power.
type Table3Row struct {
	UseCase    string
	ActiveTSPs int
	PISAWatts  float64
	IPSAWatts  float64
}

// Table3 models device power for each use case, deriving the active TSP
// count from the actual compiled layout.
func Table3(cfg Config) (*Table3Result, error) {
	pp := hwmodel.DefaultPowerParams()
	res := &Table3Result{}
	for _, uc := range UseCases {
		active, err := activeTSPsFor(cfg, uc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			UseCase:    uc,
			ActiveTSPs: active,
			PISAWatts:  pp.PISAPower(8),
			IPSAWatts:  pp.IPSAPower(active, 8),
		})
	}
	return res, nil
}

// activeTSPsFor compiles the use case at FPGA scale (8 TSPs where it
// fits) and reports active TSPs; designs that outgrow 8 report 8.
func activeTSPsFor(cfg Config, uc string) (int, error) {
	ws, err := cfg.baseWorkspace8(uc)
	if err != nil {
		return 0, err
	}
	active := ws.Current().Stats.TSPsUsed
	if active > 8 {
		active = 8
	}
	return active, nil
}

// baseWorkspace8 compiles base+use case at the paper's 8-TSP scale,
// falling back to a wider machine when the update cannot fit (SRv6's
// header linkage defeats the v4/v6 merges; see EXPERIMENTS.md).
func (c Config) baseWorkspace8(uc string) (*backend.Workspace, error) {
	for _, tsps := range []int{8, 12, 16} {
		o := backend.DefaultOptions()
		o.NumTSPs = tsps
		src, err := c.read("base_l2l3.rp4")
		if err != nil {
			return nil, err
		}
		prog, err := parseRP4("base_l2l3.rp4", src)
		if err != nil {
			return nil, err
		}
		ws, err := backend.NewWorkspace(prog, o)
		if err != nil {
			return nil, err
		}
		if uc != "" {
			script, err := c.read(scriptFile(uc))
			if err != nil {
				return nil, err
			}
			if _, err := ws.ApplyScript(script, c.loader()); err != nil {
				continue // try a wider machine
			}
		}
		return ws, nil
	}
	return nil, fmt.Errorf("experiments: %s does not fit any modeled machine", uc)
}

// String renders Table 3.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: modeled power (W) for the three use cases\n")
	fmt.Fprintf(&b, "%-4s %12s %10s %10s %8s\n", "case", "active TSPs", "PISA", "IPSA", "delta")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4s %12d %9.2fW %9.2fW %+7.1f%%\n",
			row.UseCase, row.ActiveTSPs, row.PISAWatts, row.IPSAWatts,
			(row.IPSAWatts-row.PISAWatts)/row.PISAWatts*100)
	}
	return b.String()
}

// Fig6Result regenerates the power-vs-effective-stages sweep.
type Fig6Result struct {
	Stages []int
	PISA   []float64
	IPSA   []float64
	// Crossover is the largest stage count where IPSA wins.
	Crossover int
}

// Fig6 sweeps effective stage counts 1..8 on an 8-TSP machine.
func Fig6(cfg Config) *Fig6Result {
	pp := hwmodel.DefaultPowerParams()
	res := &Fig6Result{Crossover: pp.PowerCrossover(8)}
	for k := 1; k <= 8; k++ {
		res.Stages = append(res.Stages, k)
		res.PISA = append(res.PISA, pp.PISAPower(8))
		res.IPSA = append(res.IPSA, pp.IPSAPower(k, 8))
	}
	return res
}

// String renders Fig. 6 as a table.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 6: power vs effective physical stages (8-TSP machine)\n")
	fmt.Fprintf(&b, "%-7s %10s %10s\n", "stages", "PISA (W)", "IPSA (W)")
	for i, k := range r.Stages {
		fmt.Fprintf(&b, "%-7d %10.2f %10.2f\n", k, r.PISA[i], r.IPSA[i])
	}
	fmt.Fprintf(&b, "IPSA consumes less power up to %d active stages\n", r.Crossover)
	return b.String()
}

// Fig4Result describes the TSP mapping of the base design and updates.
type Fig4Result struct {
	Lines []string
}

// Fig4 renders the stage-to-TSP mapping for the base design and each use
// case — the qualitative content of the paper's Fig. 4.
func Fig4(cfg Config) (*Fig4Result, error) {
	res := &Fig4Result{}
	emit := func(title string, c *backend.Compiled) {
		res.Lines = append(res.Lines, title)
		byTSP := map[int][]string{}
		for s, t := range c.Config.TSPAssignment {
			byTSP[t] = append(byTSP[t], s)
		}
		for t := 0; t < c.Assignment.NumTSP; t++ {
			if stages, ok := byTSP[t]; ok {
				res.Lines = append(res.Lines, fmt.Sprintf("  TSP%-2d: %s", t, strings.Join(stages, " + ")))
			}
		}
	}
	ws, err := cfg.baseWorkspace8("")
	if err != nil {
		return nil, err
	}
	emit("base design (7 TSPs):", ws.Current())
	for _, uc := range UseCases {
		w, err := cfg.baseWorkspace8(uc)
		if err != nil {
			return nil, err
		}
		emit(fmt.Sprintf("after %s:", uc), w.Current())
	}
	return res, nil
}

// String renders the mapping.
func (r *Fig4Result) String() string { return strings.Join(r.Lines, "\n") + "\n" }

// DiscussionResult models the paper's Sec. 5 "Discussion": pipeline
// latency and multi-pipeline memory efficiency.
type DiscussionResult struct {
	// Latency in cycles for the base design's layout.
	PISALatencyCycles int
	IPSALatencyCycles int
	LatencyCrossover  int
	// Effective table capacity across parallel pipelines.
	Pipelines    []int
	PISACapacity []float64
	IPSACapacity []float64
	AdvantageAt4 float64
}

// Discussion evaluates the Sec. 5 discussion models against the compiled
// base design's actual layout.
func Discussion(cfg Config) (*DiscussionResult, error) {
	ws, err := cfg.baseWorkspace8("")
	if err != nil {
		return nil, err
	}
	active := ws.Current().Stats.TSPsUsed
	lp := hwmodel.DefaultLatencyParams()
	mp := hwmodel.DefaultMultiPipeParams()
	res := &DiscussionResult{
		PISALatencyCycles: lp.PISALatency(8),
		IPSALatencyCycles: lp.IPSALatency(active, 8),
		LatencyCrossover:  lp.LatencyCrossover(8),
		AdvantageAt4:      mp.CapacityAdvantage(4),
	}
	for n := 1; n <= 8; n++ {
		res.Pipelines = append(res.Pipelines, n)
		res.PISACapacity = append(res.PISACapacity, mp.PISAEffectiveCapacity(n))
		res.IPSACapacity = append(res.IPSACapacity, mp.IPSAEffectiveCapacity(n))
	}
	return res, nil
}

// String renders the discussion models.
func (r *DiscussionResult) String() string {
	var b strings.Builder
	b.WriteString("Sec. 5 discussion models\n")
	fmt.Fprintf(&b, "pipeline latency (base design layout): PISA %d cycles, IPSA %d cycles; IPSA wins up to %d active TSPs\n",
		r.PISALatencyCycles, r.IPSALatencyCycles, r.LatencyCrossover)
	b.WriteString("effective table capacity vs parallel pipelines (fraction of physical SRAM holding distinct entries):\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "pipelines", "PISA", "IPSA")
	for i, n := range r.Pipelines {
		fmt.Fprintf(&b, "%-10d %10.2f %10.2f\n", n, r.PISACapacity[i], r.IPSACapacity[i])
	}
	fmt.Fprintf(&b, "IPSA effective-capacity advantage at 4 pipelines: %.1fx\n", r.AdvantageAt4)
	return b.String()
}
