package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6 is the fixed 40-byte IPv6 header.
type IPv6 struct {
	Version      uint8 // always 6 on serialize
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src          [16]byte
	Dst          [16]byte
}

// SrcAddr returns the source address as a netip.Addr.
func (h *IPv6) SrcAddr() netip.Addr { return netip.AddrFrom16(h.Src) }

// DstAddr returns the destination address as a netip.Addr.
func (h *IPv6) DstAddr() netip.Addr { return netip.AddrFrom16(h.Dst) }

// Decode fills h from data.
func (h *IPv6) Decode(data []byte) error {
	if len(data) < IPv6Len {
		return fmt.Errorf("pkt: ipv6 header needs %d bytes, have %d", IPv6Len, len(data))
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	h.Version = uint8(vtf >> 28)
	if h.Version != 6 {
		return fmt.Errorf("pkt: ipv6 version is %d", h.Version)
	}
	h.TrafficClass = uint8(vtf >> 20)
	h.FlowLabel = vtf & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	h.NextHeader = data[6]
	h.HopLimit = data[7]
	copy(h.Src[:], data[8:24])
	copy(h.Dst[:], data[24:40])
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (h *IPv6) HeaderLen() int { return IPv6Len }

// SerializeTo prepends the header, setting Version and PayloadLen from the
// current buffer contents.
func (h *IPv6) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	buf := b.PrependBytes(IPv6Len)
	h.Version = 6
	h.PayloadLen = uint16(payloadLen)
	binary.BigEndian.PutUint32(buf[0:4], uint32(h.Version)<<28|uint32(h.TrafficClass)<<20|h.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(buf[4:6], h.PayloadLen)
	buf[6] = h.NextHeader
	buf[7] = h.HopLimit
	copy(buf[8:24], h.Src[:])
	copy(buf[24:40], h.Dst[:])
	return nil
}

// SRH is the IPv6 Segment Routing Header (RFC 8754).
type SRH struct {
	NextHeader   uint8
	HdrExtLen    uint8 // in 8-byte units, not counting the first 8
	RoutingType  uint8 // 4 for SRH
	SegmentsLeft uint8
	LastEntry    uint8
	Flags        uint8
	Tag          uint16
	Segments     [][16]byte // segment list, index 0 is the last segment
}

// Decode fills h from data, including the segment list.
func (h *SRH) Decode(data []byte) error {
	if len(data) < SRHFixedLen {
		return fmt.Errorf("pkt: srh needs %d bytes, have %d", SRHFixedLen, len(data))
	}
	h.NextHeader = data[0]
	h.HdrExtLen = data[1]
	h.RoutingType = data[2]
	h.SegmentsLeft = data[3]
	h.LastEntry = data[4]
	h.Flags = data[5]
	h.Tag = binary.BigEndian.Uint16(data[6:8])
	total := 8 + int(h.HdrExtLen)*8
	if total > len(data) {
		return fmt.Errorf("pkt: srh ext len %d exceeds %d available bytes", h.HdrExtLen, len(data))
	}
	nSeg := int(h.HdrExtLen) / 2
	h.Segments = h.Segments[:0]
	for i := 0; i < nSeg; i++ {
		var s [16]byte
		copy(s[:], data[SRHFixedLen+i*SegmentLength:])
		h.Segments = append(h.Segments, s)
	}
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (h *SRH) HeaderLen() int { return SRHFixedLen + len(h.Segments)*SegmentLength }

// SerializeTo prepends the SRH, deriving HdrExtLen and LastEntry from the
// segment list.
func (h *SRH) SerializeTo(b *SerializeBuffer) error {
	n := h.HeaderLen()
	buf := b.PrependBytes(n)
	h.HdrExtLen = uint8(len(h.Segments) * 2)
	if len(h.Segments) > 0 {
		h.LastEntry = uint8(len(h.Segments) - 1)
	} else {
		h.LastEntry = 0
	}
	h.RoutingType = RoutingTypeSRH
	buf[0] = h.NextHeader
	buf[1] = h.HdrExtLen
	buf[2] = h.RoutingType
	buf[3] = h.SegmentsLeft
	buf[4] = h.LastEntry
	buf[5] = h.Flags
	binary.BigEndian.PutUint16(buf[6:8], h.Tag)
	for i, s := range h.Segments {
		copy(buf[SRHFixedLen+i*SegmentLength:], s[:])
	}
	return nil
}

// ActiveSegment returns the segment indexed by SegmentsLeft, the next
// destination for an SR endpoint.
func (h *SRH) ActiveSegment() ([16]byte, error) {
	if int(h.SegmentsLeft) >= len(h.Segments) {
		return [16]byte{}, fmt.Errorf("pkt: srh segments_left %d out of range (have %d segments)", h.SegmentsLeft, len(h.Segments))
	}
	return h.Segments[h.SegmentsLeft], nil
}
