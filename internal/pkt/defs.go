package pkt

// EtherType values used by the shipped designs.
const (
	EtherTypeIPv4  uint16 = 0x0800
	EtherTypeARP   uint16 = 0x0806
	EtherTypeVLAN  uint16 = 0x8100
	EtherTypeIPv6  uint16 = 0x86DD
	EtherTypeQinQ  uint16 = 0x88A8
	EtherTypeMPLS  uint16 = 0x8847
	EtherTypeLLDP  uint16 = 0x88CC
	EtherTypePause uint16 = 0x8808
)

// IP protocol / IPv6 next-header numbers.
const (
	IPProtoICMP     uint8 = 1
	IPProtoIGMP     uint8 = 2
	IPProtoIPv4     uint8 = 4 // IP-in-IP
	IPProtoTCP      uint8 = 6
	IPProtoUDP      uint8 = 17
	IPProtoIPv6     uint8 = 41
	IPProtoRouting  uint8 = 43 // includes SRH
	IPProtoFragment uint8 = 44
	IPProtoGRE      uint8 = 47
	IPProtoICMPv6   uint8 = 58
	IPProtoNoNext   uint8 = 59
	IPProtoDstOpts  uint8 = 60
)

// IPv6 routing header types.
const (
	RoutingTypeSRH uint8 = 4 // RFC 8754 Segment Routing Header
)

// Fixed header lengths in bytes (SRH is variable, see SRH.Length).
const (
	EthernetLen   = 14
	VLANTagLen    = 4
	ARPLen        = 28
	IPv4MinLen    = 20
	IPv6Len       = 40
	SRHFixedLen   = 8
	TCPMinLen     = 20
	UDPLen        = 8
	ICMPLen       = 8
	SegmentLength = 16 // one SRH segment (an IPv6 address)
)
