package pkt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		Src:       MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		EtherType: EtherTypeIPv4,
	}
	b := NewSerializeBuffer(32)
	if err := e.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d Ethernet
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Errorf("round trip: got %+v, want %+v", d, e)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := VLAN{PCP: 5, DEI: true, VID: 0x123, EtherType: EtherTypeIPv6}
	b := NewSerializeBuffer(8)
	if err := v.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d VLAN
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != v {
		t.Errorf("round trip: got %+v, want %+v", d, v)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{
		DSCP: 10, ECN: 1, ID: 0xbeef, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: IPProtoTCP,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
	}
	b := NewSerializeBuffer(64)
	copy(b.PrependBytes(8), []byte("payload!"))
	if err := h.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	if !VerifyIPv4Checksum(raw) {
		t.Error("serialized header fails checksum verification")
	}
	var d IPv4
	if err := d.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if d.TotalLen != uint16(IPv4MinLen+8) {
		t.Errorf("TotalLen = %d, want %d", d.TotalLen, IPv4MinLen+8)
	}
	if d.Src != h.Src || d.Dst != h.Dst || d.TTL != h.TTL || d.Protocol != h.Protocol {
		t.Errorf("round trip mismatch: %+v vs %+v", d, h)
	}
	// Corrupt a byte: checksum must fail.
	raw[8] ^= 0xff
	if VerifyIPv4Checksum(raw) {
		t.Error("corrupted header passes checksum")
	}
}

func TestIPv4Options(t *testing.T) {
	h := IPv4{TTL: 1, Protocol: IPProtoUDP, Options: []byte{0x94, 0x04, 0x00, 0x00}}
	b := NewSerializeBuffer(64)
	if err := h.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d IPv4
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d.IHL != 6 {
		t.Errorf("IHL = %d, want 6", d.IHL)
	}
	if !bytes.Equal(d.Options, h.Options) {
		t.Errorf("options = %x, want %x", d.Options, h.Options)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4
	if err := h.Decode(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if err := h.Decode(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad[0] = 0x4F // IHL 15 => 60 bytes, buffer has 20
	if err := h.Decode(bad); err == nil {
		t.Error("oversized IHL accepted")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	h := IPv6{
		TrafficClass: 0x42, FlowLabel: 0xABCDE,
		NextHeader: IPProtoTCP, HopLimit: 63,
	}
	h.Src[15], h.Dst[15] = 1, 2
	b := NewSerializeBuffer(64)
	copy(b.PrependBytes(4), []byte("data"))
	if err := h.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d IPv6
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d.TrafficClass != h.TrafficClass || d.FlowLabel != h.FlowLabel ||
		d.NextHeader != h.NextHeader || d.HopLimit != h.HopLimit ||
		d.Src != h.Src || d.Dst != h.Dst {
		t.Errorf("round trip mismatch: %+v vs %+v", d, h)
	}
	if d.PayloadLen != 4 {
		t.Errorf("PayloadLen = %d, want 4", d.PayloadLen)
	}
}

func TestSRHRoundTrip(t *testing.T) {
	h := SRH{NextHeader: IPProtoIPv6, SegmentsLeft: 1, Tag: 7}
	var s1, s2 [16]byte
	s1[15], s2[15] = 0x10, 0x20
	h.Segments = [][16]byte{s1, s2}
	b := NewSerializeBuffer(64)
	if err := h.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != SRHFixedLen+2*SegmentLength {
		t.Fatalf("len = %d, want %d", b.Len(), SRHFixedLen+2*SegmentLength)
	}
	var d SRH
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d.HdrExtLen != 4 || d.LastEntry != 1 || d.RoutingType != RoutingTypeSRH {
		t.Errorf("derived fields: %+v", d)
	}
	if len(d.Segments) != 2 || d.Segments[0] != s1 || d.Segments[1] != s2 {
		t.Errorf("segments mismatch: %v", d.Segments)
	}
	seg, err := d.ActiveSegment()
	if err != nil {
		t.Fatal(err)
	}
	if seg != s2 {
		t.Errorf("active segment = %x, want %x", seg, s2)
	}
	d.SegmentsLeft = 5
	if _, err := d.ActiveSegment(); err == nil {
		t.Error("out-of-range SegmentsLeft accepted")
	}
}

func TestTCPRoundTripAndChecksum(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtoTCP, Src: [4]byte{1, 2, 3, 4}, Dst: [4]byte{5, 6, 7, 8}}
	tcp := TCP{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 100, Flags: TCPSyn | TCPAck, Window: 4096}
	raw, err := Serialize(&ip, &tcp, Payload("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := FixTCPChecksum(raw, 12, 16, 4, IPv4MinLen); err != nil {
		t.Fatal(err)
	}
	// Recomputing over the segment with the stored checksum must give 0.
	seg := raw[IPv4MinLen:]
	sum := PseudoHeaderSum(raw[12:16], raw[16:20], IPProtoTCP, len(seg))
	if got := Checksum(seg, sum); got != 0 {
		t.Errorf("tcp checksum residual = %#x, want 0", got)
	}
	var d TCP
	if err := d.Decode(raw[IPv4MinLen:]); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1234 || d.DstPort != 80 || d.Flags != TCPSyn|TCPAck {
		t.Errorf("round trip mismatch: %+v", d)
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	u := UDP{SrcPort: 5353, DstPort: 53}
	b := NewSerializeBuffer(64)
	copy(b.PrependBytes(3), []byte("abc"))
	if err := u.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d UDP
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d.Length != UDPLen+3 {
		t.Errorf("Length = %d, want %d", d.Length, UDPLen+3)
	}
	ip := IPv6{NextHeader: IPProtoUDP, HopLimit: 64}
	raw, err := Serialize(&ip, &u, Payload("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := FixUDPChecksum(raw, 8, 24, 16, IPv6Len); err != nil {
		t.Fatal(err)
	}
	seg := raw[IPv6Len:]
	sum := PseudoHeaderSum(raw[8:24], raw[24:40], IPProtoUDP, len(seg))
	if got := Checksum(seg, sum); got != 0 && binary.BigEndian.Uint16(seg[6:8]) != 0xffff {
		t.Errorf("udp checksum residual = %#x", got)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       2,
		SenderHW: MAC{1, 2, 3, 4, 5, 6}, SenderIP: [4]byte{10, 0, 0, 1},
		TargetHW: MAC{6, 5, 4, 3, 2, 1}, TargetIP: [4]byte{10, 0, 0, 2},
	}
	b := NewSerializeBuffer(32)
	if err := a.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	var d ARP
	if err := d.Decode(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Errorf("round trip: %+v vs %+v", d, a)
	}
}

func TestICMPChecksum(t *testing.T) {
	c := ICMP{Type: 8, Code: 0, Rest: 0x00010001}
	b := NewSerializeBuffer(32)
	copy(b.PrependBytes(4), []byte("ping"))
	if err := c.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	if got := Checksum(b.Bytes(), 0); got != 0 {
		t.Errorf("icmp checksum residual = %#x, want 0", got)
	}
}

func TestMACConversions(t *testing.T) {
	m := MAC{0x00, 0x1b, 0x21, 0x3c, 0x4d, 0x5e}
	if got := MACFromUint64(m.Uint64()); got != m {
		t.Errorf("uint64 round trip: %v vs %v", got, m)
	}
	p, err := ParseMAC("00:1b:21:3c:4d:5e")
	if err != nil {
		t.Fatal(err)
	}
	if p != m {
		t.Errorf("ParseMAC = %v, want %v", p, m)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Error("bad MAC accepted")
	}
}

func TestUpdateChecksum16(t *testing.T) {
	// Build a valid IPv4 header, tweak TTL via incremental update, verify.
	h := IPv4{TTL: 64, Protocol: IPProtoTCP, Src: [4]byte{1, 1, 1, 1}, Dst: [4]byte{2, 2, 2, 2}}
	b := NewSerializeBuffer(32)
	if err := h.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()
	oldWord := binary.BigEndian.Uint16(raw[8:10]) // TTL|Proto
	raw[8]--                                      // decrement TTL
	newWord := binary.BigEndian.Uint16(raw[8:10])
	ck := binary.BigEndian.Uint16(raw[10:12])
	binary.BigEndian.PutUint16(raw[10:12], UpdateChecksum16(ck, oldWord, newWord))
	if !VerifyIPv4Checksum(raw) {
		t.Error("incrementally updated checksum invalid")
	}
}

func TestChecksumProperties(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		// Appending the checksum of data makes the whole sum verify to 0.
		ck := Checksum(data, 0)
		whole := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(whole, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
