// Package pkt implements the packet representation shared by every data
// plane in this repository.
//
// Two views of a packet coexist:
//
//   - Concrete header types (Ethernet, IPv4, IPv6, SRH, TCP, UDP, ...) used
//     by traffic generators, tests and examples. They follow the
//     preallocated-decoding style of gopacket's DecodingLayerParser: Decode
//     fills an existing struct from bytes without allocating, SerializeTo
//     prepends bytes to a SerializeBuffer.
//
//   - A raw bit-addressed view (GetBits/SetBits and the Field type) used by
//     the IPSA Templated Stage Processors, whose header layouts are supplied
//     at runtime by the rP4 compiler rather than compiled into the switch.
//
// The HeaderVector type records where each parsed header instance lives in
// the packet buffer. IPSA's distributed on-demand parsing passes the vector
// from stage to stage so that no header is parsed twice (paper Sec. 2.1).
package pkt
