package pkt

import (
	"encoding/binary"
	"fmt"
	"net"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in the usual colon-separated form.
func (m MAC) String() string { return net.HardwareAddr(m[:]).String() }

// Uint64 returns the address as an integer in the low 48 bits, matching the
// representation the action interpreter uses for bit<48> fields.
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v.
func MACFromUint64(v uint64) MAC {
	return MAC{byte(v >> 40), byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseMAC parses a colon-separated Ethernet address.
func ParseMAC(s string) (MAC, error) {
	hw, err := net.ParseMAC(s)
	if err != nil {
		return MAC{}, err
	}
	if len(hw) != 6 {
		return MAC{}, fmt.Errorf("pkt: %q is not a 48-bit MAC", s)
	}
	var m MAC
	copy(m[:], hw)
	return m, nil
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Decode fills e from the first EthernetLen bytes of data.
func (e *Ethernet) Decode(data []byte) error {
	if len(data) < EthernetLen {
		return fmt.Errorf("pkt: ethernet header needs %d bytes, have %d", EthernetLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo prepends the header bytes.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(EthernetLen)
	copy(buf[0:6], e.Dst[:])
	copy(buf[6:12], e.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], e.EtherType)
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (e *Ethernet) HeaderLen() int { return EthernetLen }

// VLAN is an 802.1Q tag.
type VLAN struct {
	PCP       uint8 // 3-bit priority
	DEI       bool
	VID       uint16 // 12-bit VLAN id
	EtherType uint16 // encapsulated ethertype
}

// Decode fills v from the first VLANTagLen bytes of data (the bytes after
// the 0x8100 TPID).
func (v *VLAN) Decode(data []byte) error {
	if len(data) < VLANTagLen {
		return fmt.Errorf("pkt: vlan tag needs %d bytes, have %d", VLANTagLen, len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.PCP = uint8(tci >> 13)
	v.DEI = tci&0x1000 != 0
	v.VID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(data[2:4])
	return nil
}

// SerializeTo prepends the tag bytes.
func (v *VLAN) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(VLANTagLen)
	tci := uint16(v.PCP)<<13 | v.VID&0x0fff
	if v.DEI {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(buf[0:2], tci)
	binary.BigEndian.PutUint16(buf[2:4], v.EtherType)
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (v *VLAN) HeaderLen() int { return VLANTagLen }
