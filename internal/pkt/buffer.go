package pkt

// SerializeBuffer builds packets back to front: each layer prepends its
// bytes and treats the current contents as its payload, following the
// gopacket SerializeBuffer contract. The zero value is ready to use.
type SerializeBuffer struct {
	data  []byte
	start int // index of first valid byte in data
}

// NewSerializeBuffer returns a buffer with room for headroom bytes of
// prepended headers before any reallocation.
func NewSerializeBuffer(headroom int) *SerializeBuffer {
	if headroom < 0 {
		headroom = 0
	}
	return &SerializeBuffer{data: make([]byte, headroom), start: headroom}
}

// Bytes returns the serialized packet. The slice aliases the buffer and is
// invalidated by the next Prepend/Append/Clear.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len reports the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// PrependBytes returns a writable slice of n bytes placed before the current
// contents.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n <= 0 {
		return nil
	}
	if b.start < n {
		grow := n - b.start
		if grow < 64 {
			grow = 64
		}
		nd := make([]byte, len(b.data)+grow)
		copy(nd[grow:], b.data)
		b.data = nd
		b.start += grow
	}
	b.start -= n
	return b.data[b.start : b.start+n]
}

// AppendBytes returns a writable slice of n bytes placed after the current
// contents. Used for payloads and trailers.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	if n <= 0 {
		return nil
	}
	old := len(b.data)
	if cap(b.data) >= old+n {
		b.data = b.data[:old+n]
	} else {
		nd := make([]byte, old+n, (old+n)*2)
		copy(nd, b.data)
		b.data = nd
	}
	return b.data[old:]
}

// Clear resets the buffer, retaining its storage and restoring headroom.
func (b *SerializeBuffer) Clear() {
	b.data = b.data[:cap(b.data)]
	b.start = len(b.data)
}

// Serializer is implemented by headers that can write themselves to a
// SerializeBuffer. Layers are serialized innermost-first so that each call
// prepends in front of its payload.
type Serializer interface {
	SerializeTo(b *SerializeBuffer) error
}

// Serialize lays out the given layers outermost-first (Ethernet, IPv4, TCP,
// payload...) and returns the packet bytes.
func Serialize(layers ...Serializer) ([]byte, error) {
	b := NewSerializeBuffer(128)
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, err
		}
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}

// Payload is a raw byte Serializer.
type Payload []byte

// SerializeTo appends the payload bytes.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}
