package pkt

import (
	"bytes"
	"testing"
)

func TestHeaderVectorBasics(t *testing.T) {
	var hv HeaderVector
	if hv.Valid(0) {
		t.Error("empty vector reports header 0 valid")
	}
	hv.Set(2, 14, 20)
	if !hv.Valid(2) || hv.Valid(0) || hv.Valid(1) {
		t.Error("validity wrong after Set")
	}
	loc, ok := hv.Loc(2)
	if !ok || loc.Off != 14 || loc.Len != 20 {
		t.Errorf("Loc = %+v, %v", loc, ok)
	}
	hv.Invalidate(2)
	if hv.Valid(2) {
		t.Error("header valid after Invalidate")
	}
	// Out-of-range operations are no-ops, not panics.
	hv.Invalidate(99)
	hv.Set(InvalidHeader, 0, 0)
	if _, ok := hv.Loc(99); ok {
		t.Error("unknown header reported present")
	}
}

func TestPacketInsertRemoveBytes(t *testing.T) {
	data := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	p := NewPacket(append([]byte(nil), data...), 8)
	p.HV.Set(0, 0, 2) // header before insertion point
	p.HV.Set(1, 4, 4) // header after insertion point

	if err := p.InsertBytes(4, 3); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3, 0, 0, 0, 4, 5, 6, 7}
	if !bytes.Equal(p.Data, want) {
		t.Errorf("after insert: %v, want %v", p.Data, want)
	}
	if loc, _ := p.HV.Loc(0); loc.Off != 0 {
		t.Errorf("header 0 moved to %d", loc.Off)
	}
	if loc, _ := p.HV.Loc(1); loc.Off != 7 {
		t.Errorf("header 1 at %d, want 7", loc.Off)
	}

	if err := p.RemoveBytes(4, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data, data) {
		t.Errorf("after remove: %v, want %v", p.Data, data)
	}
	if loc, _ := p.HV.Loc(1); loc.Off != 4 {
		t.Errorf("header 1 at %d, want 4", loc.Off)
	}

	if err := p.InsertBytes(-1, 2); err == nil {
		t.Error("negative offset accepted")
	}
	if err := p.RemoveBytes(6, 100); err == nil {
		t.Error("oversized remove accepted")
	}
}

func TestPacketFieldAccess(t *testing.T) {
	data := make([]byte, 34)
	p := NewPacket(data, 16)
	p.HV.Set(3, 14, 20)
	if err := p.SetFieldBits(3, 64, 8, 0x7f); err != nil { // "TTL" of a header at 14
		t.Fatal(err)
	}
	if data[14+8] != 0x7f {
		t.Errorf("byte = %#x, want 0x7f", data[22])
	}
	v, err := p.FieldBits(3, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x7f {
		t.Errorf("read back %#x", v)
	}
	if _, err := p.FieldBits(9, 0, 8); err == nil {
		t.Error("invalid header read accepted")
	}
	if err := p.SetFieldBits(9, 0, 8, 1); err == nil {
		t.Error("invalid header write accepted")
	}

	if err := p.SetMetaBits(12, 16, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	mv, err := p.MetaBits(12, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mv != 0xCAFE {
		t.Errorf("meta = %#x", mv)
	}
}

func TestPacketCloneAndReset(t *testing.T) {
	p := NewPacket([]byte{1, 2, 3}, 4)
	p.InPort = 5
	p.OutPort = 6
	p.ToCPU = true
	p.HV.Set(0, 0, 3)
	p.Meta[0] = 0xAA

	q := p.Clone()
	q.Data[0] = 99
	q.Meta[0] = 0xBB
	q.HV.Set(0, 1, 2)
	if p.Data[0] != 1 || p.Meta[0] != 0xAA {
		t.Error("clone shares storage with original")
	}
	if loc, _ := p.HV.Loc(0); loc.Off != 0 {
		t.Error("clone shares header vector")
	}
	if q.InPort != 5 || q.OutPort != 6 || !q.ToCPU {
		t.Error("clone lost scalar fields")
	}

	p.Reset([]byte{9})
	if p.Drop || p.ToCPU || p.OutPort != -1 || p.InPort != 0 {
		t.Error("reset left stale state")
	}
	if p.Meta[0] != 0 {
		t.Error("reset left stale metadata")
	}
	if p.HV.Valid(0) {
		t.Error("reset left stale header vector")
	}
}

func TestSerializeBuffer(t *testing.T) {
	b := NewSerializeBuffer(4)
	copy(b.PrependBytes(3), "def")
	copy(b.PrependBytes(3), "abc") // forces growth past headroom
	if string(b.Bytes()) != "abcdef" {
		t.Errorf("got %q", b.Bytes())
	}
	copy(b.AppendBytes(3), "ghi")
	if string(b.Bytes()) != "abcdefghi" {
		t.Errorf("got %q", b.Bytes())
	}
	if b.Len() != 9 {
		t.Errorf("Len = %d", b.Len())
	}
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("Len after Clear = %d", b.Len())
	}
	copy(b.PrependBytes(2), "xy")
	if string(b.Bytes()) != "xy" {
		t.Errorf("got %q after reuse", b.Bytes())
	}
	if b.PrependBytes(0) != nil || b.AppendBytes(-1) != nil {
		t.Error("zero/negative sizes should return nil")
	}
}
