package pkt

import "fmt"

// GetBits reads width bits starting at bit offset bitOff from buf,
// interpreting the packet in network order (bit 0 is the most significant
// bit of buf[0]). width must be in [1, 64].
func GetBits(buf []byte, bitOff, width int) (uint64, error) {
	if width <= 0 || width > 64 {
		return 0, fmt.Errorf("pkt: bit width %d out of range [1,64]", width)
	}
	end := bitOff + width
	if bitOff < 0 || end > len(buf)*8 {
		return 0, fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, end, len(buf)*8)
	}
	var v uint64
	// Accumulate whole bytes covering the bit range, then shift out slack.
	firstByte := bitOff / 8
	lastByte := (end + 7) / 8 // exclusive
	if lastByte-firstByte <= 8 {
		for i := firstByte; i < lastByte; i++ {
			v = v<<8 | uint64(buf[i])
		}
		slack := lastByte*8 - end
		v >>= uint(slack)
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		return v, nil
	}
	// The range spans 9 bytes (unaligned 64-bit field): assemble bitwise.
	for i := bitOff; i < end; i++ {
		bit := (buf[i/8] >> uint(7-i%8)) & 1
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// SetBits writes the low width bits of v into buf starting at bit offset
// bitOff, in network order. width must be in [1, 64].
func SetBits(buf []byte, bitOff, width int, v uint64) error {
	if width <= 0 || width > 64 {
		return fmt.Errorf("pkt: bit width %d out of range [1,64]", width)
	}
	end := bitOff + width
	if bitOff < 0 || end > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, end, len(buf)*8)
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for i := end - 1; i >= bitOff; i-- {
		byteIdx := i / 8
		mask := byte(1) << uint(7-i%8)
		if v&1 == 1 {
			buf[byteIdx] |= mask
		} else {
			buf[byteIdx] &^= mask
		}
		v >>= 1
	}
	return nil
}

// GetBytes copies a byte-aligned field of width bits (a multiple of 8) into
// dst. It supports fields wider than 64 bits such as IPv6 addresses.
func GetBytes(buf []byte, bitOff, width int, dst []byte) error {
	if width%8 != 0 || bitOff%8 != 0 {
		return copyUnaligned(buf, bitOff, width, dst)
	}
	n := width / 8
	off := bitOff / 8
	if off < 0 || off+n > len(buf) {
		return fmt.Errorf("pkt: byte range [%d,%d) outside buffer of %d bytes", off, off+n, len(buf))
	}
	if len(dst) < n {
		return fmt.Errorf("pkt: destination of %d bytes too small for %d-byte field", len(dst), n)
	}
	copy(dst[:n], buf[off:off+n])
	return nil
}

// SetBytes writes src into a byte-aligned field of width bits at bitOff.
func SetBytes(buf []byte, bitOff, width int, src []byte) error {
	if width%8 != 0 || bitOff%8 != 0 {
		return storeUnaligned(buf, bitOff, width, src)
	}
	n := width / 8
	off := bitOff / 8
	if off < 0 || off+n > len(buf) {
		return fmt.Errorf("pkt: byte range [%d,%d) outside buffer of %d bytes", off, off+n, len(buf))
	}
	if len(src) < n {
		return fmt.Errorf("pkt: source of %d bytes too small for %d-byte field", len(src), n)
	}
	copy(buf[off:off+n], src[:n])
	return nil
}

func copyUnaligned(buf []byte, bitOff, width int, dst []byte) error {
	if bitOff < 0 || bitOff+width > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, bitOff+width, len(buf)*8)
	}
	nBytes := (width + 7) / 8
	if len(dst) < nBytes {
		return fmt.Errorf("pkt: destination of %d bytes too small for %d-bit field", len(dst), width)
	}
	// Left-pad so the field ends at a byte boundary of dst.
	pad := nBytes*8 - width
	for i := range dst[:nBytes] {
		dst[i] = 0
	}
	for i := 0; i < width; i++ {
		srcBit := bitOff + i
		bit := (buf[srcBit/8] >> uint(7-srcBit%8)) & 1
		dstBit := pad + i
		if bit == 1 {
			dst[dstBit/8] |= 1 << uint(7-dstBit%8)
		}
	}
	return nil
}

func storeUnaligned(buf []byte, bitOff, width int, src []byte) error {
	if bitOff < 0 || bitOff+width > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, bitOff+width, len(buf)*8)
	}
	nBytes := (width + 7) / 8
	if len(src) < nBytes {
		return fmt.Errorf("pkt: source of %d bytes too small for %d-bit field", len(src), width)
	}
	pad := nBytes*8 - width
	for i := 0; i < width; i++ {
		srcBit := pad + i
		bit := (src[srcBit/8] >> uint(7-srcBit%8)) & 1
		dstBit := bitOff + i
		mask := byte(1) << uint(7-dstBit%8)
		if bit == 1 {
			buf[dstBit/8] |= mask
		} else {
			buf[dstBit/8] &^= mask
		}
	}
	return nil
}
