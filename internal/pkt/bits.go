package pkt

import "fmt"

// GetBits reads width bits starting at bit offset bitOff from buf,
// interpreting the packet in network order (bit 0 is the most significant
// bit of buf[0]). width must be in [1, 64].
func GetBits(buf []byte, bitOff, width int) (uint64, error) {
	if width <= 0 || width > 64 {
		return 0, fmt.Errorf("pkt: bit width %d out of range [1,64]", width)
	}
	end := bitOff + width
	if bitOff < 0 || end > len(buf)*8 {
		return 0, fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, end, len(buf)*8)
	}
	var v uint64
	// Accumulate whole bytes covering the bit range, then shift out slack.
	firstByte := bitOff / 8
	lastByte := (end + 7) / 8 // exclusive
	if lastByte-firstByte <= 8 {
		for i := firstByte; i < lastByte; i++ {
			v = v<<8 | uint64(buf[i])
		}
		slack := lastByte*8 - end
		v >>= uint(slack)
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		return v, nil
	}
	// The range spans 9 bytes (unaligned 64-bit field): assemble bitwise.
	for i := bitOff; i < end; i++ {
		bit := (buf[i/8] >> uint(7-i%8)) & 1
		v = v<<1 | uint64(bit)
	}
	return v, nil
}

// SetBits writes the low width bits of v into buf starting at bit offset
// bitOff, in network order. width must be in [1, 64].
func SetBits(buf []byte, bitOff, width int, v uint64) error {
	if width <= 0 || width > 64 {
		return fmt.Errorf("pkt: bit width %d out of range [1,64]", width)
	}
	end := bitOff + width
	if bitOff < 0 || end > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, end, len(buf)*8)
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	// Byte-wise store: stage the field into byte alignment (MSB first,
	// shifted so it ends at the last byte's boundary slack), then splice
	// the partial first/last bytes with masks and copy the middle whole.
	firstByte := bitOff / 8
	lastByte := (end + 7) / 8 // exclusive
	n := lastByte - firstByte // 1..9 bytes
	headBits := uint(bitOff - firstByte*8)
	endSlack := uint(lastByte*8 - end)
	var tmp [9]byte
	sh := v << endSlack
	for i := n - 1; i >= 0; i-- {
		tmp[i] = byte(sh)
		sh >>= 8
	}
	if int(endSlack)+width > 64 {
		// The aligned value needs more than 64 bits; its top byte is the
		// part shifted out of the uint64 above.
		tmp[0] = byte(v >> (64 - endSlack))
	}
	firstMask := byte(0xFF) >> headBits
	lastMask := byte(0xFF) << endSlack
	if n == 1 {
		m := firstMask & lastMask
		buf[firstByte] = buf[firstByte]&^m | tmp[0]&m
		return nil
	}
	buf[firstByte] = buf[firstByte]&^firstMask | tmp[0]&firstMask
	copy(buf[firstByte+1:lastByte-1], tmp[1:n-1])
	buf[lastByte-1] = buf[lastByte-1]&^lastMask | tmp[n-1]&lastMask
	return nil
}

// GetBytes copies a byte-aligned field of width bits (a multiple of 8) into
// dst. It supports fields wider than 64 bits such as IPv6 addresses.
func GetBytes(buf []byte, bitOff, width int, dst []byte) error {
	if width%8 != 0 || bitOff%8 != 0 {
		return copyUnaligned(buf, bitOff, width, dst)
	}
	n := width / 8
	off := bitOff / 8
	if off < 0 || off+n > len(buf) {
		return fmt.Errorf("pkt: byte range [%d,%d) outside buffer of %d bytes", off, off+n, len(buf))
	}
	if len(dst) < n {
		return fmt.Errorf("pkt: destination of %d bytes too small for %d-byte field", len(dst), n)
	}
	copy(dst[:n], buf[off:off+n])
	return nil
}

// SetBytes writes src into a byte-aligned field of width bits at bitOff.
func SetBytes(buf []byte, bitOff, width int, src []byte) error {
	if width%8 != 0 || bitOff%8 != 0 {
		return storeUnaligned(buf, bitOff, width, src)
	}
	n := width / 8
	off := bitOff / 8
	if off < 0 || off+n > len(buf) {
		return fmt.Errorf("pkt: byte range [%d,%d) outside buffer of %d bytes", off, off+n, len(buf))
	}
	if len(src) < n {
		return fmt.Errorf("pkt: source of %d bytes too small for %d-byte field", len(src), n)
	}
	copy(buf[off:off+n], src[:n])
	return nil
}

func copyUnaligned(buf []byte, bitOff, width int, dst []byte) error {
	if bitOff < 0 || bitOff+width > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, bitOff+width, len(buf)*8)
	}
	nBytes := (width + 7) / 8
	if len(dst) < nBytes {
		return fmt.Errorf("pkt: destination of %d bytes too small for %d-bit field", len(dst), width)
	}
	// Left-pad so the field ends at a byte boundary of dst: dst[0] holds
	// the leading (8-pad)-bit fragment, every later byte a full 8 bits.
	// Bounds were validated above, so the chunked GetBits calls cannot
	// fail.
	pad := nBytes*8 - width
	firstWidth := 8 - pad
	if firstWidth > width {
		firstWidth = width
	}
	v, err := GetBits(buf, bitOff, firstWidth)
	if err != nil {
		return err
	}
	dst[0] = byte(v)
	off := bitOff + firstWidth
	for j := 1; j < nBytes; j++ {
		v, err = GetBits(buf, off, 8)
		if err != nil {
			return err
		}
		dst[j] = byte(v)
		off += 8
	}
	return nil
}

func storeUnaligned(buf []byte, bitOff, width int, src []byte) error {
	if bitOff < 0 || bitOff+width > len(buf)*8 {
		return fmt.Errorf("pkt: bit range [%d,%d) outside buffer of %d bits", bitOff, bitOff+width, len(buf)*8)
	}
	nBytes := (width + 7) / 8
	if len(src) < nBytes {
		return fmt.Errorf("pkt: source of %d bytes too small for %d-bit field", len(src), width)
	}
	// Mirror copyUnaligned: the leading (8-pad)-bit fragment from src[0],
	// then full bytes, each spliced in with the byte-wise SetBits.
	pad := nBytes*8 - width
	firstWidth := 8 - pad
	if firstWidth > width {
		firstWidth = width
	}
	mask := byte(0xFF) >> uint(8-firstWidth)
	if err := SetBits(buf, bitOff, firstWidth, uint64(src[0]&mask)); err != nil {
		return err
	}
	off := bitOff + firstWidth
	for j := 1; j < nBytes; j++ {
		if err := SetBits(buf, off, 8, uint64(src[j])); err != nil {
			return err
		}
		off += 8
	}
	return nil
}
