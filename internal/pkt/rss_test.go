package pkt

import (
	"testing"
)

func rssV4(t *testing.T, src, dst [4]byte, proto uint8, sport, dport uint16, ttl uint8) []byte {
	t.Helper()
	var l4 Serializer
	switch proto {
	case IPProtoTCP:
		l4 = &TCP{SrcPort: sport, DstPort: dport}
	case IPProtoUDP:
		l4 = &UDP{SrcPort: sport, DstPort: dport}
	}
	layers := []Serializer{
		&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: ttl, Protocol: proto, Src: src, Dst: dst},
	}
	if l4 != nil {
		layers = append(layers, l4)
	}
	raw, err := Serialize(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRSSHashFlowAffinity: the hash depends only on flow identity — two
// packets of one flow hash identically even when everything else about
// them (TTL here, payload in general) differs; changing any 5-tuple
// component changes the hash.
func TestRSSHashFlowAffinity(t *testing.T) {
	src, dst := [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}
	a := RSSHash(rssV4(t, src, dst, IPProtoTCP, 1234, 80, 64))
	b := RSSHash(rssV4(t, src, dst, IPProtoTCP, 1234, 80, 7)) // same flow, different TTL
	if a != b {
		t.Fatal("same flow hashed differently")
	}
	variants := [][]byte{
		rssV4(t, [4]byte{10, 0, 0, 9}, dst, IPProtoTCP, 1234, 80, 64), // src addr
		rssV4(t, src, [4]byte{10, 0, 0, 9}, IPProtoTCP, 1234, 80, 64), // dst addr
		rssV4(t, src, dst, IPProtoUDP, 1234, 80, 64),                  // proto
		rssV4(t, src, dst, IPProtoTCP, 1235, 80, 64),                  // src port
		rssV4(t, src, dst, IPProtoTCP, 1234, 81, 64),                  // dst port
	}
	for i, v := range variants {
		if RSSHash(v) == a {
			t.Errorf("variant %d collided with the base flow", i)
		}
	}
}

// TestRSSHashMatchesFiveTupleGrouping: over a population of generated
// flows, frames that ExtractFiveTuple assigns to the same flow always get
// the same RSS hash — the steering function refines, never splits, the
// canonical flow identity.
func TestRSSHashMatchesFiveTupleGrouping(t *testing.T) {
	byFlow := map[FiveTuple]uint64{}
	for i := 0; i < 32; i++ {
		for rep := 0; rep < 3; rep++ {
			raw := rssV4(t, [4]byte{10, 0, byte(i), 1}, [4]byte{10, 1, 0, byte(i)},
				IPProtoTCP, uint16(1000+i), 443, uint8(64-rep))
			ft, ok := ExtractFiveTuple(raw)
			if !ok {
				t.Fatal("ExtractFiveTuple failed on generated frame")
			}
			h := RSSHash(raw)
			if prev, seen := byFlow[ft]; seen && prev != h {
				t.Fatalf("flow %v hashed to both %x and %x", ft, prev, h)
			}
			byFlow[ft] = h
		}
	}
}

// TestRSSHashIPv6: v6 flows hash on addresses + proto + ports, stable
// across hop-limit changes.
func TestRSSHashIPv6(t *testing.T) {
	mk := func(dstLast byte, hop uint8, dport uint16) []byte {
		var src, dst [16]byte
		src[0], src[15] = 0x20, 0x01
		dst[0], dst[15] = 0x20, dstLast
		raw, err := Serialize(
			&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv6},
			&IPv6{NextHeader: IPProtoUDP, HopLimit: hop, Src: src, Dst: dst},
			&UDP{SrcPort: 5000, DstPort: dport},
		)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if RSSHash(mk(2, 64, 53)) != RSSHash(mk(2, 1, 53)) {
		t.Fatal("same v6 flow hashed differently across hop limits")
	}
	if RSSHash(mk(2, 64, 53)) == RSSHash(mk(3, 64, 53)) {
		t.Fatal("different v6 destinations collided")
	}
	if RSSHash(mk(2, 64, 53)) == RSSHash(mk(2, 64, 54)) {
		t.Fatal("different v6 ports collided")
	}
}

// TestRSSHashVLAN: a VLAN tag is transparent to flow identity — the inner
// 5-tuple hashes the same tagged or not... except it must still differ
// from an unrelated flow. (Steering must see through the tag so a flow
// keeps its shard across VLAN rewrites.)
func TestRSSHashVLAN(t *testing.T) {
	inner := func(tagged bool) []byte {
		layers := []Serializer{
			&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
			&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
			&TCP{SrcPort: 1234, DstPort: 80},
		}
		if tagged {
			layers[0] = &Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeVLAN}
			layers = append(layers[:1], append([]Serializer{&VLAN{VID: 42, EtherType: EtherTypeIPv4}}, layers[1:]...)...)
		}
		raw, err := Serialize(layers...)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if RSSHash(inner(false)) != RSSHash(inner(true)) {
		t.Fatal("VLAN tag changed the flow hash")
	}
}

// TestRSSHashL2Fallback: non-IP frames hash on MAC pair + EtherType; the
// hash distinguishes MACs and never panics on short input.
func TestRSSHashL2Fallback(t *testing.T) {
	arp := func(srcLast byte) []byte {
		raw, err := Serialize(&Ethernet{
			Dst: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			Src: MAC{2, 0, 0, 0, 0, srcLast}, EtherType: 0x0806,
		})
		if err != nil {
			t.Fatal(err)
		}
		return append(raw, 0x00, 0x01) // token ARP body
	}
	if RSSHash(arp(1)) != RSSHash(arp(1)) {
		t.Fatal("L2 hash unstable")
	}
	if RSSHash(arp(1)) == RSSHash(arp(2)) {
		t.Fatal("different L2 sources collided")
	}
}

// TestRSSHashTruncated: truncated and garbage frames still produce a
// deterministic hash — steering never fails.
func TestRSSHashTruncated(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x01, 0x02, 0x03},
		rssV4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, IPProtoTCP, 1, 2, 64)[:15], // cut mid-IP
		rssV4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, IPProtoTCP, 1, 2, 64)[:20],
	}
	for i, c := range cases {
		a, b := RSSHash(c), RSSHash(c)
		if a != b {
			t.Errorf("case %d: hash not deterministic", i)
		}
	}
}

// TestRSSHashSpread: 256 distinct flows spread over 8 shards without any
// shard starving — a weak but meaningful uniformity check on the
// finalizer (hash % N uses the low bits).
func TestRSSHashSpread(t *testing.T) {
	const shards = 8
	var counts [shards]int
	for i := 0; i < 256; i++ {
		raw := rssV4(t, [4]byte{10, byte(i / 16), byte(i % 16), 1}, [4]byte{10, 1, 0, 1},
			IPProtoUDP, uint16(2000+i), 53, 64)
		counts[RSSHash(raw)%shards]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d starved: %v", s, counts)
		}
	}
}
