package pkt

import "encoding/binary"

// Checksum computes the RFC 1071 internet checksum over data with an
// initial partial sum, returning the folded one's-complement result.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum computes the partial sum of the IPv4/IPv6 pseudo header
// used by TCP, UDP and ICMPv6 checksums. src and dst must both be 4 bytes
// (IPv4) or 16 bytes (IPv6).
func PseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	var sum uint32
	for i := 0; i+1 < len(src); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i:]))
	}
	for i := 0; i+1 < len(dst); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(dst[i:]))
	}
	sum += uint32(proto)
	sum += uint32(length>>16) + uint32(length&0xffff)
	return sum
}

// UpdateChecksum16 incrementally updates an internet checksum (RFC 1624)
// when a 16-bit field changes from old to new. check is the current
// checksum field value.
func UpdateChecksum16(check, old, new uint16) uint16 {
	// RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
	sum := uint32(^check) + uint32(^old) + uint32(new)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
