package pkt

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func mkTuple(a, b string, proto uint8, sp, dp uint16) FiveTuple {
	return FiveTuple{
		Src: netip.MustParseAddr(a), Dst: netip.MustParseAddr(b),
		Proto: proto, SrcPort: sp, DstPort: dp,
	}
}

func TestFastHashSymmetric(t *testing.T) {
	f := mkTuple("10.0.0.1", "10.0.0.2", IPProtoTCP, 1234, 80)
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash not symmetric")
	}
	g := mkTuple("10.0.0.1", "10.0.0.3", IPProtoTCP, 1234, 80)
	if f.FastHash() == g.FastHash() {
		t.Error("different flows hash equal (likely collision bug)")
	}
}

func TestFastHashSymmetryProperty(t *testing.T) {
	f := func(a, b [4]byte, proto uint8, sp, dp uint16) bool {
		ft := FiveTuple{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			Proto: proto, SrcPort: sp, DstPort: dp,
		}
		return ft.FastHash() == ft.Reverse().FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionalHashAsymmetric(t *testing.T) {
	f := mkTuple("10.0.0.1", "10.0.0.2", IPProtoUDP, 5000, 53)
	if f.DirectionalHash() == f.Reverse().DirectionalHash() {
		t.Error("DirectionalHash unexpectedly symmetric for this flow")
	}
	// Deterministic across calls.
	if f.DirectionalHash() != f.DirectionalHash() {
		t.Error("DirectionalHash not deterministic")
	}
}

func TestExtractFiveTupleIPv4TCP(t *testing.T) {
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		&TCP{SrcPort: 4444, DstPort: 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := ExtractFiveTuple(raw)
	if !ok {
		t.Fatal("extract failed")
	}
	want := mkTuple("10.0.0.1", "10.0.0.2", IPProtoTCP, 4444, 80)
	if f != want {
		t.Errorf("got %+v, want %+v", f, want)
	}
}

func TestExtractFiveTupleVLANAndIPv6(t *testing.T) {
	ip := IPv6{NextHeader: IPProtoUDP, HopLimit: 64}
	ip.Src[15], ip.Dst[15] = 1, 2
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeVLAN},
		&VLAN{VID: 100, EtherType: EtherTypeIPv6},
		&ip,
		&UDP{SrcPort: 53, DstPort: 5353},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := ExtractFiveTuple(raw)
	if !ok {
		t.Fatal("extract failed")
	}
	if f.Proto != IPProtoUDP || f.SrcPort != 53 || f.DstPort != 5353 {
		t.Errorf("got %+v", f)
	}
}

func TestExtractFiveTupleSRv6Inner(t *testing.T) {
	ip := IPv6{NextHeader: IPProtoRouting, HopLimit: 64}
	srh := SRH{NextHeader: IPProtoTCP, SegmentsLeft: 0, Segments: [][16]byte{{15: 9}}}
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeIPv6},
		&ip, &srh,
		&TCP{SrcPort: 10, DstPort: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := ExtractFiveTuple(raw)
	if !ok {
		t.Fatal("extract failed")
	}
	if f.Proto != IPProtoTCP || f.SrcPort != 10 || f.DstPort != 20 {
		t.Errorf("SRH not skipped: %+v", f)
	}
}

func TestExtractFiveTupleNonIP(t *testing.T) {
	raw, err := Serialize(
		&Ethernet{EtherType: EtherTypeARP},
		&ARP{Op: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ExtractFiveTuple(raw); ok {
		t.Error("ARP packet yielded a five-tuple")
	}
	if _, ok := ExtractFiveTuple([]byte{1, 2}); ok {
		t.Error("truncated packet yielded a five-tuple")
	}
}
