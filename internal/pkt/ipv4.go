package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4 is an IPv4 header without options beyond those captured by IHL.
type IPv4 struct {
	Version  uint8 // always 4 on serialize
	IHL      uint8 // header length in 32-bit words
	DSCP     uint8
	ECN      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      [4]byte
	Dst      [4]byte
	Options  []byte
}

// SrcAddr returns the source address as a netip.Addr.
func (h *IPv4) SrcAddr() netip.Addr { return netip.AddrFrom4(h.Src) }

// DstAddr returns the destination address as a netip.Addr.
func (h *IPv4) DstAddr() netip.Addr { return netip.AddrFrom4(h.Dst) }

// Decode fills h from data.
func (h *IPv4) Decode(data []byte) error {
	if len(data) < IPv4MinLen {
		return fmt.Errorf("pkt: ipv4 header needs %d bytes, have %d", IPv4MinLen, len(data))
	}
	h.Version = data[0] >> 4
	h.IHL = data[0] & 0x0f
	if h.Version != 4 {
		return fmt.Errorf("pkt: ipv4 version is %d", h.Version)
	}
	hlen := int(h.IHL) * 4
	if hlen < IPv4MinLen || hlen > len(data) {
		return fmt.Errorf("pkt: ipv4 IHL %d invalid for %d bytes", h.IHL, len(data))
	}
	h.DSCP = data[1] >> 2
	h.ECN = data[1] & 0x03
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	if hlen > IPv4MinLen {
		h.Options = append(h.Options[:0], data[IPv4MinLen:hlen]...)
	} else {
		h.Options = h.Options[:0]
	}
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (h *IPv4) HeaderLen() int { return IPv4MinLen + (len(h.Options)+3)/4*4 }

// SerializeTo prepends the header, fixing Version/IHL/TotalLen and
// recomputing the checksum. The buffer contents at call time are taken as
// the payload for TotalLen.
func (h *IPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hlen := h.HeaderLen()
	buf := b.PrependBytes(hlen)
	h.Version = 4
	h.IHL = uint8(hlen / 4)
	h.TotalLen = uint16(hlen + payloadLen)
	buf[0] = h.Version<<4 | h.IHL
	buf[1] = h.DSCP<<2 | h.ECN&0x03
	binary.BigEndian.PutUint16(buf[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	buf[10], buf[11] = 0, 0
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	copy(buf[IPv4MinLen:hlen], h.Options)
	for i := IPv4MinLen + len(h.Options); i < hlen; i++ {
		buf[i] = 0
	}
	h.Checksum = Checksum(buf[:hlen], 0)
	binary.BigEndian.PutUint16(buf[10:12], h.Checksum)
	return nil
}

// VerifyChecksum reports whether the checksum over a raw IPv4 header is
// valid.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < IPv4MinLen {
		return false
	}
	hlen := int(hdr[0]&0x0f) * 4
	if hlen < IPv4MinLen || hlen > len(hdr) {
		return false
	}
	return Checksum(hdr[:hlen], 0) == 0
}
