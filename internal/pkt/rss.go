package pkt

import "encoding/binary"

// RSSHash is the flow-steering hash of the sharded datapath: an RSS-style
// digest of the 5-tuple (addresses, protocol, L4 ports) computed directly
// from raw frame bytes so the ingress reader never builds a FiveTuple or
// touches netip.Addr. All packets of one flow — and only those — hash
// identically, which is the property shard steering needs for per-flow
// ordering; the hash is directional (a->b and b->a may land on different
// shards, like hardware RSS without the symmetric key trick).
//
// Non-IP frames (ARP, LLDP, MPLS, ...) fall back to hashing src/dst MAC +
// EtherType, so L2 flows still stick to one shard. Truncated or unparsable
// frames hash whatever bytes exist: steering never fails, it only loses
// affinity precision for garbage input.
//
// The FNV-1a accumulation matches the repo's other flow hashes; the
// splitmix64-style finalization restores uniformity in the low bits, which
// shard selection (hash % N) depends on.
func RSSHash(data []byte) uint64 {
	if len(data) < EthernetLen {
		return rssFinalize(fnv64(fnvOffset64, data))
	}
	et := binary.BigEndian.Uint16(data[12:14])
	off := EthernetLen
	if et == EtherTypeVLAN || et == EtherTypeQinQ {
		if len(data) < off+VLANTagLen {
			return rssL2(data)
		}
		et = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += VLANTagLen
	}
	var (
		h     uint64
		proto uint8
		l4    int
	)
	switch et {
	case EtherTypeIPv4:
		if len(data) < off+IPv4MinLen {
			return rssL2(data)
		}
		ihl := int(data[off]&0x0f) * 4
		if ihl < IPv4MinLen || len(data) < off+ihl {
			return rssL2(data)
		}
		proto = data[off+9]
		h = fnv64(fnvOffset64, data[off+12:off+20]) // src+dst address
		l4 = off + ihl
	case EtherTypeIPv6:
		if len(data) < off+IPv6Len {
			return rssL2(data)
		}
		proto = data[off+6]
		h = fnv64(fnvOffset64, data[off+8:off+40]) // src+dst address
		l4 = off + IPv6Len
		// Segment-routed traffic keeps the SRH between IPv6 and L4;
		// skip it so SRv6 flows hash on their inner transport ports.
		if proto == IPProtoRouting && len(data) >= l4+SRHFixedLen {
			proto = data[l4]
			l4 += (int(data[l4+1]) + 1) * 8
		}
	default:
		return rssL2(data)
	}
	h ^= uint64(proto)
	h *= fnvPrime64
	if (proto == IPProtoTCP || proto == IPProtoUDP) && len(data) >= l4+4 {
		h = fnv64(h, data[l4:l4+4]) // src+dst port
	}
	return rssFinalize(h)
}

// rssL2 is the non-IP fallback: src/dst MAC + EtherType.
func rssL2(data []byte) uint64 {
	return rssFinalize(fnv64(fnvOffset64, data[:EthernetLen]))
}

// rssFinalize is the splitmix64-style avalanche (same constants as the
// executor's selector hash finalization in internal/tsp).
func rssFinalize(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
