package pkt

import (
	"encoding/binary"
	"fmt"
)

// TCP is a TCP header (options carried raw).
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // in 32-bit words
	Flags      uint8 // CWR..FIN in the low byte
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []byte
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// Decode fills t from data.
func (t *TCP) Decode(data []byte) error {
	if len(data) < TCPMinLen {
		return fmt.Errorf("pkt: tcp header needs %d bytes, have %d", TCPMinLen, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	hlen := int(t.DataOffset) * 4
	if hlen < TCPMinLen || hlen > len(data) {
		return fmt.Errorf("pkt: tcp data offset %d invalid for %d bytes", t.DataOffset, len(data))
	}
	t.Options = append(t.Options[:0], data[TCPMinLen:hlen]...)
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (t *TCP) HeaderLen() int { return TCPMinLen + (len(t.Options)+3)/4*4 }

// SerializeTo prepends the header. The checksum is left zero; callers that
// need a valid transport checksum use FixTCPChecksum on the final packet.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	hlen := t.HeaderLen()
	buf := b.PrependBytes(hlen)
	t.DataOffset = uint8(hlen / 4)
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = t.DataOffset << 4
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	binary.BigEndian.PutUint16(buf[16:18], 0)
	binary.BigEndian.PutUint16(buf[18:20], t.Urgent)
	copy(buf[TCPMinLen:hlen], t.Options)
	for i := TCPMinLen + len(t.Options); i < hlen; i++ {
		buf[i] = 0
	}
	return nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Decode fills u from data.
func (u *UDP) Decode(data []byte) error {
	if len(data) < UDPLen {
		return fmt.Errorf("pkt: udp header needs %d bytes, have %d", UDPLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (u *UDP) HeaderLen() int { return UDPLen }

// SerializeTo prepends the header, deriving Length from the buffer.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	buf := b.PrependBytes(UDPLen)
	u.Length = uint16(UDPLen + payloadLen)
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], u.Length)
	binary.BigEndian.PutUint16(buf[6:8], u.Checksum)
	return nil
}

// ICMP is a generic ICMP/ICMPv6 header with 4 bytes of rest-of-header.
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     uint32
}

// Decode fills c from data.
func (c *ICMP) Decode(data []byte) error {
	if len(data) < ICMPLen {
		return fmt.Errorf("pkt: icmp header needs %d bytes, have %d", ICMPLen, len(data))
	}
	c.Type = data[0]
	c.Code = data[1]
	c.Checksum = binary.BigEndian.Uint16(data[2:4])
	c.Rest = binary.BigEndian.Uint32(data[4:8])
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (c *ICMP) HeaderLen() int { return ICMPLen }

// SerializeTo prepends the header and computes the checksum over the
// header plus current buffer contents (the ICMP payload).
func (c *ICMP) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(ICMPLen)
	buf[0] = c.Type
	buf[1] = c.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint32(buf[4:8], c.Rest)
	c.Checksum = Checksum(b.Bytes(), 0)
	binary.BigEndian.PutUint16(buf[2:4], c.Checksum)
	return nil
}

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	Op       uint16 // 1 request, 2 reply
	SenderHW MAC
	SenderIP [4]byte
	TargetHW MAC
	TargetIP [4]byte
}

// Decode fills a from data, validating the hardware/protocol types.
func (a *ARP) Decode(data []byte) error {
	if len(data) < ARPLen {
		return fmt.Errorf("pkt: arp needs %d bytes, have %d", ARPLen, len(data))
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || binary.BigEndian.Uint16(data[2:4]) != EtherTypeIPv4 {
		return fmt.Errorf("pkt: arp is not ethernet/ipv4")
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("pkt: arp address lengths %d/%d unsupported", data[4], data[5])
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// HeaderLen reports the encoded length in bytes.
func (a *ARP) HeaderLen() int { return ARPLen }

// SerializeTo prepends the ARP body.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	buf := b.PrependBytes(ARPLen)
	binary.BigEndian.PutUint16(buf[0:2], 1)
	binary.BigEndian.PutUint16(buf[2:4], EtherTypeIPv4)
	buf[4], buf[5] = 6, 4
	binary.BigEndian.PutUint16(buf[6:8], a.Op)
	copy(buf[8:14], a.SenderHW[:])
	copy(buf[14:18], a.SenderIP[:])
	copy(buf[18:24], a.TargetHW[:])
	copy(buf[24:28], a.TargetIP[:])
	return nil
}

// FixTCPChecksum computes and stores the TCP checksum of a serialized
// packet given the byte offsets of the IP source/destination addresses and
// the TCP header. addrLen is 4 for IPv4 and 16 for IPv6.
func FixTCPChecksum(packet []byte, srcOff, dstOff, addrLen, tcpOff int) error {
	if tcpOff+TCPMinLen > len(packet) || srcOff+addrLen > len(packet) || dstOff+addrLen > len(packet) {
		return fmt.Errorf("pkt: offsets outside packet of %d bytes", len(packet))
	}
	seg := packet[tcpOff:]
	seg[16], seg[17] = 0, 0
	sum := PseudoHeaderSum(packet[srcOff:srcOff+addrLen], packet[dstOff:dstOff+addrLen], IPProtoTCP, len(seg))
	ck := Checksum(seg, sum)
	binary.BigEndian.PutUint16(seg[16:18], ck)
	return nil
}

// FixUDPChecksum computes and stores the UDP checksum analogously to
// FixTCPChecksum, mapping an all-zero result to 0xffff per RFC 768.
func FixUDPChecksum(packet []byte, srcOff, dstOff, addrLen, udpOff int) error {
	if udpOff+UDPLen > len(packet) || srcOff+addrLen > len(packet) || dstOff+addrLen > len(packet) {
		return fmt.Errorf("pkt: offsets outside packet of %d bytes", len(packet))
	}
	seg := packet[udpOff:]
	seg[6], seg[7] = 0, 0
	sum := PseudoHeaderSum(packet[srcOff:srcOff+addrLen], packet[dstOff:dstOff+addrLen], IPProtoUDP, len(seg))
	ck := Checksum(seg, sum)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(seg[6:8], ck)
	return nil
}
