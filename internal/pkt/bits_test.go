package pkt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGetBitsAligned(t *testing.T) {
	buf := []byte{0x12, 0x34, 0x56, 0x78}
	cases := []struct {
		off, width int
		want       uint64
	}{
		{0, 8, 0x12},
		{8, 8, 0x34},
		{0, 16, 0x1234},
		{16, 16, 0x5678},
		{0, 32, 0x12345678},
		{0, 4, 0x1},
		{4, 4, 0x2},
		{12, 4, 0x4},
	}
	for _, c := range cases {
		got, err := GetBits(buf, c.off, c.width)
		if err != nil {
			t.Fatalf("GetBits(%d,%d): %v", c.off, c.width, err)
		}
		if got != c.want {
			t.Errorf("GetBits(%d,%d) = %#x, want %#x", c.off, c.width, got, c.want)
		}
	}
}

func TestGetBitsUnaligned(t *testing.T) {
	// 0b1011_0110 0b0101_1010
	buf := []byte{0xB6, 0x5A}
	got, err := GetBits(buf, 1, 3) // bits 1..3 = 011
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b011 {
		t.Errorf("got %#b, want 011", got)
	}
	got, err = GetBits(buf, 5, 6) // 110 010 spanning the byte boundary
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b110010 {
		t.Errorf("got %#b, want 110010", got)
	}
}

func TestGetBits64Unaligned(t *testing.T) {
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i*37 + 11)
	}
	// A 64-bit field at bit offset 3 spans 9 bytes.
	got, err := GetBits(buf, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 3; i < 67; i++ {
		bit := (buf[i/8] >> uint(7-i%8)) & 1
		want = want<<1 | uint64(bit)
	}
	if got != want {
		t.Errorf("got %#x, want %#x", got, want)
	}
}

func TestSetBitsRoundTrip(t *testing.T) {
	f := func(seed int64, offRaw, widthRaw uint8, v uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 32)
		rng.Read(buf)
		width := int(widthRaw)%64 + 1
		off := int(offRaw) % (len(buf)*8 - width)
		orig := append([]byte(nil), buf...)
		if err := SetBits(buf, off, width, v); err != nil {
			return false
		}
		got, err := GetBits(buf, off, width)
		if err != nil {
			return false
		}
		masked := v
		if width < 64 {
			masked &= (1 << uint(width)) - 1
		}
		if got != masked {
			return false
		}
		// Bits outside the field must be untouched.
		for i := 0; i < len(buf)*8; i++ {
			if i >= off && i < off+width {
				continue
			}
			ob := (orig[i/8] >> uint(7-i%8)) & 1
			nb := (buf[i/8] >> uint(7-i%8)) & 1
			if ob != nb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGetBitsErrors(t *testing.T) {
	buf := make([]byte, 4)
	if _, err := GetBits(buf, 0, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := GetBits(buf, 0, 65); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := GetBits(buf, 30, 8); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := GetBits(buf, -1, 8); err == nil {
		t.Error("negative offset accepted")
	}
	if err := SetBits(buf, 30, 8, 1); err == nil {
		t.Error("SetBits overflow accepted")
	}
}

func TestGetSetBytesAligned(t *testing.T) {
	buf := make([]byte, 40)
	addr := bytes.Repeat([]byte{0xAB}, 16)
	if err := SetBytes(buf, 8*8, 128, addr); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := GetBytes(buf, 8*8, 128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, addr) {
		t.Errorf("got %x, want %x", got, addr)
	}
}

func TestGetSetBytesUnaligned(t *testing.T) {
	buf := make([]byte, 8)
	src := []byte{0x0F, 0xFF} // 12-bit field value 0xFFF
	if err := SetBytes(buf, 4, 12, src); err != nil {
		t.Fatal(err)
	}
	v, err := GetBits(buf, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFFF {
		t.Errorf("unaligned SetBytes wrote %#x, want 0xFFF", v)
	}
	dst := make([]byte, 2)
	if err := GetBytes(buf, 4, 12, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0x0F || dst[1] != 0xFF {
		t.Errorf("unaligned GetBytes = %x, want 0fff", dst)
	}
}

func TestSetBytesErrors(t *testing.T) {
	buf := make([]byte, 4)
	if err := SetBytes(buf, 0, 64, []byte{1}); err == nil {
		t.Error("short source accepted")
	}
	if err := GetBytes(buf, 0, 64, make([]byte, 8)); err == nil {
		t.Error("out-of-range read accepted")
	}
}

// referenceSetBits is the original bit-by-bit store, kept as the oracle
// for the byte-wise implementation.
func referenceSetBits(buf []byte, bitOff, width int, v uint64) {
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for i := bitOff + width - 1; i >= bitOff; i-- {
		mask := byte(1) << uint(7-i%8)
		if v&1 == 1 {
			buf[i/8] |= mask
		} else {
			buf[i/8] &^= mask
		}
		v >>= 1
	}
}

// TestSetBitsExhaustive sweeps every (bitOff, width) pair over a small
// buffer with adversarial payloads and checks the byte-wise SetBits
// against the bit-loop reference, including preservation of surrounding
// bits.
func TestSetBitsExhaustive(t *testing.T) {
	payloads := []uint64{0, ^uint64(0), 0xA5A5A5A5A5A5A5A5, 0x123456789ABCDEF0, 1, 1 << 63}
	backgrounds := []byte{0x00, 0xFF, 0x5A}
	for _, bg := range backgrounds {
		for bitOff := 0; bitOff < 24; bitOff++ {
			for width := 1; width <= 64; width++ {
				if bitOff+width > 12*8 {
					continue
				}
				for _, v := range payloads {
					got := make([]byte, 12)
					want := make([]byte, 12)
					for i := range got {
						got[i], want[i] = bg, bg
					}
					if err := SetBits(got, bitOff, width, v); err != nil {
						t.Fatalf("SetBits(off=%d w=%d): %v", bitOff, width, err)
					}
					referenceSetBits(want, bitOff, width, v)
					if !bytes.Equal(got, want) {
						t.Fatalf("SetBits(off=%d w=%d v=%#x bg=%#x) = %x, want %x",
							bitOff, width, v, bg, got, want)
					}
				}
			}
		}
	}
}

// TestUnalignedBytesExhaustive round-trips GetBytes/SetBytes over every
// unaligned (bitOff, width) pair against GetBits/referenceSetBits chunks.
func TestUnalignedBytesExhaustive(t *testing.T) {
	src := make([]byte, 16)
	for i := range src {
		src[i] = byte(i*37 + 11)
	}
	for bitOff := 0; bitOff < 16; bitOff++ {
		for width := 1; width <= 96; width++ {
			if bitOff+width > len(src)*8 {
				continue
			}
			n := (width + 7) / 8
			dst := make([]byte, n)
			if err := GetBytes(src, bitOff, width, dst); err != nil {
				t.Fatalf("GetBytes(off=%d w=%d): %v", bitOff, width, err)
			}
			// Oracle: extract bit-by-bit.
			want := make([]byte, n)
			pad := n*8 - width
			for i := 0; i < width; i++ {
				sb := bitOff + i
				if (src[sb/8]>>uint(7-sb%8))&1 == 1 {
					db := pad + i
					want[db/8] |= 1 << uint(7-db%8)
				}
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("GetBytes(off=%d w=%d) = %x, want %x", bitOff, width, dst, want)
			}
			// Write the field into a fresh buffer and read it back.
			out := make([]byte, len(src))
			for i := range out {
				out[i] = 0xEE
			}
			if err := SetBytes(out, bitOff, width, dst); err != nil {
				t.Fatalf("SetBytes(off=%d w=%d): %v", bitOff, width, err)
			}
			back := make([]byte, n)
			if err := GetBytes(out, bitOff, width, back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, dst) {
				t.Fatalf("SetBytes/GetBytes(off=%d w=%d) round-trip = %x, want %x",
					bitOff, width, back, dst)
			}
		}
	}
}
