package pkt

import (
	"encoding/binary"
	"net/netip"
)

// FiveTuple identifies a transport flow in a protocol-independent way.
type FiveTuple struct {
	Src, Dst         netip.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, Proto: f.Proto, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(seed uint64, data []byte) uint64 {
	h := seed
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// FastHash returns a non-cryptographic, direction-symmetric hash of the
// flow: a->b and b->a hash identically, so hash-based load balancing keeps
// both directions of a flow together (the property gopacket documents for
// its Flow.FastHash).
func (f FiveTuple) FastHash() uint64 {
	a := endpointHash(f.Src, f.SrcPort)
	b := endpointHash(f.Dst, f.DstPort)
	// Addition is commutative, making the hash symmetric.
	return a + b + uint64(f.Proto)*fnvPrime64
}

// DirectionalHash returns a non-symmetric flow hash, the variant ECMP uses
// so the two directions may take different equal-cost links.
func (f FiveTuple) DirectionalHash() uint64 {
	var buf [38]byte
	sa := f.Src.As16()
	da := f.Dst.As16()
	copy(buf[0:16], sa[:])
	copy(buf[16:32], da[:])
	buf[32] = f.Proto
	binary.BigEndian.PutUint16(buf[33:35], f.SrcPort)
	binary.BigEndian.PutUint16(buf[35:37], f.DstPort)
	return fnv64(fnvOffset64, buf[:])
}

func endpointHash(a netip.Addr, port uint16) uint64 {
	b := a.As16()
	h := fnv64(fnvOffset64, b[:])
	var pb [2]byte
	binary.BigEndian.PutUint16(pb[:], port)
	return fnv64(h, pb[:])
}

// ExtractFiveTuple decodes Ethernet/IPv4-or-IPv6/TCP-or-UDP from raw packet
// bytes. Non-TCP/UDP packets yield zero ports; non-IP packets return
// ok=false.
func ExtractFiveTuple(data []byte) (f FiveTuple, ok bool) {
	var eth Ethernet
	if eth.Decode(data) != nil {
		return f, false
	}
	off := EthernetLen
	et := eth.EtherType
	if et == EtherTypeVLAN {
		var vlan VLAN
		if vlan.Decode(data[off:]) != nil {
			return f, false
		}
		off += VLANTagLen
		et = vlan.EtherType
	}
	var proto uint8
	switch et {
	case EtherTypeIPv4:
		var ip IPv4
		if ip.Decode(data[off:]) != nil {
			return f, false
		}
		f.Src, f.Dst = ip.SrcAddr(), ip.DstAddr()
		proto = ip.Protocol
		off += int(ip.IHL) * 4
	case EtherTypeIPv6:
		var ip IPv6
		if ip.Decode(data[off:]) != nil {
			return f, false
		}
		f.Src, f.Dst = ip.SrcAddr(), ip.DstAddr()
		proto = ip.NextHeader
		off += IPv6Len
		if proto == IPProtoRouting {
			var srh SRH
			if srh.Decode(data[off:]) != nil {
				return f, false
			}
			proto = srh.NextHeader
			off += srh.HeaderLen()
		}
	default:
		return f, false
	}
	f.Proto = proto
	switch proto {
	case IPProtoTCP, IPProtoUDP:
		if off+4 <= len(data) {
			f.SrcPort = binary.BigEndian.Uint16(data[off:])
			f.DstPort = binary.BigEndian.Uint16(data[off+2:])
		}
	}
	return f, true
}
