package pkt

import (
	"fmt"

	"ipsa/internal/telemetry"
	"ipsa/internal/verdict"
)

// HeaderID identifies a header instance in a compiled design. IDs are
// assigned by the compiler; the data plane only ever sees small integers.
type HeaderID int

// InvalidHeader marks "no header".
const InvalidHeader HeaderID = -1

// HeaderLoc records where one parsed header instance lives in the packet
// buffer.
type HeaderLoc struct {
	Off   int // byte offset from the start of the packet
	Len   int // byte length
	Valid bool
}

// HeaderVector is the per-packet record of parsed headers, indexed by
// HeaderID. IPSA stages parse on demand and pass the vector downstream so
// later stages never re-parse (paper Sec. 2.1). The zero value is an empty
// vector that grows on first use.
type HeaderVector struct {
	locs []HeaderLoc
	// mask mirrors the Valid bits of IDs below 64 (IDs are small and dense
	// by construction, so in practice all of them) as a bitmask, letting
	// executors answer "are all these headers parsed?" with one AND
	// instead of a per-header walk. See HasAll.
	mask uint64
	// tried is the parser's negative cache: bits for header IDs a full
	// on-demand parse walk failed to reach on this packet (absent header,
	// truncated chain). Without it a pipeline whose later stages keep
	// asking for a header the packet does not carry (IPv6 stages on IPv4
	// traffic) re-walks the whole parse chain per stage per packet. The
	// cache keys on packet shape, so any mutation that could change parse
	// outcomes — a header parsed or invalidated, bytes inserted or removed
	// — clears it wholesale. An in-place rewrite of a selector byte via a
	// field store does not clear it, the same staleness the positive Loc
	// cache already has for that case: parse results are fixed at first
	// parse unless the header structure changes.
	tried uint64
}

// Reset invalidates every entry, retaining storage.
func (hv *HeaderVector) Reset() {
	for i := range hv.locs {
		hv.locs[i] = HeaderLoc{}
	}
	hv.mask = 0
	hv.tried = 0
}

// Presize reserves capacity for n entries so hot-path Set calls never
// reallocate. Existing entries are retained.
func (hv *HeaderVector) Presize(n int) {
	if cap(hv.locs) < n {
		locs := make([]HeaderLoc, len(hv.locs), n)
		copy(locs, hv.locs)
		hv.locs = locs
	}
}

func (hv *HeaderVector) grow(id HeaderID) {
	for len(hv.locs) <= int(id) {
		hv.locs = append(hv.locs, HeaderLoc{})
	}
}

// Set records the location of header id.
func (hv *HeaderVector) Set(id HeaderID, off, length int) {
	if id < 0 {
		return
	}
	hv.grow(id)
	hv.locs[id] = HeaderLoc{Off: off, Len: length, Valid: true}
	if id < 64 {
		hv.mask |= 1 << uint(id)
	}
	hv.tried = 0
}

// Invalidate marks header id as absent.
func (hv *HeaderVector) Invalidate(id HeaderID) {
	if id < 0 || int(id) >= len(hv.locs) {
		return
	}
	hv.locs[id].Valid = false
	if id < 64 {
		hv.mask &^= 1 << uint(id)
	}
	hv.tried = 0
}

// Tried reports whether a parse walk for header id already failed on this
// packet (and nothing has changed its shape since). Parsers use it to
// fast-fail repeat requests for absent headers.
func (hv *HeaderVector) Tried(id HeaderID) bool {
	return id >= 0 && id < 64 && hv.tried&(1<<uint(id)) != 0
}

// MarkTried records that a parse walk for header id failed.
func (hv *HeaderVector) MarkTried(id HeaderID) {
	if id >= 0 && id < 64 {
		hv.tried |= 1 << uint(id)
	}
}

// Valid reports whether header id has been parsed and is present.
func (hv *HeaderVector) Valid(id HeaderID) bool {
	return id >= 0 && int(id) < len(hv.locs) && hv.locs[id].Valid
}

// HasAll reports whether every header in the want mask (bit i == HeaderID
// i; only IDs below 64 are representable) is currently valid.
func (hv *HeaderVector) HasAll(want uint64) bool {
	return hv.mask&want == want
}

// Loc returns the location of header id.
func (hv *HeaderVector) Loc(id HeaderID) (HeaderLoc, bool) {
	if !hv.Valid(id) {
		return HeaderLoc{}, false
	}
	return hv.locs[id], true
}

// Each calls fn for every valid parsed header, in HeaderID order. The
// telemetry flight recorder uses this to snapshot header offsets.
func (hv *HeaderVector) Each(fn func(id HeaderID, loc HeaderLoc)) {
	for i, l := range hv.locs {
		if l.Valid {
			fn(HeaderID(i), l)
		}
	}
}

// shift adjusts the offsets of all valid headers at or beyond off by delta.
func (hv *HeaderVector) shift(off, delta int) {
	for i := range hv.locs {
		if hv.locs[i].Valid && hv.locs[i].Off >= off {
			hv.locs[i].Off += delta
		}
	}
	hv.tried = 0
}

// Packet is the unit that flows through every pipeline in this repository.
type Packet struct {
	Data []byte       // raw packet bytes
	Meta []byte       // compiled user metadata area (bit-addressed)
	HV   HeaderVector // parsed header record

	InPort  int  // ingress port index
	OutPort int  // egress port index chosen by the pipeline
	Drop    bool // set by a drop action

	// DropReason and DropStage attribute a loss: the reason enum says why
	// the packet died (verdict.ReasonACL for a stage drop action,
	// ReasonParse when admission found the frame too short for the root
	// header, ...) and DropStage says where — the index of the TSP whose
	// drop action fired. Stamped by the executors at the drop site and by
	// packet admission for parse failures; zero for live packets.
	DropReason verdict.DropReason
	DropStage  int32

	// ToCPU marks the packet for punting to the control plane (used by the
	// flow-probe use case to signal threshold crossings).
	ToCPU bool

	// Trace is this packet's telemetry flight record when it was sampled
	// (nil for the common case). It rides the packet so the record
	// survives the ingress→TM→egress handoff of the pipelined mode.
	Trace *telemetry.TraceRecord
	// Timed marks the packet as latency-sampled (per-TSP histograms).
	Timed bool

	// IngressNanos is the monotonic arrival timestamp, stamped at packet
	// admission only while the switch acts as an INT source (0 otherwise).
	// The first INT hop record uses it as its ingress-side timestamp.
	IngressNanos int64

	// Lane is the telemetry counter stripe this packet's lifecycle events
	// are charged to: 0 on the shared synchronous/pipelined paths, shard
	// index + 1 when a shard worker owns the packet. Stamped at packet
	// admission so the finish hook lands on the admitting shard's cells.
	Lane int32

	// RSS is the flow hash the packet was steered by (stamped at admission
	// on accounting paths; 0 when unknown). Flow accounting keys its table
	// probes on it at both ingress and finish, so it rides the packet
	// across the TM handoff like Lane does.
	RSS uint64

	// FlowNanos is the flow-accounting latency stamp, taken at admission
	// only for latency-sampled (Timed) packets; 0 otherwise. Kept separate
	// from IngressNanos, which belongs to the INT source path.
	FlowNanos int64

	// Ver carries the program version the packet was pinned to at ingress
	// so egress (possibly on another goroutine, after the traffic manager)
	// executes the same program — per-packet version consistency for
	// hitless reconfiguration. Typed as any to keep pkt free of the switch
	// packages; storing a pointer in an interface does not allocate.
	Ver any
}

// NewPacket wraps data in a Packet with a metadata area of metaBytes bytes.
func NewPacket(data []byte, metaBytes int) *Packet {
	return &Packet{Data: data, Meta: make([]byte, metaBytes), OutPort: -1}
}

// ResetFor prepares a (possibly pooled) packet for reuse under a new
// design: rebinds Data, sizes and zeroes the metadata area reusing its
// backing store, and clears all per-packet state.
func (p *Packet) ResetFor(data []byte, metaBytes int) {
	p.Data = data
	if cap(p.Meta) < metaBytes {
		p.Meta = make([]byte, metaBytes)
	} else {
		p.Meta = p.Meta[:metaBytes]
		for i := range p.Meta {
			p.Meta[i] = 0
		}
	}
	p.HV.Reset()
	p.InPort = 0
	p.OutPort = -1
	p.Drop = false
	p.DropReason = 0
	p.DropStage = 0
	p.ToCPU = false
	p.Trace = nil
	p.Timed = false
	p.IngressNanos = 0
	p.Lane = 0
	p.RSS = 0
	p.FlowNanos = 0
	p.Ver = nil
}

// Reset prepares p for reuse with new packet bytes.
func (p *Packet) Reset(data []byte) {
	p.Data = data
	for i := range p.Meta {
		p.Meta[i] = 0
	}
	p.HV.Reset()
	p.InPort = 0
	p.OutPort = -1
	p.Drop = false
	p.DropReason = 0
	p.DropStage = 0
	p.ToCPU = false
	p.Trace = nil
	p.Timed = false
	p.IngressNanos = 0
	p.Lane = 0
	p.RSS = 0
	p.FlowNanos = 0
	p.Ver = nil
}

// Clone deep-copies the packet (used by multicast and the traffic manager).
func (p *Packet) Clone() *Packet {
	q := &Packet{
		Data:       append([]byte(nil), p.Data...),
		Meta:       append([]byte(nil), p.Meta...),
		InPort:     p.InPort,
		OutPort:    p.OutPort,
		Drop:       p.Drop,
		DropReason: p.DropReason,
		DropStage:  p.DropStage,
		ToCPU:      p.ToCPU,

		IngressNanos: p.IngressNanos,
		Lane:         p.Lane,
		RSS:          p.RSS,
		FlowNanos:    p.FlowNanos,
	}
	q.HV.locs = append([]HeaderLoc(nil), p.HV.locs...)
	q.HV.mask = p.HV.mask
	q.HV.tried = p.HV.tried
	return q
}

// InsertBytes opens a gap of n zero bytes at byte offset off and shifts the
// header vector. Used for header push (e.g. SRH insertion at an SR source).
func (p *Packet) InsertBytes(off, n int) error {
	if off < 0 || off > len(p.Data) || n < 0 {
		return fmt.Errorf("pkt: insert of %d bytes at %d invalid for packet of %d bytes", n, off, len(p.Data))
	}
	p.Data = append(p.Data, make([]byte, n)...)
	copy(p.Data[off+n:], p.Data[off:len(p.Data)-n])
	for i := off; i < off+n; i++ {
		p.Data[i] = 0
	}
	p.HV.shift(off, n)
	return nil
}

// RemoveBytes deletes n bytes at byte offset off and shifts the header
// vector. Used for header pop (e.g. SRH removal at an SR endpoint).
func (p *Packet) RemoveBytes(off, n int) error {
	if off < 0 || n < 0 || off+n > len(p.Data) {
		return fmt.Errorf("pkt: remove of %d bytes at %d invalid for packet of %d bytes", n, off, len(p.Data))
	}
	copy(p.Data[off:], p.Data[off+n:])
	p.Data = p.Data[:len(p.Data)-n]
	p.HV.shift(off+n, -n)
	return nil
}

// FieldBits reads a field of a parsed header: bitOff/width are relative to
// the start of the header identified by id.
func (p *Packet) FieldBits(id HeaderID, bitOff, width int) (uint64, error) {
	loc, ok := p.HV.Loc(id)
	if !ok {
		return 0, fmt.Errorf("pkt: header %d not valid", id)
	}
	return GetBits(p.Data, loc.Off*8+bitOff, width)
}

// SetFieldBits writes a field of a parsed header.
func (p *Packet) SetFieldBits(id HeaderID, bitOff, width int, v uint64) error {
	loc, ok := p.HV.Loc(id)
	if !ok {
		return fmt.Errorf("pkt: header %d not valid", id)
	}
	return SetBits(p.Data, loc.Off*8+bitOff, width, v)
}

// MetaBits reads a metadata field at an absolute bit offset in the metadata
// area.
func (p *Packet) MetaBits(bitOff, width int) (uint64, error) {
	return GetBits(p.Meta, bitOff, width)
}

// SetMetaBits writes a metadata field.
func (p *Packet) SetMetaBits(bitOff, width int, v uint64) error {
	return SetBits(p.Meta, bitOff, width, v)
}
