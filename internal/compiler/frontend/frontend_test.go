package frontend

import (
	"os"
	"testing"

	"ipsa/internal/compiler/backend"
	"ipsa/internal/p4"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/rp4/printer"
	"ipsa/internal/rp4/sem"
)

func transformBase(t *testing.T) (*APISpec, string) {
	t.Helper()
	src, err := os.ReadFile("../../../testdata/base_l2l3.p4")
	if err != nil {
		t.Fatal(err)
	}
	hlir, err := p4.Parse("base_l2l3.p4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog, api, err := Transform(hlir)
	if err != nil {
		t.Fatal(err)
	}
	return api, printer.Print(prog)
}

func TestTransformProducesValidRP4(t *testing.T) {
	_, rp4src := transformBase(t)
	// The emitted rP4 parses and passes semantic analysis.
	prog, err := parser.Parse("generated.rp4", rp4src)
	if err != nil {
		t.Fatalf("generated rP4 does not parse: %v\n%s", err, rp4src)
	}
	d, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("generated rP4 does not analyze: %v", err)
	}
	// Same shape as the hand-written base design: 5 headers, 10 tables,
	// 8 ingress stages, 2 egress stages.
	if len(d.Instances) != 5 {
		t.Errorf("instances = %d", len(d.Instances))
	}
	if len(d.Tables) != 10 {
		t.Errorf("tables = %d", len(d.Tables))
	}
	if len(d.IngressStages()) != 8 || len(d.EgressStages()) != 2 {
		t.Errorf("stages: %v / %v", d.IngressStages(), d.EgressStages())
	}
	// The ethernet implicit parser carries the select cases.
	eth := d.InstanceByName["ethernet"]
	if eth.Def.Parser == nil || len(eth.Def.Parser.Transitions) != 2 {
		t.Errorf("ethernet parser: %+v", eth.Def.Parser)
	}
	// drop_packet deduplicated across the two controls.
	if _, ok := d.Actions["drop_packet"]; !ok {
		t.Error("drop_packet missing")
	}
	// standard_metadata mapped to istd.
	if _, ok := d.Tables["port_map_tbl"]; !ok {
		t.Fatal("port_map_tbl missing")
	}
	if d.Tables["port_map_tbl"].Keys[0].Name != "istd.in_port" {
		t.Errorf("port_map key: %+v", d.Tables["port_map_tbl"].Keys[0])
	}
}

func TestTransformedDesignCompiles(t *testing.T) {
	_, rp4src := transformBase(t)
	prog, err := parser.Parse("generated.rp4", rp4src)
	if err != nil {
		t.Fatal(err)
	}
	opts := backend.DefaultOptions()
	opts.NumTSPs = 16
	c, err := backend.Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	// The P4-derived guards carry negations rp4bc's predicate analysis is
	// conservative about, so it may merge fewer stages than the
	// hand-written design's 7 TSPs — but never more than one TSP per
	// stage.
	if c.Stats.TSPsUsed > 10 {
		t.Errorf("TSPs used = %d", c.Stats.TSPsUsed)
	}
}

func TestAPISpec(t *testing.T) {
	api, _ := transformBase(t)
	if len(api.Tables) != 10 {
		t.Fatalf("api tables = %d", len(api.Tables))
	}
	var nexthop *TableAPI
	for i := range api.Tables {
		if api.Tables[i].Name == "nexthop_tbl" {
			nexthop = &api.Tables[i]
		}
	}
	if nexthop == nil {
		t.Fatal("nexthop_tbl missing from API")
	}
	if nexthop.Stage != "nexthop_tbl_stage" || nexthop.Size != 16384 {
		t.Errorf("nexthop api: %+v", nexthop)
	}
	if len(nexthop.Keys) != 1 || nexthop.Keys[0].Name != "meta.nexthop" || nexthop.Keys[0].Width != 32 {
		t.Errorf("nexthop keys: %+v", nexthop.Keys)
	}
	if len(nexthop.Actions) != 1 || nexthop.Actions[0].Name != "set_bd_dmac" || nexthop.Actions[0].Tag != 1 {
		t.Errorf("nexthop actions: %+v", nexthop.Actions)
	}
	if len(nexthop.Actions[0].Params) != 2 || nexthop.Actions[0].Params[1].Width != 48 {
		t.Errorf("nexthop action params: %+v", nexthop.Actions[0].Params)
	}
	if nexthop.Default != "NoAction" {
		t.Errorf("nexthop default: %q", nexthop.Default)
	}
}

func TestTransformErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"two extracts", `
header a_t { bit<8> f; }
header b_t { bit<8> g; }
struct headers_t { a_t a; b_t b; }
parser P(packet_in pkt, out headers_t hdr) {
    state start { pkt.extract(hdr.a); pkt.extract(hdr.b); transition accept; }
}
control MyIngress(inout headers_t hdr) { apply { } }`},
		{"unconditional transition", `
header a_t { bit<8> f; }
header b_t { bit<8> g; }
struct headers_t { a_t a; b_t b; }
parser P(packet_in pkt, out headers_t hdr) {
    state start { pkt.extract(hdr.a); transition next; }
    state next { pkt.extract(hdr.b); transition accept; }
}
control MyIngress(inout headers_t hdr) { apply { } }`},
		{"foreign selector", `
header a_t { bit<8> f; }
header b_t { bit<8> g; }
struct headers_t { a_t a; b_t b; }
parser P(packet_in pkt, out headers_t hdr) {
    state start { pkt.extract(hdr.a); transition select(hdr.b.g) { 1: s2; default: accept; } }
    state s2 { pkt.extract(hdr.b); transition accept; }
}
control MyIngress(inout headers_t hdr) { apply { } }`},
		{"unsupported std meta", `
header a_t { bit<8> f; }
struct headers_t { a_t a; }
parser P(packet_in pkt, out headers_t hdr) { state start { pkt.extract(hdr.a); transition accept; } }
control MyIngress(inout headers_t hdr) {
    action x() { standard_metadata.mcast_grp = 1; }
    table t { key = { hdr.a.f: exact; } actions = { x; } size = 4; }
    apply { t.apply(); }
}`},
		{"no ingress", `
header a_t { bit<8> f; }
struct headers_t { a_t a; }
parser P(packet_in pkt, out headers_t hdr) { state start { pkt.extract(hdr.a); transition accept; } }
control Sideways(inout headers_t hdr) { apply { } }`},
	}
	for _, c := range cases {
		hlir, err := p4.Parse(c.name, c.src)
		if err != nil {
			t.Errorf("%s: parse failed early: %v", c.name, err)
			continue
		}
		if _, _, err := Transform(hlir); err == nil {
			t.Errorf("%s: transform accepted", c.name)
		}
	}
}
