// Package frontend implements rp4fc, the rP4 front-end compiler (paper
// Sec. 3.2): it takes the target-independent HLIR of a P4 program and
// emits (1) a semantically equivalent rP4 program — parser states become
// per-header implicit parsers, apply-block table applications become
// parse-match-action stages guarded by their path conditions — and (2) the
// control-plane API descriptors for accessing the tables at runtime.
package frontend

import (
	"fmt"
	"strings"

	"ipsa/internal/p4"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/printer"
	"ipsa/internal/rp4/token"
)

// APISpec is the controller-facing description of every table, the second
// output of rp4fc ("rp4fc also outputs the APIs for controller to access
// the tables at runtime").
type APISpec struct {
	Tables []TableAPI `json:"tables"`
}

// TableAPI describes one table's control interface.
type TableAPI struct {
	Name    string      `json:"name"`
	Stage   string      `json:"stage"`
	Keys    []KeyAPI    `json:"keys"`
	Actions []ActionAPI `json:"actions"`
	Default string      `json:"default"`
	Size    int         `json:"size"`
}

// KeyAPI describes one key component.
type KeyAPI struct {
	Name  string `json:"name"` // canonical "inst.field"
	Width int    `json:"width"`
	Kind  string `json:"kind"`
}

// ActionAPI binds an action name to its executor tag and parameters.
type ActionAPI struct {
	Name   string     `json:"name"`
	Tag    int        `json:"tag"`
	Params []ParamAPI `json:"params"`
}

// ParamAPI is one action-data parameter.
type ParamAPI struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// Transform converts a P4 HLIR into an rP4 program plus its API spec.
func Transform(h *p4.HLIR) (*ast.Program, *APISpec, error) {
	tr := &transformer{hlir: h, widths: map[string]int{}}
	return tr.run()
}

type transformer struct {
	hlir   *p4.HLIR
	prog   *ast.Program
	api    *APISpec
	widths map[string]int // canonical field -> width
}

func (tr *transformer) run() (*ast.Program, *APISpec, error) {
	tr.prog = &ast.Program{}
	tr.api = &APISpec{}
	for _, cd := range tr.hlir.Consts {
		tr.prog.Consts = append(tr.prog.Consts, &ast.ConstDef{Name: cd.Name, Width: cd.Width, Value: cd.Value})
	}
	if err := tr.headers(); err != nil {
		return nil, nil, err
	}
	tr.metadata()
	if err := tr.actions(); err != nil {
		return nil, nil, err
	}
	if err := tr.tables(); err != nil {
		return nil, nil, err
	}
	if err := tr.stages(); err != nil {
		return nil, nil, err
	}
	return tr.prog, tr.api, nil
}

// headers builds one rP4 header per instance and derives each header's
// implicit parser from the parser state that extracts it.
func (tr *transformer) headers() error {
	// instance -> extracting state
	extractor := map[string]*p4.State{}
	// state -> first extracted instance (the state's "product")
	product := map[string]string{}
	for _, st := range tr.hlir.Parser.States {
		if len(st.Extracts) > 1 {
			return fmt.Errorf("rp4fc: state %q extracts %d headers; one per state is supported", st.Name, len(st.Extracts))
		}
		for _, inst := range st.Extracts {
			if prev, dup := extractor[inst]; dup {
				return fmt.Errorf("rp4fc: header %q extracted by both %q and %q", inst, prev.Name, st.Name)
			}
			extractor[inst] = st
			product[st.Name] = inst
		}
	}
	for _, inst := range tr.hlir.Instances {
		ht := tr.hlir.HeaderType(inst.Type)
		if ht == nil {
			return fmt.Errorf("rp4fc: instance %q has unknown type %q", inst.Name, inst.Type)
		}
		hd := &ast.HeaderDef{Name: inst.Name}
		for _, f := range ht.Fields {
			hd.Fields = append(hd.Fields, &ast.FieldDef{Name: f.Name, Width: f.Width})
			tr.widths[inst.Name+"."+f.Name] = f.Width
		}
		st := extractor[inst.Name]
		if st != nil && st.Select != nil {
			// hdr.X.f: the selector must be a field of this header.
			if len(st.Select.Parts) != 3 || st.Select.Parts[0] != "hdr" || st.Select.Parts[1] != inst.Name {
				return fmt.Errorf("rp4fc: state %q selects on %s, which is not a field of %q",
					st.Name, st.Select, inst.Name)
			}
			ip := &ast.ImplicitParser{SelectorFields: []string{st.Select.Parts[2]}}
			for _, c := range st.Cases {
				next, ok := product[c.Next]
				if !ok {
					return fmt.Errorf("rp4fc: state %q transitions to %q, which extracts nothing", st.Name, c.Next)
				}
				ip.Transitions = append(ip.Transitions, &ast.Transition{Tag: c.Value, Next: next})
			}
			// A non-accept default would need a fallthrough construct rP4
			// does not have; reject rather than silently change semantics.
			if st.Default != "accept" {
				return fmt.Errorf("rp4fc: state %q has non-accept default %q", st.Name, st.Default)
			}
			hd.Parser = ip
		} else if st != nil && st.Default != "accept" {
			next, ok := product[st.Default]
			if !ok {
				return fmt.Errorf("rp4fc: state %q transitions to %q, which extracts nothing", st.Name, st.Default)
			}
			// Unconditional transition: selector on the header's first
			// field with a single catch-all is not expressible; encode as
			// a 0-width... rP4 needs a selector, so synthesize one on the
			// full first field with every value mapping — unsupported.
			return fmt.Errorf("rp4fc: state %q has an unconditional transition to %q; rP4 implicit parsers need a selector field", st.Name, next)
		}
		tr.prog.Headers = append(tr.prog.Headers, hd)
	}
	return nil
}

func (tr *transformer) metadata() {
	if tr.hlir.Metadata == nil {
		return
	}
	sd := &ast.StructDef{Name: tr.hlir.Metadata.Name, Alias: "meta"}
	for _, f := range tr.hlir.Metadata.Fields {
		sd.Fields = append(sd.Fields, &ast.FieldDef{Name: f.Name, Width: f.Width})
		tr.widths["meta."+f.Name] = f.Width
	}
	tr.prog.Structs = append(tr.prog.Structs, sd)
}

// stdMetaMap translates v1model standard_metadata fields to istd.
var stdMetaMap = map[string]string{
	"ingress_port": "in_port",
	"egress_spec":  "out_port",
	"egress_port":  "out_port",
}

// rewriteRef maps P4 references into rP4 namespaces.
func rewriteRef(ref *ast.FieldRef) (*ast.FieldRef, error) {
	parts := ref.Parts
	switch {
	case len(parts) == 3 && parts[0] == "hdr":
		return &ast.FieldRef{Parts: []string{parts[1], parts[2]}, Pos: ref.Pos}, nil
	case len(parts) == 2 && parts[0] == "meta":
		return ref, nil
	case len(parts) == 2 && parts[0] == "standard_metadata":
		mapped, ok := stdMetaMap[parts[1]]
		if !ok {
			return nil, fmt.Errorf("%s: standard_metadata.%s is not supported", ref.Pos, parts[1])
		}
		return &ast.FieldRef{Parts: []string{"istd", mapped}, Pos: ref.Pos}, nil
	case len(parts) == 1:
		return ref, nil // action parameter
	}
	return nil, fmt.Errorf("%s: reference %s is not translatable", ref.Pos, ref)
}

func rewriteExpr(e ast.Expr) (ast.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *ast.NumberLit, *ast.BoolLit:
		return e, nil
	case *ast.FieldRef:
		return rewriteRef(x)
	case *ast.CallExpr:
		// hdr.X.isValid() -> X.isValid()
		if x.Method == "isValid" && strings.HasPrefix(x.Recv, "hdr.") {
			return &ast.CallExpr{Recv: strings.TrimPrefix(x.Recv, "hdr."), Method: "isValid", Pos: x.Pos}, nil
		}
		var args []ast.Expr
		for _, a := range x.Args {
			ra, err := rewriteExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, ra)
		}
		return &ast.CallExpr{Recv: x.Recv, Method: x.Method, Args: args, Pos: x.Pos}, nil
	case *ast.UnaryExpr:
		sub, err := rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: x.Op, X: sub, Pos: x.Pos}, nil
	case *ast.BinaryExpr:
		a, err := rewriteExpr(x.X)
		if err != nil {
			return nil, err
		}
		b, err := rewriteExpr(x.Y)
		if err != nil {
			return nil, err
		}
		return &ast.BinaryExpr{Op: x.Op, X: a, Y: b, Pos: x.Pos}, nil
	}
	return nil, fmt.Errorf("rp4fc: unsupported expression %T", e)
}

func rewriteStmts(body []ast.Stmt) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.EmptyStmt:
		case *ast.AssignStmt:
			lhs, err := rewriteRef(st.LHS)
			if err != nil {
				return nil, err
			}
			rhs, err := rewriteExpr(st.RHS)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.AssignStmt{LHS: lhs, RHS: rhs, Pos: st.Pos})
		case *ast.CallStmt:
			switch {
			case st.Recv == "" && st.Method == "mark_to_drop":
				out = append(out, &ast.CallStmt{Method: "drop", Pos: st.Pos})
			case st.Recv == "" && st.Method == "NoAction":
			default:
				return nil, fmt.Errorf("%s: unsupported call %s.%s in action", st.Pos, st.Recv, st.Method)
			}
		case *ast.IfStmt:
			cond, err := rewriteExpr(st.Cond)
			if err != nil {
				return nil, err
			}
			then, err := rewriteStmts(st.Then)
			if err != nil {
				return nil, err
			}
			els, err := rewriteStmts(st.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.IfStmt{Cond: cond, Then: then, Else: els, Pos: st.Pos})
		default:
			return nil, fmt.Errorf("rp4fc: unsupported statement %T in action", s)
		}
	}
	return out, nil
}

// actions merges the actions of every control, deduplicating identical
// definitions (drop_packet typically appears in both controls).
func (tr *transformer) actions() error {
	for _, ctl := range tr.hlir.Controls {
		for _, a := range ctl.Actions {
			if a.Name == "NoAction" {
				continue
			}
			body, err := rewriteStmts(a.Body)
			if err != nil {
				return fmt.Errorf("rp4fc: action %q: %w", a.Name, err)
			}
			na := &ast.ActionDef{Name: a.Name, Params: a.Params, Body: body, Pos: a.Pos}
			if old := tr.prog.Action(a.Name); old != nil {
				if actionSrc(old) != actionSrc(na) {
					return fmt.Errorf("rp4fc: action %q defined differently in two controls", a.Name)
				}
				continue
			}
			tr.prog.Actions = append(tr.prog.Actions, na)
		}
	}
	return nil
}

func actionSrc(a *ast.ActionDef) string {
	return printer.Print(&ast.Program{Actions: []*ast.ActionDef{a}})
}

func (tr *transformer) tables() error {
	for _, ctl := range tr.hlir.Controls {
		for _, t := range ctl.Tables {
			if tr.prog.Table(t.Name) != nil {
				return fmt.Errorf("rp4fc: table %q defined in two controls", t.Name)
			}
			nt := &ast.TableDef{Name: t.Name, Size: t.Size, DefaultAction: t.DefaultAction, Pos: t.Pos}
			for _, k := range t.Keys {
				ref, err := rewriteRef(k.Ref)
				if err != nil {
					return fmt.Errorf("rp4fc: table %q: %w", t.Name, err)
				}
				kind := k.Kind
				if kind == "selector" {
					kind = "hash"
				}
				nt.Keys = append(nt.Keys, &ast.TableKey{Field: ref, Kind: kind})
			}
			nt.Actions = append(nt.Actions, t.Actions...)
			tr.prog.Tables = append(tr.prog.Tables, nt)
		}
	}
	return nil
}

// stages decomposes each control's apply block into guarded stages.
func (tr *transformer) stages() error {
	ing := tr.hlir.IngressControl()
	eg := tr.hlir.EgressControl()
	if ing == nil {
		return fmt.Errorf("rp4fc: no ingress control found")
	}
	ingStages, err := tr.decompose(ing)
	if err != nil {
		return err
	}
	tr.prog.Ingress = &ast.Pipe{Name: "rP4_Ingress", Stages: ingStages}
	var egStages []*ast.StageDef
	if eg != nil {
		egStages, err = tr.decompose(eg)
		if err != nil {
			return err
		}
		tr.prog.Egress = &ast.Pipe{Name: "rP4_Egress", Stages: egStages}
	}
	uf := &ast.UserFuncs{}
	var ingNames, egNames []string
	for _, s := range ingStages {
		ingNames = append(ingNames, s.Name)
	}
	for _, s := range egStages {
		egNames = append(egNames, s.Name)
	}
	if len(ingNames) > 0 {
		uf.Funcs = append(uf.Funcs, &ast.FuncDef{Name: "ingress", Stages: ingNames})
		uf.IngressEntry = ingNames[0]
	}
	if len(egNames) > 0 {
		uf.Funcs = append(uf.Funcs, &ast.FuncDef{Name: "egress", Stages: egNames})
		uf.EgressEntry = egNames[0]
	}
	tr.prog.Funcs = uf
	return nil
}

// decompose walks an apply block, emitting one stage per table
// application, guarded by the conjunction of path conditions.
func (tr *transformer) decompose(ctl *p4.Control) ([]*ast.StageDef, error) {
	var stages []*ast.StageDef
	var walk func(body []ast.Stmt, guard []ast.Expr) error
	walk = func(body []ast.Stmt, guard []ast.Expr) error {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.EmptyStmt:
			case *ast.CallStmt:
				if st.Method != "apply" || st.Recv == "" {
					return fmt.Errorf("%s: only table.apply() is allowed in apply blocks, found %s.%s",
						st.Pos, st.Recv, st.Method)
				}
				var tbl *p4.Table
				for _, t := range ctl.Tables {
					if t.Name == st.Recv {
						tbl = t
					}
				}
				if tbl == nil {
					return fmt.Errorf("%s: apply of unknown table %q", st.Pos, st.Recv)
				}
				stage, err := tr.buildStage(ctl, tbl, guard)
				if err != nil {
					return err
				}
				stages = append(stages, stage)
			case *ast.IfStmt:
				cond, err := rewriteExpr(st.Cond)
				if err != nil {
					return err
				}
				if err := walk(st.Then, append(guard, cond)); err != nil {
					return err
				}
				neg := &ast.UnaryExpr{Op: token.Not, X: cond, Pos: st.Pos}
				if err := walk(st.Else, append(guard, neg)); err != nil {
					return err
				}
			default:
				return fmt.Errorf("rp4fc: unsupported apply-block statement %T", s)
			}
		}
		return nil
	}
	if err := walk(ctl.Apply, nil); err != nil {
		return nil, err
	}
	return stages, nil
}

func (tr *transformer) buildStage(ctl *p4.Control, tbl *p4.Table, guard []ast.Expr) (*ast.StageDef, error) {
	stage := &ast.StageDef{Name: tbl.Name + "_stage"}
	// Parser list: header instances used by keys and guards.
	need := map[string]bool{}
	for _, k := range tbl.Keys {
		if len(k.Ref.Parts) == 3 && k.Ref.Parts[0] == "hdr" {
			need[k.Ref.Parts[1]] = true
		}
	}
	for _, g := range guard {
		collectHeaders(g, need)
	}
	// Also headers the executor actions touch.
	for _, an := range tbl.Actions {
		if a := tr.prog.Action(an); a != nil {
			collectHeadersStmts(a.Body, need)
		}
	}
	for _, inst := range tr.hlir.Instances {
		if need[inst.Name] {
			stage.Parser = append(stage.Parser, inst.Name)
		}
	}
	// Matcher.
	apply := &ast.CallStmt{Recv: tbl.Name, Method: "apply"}
	if len(guard) == 0 {
		stage.Matcher = []ast.Stmt{apply}
	} else {
		cond := guard[0]
		for _, g := range guard[1:] {
			cond = &ast.BinaryExpr{Op: token.AndAnd, X: cond, Y: g}
		}
		stage.Matcher = []ast.Stmt{&ast.IfStmt{Cond: cond, Then: []ast.Stmt{apply}}}
	}
	// Executor: tags follow the table's action list order (1-based).
	api := TableAPI{Name: tbl.Name, Stage: stage.Name, Size: tbl.Size, Default: tbl.DefaultAction}
	tag := uint64(1)
	for _, an := range tbl.Actions {
		if an == "NoAction" {
			continue
		}
		stage.Exec = append(stage.Exec, &ast.ExecutorArm{Tag: tag, Action: an})
		aapi := ActionAPI{Name: an, Tag: int(tag)}
		if a := tr.prog.Action(an); a != nil {
			for _, p := range a.Params {
				aapi.Params = append(aapi.Params, ParamAPI{Name: p.Name, Width: p.Width})
			}
		}
		api.Actions = append(api.Actions, aapi)
		tag++
	}
	def := tbl.DefaultAction
	if def == "" {
		def = "NoAction"
	}
	stage.Exec = append(stage.Exec, &ast.ExecutorArm{Default: true, Action: def})
	for _, k := range tbl.Keys {
		ref, err := rewriteRef(k.Ref)
		if err != nil {
			return nil, err
		}
		kind := k.Kind
		if kind == "selector" {
			kind = "hash"
		}
		w := tr.widths[ref.String()]
		if w == 0 && ref.Parts[0] == "istd" {
			w = 16
		}
		api.Keys = append(api.Keys, KeyAPI{Name: ref.String(), Width: w, Kind: kind})
	}
	tr.api.Tables = append(tr.api.Tables, api)
	return stage, nil
}

func collectHeaders(e ast.Expr, need map[string]bool) {
	switch x := e.(type) {
	case *ast.FieldRef:
		if len(x.Parts) == 2 && x.Parts[0] != "meta" && x.Parts[0] != "istd" {
			need[x.Parts[0]] = true
		}
	case *ast.CallExpr:
		if x.Method == "isValid" && x.Recv != "" {
			need[x.Recv] = true
		}
		for _, a := range x.Args {
			collectHeaders(a, need)
		}
	case *ast.UnaryExpr:
		collectHeaders(x.X, need)
	case *ast.BinaryExpr:
		collectHeaders(x.X, need)
		collectHeaders(x.Y, need)
	}
}

func collectHeadersStmts(body []ast.Stmt, need map[string]bool) {
	for _, s := range body {
		switch st := s.(type) {
		case *ast.AssignStmt:
			collectHeaders(st.LHS, need)
			collectHeaders(st.RHS, need)
		case *ast.IfStmt:
			collectHeaders(st.Cond, need)
			collectHeadersStmts(st.Then, need)
			collectHeadersStmts(st.Else, need)
		case *ast.CallStmt:
			for _, a := range st.Args {
				collectHeaders(a, need)
			}
		}
	}
}
