package backend

import (
	"fmt"
	"strings"
	"testing"

	"ipsa/internal/rp4/parser"
)

// syntheticDesign generates an rP4 program with nStages stages. Every
// stage matches its own table; dependent stages chain through metadata so
// merging has both opportunities (independent neighbours) and obligations
// (RAW chains).
func syntheticDesign(nStages int, dependent bool) string {
	var b strings.Builder
	b.WriteString(`
headers {
    header eth {
        bit<48> dst;
        bit<48> src;
        bit<16> et;
    }
}
structs {
    struct md {
`)
	for i := 0; i < nStages+1; i++ {
		fmt.Fprintf(&b, "        bit<16> f%d;\n", i)
	}
	b.WriteString("    } meta;\n}\n")
	for i := 0; i < nStages; i++ {
		src := 0
		if dependent {
			src = i // stage i reads f_i, writes f_{i+1}
		}
		fmt.Fprintf(&b, `
action act%d(bit<16> v) {
    meta.f%d = v;
}
table t%d {
    key = {
        meta.f%d: exact;
    }
    actions = { act%d; }
    size = 64;
}
`, i, i+1, i, src, i)
	}
	b.WriteString("control rP4_Ingress {\n")
	for i := 0; i < nStages; i++ {
		fmt.Fprintf(&b, `
    stage s%d {
        parser { eth };
        matcher { t%d.apply(); };
        executor { 1: act%d; default: NoAction; };
    }
`, i, i, i)
	}
	b.WriteString("}\n")
	b.WriteString("user_funcs {\n")
	for i := 0; i < nStages; i++ {
		fmt.Fprintf(&b, "    func fn%d { s%d }\n", i, i)
	}
	b.WriteString("    ingress_entry: s0;\n}\n")
	return b.String()
}

func TestCompileScalesTo64Stages(t *testing.T) {
	for _, dependent := range []bool{false, true} {
		src := syntheticDesign(64, dependent)
		prog, err := parser.Parse("synthetic.rp4", src)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.NumTSPs = 80
		// The synthetic tables exceed the default pool; widen it.
		opts.Mem.Blocks = 256
		c, err := Compile(prog, opts)
		if err != nil {
			t.Fatalf("dependent=%v: %v", dependent, err)
		}
		if c.Stats.Stages != 64 {
			t.Errorf("stages = %d", c.Stats.Stages)
		}
		if dependent {
			// A full RAW chain cannot merge at all.
			if c.Stats.TSPsUsed != 64 {
				t.Errorf("dependent chain used %d TSPs, want 64", c.Stats.TSPsUsed)
			}
		} else {
			// Fully independent stages pack two per TSP (table limit).
			if c.Stats.TSPsUsed != 32 {
				t.Errorf("independent stages used %d TSPs, want 32", c.Stats.TSPsUsed)
			}
		}
	}
}

func TestIncrementalScalesWithManyUpdates(t *testing.T) {
	// Apply 24 consecutive single-stage updates to a synthetic base and
	// verify each one stays a small patch (no cascade of rewrites).
	src := syntheticDesign(8, true)
	prog, err := parser.Parse("synthetic.rp4", src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.NumTSPs = 48
	opts.Mem.Blocks = 256
	w, err := NewWorkspace(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		snippet := fmt.Sprintf(`
action uact%d(bit<16> v) {
    meta.f0 = v;
}
table ut%d {
    key = {
        meta.f8: exact;
    }
    actions = { uact%d; }
    size = 32;
}
stage us%d {
    parser { eth };
    matcher { ut%d.apply(); };
    executor { 1: uact%d; default: NoAction; };
}
user_funcs { func ufn%d { us%d } }
`, i, i, i, i, i, i, i, i)
		prev := "s7"
		if i > 0 {
			prev = fmt.Sprintf("us%d", i-1)
		}
		script := fmt.Sprintf("load u%d.rp4\nadd_link %s us%d\n", i, prev, i)
		rep, err := w.ApplyScript(script, func(string) (string, error) { return snippet, nil })
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if len(rep.RewrittenTSPs) > 2 {
			t.Errorf("update %d rewrote %d TSPs: %v", i, len(rep.RewrittenTSPs), rep.RewrittenTSPs)
		}
		if len(rep.NewTables) != 1 {
			t.Errorf("update %d new tables: %v", i, rep.NewTables)
		}
	}
	if got := len(w.Current().Config.Stages); got != 32 {
		t.Errorf("final stages = %d, want 32", got)
	}
}
