package backend

import (
	"os"
	"path/filepath"
	"testing"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/rp4/sem"
)

func loadBase(t *testing.T) *ast.Program {
	t.Helper()
	src, err := os.ReadFile("../../../testdata/base_l2l3.rp4")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("base_l2l3.rp4", string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func testdataLoader(t *testing.T) Loader {
	t.Helper()
	return func(name string) (string, error) {
		b, err := os.ReadFile(filepath.Join("../../../testdata", name))
		return string(b), err
	}
}

func readScript(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCompileBaseDesignSevenTSPs(t *testing.T) {
	c, err := Compile(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's base design maps to seven TSPs (Sec. 4.2): predicate
	// merging packs the v4/v6 host FIBs, the v4/v6 LPM FIBs, and the two
	// egress stages.
	if c.Stats.TSPsUsed != 7 {
		t.Errorf("TSPs used = %d, want 7 (groups: %v / %v)",
			c.Stats.TSPsUsed, c.IngressGroups, c.EgressGroups)
	}
	if len(c.IngressGroups) != 6 || len(c.EgressGroups) != 1 {
		t.Errorf("groups = %d ingress, %d egress", len(c.IngressGroups), len(c.EgressGroups))
	}
	// The merged pairs must be the exclusive FIB stages and the
	// independent egress stages.
	foundHostMerge, foundLpmMerge := false, false
	for _, g := range c.IngressGroups {
		k := map[string]bool{}
		for _, s := range g.Stages {
			k[s] = true
		}
		if k["ipv4_host_fib"] && k["ipv6_host_fib"] {
			foundHostMerge = true
		}
		if k["ipv4_lpm_fib"] && k["ipv6_lpm_fib"] {
			foundLpmMerge = true
		}
	}
	if !foundHostMerge || !foundLpmMerge {
		t.Errorf("expected v4/v6 FIB merges, got %v", c.IngressGroups)
	}
	if len(c.EgressGroups[0].Stages) != 2 {
		t.Errorf("egress group = %v, want l2_l3_rewrite+dmac", c.EgressGroups)
	}
	// Template config sanity.
	if err := c.Config.Validate(); err != nil {
		t.Errorf("config invalid: %v", err)
	}
	if len(c.Config.IngressChain) != 8 || len(c.Config.EgressChain) != 2 {
		t.Errorf("chains: %v / %v", c.Config.IngressChain, c.Config.EgressChain)
	}
	if c.Config.MetaBytes == 0 {
		t.Error("no metadata")
	}
	// Every live stage has a TSP.
	for s := range c.Config.Stages {
		if _, ok := c.Config.TSPAssignment[s]; !ok {
			t.Errorf("stage %q unassigned", s)
		}
	}
	// Packing found a feasible placement for all 10 tables.
	if len(c.Packing.Assignment) != 10 {
		t.Errorf("packed %d tables", len(c.Packing.Assignment))
	}
}

func TestCompileWithoutMerge(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableMerge = false
	opts.NumTSPs = 12
	c, err := Compile(loadBase(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.TSPsUsed != 10 {
		t.Errorf("unmerged TSPs = %d, want 10 (one per stage)", c.Stats.TSPsUsed)
	}
	if c.Stats.MergedStages != 0 {
		t.Errorf("merged stages = %d", c.Stats.MergedStages)
	}
}

func TestCompileTooFewTSPs(t *testing.T) {
	opts := DefaultOptions()
	opts.NumTSPs = 4
	if _, err := Compile(loadBase(t), opts); err == nil {
		t.Error("design accepted on 4 TSPs")
	}
}

func TestLowerProducesExecutableShapes(t *testing.T) {
	d, err := sem.Analyze(loadBase(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Lower(d)
	if err != nil {
		t.Fatal(err)
	}
	// ethernet parser transitions resolved to instance ids.
	eth := cfg.HeaderByName("ethernet")
	if eth == nil || len(eth.Transitions) != 2 || eth.SelWidth != 16 || eth.SelOff != 96 {
		t.Fatalf("ethernet template: %+v", eth)
	}
	// rewrite_l3 contains conditional TTL decrements.
	act := cfg.Actions["rewrite_l3"]
	if act == nil || len(act.Body) != 3 {
		t.Fatalf("rewrite_l3 body: %+v", act)
	}
	if act.Body[1].Op != "if" || act.Body[1].Cond == nil {
		t.Errorf("expected if instruction: %+v", act.Body[1])
	}
	// set_bd_dmac params lowered.
	sb := cfg.Actions["set_bd_dmac"]
	if len(sb.ParamWidths) != 2 || sb.ParamWidths[1] != 48 {
		t.Errorf("set_bd_dmac params: %v", sb.ParamWidths)
	}
	// ipv4_lpm table kind.
	if cfg.Tables["ipv4_lpm"].Kind != "lpm" {
		t.Errorf("ipv4_lpm kind = %s", cfg.Tables["ipv4_lpm"].Kind)
	}
	// Every stage got a default arm.
	for n, s := range cfg.Stages {
		has := false
		for _, a := range s.Arms {
			if a.Default {
				has = true
			}
		}
		if !has {
			t.Errorf("stage %q lacks default arm", n)
		}
	}
}

func TestExclusivityAnalysis(t *testing.T) {
	d, err := sem.Analyze(loadBase(t))
	if err != nil {
		t.Fatal(err)
	}
	cv := computeCoValidity(d)
	if cv.CanCoOccur("ipv4", "ipv6") {
		t.Error("ipv4 and ipv6 co-occur in the base parse graph")
	}
	if !cv.CanCoOccur("ethernet", "ipv4") || !cv.CanCoOccur("ipv4", "tcp") {
		t.Error("chain co-occurrence missing")
	}
	if !Exclusive(d.Stages["ipv4_host_fib"], d.Stages["ipv6_host_fib"], cv) {
		t.Error("v4/v6 host FIB stages not exclusive")
	}
	if Exclusive(d.Stages["ipv4_host_fib"], d.Stages["ipv4_lpm_fib"], cv) {
		t.Error("v4 host and lpm FIB stages wrongly exclusive")
	}
	// Unconditional stages are never exclusive with anything applying.
	if Exclusive(d.Stages["port_map"], d.Stages["bd_vrf"], cv) {
		t.Error("unconditional stages wrongly exclusive")
	}
}

func TestDataConflict(t *testing.T) {
	d, err := sem.Analyze(loadBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if !dataConflict(d.Stages["port_map"], d.Stages["bd_vrf"], d) {
		t.Error("iif RAW conflict missed")
	}
	if dataConflict(d.Stages["port_map"], d.Stages["l2_l3"], d) {
		t.Error("independent stages conflict")
	}
	if !dataConflict(d.Stages["ipv4_host_fib"], d.Stages["ipv6_host_fib"], d) {
		t.Error("WAW on nexthop missed (exclusivity is separate)")
	}
}

func TestInitialLinksShape(t *testing.T) {
	d, err := sem.Analyze(loadBase(t))
	if err != nil {
		t.Fatal(err)
	}
	g, err := InitialLinks(d)
	if err != nil {
		t.Fatal(err)
	}
	// Chain of 8 ingress + cross edge + chain of 2 egress.
	if got := g.Succ("nexthop"); len(got) != 1 || got[0] != "l2_l3_rewrite" {
		t.Errorf("cross edge: %v", got)
	}
	if got := g.Succ("l2_l3_rewrite"); len(got) != 1 || got[0] != "dmac" {
		t.Errorf("egress chain: %v", got)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Errorf("order = %v", order)
	}
}
