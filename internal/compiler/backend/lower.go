package backend

import (
	"fmt"
	"sort"

	"ipsa/internal/match"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/sem"
	"ipsa/internal/rp4/token"
	"ipsa/internal/template"
)

// Lower compiles an analyzed design to the template form. Chains and TSP
// assignment are left empty; Compile fills them from the link graph and the
// layout optimizer.
func Lower(d *sem.Design) (*template.Config, error) {
	cfg := &template.Config{
		MetaBytes: d.MetaBytes(),
		Actions:   make(map[string]*template.Action),
		Tables:    make(map[string]*template.Table),
		Stages:    make(map[string]*template.Stage),
	}
	if err := lowerHeaders(d, cfg); err != nil {
		return nil, err
	}
	for _, r := range d.Prog.Registers {
		cfg.Registers = append(cfg.Registers, template.Register{Name: r.Name, Width: r.Width, Size: r.Size})
	}
	sort.Slice(cfg.Registers, func(i, j int) bool { return cfg.Registers[i].Name < cfg.Registers[j].Name })
	names := make([]string, 0, len(d.Actions))
	for n := range d.Actions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a, err := lowerAction(d, d.Actions[n])
		if err != nil {
			return nil, err
		}
		cfg.Actions[n] = a
	}
	for _, n := range d.SortedTableNames() {
		t, err := lowerTable(d, d.Tables[n])
		if err != nil {
			return nil, err
		}
		cfg.Tables[n] = t
	}
	for name, si := range d.Stages {
		s, err := lowerStage(d, si)
		if err != nil {
			return nil, err
		}
		cfg.Stages[name] = s
	}
	return cfg, nil
}

func lowerHeaders(d *sem.Design, cfg *template.Config) error {
	for _, inst := range d.Instances {
		h := template.Header{
			Name:      inst.Name,
			ID:        inst.ID,
			WidthBits: inst.Width,
			Fields:    make(map[string][2]int, len(inst.Def.Fields)),
		}
		off := 0
		for _, f := range inst.Def.Fields {
			h.Fields[f.Name] = [2]int{off, f.Width}
			off += f.Width
		}
		if vl := inst.Def.VarLen; vl != nil {
			fld, foff := inst.Def.Field(vl.Field)
			if fld == nil {
				return fmt.Errorf("rp4bc: header %q varlen field %q missing", inst.Name, vl.Field)
			}
			h.VarLen = &template.VarLen{
				LenOff: foff, LenWidth: fld.Width,
				BaseBytes: vl.BaseBytes, UnitBytes: vl.UnitBytes,
			}
		}
		if p := inst.Def.Parser; p != nil {
			selOff, selWidth, err := selectorRange(inst.Def, p.SelectorFields)
			if err != nil {
				return err
			}
			h.SelOff, h.SelWidth = selOff, selWidth
			for _, tr := range p.Transitions {
				next, ok := d.InstanceByName[tr.Next]
				if !ok {
					return fmt.Errorf("rp4bc: header %q transition to unknown instance %q", inst.Name, tr.Next)
				}
				h.Transitions = append(h.Transitions, template.Transition{Tag: tr.Tag, Next: next.ID})
			}
		}
		cfg.Headers = append(cfg.Headers, h)
	}
	// The parse entry point is the first declared instance (ethernet in
	// every shipped design).
	if len(d.Instances) > 0 {
		cfg.FirstHdr = d.Instances[0].ID
	}
	return nil
}

// selectorRange validates that selector fields are contiguous and returns
// their concatenated bit range.
func selectorRange(h *ast.HeaderDef, fields []string) (off, width int, err error) {
	if len(fields) == 0 {
		return 0, 0, fmt.Errorf("rp4bc: header %q implicit parser has no selector fields", h.Name)
	}
	first, firstOff := h.Field(fields[0])
	if first == nil {
		return 0, 0, fmt.Errorf("rp4bc: header %q has no field %q", h.Name, fields[0])
	}
	off = firstOff
	width = first.Width
	for _, fn := range fields[1:] {
		f, fo := h.Field(fn)
		if f == nil {
			return 0, 0, fmt.Errorf("rp4bc: header %q has no field %q", h.Name, fn)
		}
		if fo != off+width {
			return 0, 0, fmt.Errorf("rp4bc: header %q selector fields %v are not contiguous", h.Name, fields)
		}
		width += f.Width
	}
	if width > 64 {
		return 0, 0, fmt.Errorf("rp4bc: header %q selector wider than 64 bits", h.Name)
	}
	return off, width, nil
}

func lowerAction(d *sem.Design, ai *sem.ActionInfo) (*template.Action, error) {
	a := &template.Action{Name: ai.Def.Name}
	params := make(map[string]int)
	for i, p := range ai.Def.Params {
		a.ParamWidths = append(a.ParamWidths, p.Width)
		params[p.Name] = i
	}
	body, err := lowerStmts(d, ai.Def.Body, params)
	if err != nil {
		return nil, fmt.Errorf("rp4bc: action %q: %w", ai.Def.Name, err)
	}
	a.Body = body
	return a, nil
}

func lowerStmts(d *sem.Design, body []ast.Stmt, params map[string]int) ([]template.Instr, error) {
	var out []template.Instr
	for _, s := range body {
		switch st := s.(type) {
		case *ast.EmptyStmt:
		case *ast.AssignStmt:
			dst, err := lowerFieldOperand(d, st.LHS, params)
			if err != nil {
				return nil, err
			}
			src, err := lowerExpr(d, st.RHS, params)
			if err != nil {
				return nil, err
			}
			out = append(out, template.Instr{Op: template.IAssign, Dst: dst, Src: src})
		case *ast.CallStmt:
			in, err := lowerCallStmt(d, st, params)
			if err != nil {
				return nil, err
			}
			out = append(out, in)
		case *ast.IfStmt:
			cond, err := lowerCond(d, st.Cond, params)
			if err != nil {
				return nil, err
			}
			then, err := lowerStmts(d, st.Then, params)
			if err != nil {
				return nil, err
			}
			els, err := lowerStmts(d, st.Else, params)
			if err != nil {
				return nil, err
			}
			out = append(out, template.Instr{Op: template.IIf, Cond: cond, Then: then, Else: els})
		default:
			return nil, fmt.Errorf("unsupported statement %T", s)
		}
	}
	return out, nil
}

func lowerCallStmt(d *sem.Design, st *ast.CallStmt, params map[string]int) (template.Instr, error) {
	if st.Recv == "" {
		switch st.Method {
		case "drop":
			return template.Instr{Op: template.IDrop}, nil
		case "to_cpu":
			return template.Instr{Op: template.IToCPU}, nil
		case "srh_advance":
			return template.Instr{Op: template.ISRHAdvance}, nil
		case "srh_pop":
			return template.Instr{Op: template.ISRHPop}, nil
		}
		return template.Instr{}, fmt.Errorf("unknown builtin %q", st.Method)
	}
	if st.Method == "write" {
		if _, ok := d.Registers[st.Recv]; !ok {
			return template.Instr{}, fmt.Errorf("unknown register %q", st.Recv)
		}
		idx, err := lowerExpr(d, st.Args[0], params)
		if err != nil {
			return template.Instr{}, err
		}
		val, err := lowerExpr(d, st.Args[1], params)
		if err != nil {
			return template.Instr{}, err
		}
		return template.Instr{Op: template.IRegWrite, Reg: st.Recv, Index: idx, Value: val}, nil
	}
	return template.Instr{}, fmt.Errorf("unsupported call %s.%s", st.Recv, st.Method)
}

func lowerFieldOperand(d *sem.Design, ref *ast.FieldRef, params map[string]int) (template.Operand, error) {
	if len(ref.Parts) == 1 {
		if idx, ok := params[ref.Parts[0]]; ok {
			return template.Operand{Kind: template.OpdParam, ParamIdx: idx}, nil
		}
		if cd, ok := d.Consts[ref.Parts[0]]; ok {
			return template.Operand{Kind: template.OpdConst, Const: cd.Value}, nil
		}
		return template.Operand{}, fmt.Errorf("%s: unknown name %q", ref.Pos, ref.Parts[0])
	}
	fi, err := d.ResolveField(ref)
	if err != nil {
		return template.Operand{}, err
	}
	switch fi.Space {
	case sem.SpaceHeader:
		return template.Operand{Kind: template.OpdHeader, Header: fi.Header, BitOff: fi.BitOff, Width: fi.Width}, nil
	default:
		return template.Operand{Kind: template.OpdMeta, BitOff: fi.BitOff, Width: fi.Width}, nil
	}
}

var arithOps = map[token.Type]template.ArithOp{
	token.Plus: template.OpAdd, token.Minus: template.OpSub,
	token.Star: template.OpMul, token.Slash: template.OpDiv,
	token.Percent: template.OpMod,
	token.Amp:     template.OpAnd, token.Pipe: template.OpOr,
	token.Caret: template.OpXor,
	token.Shl:   template.OpShl, token.Shr: template.OpShr,
}

var cmpOps = map[token.Type]template.CmpOp{
	token.Eq: template.CmpEq, token.Neq: template.CmpNe,
	token.LAngle: template.CmpLt, token.RAngle: template.CmpGt,
	token.Leq: template.CmpLe, token.Geq: template.CmpGe,
}

func lowerExpr(d *sem.Design, e ast.Expr, params map[string]int) (*template.Expr, error) {
	switch x := e.(type) {
	case *ast.NumberLit:
		return &template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdConst, Const: x.Val}}, nil
	case *ast.FieldRef:
		opd, err := lowerFieldOperand(d, x, params)
		if err != nil {
			return nil, err
		}
		return &template.Expr{Kind: template.ExprOperand, Operand: &opd}, nil
	case *ast.UnaryExpr:
		if x.Op != token.Minus {
			return nil, fmt.Errorf("%s: operator %s is not numeric", x.Pos, x.Op)
		}
		sub, err := lowerExpr(d, x.X, params)
		if err != nil {
			return nil, err
		}
		zero := &template.Expr{Kind: template.ExprOperand, Operand: &template.Operand{Kind: template.OpdConst}}
		return &template.Expr{Kind: template.ExprBin, Op: template.OpSub, A: zero, B: sub}, nil
	case *ast.BinaryExpr:
		op, ok := arithOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("%s: operator %s is not numeric", x.Pos, x.Op)
		}
		a, err := lowerExpr(d, x.X, params)
		if err != nil {
			return nil, err
		}
		b, err := lowerExpr(d, x.Y, params)
		if err != nil {
			return nil, err
		}
		return &template.Expr{Kind: template.ExprBin, Op: op, A: a, B: b}, nil
	case *ast.CallExpr:
		switch {
		case x.Method == "read" && x.Recv != "":
			idx, err := lowerExpr(d, x.Args[0], params)
			if err != nil {
				return nil, err
			}
			return &template.Expr{Kind: template.ExprRegRead, Reg: x.Recv, Index: idx}, nil
		case x.Method == "hash" && x.Recv == "":
			var args []*template.Expr
			for _, a := range x.Args {
				la, err := lowerExpr(d, a, params)
				if err != nil {
					return nil, err
				}
				args = append(args, la)
			}
			return &template.Expr{Kind: template.ExprHash, Args: args}, nil
		}
		return nil, fmt.Errorf("%s: call %s is not a value", x.Pos, ast.ExprString(x))
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func lowerCond(d *sem.Design, e ast.Expr, params map[string]int) (*template.Cond, error) {
	switch x := e.(type) {
	case *ast.BoolLit:
		return &template.Cond{Kind: template.CondBool, Val: x.Val}, nil
	case *ast.CallExpr:
		if x.Method == "isValid" && x.Recv != "" {
			inst, ok := d.InstanceByName[x.Recv]
			if !ok {
				return nil, fmt.Errorf("%s: isValid on unknown header %q", x.Pos, x.Recv)
			}
			return &template.Cond{Kind: template.CondValid, Header: inst.ID}, nil
		}
		return nil, fmt.Errorf("%s: call %s is not boolean", x.Pos, ast.ExprString(x))
	case *ast.UnaryExpr:
		if x.Op != token.Not {
			return nil, fmt.Errorf("%s: operator %s is not boolean", x.Pos, x.Op)
		}
		sub, err := lowerCond(d, x.X, params)
		if err != nil {
			return nil, err
		}
		return &template.Cond{Kind: template.CondNot, X: sub}, nil
	case *ast.BinaryExpr:
		switch x.Op {
		case token.AndAnd, token.OrOr:
			a, err := lowerCond(d, x.X, params)
			if err != nil {
				return nil, err
			}
			b, err := lowerCond(d, x.Y, params)
			if err != nil {
				return nil, err
			}
			kind := template.CondAnd
			if x.Op == token.OrOr {
				kind = template.CondOr
			}
			return &template.Cond{Kind: kind, X: a, Y: b}, nil
		default:
			cmp, ok := cmpOps[x.Op]
			if !ok {
				return nil, fmt.Errorf("%s: operator %s is not boolean", x.Pos, x.Op)
			}
			a, err := lowerExpr(d, x.X, params)
			if err != nil {
				return nil, err
			}
			b, err := lowerExpr(d, x.Y, params)
			if err != nil {
				return nil, err
			}
			return &template.Cond{Kind: template.CondCmp, Cmp: cmp, A: a, B: b}, nil
		}
	}
	return nil, fmt.Errorf("expression %s is not boolean", ast.ExprString(e))
}

func lowerTable(d *sem.Design, ti *sem.TableInfo) (*template.Table, error) {
	t := &template.Table{
		Name:       ti.Def.Name,
		KeyWidth:   ti.KeyWidth,
		Size:       ti.Def.Size,
		IsSelector: ti.IsSelector,
	}
	// The engine kind: selectors and plain exacts store entries exactly;
	// lpm/ternary/range map directly.
	kind := match.Exact
	for _, k := range ti.Keys {
		switch k.Kind {
		case match.LPM:
			kind = match.LPM
		case match.Ternary:
			kind = match.Ternary
		case match.Range:
			kind = match.Range
		}
	}
	if ti.IsSelector {
		// The group key (first key) is the exact lookup; the rest feed
		// the member hash.
		kind = match.Exact
	}
	t.Kind = kind.String()
	for _, k := range ti.Keys {
		opd := template.Operand{
			Kind: template.OpdMeta, BitOff: k.Field.BitOff, Width: k.Field.Width,
		}
		if k.Field.Space == sem.SpaceHeader {
			opd = template.Operand{
				Kind: template.OpdHeader, Header: k.Field.Header,
				BitOff: k.Field.BitOff, Width: k.Field.Width,
			}
		}
		t.Keys = append(t.Keys, template.KeySel{Name: k.Name, Operand: opd, Kind: k.Kind.String()})
	}
	return t, nil
}

func lowerStage(d *sem.Design, si *sem.StageInfo) (*template.Stage, error) {
	s := &template.Stage{
		Name: si.Def.Name,
		Func: d.FuncOfStage(si.Def.Name),
		Pipe: si.Pipe,
	}
	for _, hn := range si.Def.Parser {
		inst, ok := d.InstanceByName[hn]
		if !ok {
			return nil, fmt.Errorf("rp4bc: stage %q parses unknown instance %q", si.Def.Name, hn)
		}
		s.Parse = append(s.Parse, inst.ID)
	}
	mt, err := lowerMatcher(d, si.Def.Matcher)
	if err != nil {
		return nil, fmt.Errorf("rp4bc: stage %q: %w", si.Def.Name, err)
	}
	s.Match = mt
	hasDefault := false
	for _, arm := range si.Def.Exec {
		s.Arms = append(s.Arms, template.Arm{Default: arm.Default, Tag: arm.Tag, Action: arm.Action})
		if arm.Default {
			hasDefault = true
		}
	}
	if !hasDefault {
		s.Arms = append(s.Arms, template.Arm{Default: true, Action: sem.NoActionName})
	}
	s.Tables = append(s.Tables, si.Tables...)
	return s, nil
}

func lowerMatcher(d *sem.Design, body []ast.Stmt) ([]template.MatchStmt, error) {
	var out []template.MatchStmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.EmptyStmt:
		case *ast.CallStmt:
			if st.Method != "apply" {
				return nil, fmt.Errorf("matcher statement %s.%s is not an apply", st.Recv, st.Method)
			}
			out = append(out, template.MatchStmt{Kind: template.MatchApply, Table: st.Recv})
		case *ast.IfStmt:
			cond, err := lowerCond(d, st.Cond, nil)
			if err != nil {
				return nil, err
			}
			then, err := lowerMatcher(d, st.Then)
			if err != nil {
				return nil, err
			}
			els, err := lowerMatcher(d, st.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, template.MatchStmt{Kind: template.MatchIf, Cond: cond, Then: then, Else: els})
		default:
			return nil, fmt.Errorf("unsupported matcher statement %T", s)
		}
	}
	return out, nil
}
