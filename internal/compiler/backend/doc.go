// Package backend implements rp4bc, the rP4 back-end compiler (paper
// Sec. 3.2): it lowers analyzed rP4 programs to TSP template parameters
// (package template), analyzes the dependencies of logical stages, merges
// independent stages into shared TSPs using predicate exclusivity, computes
// the stage-to-TSP layout (package layout) and the table-to-memory-pool
// placement (package packing), and executes the update-script language
// (load / unload / add_link / del_link / link_header) that drives in-situ
// incremental updates.
package backend
