package backend

import (
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/sem"
	"ipsa/internal/rp4/token"
)

// Exclusivity analysis: two stages whose guard predicates can never hold
// for the same packet may share a TSP even when their write sets overlap —
// the paper's "optimizes the predicates to merge some independent stages
// into a single TSP". The strongest source of exclusivity is the parse
// graph: ipv4 and ipv6 are alternative successors of ethernet, so
// ipv4.isValid() && ipv6.isValid() is unsatisfiable.

// coValidity computes, for every pair of header instances, whether some
// parse path can make both valid simultaneously.
type coValidity struct {
	co map[[2]string]bool
}

func computeCoValidity(d *sem.Design) *coValidity {
	cv := &coValidity{co: make(map[[2]string]bool)}
	if len(d.Instances) == 0 {
		return cv
	}
	// Enumerate parse paths by DFS from the first instance. Paths are sets
	// of instances; a header pair on one path can co-occur. Cycles (e.g.
	// srh -> ipv6 with a single ipv6 instance) are cut by the on-path set.
	start := d.Instances[0]
	onPath := make(map[string]bool)
	var path []string
	var walk func(inst *sem.Instance)
	walk = func(inst *sem.Instance) {
		if onPath[inst.Name] {
			return
		}
		onPath[inst.Name] = true
		path = append(path, inst.Name)
		for _, a := range path {
			cv.setCo(a, inst.Name)
		}
		if inst.Def.Parser != nil {
			for _, tr := range inst.Def.Parser.Transitions {
				if next, ok := d.InstanceByName[tr.Next]; ok {
					walk(next)
				}
			}
		}
		path = path[:len(path)-1]
		onPath[inst.Name] = false
	}
	walk(start)
	return cv
}

func (cv *coValidity) setCo(a, b string) {
	if a > b {
		a, b = b, a
	}
	cv.co[[2]string{a, b}] = true
}

// CanCoOccur reports whether headers a and b can both be valid.
func (cv *coValidity) CanCoOccur(a, b string) bool {
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	return cv.co[[2]string{a, b}]
}

// atom is one literal of a guard conjunction.
type atom struct {
	kind    atomKind
	header  string // valid
	field   string // cmp: canonical field name
	cmpOp   token.Type
	cmpVal  uint64
	negated bool
}

type atomKind int

const (
	atomValid atomKind = iota
	atomCmpConst
	atomOpaque // anything we can't reason about
)

// guard is a conjunction of atoms; a stage's predicate is a disjunction of
// guards (one per matcher branch that applies a table).
type guard []atom

// stageGuards extracts the disjunction of branch guards under which a
// stage applies any table. A stage with an unconditional apply yields one
// empty guard (always true).
func stageGuards(si *sem.StageInfo) []guard {
	var out []guard
	var walk func(body []ast.Stmt, cur guard)
	walk = func(body []ast.Stmt, cur guard) {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.CallStmt:
				if st.Method == "apply" {
					out = append(out, append(guard(nil), cur...))
				}
			case *ast.IfStmt:
				thenG := append(append(guard(nil), cur...), condAtoms(st.Cond, false)...)
				walk(st.Then, thenG)
				elseG := append(append(guard(nil), cur...), condAtoms(st.Cond, true)...)
				walk(st.Else, elseG)
			}
		}
	}
	walk(si.Def.Matcher, nil)
	return out
}

// condAtoms flattens a condition into conjunction atoms. Negation
// distributes only over single atoms; anything more complex becomes an
// opaque atom (conservatively satisfiable).
func condAtoms(e ast.Expr, neg bool) []atom {
	switch x := e.(type) {
	case *ast.CallExpr:
		if x.Method == "isValid" && x.Recv != "" {
			return []atom{{kind: atomValid, header: x.Recv, negated: neg}}
		}
	case *ast.UnaryExpr:
		if x.Op == token.Not {
			return condAtoms(x.X, !neg)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.AndAnd:
			if !neg {
				return append(condAtoms(x.X, false), condAtoms(x.Y, false)...)
			}
		case token.OrOr:
			if neg { // !(a || b) == !a && !b
				return append(condAtoms(x.X, true), condAtoms(x.Y, true)...)
			}
		case token.Eq, token.Neq:
			if ref, okA := x.X.(*ast.FieldRef); okA {
				if num, okB := x.Y.(*ast.NumberLit); okB && len(ref.Parts) == 2 {
					op := x.Op
					if neg {
						if op == token.Eq {
							op = token.Neq
						} else {
							op = token.Eq
						}
					}
					return []atom{{kind: atomCmpConst, field: ref.String(), cmpOp: op, cmpVal: num.Val}}
				}
			}
		}
	}
	return []atom{{kind: atomOpaque}}
}

// contradictory reports whether two guard conjunctions cannot both hold.
func contradictory(a, b guard, cv *coValidity) bool {
	all := append(append(guard(nil), a...), b...)
	// Pairwise checks.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			x, y := all[i], all[j]
			// valid(h1) && valid(h2) with exclusive headers.
			if x.kind == atomValid && y.kind == atomValid && !x.negated && !y.negated {
				if !cv.CanCoOccur(x.header, y.header) {
					return true
				}
			}
			// valid(h) && !valid(h).
			if x.kind == atomValid && y.kind == atomValid && x.header == y.header && x.negated != y.negated {
				return true
			}
			// f == c1 && f == c2 with c1 != c2; f == c && f != c.
			if x.kind == atomCmpConst && y.kind == atomCmpConst && x.field == y.field {
				if x.cmpOp == token.Eq && y.cmpOp == token.Eq && x.cmpVal != y.cmpVal {
					return true
				}
				if x.cmpVal == y.cmpVal && x.cmpOp != y.cmpOp {
					return true
				}
			}
		}
	}
	return false
}

// Exclusive reports whether stages a and b can never both act on the same
// packet: every pair of their branch guards is contradictory, witnessed
// only by atoms over *stable* state. An atom over a field either stage
// writes is discarded first — `fib_hit == 0` vs `fib_hit == 1` is no
// contradiction when the first stage sets fib_hit, because the stages run
// sequentially and the earlier one enables the later. Header-validity
// atoms are unstable when either stage pops headers (srh_pop).
func Exclusive(a, b *sem.StageInfo, cv *coValidity) bool {
	ga, gb := stageGuards(a), stageGuards(b)
	if len(ga) == 0 || len(gb) == 0 {
		// A stage with no applies never conflicts.
		return true
	}
	unstable := make(map[string]bool)
	for f := range a.Writes {
		unstable[f] = true
	}
	for f := range b.Writes {
		unstable[f] = true
	}
	validUnstable := stagePopsHeaders(a) || stagePopsHeaders(b)
	filter := func(g guard) guard {
		out := g[:0:0]
		for _, at := range g {
			switch at.kind {
			case atomCmpConst:
				if unstable[at.field] {
					continue
				}
			case atomValid:
				if validUnstable {
					continue
				}
			}
			out = append(out, at)
		}
		return out
	}
	for _, x := range ga {
		fx := filter(x)
		for _, y := range gb {
			if !contradictory(fx, filter(y), cv) {
				return false
			}
		}
	}
	return true
}

// stagePopsHeaders reports whether any executor action of the stage
// removes headers, making validity atoms unstable.
func stagePopsHeaders(s *sem.StageInfo) bool { return s.PopsHeaders }
