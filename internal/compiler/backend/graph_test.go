package backend

import (
	"reflect"
	"testing"
)

func TestGraphEdges(t *testing.T) {
	g := NewGraph()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("c", "a"); err == nil {
		t.Error("cycle accepted")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self link accepted")
	}
	if !reflect.DeepEqual(g.Succ("a"), []string{"b"}) {
		t.Errorf("succ(a) = %v", g.Succ("a"))
	}
	if !reflect.DeepEqual(g.Pred("c"), []string{"b"}) {
		t.Errorf("pred(c) = %v", g.Pred("c"))
	}
	if err := g.DelEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.DelEdge("a", "b"); err == nil {
		t.Error("deleting missing edge accepted")
	}
}

func TestGraphTopoSortStable(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddNode(n)
	}
	_ = g.AddEdge("a", "c")
	_ = g.AddEdge("b", "c")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	// Ties broken by insertion rank: a, b, then c, and d floats by rank.
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestGraphPruneOrphans(t *testing.T) {
	g := NewGraph()
	_ = g.AddEdge("a", "b")
	g.AddNode("orphan")
	g.AddNode("entry")
	removed := g.PruneOrphans(map[string]bool{"entry": true})
	if !reflect.DeepEqual(removed, []string{"orphan"}) {
		t.Errorf("removed = %v", removed)
	}
	if !g.HasNode("entry") || !g.HasNode("a") {
		t.Error("kept nodes removed")
	}
	// Removing the only edge orphans both a and b; entry stays protected.
	_ = g.DelEdge("a", "b")
	removed = g.PruneOrphans(map[string]bool{"entry": true})
	if !reflect.DeepEqual(removed, []string{"a", "b"}) {
		t.Errorf("removed = %v", removed)
	}
	if !g.HasNode("entry") {
		t.Error("protected entry pruned")
	}
}

func TestGraphCloneIndependent(t *testing.T) {
	g := NewGraph()
	_ = g.AddEdge("a", "b")
	c := g.Clone()
	_ = c.AddEdge("b", "c")
	if g.HasNode("c") {
		t.Error("clone shares state")
	}
	if !c.HasNode("a") || len(c.Succ("a")) != 1 {
		t.Error("clone lost edges")
	}
	// Insertion ranks preserved: topo stable.
	o1, _ := g.TopoSort()
	if !reflect.DeepEqual(o1, []string{"a", "b"}) {
		t.Errorf("order = %v", o1)
	}
}

func TestReachableFrom(t *testing.T) {
	g := NewGraph()
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("b", "c")
	g.AddNode("x")
	r := g.ReachableFrom("a")
	if !r["a"] || !r["b"] || !r["c"] || r["x"] {
		t.Errorf("reach = %v", r)
	}
	if len(g.ReachableFrom("nosuch")) != 0 {
		t.Error("unknown start not empty")
	}
}
