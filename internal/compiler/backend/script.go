package backend

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ipsa/internal/compiler/layout"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/parser"
	"ipsa/internal/rp4/printer"
	"ipsa/internal/rp4/sem"
	"ipsa/internal/template"
)

// Workspace holds a compiled base design and applies in-situ update
// scripts to it, producing the two outputs the paper describes: the updated
// base design and the new TSP templates plus switch configuration.
type Workspace struct {
	prog *ast.Program
	opts Options
	cur  *Compiled
}

// NewWorkspace compiles the base design and returns a workspace for
// incremental updates.
func NewWorkspace(prog *ast.Program, opts Options) (*Workspace, error) {
	c, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return &Workspace{prog: prog, opts: opts, cur: c}, nil
}

// Current returns the current compiled state.
func (w *Workspace) Current() *Compiled { return w.cur }

// Program returns the current (merged, updated) base design AST.
func (w *Workspace) Program() *ast.Program { return w.prog }

// RenderProgram renders the updated base design back to rP4 source.
func (w *Workspace) RenderProgram() string { return printer.Print(w.prog) }

// UpdateReport is the incremental-compile summary the controller uses to
// patch the device with minimal disturbance.
type UpdateReport struct {
	Config *template.Config

	AddedStages   []string
	RemovedStages []string
	NewTables     []string // only these need population (Table 1 note)
	RemovedTables []string
	// RewrittenTSPs lists physical TSPs whose template content changed and
	// must be re-downloaded.
	RewrittenTSPs []int
	// SelectorChanged reports whether the elastic pipeline's TM boundary
	// moved.
	SelectorChanged bool
	// HeaderLinksChanged reports whether implicit-parser transitions
	// changed (affects every TSP's parser submodule configuration table,
	// but is a small table write).
	HeaderLinksChanged bool
	Stats              Stats
}

// Loader resolves a `load` command's file name to rP4 source text.
type Loader func(name string) (string, error)

// ApplyScript parses and executes an update script (Fig. 5b/5c command
// language), recompiles incrementally, and reports what changed.
func (w *Workspace) ApplyScript(script string, load Loader) (*UpdateReport, error) {
	cmds, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	return w.ApplyCommands(cmds, load)
}

// Command is one parsed script command.
type Command struct {
	Op   string // load | unload | add_link | del_link | link_header | unlink_header | remove_stage
	Args []string
	// Flags holds --key value pairs.
	Flags map[string]string
	Line  int
}

// ParseScript tokenizes an update script: one command per line, `#`
// comments, `--flag value` options.
func ParseScript(script string) ([]Command, error) {
	var cmds []Command
	for i, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd := Command{Op: fields[0], Flags: map[string]string{}, Line: i + 1}
		rest := fields[1:]
		for j := 0; j < len(rest); j++ {
			if strings.HasPrefix(rest[j], "--") {
				if j+1 >= len(rest) {
					return nil, fmt.Errorf("script line %d: flag %s needs a value", i+1, rest[j])
				}
				cmd.Flags[strings.TrimPrefix(rest[j], "--")] = rest[j+1]
				j++
				continue
			}
			cmd.Args = append(cmd.Args, rest[j])
		}
		switch cmd.Op {
		case "load", "unload", "add_link", "del_link", "link_header", "unlink_header", "remove_stage":
		default:
			return nil, fmt.Errorf("script line %d: unknown command %q", i+1, cmd.Op)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// ApplyCommands executes parsed commands and recompiles.
func (w *Workspace) ApplyCommands(cmds []Command, load Loader) (*UpdateReport, error) {
	links := w.cur.Links.Clone()
	headerLinksChanged := false
	for _, c := range cmds {
		switch c.Op {
		case "load":
			if len(c.Args) != 1 {
				return nil, fmt.Errorf("script line %d: load takes one file", c.Line)
			}
			if load == nil {
				return nil, fmt.Errorf("script line %d: no loader provided for %q", c.Line, c.Args[0])
			}
			src, err := load(c.Args[0])
			if err != nil {
				return nil, fmt.Errorf("script line %d: %w", c.Line, err)
			}
			snip, err := parser.ParseSnippet(c.Args[0], src)
			if err != nil {
				return nil, err
			}
			if fn := c.Flags["func_name"]; fn != "" && (snip.Funcs == nil || !hasFunc(snip.Funcs, fn)) {
				return nil, fmt.Errorf("script line %d: %q does not define function %q", c.Line, c.Args[0], fn)
			}
			if err := MergeSnippet(w.prog, snip); err != nil {
				return nil, err
			}
			// New stages join the graph unlinked; add_link places them.
			for _, s := range snip.Floating {
				links.AddNode(s.Name)
			}
		case "unload":
			name := c.Flags["func_name"]
			if name == "" && len(c.Args) == 1 {
				name = c.Args[0]
			}
			if name == "" {
				return nil, fmt.Errorf("script line %d: unload needs a function name", c.Line)
			}
			stages, err := RemoveFunc(w.prog, name)
			if err != nil {
				return nil, err
			}
			for _, s := range stages {
				links.RemoveNode(s)
			}
		case "add_link":
			if len(c.Args) != 2 {
				return nil, fmt.Errorf("script line %d: add_link takes two stages", c.Line)
			}
			if st, _ := w.prog.Stage(c.Args[0]); st == nil {
				return nil, fmt.Errorf("script line %d: unknown stage %q", c.Line, c.Args[0])
			}
			if st, _ := w.prog.Stage(c.Args[1]); st == nil {
				return nil, fmt.Errorf("script line %d: unknown stage %q", c.Line, c.Args[1])
			}
			if err := links.AddEdge(c.Args[0], c.Args[1]); err != nil {
				return nil, fmt.Errorf("script line %d: %w", c.Line, err)
			}
		case "del_link":
			if len(c.Args) != 2 {
				return nil, fmt.Errorf("script line %d: del_link takes two stages", c.Line)
			}
			if err := links.DelEdge(c.Args[0], c.Args[1]); err != nil {
				return nil, fmt.Errorf("script line %d: %w", c.Line, err)
			}
		case "link_header":
			pre, next, tagS := c.Flags["pre"], c.Flags["next"], c.Flags["tag"]
			if pre == "" || next == "" || tagS == "" {
				return nil, fmt.Errorf("script line %d: link_header needs --pre --next --tag", c.Line)
			}
			tag, err := strconv.ParseUint(tagS, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("script line %d: bad tag %q", c.Line, tagS)
			}
			if err := LinkHeader(w.prog, pre, tag, next); err != nil {
				return nil, err
			}
			headerLinksChanged = true
		case "unlink_header":
			pre, tagS := c.Flags["pre"], c.Flags["tag"]
			tag, err := strconv.ParseUint(tagS, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("script line %d: bad tag %q", c.Line, tagS)
			}
			if err := UnlinkHeader(w.prog, pre, tag); err != nil {
				return nil, err
			}
			headerLinksChanged = true
		case "remove_stage":
			if len(c.Args) != 1 {
				return nil, fmt.Errorf("script line %d: remove_stage takes one stage", c.Line)
			}
			links.RemoveNode(c.Args[0])
			removeStage(w.prog, c.Args[0])
		}
	}
	// Orphaned stages (all links removed) are pruned — "the ECMP function
	// also covers and therefore replaces H". Entries stay.
	keep := map[string]bool{}
	if w.prog.Funcs != nil {
		if w.prog.Funcs.IngressEntry != "" {
			keep[w.prog.Funcs.IngressEntry] = true
		}
		if w.prog.Funcs.EgressEntry != "" {
			keep[w.prog.Funcs.EgressEntry] = true
		}
	}
	pruned := links.PruneOrphans(keep)
	for _, s := range pruned {
		removeStage(w.prog, s)
	}
	// Tables no stage applies any more leave the base design too, so a
	// later reload of the same function does not collide (actions,
	// structs and registers stay: identical redefinitions merge cleanly
	// and register contents must survive function cycling).
	sweepDeadTables(w.prog)

	return w.recompile(links, headerLinksChanged)
}

// sweepDeadTables removes table definitions not applied by any stage.
func sweepDeadTables(p *ast.Program) {
	live := map[string]bool{}
	var scan func(body []ast.Stmt)
	scan = func(body []ast.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *ast.CallStmt:
				if st.Method == "apply" && st.Recv != "" {
					live[st.Recv] = true
				}
			case *ast.IfStmt:
				scan(st.Then)
				scan(st.Else)
			}
		}
	}
	each := func(stages []*ast.StageDef) {
		for _, s := range stages {
			scan(s.Matcher)
		}
	}
	if p.Ingress != nil {
		each(p.Ingress.Stages)
	}
	if p.Egress != nil {
		each(p.Egress.Stages)
	}
	each(p.Floating)
	tables := p.Tables[:0]
	for _, t := range p.Tables {
		if live[t.Name] {
			tables = append(tables, t)
		}
	}
	p.Tables = tables
}

func hasFunc(uf *ast.UserFuncs, name string) bool {
	for _, f := range uf.Funcs {
		if f.Name == name {
			return true
		}
	}
	return false
}

func (w *Workspace) recompile(links *Graph, headerLinksChanged bool) (*UpdateReport, error) {
	d, err := sem.Analyze(w.prog)
	if err != nil {
		return nil, err
	}
	nc, err := compileWithLinks(d, links, w.opts, w.cur.Assignment)
	if err != nil {
		return nil, err
	}
	rep := &UpdateReport{Config: nc.Config, Stats: nc.Stats, HeaderLinksChanged: headerLinksChanged}
	old := w.cur
	rep.AddedStages = diffKeys(stageSet(nc.Config), stageSet(old.Config))
	rep.RemovedStages = diffKeys(stageSet(old.Config), stageSet(nc.Config))
	rep.NewTables = diffKeys(tableSet(nc.Config), tableSet(old.Config))
	rep.RemovedTables = diffKeys(tableSet(old.Config), tableSet(nc.Config))
	rep.RewrittenTSPs = rewrittenTSPs(old.Config, nc.Config)
	rep.SelectorChanged = selectorChanged(old, nc)
	// Attach the patch manifest so the device writes only what changed
	// instead of re-deriving the diff.
	nc.Config.Patch = &template.PatchSpec{
		RewrittenTSPs: rep.RewrittenTSPs,
		NewTables:     rep.NewTables,
		RemovedTables: rep.RemovedTables,
	}
	w.cur = nc
	return rep, nil
}

func stageSet(c *template.Config) map[string]bool {
	s := make(map[string]bool, len(c.Stages))
	for n := range c.Stages {
		s[n] = true
	}
	return s
}

func tableSet(c *template.Config) map[string]bool {
	s := make(map[string]bool, len(c.Tables))
	for n := range c.Tables {
		s[n] = true
	}
	return s
}

func diffKeys(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// rewrittenTSPs compares the per-TSP template content of two configs.
func rewrittenTSPs(old, nw *template.Config) []int {
	content := func(c *template.Config) map[int]string {
		m := make(map[int][]string)
		for s, t := range c.TSPAssignment {
			m[t] = append(m[t], s)
		}
		out := make(map[int]string)
		for t, stages := range m {
			sort.Strings(stages)
			var parts []string
			for _, s := range stages {
				if st, ok := c.Stages[s]; ok {
					b, _ := stageJSON(st)
					parts = append(parts, s+"="+b)
				}
			}
			out[t] = strings.Join(parts, ";")
		}
		return out
	}
	oc, nc := content(old), content(nw)
	seen := map[int]bool{}
	var rewritten []int
	for t, body := range nc {
		seen[t] = true
		if oc[t] != body {
			rewritten = append(rewritten, t)
		}
	}
	// TSPs that lost all their stages must be unloaded: also a write.
	for t, body := range oc {
		if !seen[t] && body != "" {
			rewritten = append(rewritten, t)
		}
	}
	sort.Ints(rewritten)
	return rewritten
}

func stageJSON(s *template.Stage) (string, error) {
	cfg := template.Config{Stages: map[string]*template.Stage{s.Name: s}}
	b, err := cfg.Marshal()
	return string(b), err
}

func selectorChanged(old, nw *Compiled) bool {
	boundary := func(c *Compiled) [2]int {
		lastIng, firstEg := -1, c.Assignment.NumTSP
		for i, m := range c.Assignment.Modes {
			switch m {
			case layout.IngressActive:
				if i > lastIng {
					lastIng = i
				}
			case layout.EgressActive:
				if i < firstEg {
					firstEg = i
				}
			}
		}
		return [2]int{lastIng, firstEg}
	}
	return boundary(old) != boundary(nw)
}
