package backend

import (
	"sort"

	"ipsa/internal/rp4/sem"
)

// MaxTablesPerTSP bounds how many tables one TSP can drive per packet; a
// merged group must stay within it.
const MaxTablesPerTSP = 2

// dataConflict reports whether two stages touch overlapping state in a way
// that forces an order (RAW, WAR, WAW on fields, any shared register, or a
// shared table).
func dataConflict(a, b *sem.StageInfo, d *sem.Design) bool {
	if intersects(a.Writes, b.Reads) || intersects(a.Reads, b.Writes) || intersects(a.Writes, b.Writes) {
		return true
	}
	// Register conflicts via executor actions.
	ra, wa := stageRegisters(a, d)
	rb, wb := stageRegisters(b, d)
	if intersects(wa, rb) || intersects(ra, wb) || intersects(wa, wb) {
		return true
	}
	for _, ta := range a.Tables {
		for _, tb := range b.Tables {
			if ta == tb {
				return true
			}
		}
	}
	return false
}

func stageRegisters(s *sem.StageInfo, d *sem.Design) (reads, writes map[string]bool) {
	reads, writes = map[string]bool{}, map[string]bool{}
	for _, arm := range s.Def.Exec {
		if ai, ok := d.Actions[arm.Action]; ok {
			for r := range ai.RegistersRead {
				reads[r] = true
			}
			for r := range ai.RegistersWritten {
				writes[r] = true
			}
		}
	}
	return reads, writes
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// writesDrop reports whether the stage's executor can drop packets.
func writesDrop(s *sem.StageInfo) bool { return s.Writes["istd.drop"] }

// hasSideEffects reports whether the stage mutates any observable state.
func hasSideEffects(s *sem.StageInfo, d *sem.Design) bool {
	if len(s.Writes) > 0 {
		return true
	}
	_, w := stageRegisters(s, d)
	return len(w) > 0
}

// dropInterference is the control dependence dropping creates: a stage
// that may drop must keep its order relative to any side-effecting stage,
// or packets would gain/lose effects (counters, punts, rewrites) they
// would not have had in the declared order.
func dropInterference(a, b *sem.StageInfo, d *sem.Design) bool {
	return (writesDrop(a) && hasSideEffects(b, d)) ||
		(writesDrop(b) && hasSideEffects(a, d))
}

// DepGraph computes the true dependency order: A must precede B iff A
// precedes B in the link graph and they have a data conflict that predicate
// exclusivity cannot discharge. This is rp4bc's "analyzes the dependency of
// different logical stages".
func DepGraph(d *sem.Design, links *Graph, pipe string, stages []string) *Graph {
	cv := computeCoValidity(d)
	dep := NewGraph()
	for _, s := range stages {
		dep.AddNode(s)
	}
	// Reachability in the link graph.
	reach := make(map[string]map[string]bool, len(stages))
	for _, s := range stages {
		reach[s] = links.ReachableFrom(s)
	}
	for _, a := range stages {
		for _, b := range stages {
			if a == b || !reach[a][b] {
				continue
			}
			sa, sb := d.Stages[a], d.Stages[b]
			if sa == nil || sb == nil {
				continue
			}
			if (dataConflict(sa, sb, d) || dropInterference(sa, sb, d)) && !Exclusive(sa, sb, cv) {
				// Link order a→b with a real data or control (drop)
				// conflict: keep the order.
				_ = dep.AddEdge(a, b)
			}
		}
	}
	return dep
}

// Group is one TSP's worth of merged stages.
type Group struct {
	Stages []string
	Tables int
}

// MergeStages list-schedules the pipe's stages over the dependency graph,
// packing mergeable stages into shared TSP groups (paper: "optimizes the
// predicates to merge some independent stages into a single TSP").
//
// A candidate may join the open group even when some of its dependency
// predecessors are unscheduled, provided those predecessors are group
// members with lower chain rank: stages inside one TSP execute
// sequentially in chain order, so in-group ordering satisfies the
// dependence (this is what lets the egress rewrite+dmac pair share a TSP
// although dmac can drop). chainRank orders ties so results are
// deterministic and stable.
func MergeStages(d *sem.Design, dep *Graph, chainRank map[string]int, enableMerge bool) []Group {
	cv := computeCoValidity(d)
	remaining := make(map[string]bool)
	for _, n := range dep.Nodes() {
		remaining[n] = true
	}
	scheduled := make(map[string]bool)
	predsIn := func(n string, extra map[string]bool) bool {
		for _, p := range dep.Pred(n) {
			if !scheduled[p] && !extra[p] {
				return false
			}
		}
		return true
	}
	byRank := func(set map[string]bool) []string {
		var r []string
		for n := range set {
			r = append(r, n)
		}
		sort.Slice(r, func(i, j int) bool { return chainRank[r[i]] < chainRank[r[j]] })
		return r
	}
	var groups []Group
	none := map[string]bool{}
	for len(remaining) > 0 {
		// Seed: the lowest-rank fully ready stage.
		var seed string
		for _, n := range byRank(remaining) {
			if predsIn(n, none) {
				seed = n
				break
			}
		}
		if seed == "" {
			// Cycle: fall back to one stage per group in rank order.
			for _, n := range byRank(remaining) {
				groups = append(groups, Group{Stages: []string{n}, Tables: len(d.Stages[n].Tables)})
			}
			break
		}
		g := Group{Stages: []string{seed}, Tables: len(d.Stages[seed].Tables)}
		inGroup := map[string]bool{seed: true}
		if enableMerge {
			for progress := true; progress; {
				progress = false
				for _, cand := range byRank(remaining) {
					if inGroup[cand] {
						continue
					}
					ci := d.Stages[cand]
					if g.Tables+len(ci.Tables) > MaxTablesPerTSP {
						continue
					}
					if !predsIn(cand, inGroup) {
						continue
					}
					ok := true
					for member := range inGroup {
						mi := d.Stages[member]
						if dataConflict(mi, ci, d) && !Exclusive(mi, ci, cv) {
							ok = false
							break
						}
					}
					if ok {
						g.Stages = append(g.Stages, cand)
						g.Tables += len(ci.Tables)
						inGroup[cand] = true
						progress = true
					}
				}
			}
		}
		sort.Slice(g.Stages, func(i, j int) bool { return chainRank[g.Stages[i]] < chainRank[g.Stages[j]] })
		for n := range inGroup {
			scheduled[n] = true
			delete(remaining, n)
		}
		groups = append(groups, g)
	}
	return groups
}
