package backend

import (
	"fmt"

	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/printer"
)

// MergeSnippet merges an incremental-update snippet into the base program
// in place. Merging is append-only so that header IDs and metadata offsets
// of the existing design stay stable — unchanged TSP templates must remain
// valid after an update. Identical redefinitions (the ECMP snippet restates
// set_bd_dmac, Fig. 5a) are accepted; conflicting ones are errors.
func MergeSnippet(base, snip *ast.Program) error {
	for _, cd := range snip.Consts {
		dup := false
		for _, old := range base.Consts {
			if old.Name == cd.Name {
				if old.Width != cd.Width || old.Value != cd.Value {
					return fmt.Errorf("rp4bc: const %q redefined differently", cd.Name)
				}
				dup = true
			}
		}
		if !dup {
			base.Consts = append(base.Consts, cd)
		}
	}
	for _, h := range snip.Headers {
		if old := base.Header(h.Name); old != nil {
			if !sameFields(old.Fields, h.Fields) {
				return fmt.Errorf("rp4bc: header %q redefined with different fields", h.Name)
			}
			continue
		}
		base.Headers = append(base.Headers, h)
		// Auto-instantiated designs stay auto-instantiated: sem appends an
		// instance for the new type, preserving existing IDs.
		if len(base.Instances) > 0 {
			base.Instances = append(base.Instances, &ast.HeaderInstance{Type: h.Name, Name: h.Name, Pos: h.Pos})
		}
	}
	for _, s := range snip.Structs {
		dup := false
		for _, old := range s2structs(base) {
			if old.Name == s.Name {
				if !sameFields(old.Fields, s.Fields) || old.Alias != s.Alias {
					return fmt.Errorf("rp4bc: struct %q redefined differently", s.Name)
				}
				dup = true
			}
		}
		if !dup {
			base.Structs = append(base.Structs, s)
		}
	}
	for _, r := range snip.Registers {
		dup := false
		for _, old := range base.Registers {
			if old.Name == r.Name {
				if old.Width != r.Width || old.Size != r.Size {
					return fmt.Errorf("rp4bc: register %q redefined differently", r.Name)
				}
				dup = true
			}
		}
		if !dup {
			base.Registers = append(base.Registers, r)
		}
	}
	for _, a := range snip.Actions {
		if old := base.Action(a.Name); old != nil {
			if !sameAction(old, a) {
				return fmt.Errorf("rp4bc: action %q redefined differently", a.Name)
			}
			continue
		}
		base.Actions = append(base.Actions, a)
	}
	for _, t := range snip.Tables {
		if base.Table(t.Name) != nil {
			return fmt.Errorf("rp4bc: table %q already exists in the base design", t.Name)
		}
		base.Tables = append(base.Tables, t)
	}
	for _, s := range snip.Floating {
		if st, _ := base.Stage(s.Name); st != nil {
			return fmt.Errorf("rp4bc: stage %q already exists in the base design", s.Name)
		}
		base.Floating = append(base.Floating, s)
	}
	// Snippet pipes are unusual but allowed: their stages float too.
	for _, pipe := range []*ast.Pipe{snip.Ingress, snip.Egress} {
		if pipe == nil {
			continue
		}
		for _, s := range pipe.Stages {
			if st, _ := base.Stage(s.Name); st != nil {
				return fmt.Errorf("rp4bc: stage %q already exists in the base design", s.Name)
			}
			base.Floating = append(base.Floating, s)
		}
	}
	if snip.Funcs != nil {
		if base.Funcs == nil {
			base.Funcs = &ast.UserFuncs{}
		}
		for _, f := range snip.Funcs.Funcs {
			for _, old := range base.Funcs.Funcs {
				if old.Name == f.Name {
					return fmt.Errorf("rp4bc: function %q already exists", f.Name)
				}
			}
			base.Funcs.Funcs = append(base.Funcs.Funcs, f)
		}
	}
	return nil
}

func s2structs(p *ast.Program) []*ast.StructDef { return p.Structs }

func sameFields(a, b []*ast.FieldDef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Width != b[i].Width {
			return false
		}
	}
	return true
}

// sameAction compares two actions structurally by rendering them; position
// information does not participate.
func sameAction(a, b *ast.ActionDef) bool {
	pa := &ast.Program{Actions: []*ast.ActionDef{a}}
	pb := &ast.Program{Actions: []*ast.ActionDef{b}}
	return printer.Print(pa) == printer.Print(pb)
}

// RemoveFunc deletes a user function and its stages from the program
// (tables and actions used only by those stages are swept by compile's
// liveness pass; headers and metadata stay for template stability).
func RemoveFunc(p *ast.Program, name string) ([]string, error) {
	if p.Funcs == nil {
		return nil, fmt.Errorf("rp4bc: no functions defined")
	}
	var stages []string
	idx := -1
	for i, f := range p.Funcs.Funcs {
		if f.Name == name {
			stages = f.Stages
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("rp4bc: function %q does not exist", name)
	}
	p.Funcs.Funcs = append(p.Funcs.Funcs[:idx], p.Funcs.Funcs[idx+1:]...)
	for _, sn := range stages {
		removeStage(p, sn)
	}
	return stages, nil
}

func removeStage(p *ast.Program, name string) {
	filter := func(ss []*ast.StageDef) []*ast.StageDef {
		out := ss[:0]
		for _, s := range ss {
			if s.Name != name {
				out = append(out, s)
			}
		}
		return out
	}
	if p.Ingress != nil {
		p.Ingress.Stages = filter(p.Ingress.Stages)
	}
	if p.Egress != nil {
		p.Egress.Stages = filter(p.Egress.Stages)
	}
	p.Floating = filter(p.Floating)
	// Drop the stage from any user function; empty functions disappear.
	if p.Funcs != nil {
		funcs := p.Funcs.Funcs[:0]
		for _, f := range p.Funcs.Funcs {
			stages := f.Stages[:0]
			for _, s := range f.Stages {
				if s != name {
					stages = append(stages, s)
				}
			}
			f.Stages = stages
			if len(f.Stages) > 0 {
				funcs = append(funcs, f)
			}
		}
		p.Funcs.Funcs = funcs
	}
}

// LinkHeader adds an implicit-parser transition to header pre: on tag, the
// next header is instance next (the `link_header` script command,
// Fig. 5c). It fails if pre has no implicit parser or the tag is taken with
// a different target.
func LinkHeader(p *ast.Program, pre string, tag uint64, next string) error {
	h := p.Header(pre)
	if h == nil {
		return fmt.Errorf("rp4bc: link_header: unknown header %q", pre)
	}
	if h.Parser == nil {
		return fmt.Errorf("rp4bc: link_header: header %q has no implicit parser to extend", pre)
	}
	for _, tr := range h.Parser.Transitions {
		if tr.Tag == tag {
			if tr.Next == next {
				return nil // idempotent
			}
			return fmt.Errorf("rp4bc: link_header: header %q tag %d already maps to %q", pre, tag, tr.Next)
		}
	}
	h.Parser.Transitions = append(h.Parser.Transitions, &ast.Transition{Tag: tag, Next: next})
	return nil
}

// UnlinkHeader removes an implicit-parser transition.
func UnlinkHeader(p *ast.Program, pre string, tag uint64) error {
	h := p.Header(pre)
	if h == nil || h.Parser == nil {
		return fmt.Errorf("rp4bc: unlink_header: header %q has no implicit parser", pre)
	}
	for i, tr := range h.Parser.Transitions {
		if tr.Tag == tag {
			h.Parser.Transitions = append(h.Parser.Transitions[:i], h.Parser.Transitions[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("rp4bc: unlink_header: header %q has no tag %d", pre, tag)
}
