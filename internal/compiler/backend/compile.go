package backend

import (
	"fmt"
	"sort"

	"ipsa/internal/compiler/layout"
	"ipsa/internal/compiler/packing"
	"ipsa/internal/mem"
	"ipsa/internal/rp4/ast"
	"ipsa/internal/rp4/sem"
	"ipsa/internal/template"
)

// Options tunes rp4bc.
type Options struct {
	// NumTSPs is the physical TSP count of the target (8 on the paper's
	// FPGA prototypes).
	NumTSPs int
	// EnableMerge turns predicate-based stage merging on (the default).
	EnableMerge bool
	// IncrementalDP selects the DP layout optimizer for updates; false
	// selects the greedy variant.
	IncrementalDP bool
	// Mem describes the memory pool for table packing.
	Mem mem.Config
	// Clustered constrains tables to their TSP's cluster.
	Clustered bool
	// ExactPacking enables branch-and-bound table packing.
	ExactPacking bool
}

// DefaultOptions mirror the paper's FPGA prototype scale.
func DefaultOptions() Options {
	return Options{
		NumTSPs:       8,
		EnableMerge:   true,
		IncrementalDP: true,
		Mem:           mem.DefaultConfig(),
		Clustered:     false,
		ExactPacking:  true,
	}
}

// Compiled is a full rp4bc output.
type Compiled struct {
	Design *sem.Design
	Config *template.Config
	Links  *Graph

	IngressGroups []Group
	EgressGroups  []Group
	Assignment    *layout.Assignment
	Packing       *packing.Solution

	Stats Stats
}

// Stats summarizes a compile for the evaluation harness.
type Stats struct {
	Stages         int
	TSPsUsed       int
	MergedStages   int // stages sharing a TSP with another stage
	LayoutRewrites int // TSP templates (re)written by this compile
	LayoutKept     int
	PackingNodes   int
}

// Compile runs the full back-end flow on a complete rP4 program: analyze,
// lower, build the initial link chain, merge, place, pack.
func Compile(prog *ast.Program, opts Options) (*Compiled, error) {
	d, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	links, err := InitialLinks(d)
	if err != nil {
		return nil, err
	}
	return compileWithLinks(d, links, opts, nil)
}

// InitialLinks derives the link graph from stage declaration order: a chain
// through the ingress stages, a chain through the egress stages, and the
// cross edge from the last ingress stage to the egress entry (the TM
// boundary).
func InitialLinks(d *sem.Design) (*Graph, error) {
	g := NewGraph()
	ing := d.IngressStages()
	eg := d.EgressStages()
	for _, s := range ing {
		g.AddNode(s)
	}
	for _, s := range eg {
		g.AddNode(s)
	}
	for i := 1; i < len(ing); i++ {
		if err := g.AddEdge(ing[i-1], ing[i]); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(eg); i++ {
		if err := g.AddEdge(eg[i-1], eg[i]); err != nil {
			return nil, err
		}
	}
	if len(ing) > 0 && len(eg) > 0 {
		first := eg[0]
		if d.Prog.Funcs != nil && d.Prog.Funcs.EgressEntry != "" {
			first = d.Prog.Funcs.EgressEntry
		}
		if err := g.AddEdge(ing[len(ing)-1], first); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// splitPipes classifies graph nodes: every node reachable from the egress
// entry is egress; the rest are ingress. Floating stages inherit a pipe
// this way once linked.
func splitPipes(d *sem.Design, links *Graph) (ingress, egress []string, err error) {
	egressSet := make(map[string]bool)
	if d.Prog.Funcs != nil && d.Prog.Funcs.EgressEntry != "" {
		entry := d.Prog.Funcs.EgressEntry
		if links.HasNode(entry) {
			egressSet = links.ReachableFrom(entry)
		}
	} else {
		// No declared entry: trust the declared pipes.
		for _, n := range links.Nodes() {
			if si, ok := d.Stages[n]; ok && si.Pipe == "egress" {
				egressSet[n] = true
			}
		}
	}
	order, err := links.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	for _, n := range order {
		if egressSet[n] {
			egress = append(egress, n)
		} else {
			ingress = append(ingress, n)
		}
	}
	return ingress, egress, nil
}

func compileWithLinks(d *sem.Design, links *Graph, opts Options, old *layout.Assignment) (*Compiled, error) {
	cfg, err := Lower(d)
	if err != nil {
		return nil, err
	}
	ingress, egress, err := splitPipes(d, links)
	if err != nil {
		return nil, err
	}
	// Stage templates learn their (possibly inferred) pipe.
	for _, n := range ingress {
		if s, ok := cfg.Stages[n]; ok {
			s.Pipe = "ingress"
		}
	}
	for _, n := range egress {
		if s, ok := cfg.Stages[n]; ok {
			s.Pipe = "egress"
		}
	}
	// Drop templates for stages not in the graph (unloaded or floating
	// and never linked).
	live := make(map[string]bool, len(ingress)+len(egress))
	for _, n := range append(append([]string(nil), ingress...), egress...) {
		live[n] = true
	}
	liveTables := make(map[string]bool)
	for name, s := range cfg.Stages {
		if !live[name] {
			delete(cfg.Stages, name)
			continue
		}
		for _, t := range s.Tables {
			liveTables[t] = true
		}
	}
	for name := range cfg.Tables {
		if !liveTables[name] {
			delete(cfg.Tables, name)
		}
	}
	cfg.IngressChain = ingress
	cfg.EgressChain = egress

	chainRank := make(map[string]int)
	for i, n := range ingress {
		chainRank[n] = i
	}
	for i, n := range egress {
		chainRank[n] = len(ingress) + i
	}
	ingDep := DepGraph(d, links, "ingress", ingress)
	egDep := DepGraph(d, links, "egress", egress)
	ingGroups := MergeStages(d, ingDep, chainRank, opts.EnableMerge)
	egGroups := MergeStages(d, egDep, chainRank, opts.EnableMerge)

	ingKeys := make([]string, len(ingGroups))
	for i, g := range ingGroups {
		ingKeys[i] = layout.GroupKey(g.Stages)
	}
	egKeys := make([]string, len(egGroups))
	for i, g := range egGroups {
		egKeys[i] = layout.GroupKey(g.Stages)
	}
	var assign *layout.Assignment
	stats := Stats{Stages: len(ingress) + len(egress)}
	if old == nil {
		assign, err = layout.PlaceFull(ingKeys, egKeys, opts.NumTSPs)
		if err != nil {
			return nil, err
		}
		stats.LayoutRewrites = len(ingKeys) + len(egKeys)
	} else {
		var res *layout.Result
		if opts.IncrementalDP {
			res, err = layout.PlaceIncrementalDP(old, ingKeys, egKeys, opts.NumTSPs)
		} else {
			res, err = layout.PlaceIncrementalGreedy(old, ingKeys, egKeys, opts.NumTSPs)
		}
		if err != nil {
			return nil, err
		}
		assign = res.Assignment
		stats.LayoutRewrites = res.Rewrites
		stats.LayoutKept = res.Kept
	}
	// Stage -> physical TSP.
	cfg.TSPAssignment = make(map[string]int)
	for i, g := range ingGroups {
		for _, s := range g.Stages {
			cfg.TSPAssignment[s] = assign.Position[ingKeys[i]]
			if len(g.Stages) > 1 {
				stats.MergedStages++
			}
		}
	}
	for i, g := range egGroups {
		for _, s := range g.Stages {
			cfg.TSPAssignment[s] = assign.Position[egKeys[i]]
			if len(g.Stages) > 1 {
				stats.MergedStages++
			}
		}
	}
	stats.TSPsUsed = assign.ActiveTSPs()

	pack, err := packTables(d, cfg, assign, opts)
	if err != nil {
		return nil, err
	}
	stats.PackingNodes = pack.Nodes

	return &Compiled{
		Design: d, Config: cfg, Links: links,
		IngressGroups: ingGroups, EgressGroups: egGroups,
		Assignment: assign, Packing: pack, Stats: stats,
	}, nil
}

// packTables maps every live table into the memory pool, constrained to
// its TSP's cluster when the crossbar is clustered.
func packTables(d *sem.Design, cfg *template.Config, assign *layout.Assignment, opts Options) (*packing.Solution, error) {
	mc := opts.Mem
	perCluster := mc.Blocks / mc.Clusters
	caps := make([]int, mc.Clusters)
	for i := range caps {
		caps[i] = perCluster
	}
	tspsPerCluster := (opts.NumTSPs + mc.Clusters - 1) / mc.Clusters

	var items []packing.Item
	names := make([]string, 0, len(cfg.Tables))
	for n := range cfg.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := cfg.Tables[name]
		blocks := mem.BlocksForTable(t.KeyWidth, t.Size, mc.BlockWidth, mc.BlockDepth)
		it := packing.Item{Name: name, Blocks: blocks}
		if opts.Clustered {
			// Find the TSP driving this table.
			for sn, s := range cfg.Stages {
				for _, tn := range s.Tables {
					if tn == name {
						tsp := cfg.TSPAssignment[sn]
						it.Allowed = []int{tsp / tspsPerCluster}
					}
				}
			}
		}
		items = append(items, it)
	}
	sol, err := packing.Solve(items, caps, packing.Options{Exact: opts.ExactPacking})
	if err != nil {
		return nil, fmt.Errorf("rp4bc: memory pool packing: %w", err)
	}
	return sol, nil
}
