package backend

import (
	"fmt"
	"sort"
)

// Graph is the logical stage link graph the update scripts edit. Nodes are
// stage names; an edge A→B means A must precede B in the pipeline.
type Graph struct {
	nodes map[string]bool
	succ  map[string]map[string]bool
	pred  map[string]map[string]bool
	// order remembers each node's insertion rank, the tie-break that keeps
	// topological sorts stable across recompiles.
	order map[string]int
	next  int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		succ:  make(map[string]map[string]bool),
		pred:  make(map[string]map[string]bool),
		order: make(map[string]int),
	}
}

// AddNode inserts a stage node.
func (g *Graph) AddNode(name string) {
	if g.nodes[name] {
		return
	}
	g.nodes[name] = true
	g.succ[name] = make(map[string]bool)
	g.pred[name] = make(map[string]bool)
	g.order[name] = g.next
	g.next++
}

// HasNode reports membership.
func (g *Graph) HasNode(name string) bool { return g.nodes[name] }

// AddEdge links from→to, creating nodes as needed.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("rp4bc: self link %s", from)
	}
	g.AddNode(from)
	g.AddNode(to)
	g.succ[from][to] = true
	g.pred[to][from] = true
	if g.hasCycle() {
		delete(g.succ[from], to)
		delete(g.pred[to], from)
		return fmt.Errorf("rp4bc: link %s -> %s creates a cycle", from, to)
	}
	return nil
}

// DelEdge removes a link; it is an error if the link does not exist.
func (g *Graph) DelEdge(from, to string) error {
	if !g.succ[from][to] {
		return fmt.Errorf("rp4bc: link %s -> %s does not exist", from, to)
	}
	delete(g.succ[from], to)
	delete(g.pred[to], from)
	return nil
}

// RemoveNode deletes a stage and all its links.
func (g *Graph) RemoveNode(name string) {
	if !g.nodes[name] {
		return
	}
	for s := range g.succ[name] {
		delete(g.pred[s], name)
	}
	for p := range g.pred[name] {
		delete(g.succ[p], name)
	}
	delete(g.nodes, name)
	delete(g.succ, name)
	delete(g.pred, name)
	delete(g.order, name)
}

// Nodes returns all stage names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Succ returns a node's successors, sorted.
func (g *Graph) Succ(name string) []string {
	out := make([]string, 0, len(g.succ[name]))
	for n := range g.succ[name] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pred returns a node's predecessors, sorted.
func (g *Graph) Pred(name string) []string {
	out := make([]string, 0, len(g.pred[name]))
	for n := range g.pred[name] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	// Preserve insertion ranks.
	type rankName struct {
		rank int
		name string
	}
	var rns []rankName
	for n := range g.nodes {
		rns = append(rns, rankName{g.order[n], n})
	}
	sort.Slice(rns, func(i, j int) bool { return rns[i].rank < rns[j].rank })
	for _, rn := range rns {
		ng.AddNode(rn.name)
	}
	for from, tos := range g.succ {
		for to := range tos {
			ng.succ[from][to] = true
			ng.pred[to][from] = true
		}
	}
	return ng
}

func (g *Graph) hasCycle() bool {
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(n string) bool
	visit = func(n string) bool {
		switch state[n] {
		case 1:
			return true
		case 2:
			return false
		}
		state[n] = 1
		for s := range g.succ[n] {
			if visit(s) {
				return true
			}
		}
		state[n] = 2
		return false
	}
	for n := range g.nodes {
		if visit(n) {
			return true
		}
	}
	return false
}

// PruneOrphans removes stages that have lost every link (the paper's
// "replaced" stages, e.g. nexthop after ECMP insertion). Entries are kept
// even when isolated.
func (g *Graph) PruneOrphans(keep map[string]bool) []string {
	var removed []string
	for {
		progress := false
		for n := range g.nodes {
			if keep[n] {
				continue
			}
			if len(g.succ[n]) == 0 && len(g.pred[n]) == 0 {
				g.RemoveNode(n)
				removed = append(removed, n)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	sort.Strings(removed)
	return removed
}

// TopoSort returns the nodes in a topological order, breaking ties by
// insertion rank so existing stages keep their relative positions across
// incremental updates.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	var ready []string
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	var out []string
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return g.order[ready[i]] < g.order[ready[j]] })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("rp4bc: stage graph has a cycle")
	}
	return out, nil
}

// ReachableFrom returns the set of nodes reachable from start (inclusive).
func (g *Graph) ReachableFrom(start string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(n string)
	walk = func(n string) {
		if seen[n] || !g.nodes[n] {
			return
		}
		seen[n] = true
		for s := range g.succ[n] {
			walk(s)
		}
	}
	walk(start)
	return seen
}
