package backend

import (
	"strings"
	"testing"
)

func TestParseScript(t *testing.T) {
	cmds, err := ParseScript(`
# comment
load ecmp.rp4 --func_name ecmp
add_link a b
link_header --pre ipv6 --next srh --tag 43
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("cmds = %+v", cmds)
	}
	if cmds[0].Op != "load" || cmds[0].Args[0] != "ecmp.rp4" || cmds[0].Flags["func_name"] != "ecmp" {
		t.Errorf("load: %+v", cmds[0])
	}
	if cmds[2].Flags["tag"] != "43" {
		t.Errorf("link_header: %+v", cmds[2])
	}
	if _, err := ParseScript("frobnicate x"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := ParseScript("load x --func_name"); err == nil {
		t.Error("flag without value accepted")
	}
}

func TestApplyECMPScript(t *testing.T) {
	w, err := NewWorkspace(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.ApplyScript(readScript(t, "ecmp.script"), testdataLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	// The nexthop stage (H) is replaced by the ECMP stage (paper Sec. 4.2).
	if len(rep.RemovedStages) != 1 || rep.RemovedStages[0] != "nexthop" {
		t.Errorf("removed = %v, want [nexthop]", rep.RemovedStages)
	}
	if len(rep.AddedStages) != 1 || rep.AddedStages[0] != "ecmp_stage" {
		t.Errorf("added = %v", rep.AddedStages)
	}
	// Only the two new ECMP tables need population (Table 1 note).
	if len(rep.NewTables) != 2 || rep.NewTables[0] != "ecmp_ipv4" || rep.NewTables[1] != "ecmp_ipv6" {
		t.Errorf("new tables = %v", rep.NewTables)
	}
	if len(rep.RemovedTables) != 1 || rep.RemovedTables[0] != "nexthop_tbl" {
		t.Errorf("removed tables = %v", rep.RemovedTables)
	}
	// Incremental layout: ECMP slots into the TSP freed by nexthop — a
	// single template rewrite, the in-situ promise.
	if len(rep.RewrittenTSPs) != 1 {
		t.Errorf("rewritten TSPs = %v, want exactly 1", rep.RewrittenTSPs)
	}
	if rep.Stats.LayoutRewrites != 1 {
		t.Errorf("layout rewrites = %d, want 1", rep.Stats.LayoutRewrites)
	}
	if rep.HeaderLinksChanged {
		t.Error("ECMP adds no header links")
	}
	// The updated base design round-trips through the printer/parser.
	rendered := w.RenderProgram()
	if !strings.Contains(rendered, "stage ecmp_stage") || strings.Contains(rendered, "stage nexthop ") {
		t.Errorf("rendered design wrong:\n%s", rendered)
	}
	if err := rep.Config.Validate(); err != nil {
		t.Errorf("updated config invalid: %v", err)
	}
	// ecmp_stage inherited the ingress pipe.
	if rep.Config.Stages["ecmp_stage"].Pipe != "ingress" {
		t.Errorf("ecmp_stage pipe = %q", rep.Config.Stages["ecmp_stage"].Pipe)
	}
}

func TestApplySRv6Script(t *testing.T) {
	opts := DefaultOptions()
	// SRv6's inner-IP linkage defeats the v4/v6 exclusivity merges, so the
	// updated design needs more physical TSPs than the paper's 8-stage
	// FPGA baseline; see EXPERIMENTS.md.
	opts.NumTSPs = 12
	w, err := NewWorkspace(loadBase(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.ApplyScript(readScript(t, "srv6.script"), testdataLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AddedStages) != 2 {
		t.Errorf("added = %v", rep.AddedStages)
	}
	if !rep.HeaderLinksChanged {
		t.Error("link_header not reported")
	}
	// SRH is now a parseable header.
	srh := rep.Config.HeaderByName("srh")
	if srh == nil {
		t.Fatal("srh header missing from config")
	}
	if srh.VarLen == nil || srh.VarLen.BaseBytes != 8 || srh.VarLen.UnitBytes != 8 {
		t.Errorf("srh varlen: %+v", srh.VarLen)
	}
	// ipv6's implicit parser gained the tag-43 transition to srh.
	v6 := rep.Config.HeaderByName("ipv6")
	found := false
	for _, tr := range v6.Transitions {
		if tr.Tag == 43 && tr.Next == srh.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("ipv6 transitions: %+v", v6.Transitions)
	}
	if len(rep.NewTables) != 2 {
		t.Errorf("new tables = %v", rep.NewTables)
	}
	if err := rep.Config.Validate(); err != nil {
		t.Errorf("config invalid: %v", err)
	}
}

func TestApplyFlowProbeScript(t *testing.T) {
	w, err := NewWorkspace(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.ApplyScript(readScript(t, "flowprobe.script"), testdataLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AddedStages) != 1 || rep.AddedStages[0] != "probe_stage" {
		t.Errorf("added = %v", rep.AddedStages)
	}
	if len(rep.RemovedStages) != 0 {
		t.Errorf("removed = %v", rep.RemovedStages)
	}
	if len(rep.NewTables) != 1 || rep.NewTables[0] != "flow_probe" {
		t.Errorf("new tables = %v", rep.NewTables)
	}
	// The probe register arrives with the update.
	foundReg := false
	for _, r := range rep.Config.Registers {
		if r.Name == "flow_cnt" && r.Size == 1024 {
			foundReg = true
		}
	}
	if !foundReg {
		t.Errorf("registers: %+v", rep.Config.Registers)
	}
}

func TestUnloadFunction(t *testing.T) {
	w, err := NewWorkspace(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ApplyScript(readScript(t, "flowprobe.script"), testdataLoader(t)); err != nil {
		t.Fatal(err)
	}
	// Function removal: offload the probe again. The chain edge it sat on
	// must be restored explicitly, as a real operator script would.
	rep, err := w.ApplyScript(`
unload probe
add_link ipv4_lpm_fib ipv6_host_fib
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedStages) != 1 || rep.RemovedStages[0] != "probe_stage" {
		t.Errorf("removed = %v", rep.RemovedStages)
	}
	if len(rep.RemovedTables) != 1 || rep.RemovedTables[0] != "flow_probe" {
		t.Errorf("removed tables = %v", rep.RemovedTables)
	}
	if _, ok := rep.Config.Stages["probe_stage"]; ok {
		t.Error("probe stage still present")
	}
}

func TestScriptErrors(t *testing.T) {
	w, err := NewWorkspace(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"add_link nosuch port_map",
		"add_link port_map nosuch",
		"del_link port_map dmac",         // edge does not exist
		"add_link dmac port_map",         // would create a cycle with the chain
		"load missing.rp4 --func_name x", // loader fails
		"link_header --pre ghost --next ipv4 --tag 1",
		"link_header --pre tcp --next ipv4 --tag 1", // tcp has no implicit parser
		"unload ghost_func",
		"unlink_header --pre ethernet --tag 9999",
		"link_header --pre ipv6",
		"remove_stage a b",
	}
	for _, s := range cases {
		if _, err := w.ApplyScript(s, testdataLoader(t)); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestMergeSnippetConflicts(t *testing.T) {
	w, err := NewWorkspace(loadBase(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loader := func(name string) (string, error) {
		switch name {
		case "redef_header.rp4":
			return `headers { header ipv4 { bit<8> wrong; } }`, nil
		case "redef_action.rp4":
			return `action set_iif(bit<16> iif) { meta.bd = iif; }`, nil
		case "redef_table.rp4":
			return `table ipv4_lpm { key = { ipv4.dst_addr: lpm; } size = 4; }`, nil
		case "redef_stage.rp4":
			return `stage port_map { executor { default: NoAction; }; }`, nil
		case "same_action.rp4":
			return "action set_iif(bit<16> iif) {\n    meta.iif = iif;\n}\n", nil
		}
		return "", nil
	}
	for _, f := range []string{"redef_header.rp4", "redef_action.rp4", "redef_table.rp4", "redef_stage.rp4"} {
		if _, err := w.ApplyScript("load "+f, loader); err == nil {
			t.Errorf("conflicting %s accepted", f)
		}
	}
	// Identical action redefinition is fine (Fig. 5a restates set_bd_dmac).
	if _, err := w.ApplyScript("load same_action.rp4", loader); err != nil {
		t.Errorf("identical redefinition rejected: %v", err)
	}
}

func TestUnlinkHeader(t *testing.T) {
	opts := DefaultOptions()
	opts.NumTSPs = 12
	w, err := NewWorkspace(loadBase(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ApplyScript(readScript(t, "srv6.script"), testdataLoader(t)); err != nil {
		t.Fatal(err)
	}
	// Remove the inner-IPv4 linkage again; idempotent re-link also works.
	rep, err := w.ApplyScript("unlink_header --pre srh --tag 4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HeaderLinksChanged {
		t.Error("unlink not reported")
	}
	srh := rep.Config.HeaderByName("srh")
	for _, tr := range srh.Transitions {
		if tr.Tag == 4 {
			t.Error("tag 4 transition survived unlink")
		}
	}
	// Re-adding the same link twice is idempotent.
	if _, err := w.ApplyScript("link_header --pre srh --next ipv4 --tag 4\nlink_header --pre srh --next ipv4 --tag 4", nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorChangeDetection(t *testing.T) {
	opts := DefaultOptions()
	opts.NumTSPs = 12
	w, err := NewWorkspace(loadBase(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	// SRv6 adds ingress stages, moving the TM boundary.
	rep, err := w.ApplyScript(readScript(t, "srv6.script"), testdataLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SelectorChanged {
		t.Error("selector change not detected for SRv6 growth")
	}
}
