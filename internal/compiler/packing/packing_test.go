package packing

import (
	"testing"
	"testing/quick"
)

func TestGreedyFeasible(t *testing.T) {
	items := []Item{
		{Name: "a", Blocks: 3},
		{Name: "b", Blocks: 3},
		{Name: "c", Blocks: 2},
	}
	sol, err := Solve(items, []int{5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assignment) != 3 {
		t.Fatalf("assignment: %v", sol.Assignment)
	}
	// Loads must respect capacities.
	load := map[int]int{}
	for _, it := range items {
		load[sol.Assignment[it.Name]] += it.Blocks
	}
	for c, l := range load {
		if l > 5 {
			t.Errorf("cluster %d overloaded: %d", c, l)
		}
	}
}

func TestExactBeatsGreedyBalance(t *testing.T) {
	// Greedy FFD (most-free-first) on 6,5,4,3,3,3 over capacity-12 bins:
	// 6->A, 5->B, 4->A(10 used? free A=6 B=7 -> B), ... construct an
	// instance where FFD's max load exceeds the optimum.
	items := []Item{
		{Name: "a", Blocks: 7},
		{Name: "b", Blocks: 6},
		{Name: "c", Blocks: 5},
		{Name: "d", Blocks: 4},
		{Name: "e", Blocks: 4},
		{Name: "f", Blocks: 4},
	}
	caps := []int{15, 15}
	g, err := Solve(items, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(items, caps, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.MaxLoad > g.MaxLoad {
		t.Errorf("exact max load %d worse than greedy %d", x.MaxLoad, g.MaxLoad)
	}
	// Total is 30 over two 15-bins: the optimum is a perfect 15/15 split.
	if x.MaxLoad != 15 {
		t.Errorf("exact max load = %d, want 15", x.MaxLoad)
	}
	if !x.Optimal {
		t.Error("tiny instance not proved optimal")
	}
}

func TestAllowedClusterConstraint(t *testing.T) {
	items := []Item{
		{Name: "pinned", Blocks: 2, Allowed: []int{1}},
		{Name: "free", Blocks: 2},
	}
	sol, err := Solve(items, []int{2, 2}, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment["pinned"] != 1 {
		t.Errorf("pinned placed in %d", sol.Assignment["pinned"])
	}
	if sol.Assignment["free"] != 0 {
		t.Errorf("free placed in %d", sol.Assignment["free"])
	}
}

func TestInfeasible(t *testing.T) {
	if _, err := Solve([]Item{{Name: "big", Blocks: 9}}, []int{4, 4}, Options{Exact: true}); err == nil {
		t.Error("oversized item accepted")
	}
	if _, err := Solve([]Item{{Name: "x", Blocks: 1, Allowed: []int{5}}}, []int{4}, Options{}); err == nil {
		t.Error("unknown allowed cluster accepted")
	}
	if _, err := Solve([]Item{{Name: "x", Blocks: 0}}, []int{4}, Options{}); err == nil {
		t.Error("zero-block item accepted")
	}
	if _, err := Solve(nil, nil, Options{}); err == nil {
		t.Error("no clusters accepted")
	}
}

func TestNodeBudgetFallsBackToGreedy(t *testing.T) {
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, Item{Name: string(rune('a' + i)), Blocks: 1 + i%3})
	}
	sol, err := Solve(items, []int{20, 20, 20}, Options{Exact: true, MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || len(sol.Assignment) != 20 {
		t.Fatalf("solution: %+v", sol)
	}
	if sol.Optimal && sol.Nodes >= 10 {
		t.Error("budget-cut search claims optimality")
	}
}

func TestSolveProperty(t *testing.T) {
	// Any returned assignment respects capacities and Allowed sets.
	f := func(sizes []uint8, capSeed uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		var items []Item
		total := 0
		for i, s := range sizes {
			b := int(s)%5 + 1
			total += b
			it := Item{Name: string(rune('A' + i)), Blocks: b}
			if i%3 == 0 {
				it.Allowed = []int{i % 2}
			}
			items = append(items, it)
		}
		caps := []int{total, total}
		sol, err := Solve(items, caps, Options{Exact: true, MaxNodes: 5000})
		if err != nil {
			return false
		}
		load := map[int]int{}
		for _, it := range items {
			c, ok := sol.Assignment[it.Name]
			if !ok {
				return false
			}
			if len(it.Allowed) > 0 && c != it.Allowed[0] {
				return false
			}
			load[c] += it.Blocks
		}
		for c, l := range load {
			if l > caps[c] || l > sol.MaxLoad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
