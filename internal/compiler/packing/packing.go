// Package packing solves the table-to-memory-pool mapping rp4bc needs
// (paper Sec. 3.2: "for mapping tables in the memory pool, we formulate it
// as a set packing problem, which is NP-complete. We embed a dedicated
// integer programming solver ... to get a heuristic solution").
//
// This reproduction replaces the embedded YALMIP solver with a
// self-contained branch-and-bound over table→cluster assignments, warm
// started by first-fit-decreasing. Exact solving is bounded by a node
// budget and falls back to the greedy solution, matching the paper's
// "heuristic solution" behaviour on large instances.
package packing

import (
	"fmt"
	"sort"
)

// Item is one logical table to place.
type Item struct {
	Name   string
	Blocks int // memory blocks required (ceil(W/w) * ceil(D/d))
	// Allowed restricts the clusters this table may live in (the clustered
	// crossbar constraint); nil means any cluster.
	Allowed []int
}

// Options tunes the solver.
type Options struct {
	// Exact enables branch and bound; otherwise only greedy runs.
	Exact bool
	// MaxNodes bounds the search; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes bounds branch-and-bound search effort.
const DefaultMaxNodes = 200000

// Solution is a feasible packing.
type Solution struct {
	// Assignment maps item name -> cluster index.
	Assignment map[string]int
	// MaxLoad is the largest per-cluster block usage, the balance metric
	// the solver minimizes.
	MaxLoad int
	// Nodes is the number of search nodes explored (0 for pure greedy).
	Nodes int
	// Optimal reports whether the search proved optimality.
	Optimal bool
}

// Solve packs items into clusters with the given block capacities,
// minimizing the maximum cluster load. It returns an error when no feasible
// packing exists within the search budget.
func Solve(items []Item, capacities []int, opts Options) (*Solution, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("packing: no clusters")
	}
	for _, it := range items {
		if it.Blocks <= 0 {
			return nil, fmt.Errorf("packing: item %q needs %d blocks", it.Name, it.Blocks)
		}
		for _, a := range it.Allowed {
			if a < 0 || a >= len(capacities) {
				return nil, fmt.Errorf("packing: item %q allows unknown cluster %d", it.Name, a)
			}
		}
	}
	greedy, gerr := firstFitDecreasing(items, capacities)
	if !opts.Exact {
		if gerr != nil {
			return nil, gerr
		}
		return greedy, nil
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	sol := branchAndBound(items, capacities, greedy, maxNodes)
	if sol == nil {
		if gerr != nil {
			return nil, gerr
		}
		return greedy, nil
	}
	return sol, nil
}

func allowedClusters(it Item, n int) []int {
	if len(it.Allowed) > 0 {
		return it.Allowed
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// firstFitDecreasing is the greedy warm start: biggest tables first, each
// into the allowed cluster with the most remaining room.
func firstFitDecreasing(items []Item, capacities []int) (*Solution, error) {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]].Blocks > items[order[b]].Blocks })
	free := append([]int(nil), capacities...)
	assign := make(map[string]int, len(items))
	for _, idx := range order {
		it := items[idx]
		best := -1
		for _, c := range allowedClusters(it, len(capacities)) {
			if free[c] >= it.Blocks && (best < 0 || free[c] > free[best]) {
				best = c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("packing: table %q (%d blocks) does not fit in any allowed cluster", it.Name, it.Blocks)
		}
		free[best] -= it.Blocks
		assign[it.Name] = best
	}
	return &Solution{Assignment: assign, MaxLoad: maxLoad(capacities, free)}, nil
}

func maxLoad(capacities, free []int) int {
	m := 0
	for i := range capacities {
		if l := capacities[i] - free[i]; l > m {
			m = l
		}
	}
	return m
}

// branchAndBound searches assignments minimizing max cluster load, pruned
// by the incumbent. Returns nil when no solution was found in budget.
func branchAndBound(items []Item, capacities []int, incumbent *Solution, maxNodes int) *Solution {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	// Big items first maximizes pruning.
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]].Blocks > items[order[b]].Blocks })

	bestLoad := int(^uint(0) >> 1)
	var best map[string]int
	if incumbent != nil {
		bestLoad = incumbent.MaxLoad
		best = incumbent.Assignment
	}
	free := append([]int(nil), capacities...)
	cur := make(map[string]int, len(items))
	nodes := 0
	proved := true

	var rec func(k, curMax int)
	rec = func(k, curMax int) {
		if nodes >= maxNodes {
			proved = false
			return
		}
		nodes++
		if curMax >= bestLoad {
			return
		}
		if k == len(order) {
			bestLoad = curMax
			best = make(map[string]int, len(cur))
			for n, c := range cur {
				best[n] = c
			}
			return
		}
		it := items[order[k]]
		cands := allowedClusters(it, len(capacities))
		// Symmetry breaking: try clusters by ascending resulting load.
		sort.SliceStable(cands, func(a, b int) bool {
			la := capacities[cands[a]] - free[cands[a]] + it.Blocks
			lb := capacities[cands[b]] - free[cands[b]] + it.Blocks
			return la < lb
		})
		for _, c := range cands {
			if free[c] < it.Blocks {
				continue
			}
			free[c] -= it.Blocks
			cur[it.Name] = c
			nm := curMax
			if l := capacities[c] - free[c]; l > nm {
				nm = l
			}
			rec(k+1, nm)
			free[c] += it.Blocks
			delete(cur, it.Name)
		}
	}
	rec(0, 0)
	if best == nil {
		return nil
	}
	return &Solution{Assignment: best, MaxLoad: bestLoad, Nodes: nodes, Optimal: proved}
}
