// Package layout places merged stage groups onto the physical TSPs of the
// elastic pipeline (paper Sec. 2.3) and implements rp4bc's incremental
// layout optimization algorithm, with a greedy and a dynamic-programming
// variant trading placement time against the number of TSP template
// rewrites (paper Sec. 3.2: "there is a trade-off between dynamic
// programming and greedy algorithm in terms of the function placement time
// and the degree of optimization").
package layout

import (
	"fmt"
	"sort"
	"strings"
)

// Mode is a TSP's role in the elastic pipeline.
type Mode int

// TSP modes. Bypassed TSPs are kept in low-power state.
const (
	Bypass Mode = iota
	IngressActive
	EgressActive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Bypass:
		return "bypass"
	case IngressActive:
		return "ingress"
	case EgressActive:
		return "egress"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// GroupKey canonically names a merged group by its stage set.
func GroupKey(stages []string) string {
	s := append([]string(nil), stages...)
	sort.Strings(s)
	return strings.Join(s, "+")
}

// Assignment maps groups onto physical TSPs.
type Assignment struct {
	NumTSP   int
	Position map[string]int // group key -> TSP index
	Modes    []Mode         // per TSP
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	n := &Assignment{NumTSP: a.NumTSP, Position: make(map[string]int, len(a.Position))}
	for k, v := range a.Position {
		n.Position[k] = v
	}
	n.Modes = append([]Mode(nil), a.Modes...)
	return n
}

// ActiveTSPs counts non-bypassed TSPs, the quantity the power model keys on.
func (a *Assignment) ActiveTSPs() int {
	n := 0
	for _, m := range a.Modes {
		if m != Bypass {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: ingress groups leftmost-in-order,
// egress rightmost-in-order, every ingress position before every egress
// position.
func (a *Assignment) Validate(ingress, egress []string) error {
	used := make(map[int]string)
	lastIngress, firstEgress := -1, a.NumTSP
	prev := -1
	for _, g := range ingress {
		p, ok := a.Position[g]
		if !ok {
			return fmt.Errorf("layout: ingress group %q unplaced", g)
		}
		if p <= prev {
			return fmt.Errorf("layout: ingress group %q out of order at TSP %d", g, p)
		}
		if o, clash := used[p]; clash {
			return fmt.Errorf("layout: TSP %d assigned to both %q and %q", p, o, g)
		}
		used[p] = g
		prev = p
		if p > lastIngress {
			lastIngress = p
		}
	}
	prev = lastIngress
	for _, g := range egress {
		p, ok := a.Position[g]
		if !ok {
			return fmt.Errorf("layout: egress group %q unplaced", g)
		}
		if p <= prev {
			return fmt.Errorf("layout: egress group %q out of order at TSP %d", g, p)
		}
		if o, clash := used[p]; clash {
			return fmt.Errorf("layout: TSP %d assigned to both %q and %q", p, o, g)
		}
		used[p] = g
		prev = p
		if p < firstEgress {
			firstEgress = p
		}
	}
	for p := range used {
		if p < 0 || p >= a.NumTSP {
			return fmt.Errorf("layout: TSP index %d out of range [0,%d)", p, a.NumTSP)
		}
	}
	return nil
}

func buildModes(numTSP int, pos map[string]int, ingress, egress []string) []Mode {
	modes := make([]Mode, numTSP)
	for _, g := range ingress {
		modes[pos[g]] = IngressActive
	}
	for _, g := range egress {
		modes[pos[g]] = EgressActive
	}
	return modes
}

// PlaceFull lays groups out from scratch: ingress packed leftmost, egress
// packed rightmost, everything between bypassed.
func PlaceFull(ingress, egress []string, numTSP int) (*Assignment, error) {
	if len(ingress)+len(egress) > numTSP {
		return nil, fmt.Errorf("layout: %d ingress + %d egress groups exceed %d TSPs",
			len(ingress), len(egress), numTSP)
	}
	pos := make(map[string]int, len(ingress)+len(egress))
	for i, g := range ingress {
		pos[g] = i
	}
	for i, g := range egress {
		pos[g] = numTSP - len(egress) + i
	}
	a := &Assignment{NumTSP: numTSP, Position: pos, Modes: buildModes(numTSP, pos, ingress, egress)}
	return a, nil
}

// Result reports the cost of an incremental placement.
type Result struct {
	Assignment *Assignment
	// Rewrites counts TSPs whose template must be written: new groups plus
	// surviving groups that moved.
	Rewrites int
	// Kept counts surviving groups that stayed in place.
	Kept int
}

// PlaceIncrementalGreedy is the fast variant: it walks the new sequence
// left to right, keeping a surviving group's old position only when it is
// strictly beyond the previous placement; everything else takes the next
// free TSP. It can cascade moves an optimal placement would avoid.
func PlaceIncrementalGreedy(old *Assignment, ingress, egress []string, numTSP int) (*Result, error) {
	return placeIncremental(old, ingress, egress, numTSP, false)
}

// PlaceIncrementalDP is the optimizing variant: it selects the maximum set
// of surviving groups that can keep their old TSPs (a longest increasing
// subsequence over old positions) and only rewrites the rest.
func PlaceIncrementalDP(old *Assignment, ingress, egress []string, numTSP int) (*Result, error) {
	return placeIncremental(old, ingress, egress, numTSP, true)
}

func placeIncremental(old *Assignment, ingress, egress []string, numTSP int, optimal bool) (*Result, error) {
	if len(ingress)+len(egress) > numTSP {
		return nil, fmt.Errorf("layout: %d ingress + %d egress groups exceed %d TSPs",
			len(ingress), len(egress), numTSP)
	}
	seq := append(append([]string(nil), ingress...), egress...)
	oldPos := make([]int, len(seq)) // -1 when the group is new
	for i, g := range seq {
		if p, ok := old.Position[g]; ok && p < numTSP {
			oldPos[i] = p
		} else {
			oldPos[i] = -1
		}
	}
	var keep []bool
	if optimal {
		keep = feasibleKeep(oldPos, numTSP)
	} else {
		keep = greedyKeep(oldPos)
	}
	// Assign positions: kept groups stay; others take the lowest free
	// position that preserves order. If a gap is too tight, un-keep the
	// next kept group and retry (rare; bounded by len(seq) retries).
	for retry := 0; ; retry++ {
		pos, ok := fill(seq, oldPos, keep, numTSP)
		if ok {
			kept := 0
			for i := range seq {
				if keep[i] {
					kept++
				}
			}
			a := &Assignment{NumTSP: numTSP, Position: pos, Modes: buildModes(numTSP, pos, ingress, egress)}
			if err := a.Validate(ingress, egress); err != nil {
				return nil, err
			}
			return &Result{Assignment: a, Rewrites: len(seq) - kept, Kept: kept}, nil
		}
		// Relax: drop the last kept group and try again.
		dropped := false
		for i := len(keep) - 1; i >= 0; i-- {
			if keep[i] {
				keep[i] = false
				dropped = true
				break
			}
		}
		if !dropped {
			return nil, fmt.Errorf("layout: cannot place %d groups on %d TSPs", len(seq), numTSP)
		}
		if retry > len(seq)+1 {
			return nil, fmt.Errorf("layout: placement did not converge")
		}
	}
}

// feasibleKeep is the DP optimizer: it selects the maximum set of groups
// that can keep their old TSPs such that every run of rewritten groups fits
// in the position gap around it (O(n^2), n = group count, always small).
// A group i may be kept after kept group j iff its old position is beyond
// j's and the i-j-1 groups between them fit in the oldPos[i]-oldPos[j]-1
// intermediate slots.
func feasibleKeep(oldPos []int, numTSP int) []bool {
	n := len(oldPos)
	const none = -2
	best := make([]int, n) // best[i]: max kept among 0..i with i kept; 0 if infeasible
	prev := make([]int, n)
	for i := range best {
		prev[i] = none
		if oldPos[i] < 0 {
			continue
		}
		// Base: all i predecessors are rewritten into slots 0..oldPos[i]-1.
		if i <= oldPos[i] {
			best[i] = 1
			prev[i] = -1
		}
		for j := 0; j < i; j++ {
			if best[j] == 0 || oldPos[j] < 0 {
				continue
			}
			gap := oldPos[i] - oldPos[j] - 1
			between := i - j - 1
			if oldPos[j] < oldPos[i] && between <= gap && best[j]+1 > best[i] {
				best[i] = best[j] + 1
				prev[i] = j
			}
		}
	}
	keep := make([]bool, n)
	bi := none
	bestTotal := 0
	for i := range best {
		if best[i] == 0 {
			continue
		}
		// The suffix after i must fit to the right of oldPos[i].
		if n-1-i > numTSP-oldPos[i]-1 {
			continue
		}
		if best[i] > bestTotal {
			bestTotal = best[i]
			bi = i
		}
	}
	for i := bi; i >= 0; i = prev[i] {
		keep[i] = true
	}
	return keep
}

// greedyKeep keeps a surviving group's position whenever it is beyond the
// last kept position — the fast heuristic.
func greedyKeep(oldPos []int) []bool {
	keep := make([]bool, len(oldPos))
	last := -1
	for i, p := range oldPos {
		if p >= 0 && p > last {
			keep[i] = true
			last = p
		}
	}
	return keep
}

// fill assigns every group a position: kept groups keep oldPos, the rest
// take free slots in order. Returns ok=false when a gap cannot hold the
// groups between two kept neighbours.
func fill(seq []string, oldPos []int, keep []bool, numTSP int) (map[string]int, bool) {
	pos := make(map[string]int, len(seq))
	next := 0
	for i, g := range seq {
		if keep[i] {
			if oldPos[i] < next {
				return nil, false
			}
			pos[g] = oldPos[i]
			next = oldPos[i] + 1
			continue
		}
		// Next free slot that stays below any upcoming kept position.
		limit := numTSP
		for j := i + 1; j < len(seq); j++ {
			if keep[j] {
				limit = oldPos[j]
				break
			}
		}
		if next >= limit {
			return nil, false
		}
		pos[g] = next
		next++
	}
	// Bound check.
	for _, p := range pos {
		if p >= numTSP {
			return nil, false
		}
	}
	return pos, true
}
