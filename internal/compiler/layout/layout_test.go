package layout

import (
	"testing"
)

func TestPlaceFull(t *testing.T) {
	a, err := PlaceFull([]string{"i1", "i2", "i3"}, []string{"e1", "e2"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Position["i1"] != 0 || a.Position["i3"] != 2 {
		t.Errorf("ingress positions: %v", a.Position)
	}
	if a.Position["e1"] != 6 || a.Position["e2"] != 7 {
		t.Errorf("egress positions: %v", a.Position)
	}
	if a.ActiveTSPs() != 5 {
		t.Errorf("active = %d", a.ActiveTSPs())
	}
	if a.Modes[3] != Bypass || a.Modes[0] != IngressActive || a.Modes[7] != EgressActive {
		t.Errorf("modes = %v", a.Modes)
	}
	if err := a.Validate([]string{"i1", "i2", "i3"}, []string{"e1", "e2"}); err != nil {
		t.Errorf("validate: %v", err)
	}
	if _, err := PlaceFull(make([]string, 6), make([]string, 3), 8); err == nil {
		t.Error("overfull placement accepted")
	}
}

func TestIncrementalInsertMiddle(t *testing.T) {
	old, _ := PlaceFull([]string{"a", "b", "c"}, []string{"z"}, 8)
	// Insert "new" between b and c.
	res, err := PlaceIncrementalDP(old, []string{"a", "b", "new", "c"}, []string{"z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Old positions a0 b1 c2 z7. "new" needs a slot between b(1) and c(2):
	// none exists, so the optimum keeps {a,b,z} and rewrites new + c.
	if res.Rewrites != 2 {
		t.Errorf("rewrites = %d (kept %d)", res.Rewrites, res.Kept)
	}
	if err := res.Assignment.Validate([]string{"a", "b", "new", "c"}, []string{"z"}); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestIncrementalReplaceFreesSlot(t *testing.T) {
	old, _ := PlaceFull([]string{"a", "b", "c"}, []string{"z"}, 8)
	// Replace b with "r": slot 1 frees up, r should take it; 1 rewrite.
	for _, variant := range []func(*Assignment, []string, []string, int) (*Result, error){
		PlaceIncrementalDP, PlaceIncrementalGreedy,
	} {
		res, err := variant(old, []string{"a", "r", "c"}, []string{"z"}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rewrites != 1 {
			t.Errorf("rewrites = %d, want 1", res.Rewrites)
		}
		if res.Assignment.Position["r"] != 1 {
			t.Errorf("r placed at %d", res.Assignment.Position["r"])
		}
	}
}

func TestDPBeatsGreedyOnReorder(t *testing.T) {
	// A reordering update: the group at old position 7 moves to the head
	// of the new sequence. Greedy locks onto it (first increasing run) and
	// then has no room for the rest; DP sacrifices it and keeps a suffix.
	old := &Assignment{
		NumTSP:   8,
		Position: map[string]int{"a": 0, "b": 1, "c": 2, "z": 7},
		Modes:    make([]Mode, 8),
	}
	newSeq := []string{"z", "a", "b", "c"}
	g, err := PlaceIncrementalGreedy(old, newSeq, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := PlaceIncrementalDP(old, newSeq, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Rewrites > g.Rewrites {
		t.Errorf("DP rewrites %d > greedy %d", dp.Rewrites, g.Rewrites)
	}
	// Greedy keeps only z@7 and must then relax it away: 4 rewrites. DP
	// keeps c@2 (z,a,b fit in slots 0 and 1? no — 3 groups, 2 slots), so
	// DP keeps b@1? prefix z,a needs 2 slots below 1: no. DP keeps c@2:
	// prefix z,a,b needs 3 slots below 2: no... DP keeps nothing either
	// here unless slots free up; use a wider machine for the DP win.
	_ = dp
	old16 := &Assignment{
		NumTSP:   16,
		Position: map[string]int{"a": 3, "b": 4, "c": 5, "z": 9},
		Modes:    make([]Mode, 16),
	}
	g2, err := PlaceIncrementalGreedy(old16, newSeq, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	dp2, err := PlaceIncrementalDP(old16, newSeq, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	// DP keeps a,b,c (z takes a free low slot): 1 rewrite. Greedy keeps z
	// first and cascades.
	if dp2.Rewrites != 1 {
		t.Errorf("dp rewrites = %d, want 1", dp2.Rewrites)
	}
	if g2.Rewrites <= dp2.Rewrites {
		t.Errorf("greedy rewrites = %d, expected worse than DP's %d", g2.Rewrites, dp2.Rewrites)
	}
}

func TestIncrementalWithNewGroupAtEnd(t *testing.T) {
	old, _ := PlaceFull([]string{"a", "b"}, []string{"z"}, 8)
	res, err := PlaceIncrementalDP(old, []string{"a", "b", "tail"}, []string{"z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 1 || res.Assignment.Position["tail"] != 2 {
		t.Errorf("rewrites %d, tail at %d", res.Rewrites, res.Assignment.Position["tail"])
	}
}

func TestIncrementalOverflow(t *testing.T) {
	old, _ := PlaceFull([]string{"a"}, nil, 2)
	if _, err := PlaceIncrementalDP(old, []string{"a", "b", "c"}, nil, 2); err == nil {
		t.Error("overfull incremental accepted")
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	a := &Assignment{NumTSP: 4, Position: map[string]int{"x": 2, "y": 1}, Modes: make([]Mode, 4)}
	if err := a.Validate([]string{"x", "y"}, nil); err == nil {
		t.Error("out-of-order ingress accepted")
	}
	b := &Assignment{NumTSP: 4, Position: map[string]int{"x": 1, "y": 1}, Modes: make([]Mode, 4)}
	if err := b.Validate([]string{"x"}, []string{"y"}); err == nil {
		t.Error("position collision accepted")
	}
	c := &Assignment{NumTSP: 4, Position: map[string]int{"x": 0}, Modes: make([]Mode, 4)}
	if err := c.Validate([]string{"x", "missing"}, nil); err == nil {
		t.Error("unplaced group accepted")
	}
}

func TestGroupKeyCanonical(t *testing.T) {
	if GroupKey([]string{"b", "a"}) != GroupKey([]string{"a", "b"}) {
		t.Error("group key not order independent")
	}
	if GroupKey([]string{"a"}) == GroupKey([]string{"a", "b"}) {
		t.Error("distinct groups share a key")
	}
}

func TestModeString(t *testing.T) {
	if Bypass.String() != "bypass" || IngressActive.String() != "ingress" || EgressActive.String() != "egress" {
		t.Error("mode strings wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := PlaceFull([]string{"x"}, nil, 4)
	b := a.Clone()
	b.Position["x"] = 3
	b.Modes[0] = Bypass
	if a.Position["x"] != 0 || a.Modes[0] != IngressActive {
		t.Error("clone shares storage")
	}
}
