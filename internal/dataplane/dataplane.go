// Package dataplane is the per-packet execution substrate shared by the
// IPSA behavioral model (internal/ipbm) and the PISA baseline
// (internal/pisa). Both switches previously duplicated the packet
// lifecycle — wrap + istd stamping, Env setup, telemetry begin/finish,
// out-port surfacing — with slightly different locking; centralizing it
// keeps IPSA-vs-PISA differences architectural rather than accidental,
// and gives both switches the same zero-allocation steady state:
//
//   - the installed configuration is an immutable Design snapshot behind
//     an atomic pointer, so the hot path never takes the switch mutex;
//   - Packets and Envs come from sync.Pools, with Meta, header-vector and
//     scratch storage reused across packets.
package dataplane

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
	"ipsa/internal/verdict"
)

// ErrNoConfig is returned by packet entry points before ApplyConfig.
var ErrNoConfig = fmt.Errorf("dataplane: no configuration installed")

// Design is one installed configuration's immutable execution snapshot.
// A new Design is built at apply time and swapped in atomically; packets
// in flight keep the snapshot they started with.
type Design struct {
	Cfg    *template.Config
	Parser *tsp.OnDemandParser
	Regs   *tsp.RegisterFile
	// SRH/IPv6 locate the header instances the SRv6 action primitives
	// operate on (InvalidHeader when the design has none).
	SRH  pkt.HeaderID
	IPv6 pkt.HeaderID
	// numHeaders pre-sizes packet header vectors (max header ID + 1).
	numHeaders int
}

// NewPacket allocates a caller-owned packet for this design with
// istd.in_port stamped. Pooled packets come from Core.GetPacket instead.
func (d *Design) NewPacket(data []byte, inPort int) (*pkt.Packet, error) {
	p := pkt.NewPacket(data, d.Cfg.MetaBytes)
	p.HV.Presize(d.numHeaders)
	if err := StampInPort(p, inPort); err != nil {
		return nil, err
	}
	// Same admission-time parse probe as Core.GetPacket (see below), so
	// caller-owned packets classify losses identically to pooled ones.
	if !d.Parser.EnsureRoot(p) {
		p.DropReason = verdict.ReasonParse
	}
	return p, nil
}

// Hooks receives per-packet lifecycle callbacks (sampled telemetry).
// A nil Hooks is valid and costs one branch per packet.
type Hooks interface {
	// BeginPacket runs after the packet is built, before the first stage.
	BeginPacket(p *pkt.Packet)
	// FinishPacket runs after the verdict is known, before the packet is
	// recycled; implementations must detach anything that outlives it
	// (e.g. the trace record).
	FinishPacket(p *pkt.Packet, verdict string)
}

// Core is the state a switch embeds: the design snapshot, the shared
// fault counters, and the packet/Env pools. Packet and Env are pooled
// separately because the pipelined mode parks packets in the traffic
// manager between the ingress and egress halves while their Envs are
// returned for reuse.
type Core struct {
	design atomic.Pointer[Design]
	faults tsp.Faults
	hooks  Hooks
	log    *slog.Logger

	// intCtx, when non-nil, marks this switch an INT source: GetEnv hands
	// it to every Env (arming the stamped stages' epilogues) and packet
	// admission records the ingress timestamp. One atomic load per packet
	// when disabled.
	intCtx atomic.Pointer[tsp.IntStampCtx]

	pktPool sync.Pool
	envPool sync.Pool
}

// NewCore builds an empty core (no design installed).
func NewCore() *Core {
	c := &Core{}
	c.pktPool.New = func() any { return &pkt.Packet{OutPort: -1} }
	c.envPool.New = func() any { return &tsp.Env{} }
	return c
}

// SetHooks attaches the lifecycle callbacks. Call before traffic starts.
func (c *Core) SetHooks(h Hooks) { c.hooks = h }

// SetLogger attaches a structured logger for install-time diagnostics.
// Call before traffic starts; nil restores the process default.
func (c *Core) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.Default()
	}
	c.log = l
}

// SetIntCtx installs (or, with nil, removes) the INT stamping context.
// Safe to call while traffic is flowing: packets pick it up at Env setup.
func (c *Core) SetIntCtx(ctx *tsp.IntStampCtx) { c.intCtx.Store(ctx) }

// IntCtx returns the installed INT context (nil when INT is off).
func (c *Core) IntCtx() *tsp.IntStampCtx { return c.intCtx.Load() }

// Install builds and atomically publishes the Design for cfg. The caller
// supplies the register file so each switch keeps its own update
// semantics (ipbm preserves contents additively; pisa resets).
func (c *Core) Install(cfg *template.Config, regs *tsp.RegisterFile) *Design {
	srh, ipv6 := tsp.ResolveSRv6IDs(cfg)
	n := 0
	for i := range cfg.Headers {
		if id := int(cfg.Headers[i].ID) + 1; id > n {
			n = id
		}
	}
	d := &Design{
		Cfg:        cfg,
		Parser:     tsp.NewOnDemandParser(cfg),
		Regs:       regs,
		SRH:        srh,
		IPv6:       ipv6,
		numHeaders: n,
	}
	c.design.Store(d)
	if c.log != nil {
		c.log.Debug("design installed",
			"headers", len(cfg.Headers), "stages", len(cfg.Stages),
			"tables", len(cfg.Tables), "registers", len(cfg.Registers))
	}
	return d
}

// Design returns the current snapshot (nil before the first Install).
// Lock-free; safe from any goroutine.
func (c *Core) Design() *Design { return c.design.Load() }

// Faults exposes the executor fault counters.
func (c *Core) Faults() *tsp.Faults { return &c.faults }

// GetPacket returns a pooled packet wrapping data under design d, with
// reused Meta/header-vector storage and istd.in_port stamped. Return it
// with PutPacket once it cannot be referenced anymore.
func (c *Core) GetPacket(d *Design, data []byte, inPort int) (*pkt.Packet, error) {
	p := c.pktPool.Get().(*pkt.Packet)
	p.ResetFor(data, d.Cfg.MetaBytes)
	p.HV.Presize(d.numHeaders)
	if err := StampInPort(p, inPort); err != nil {
		c.pktPool.Put(p)
		return nil, err
	}
	// Admission-time parse probe: a frame that cannot carry the design's
	// root header is marked a parse failure here, so a later no-egress
	// finish is attributed to the parser rather than the program. The
	// packet still traverses the pipeline unchanged (programs that route
	// on metadata alone keep working); the probe's result is cached in
	// the header vector, so the first stage's own parse is a hit.
	if !d.Parser.EnsureRoot(p) {
		p.DropReason = verdict.ReasonParse
	}
	return p, nil
}

// PutPacket recycles a pooled packet. The caller must not retain p, its
// Data, or its Trace afterwards.
func (c *Core) PutPacket(p *pkt.Packet) {
	p.Data = nil
	p.Trace = nil
	p.Ver = nil
	c.pktPool.Put(p)
}

// GetEnv returns a pooled Env bound to design d and the shared fault
// counters, with scratch buffers retained across packets.
func (c *Core) GetEnv(d *Design) *tsp.Env {
	e := c.envPool.Get().(*tsp.Env)
	e.Rebind(d.Regs, &c.faults, d.SRH, d.IPv6)
	e.Int = c.intCtx.Load()
	return e
}

// PutEnv recycles an Env.
func (c *Core) PutEnv(e *tsp.Env) { c.envPool.Put(e) }

// BeginPacket stamps the INT source ingress timestamp (only while INT is
// enabled) and invokes the begin hook, if any.
func (c *Core) BeginPacket(p *pkt.Packet) {
	if ctx := c.intCtx.Load(); ctx != nil {
		p.IngressNanos = ctx.NowNanos()
	}
	if c.hooks != nil {
		c.hooks.BeginPacket(p)
	}
}

// FinishPacket invokes the finish hook, if any.
func (c *Core) FinishPacket(p *pkt.Packet, verdict string) {
	if c.hooks != nil {
		c.hooks.FinishPacket(p, verdict)
	}
}

// StampInPort records the ingress port on the packet and in
// istd.in_port, where match templates read it.
func StampInPort(p *pkt.Packet, inPort int) error {
	p.InPort = inPort
	return p.SetMetaBits(template.IstdInPortOff, template.IstdInPortWidth, uint64(inPort))
}

// SurfaceOutPort copies istd.out_port (set by executor actions) onto the
// packet's OutPort field.
func SurfaceOutPort(p *pkt.Packet) {
	if out, err := p.MetaBits(template.IstdOutPortOff, template.IstdOutPortWidth); err == nil {
		p.OutPort = int(out)
	}
}

// DropVerdict classifies a packet the program dropped mid-pipeline.
// Normally that is an intentional, ACL-style drop; but when admission
// already stamped the frame as a parse failure, the parse verdict wins —
// the program's catch-all drop action merely disposed of a frame nothing
// could have routed, and filing it as policy would hide a garbage-frame
// storm from the unexpected-loss health detector.
func DropVerdict(p *pkt.Packet) string {
	if p.DropReason == verdict.ReasonParse {
		return verdict.StrParseError
	}
	return verdict.StrDropped
}

// Verdict classifies a finished packet for telemetry. survived is false
// when the packet died without a stage drop (e.g. TM admission failure).
// A packet that finishes without a valid egress port splits two ways:
// admission marked it a parse failure (the frame could not carry the
// design's root header — nothing downstream could have routed it) or a
// genuine no_port (the program never picked an egress).
func Verdict(p *pkt.Packet, survived bool, numPorts int) string {
	switch {
	case p.Drop:
		return DropVerdict(p)
	case !survived:
		return verdict.StrTMDrop
	case p.ToCPU:
		return verdict.StrToCPU
	case p.OutPort < 0 || p.OutPort >= numPorts:
		if p.DropReason == verdict.ReasonParse {
			return verdict.StrParseError
		}
		return verdict.StrNoPort
	default:
		return verdict.StrForwarded
	}
}
