package dataplane

import (
	"ipsa/internal/pkt"
	"ipsa/internal/tsp"
	"ipsa/internal/verdict"
)

// Shard is one shard worker's private packet-lifecycle cache over a Core:
// a plain-slice packet freelist and a single owned Env, both touched by
// exactly one goroutine so neither needs the sync.Pool's per-P machinery
// or any atomics. The freelist spills to (and refills from) the Core's
// shared pool, so packets still flow freely if something off-shard ever
// recycles one.
//
// A Shard must only ever be used from the goroutine that owns it.
type Shard struct {
	core *Core
	lane int32
	free []*pkt.Packet
	env  tsp.Env
}

// NewShard builds a shard cache charging telemetry to counter stripe
// lane, with room for freeCap cached packets before spilling to the
// shared pool.
func (c *Core) NewShard(lane, freeCap int) *Shard {
	if freeCap < 1 {
		freeCap = 64
	}
	return &Shard{core: c, lane: int32(lane), free: make([]*pkt.Packet, 0, freeCap)}
}

// Lane reports the telemetry stripe this shard charges.
func (sh *Shard) Lane() int { return int(sh.lane) }

// GetPacket is Core.GetPacket against the shard-local freelist, with the
// packet's telemetry lane stamped to this shard.
func (sh *Shard) GetPacket(d *Design, data []byte, inPort int) (*pkt.Packet, error) {
	var p *pkt.Packet
	if n := len(sh.free); n > 0 {
		p = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		p = sh.core.pktPool.Get().(*pkt.Packet)
	}
	p.ResetFor(data, d.Cfg.MetaBytes)
	p.HV.Presize(d.numHeaders)
	if err := StampInPort(p, inPort); err != nil {
		sh.PutPacket(p)
		return nil, err
	}
	p.Lane = sh.lane
	// Same admission-time parse probe as Core.GetPacket.
	if !d.Parser.EnsureRoot(p) {
		p.DropReason = verdict.ReasonParse
	}
	return p, nil
}

// PutPacket recycles a packet into the shard freelist, spilling to the
// shared pool when the freelist is full. The caller must not retain p,
// its Data, or its Trace afterwards.
func (sh *Shard) PutPacket(p *pkt.Packet) {
	p.Data = nil
	p.Trace = nil
	if len(sh.free) < cap(sh.free) {
		sh.free = append(sh.free, p)
		return
	}
	sh.core.pktPool.Put(p)
}

// Env rebinds the shard's owned Env for the next packet under design d.
// The same Env is returned every call — valid because one shard processes
// one packet at a time — so the per-packet cost is a rebind, not a pool
// round trip.
func (sh *Shard) Env(d *Design) *tsp.Env {
	e := &sh.env
	e.Rebind(d.Regs, &sh.core.faults, d.SRH, d.IPv6)
	e.Int = sh.core.intCtx.Load()
	e.Lane = int(sh.lane)
	return e
}
