package health

import (
	"testing"
	"time"

	"ipsa/internal/telemetry"
)

const tick = int64(time.Second)

// TestRingRateCorrectness drives the ring with a synthetic clock and a
// counter advancing a known amount per tick, and checks the windowed
// rate comes out exact.
func TestRingRateCorrectness(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("pkts_total")
	r := NewRing(reg, 16)

	now := int64(1e9)
	for i := 0; i < 10; i++ {
		c.Add(100)
		r.Tick(now)
		now += tick
	}
	rate, ok := r.RateOf("pkts_total", 5*time.Second)
	if !ok {
		t.Fatal("no rate for pkts_total")
	}
	// 5 ticks back inside the window: delta 500 over 5s.
	if rate.PerSec != 100 {
		t.Fatalf("PerSec = %v, want 100", rate.PerSec)
	}
	if rate.Last != 1000 {
		t.Fatalf("Last = %v, want 1000", rate.Last)
	}
	if rate.Delta != 500 {
		t.Fatalf("Delta = %v, want 500", rate.Delta)
	}

	// A wider window than retained history clamps to the oldest sample.
	rate, ok = r.RateOf("pkts_total", time.Hour)
	if !ok || rate.Delta != 900 {
		t.Fatalf("full-window Delta = %v (ok=%v), want 900", rate.Delta, ok)
	}
}

// TestRingWraparound overfills a small ring and checks both the sample
// cap and that rates survive the wrap.
func TestRingWraparound(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("pkts_total")
	r := NewRing(reg, 8)

	now := int64(1e9)
	for i := 0; i < 30; i++ {
		c.Add(10)
		r.Tick(now)
		now += tick
	}
	if got := r.Samples(); got != 8 {
		t.Fatalf("Samples = %d, want 8 (capacity)", got)
	}
	rate, ok := r.RateOf("pkts_total", 4*time.Second)
	if !ok || rate.PerSec != 10 {
		t.Fatalf("post-wrap PerSec = %v (ok=%v), want 10", rate.PerSec, ok)
	}
	// Only capacity-1 intervals of history remain.
	rate, _ = r.RateOf("pkts_total", time.Hour)
	if rate.Delta != 70 {
		t.Fatalf("post-wrap full Delta = %v, want 70", rate.Delta)
	}
}

// TestRingTickZeroAlloc locks in the sampler hot path: once the column
// set is built, a tick over registered counters, gauges, striped
// counters and histograms must not allocate.
func TestRingTickZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("pkts_total")
	g := reg.Gauge("depth")
	sc := reg.StripedCounter("sharded_total", 4).Cell(1)
	h := reg.Histogram("lat_seconds")
	r := NewRing(reg, 32)
	r.AddColumn(Column{Name: "extra", Kind: "gauge", Read: func() float64 { return 1 }})

	now := int64(1e9)
	r.Tick(now) // prime: builds the column set
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		sc.Inc()
		h.ObserveNanos(1500)
		now += tick
		r.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("Tick allocates %v per run, want 0", allocs)
	}
}

// TestRingMidStreamSeries registers a series after the ring has been
// ticking and checks it gets tracked with its own (shorter) history.
func TestRingMidStreamSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Counter("a_total")
	r := NewRing(reg, 16)

	now := int64(1e9)
	for i := 0; i < 5; i++ {
		a.Add(1)
		r.Tick(now)
		now += tick
	}
	b := reg.Counter("b_total") // generation bump → rebuild on next tick
	for i := 0; i < 3; i++ {
		a.Add(1)
		b.Add(2)
		r.Tick(now)
		now += tick
	}
	rb, ok := r.RateOf("b_total", time.Hour)
	if !ok {
		t.Fatal("b_total not tracked after mid-stream registration")
	}
	// b has 3 valid samples: delta across the last two intervals only.
	if rb.Delta != 4 {
		t.Fatalf("b Delta = %v, want 4", rb.Delta)
	}
	ra, _ := r.RateOf("a_total", time.Hour)
	if ra.Delta != 7 {
		t.Fatalf("a Delta = %v, want 7 (history preserved across rebuild)", ra.Delta)
	}
}

// TestRingCounterReset checks the Prometheus-style reset rule: a counter
// that goes backwards reports its new value as the whole delta.
func TestRingCounterReset(t *testing.T) {
	v := 1000.0
	r := NewRing(nil, 8)
	r.AddColumn(Column{Name: "resets_total", Kind: "counter", Read: func() float64 { return v }})

	now := int64(1e9)
	r.Tick(now)
	now += tick
	v = 30 // restarted process
	r.Tick(now)
	rate, ok := r.RateOf("resets_total", time.Hour)
	if !ok || rate.Delta != 30 {
		t.Fatalf("post-reset Delta = %v (ok=%v), want 30", rate.Delta, ok)
	}
}

// TestRingHistWindow checks that histogram quantiles are computed from
// the window's bucket deltas, not the all-time distribution.
func TestRingHistWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_seconds", telemetry.L("tsp", "0"))
	h2 := reg.Histogram("lat_seconds", telemetry.L("tsp", "1"))
	r := NewRing(reg, 16)

	now := int64(1e9)
	// Old observations: slow (1ms) — should not pollute the window.
	for i := 0; i < 1000; i++ {
		h.ObserveNanos(1_000_000)
	}
	r.Tick(now)
	now += tick
	// Windowed observations: fast (1µs), spread over both series.
	for i := 0; i < 500; i++ {
		h.ObserveNanos(1000)
		h2.ObserveNanos(1000)
	}
	r.Tick(now)

	hw, ok := r.HistWindowSum("lat_seconds", time.Second)
	if !ok {
		t.Fatal("no histogram window")
	}
	if hw.Count != 1000 {
		t.Fatalf("window Count = %d, want 1000 (both series summed)", hw.Count)
	}
	if hw.P99 >= 1_000_000 {
		t.Fatalf("P99 = %v includes pre-window observations", hw.P99)
	}
}
