package health

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipsa/internal/telemetry"
)

// harness builds a manual-mode Health (no ticker) over a synthetic
// clock; tests advance the clock and call Check directly.
type harness struct {
	h      *Health
	reg    *telemetry.Registry
	events *telemetry.EventLog
	now    int64
}

func newHarness(t *testing.T, mut func(*Options)) *harness {
	t.Helper()
	hn := &harness{
		reg:    telemetry.NewRegistry(),
		events: telemetry.NewEventLog(64),
		now:    int64(1e9),
	}
	o := Options{
		Registry: hn.reg,
		Events:   hn.events,
		Log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		Interval: -1, // manual mode
		Now:      func() int64 { return hn.now },
	}
	if mut != nil {
		mut(&o)
	}
	hn.h = New(o)
	return hn
}

func (hn *harness) check(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		hn.now += int64(time.Second)
		hn.h.Check(hn.now)
	}
}

func (hn *harness) hasEvent(kind string) bool {
	for _, ev := range hn.events.Dump(0) {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func (hn *harness) gaugeValue() int64 {
	return hn.reg.Gauge("ipsa_health_state").Value()
}

// TestWatchdogStallAndRecover freezes one of two lanes' heartbeats with
// work queued: the switch must degrade (not stall — the other lane is
// alive), export it on the gauge and in the event ring, and recover once
// the heartbeat moves again.
func TestWatchdogStallAndRecover(t *testing.T) {
	hn := newHarness(t, nil)
	var beatA, beatB uint64
	pending := 5
	hn.h.AddLane(Lane{Name: "shard-0", Progress: func() uint64 { return beatA }, Pending: func() int { return pending }})
	hn.h.AddLane(Lane{Name: "shard-1", Progress: func() uint64 { return beatB }, Pending: func() int { return pending }})

	// Both lanes making progress: healthy.
	for i := 0; i < 5; i++ {
		beatA++
		beatB++
		hn.check(t, 1)
	}
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("state with live lanes = %v, want healthy", st)
	}

	// Freeze lane A with work queued; B keeps beating. StallRounds=3
	// consecutive frozen checks flag it.
	for i := 0; i < 4; i++ {
		beatB++
		hn.check(t, 1)
	}
	if st := hn.h.State(); st != StateDegraded {
		t.Fatalf("state with one frozen lane = %v, want degraded", st)
	}
	if v := hn.gaugeValue(); v != int64(StateDegraded) {
		t.Fatalf("ipsa_health_state = %d, want %d", v, StateDegraded)
	}
	if !hn.hasEvent("health_degraded") {
		t.Fatal("no health_degraded event after lane stall")
	}
	st := hn.h.Status(0)
	var stalled int
	for _, l := range st.Lanes {
		if l.State == "stalled" {
			stalled++
		}
	}
	if stalled != 1 {
		t.Fatalf("stalled lanes in status = %d, want 1", stalled)
	}

	// Lane A wakes up: recovery.
	beatA++
	beatB++
	hn.check(t, 1)
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("state after recovery = %v, want healthy", st)
	}
	if !hn.hasEvent("health_recovered") {
		t.Fatal("no health_recovered event after lane recovery")
	}
}

// TestWatchdogTMEmptyGuard freezes a heartbeat with NO work queued: an
// idle lane must never be flagged, no matter how long it sits.
func TestWatchdogTMEmptyGuard(t *testing.T) {
	hn := newHarness(t, nil)
	hn.h.AddLane(Lane{Name: "shard-0", Progress: func() uint64 { return 42 }, Pending: func() int { return 0 }})
	hn.check(t, 20)
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("idle lane flagged: state = %v, want healthy", st)
	}
}

// TestWatchdogAllLanesStalled: when every lane is frozen with work
// queued the verdict escalates from degraded to stalled.
func TestWatchdogAllLanesStalled(t *testing.T) {
	hn := newHarness(t, nil)
	hn.h.AddLane(Lane{Name: "shard-0", Progress: func() uint64 { return 7 }, Pending: func() int { return 3 }})
	hn.h.AddLane(Lane{Name: "shard-1", Progress: func() uint64 { return 9 }, Pending: func() int { return 3 }})
	hn.check(t, 5)
	if st := hn.h.State(); st != StateStalled {
		t.Fatalf("state with all lanes frozen = %v, want stalled", st)
	}
	if !hn.hasEvent("health_stalled") {
		t.Fatal("no health_stalled event")
	}
}

// TestReconfigDeadline starts a drain-and-swap that never finishes: the
// monitor must report it wedged (degraded + event) instead of hanging,
// and clear once the op completes.
func TestReconfigDeadline(t *testing.T) {
	hn := newHarness(t, nil)
	done := hn.h.BeginOp("apply_patch", "cafebabe")

	// Within the 2s default deadline: still healthy.
	hn.check(t, 1)
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("state before deadline = %v, want healthy", st)
	}
	// Past the deadline: wedged.
	hn.check(t, 3)
	if st := hn.h.State(); st != StateDegraded {
		t.Fatalf("state past deadline = %v, want degraded", st)
	}
	if !hn.hasEvent("health_degraded") {
		t.Fatal("no health_degraded event for the wedged reconfiguration")
	}
	var wedgedDetail bool
	for _, ev := range hn.events.Dump(0) {
		if ev.Kind == "health_degraded" && strings.Contains(ev.Detail, "wedged") &&
			ev.ConfigHash == "cafebabe" {
			wedgedDetail = true
		}
	}
	if !wedgedDetail {
		t.Fatal("wedged event lacks op detail/config hash")
	}
	st := hn.h.Status(0)
	if len(st.Ops) != 1 || !st.Ops[0].Wedged {
		t.Fatalf("status ops = %+v, want one wedged op", st.Ops)
	}

	// The drain finally completes: op pruned, state recovers.
	done()
	hn.check(t, 1)
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("state after op completion = %v, want healthy", st)
	}
	if n := len(hn.h.Status(0).Ops); n != 0 {
		t.Fatalf("ops after completion = %d, want 0", n)
	}
}

// TestDropSpikeAfterApply: a reconfiguration event arms the verdict-
// delta anomaly check; a post-apply drop-rate spike beyond baseline
// degrades the switch, and it recovers when the loss subsides.
func TestDropSpikeAfterApply(t *testing.T) {
	var packets, drops uint64
	hn := newHarness(t, func(o *Options) {
		o.Window = 3 * time.Second
		o.Packets = func() uint64 { return packets }
		o.Drops = func() uint64 { return drops }
	})

	// Clean traffic history.
	for i := 0; i < 5; i++ {
		packets += 1000
		hn.check(t, 1)
	}
	// The reconfiguration lands...
	hn.events.Append(telemetry.Event{Kind: "apply_patch", ConfigHash: "deadbeef"})
	// ...and drops surge: 50% loss, far beyond the ~0 baseline.
	for i := 0; i < 3; i++ {
		packets += 1000
		drops += 500
		hn.check(t, 1)
	}
	if st := hn.h.State(); st != StateDegraded {
		t.Fatalf("state during post-apply drop spike = %v, want degraded", st)
	}
	if !hn.hasEvent("health_degraded") {
		t.Fatal("no health_degraded event for the drop spike")
	}

	// Loss stops; once the window slides clear the switch recovers.
	for i := 0; i < 10; i++ {
		packets += 1000
		hn.check(t, 1)
	}
	if st := hn.h.State(); st != StateHealthy {
		t.Fatalf("state after spike cleared = %v, want healthy (reason %q)",
			st, hn.h.Status(0).Reason)
	}
}

// TestHTTPEndpoints drives /health, /healthz and /readyz over real HTTP.
func TestHTTPEndpoints(t *testing.T) {
	ready := false
	hn := newHarness(t, func(o *Options) {
		o.Ready = func() bool { return ready }
	})
	mux := http.NewServeMux()
	hn.h.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz unready = %d, want 503", code)
	}
	ready = true
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz ready = %d, want 200", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz healthy = %d, want 200", code)
	}
	if code := get("/health?window=5s&rates=1"); code != http.StatusOK {
		t.Fatalf("/health = %d, want 200", code)
	}

	// All lanes stalled → stalled → liveness fails.
	hn.h.AddLane(Lane{Name: "shard-0", Progress: func() uint64 { return 1 }, Pending: func() int { return 1 }})
	hn.check(t, 5)
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz stalled = %d, want 503", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz stalled = %d, want 503", code)
	}
}
