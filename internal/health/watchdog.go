package health

import (
	"sync/atomic"
	"time"

	"ipsa/internal/telemetry"
)

// Lane is one monitored execution lane: a shard worker or a pipelined
// egress worker. Progress is a monotonic heartbeat the lane stamps as it
// does work; Pending is how much work is queued for it (its input channel
// plus TM occupancy). A lane is flagged stalled when its heartbeat is
// frozen across StallRounds consecutive checks while Pending stays
// positive — the TM-empty guard, since an idle lane's frozen heartbeat
// is just an idle lane.
type Lane struct {
	Name     string
	Progress func() uint64
	Pending  func() int
	// Series optionally names a ring column whose windowed rate is this
	// lane's throughput (e.g. ipsa_shard_rx_frames_total{shard=i}).
	Series       string
	SeriesLabels []telemetry.Label

	last    uint64
	primed  bool
	rounds  int
	stalled bool
}

// LaneStatus is the exported view of one lane.
type LaneStatus struct {
	Name      string  `json:"name"`
	State     string  `json:"state"` // "ok" or "stalled"
	Heartbeat uint64  `json:"heartbeat"`
	Pending   int     `json:"pending"`
	RatePPS   float64 `json:"rate_pps,omitempty"`
}

// op is one tracked reconfiguration critical section — the drain-and-swap
// inside a legacy ApplyConfig/applyPatch/SetInt, or the retirement of a
// superseded program version on the hitless path. If done isn't called
// (or check doesn't report completion) before the deadline, the monitor
// reports the reconfiguration as wedged — turning a silent hang into a
// degraded event with the op's age attached.
type op struct {
	kind       string
	configHash string
	start      int64
	deadline   int64 // nanos allowed before the op counts as wedged
	done       atomic.Bool
	// check, when set, is polled each health tick; returning true
	// completes the op without an explicit done call. The epoch store
	// uses it to watch a retired version's in-flight count drain to zero.
	check   func() bool
	flagged bool // wedged event already emitted
}

// OpStatus is the exported view of one in-flight reconfiguration.
type OpStatus struct {
	Kind       string `json:"kind"`
	ConfigHash string `json:"config_hash,omitempty"`
	AgeNanos   int64  `json:"age_nanos"`
	Wedged     bool   `json:"wedged"`
}

// BeginOp records the start of a reconfiguration critical section and
// returns its completion callback. The caller invokes the callback when
// the drain-and-swap finishes (normally microseconds later); a nil
// *Health is safe and returns a no-op.
func (h *Health) BeginOp(kind, configHash string) func() {
	if h == nil {
		return func() {}
	}
	o := &op{kind: kind, configHash: configHash, start: h.now(), deadline: h.o.ReconfigDeadline.Nanoseconds()}
	h.mu.Lock()
	h.ops = append(h.ops, o)
	h.mu.Unlock()
	return func() { o.done.Store(true) }
}

// BeginOpWatch is BeginOp for operations whose completion is observed
// rather than signalled: check is polled each health tick and the op
// completes once it returns true. The hitless reconfiguration path uses
// it to track a retired program version until its in-flight packet count
// drains to zero — the epoch-store replacement for the drain deadline.
func (h *Health) BeginOpWatch(kind, configHash string, check func() bool) {
	if h == nil {
		return
	}
	o := &op{kind: kind, configHash: configHash, start: h.now(),
		deadline: h.o.ReconfigDeadline.Nanoseconds(), check: check}
	h.mu.Lock()
	h.ops = append(h.ops, o)
	h.mu.Unlock()
}

// AddLane registers a lane with the watchdog. Called by the forwarding
// mode at start-up (RunSharded registers one lane per shard, RunPipelined
// one per egress worker).
func (h *Health) AddLane(l Lane) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ln := l
	h.lanes = append(h.lanes, &ln)
}

// checkLanesLocked advances every lane's stall detector and returns how
// many are currently stalled.
func (h *Health) checkLanesLocked() (stalled int) {
	for _, l := range h.lanes {
		prog := l.Progress()
		pending := 0
		if l.Pending != nil {
			pending = l.Pending()
		}
		if !l.primed {
			l.primed, l.last = true, prog
			continue
		}
		if prog == l.last && pending > 0 {
			l.rounds++
		} else {
			l.rounds = 0
		}
		l.last = prog
		was := l.stalled
		l.stalled = l.rounds >= h.o.StallRounds
		if l.stalled != was {
			if l.stalled {
				h.log.Warn("lane stalled: heartbeat frozen with work queued",
					"lane", l.Name, "heartbeat", prog, "pending", pending,
					"rounds", l.rounds)
			} else {
				h.log.Info("lane recovered", "lane", l.Name, "heartbeat", prog)
			}
		}
		if l.stalled {
			stalled++
		}
	}
	return stalled
}

// checkOpsLocked prunes completed reconfigurations and returns how many
// are wedged (past their deadline), emitting a degraded event the first
// time each one crosses it.
func (h *Health) checkOpsLocked(now int64) (wedged int) {
	kept := h.ops[:0]
	for _, o := range h.ops {
		if o.done.Load() || (o.check != nil && o.check()) {
			continue
		}
		kept = append(kept, o)
		age := now - o.start
		if o.deadline > 0 && age > o.deadline {
			wedged++
			if !o.flagged {
				o.flagged = true
				h.log.Warn("reconfiguration wedged: swap or epoch retirement past deadline",
					"kind", o.kind, "config_hash", o.configHash,
					"age", time.Duration(age), "deadline", time.Duration(o.deadline))
				h.events.Append(telemetry.Event{
					Kind:       "health_degraded",
					ConfigHash: o.configHash,
					Detail: "reconfiguration wedged: " + o.kind + " held " +
						time.Duration(age).String() + " (deadline " +
						time.Duration(o.deadline).String() + ")",
				})
			}
		}
	}
	h.ops = kept
	return wedged
}
