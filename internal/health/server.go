package health

import (
	"encoding/json"
	"net/http"
	"time"
)

// Register mounts the health endpoints on mux (typically the one built
// by telemetry.NewServeMux):
//
//	/health   — JSON Status; ?window=5s overrides the rate window,
//	            ?rates=1 appends the full per-series windowed dump
//	/healthz  — liveness: 200 unless the switch is stalled (503)
//	/readyz   — readiness: 200 once a configuration is installed and the
//	            switch is not stalled
func (h *Health) Register(mux *http.ServeMux) {
	mux.HandleFunc("/health", func(w http.ResponseWriter, req *http.Request) {
		window := time.Duration(0)
		if v := req.URL.Query().Get("window"); v != "" {
			if d, err := time.ParseDuration(v); err == nil && d > 0 {
				window = d
			}
		}
		st := h.Status(window)
		if req.URL.Query().Get("rates") == "1" {
			st.Rates = h.ring.Rates(windowOrDefault(window, h))
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state := h.State()
		if state == StateStalled {
			http.Error(w, state.String(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(state.String() + "\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		state := h.State()
		if !h.Ready() || state == StateStalled {
			http.Error(w, "not ready ("+state.String()+")", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}

func windowOrDefault(w time.Duration, h *Health) time.Duration {
	if w > 0 {
		return w
	}
	return h.o.Window
}
