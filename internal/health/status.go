package health

import (
	"time"

	"ipsa/internal/telemetry"
	"ipsa/internal/verdict"
)

// Status is the health_query / GET /health payload: the aggregate
// verdict plus the windowed rates an operator asks for first. rp4ctl top
// renders it directly.
type Status struct {
	State       string `json:"state"`
	Reason      string `json:"reason,omitempty"`
	SinceNanos  int64  `json:"since_nanos"`
	UptimeNanos int64  `json:"uptime_nanos"`
	WindowNanos int64  `json:"window_nanos"`
	Samples     int    `json:"samples"`

	PPS          float64 `json:"pps"`
	DropPPS      float64 `json:"drop_pps"`
	DropFraction float64 `json:"drop_fraction"`
	TMDepth      int     `json:"tm_depth"`

	// DropCauses breaks the loss rate down by verdict (dropped, tm_drop,
	// no_port, ...) over the window.
	DropCauses map[string]float64 `json:"drop_causes,omitempty"`
	// Latency is the windowed switch-wide per-TSP latency distribution
	// (sampled), when latency histograms are registered.
	Latency *HistWindow `json:"latency,omitempty"`

	Lanes []LaneStatus `json:"lanes,omitempty"`
	Ops   []OpStatus   `json:"ops,omitempty"`

	// LastEvent is the newest audit-ring entry (reconfigurations and
	// health transitions).
	LastEvent *telemetry.Event `json:"last_event,omitempty"`

	// Rates carries the full per-series windowed dump when requested
	// (GET /health?rates=1).
	Rates []Rate `json:"rates,omitempty"`
}

// dropVerdicts are the verdict label values that count as loss.
var dropVerdicts = map[string]bool{
	verdict.StrDropped:    true,
	verdict.StrTMDrop:     true,
	verdict.StrNoPort:     true,
	verdict.StrParseError: true,
}

// Status assembles the exported view over the given window (<= 0 uses
// the configured default). Query path: allocates freely.
func (h *Health) Status(window time.Duration) *Status {
	if h == nil {
		return &Status{State: StateHealthy.String()}
	}
	if window <= 0 {
		window = h.o.Window
	}
	now := h.now()

	h.mu.Lock()
	st := &Status{
		State:       h.state.String(),
		Reason:      h.reason,
		SinceNanos:  h.stateSince,
		UptimeNanos: now - h.startNanos,
		WindowNanos: window.Nanoseconds(),
	}
	st.PPS, st.DropPPS, st.DropFraction = h.dropFractionLocked(now, window)
	lanes := make([]*Lane, len(h.lanes))
	copy(lanes, h.lanes)
	laneStalled := make([]bool, len(lanes))
	laneBeat := make([]uint64, len(lanes))
	lanePending := make([]int, len(lanes))
	for i, l := range lanes {
		laneStalled[i] = l.stalled
		laneBeat[i] = l.Progress()
		if l.Pending != nil {
			lanePending[i] = l.Pending()
		}
	}
	for _, o := range h.ops {
		if o.done.Load() {
			continue
		}
		age := now - o.start
		st.Ops = append(st.Ops, OpStatus{
			Kind: o.kind, ConfigHash: o.configHash, AgeNanos: age,
			Wedged: o.deadline > 0 && age > o.deadline,
		})
	}
	h.mu.Unlock()

	st.Samples = h.ring.Samples()
	if h.o.TMDepth != nil {
		st.TMDepth = h.o.TMDepth()
	}
	for i, l := range lanes {
		ls := LaneStatus{Name: l.Name, State: "ok", Heartbeat: laneBeat[i], Pending: lanePending[i]}
		if laneStalled[i] {
			ls.State = "stalled"
		}
		if l.Series != "" {
			if r, ok := h.ring.RateOf(l.Series, window, l.SeriesLabels...); ok {
				ls.RatePPS = r.PerSec
			}
		}
		st.Lanes = append(st.Lanes, ls)
	}
	// Drop-cause breakdown from the per-verdict counter family.
	for _, r := range h.ring.Rates(window) {
		if r.Name != h.o.VerdictSeries {
			continue
		}
		for _, l := range r.Labels {
			if l.Key == "verdict" && dropVerdicts[l.Value] && r.PerSec > 0 {
				if st.DropCauses == nil {
					st.DropCauses = make(map[string]float64)
				}
				st.DropCauses[l.Value] += r.PerSec
			}
		}
	}
	if hw, ok := h.ring.HistWindowSum(h.o.LatencySeries, window); ok {
		st.Latency = &hw
	}
	if ev, ok := h.events.Last(); ok {
		st.LastEvent = &ev
	}
	return st
}
