package health

import (
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/telemetry"
)

// State is the switch's aggregate health verdict, exported as the
// ipsa_health_state gauge (0 healthy, 1 degraded, 2 stalled).
type State int32

const (
	StateHealthy State = iota
	StateDegraded
	StateStalled
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateStalled:
		return "stalled"
	}
	return "unknown"
}

// Options configures a Health instance.
type Options struct {
	Registry *telemetry.Registry // required
	Events   *telemetry.EventLog // optional: audit ring for transitions
	Log      *slog.Logger        // optional: defaults to slog.Default()

	// Interval is the sampler/monitor cadence (default 1s). Negative
	// disables the background ticker entirely — tests drive Check()
	// manually with synthetic clocks.
	Interval time.Duration
	// Window is the default rate window (default 10s).
	Window time.Duration
	// RingSize is the number of retained samples (default 120 — two
	// minutes of history at the default cadence).
	RingSize int
	// StallRounds is how many consecutive no-progress-while-pending
	// checks flag a lane stalled (default 3).
	StallRounds int
	// ReconfigDeadline bounds a drain-and-swap critical section before
	// it is reported wedged (default 2s).
	ReconfigDeadline time.Duration
	// DropSpikeFraction and DropSpikeFactor parameterize the post-apply
	// anomaly check: the windowed drop fraction must exceed both the
	// absolute floor (default 0.05) and baseline*factor (default 2) to
	// count as a spike.
	DropSpikeFraction float64
	DropSpikeFactor   float64
	// SpikeChecks is how many checks after a reconfiguration the
	// verdict-delta anomaly detector stays armed (default 5).
	SpikeChecks int

	// Packets and Drops feed the switch-level throughput history:
	// cumulative packets seen and packets lost. Feeders should count
	// only unexpected losses (congestion, misrouting, parse failures) —
	// not intentional policy drops — so the drop-spike detector flags
	// faults, not firewalls. Optional; without them PPS and the spike
	// check are disabled.
	Packets func() uint64
	Drops   func() uint64
	// TMDepth reports current traffic-manager occupancy across shards.
	TMDepth func() int
	// Ready gates /readyz — typically "a configuration is installed".
	Ready func() bool
	// VerdictSeries names the per-verdict counter family used for the
	// drop-cause breakdown (default ipsa_packets_total, label "verdict").
	VerdictSeries string
	// LatencySeries names the histogram family folded into the windowed
	// latency quantiles (default ipsa_tsp_latency_seconds).
	LatencySeries string

	// Now overrides the clock (UnixNano) for tests.
	Now func() int64
}

// histSample is one point of the switch-level throughput history.
type histSample struct {
	t       int64
	packets uint64
	drops   uint64
}

const histSlots = 128

// Health assembles the ring, the watchdog lanes, the reconfiguration
// deadline tracker and the state machine into one monitor.
type Health struct {
	o      Options
	ring   *Ring
	log    *slog.Logger
	events *telemetry.EventLog
	gauge  *telemetry.Gauge

	startNanos int64

	mu         sync.Mutex
	lanes      []*Lane
	ops        []*op
	state      State
	stateSince int64
	reason     string

	hist    [histSlots]histSample
	histPos int
	histN   int

	lastEventSeq uint64
	spikeLeft    int
	spikeBase    float64
	spikeKind    string
	spikeActive  bool

	running atomic.Bool
	stopCh  chan struct{}
}

// New builds a Health over o.Registry. Call Start to begin sampling.
func New(o Options) *Health {
	if o.Interval == 0 {
		o.Interval = time.Second
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.RingSize <= 0 {
		o.RingSize = 120
	}
	if o.StallRounds <= 0 {
		o.StallRounds = 3
	}
	if o.ReconfigDeadline == 0 {
		o.ReconfigDeadline = 2 * time.Second
	}
	if o.DropSpikeFraction <= 0 {
		o.DropSpikeFraction = 0.05
	}
	if o.DropSpikeFactor <= 0 {
		o.DropSpikeFactor = 2
	}
	if o.SpikeChecks <= 0 {
		o.SpikeChecks = 5
	}
	if o.VerdictSeries == "" {
		o.VerdictSeries = "ipsa_packets_total"
	}
	if o.LatencySeries == "" {
		o.LatencySeries = "ipsa_tsp_latency_seconds"
	}
	if o.Log == nil {
		o.Log = slog.Default()
	}
	h := &Health{
		o:      o,
		ring:   NewRing(o.Registry, o.RingSize),
		log:    o.Log,
		events: o.Events,
		stopCh: make(chan struct{}),
	}
	h.startNanos = h.now()
	h.stateSince = h.startNanos
	if o.Registry != nil {
		h.gauge = o.Registry.Gauge("ipsa_health_state")
		h.gauge.Set(int64(StateHealthy))
	}
	return h
}

func (h *Health) now() int64 {
	if h.o.Now != nil {
		return h.o.Now()
	}
	return time.Now().UnixNano()
}

// Ring exposes the time-series ring for direct rate queries.
func (h *Health) Ring() *Ring { return h.ring }

// AddColumn tracks an explicitly wired series in the ring.
func (h *Health) AddColumn(c Column) {
	if h == nil {
		return
	}
	h.ring.AddColumn(c)
}

// State reports the current aggregate verdict.
func (h *Health) State() State {
	if h == nil {
		return StateHealthy
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Ready reports whether the switch is ready to serve (a configuration is
// installed). Separate from liveness: a stalled switch is alive but not
// well.
func (h *Health) Ready() bool {
	if h == nil {
		return false
	}
	if h.o.Ready == nil {
		return true
	}
	return h.o.Ready()
}

// Start launches the sampler/monitor goroutine. Idempotent; a negative
// Interval (manual mode, tests) makes it a no-op.
func (h *Health) Start() {
	if h == nil || h.o.Interval < 0 {
		return
	}
	if !h.running.CompareAndSwap(false, true) {
		return
	}
	go h.loop()
}

// Stop halts the background goroutine. Idempotent.
func (h *Health) Stop() {
	if h == nil {
		return
	}
	if h.running.CompareAndSwap(true, false) {
		close(h.stopCh)
	}
}

func (h *Health) loop() {
	t := time.NewTicker(h.o.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stopCh:
			return
		case <-t.C:
			h.Check(h.now())
		}
	}
}

// Check runs one sampler+monitor pass at the given timestamp: tick the
// ring, advance the lane stall detectors, age the reconfiguration
// deadline tracker, run the post-apply drop-spike check, and move the
// state machine. Safe to call concurrently with the ticker (tests drive
// it directly with synthetic clocks).
func (h *Health) Check(now int64) {
	h.ring.Tick(now)

	h.mu.Lock()
	defer h.mu.Unlock()

	// Switch-level throughput history for PPS and the spike check.
	if h.o.Packets != nil {
		s := histSample{t: now, packets: h.o.Packets()}
		if h.o.Drops != nil {
			s.drops = h.o.Drops()
		}
		h.hist[h.histPos] = s
		h.histPos = (h.histPos + 1) % histSlots
		if h.histN < histSlots {
			h.histN++
		}
	}

	stalledLanes := h.checkLanesLocked()
	wedgedOps := h.checkOpsLocked(now)
	h.checkSpikeLocked()

	target := StateHealthy
	var why string
	if stalledLanes > 0 {
		if stalledLanes == len(h.lanes) {
			target = StateStalled
		} else {
			target = StateDegraded
		}
		why = appendReason(why, itoa(stalledLanes)+"/"+itoa(len(h.lanes))+" lanes stalled")
	}
	if wedgedOps > 0 {
		if target < StateDegraded {
			target = StateDegraded
		}
		why = appendReason(why, itoa(wedgedOps)+" reconfiguration(s) wedged")
	}
	if h.spikeActive {
		if target < StateDegraded {
			target = StateDegraded
		}
		why = appendReason(why, "drop-rate spike after "+h.spikeKind)
	}
	h.transitionLocked(now, target, why)
}

func appendReason(sum, r string) string {
	if sum == "" {
		return r
	}
	return sum + "; " + r
}

func itoa(n int) string {
	// strconv.Itoa without the import churn for two call sites would be
	// silly — but this also keeps the healthy path allocation-quiet,
	// since reasons are only built when something is wrong.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// dropFractionLocked computes the windowed drop fraction and rates from
// the throughput history.
func (h *Health) dropFractionLocked(now int64, window time.Duration) (pps, dropPPS, frac float64) {
	if h.histN < 2 {
		return 0, 0, 0
	}
	newest := h.hist[(h.histPos-1+histSlots)%histSlots]
	cutoff := now - window.Nanoseconds()
	oldest := newest
	for i := 1; i < h.histN; i++ {
		s := h.hist[((h.histPos-1-i)%histSlots+histSlots)%histSlots]
		if s.t < cutoff {
			break
		}
		oldest = s
	}
	dt := float64(newest.t-oldest.t) / float64(time.Second)
	if dt <= 0 {
		return 0, 0, 0
	}
	dp := float64(newest.packets - oldest.packets)
	dd := float64(newest.drops - oldest.drops)
	pps = dp / dt
	dropPPS = dd / dt
	if dp > 0 {
		frac = dd / dp
	}
	return pps, dropPPS, frac
}

// checkSpikeLocked arms on a fresh reconfiguration event and, while
// armed, compares the windowed drop fraction against the pre-apply
// baseline. A spike marks the switch degraded and drops a verdict into
// the event ring; recovery clears once the fraction is back under the
// floor.
func (h *Health) checkSpikeLocked() {
	if h.events == nil || h.o.Packets == nil {
		return
	}
	now := h.hist[(h.histPos-1+histSlots)%histSlots].t
	_, _, frac := h.dropFractionLocked(now, h.o.Window)
	if seq := h.events.LastSeq(); seq != h.lastEventSeq {
		if ev, ok := h.events.Last(); ok && isReconfigKind(ev.Kind) {
			h.spikeLeft = h.o.SpikeChecks
			h.spikeBase = frac
			h.spikeKind = ev.Kind
		}
		h.lastEventSeq = seq
	}
	if h.spikeLeft > 0 {
		h.spikeLeft--
		if frac > h.o.DropSpikeFraction && frac > h.spikeBase*h.o.DropSpikeFactor {
			if !h.spikeActive {
				h.spikeActive = true
				h.log.Warn("drop-rate spike after reconfiguration",
					"kind", h.spikeKind, "drop_fraction", frac,
					"baseline", h.spikeBase)
				h.events.Append(telemetry.Event{
					Kind: "health_degraded",
					Detail: "drop-rate spike after " + h.spikeKind +
						": windowed drop fraction exceeded baseline",
				})
			}
			h.spikeLeft = h.o.SpikeChecks // keep armed while spiking
		}
	} else if h.spikeActive && frac <= h.o.DropSpikeFraction {
		h.spikeActive = false
	}
}

func isReconfigKind(kind string) bool {
	return strings.HasPrefix(kind, "apply") || strings.HasPrefix(kind, "int_") ||
		strings.HasPrefix(kind, "edit")
}

// transitionLocked moves the state machine, logging and recording each
// transition in the audit ring and the ipsa_health_state gauge.
func (h *Health) transitionLocked(now int64, target State, why string) {
	if target == h.state {
		if why != "" {
			h.reason = why
		}
		return
	}
	prev := h.state
	h.state = target
	h.stateSince = now
	h.reason = why
	if h.gauge != nil {
		h.gauge.Set(int64(target))
	}
	kind := "health_recovered"
	switch target {
	case StateDegraded:
		kind = "health_degraded"
	case StateStalled:
		kind = "health_stalled"
	}
	detail := prev.String() + " -> " + target.String()
	if why != "" {
		detail += ": " + why
	}
	switch target {
	case StateHealthy:
		h.log.Info("health state transition", "from", prev.String(), "to", target.String())
	default:
		h.log.Warn("health state transition", "from", prev.String(), "to", target.String(), "reason", why)
	}
	h.events.Append(telemetry.Event{Kind: kind, Detail: detail})
}
