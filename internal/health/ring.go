// Package health is the switch's self-diagnosis layer: a fixed-size
// time-series ring over the telemetry registry serving windowed rates, a
// watchdog monitor over per-shard/per-pipeline heartbeats and
// reconfiguration deadlines, a healthy→degraded→stalled state machine
// exported as ipsa_health_state, and the /health, /healthz and /readyz
// endpoints plus the CCM health_query payload that rp4ctl top renders.
package health

import (
	"sort"
	"sync"
	"time"

	"ipsa/internal/telemetry"
)

// Column is one explicitly wired series: state that is not a registered
// handle (collector-backed values like TM depth sums or pipeline totals)
// but that the ring should still track. Read must be safe from the
// sampler goroutine and allocation-free — it runs on every tick.
type Column struct {
	Name   string
	Labels []telemetry.Label
	Kind   string // "counter" or "gauge"
	Read   func() float64
}

// ringCol is one tracked scalar series with its per-slot sample buffer.
type ringCol struct {
	key    string
	name   string
	labels []telemetry.Label
	kind   string
	read   func() float64
	vals   []float64
	valid  int // samples written so far, capped at capacity
}

// ringHist is one tracked histogram: full bucket snapshots per slot so
// queries can compute quantiles of the windowed delta, not of all time.
type ringHist struct {
	key    string
	name   string
	labels []telemetry.Label
	h      *telemetry.Histogram
	vals   [][telemetry.HistBuckets]uint64
	valid  int
}

// Ring snapshots every registered counter/gauge (and any explicitly
// added column) into a fixed-size circular buffer on each Tick. The tick
// path is allocation-free in steady state: the column list is rebuilt
// only when the registry's generation moves (a series was registered or
// unregistered), and each sample lands in a preallocated slot.
type Ring struct {
	reg      *telemetry.Registry
	capacity int

	mu    sync.Mutex
	times []int64 // UnixNano per slot
	pos   int     // next slot to write
	n     int     // slots filled, capped at capacity

	auto    []ringCol // discovered from the registry, rebuilt on gen change
	extra   []ringCol // wired via AddColumn, never rebuilt
	hists   []ringHist
	gen     uint64
	tracked bool
}

// NewRing builds a ring of capacity slots over reg (which may be nil for
// a ring fed only by explicit columns).
func NewRing(reg *telemetry.Registry, capacity int) *Ring {
	if capacity < 8 {
		capacity = 8
	}
	return &Ring{reg: reg, capacity: capacity, times: make([]int64, capacity)}
}

// Capacity reports the number of slots.
func (r *Ring) Capacity() int { return r.capacity }

// Samples reports how many slots currently hold data.
func (r *Ring) Samples() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// AddColumn tracks an explicitly wired series alongside the
// registry-discovered ones.
func (r *Ring) AddColumn(c Column) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := telemetry.SeriesKey(c.Name, c.Labels)
	for i := range r.extra {
		if r.extra[i].key == key {
			r.extra[i].read = c.Read
			return
		}
	}
	r.extra = append(r.extra, ringCol{
		key: key, name: c.Name, labels: append([]telemetry.Label(nil), c.Labels...),
		kind: c.Kind, read: c.Read, vals: make([]float64, r.capacity),
	})
}

// rebuildLocked re-enumerates the registry, preserving the sample
// buffers of series that survived (matched by key) so rates keep their
// history across a rebuild. New series start with an empty buffer.
func (r *Ring) rebuildLocked() {
	old := make(map[string]*ringCol, len(r.auto))
	for i := range r.auto {
		old[r.auto[i].key] = &r.auto[i]
	}
	scalars := r.reg.Scalars()
	next := make([]ringCol, 0, len(scalars))
	for i := range scalars {
		h := &scalars[i]
		if prev, ok := old[h.Key]; ok {
			prev.read = h.Read
			next = append(next, *prev)
			continue
		}
		next = append(next, ringCol{
			key: h.Key, name: h.Name, labels: h.Labels, kind: h.Kind,
			read: h.Read, vals: make([]float64, r.capacity),
		})
	}
	r.auto = next

	oldH := make(map[string]*ringHist, len(r.hists))
	for i := range r.hists {
		oldH[r.hists[i].key] = &r.hists[i]
	}
	handles := r.reg.HistogramHandles()
	nextH := make([]ringHist, 0, len(handles))
	for _, h := range handles {
		if prev, ok := oldH[h.Key]; ok {
			nextH = append(nextH, *prev)
			continue
		}
		nextH = append(nextH, ringHist{
			key: h.Key, name: h.Name, labels: h.Labels, h: h.Hist,
			vals: make([][telemetry.HistBuckets]uint64, r.capacity),
		})
	}
	r.hists = nextH
}

// Tick samples every tracked series into the next slot. Zero-alloc in
// steady state; allocates only when the registry gained or lost series
// since the previous tick.
func (r *Ring) Tick(nowNanos int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reg != nil {
		if g := r.reg.Generation(); !r.tracked || g != r.gen {
			r.rebuildLocked()
			r.gen, r.tracked = g, true
		}
	}
	slot := r.pos
	r.times[slot] = nowNanos
	for i := range r.auto {
		c := &r.auto[i]
		c.vals[slot] = c.read()
		if c.valid < r.capacity {
			c.valid++
		}
	}
	for i := range r.extra {
		c := &r.extra[i]
		c.vals[slot] = c.read()
		if c.valid < r.capacity {
			c.valid++
		}
	}
	for i := range r.hists {
		hh := &r.hists[i]
		hh.vals[slot] = hh.h.Snapshot()
		if hh.valid < r.capacity {
			hh.valid++
		}
	}
	r.pos = (r.pos + 1) % r.capacity
	if r.n < r.capacity {
		r.n++
	}
}

// Rate is one windowed reading of a tracked series: the newest sample,
// the delta across the window, and the per-second rate. For gauges Last
// is the current level and PerSec its slope.
type Rate struct {
	Name   string            `json:"name"`
	Labels []telemetry.Label `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Last   float64           `json:"last"`
	Delta  float64           `json:"delta"`
	PerSec float64           `json:"per_sec"`
}

// slotBack returns the slot index i samples behind the newest.
func (r *Ring) slotBack(i int) int {
	return ((r.pos-1-i)%r.capacity + r.capacity) % r.capacity
}

// windowSpanLocked picks the oldest retained sample within window of the
// newest one, honoring how many samples a column has (valid). It returns
// offsets-from-newest and the elapsed nanoseconds between them; ok is
// false when fewer than two usable samples exist.
func (r *Ring) windowSpanLocked(window time.Duration, valid int) (newest, oldest int, dtNanos int64, ok bool) {
	if valid > r.n {
		valid = r.n
	}
	if valid < 2 {
		return 0, 0, 0, false
	}
	tNew := r.times[r.slotBack(0)]
	cutoff := tNew - window.Nanoseconds()
	oldest = 1
	for i := 2; i < valid; i++ {
		if r.times[r.slotBack(i)] < cutoff {
			break
		}
		oldest = i
	}
	dtNanos = tNew - r.times[r.slotBack(oldest)]
	if dtNanos <= 0 {
		return 0, 0, 0, false
	}
	return 0, oldest, dtNanos, true
}

// rateOfColLocked computes the windowed rate for one column.
func (r *Ring) rateOfColLocked(c *ringCol, window time.Duration) (Rate, bool) {
	rate := Rate{Name: c.name, Labels: c.labels, Kind: c.kind}
	newest, oldest, dt, ok := r.windowSpanLocked(window, c.valid)
	if !ok {
		return rate, false
	}
	last := c.vals[r.slotBack(newest)]
	first := c.vals[r.slotBack(oldest)]
	delta := last - first
	// Counter-reset handling (a series unregistered and re-registered
	// restarts at zero): treat the newest value as the whole delta.
	if c.kind == "counter" && delta < 0 {
		delta = last
	}
	rate.Last = last
	rate.Delta = delta
	rate.PerSec = delta / (float64(dt) / float64(time.Second))
	return rate, true
}

// Rates returns the windowed rate of every tracked scalar series, sorted
// by name then labels. Query-path only; allocates.
func (r *Ring) Rates(window time.Duration) []Rate {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Rate, 0, len(r.auto)+len(r.extra))
	for i := range r.auto {
		if rate, ok := r.rateOfColLocked(&r.auto[i], window); ok {
			out = append(out, rate)
		}
	}
	for i := range r.extra {
		if rate, ok := r.rateOfColLocked(&r.extra[i], window); ok {
			out = append(out, rate)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsLess(out[i].Labels, out[j].Labels)
	})
	return out
}

func labelsLess(a, b []telemetry.Label) bool {
	return telemetry.SeriesKey("", a) < telemetry.SeriesKey("", b)
}

// RateOf returns the windowed rate of one series by name and labels.
func (r *Ring) RateOf(name string, window time.Duration, labels ...telemetry.Label) (Rate, bool) {
	key := telemetry.SeriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.auto {
		if r.auto[i].key == key {
			return r.rateOfColLocked(&r.auto[i], window)
		}
	}
	for i := range r.extra {
		if r.extra[i].key == key {
			return r.rateOfColLocked(&r.extra[i], window)
		}
	}
	return Rate{Name: name, Labels: labels}, false
}

// HistWindow is the windowed view of a histogram: observations and
// bucket-interpolated quantiles over the window's delta, not all time.
type HistWindow struct {
	Name   string            `json:"name"`
	Labels []telemetry.Label `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	P50    float64           `json:"p50_nanos"`
	P90    float64           `json:"p90_nanos"`
	P99    float64           `json:"p99_nanos"`
}

func histDelta(newSnap, oldSnap *[telemetry.HistBuckets]uint64, delta []uint64) (total uint64) {
	for i := 0; i < telemetry.HistBuckets; i++ {
		d := int64(newSnap[i]) - int64(oldSnap[i])
		if d < 0 {
			d = 0
		}
		delta[i] = uint64(d)
		total += uint64(d)
	}
	return total
}

// HistWindowSum sums the windowed bucket deltas of every histogram
// series named name (e.g. per-TSP latency samples folded into one
// switch-wide distribution) and returns its quantiles. ok is false when
// no series produced observations in the window.
func (r *Ring) HistWindowSum(name string, window time.Duration) (HistWindow, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hw := HistWindow{Name: name}
	sum := make([]uint64, telemetry.HistBuckets)
	delta := make([]uint64, telemetry.HistBuckets)
	var total uint64
	for i := range r.hists {
		hh := &r.hists[i]
		if hh.name != name {
			continue
		}
		newest, oldest, _, ok := r.windowSpanLocked(window, hh.valid)
		if !ok {
			continue
		}
		total += histDelta(&hh.vals[r.slotBack(newest)], &hh.vals[r.slotBack(oldest)], delta)
		for b := range sum {
			sum[b] += delta[b]
		}
	}
	if total == 0 {
		return hw, false
	}
	hw.Count = total
	hw.P50 = telemetry.WindowQuantile(sum, total, 0.5)
	hw.P90 = telemetry.WindowQuantile(sum, total, 0.9)
	hw.P99 = telemetry.WindowQuantile(sum, total, 0.99)
	return hw, true
}
