package flowstat

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ipsa/internal/pkt"
)

func v4Frame(t testing.TB, srcPort uint16) []byte {
	t.Helper()
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: [6]byte{2, 0, 0, 0, 0, 1}, Src: [6]byte{2, 0, 0, 0, 0, 2}, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 1, 0, 1}},
		&pkt.TCP{SrcPort: srcPort, DstPort: 80, Seq: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func v6Frame(t testing.TB) []byte {
	t.Helper()
	src := [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 1}
	dst := [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 2}
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: [6]byte{2, 0, 0, 0, 0, 1}, Src: [6]byte{2, 0, 0, 0, 0, 2}, EtherType: pkt.EtherTypeIPv6},
		&pkt.IPv6{HopLimit: 64, NextHeader: pkt.IPProtoUDP, Src: src, Dst: dst},
		&pkt.UDP{SrcPort: 5353, DstPort: 53},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAccountAndDump: the basic accounting cycle — touches accumulate,
// finish records the verdict and latency, Dump exports the decoded
// five-tuple.
func TestAccountAndDump(t *testing.T) {
	s := NewSet(1, Config{TableBits: 4})
	tab := s.Lane(0)
	data := v4Frame(t, 4242)
	h := pkt.RSSHash(data)
	for i := 0; i < 3; i++ {
		tab.Touch(h, data, len(data), int64(i)*1000)
		tab.Finish(h, VerdictForwarded, 500, int64(i)*1000)
	}
	recs := s.Dump(0)
	if len(recs) != 1 {
		t.Fatalf("Dump returned %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Packets != 3 || r.Bytes != uint64(3*len(data)) {
		t.Errorf("packets=%d bytes=%d, want 3/%d", r.Packets, r.Bytes, 3*len(data))
	}
	if r.Src != "10.0.0.1" || r.Dst != "10.1.0.1" || r.Proto != 6 ||
		r.SrcPort != 4242 || r.DstPort != 80 {
		t.Errorf("tuple = %s:%d -> %s:%d proto=%d", r.Src, r.SrcPort, r.Dst, r.DstPort, r.Proto)
	}
	if r.Verdict != "forwarded" || r.Reason != "active" {
		t.Errorf("verdict=%q reason=%q", r.Verdict, r.Reason)
	}
	if r.LatAvgNanos != 500 || r.LatSamples != 3 {
		t.Errorf("lat avg=%d n=%d, want 500/3", r.LatAvgNanos, r.LatSamples)
	}
	if s.ActiveFlows() != 1 {
		t.Errorf("ActiveFlows = %d", s.ActiveFlows())
	}
}

// TestTupleV6: v6 addresses round-trip through the packed entry words.
func TestTupleV6(t *testing.T) {
	s := NewSet(1, Config{TableBits: 4})
	tab := s.Lane(0)
	data := v6Frame(t)
	h := pkt.RSSHash(data)
	tab.Touch(h, data, len(data), 0)
	recs := s.Dump(0)
	if len(recs) != 1 {
		t.Fatalf("Dump returned %d records", len(recs))
	}
	r := recs[0]
	if r.Src != "2001:db8::1" || r.Dst != "2001:db8::2" || r.Proto != 17 ||
		r.SrcPort != 5353 || r.DstPort != 53 {
		t.Errorf("tuple = %s:%d -> %s:%d proto=%d", r.Src, r.SrcPort, r.Dst, r.DstPort, r.Proto)
	}
}

// TestClashConservation: a table far smaller than the flow population
// must still conserve every packet — clash evictions emit records, the
// flush retires the remainder, and the record mass equals the touches.
func TestClashConservation(t *testing.T) {
	s := NewSet(1, Config{TableBits: 2}) // 4 slots
	tab := s.Lane(0)
	const flows, perFlow = 64, 7
	for f := 0; f < flows; f++ {
		data := v4Frame(t, uint16(1000+f))
		h := pkt.RSSHash(data)
		for i := 0; i < perFlow; i++ {
			tab.Touch(h, data, len(data), int64(i))
		}
	}
	s.FlushAll()
	if got := s.RecordPackets(); got != flows*perFlow {
		t.Fatalf("record packets = %d, want %d (conservation violated)", got, flows*perFlow)
	}
	if tab.Live() != 0 {
		t.Errorf("live = %d after flush", tab.Live())
	}
}

// TestIdleSweep: a flow idle past the bound is retired by the
// touch-amortized sweeper with reason "idle".
func TestIdleSweep(t *testing.T) {
	s := NewSet(1, Config{TableBits: 4, IdleNanos: 1000})
	tab := s.Lane(0)
	old := v4Frame(t, 1)
	tab.Touch(pkt.RSSHash(old), old, len(old), 0)
	// Drive another flow until the sweep trigger fires with a now far
	// past the first flow's idle bound.
	busy := v4Frame(t, 2)
	bh := pkt.RSSHash(busy)
	for i := 0; i < 2*sweepEvery; i++ {
		tab.Touch(bh, busy, len(busy), 1_000_000)
	}
	recs := s.Records(0)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 idle eviction", len(recs))
	}
	if recs[0].Reason != "idle" || recs[0].SrcPort != 1 {
		t.Errorf("record = %+v, want idle eviction of flow 1", recs[0])
	}
	if tab.Live() != 1 {
		t.Errorf("live = %d, want 1 (busy flow)", tab.Live())
	}
}

// TestHeavyHittersSurviveEviction: the defining property — a heavy flow
// displaced from the table keeps its mass visible through the
// space-saving summary and count-min sketch.
func TestHeavyHittersSurviveEviction(t *testing.T) {
	s := NewSet(1, Config{TableBits: 2, TopK: 4})
	tab := s.Lane(0)
	heavy := v4Frame(t, 9999)
	hh := pkt.RSSHash(heavy)
	for i := 0; i < 500; i++ {
		tab.Touch(hh, heavy, len(heavy), 0)
	}
	tab.Flush(0) // evict the heavy flow from the table entirely
	// Light-flow storm churns the table after the heavy flow is gone.
	for f := 0; f < 64; f++ {
		data := v4Frame(t, uint16(f))
		tab.Touch(pkt.RSSHash(data), data, len(data), 0)
	}
	top := s.HeavyHitters(3)
	if len(top) == 0 {
		t.Fatal("no heavy hitters reported")
	}
	best := top[0]
	if best.Packets < 500 {
		t.Fatalf("top hitter counts %d packets, heavy flow had 500", best.Packets)
	}
	if best.SrcPort != 9999 && best.Hash != fmt.Sprintf("%016x", hh) {
		t.Errorf("top hitter is %s:%d (hash %s), want the heavy flow", best.Src, best.SrcPort, best.Hash)
	}
	if best.Live {
		t.Error("heavy flow reported live after eviction")
	}
	// The sketch never underestimates evicted mass.
	if est := tab.EstimateEvicted(hh); est < 500 {
		t.Errorf("sketch estimate %d < true evicted count 500", est)
	}
}

// TestSketchOverestimates: count-min estimates are always >= the true
// count, and unseen keys with no collisions read zero-ish (bounded).
func TestSketchOverestimates(t *testing.T) {
	cm := NewCountMin(64, 4)
	truth := map[uint64]uint64{}
	for k := uint64(1); k <= 200; k++ {
		n := k % 9
		for i := uint64(0); i < n; i++ {
			cm.Add(k, 1)
		}
		truth[k] = n
	}
	for k, n := range truth {
		if est := cm.Estimate(k); est < n {
			t.Fatalf("estimate(%d) = %d < true %d", k, est, n)
		}
	}
	if cm.Width() != 64 || cm.Depth() != 4 {
		t.Errorf("dims = %dx%d", cm.Width(), cm.Depth())
	}
}

// TestRecordRingWrap: the ring keeps the newest RingSize records,
// oldest-first, with monotonic sequence numbers.
func TestRecordRingWrap(t *testing.T) {
	s := NewSet(1, Config{TableBits: 4, RingSize: 4})
	tab := s.Lane(0)
	for f := 0; f < 6; f++ {
		data := v4Frame(t, uint16(100+f))
		tab.Touch(pkt.RSSHash(data), data, len(data), int64(f))
		tab.Flush(int64(f))
	}
	recs := s.Records(0)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(3+i) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, 3+i)
		}
		if r.Reason != "flush" {
			t.Errorf("record %d reason = %q", i, r.Reason)
		}
	}
	if got := s.Records(2); len(got) != 2 || got[1].Seq != 6 {
		t.Errorf("Records(2) = %d records ending seq %d", len(got), got[len(got)-1].Seq)
	}
	if s.RecordCount() != 6 {
		t.Errorf("RecordCount = %d, want 6", s.RecordCount())
	}
}

// TestZeroAllocHotPath pins the per-packet contract: Touch and Finish on
// a warm table allocate nothing.
func TestZeroAllocHotPath(t *testing.T) {
	s := NewSet(1, Config{TableBits: 8})
	tab := s.Lane(0)
	data := v4Frame(t, 7)
	h := pkt.RSSHash(data)
	tab.Touch(h, data, len(data), 0)
	if avg := testing.AllocsPerRun(1000, func() {
		tab.Touch(h, data, len(data), 1)
		tab.Finish(h, VerdictForwarded, 100, 1)
	}); avg != 0 {
		t.Errorf("hot path allocates: %.2f allocs/op", avg)
	}
}

// TestNilSafety: a disabled Set (nil) is inert everywhere callers touch
// it, including the HTTP endpoint.
func TestNilSafety(t *testing.T) {
	var s *Set
	if s.Lane(0) != nil || s.Peek(0) != nil {
		t.Error("nil set produced a table")
	}
	s.FlushAll() // must not panic
	mux := http.NewServeMux()
	s.Register(mux)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/flows", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
}

// TestHTTPEndpoint: /flows serves dumps, records and heavy hitters as
// JSON.
func TestHTTPEndpoint(t *testing.T) {
	s := NewSet(1, Config{TableBits: 4})
	tab := s.Lane(0)
	data := v4Frame(t, 8080)
	h := pkt.RSSHash(data)
	tab.Touch(h, data, len(data), 0)
	tab.Finish(h, VerdictForwarded, -1, 0)
	mux := http.NewServeMux()
	s.Register(mux)

	get := func(url string) []byte {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, rr.Code)
		}
		return rr.Body.Bytes()
	}
	var flows []Record
	if err := json.Unmarshal(get("/flows"), &flows); err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].SrcPort != 8080 {
		t.Fatalf("/flows = %+v", flows)
	}
	tab.Flush(0)
	if err := json.Unmarshal(get("/flows?records=1&max=5"), &flows); err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Reason != "flush" {
		t.Fatalf("/flows?records=1 = %+v", flows)
	}
	var hh []HeavyHitter
	if err := json.Unmarshal(get("/flows?hh=1"), &hh); err != nil {
		t.Fatal(err)
	}
	if len(hh) != 1 || hh[0].Live {
		t.Fatalf("/flows?hh=1 = %+v", hh)
	}
}

// TestVerdictRoundTrip: the enum and dataplane strings agree.
func TestVerdictRoundTrip(t *testing.T) {
	for _, v := range []Verdict{VerdictForwarded, VerdictDropped, VerdictTMDrop, VerdictToCPU, VerdictNoPort} {
		if VerdictOf(v.String()) != v {
			t.Errorf("verdict %d round-trips as %d", v, VerdictOf(v.String()))
		}
	}
	if VerdictOf("bogus") != VerdictNone {
		t.Error("unknown verdict not mapped to none")
	}
}

// TestConcurrentReadersRace exercises the lock-free discipline under the
// race detector: one writer per lane (the supported discipline), with
// dumps, heavy-hitter merges and record reads racing them.
func TestConcurrentReadersRace(t *testing.T) {
	s := NewSet(2, Config{TableBits: 3, IdleNanos: 10, TopK: 4})
	frames := make([][]byte, 97)
	hashes := make([]uint64, 97)
	for i := range frames {
		frames[i] = v4Frame(t, uint16(i))
		hashes[i] = pkt.RSSHash(frames[i])
	}
	var writers sync.WaitGroup
	for lane := 0; lane < 2; lane++ {
		writers.Add(1)
		go func(lane int) {
			defer writers.Done()
			tab := s.Lane(lane)
			for i := 0; i < 5000; i++ {
				f := i % len(frames)
				tab.Touch(hashes[f], frames[f], len(frames[f]), int64(i))
				tab.Finish(hashes[f], VerdictForwarded, int64(i%50), int64(i))
			}
		}(lane)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Dump(10)
			s.HeavyHitters(5)
			s.Records(10)
			s.ActiveFlows()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	s.FlushAll()
	// 8-slot tables under 97 flows clash constantly; after the flush every
	// touched packet must sit in a record.
	if got := s.RecordPackets(); got != 2*5000 {
		t.Fatalf("record packets = %d, want %d", got, 2*5000)
	}
}
