package flowstat

// reasonActive marks a Dump snapshot of a still-live flow (never stored
// in the ring; the ring only sees real evictions and flushes).
const reasonActive uint8 = 0xff

// rawRec is the fixed-size internal flow record: what the eviction path
// writes into the ring without allocating. Exported Records are rendered
// from it at dump time, where allocation is fine.
type rawRec struct {
	seq      uint64
	hash     uint64
	pkts     uint64
	bytes    uint64
	first    int64
	last     int64
	latSum   int64
	latN     uint64
	src, dst [16]byte
	sport    uint16
	dport    uint16
	lane     int32
	proto    uint8
	verdict  uint8
	reason   uint8
	tupOK    bool
}

// Record is the exported flow record (IPFIX-lite): one completed — or,
// in a Dump, still-active — flow with its five-tuple, counts, timing and
// last verdict. Timestamps are nanoseconds on the package's monotonic
// clock (process start = 0); AgeNanos is relative to the dump.
type Record struct {
	Seq           uint64 `json:"seq,omitempty"`
	Lane          int    `json:"lane"`
	Hash          string `json:"hash"`
	Src           string `json:"src,omitempty"`
	Dst           string `json:"dst,omitempty"`
	Proto         uint8  `json:"proto,omitempty"`
	SrcPort       uint16 `json:"src_port,omitempty"`
	DstPort       uint16 `json:"dst_port,omitempty"`
	Packets       uint64 `json:"packets"`
	Bytes         uint64 `json:"bytes"`
	DurationNanos int64  `json:"duration_nanos"`
	AgeNanos      int64  `json:"age_nanos"`
	LatAvgNanos   int64  `json:"lat_avg_nanos,omitempty"`
	LatSamples    uint64 `json:"lat_samples,omitempty"`
	Verdict       string `json:"verdict,omitempty"`
	Reason        string `json:"reason"` // idle | clash | flush | active
}

// export renders the internal record for dumps and the control channel.
func (r *rawRec) export(now int64) Record {
	out := Record{
		Seq:           r.seq,
		Lane:          int(r.lane),
		Hash:          hashString(r.hash),
		Packets:       r.pkts,
		Bytes:         r.bytes,
		DurationNanos: r.last - r.first,
		AgeNanos:      now - r.last,
		LatSamples:    r.latN,
		Verdict:       Verdict(r.verdict).String(),
		Reason:        reasonString(r.reason),
	}
	if r.tupOK {
		out.Src, out.Dst = addrString(r.src), addrString(r.dst)
		out.Proto, out.SrcPort, out.DstPort = r.proto, r.sport, r.dport
	}
	if r.latN > 0 {
		out.LatAvgNanos = r.latSum / int64(r.latN)
	}
	return out
}
