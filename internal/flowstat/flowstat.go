// Package flowstat is the switch's always-on flow accounting engine:
// fixed-size, power-of-two open-addressing flow tables keyed by the RSS
// flow hash, one table per lane (a shard worker in sharded mode, an
// ingress port in the synchronous runners), accumulating per-flow
// packets/bytes/last-verdict and sampled per-flow latency.
//
// The concurrency discipline mirrors the striped verdict counters: every
// lane has exactly one writer on the supported hot paths, so per-packet
// updates are plain atomic load/store/add with no locks and no shared
// cache lines between lanes. All entry fields are individually atomic so
// concurrent readers (dumps, scrapes) and the rare multi-writer lane
// (the pipelined runner funnels everything through lane 0) stay
// race-free; under multi-writer contention the cost is a bounded
// miscount on an evicting slot, never corruption. Eviction itself is
// made exclusive by parking the slot key on a busy sentinel with a CAS.
//
// Evicted and flushed flows are emitted as compact flow records into the
// set's shared ring, and — the part that makes heavy hitters survive
// table evictions — their exact counts are folded into a per-lane
// count-min sketch and a space-saving top-k at eviction time. The hot
// path never touches the sketch: its cost is one probe sequence and a
// handful of atomic stores per packet.
//
// Flow state lives beside the program store, not inside it, so it
// survives hitless edit commits and config applies by construction.
package flowstat

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"ipsa/internal/pkt"
	"ipsa/internal/verdict"
)

// Verdict is the compact last-verdict enum stored per flow entry,
// shared with the telemetry layer via internal/verdict (one source of
// truth for the enum ↔ string mapping). The aliases below keep the
// flowstat call sites and wire formats unchanged.
type Verdict = verdict.Verdict

const (
	VerdictNone      = verdict.None
	VerdictForwarded = verdict.Forwarded
	VerdictDropped   = verdict.Dropped
	VerdictTMDrop    = verdict.TMDrop
	VerdictToCPU     = verdict.ToCPU
	VerdictNoPort    = verdict.NoPort
	VerdictParse     = verdict.ParseError
)

// VerdictOf maps a dataplane verdict string to the enum.
func VerdictOf(s string) Verdict { return verdict.Of(s) }

// Eviction reasons carried on emitted flow records.
const (
	EvictIdle  uint8 = iota // sweeper found the flow past the idle bound
	EvictClash              // probe window full, smallest flow displaced
	EvictFlush              // shutdown/explicit flush of live entries
)

func reasonString(r uint8) string {
	switch r {
	case EvictIdle:
		return "idle"
	case EvictClash:
		return "clash"
	case EvictFlush:
		return "flush"
	}
	return "active"
}

// The package clock: monotonic nanoseconds since process start. Both the
// batch-granular `now` the shard workers pass around and the per-packet
// latency stamps read it, so arithmetic between the two is safe.
var clockBase = time.Now()

// Now returns nanoseconds on the package's monotonic clock.
func Now() int64 { return int64(time.Since(clockBase)) }

// probeWindow bounds the linear probe: a flow lives within probeWindow
// slots of its home index or displaces the window's smallest flow.
const probeWindow = 8

// sweepEvery triggers an incremental idle sweep every N Touch calls on a
// lane (power of two; amortizes the sweep to a fraction of a slot scan
// per packet).
const sweepEvery = 256

// busyKey parks a slot while an evictor snapshots and clears it; probes
// treat it as occupied-non-matching.
const busyKey = ^uint64(0)

// entry is one flow slot. Every field is individually atomic: the lane
// owner is the only writer on supported paths (so stores are cheap), and
// readers — dumps, scrapes, the sweeper — take torn-free snapshots
// without locks. 13 words per slot.
type entry struct {
	key     atomic.Uint64 // RSS flow hash; 0 = free, busyKey = mid-evict
	pkts    atomic.Uint64
	bytes   atomic.Uint64
	first   atomic.Int64 // package-clock nanos at claim
	last    atomic.Int64 // package-clock nanos at last touch
	latSum  atomic.Int64 // sum of sampled pipeline latencies
	latN    atomic.Uint64
	verdict atomic.Uint32 // last Verdict observed at finish
	// Five-tuple, extracted once at claim time from the pristine frame:
	// src/dst as 16-byte (v4-mapped) words plus a packed meta word.
	src0, src1 atomic.Uint64
	dst0, dst1 atomic.Uint64
	tup        atomic.Uint64 // tupValid | proto<<32 | sport<<16 | dport
}

const tupValid = uint64(1) << 63

func packTuple(f pkt.FiveTuple) (tup, s0, s1, d0, d1 uint64) {
	sa, da := f.Src.As16(), f.Dst.As16()
	s0 = binary.BigEndian.Uint64(sa[0:8])
	s1 = binary.BigEndian.Uint64(sa[8:16])
	d0 = binary.BigEndian.Uint64(da[0:8])
	d1 = binary.BigEndian.Uint64(da[8:16])
	tup = tupValid | uint64(f.Proto)<<32 | uint64(f.SrcPort)<<16 | uint64(f.DstPort)
	return
}

// Table is one lane's flow table. All per-packet methods are zero-alloc.
type Table struct {
	set     *Set
	lane    int
	mask    uint64
	entries []entry

	live       atomic.Int64
	created    atomic.Uint64
	evictIdle  atomic.Uint64
	evictClash atomic.Uint64
	touches    atomic.Uint64 // sweep trigger
	hand       atomic.Uint64 // incremental sweep clock hand

	sketch *CountMin
	topk   *TopK
}

// Touch accounts one received packet against the flow identified by
// hash, claiming (and if needed evicting into) a slot on first sight.
// data must be the pristine ingress frame — the five-tuple is extracted
// only on claim, before the pipeline rewrites headers in place.
func (t *Table) Touch(hash uint64, data []byte, size int, now int64) {
	if hash == 0 {
		hash = 1 // 0 means "free slot"
	}
	e := t.slot(hash, data, now)
	e.pkts.Add(1)
	e.bytes.Add(uint64(size))
	e.last.Store(now)
	if t.touches.Add(1)&(sweepEvery-1) == 0 {
		t.sweep(now)
	}
}

// Finish records the final verdict (and, when sampled, the pipeline
// latency) on the flow's entry. A miss — the entry was evicted while the
// packet sat in the traffic manager — is a silent no-op: the packet was
// already counted at Touch, so conservation holds regardless.
func (t *Table) Finish(hash uint64, v Verdict, latNanos int64, now int64) {
	if hash == 0 {
		hash = 1
	}
	for i := uint64(0); i < probeWindow; i++ {
		e := &t.entries[(hash+i)&t.mask]
		if e.key.Load() != hash {
			continue
		}
		e.verdict.Store(uint32(v))
		if latNanos >= 0 {
			e.latSum.Add(latNanos)
			e.latN.Add(1)
		}
		e.last.Store(now)
		return
	}
}

// slot finds or claims the entry for hash within the probe window,
// displacing the window's smallest flow when it is full.
func (t *Table) slot(hash uint64, data []byte, now int64) *entry {
	for i := uint64(0); i < probeWindow; i++ {
		e := &t.entries[(hash+i)&t.mask]
		k := e.key.Load()
		if k == hash {
			return e
		}
		if k == 0 {
			if e.key.CompareAndSwap(0, hash) {
				t.fill(e, data, now)
				return e
			}
			if e.key.Load() == hash { // lost the race to ourselves-by-hash
				return e
			}
		}
	}
	// Window full: evict the smallest flow in the window and take its
	// slot. Emitting feeds the sketch and top-k, so the displaced flow's
	// mass is not lost.
	var victim *entry
	vmin := ^uint64(0)
	for i := uint64(0); i < probeWindow; i++ {
		e := &t.entries[(hash+i)&t.mask]
		if e.key.Load() == hash { // appeared meanwhile (multi-writer lane)
			return e
		}
		if p := e.pkts.Load(); p < vmin {
			vmin, victim = p, e
		}
	}
	t.emit(victim, EvictClash, now)
	if victim.key.CompareAndSwap(0, hash) {
		t.fill(victim, data, now)
		return victim
	}
	// A concurrent writer re-claimed the slot first (pipelined lane
	// only): account against whatever lives there rather than spinning —
	// a bounded miscount, and impossible on single-writer lanes.
	return victim
}

// fill initializes a freshly claimed slot (key already set by the CAS).
func (t *Table) fill(e *entry, data []byte, now int64) {
	e.pkts.Store(0)
	e.bytes.Store(0)
	e.latSum.Store(0)
	e.latN.Store(0)
	e.verdict.Store(uint32(VerdictNone))
	e.first.Store(now)
	e.last.Store(now)
	var tup, s0, s1, d0, d1 uint64
	if f, ok := pkt.ExtractFiveTuple(data); ok {
		tup, s0, s1, d0, d1 = packTuple(f)
	}
	e.src0.Store(s0)
	e.src1.Store(s1)
	e.dst0.Store(d0)
	e.dst1.Store(d1)
	e.tup.Store(tup)
	t.created.Add(1)
	t.live.Add(1)
}

// emit retires an entry: snapshot, free the slot, push a flow record and
// fold the exact count into the sketch and top-k. The CAS to busyKey
// makes retirement exclusive even on a multi-writer lane.
func (t *Table) emit(e *entry, reason uint8, now int64) {
	k := e.key.Load()
	if k == 0 || k == busyKey {
		return
	}
	if !e.key.CompareAndSwap(k, busyKey) {
		return // another evictor won
	}
	var r rawRec
	r.hash = k
	r.pkts = e.pkts.Load()
	r.bytes = e.bytes.Load()
	r.first = e.first.Load()
	r.last = e.last.Load()
	r.latSum = e.latSum.Load()
	r.latN = e.latN.Load()
	r.verdict = uint8(e.verdict.Load())
	tup := e.tup.Load()
	if tup&tupValid != 0 {
		r.tupOK = true
		binary.BigEndian.PutUint64(r.src[0:8], e.src0.Load())
		binary.BigEndian.PutUint64(r.src[8:16], e.src1.Load())
		binary.BigEndian.PutUint64(r.dst[0:8], e.dst0.Load())
		binary.BigEndian.PutUint64(r.dst[8:16], e.dst1.Load())
		r.proto = uint8(tup >> 32)
		r.sport = uint16(tup >> 16)
		r.dport = uint16(tup)
	}
	r.lane = int32(t.lane)
	r.reason = reason
	e.pkts.Store(0)
	e.key.Store(0) // slot free again
	t.live.Add(-1)
	if r.pkts == 0 {
		return // claimed but never counted; nothing to record
	}
	switch reason {
	case EvictIdle:
		t.evictIdle.Add(1)
	case EvictClash:
		t.evictClash.Add(1)
	}
	t.set.push(&r)
	t.sketch.Add(k, r.pkts)
	t.topk.Offer(&r)
}

// sweep advances the clock hand over SweepChunk slots, retiring entries
// idle past the configured bound. Runs inline on the lane owner, so it
// never races the writer it is sweeping for.
func (t *Table) sweep(now int64) {
	idle := t.set.cfg.IdleNanos
	n := uint64(t.set.cfg.SweepChunk)
	h := t.hand.Load()
	for i := uint64(0); i < n; i++ {
		e := &t.entries[(h+i)&t.mask]
		if e.key.Load() == 0 {
			continue
		}
		if now-e.last.Load() >= idle {
			t.emit(e, EvictIdle, now)
		}
	}
	t.hand.Store(h + n)
}

// Flush retires every live entry (reason "flush"). Called at shutdown
// after the lane's worker has exited, it makes flow accounting exactly
// conserving: every packet the lane counted is now in an emitted record.
func (t *Table) Flush(now int64) {
	for i := range t.entries {
		t.emit(&t.entries[i], EvictFlush, now)
	}
}

// Live returns the lane's live flow count.
func (t *Table) Live() int64 { return t.live.Load() }

// EstimateEvicted returns the count-min estimate of the packet mass this
// lane has evicted for hash (an overestimate: ≤ true + εN with
// probability 1-(1/2)^depth, ε = e/width).
func (t *Table) EstimateEvicted(hash uint64) uint64 {
	if hash == 0 {
		hash = 1
	}
	return t.sketch.Estimate(hash)
}
