package flowstat

import (
	"sync"
	"sync/atomic"
)

// splitmix64 is the finalizer used to derive the per-row sketch indexes
// from one flow hash (same mixer family the RSS steering uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CountMin is a count-min sketch over evicted flow mass: depth rows of a
// power-of-two width, atomic cells so eviction-time adds and dump-time
// estimates need no locks. Point estimates overestimate by at most εN
// with probability 1-(1/2)^depth, where ε = e/width and N is the total
// mass added.
type CountMin struct {
	width uint64 // power of two
	depth int
	cells []atomic.Uint64 // depth rows of width cells
	added atomic.Uint64   // total mass, for the εN error bound
}

// NewCountMin builds a sketch; width is rounded up to a power of two.
func NewCountMin(width, depth int) *CountMin {
	w := uint64(1)
	for int(w) < width {
		w <<= 1
	}
	if depth < 1 {
		depth = 1
	}
	return &CountMin{width: w, depth: depth, cells: make([]atomic.Uint64, w*uint64(depth))}
}

// Add folds n into every row's cell for hash.
func (c *CountMin) Add(hash, n uint64) {
	h := hash
	for d := 0; d < c.depth; d++ {
		h = splitmix64(h)
		c.cells[uint64(d)*c.width+(h&(c.width-1))].Add(n)
	}
	c.added.Add(n)
}

// Estimate returns the minimum over rows — the classic point estimate.
func (c *CountMin) Estimate(hash uint64) uint64 {
	est := ^uint64(0)
	h := hash
	for d := 0; d < c.depth; d++ {
		h = splitmix64(h)
		if v := c.cells[uint64(d)*c.width+(h&(c.width-1))].Load(); v < est {
			est = v
		}
	}
	return est
}

// Width returns the (rounded) row width.
func (c *CountMin) Width() int { return int(c.width) }

// Depth returns the row count.
func (c *CountMin) Depth() int { return c.depth }

// Added returns the total mass folded in.
func (c *CountMin) Added() uint64 { return c.added.Load() }

// topEntry is one space-saving slot: a flow's accumulated evicted count
// and the overestimation bound inherited from the entry it displaced.
type topEntry struct {
	hash     uint64
	count    uint64
	err      uint64
	src, dst [16]byte
	sport    uint16
	dport    uint16
	proto    uint8
	tupOK    bool
}

// TopK is a space-saving top-k summary of evicted flow mass. It is only
// touched at eviction time and by dumps, so a plain mutex is fine — the
// per-packet path never sees it.
type TopK struct {
	mu    sync.Mutex
	k     int
	items []topEntry
}

// NewTopK builds a summary keeping k flows.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, items: make([]topEntry, 0, k)}
}

// Offer folds an evicted flow record into the summary: increment if
// present, insert if there is room, otherwise displace the current
// minimum (space-saving: the newcomer inherits min.count as its error
// bound, keeping the invariant true_count ≤ count ≤ true_count + err).
func (t *TopK) Offer(r *rawRec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	minIdx := -1
	var minCount uint64 = ^uint64(0)
	for i := range t.items {
		it := &t.items[i]
		if it.hash == r.hash {
			it.count += r.pkts
			if !it.tupOK && r.tupOK {
				it.src, it.dst = r.src, r.dst
				it.sport, it.dport, it.proto = r.sport, r.dport, r.proto
				it.tupOK = true
			}
			return
		}
		if it.count < minCount {
			minCount, minIdx = it.count, i
		}
	}
	ne := topEntry{
		hash: r.hash, count: r.pkts,
		src: r.src, dst: r.dst,
		sport: r.sport, dport: r.dport, proto: r.proto, tupOK: r.tupOK,
	}
	if len(t.items) < t.k {
		t.items = append(t.items, ne)
		return
	}
	ne.count += minCount
	ne.err = minCount
	t.items[minIdx] = ne
}

// Snapshot copies the current summary (unordered).
func (t *TopK) Snapshot() []topEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]topEntry, len(t.items))
	copy(out, t.items)
	return out
}
