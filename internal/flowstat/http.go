package flowstat

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Register mounts the flow endpoints on mux:
//
//	/flows            active flows, largest first (?max=N truncates)
//	/flows?records=1  exported flow records (completed flows), oldest first
//	/flows?hh=1       estimated heavy hitters, largest first
//
// Responses are JSON arrays. Nil-safe: a nil Set serves empty arrays so
// callers can mount unconditionally.
func (s *Set) Register(mux *http.ServeMux) {
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		max, _ := strconv.Atoi(r.URL.Query().Get("max"))
		// Empty results stay non-nil so clients always see a JSON
		// array, never null.
		var v any = []struct{}{}
		switch {
		case s == nil:
		case boolParam(r, "hh"):
			if hh := s.HeavyHitters(max); len(hh) > 0 {
				v = hh
			}
		case boolParam(r, "records"):
			if recs := s.Records(max); len(recs) > 0 {
				v = recs
			}
		default:
			if recs := s.Dump(max); len(recs) > 0 {
				v = recs
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "", "0", "false":
		return false
	}
	return true
}
