package flowstat

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"ipsa/internal/telemetry"
)

// Config sizes one Set. Zero values take the defaults below.
type Config struct {
	TableBits   int   // log2 slots per lane table (default 10 = 1024 slots)
	IdleNanos   int64 // idle-eviction bound (default 2s)
	SweepChunk  int   // slots examined per incremental sweep (default 64)
	TopK        int   // space-saving summary size per lane (default 16)
	SketchWidth int   // count-min row width, rounded to a power of two (default 1024)
	SketchDepth int   // count-min rows (default 4)
	RingSize    int   // shared flow-record ring capacity (default 2048)
}

func (c Config) withDefaults() Config {
	if c.TableBits <= 0 {
		c.TableBits = 10
	}
	if c.TableBits > 24 {
		c.TableBits = 24
	}
	if c.IdleNanos <= 0 {
		c.IdleNanos = 2e9
	}
	if c.SweepChunk <= 0 {
		c.SweepChunk = 64
	}
	if c.TopK <= 0 {
		c.TopK = 16
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = 1024
	}
	// Keep the recorded width in sync with what NewCountMin allocates so
	// the exported epsilon reflects the real sketch.
	for w := 1; ; w <<= 1 {
		if w >= c.SketchWidth {
			c.SketchWidth = w
			break
		}
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 2048
	}
	return c
}

// Set is the per-switch collection of lane tables plus the shared
// flow-record ring and conservation counters. Lanes are allocated
// lazily: a switch running sharded with 4 shards only ever pays for 4
// tables.
type Set struct {
	cfg   Config
	lanes []atomic.Pointer[Table]

	mu   sync.Mutex
	recs []rawRec
	pos  int
	full bool
	seq  uint64

	records  atomic.Uint64
	recPkts  atomic.Uint64
	recBytes atomic.Uint64
}

// NewSet builds a set with the given lane count (shard or port count,
// whichever runner feeds it).
func NewSet(lanes int, cfg Config) *Set {
	if lanes < 1 {
		lanes = 1
	}
	cfg = cfg.withDefaults()
	return &Set{
		cfg:   cfg,
		lanes: make([]atomic.Pointer[Table], lanes),
		recs:  make([]rawRec, cfg.RingSize),
	}
}

// Lane returns (creating on first use) the table for lane i, or nil when
// i is out of range — callers treat a nil table as accounting disabled.
func (s *Set) Lane(i int) *Table {
	if s == nil || i < 0 || i >= len(s.lanes) {
		return nil
	}
	if t := s.lanes[i].Load(); t != nil {
		return t
	}
	slots := uint64(1) << s.cfg.TableBits
	t := &Table{
		set:     s,
		lane:    i,
		mask:    slots - 1,
		entries: make([]entry, slots),
		sketch:  NewCountMin(s.cfg.SketchWidth, s.cfg.SketchDepth),
		topk:    NewTopK(s.cfg.TopK),
	}
	if s.lanes[i].CompareAndSwap(nil, t) {
		return t
	}
	return s.lanes[i].Load()
}

// Peek returns lane i's table without allocating it.
func (s *Set) Peek(i int) *Table {
	if s == nil || i < 0 || i >= len(s.lanes) {
		return nil
	}
	return s.lanes[i].Load()
}

// push appends a raw record to the shared ring and rolls the
// conservation counters. Copies by value; zero allocations.
func (s *Set) push(r *rawRec) {
	s.records.Add(1)
	s.recPkts.Add(r.pkts)
	s.recBytes.Add(r.bytes)
	s.mu.Lock()
	s.seq++
	r.seq = s.seq
	s.recs[s.pos] = *r
	s.pos++
	if s.pos == len(s.recs) {
		s.pos, s.full = 0, true
	}
	s.mu.Unlock()
}

// FlushAll retires every live flow on every lane (reason "flush"). Call
// only after the lane writers have stopped; after it returns, the
// conservation invariant is exact: RecordPackets() equals every packet
// the lanes ever counted.
func (s *Set) FlushAll() {
	if s == nil {
		return
	}
	now := Now()
	for i := range s.lanes {
		if t := s.lanes[i].Load(); t != nil {
			t.Flush(now)
		}
	}
}

// ActiveFlows sums live flows across lanes.
func (s *Set) ActiveFlows() int64 {
	var n int64
	for i := range s.lanes {
		if t := s.lanes[i].Load(); t != nil {
			n += t.live.Load()
		}
	}
	return n
}

// RecordPackets returns the total packet count carried by emitted flow
// records — the conservation test's left-hand side.
func (s *Set) RecordPackets() uint64 { return s.recPkts.Load() }

// RecordCount returns how many flow records have been emitted.
func (s *Set) RecordCount() uint64 { return s.records.Load() }

// Records dumps up to max records from the ring, oldest first.
func (s *Set) Records(max int) []Record {
	s.mu.Lock()
	var raw []rawRec
	if s.full {
		raw = append(raw, s.recs[s.pos:]...)
		raw = append(raw, s.recs[:s.pos]...)
	} else {
		raw = append(raw, s.recs[:s.pos]...)
	}
	s.mu.Unlock()
	if max > 0 && len(raw) > max {
		raw = raw[len(raw)-max:]
	}
	now := Now()
	out := make([]Record, len(raw))
	for i := range raw {
		out[i] = raw[i].export(now)
	}
	return out
}

// Dump snapshots the active flows across all lanes, largest first,
// truncated to max (0 = all).
func (s *Set) Dump(max int) []Record {
	now := Now()
	var out []Record
	for li := range s.lanes {
		t := s.lanes[li].Load()
		if t == nil {
			continue
		}
		for i := range t.entries {
			e := &t.entries[i]
			k := e.key.Load()
			if k == 0 || k == busyKey {
				continue
			}
			var r rawRec
			r.hash = k
			r.pkts = e.pkts.Load()
			if r.pkts == 0 {
				continue
			}
			r.bytes = e.bytes.Load()
			r.first = e.first.Load()
			r.last = e.last.Load()
			r.latSum = e.latSum.Load()
			r.latN = e.latN.Load()
			r.verdict = uint8(e.verdict.Load())
			if tup := e.tup.Load(); tup&tupValid != 0 {
				r.tupOK = true
				putBE(r.src[:], e.src0.Load(), e.src1.Load())
				putBE(r.dst[:], e.dst0.Load(), e.dst1.Load())
				r.proto = uint8(tup >> 32)
				r.sport = uint16(tup >> 16)
				r.dport = uint16(tup)
			}
			r.lane = int32(li)
			r.reason = reasonActive
			out = append(out, r.export(now))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Hash < out[j].Hash
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// HeavyHitter is one ranked flow in an hh_dump: live mass plus the
// evicted mass remembered by the space-saving summaries (exact counts
// folded at eviction) or, for flows below the summaries' radar, the
// count-min estimate of their evicted history.
type HeavyHitter struct {
	Hash     string `json:"hash"`
	Lane     int    `json:"lane"`
	Src      string `json:"src,omitempty"`
	Dst      string `json:"dst,omitempty"`
	Proto    uint8  `json:"proto,omitempty"`
	SrcPort  uint16 `json:"src_port,omitempty"`
	DstPort  uint16 `json:"dst_port,omitempty"`
	Packets  uint64 `json:"packets"`   // estimated total (live + evicted)
	ErrBound uint64 `json:"err_bound"` // overestimation bound on Packets
	Live     bool   `json:"live"`
}

// HeavyHitters merges the per-lane space-saving summaries with the live
// tables into one ranked list (largest estimated total first). max 0
// defaults to 20.
func (s *Set) HeavyHitters(max int) []HeavyHitter {
	if max <= 0 {
		max = 20
	}
	cands := make(map[uint64]*HeavyHitter)
	for li := range s.lanes {
		t := s.lanes[li].Load()
		if t == nil {
			continue
		}
		for _, it := range t.topk.Snapshot() {
			hh := cands[it.hash]
			if hh == nil {
				hh = &HeavyHitter{Hash: hashString(it.hash), Lane: li}
				cands[it.hash] = hh
			}
			hh.Packets += it.count
			hh.ErrBound += it.err
			if hh.Src == "" && it.tupOK {
				hh.Src, hh.Dst = addrString(it.src), addrString(it.dst)
				hh.Proto, hh.SrcPort, hh.DstPort = it.proto, it.sport, it.dport
			}
		}
		for i := range t.entries {
			e := &t.entries[i]
			k := e.key.Load()
			if k == 0 || k == busyKey {
				continue
			}
			pkts := e.pkts.Load()
			if pkts == 0 {
				continue
			}
			hh := cands[k]
			if hh == nil {
				hh = &HeavyHitter{Hash: hashString(k), Lane: li}
				// Not in the summary: its evicted history (if any) is
				// only visible through the sketch — an overestimate, so
				// it doubles as the error bound.
				if est := t.sketch.Estimate(k); est > 0 {
					hh.Packets += est
					hh.ErrBound += est
				}
				cands[k] = hh
			}
			hh.Packets += pkts
			hh.Live = true
			if hh.Src == "" {
				if tup := e.tup.Load(); tup&tupValid != 0 {
					var src, dst [16]byte
					putBE(src[:], e.src0.Load(), e.src1.Load())
					putBE(dst[:], e.dst0.Load(), e.dst1.Load())
					hh.Src, hh.Dst = addrString(src), addrString(dst)
					hh.Proto = uint8(tup >> 32)
					hh.SrcPort, hh.DstPort = uint16(tup>>16), uint16(tup)
				}
			}
		}
	}
	out := make([]HeavyHitter, 0, len(cands))
	for _, hh := range cands {
		out = append(out, *hh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Hash < out[j].Hash
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Collect emits the ipsa_flow_* series; hang it on the shared registry
// with AddCollector so the numbers are assembled at scrape time.
func (s *Set) Collect(emit func(telemetry.MetricPoint)) {
	var live int64
	var created, evIdle, evClash uint64
	lanes := 0
	for i := range s.lanes {
		t := s.lanes[i].Load()
		if t == nil {
			continue
		}
		lanes++
		live += t.live.Load()
		created += t.created.Load()
		evIdle += t.evictIdle.Load()
		evClash += t.evictClash.Load()
		emit(telemetry.MetricPoint{
			Name: "ipsa_flow_active", Kind: "gauge", Value: float64(t.live.Load()),
			Labels: []telemetry.Label{telemetry.L("lane", strconv.Itoa(i))},
		})
	}
	gauge := func(name string, v float64) {
		emit(telemetry.MetricPoint{Name: name, Kind: "gauge", Value: v})
	}
	ctr := func(name string, v float64, labels ...telemetry.Label) {
		emit(telemetry.MetricPoint{Name: name, Kind: "counter", Value: v, Labels: labels})
	}
	gauge("ipsa_flow_active_total", float64(live))
	gauge("ipsa_flow_lanes", float64(lanes))
	gauge("ipsa_flow_table_slots", float64(uint64(1)<<s.cfg.TableBits))
	gauge("ipsa_flow_sketch_width", float64(s.cfg.SketchWidth))
	gauge("ipsa_flow_sketch_depth", float64(s.cfg.SketchDepth))
	gauge("ipsa_flow_sketch_epsilon", math.E/float64(s.cfg.SketchWidth))
	gauge("ipsa_flow_topk", float64(s.cfg.TopK))
	ctr("ipsa_flow_created_total", float64(created))
	ctr("ipsa_flow_evictions_total", float64(evIdle), telemetry.L("reason", "idle"))
	ctr("ipsa_flow_evictions_total", float64(evClash), telemetry.L("reason", "clash"))
	ctr("ipsa_flow_records_total", float64(s.records.Load()))
	ctr("ipsa_flow_record_packets_total", float64(s.recPkts.Load()))
	ctr("ipsa_flow_record_bytes_total", float64(s.recBytes.Load()))
}

func putBE(dst []byte, hi, lo uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(hi)
		dst[8+i] = byte(lo)
		hi >>= 8
		lo >>= 8
	}
}

func hashString(h uint64) string { return fmt.Sprintf("%016x", h) }

func addrString(b [16]byte) string {
	return netip.AddrFrom16(b).Unmap().String()
}
