package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipsa/internal/pkt"
)

func tmPacket(port int) *pkt.Packet {
	p := pkt.NewPacket(nil, 0)
	p.OutPort = port
	return p
}

// TestDequeueWaitImmediate: a non-empty TM returns without parking.
func TestDequeueWaitImmediate(t *testing.T) {
	tm := NewTrafficManager(4, 8)
	if !tm.Admit(tmPacket(2)) {
		t.Fatal("admit failed")
	}
	p, ok := tm.DequeueWait(func() bool { return false })
	if !ok || p.OutPort != 2 {
		t.Fatalf("DequeueWait = %v,%v", p, ok)
	}
}

// TestDequeueWaitWakesOnAdmit: a parked waiter is woken by Admit's
// signal — the event-driven replacement for the old sleep-poll.
func TestDequeueWaitWakesOnAdmit(t *testing.T) {
	tm := NewTrafficManager(4, 8)
	got := make(chan *pkt.Packet, 1)
	go func() {
		p, _ := tm.DequeueWait(func() bool { return false })
		got <- p
	}()
	// Wait until the worker has genuinely parked, then admit.
	deadline := time.Now().Add(2 * time.Second)
	for tm.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(time.Millisecond)
	}
	tm.Admit(tmPacket(1))
	select {
	case p := <-got:
		if p.OutPort != 1 {
			t.Fatalf("woke with port %d", p.OutPort)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Admit did not wake the parked waiter")
	}
}

// TestDequeueWaitStop: WakeAll plus a true stop func unparks the waiter
// with ok=false — the shutdown path, with no lost-wakeup window because
// the stop check happens under the TM lock.
func TestDequeueWaitStop(t *testing.T) {
	tm := NewTrafficManager(4, 8)
	var stop atomic.Bool
	done := make(chan bool, 1)
	go func() {
		_, ok := tm.DequeueWait(stop.Load)
		done <- ok
	}()
	deadline := time.Now().Add(2 * time.Second)
	for tm.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	tm.WakeAll()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped DequeueWait returned a packet")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WakeAll did not unpark the waiter")
	}
}

// TestDequeueWaitManyWaiters: every packet admitted is claimed by exactly
// one of several parked workers, and all workers exit on shutdown.
func TestDequeueWaitManyWaiters(t *testing.T) {
	const workers, packets = 4, 100
	tm := NewTrafficManager(4, packets)
	var stop atomic.Bool
	var drained atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := tm.DequeueWait(stop.Load); !ok {
					return
				}
				drained.Add(1)
			}
		}()
	}
	for i := 0; i < packets; i++ {
		if !tm.Admit(tmPacket(i % 4)) {
			t.Fatal("admit failed")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for drained.Load() < packets {
		if time.Now().After(deadline) {
			t.Fatalf("drained %d/%d", drained.Load(), packets)
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	tm.WakeAll()
	wg.Wait()
	if n := drained.Load(); n != packets {
		t.Fatalf("drained %d, want exactly %d", n, packets)
	}
}

// TestLaneStatsFold: per-lane stat stripes fold into one Stats() total
// regardless of which lane counted.
func TestLaneStatsFold(t *testing.T) {
	var cells [statLanes]statCell
	cells[0].n.Add(3)
	cells[7].n.Add(4)
	cells[statLanes-1].n.Add(5)
	if got := laneSum(&cells); got != 12 {
		t.Fatalf("laneSum = %d want 12", got)
	}
}
