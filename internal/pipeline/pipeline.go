// Package pipeline implements IPSA's elastic pipeline (paper Sec. 2.3):
// a chain of TSPs with a selector that picks which TSP feeds the traffic
// manager (TM) and which resumes after it. Middle TSPs can belong to
// ingress, egress, or be bypassed in low-power state. Updates drain the
// pipeline through backpressure before templates are rewritten.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipsa/internal/pkt"
	"ipsa/internal/tsp"
)

// Selector is the elastic pipeline's split configuration: packets traverse
// TSPs [0..TMIn], pass the TM, then traverse [TMOut..N-1]. TMIn == -1
// means no ingress TSPs; TMOut == N means no egress TSPs.
type Selector struct {
	TMIn  int
	TMOut int
}

// statLanes is the number of counter stripes for the processed/dropped
// totals. Each concurrent executor (shard worker, egress worker, the
// synchronous path) writes its own cache-line-padded lane, picked by
// Env.Lane, so packet counting never bounces a cache line between cores.
// Must be a power of two.
const statLanes = 64

// statCell is one padded counter stripe: the counter plus padding to fill
// a 64-byte cache line so adjacent lanes never share one.
type statCell struct {
	n atomic.Uint64
	_ [56]byte
}

// laneSum folds the stripes back into one total at read time.
func laneSum(cells *[statLanes]statCell) uint64 {
	var t uint64
	for i := range cells {
		t += cells[i].n.Load()
	}
	return t
}

// Pipeline is the chain of physical TSPs plus the TM.
type Pipeline struct {
	tsps []*tsp.TSP
	tm   *TrafficManager

	mu  sync.RWMutex // drain lock: packets share, updates exclude
	sel Selector

	processed [statLanes]statCell
	dropped   [statLanes]statCell

	// stallNanos accumulates time spent with the pipeline drained for
	// updates — the data the near-zero-interruption claim is made of.
	stallNanos atomic.Int64
}

// New builds a pipeline of n TSPs and a TM with the given port count and
// per-port queue depth.
func New(n, ports, queueDepth int) (*Pipeline, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pipeline: need at least one TSP, got %d", n)
	}
	p := &Pipeline{tm: NewTrafficManager(ports, queueDepth), sel: Selector{TMIn: -1, TMOut: n}}
	for i := 0; i < n; i++ {
		p.tsps = append(p.tsps, tsp.NewTSP(i))
	}
	return p, nil
}

// NumTSPs returns the physical TSP count.
func (p *Pipeline) NumTSPs() int { return len(p.tsps) }

// TSP returns the TSP at index i.
func (p *Pipeline) TSP(i int) (*tsp.TSP, error) {
	if i < 0 || i >= len(p.tsps) {
		return nil, fmt.Errorf("pipeline: TSP %d out of range [0,%d)", i, len(p.tsps))
	}
	return p.tsps[i], nil
}

// TM exposes the traffic manager.
func (p *Pipeline) TM() *TrafficManager { return p.tm }

// Selector returns the current split.
func (p *Pipeline) Selector() Selector {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sel
}

// ActiveTSPs counts TSPs hosting stages; the rest idle in low-power state.
func (p *Pipeline) ActiveTSPs() int {
	n := 0
	for _, t := range p.tsps {
		if t.Active() {
			n++
		}
	}
	return n
}

// Stats reports processed and dropped packet counts, summed across the
// per-lane stripes.
func (p *Pipeline) Stats() (processed, dropped uint64) {
	return laneSum(&p.processed), laneSum(&p.dropped)
}

// StallTime reports cumulative time the pipeline spent drained for
// updates.
func (p *Pipeline) StallTime() time.Duration {
	return time.Duration(p.stallNanos.Load())
}

// Update drains the pipeline (exclusive lock = backpressure), then runs fn
// to rewrite templates and the selector. The stall is timed.
func (p *Pipeline) Update(fn func(sel *Selector, tsps []*tsp.TSP) error) error {
	start := time.Now()
	p.mu.Lock()
	defer func() {
		p.mu.Unlock()
		p.stallNanos.Add(int64(time.Since(start)))
	}()
	sel := p.sel
	if err := fn(&sel, p.tsps); err != nil {
		return err
	}
	if sel.TMIn >= len(p.tsps) || sel.TMOut < 0 || sel.TMOut > len(p.tsps) || (sel.TMIn >= sel.TMOut) {
		return fmt.Errorf("pipeline: selector %+v invalid for %d TSPs", sel, len(p.tsps))
	}
	p.sel = sel
	return nil
}

// Commit runs fn to rewrite templates and the selector under the write
// lock WITHOUT charging the held time to the stall counter. The hitless
// (epoch-versioned) reconfiguration path uses it: packets on that path
// never take the read side of the drain lock, so the write lock is
// uncontended bookkeeping, not a drain.
func (p *Pipeline) Commit(fn func(sel *Selector, tsps []*tsp.TSP) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sel := p.sel
	if err := fn(&sel, p.tsps); err != nil {
		return err
	}
	if sel.TMIn >= len(p.tsps) || sel.TMOut < 0 || sel.TMOut > len(p.tsps) || (sel.TMIn >= sel.TMOut) {
		return fmt.Errorf("pipeline: selector %+v invalid for %d TSPs", sel, len(p.tsps))
	}
	p.sel = sel
	return nil
}

// CountDropped charges one dropped packet to the given counter lane.
// Executors that bypass RunIngress/RunEgress (the epoch-pinned paths)
// still account through the pipeline so Stats stays the one source of
// truth.
func (p *Pipeline) CountDropped(lane int) {
	p.dropped[lane&(statLanes-1)].n.Add(1)
}

// CountProcessed charges one processed packet to the given counter lane.
func (p *Pipeline) CountProcessed(lane int) {
	p.processed[lane&(statLanes-1)].n.Add(1)
}

// RunIngress pushes a packet through the ingress TSPs and into the TM. It
// reports whether the packet survived to the TM.
func (p *Pipeline) RunIngress(pk *pkt.Packet, parser *tsp.OnDemandParser, backend tsp.TableBackend, env *tsp.Env) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i := 0; i <= p.sel.TMIn; i++ {
		p.tsps[i].Process(pk, parser, backend, env)
		if pk.Drop {
			p.dropped[env.Lane&(statLanes-1)].n.Add(1)
			return false
		}
	}
	return true
}

// RunEgress pushes a packet through the egress TSPs. It reports whether
// the packet survived.
func (p *Pipeline) RunEgress(pk *pkt.Packet, parser *tsp.OnDemandParser, backend tsp.TableBackend, env *tsp.Env) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i := p.sel.TMOut; i < len(p.tsps); i++ {
		p.tsps[i].Process(pk, parser, backend, env)
		if pk.Drop {
			p.dropped[env.Lane&(statLanes-1)].n.Add(1)
			return false
		}
	}
	p.processed[env.Lane&(statLanes-1)].n.Add(1)
	return true
}

// Process runs a packet through ingress, the TM (enqueue on the chosen
// output port, immediate dequeue in this synchronous path), and egress.
// It reports whether the packet survived to the output.
func (p *Pipeline) Process(pk *pkt.Packet, parser *tsp.OnDemandParser, backend tsp.TableBackend, env *tsp.Env) bool {
	if !p.RunIngress(pk, parser, backend, env) {
		return false
	}
	// TM: a real chip buffers and schedules here; the synchronous path
	// models an uncongested TM pass-through while still exercising the
	// queue accounting.
	if !p.tm.PassThrough(pk) {
		p.dropped[env.Lane&(statLanes-1)].n.Add(1)
		return false
	}
	return p.RunEgress(pk, parser, backend, env)
}

// pktRing is a growable circular packet queue: O(1) push/popHead with no
// per-enqueue allocation once the ring has grown to its working set.
// Structural mutation happens under the owning TM's mutex; n is atomic so
// the lock-free PassThrough admission check can read the depth.
type pktRing struct {
	buf  []*pkt.Packet
	head int
	n    atomic.Int32
}

func (r *pktRing) push(p *pkt.Packet) {
	n := int(r.n.Load())
	if n == len(r.buf) {
		r.grow(n)
	}
	r.buf[(r.head+n)%len(r.buf)] = p
	r.n.Store(int32(n + 1))
}

func (r *pktRing) grow(n int) {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	nb := make([]*pkt.Packet, newCap)
	for i := 0; i < n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}

func (r *pktRing) popHead() *pkt.Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n.Add(-1)
	return p
}

// remove deletes p, scanning from the tail: the synchronous path always
// releases the packet it just admitted, so the scan hits on the first
// probe and nothing shifts.
func (r *pktRing) remove(p *pkt.Packet) bool {
	n := int(r.n.Load())
	for i := n - 1; i >= 0; i-- {
		if r.buf[(r.head+i)%len(r.buf)] != p {
			continue
		}
		for j := i; j < n-1; j++ {
			r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
		}
		r.buf[(r.head+n-1)%len(r.buf)] = nil
		r.n.Store(int32(n - 1))
		return true
	}
	return false
}

// TrafficManager models the TM's per-port queues with tail drop.
type TrafficManager struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled by Admit when a DequeueWait is parked
	depth   int
	queues  []pktRing
	rr      int // round-robin scan position for DequeueRR
	waiters int // DequeueWait callers currently parked on cond

	// Watermark/microburst telemetry, mutated only under mu on the
	// enqueue/dequeue paths that already hold it. burstThresh is the
	// depth a queue must reach to open a burst window; crossing it and
	// receding closes the window and records its duration. Timestamps
	// are taken only at threshold crossings, so steady-state queueing
	// pays integer compares, not clock reads.
	burstThresh int
	wm          []portWM

	enqueued  atomic.Uint64
	tailDrops atomic.Uint64
}

// portWM is one port's watermark/burst state.
type portWM struct {
	watermark  int32 // high-water queue depth
	burstStart int64 // tmNanos when depth crossed the threshold; 0 = idle
	bursts     uint64
	minBurst   int64 // shortest completed burst window, nanos (0 = none)
	maxBurst   int64
}

// The TM's monotonic clock for burst windows.
var tmClockBase = time.Now()

func tmNanos() int64 { return int64(time.Since(tmClockBase)) }

// PortWatermark is one port's exported watermark/microburst snapshot.
type PortWatermark struct {
	Port          int
	Watermark     int
	Bursts        uint64
	MinBurstNanos int64
	MaxBurstNanos int64
}

// NewTrafficManager builds a TM with per-port queues of the given depth
// (0 depth means unbuffered pass-through accounting only). The
// microburst threshold defaults to half the queue depth (minimum 1);
// unbuffered TMs never queue, so they keep detection off.
func NewTrafficManager(ports, depth int) *TrafficManager {
	tm := &TrafficManager{depth: depth}
	tm.cond = sync.NewCond(&tm.mu)
	if ports < 1 {
		ports = 1
	}
	tm.queues = make([]pktRing, ports)
	tm.wm = make([]portWM, ports)
	if depth > 0 {
		tm.burstThresh = depth / 2
		if tm.burstThresh < 1 {
			tm.burstThresh = 1
		}
	}
	return tm
}

// SetBurstThreshold changes the microburst depth threshold (<= 0
// disables detection; watermarks are always on).
func (tm *TrafficManager) SetBurstThreshold(n int) {
	tm.mu.Lock()
	tm.burstThresh = n
	tm.mu.Unlock()
}

// BurstThreshold reads the microburst depth threshold.
func (tm *TrafficManager) BurstThreshold() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.burstThresh
}

// noteDepthLocked updates port q's watermark and opens a burst window
// when its depth crosses the threshold. Caller holds mu.
func (tm *TrafficManager) noteDepthLocked(q int) {
	depth := int(tm.queues[q].n.Load())
	w := &tm.wm[q]
	if int32(depth) > w.watermark {
		w.watermark = int32(depth)
	}
	if tm.burstThresh > 0 && depth >= tm.burstThresh && w.burstStart == 0 {
		w.burstStart = tmNanos()
	}
}

// noteDrainLocked closes port q's burst window once its depth recedes
// below the threshold, recording the window duration. Caller holds mu.
func (tm *TrafficManager) noteDrainLocked(q int) {
	if tm.burstThresh <= 0 {
		return
	}
	w := &tm.wm[q]
	if w.burstStart == 0 || int(tm.queues[q].n.Load()) >= tm.burstThresh {
		return
	}
	d := tmNanos() - w.burstStart
	w.burstStart = 0
	w.bursts++
	if w.minBurst == 0 || d < w.minBurst {
		w.minBurst = d
	}
	if d > w.maxBurst {
		w.maxBurst = d
	}
}

// Watermarks snapshots every port's high-water mark and microburst
// record (telemetry scrape source). A still-open burst window counts as
// an in-progress burst with its duration so far, so a wedged queue is
// visible before it ever drains.
func (tm *TrafficManager) Watermarks() []PortWatermark {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	now := int64(0)
	out := make([]PortWatermark, len(tm.wm))
	for i := range tm.wm {
		w := &tm.wm[i]
		out[i] = PortWatermark{
			Port:          i,
			Watermark:     int(w.watermark),
			Bursts:        w.bursts,
			MinBurstNanos: w.minBurst,
			MaxBurstNanos: w.maxBurst,
		}
		if w.burstStart != 0 {
			if now == 0 {
				now = tmNanos()
			}
			out[i].Bursts++
			if d := now - w.burstStart; d > out[i].MaxBurstNanos {
				out[i].MaxBurstNanos = d
			}
		}
	}
	return out
}

// Admit accepts a packet into the queue of its output port; packets with
// no output port yet use port 0's queue. False means tail drop. When a
// drain worker is parked in DequeueWait it is woken; the waiter check is
// a plain int read under the mutex Admit already holds, so the common
// no-waiter case costs one compare.
func (tm *TrafficManager) Admit(p *pkt.Packet) bool {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	q := tm.portOf(p)
	if tm.depth > 0 && int(tm.queues[q].n.Load()) >= tm.depth {
		tm.tailDrops.Add(1)
		return false
	}
	tm.queues[q].push(p)
	tm.enqueued.Add(1)
	tm.noteDepthLocked(q)
	if tm.waiters > 0 {
		tm.cond.Signal()
	}
	return true
}

// Release removes a packet from its queue (synchronous scheduling).
func (tm *TrafficManager) Release(p *pkt.Packet) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.queues[tm.portOf(p)].remove(p)
}

// PassThrough is the synchronous path's fused Admit+Release: the packet
// would be enqueued and immediately scheduled, so only the admission
// check and the accounting happen — no lock, no queue churn. The depth
// read is atomic but unserialised against concurrent Admit, so admission
// against in-flight queued traffic is approximate by at most one packet,
// like any real TM's occupancy counter.
func (tm *TrafficManager) PassThrough(p *pkt.Packet) bool {
	if tm.depth > 0 && int(tm.queues[tm.portOf(p)].n.Load()) >= tm.depth {
		tm.tailDrops.Add(1)
		return false
	}
	tm.enqueued.Add(1)
	return true
}

// DequeueRR removes the oldest packet from the next non-empty queue in
// round-robin order; ok=false when every queue is empty. This is the
// asynchronous scheduler's entry point (the synchronous path uses
// Admit/Release).
func (tm *TrafficManager) DequeueRR() (*pkt.Packet, bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.dequeueLocked()
}

func (tm *TrafficManager) dequeueLocked() (*pkt.Packet, bool) {
	n := len(tm.queues)
	for i := 0; i < n; i++ {
		q := (tm.rr + i) % n
		if tm.queues[q].n.Load() > 0 {
			p := tm.queues[q].popHead()
			tm.rr = (q + 1) % n
			tm.noteDrainLocked(q)
			return p, true
		}
	}
	return nil, false
}

// DequeueWait is the event-driven form of DequeueRR: when every queue is
// empty it parks the caller until Admit signals new work (or WakeAll is
// broadcast) instead of returning. stop is re-checked under the TM mutex
// after every wakeup; ok=false means the TM drained empty and stop
// reported true. Callers that want an adaptive spin before parking should
// poll DequeueRR a few times first and fall back to DequeueWait.
func (tm *TrafficManager) DequeueWait(stop func() bool) (*pkt.Packet, bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for {
		if p, ok := tm.dequeueLocked(); ok {
			return p, true
		}
		if stop() {
			return nil, false
		}
		tm.waiters++
		tm.cond.Wait()
		tm.waiters--
	}
}

// WakeAll unparks every DequeueWait caller so it can observe its stop
// condition; called at shutdown after the stop flag is set.
func (tm *TrafficManager) WakeAll() {
	tm.mu.Lock()
	if tm.waiters > 0 {
		tm.cond.Broadcast()
	}
	tm.mu.Unlock()
}

// Waiters reports how many DequeueWait callers are parked (test hook).
func (tm *TrafficManager) Waiters() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.waiters
}

func (tm *TrafficManager) portOf(p *pkt.Packet) int {
	q := p.OutPort
	if q < 0 || q >= len(tm.queues) {
		q = 0
	}
	return q
}

// Stats reports enqueued packets and tail drops.
func (tm *TrafficManager) Stats() (enqueued, tailDrops uint64) {
	return tm.enqueued.Load(), tm.tailDrops.Load()
}

// Depths snapshots every port queue's length (telemetry gauge source).
func (tm *TrafficManager) Depths() []int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]int, len(tm.queues))
	for i := range tm.queues {
		out[i] = int(tm.queues[i].n.Load())
	}
	return out
}

// Depth reports the queue length of one port.
func (tm *TrafficManager) Depth(port int) int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if port < 0 || port >= len(tm.queues) {
		return 0
	}
	return int(tm.queues[port].n.Load())
}

// DepthFast is Depth without the mutex: a raw atomic read of the port's
// occupancy counter, unserialised against concurrent Admit/DequeueRR the
// same way PassThrough's admission check is. This is the per-packet
// accessor the INT stamper reads queue depth through.
func (tm *TrafficManager) DepthFast(port int) int {
	if port < 0 || port >= len(tm.queues) {
		return 0
	}
	return int(tm.queues[port].n.Load())
}

// DepthSum is the total occupancy across every port queue, lock-free and
// approximate under concurrency (audit-event "packets in flight" source).
func (tm *TrafficManager) DepthSum() int {
	n := 0
	for i := range tm.queues {
		n += int(tm.queues[i].n.Load())
	}
	return n
}
