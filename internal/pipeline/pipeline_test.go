package pipeline

import (
	"sync"
	"testing"
	"time"

	"ipsa/internal/match"
	"ipsa/internal/pkt"
	"ipsa/internal/tsp"
)

type nopBackend struct{}

func (nopBackend) Lookup(string, []byte) (match.Result, bool) { return match.Result{}, false }
func (nopBackend) LookupSelector(string, []byte, uint64) (match.Result, bool) {
	return match.Result{}, false
}

func env() *tsp.Env {
	return &tsp.Env{Regs: tsp.NewRegisterFile(nil), Faults: &tsp.Faults{},
		SRHID: pkt.InvalidHeader, IPv6ID: pkt.InvalidHeader}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, 8); err == nil {
		t.Error("zero TSPs accepted")
	}
	p, err := New(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumTSPs() != 4 {
		t.Errorf("NumTSPs = %d", p.NumTSPs())
	}
	if _, err := p.TSP(4); err == nil {
		t.Error("out-of-range TSP accepted")
	}
	if _, err := p.TSP(2); err != nil {
		t.Error(err)
	}
}

func TestSelectorValidation(t *testing.T) {
	p, _ := New(4, 2, 8)
	err := p.Update(func(sel *Selector, _ []*tsp.TSP) error {
		sel.TMIn, sel.TMOut = 2, 2 // overlap
		return nil
	})
	if err == nil {
		t.Error("overlapping selector accepted")
	}
	err = p.Update(func(sel *Selector, _ []*tsp.TSP) error {
		sel.TMIn, sel.TMOut = 1, 3
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Selector(); s.TMIn != 1 || s.TMOut != 3 {
		t.Errorf("selector: %+v", s)
	}
	if p.StallTime() <= 0 {
		t.Error("update stall not recorded")
	}
}

func TestProcessPassThrough(t *testing.T) {
	p, _ := New(4, 2, 8)
	_ = p.Update(func(sel *Selector, _ []*tsp.TSP) error {
		sel.TMIn, sel.TMOut = 1, 2
		return nil
	})
	pk := pkt.NewPacket([]byte{1, 2, 3}, 8)
	ok := p.Process(pk, nil, nopBackend{}, env())
	if !ok || pk.Drop {
		t.Fatal("pass-through dropped")
	}
	processed, dropped := p.Stats()
	if processed != 1 || dropped != 0 {
		t.Errorf("stats: %d/%d", processed, dropped)
	}
	if p.ActiveTSPs() != 0 {
		t.Errorf("active = %d", p.ActiveTSPs())
	}
}

func TestTrafficManagerTailDrop(t *testing.T) {
	tm := NewTrafficManager(2, 2)
	a := pkt.NewPacket(nil, 0)
	b := pkt.NewPacket(nil, 0)
	c := pkt.NewPacket(nil, 0)
	a.OutPort, b.OutPort, c.OutPort = 1, 1, 1
	if !tm.Admit(a) || !tm.Admit(b) {
		t.Fatal("admit failed")
	}
	if tm.Admit(c) {
		t.Error("over-depth admit accepted")
	}
	if tm.Depth(1) != 2 {
		t.Errorf("depth = %d", tm.Depth(1))
	}
	enq, drops := tm.Stats()
	if enq != 2 || drops != 1 {
		t.Errorf("stats: %d/%d", enq, drops)
	}
	tm.Release(a)
	if tm.Depth(1) != 1 {
		t.Errorf("depth after release = %d", tm.Depth(1))
	}
	// Unknown/negative ports fall back to queue 0.
	d := pkt.NewPacket(nil, 0)
	d.OutPort = -1
	if !tm.Admit(d) {
		t.Error("fallback admit failed")
	}
	if tm.Depth(0) != 1 {
		t.Errorf("queue 0 depth = %d", tm.Depth(0))
	}
	if tm.Depth(99) != 0 {
		t.Error("out-of-range depth nonzero")
	}
}

func TestUpdateExcludesTraffic(t *testing.T) {
	p, _ := New(2, 1, 8)
	_ = p.Update(func(sel *Selector, _ []*tsp.TSP) error {
		sel.TMIn, sel.TMOut = 0, 1
		return nil
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pk := pkt.NewPacket([]byte{1}, 8)
				p.Process(pk, nil, nopBackend{}, env())
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := p.Update(func(sel *Selector, _ []*tsp.TSP) error { return nil }); err != nil {
			t.Error(err)
		}
	}
	// Traffic keeps flowing between and after updates.
	deadline := time.Now().Add(2 * time.Second)
	for {
		processed, _ := p.Stats()
		if processed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("no packets processed around updates")
			break
		}
	}
	close(stop)
	wg.Wait()
}
