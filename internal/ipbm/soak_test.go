package ipbm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipsa/internal/pkt"
)

// TestSoakUpdatesUnderTraffic alternates the probe function in and out of
// a switch forwarding from four goroutines. The whole point of IPSA is
// that this sequence is safe: no packet errors, no faults, and forwarding
// works after every generation.
func TestSoakUpdatesUnderTraffic(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 6
	}
	sw, w := newBaseSwitch(t)
	var stop atomic.Bool
	var processed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for !stop.Load() {
				p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, seed, 1}, routerMAC, 64), inPort)
				if err != nil {
					t.Error(err)
					return
				}
				if p.Drop {
					t.Error("routed packet dropped mid-soak")
					return
				}
				processed.Add(1)
			}
		}(byte(g))
	}
	loadProbe := script(t, "flowprobe.script")
	unloadProbe := "unload probe\nadd_link ipv4_lpm_fib ipv6_host_fib\n"
	for i := 0; i < rounds; i++ {
		s := loadProbe
		if i%2 == 1 {
			s = unloadProbe
		}
		rep, err := w.ApplyScript(s, loader(t))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if _, err := sw.ApplyConfig(rep.Config); err != nil {
			t.Fatalf("round %d apply: %v", i, err)
		}
	}
	// On a loaded single-CPU host the forwarding goroutines can be starved
	// for the whole (fast) update loop; give them a bounded window to
	// prove traffic flows before stopping.
	deadline := time.Now().Add(10 * time.Second)
	for processed.Load() == 0 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if processed.Load() == 0 {
		t.Fatal("no traffic flowed during soak")
	}
	if f := sw.Faults(); f.BadTemplate.Load() != 0 || f.InvalidHeaderAccess.Load() != 0 {
		t.Errorf("faults after soak: bad=%d invalid=%d",
			f.BadTemplate.Load(), f.InvalidHeaderAccess.Load())
	}
	// Forwarding still correct after the final generation.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop || p.OutPort != outPort {
		t.Fatalf("post-soak: err=%v drop=%v out=%d", err, p.Drop, p.OutPort)
	}
	var ip pkt.IPv4
	_ = ip.Decode(p.Data[pkt.EthernetLen:])
	if ip.TTL != 63 {
		t.Errorf("post-soak ttl = %d", ip.TTL)
	}
}
