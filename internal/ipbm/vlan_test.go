package ipbm

import (
	"testing"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
)

// TestInsituVLAN adds 802.1Q support to a running switch: the VLAN header
// is linked into the *first* header's implicit parser (a different
// insertion point than SRv6's mid-stack linkage), tagged frames map their
// VLAN ID to a bridge domain, unknown VLANs drop, untagged traffic is
// unaffected.
func TestInsituVLAN(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "vlan.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	if !rep.HeaderLinksChanged {
		t.Error("ethernet parser extension not reported")
	}
	// ethernet now transitions to vlan on 0x8100.
	eth := rep.Config.HeaderByName("ethernet")
	vlan := rep.Config.HeaderByName("vlan")
	if vlan == nil {
		t.Fatal("vlan header missing")
	}
	found := false
	for _, tr := range eth.Transitions {
		if tr.Tag == 0x8100 && tr.Next == vlan.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("ethernet transitions: %+v", eth.Transitions)
	}

	// VLAN 300 maps to the routed bridge/VRF.
	insert(t, sw, ctrlplane.EntryReq{
		Table: "vlan_bind", Keys: []ctrlplane.FieldValue{{Value: 300}},
		Tag: 1, Params: []uint64{bridgeIn, vrfID},
	})

	tagged := func(vid uint16, dst [4]byte) []byte {
		raw, err := pkt.Serialize(
			&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeVLAN},
			&pkt.VLAN{VID: vid, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: dst},
			&pkt.TCP{SrcPort: 1, DstPort: 2},
		)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	// Tagged frame in a known VLAN routes normally (TTL decremented,
	// egress port resolved).
	p, err := sw.ProcessPacket(tagged(300, [4]byte{10, 0, 0, 2}), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop || p.OutPort != outPort {
		t.Fatalf("vlan 300: drop=%v out=%d", p.Drop, p.OutPort)
	}
	// The IPv4 header sits after the tag; TTL was still rewritten.
	var ip pkt.IPv4
	if err := ip.Decode(p.Data[pkt.EthernetLen+pkt.VLANTagLen:]); err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d", ip.TTL)
	}
	// Unknown VLAN drops.
	p2, err := sw.ProcessPacket(tagged(999, [4]byte{10, 0, 0, 2}), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Drop {
		t.Error("unknown vlan forwarded")
	}
	// Untagged traffic is untouched by the update.
	p3, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Drop || p3.OutPort != outPort {
		t.Fatalf("untagged: drop=%v out=%d", p3.Drop, p3.OutPort)
	}
	if sw.Faults().BadTemplate.Load() != 0 {
		t.Errorf("faults: %d", sw.Faults().BadTemplate.Load())
	}
}
