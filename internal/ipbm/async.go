package ipbm

import (
	"fmt"
	"time"

	"ipsa/internal/pkt"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// RunPipelined starts the asynchronous forwarding mode: one ingress worker
// per port runs packets through the ingress half and admits them to the
// traffic manager's queues (tail-dropping under congestion); egressWorkers
// goroutines drain the TM, run the egress half and transmit. Unlike the
// synchronous Run/Forward path, the TM genuinely buffers here, so bursts
// beyond the queue depth are dropped by policy rather than backpressure.
// Stop with Shutdown.
func (s *Switch) RunPipelined(egressWorkers int) error {
	if egressWorkers <= 0 {
		return fmt.Errorf("ipbm: need at least one egress worker")
	}
	s.mu.RLock()
	configured := s.cfg != nil
	s.mu.RUnlock()
	if !configured {
		return fmt.Errorf("ipbm: no configuration installed")
	}
	for i := 0; i < s.ports.Len(); i++ {
		port, _ := s.ports.Port(i)
		s.runWG.Add(1)
		go func(idx int, p interface{ Recv() ([]byte, bool) }) {
			defer s.runWG.Done()
			for {
				data, ok := p.Recv()
				if !ok || s.stopped.Load() {
					return
				}
				s.ingestOne(data, idx)
			}
		}(i, port)
	}
	for w := 0; w < egressWorkers; w++ {
		s.runWG.Add(1)
		go func() {
			defer s.runWG.Done()
			for !s.stopped.Load() {
				if !s.egestOne() {
					time.Sleep(20 * time.Microsecond)
				}
			}
		}()
	}
	return nil
}

// ingestOne runs the ingress half and admits the survivor to the TM.
func (s *Switch) ingestOne(data []byte, inPort int) {
	s.mu.RLock()
	cfg := s.cfg
	parser := s.parser
	env := &tsp.Env{Regs: s.regs, Faults: &s.faults, SRHID: s.srhID, IPv6ID: s.ipv6ID}
	s.mu.RUnlock()
	if cfg == nil {
		return
	}
	p := pkt.NewPacket(data, cfg.MetaBytes)
	p.InPort = inPort
	if err := p.SetMetaBits(template.IstdInPortOff, template.IstdInPortWidth, uint64(inPort)); err != nil {
		return
	}
	s.beginPacketTelemetry(p)
	env.Trace = p.Trace
	env.Timed = p.Timed
	if !s.pl.RunIngress(p, parser, s, env) {
		s.finishPacketTelemetry(p, "dropped")
		return // dropped in ingress
	}
	// Tail drop is the TM's policy decision; counted in its stats.
	if !s.pl.TM().Admit(p) {
		s.finishPacketTelemetry(p, "tm_drop")
	}
}

// egestOne drains one packet from the TM through the egress half and
// transmits it. It reports whether any packet was available.
func (s *Switch) egestOne() bool {
	p, ok := s.pl.TM().DequeueRR()
	if !ok {
		return false
	}
	s.mu.RLock()
	parser := s.parser
	env := &tsp.Env{Regs: s.regs, Faults: &s.faults, SRHID: s.srhID, IPv6ID: s.ipv6ID}
	s.mu.RUnlock()
	env.Trace = p.Trace
	env.Timed = p.Timed
	if !s.pl.RunEgress(p, parser, s, env) {
		s.finishPacketTelemetry(p, "dropped")
		return true // dropped in egress
	}
	if p.ToCPU {
		s.punt(p)
	}
	if out, err := p.MetaBits(template.IstdOutPortOff, template.IstdOutPortWidth); err == nil {
		p.OutPort = int(out)
	}
	if p.OutPort >= 0 && p.OutPort < s.ports.Len() {
		if port, err := s.ports.Port(p.OutPort); err == nil {
			port.Send(p.Data)
		}
	} else {
		s.tel.noPortDrops.Inc()
	}
	s.finishPacketTelemetry(p, verdictOf(p, true, s.ports.Len()))
	return true
}
