package ipbm

import (
	"fmt"
	"runtime"
	"strconv"

	"ipsa/internal/dataplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/health"
	"ipsa/internal/netio"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
)

// egressSpins is how many yield-and-retry rounds an idle egress worker
// makes before parking on the TM's wakeup notification: enough that a
// back-to-back burst never pays a futex round trip, few enough that a
// genuinely idle worker parks within microseconds and costs nothing.
const egressSpins = 4

// egressBatch caps how many packets one egress worker drains from the TM
// per round. Under load the whole run usually pins the same program
// version, so the run executes stage-major through the fused closures
// with one Env bind, one per-batch stat flush and one-ahead bucket
// prefetch — the pipelined analogue of the sharded runner's drain.
const egressBatch = 32

// RunPipelined starts the asynchronous forwarding mode: one ingress worker
// per port runs packets through the ingress half and admits them to the
// traffic manager's queues (tail-dropping under congestion); egressWorkers
// goroutines drain the TM, run the egress half and transmit. Unlike the
// synchronous Run/Forward path, the TM genuinely buffers here, so bursts
// beyond the queue depth are dropped by policy rather than backpressure.
// Idle egress workers park on the TM's admit notification (adaptive
// spin-then-park) instead of sleep-polling. Stop with Shutdown.
func (s *Switch) RunPipelined(egressWorkers int) error {
	if egressWorkers <= 0 {
		return fmt.Errorf("ipbm: need at least one egress worker")
	}
	if s.dp.Design() == nil {
		return fmt.Errorf("ipbm: no configuration installed")
	}
	for i := 0; i < s.ports.Len(); i++ {
		port, _ := s.ports.Port(i)
		s.runWG.Add(1)
		go func(idx int, p netio.Port) {
			defer s.runWG.Done()
			for {
				data, ok := p.Recv()
				if !ok || s.stopped.Load() {
					return
				}
				s.ingestOne(data, idx)
			}
		}(i, port)
	}
	for w := 0; w < egressWorkers; w++ {
		// Each worker stamps its own heartbeat counter per processed
		// packet; the watchdog flags a worker whose heartbeat freezes
		// while the TM still holds packets.
		beat := s.tel.Reg.Counter("ipsa_egress_heartbeat_total",
			telemetry.L("worker", strconv.Itoa(w)))
		s.health.AddLane(health.Lane{
			Name:     "egress-" + strconv.Itoa(w),
			Progress: beat.Value,
			Pending:  s.pl.TM().DepthSum,
		})
		s.runWG.Add(1)
		go func() {
			defer s.runWG.Done()
			s.egressLoop(beat)
		}()
	}
	s.health.Start()
	s.log.Info("pipelined forwarding started", "egress_workers", egressWorkers)
	return nil
}

// egressLoop drains the TM until shutdown: process batch-at-a-time while
// packets are available, spin briefly when the TM momentarily empties,
// then park on the TM's notification. Shutdown's WakeAll unparks the
// final wait. beat is this worker's watchdog heartbeat, stamped per
// processed packet (one uncontended atomic add per round).
func (s *Switch) egressLoop(beat *telemetry.Counter) {
	scratch := make([]*pkt.Packet, egressBatch)
	for {
		if s.stopped.Load() {
			return
		}
		if n := s.egestBatch(scratch); n > 0 {
			beat.Add(uint64(n))
			continue
		}
		spun := 0
		for i := 0; i < egressSpins; i++ {
			runtime.Gosched()
			if n := s.egestBatch(scratch); n > 0 {
				spun = n
				break
			}
		}
		if spun > 0 {
			beat.Add(uint64(spun))
			continue
		}
		p, ok := s.pl.TM().DequeueWait(s.stopped.Load)
		if !ok {
			return
		}
		s.egestPacket(p)
		beat.Inc()
	}
}

// ingestOne runs the ingress half and admits the survivor to the TM.
// Packets and Envs are pooled; a packet parked in the TM keeps its pooled
// buffers (its Env is returned immediately — egress binds a fresh one),
// and is recycled as soon as it dies. In hitless mode the packet pins the
// current program version at ingress and carries it across the TM in
// p.Ver, so egress — possibly after a reconfiguration — executes the same
// program (per-packet version consistency).
func (s *Switch) ingestOne(data []byte, inPort int) {
	v := s.epochs.pin()
	var d *dataplane.Design
	if v != nil {
		d = v.design
	} else if d = s.dp.Design(); d == nil {
		return
	}
	p, err := s.dp.GetPacket(d, data, inPort)
	if err != nil {
		if v != nil {
			v.unpin()
		}
		s.admitFailed(0, inPort, data)
		return
	}
	s.dp.BeginPacket(p)
	if p.Trace != nil && v != nil {
		p.Trace.Epoch = v.epoch
	}
	// Flow accounting: the per-port ingress workers make the ingress
	// port a single-writer lane for Touch; Finish runs on the (shared)
	// egress workers, which only update an existing entry's atomics.
	fl := s.flows.Lane(inPort)
	var now int64
	if fl != nil {
		p.RSS = pkt.RSSHash(data)
		now = flowstat.Now()
		fl.Touch(p.RSS, data, len(data), now)
		if p.Timed {
			p.FlowNanos = now
		}
	}
	env := s.dp.GetEnv(d)
	env.Trace = p.Trace
	env.Timed = p.Timed
	var ok bool
	if v != nil {
		ok = v.runIngress(s.pl, p, env)
	} else {
		ok = s.pl.RunIngress(p, d.Parser, s, env)
	}
	s.dp.PutEnv(env)
	if !ok {
		dv := dataplane.DropVerdict(p)
		s.dp.FinishPacket(p, dv)
		if fl != nil {
			fl.Finish(p.RSS, flowstat.VerdictOf(dv), flowLat(p), now)
		}
		s.dp.PutPacket(p)
		if v != nil {
			v.unpin()
		}
		return // dropped in ingress
	}
	p.Ver = v // nil on the legacy path; cleared again by PutPacket
	// Tail drop is the TM's policy decision; counted in its stats.
	if !s.pl.TM().Admit(p) {
		s.dp.FinishPacket(p, "tm_drop")
		if fl != nil {
			fl.Finish(p.RSS, flowstat.VerdictTMDrop, flowLat(p), now)
		}
		s.dp.PutPacket(p)
		if v != nil {
			v.unpin()
		}
	}
}

// egestOne drains one packet from the TM through the egress half and
// transmits it. It reports whether any packet was available.
func (s *Switch) egestOne() bool {
	p, ok := s.pl.TM().DequeueRR()
	if !ok {
		return false
	}
	s.egestPacket(p)
	return true
}

// egestBatch drains up to len(scratch) packets from the TM in one round.
// Consecutive packets pinned to the same program version run stage-major
// through runEgressBatch — one Env bind for the run, Trace/Timed rebound
// per packet inside ExecuteBatch, drops and survivors counted by the
// batch accounting — then finish per-packet. Unpinned packets (legacy
// drain mode) fall back to the per-packet path. Returns how many packets
// were dequeued this round.
func (s *Switch) egestBatch(scratch []*pkt.Packet) int {
	n := 0
	for n < len(scratch) {
		p, ok := s.pl.TM().DequeueRR()
		if !ok {
			break
		}
		scratch[n] = p
		n++
	}
	if n == 0 {
		return 0
	}
	for i := 0; i < n; {
		v, _ := scratch[i].Ver.(*progVersion)
		if v == nil {
			s.egestPacket(scratch[i])
			scratch[i] = nil
			i++
			continue
		}
		j := i + 1
		for j < n {
			if vj, _ := scratch[j].Ver.(*progVersion); vj != v {
				break
			}
			j++
		}
		group := scratch[i:j]
		env := s.dp.GetEnv(v.design)
		v.runEgressBatch(s.pl, group, env)
		s.dp.PutEnv(env)
		for k, p := range group {
			p.Ver = nil
			s.egestFinish(p, v, !p.Drop)
			v.unpin()
			group[k] = nil
		}
		i = j
	}
	return n
}

// egestPacket runs the egress half on one dequeued packet and transmits
// the survivor. A packet carrying a pinned program version (hitless mode)
// finishes under that version and releases it here.
func (s *Switch) egestPacket(p *pkt.Packet) {
	v, _ := p.Ver.(*progVersion)
	var d *dataplane.Design
	if v != nil {
		p.Ver = nil
		defer v.unpin()
		d = v.design
	} else {
		d = s.dp.Design()
	}
	env := s.dp.GetEnv(d)
	env.Trace = p.Trace
	env.Timed = p.Timed
	var survived bool
	if v != nil {
		survived = v.runEgress(s.pl, p, env)
	} else {
		survived = s.pl.RunEgress(p, d.Parser, s, env)
	}
	s.dp.PutEnv(env)
	s.egestFinish(p, v, survived)
}

// egestFinish is the post-stage half of egress: drop bookkeeping, punt,
// INT sink, transmit, telemetry finish, flow accounting and pool return.
// Shared by the per-packet path and the batched one; releasing the
// packet's pinned version is the caller's job.
func (s *Switch) egestFinish(p *pkt.Packet, v *progVersion, survived bool) {
	fl := s.flows.Peek(p.InPort)
	if !survived {
		dv := dataplane.DropVerdict(p)
		s.dp.FinishPacket(p, dv)
		if fl != nil {
			fl.Finish(p.RSS, flowstat.VerdictOf(dv), flowLat(p), flowstat.Now())
		}
		s.dp.PutPacket(p)
		return // dropped in egress
	}
	if p.ToCPU {
		s.punt(p)
	}
	dataplane.SurfaceOutPort(p)
	// INT sink at the egress boundary (pipelined mode): strip + decode
	// before transmit. One atomic load when INT is off; version-consistent
	// with the program that stamped when the packet is pinned.
	sink := s.intSinkP.Load()
	if v != nil {
		sink = v.sink
	}
	if sink != nil {
		sink.process(p)
	}
	if p.OutPort >= 0 && p.OutPort < s.ports.Len() {
		if port, err := s.ports.Port(p.OutPort); err == nil && !port.Send(p.Data) {
			s.txFailed(p)
		}
	} else {
		s.tel.noPortDrops.Inc()
	}
	verdict := dataplane.Verdict(p, true, s.ports.Len())
	s.dp.FinishPacket(p, verdict)
	if fl != nil {
		fl.Finish(p.RSS, flowstat.VerdictOf(verdict), flowLat(p), flowstat.Now())
	}
	s.dp.PutPacket(p)
}
