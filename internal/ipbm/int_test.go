package ipbm

import (
	"sync/atomic"
	"testing"
	"time"

	"ipsa/internal/intmd"
	"ipsa/internal/tsp"
)

// counterClock is a deterministic monotonic clock for differential INT
// tests: every read advances 100ns.
func counterClock() func() int64 {
	var n int64
	return func() int64 {
		n += 100
		return n
	}
}

// TestIntEndToEnd: enable INT in situ, route a packet, and check the
// whole arc — stamps accumulate per stage, the sink strips the trailer
// before the packet leaves, the decoded report names the stages in
// pipeline order, and the audit trail records the toggle.
func TestIntEndToEnd(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	sw.intNow = counterClock()
	sw.intDepth = func(port int) int { return 3 }

	// Before enabling: no stamping, no reports.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := intmd.Parse(p.Data); ok {
		t.Fatal("INT-disabled switch emitted a trailer")
	}
	if got := sw.IntReport(0); got != nil {
		t.Fatalf("reports while disabled: %v", got)
	}

	if err := sw.SetInt(true); err != nil {
		t.Fatal(err)
	}
	if !sw.IntEnabled() {
		t.Fatal("SetInt(true) did not stick")
	}
	plainLen := len(p.Data)
	p, err = sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("routed packet dropped with INT on")
	}
	// The sink stripped the trailer: the wire packet is byte-identical in
	// length to the INT-off run.
	if _, _, ok := intmd.Parse(p.Data); ok {
		t.Error("trailer left the switch")
	}
	if len(p.Data) != plainLen {
		t.Errorf("stripped length %d != plain length %d", len(p.Data), plainLen)
	}

	reports := sw.IntReport(0)
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	rep := reports[0]
	if len(rep.Hops) < 3 {
		t.Fatalf("hop records = %d, want >= 3 (path %s)", len(rep.Hops), rep.Path())
	}
	if rep.InPort != inPort || rep.OutPort != outPort {
		t.Errorf("report ports in=%d out=%d", rep.InPort, rep.OutPort)
	}
	for i, h := range rep.Hops {
		if h.SwitchID != DefaultOptions().IntSwitchID {
			t.Errorf("hop %d switch id = %d", i, h.SwitchID)
		}
		if h.Stage == "" {
			t.Errorf("hop %d stage id %#x unresolved", i, h.StageID)
		}
		if h.QDepth != 3 {
			t.Errorf("hop %d qdepth = %d, want injected 3", i, h.QDepth)
		}
		if h.OutNanos < h.InNanos {
			t.Errorf("hop %d time runs backwards: in=%d out=%d", i, h.InNanos, h.OutNanos)
		}
		// In-band latency chaining: each hop starts where the previous
		// one ended.
		if i > 0 && h.InNanos != rep.Hops[i-1].OutNanos {
			t.Errorf("hop %d in=%d != hop %d out=%d", i, h.InNanos, i-1, rep.Hops[i-1].OutNanos)
		}
	}

	// Sink fed the per-stage series and counters.
	if v := sw.tel.Reg.Counter("ipsa_int_stamps_total").Value(); v != uint64(len(rep.Hops)) {
		t.Errorf("stamps counter = %d, want %d", v, len(rep.Hops))
	}
	if v := sw.tel.Reg.Counter("ipsa_int_reports_total").Value(); v != 1 {
		t.Errorf("reports counter = %d", v)
	}

	// Disable in situ: stamping stops, and both toggles left audit events.
	if err := sw.SetInt(false); err != nil {
		t.Fatal(err)
	}
	p, err = sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := intmd.Parse(p.Data); ok {
		t.Error("trailer present after disable")
	}
	events := sw.EventsDump(0)
	kinds := make(map[string]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds["int_enable"] != 1 || kinds["int_disable"] != 1 {
		t.Errorf("audit kinds: %v", kinds)
	}
	for _, ev := range events {
		if (ev.Kind == "int_enable" || ev.Kind == "int_disable") &&
			(ev.TSPsWritten == 0 || ev.ConfigHash == "") {
			t.Errorf("INT toggle event lacks audit detail: %+v", ev)
		}
	}
}

// TestIntDifferentialCompiledVsInterp: with a deterministic clock and
// queue-depth source injected into both switches, the compiled IntStamp
// op and the interpreter epilogue must produce byte-identical packets
// and hop-identical sink reports.
func TestIntDifferentialCompiledVsInterp(t *testing.T) {
	interpOpts := DefaultOptions()
	interpOpts.Exec = tsp.ExecInterp
	a := switchFromOpts(t, compilerOpts(), DefaultOptions())
	b := switchFromOpts(t, compilerOpts(), interpOpts)
	for _, sw := range []*Switch{a, b} {
		sw.intNow = counterClock()
		sw.intDepth = func(port int) int { return port }
		if err := sw.SetInt(true); err != nil {
			t.Fatal(err)
		}
	}
	runDiff(t, a, b, diffTraffic(t, 48), "INT compiled vs interp")

	ra, rb := a.IntReport(0), b.IntReport(0)
	if len(ra) == 0 || len(ra) != len(rb) {
		t.Fatalf("report counts diverged: compiled=%d interp=%d", len(ra), len(rb))
	}
	for i := range ra {
		ha, hb := ra[i].Hops, rb[i].Hops
		if len(ha) != len(hb) {
			t.Fatalf("report %d hop counts diverged: %d vs %d", i, len(ha), len(hb))
		}
		for j := range ha {
			if ha[j] != hb[j] {
				t.Fatalf("report %d hop %d diverged:\ncompiled: %+v\ninterp:   %+v",
					i, j, ha[j], hb[j])
			}
		}
	}
}

// TestIntSoakPipelinedConservation: INT toggled both ways under live
// pipelined traffic must lose no packets — every injected frame ends in
// exactly one verdict counter — and must leave no executor faults.
func TestIntSoakPipelinedConservation(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.RunPipelined(2); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()
	in, err := sw.Ports().Port(inPort)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sw.Ports().Port(outPort)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the egress ring from filling: packets sent to a full ring are
	// tx-dropped at the port, which is fine, but drain keeps it moving.
	var stopDrain atomic.Bool
	go func() {
		for !stopDrain.Load() {
			if _, ok := out.Drain(); !ok {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// waitFor spins until cond() or the deadline; injection outpaces the
	// workers, so the toggle points synchronize on observed effects
	// rather than injection counts.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	stamps := func() uint64 { return sw.tel.Reg.Counter("ipsa_int_stamps_total").Value() }
	reports := func() uint64 { return sw.tel.Reg.Counter("ipsa_int_reports_total").Value() }

	const n = 600
	injected := 0
	for i := 0; i < n; i++ {
		switch i {
		case n / 3:
			if err := sw.SetInt(true); err != nil {
				t.Fatal(err)
			}
		case 2 * n / 3:
			// Only flip back once the INT window demonstrably carried
			// traffic end to end (stamped AND sunk).
			waitFor("stamped reports", func() bool { return stamps() > 0 && reports() > 0 })
			if err := sw.SetInt(false); err != nil {
				t.Fatal(err)
			}
		}
		for !in.Inject(v4Packet(t, [4]byte{10, 1, 0, byte(i)}, routerMAC, 64)) {
			time.Sleep(time.Millisecond)
		}
		injected++
	}

	// Conservation: wait for every injected packet to reach a verdict.
	finished := func() uint64 {
		var sum uint64
		for _, c := range sw.tel.verdictCounters() {
			sum += c.Value()
		}
		return sum
	}
	deadline := time.Now().Add(5 * time.Second)
	for finished() < uint64(injected) {
		if time.Now().After(deadline) {
			t.Fatalf("conservation: %d/%d packets reached a verdict (tm depth %d)",
				finished(), injected, sw.Pipeline().TM().DepthSum())
		}
		time.Sleep(time.Millisecond)
	}
	stopDrain.Store(true)
	if got := finished(); got != uint64(injected) {
		t.Errorf("verdicts %d != injected %d", got, injected)
	}
	if f := sw.Faults(); f.BadTemplate.Load() != 0 || f.InvalidHeaderAccess.Load() != 0 {
		t.Errorf("faults after INT soak: bad=%d invalid=%d",
			f.BadTemplate.Load(), f.InvalidHeaderAccess.Load())
	}
	// The INT window actually stamped and sank reports.
	if stamps() == 0 {
		t.Error("no stamps during the INT window")
	}
	if reports() == 0 {
		t.Error("no sink reports during the INT window")
	}
	// The toggles are on the audit trail as hitless epoch publishes:
	// DrainNanos stays 0 because nothing drained.
	var toggles int
	for _, ev := range sw.EventsDump(0) {
		if ev.Kind == "int_enable" || ev.Kind == "int_disable" {
			toggles++
			if !ev.Hitless || ev.DrainNanos != 0 || ev.Epoch == 0 {
				t.Errorf("toggle event not hitless: %+v", ev)
			}
		}
	}
	if toggles != 2 {
		t.Errorf("toggle events = %d, want 2", toggles)
	}
}

// TestIntDisabledZeroAlloc pins the tentpole's overhead contract: with
// INT off (the default), the steady-state forwarding path still performs
// zero heap allocations per packet. `make bench-int` runs this.
func TestIntDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the measured path")
	}
	sw, _ := newBaseSwitch(t)
	raw := v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64)
	data := make([]byte, len(raw))
	fwd := func() {
		copy(data, raw) // Forward rewrites headers in place; reset each run
		if _, err := sw.Forward(data, inPort); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		fwd() // warm pools
	}
	if avg := testing.AllocsPerRun(200, fwd); avg != 0 {
		t.Errorf("INT-disabled hot path allocates: %.2f allocs/op", avg)
	}
	// Sanity: after an enable/disable round trip the path is allocation-
	// free again (the swap must not leave stamping residue behind).
	if err := sw.SetInt(true); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetInt(false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		fwd()
	}
	if avg := testing.AllocsPerRun(200, fwd); avg != 0 {
		t.Errorf("hot path allocates after INT round trip: %.2f allocs/op", avg)
	}
}

// TestIntUpstreamTrailerExtended: a packet arriving with upstream hop
// records (transit mode) gets this switch's hops appended after them,
// and the sink report carries the full path.
func TestIntUpstreamTrailerExtended(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	sw.intNow = counterClock()
	if err := sw.SetInt(true); err != nil {
		t.Fatal(err)
	}
	raw := v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64)
	raw = intmd.AppendHop(raw, intmd.HopRecord{
		SwitchID: 99, StageID: 0xF000, InNanos: 10, OutNanos: 20, LatencyNanos: 10,
	})
	p, err := sw.ProcessPacket(raw, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("transit packet dropped")
	}
	reports := sw.IntReport(1)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	hops := reports[0].Hops
	if len(hops) < 4 {
		t.Fatalf("hops = %d, want upstream + >=3 local", len(hops))
	}
	if hops[0].SwitchID != 99 {
		t.Errorf("first hop switch = %d, want upstream 99", hops[0].SwitchID)
	}
	if hops[0].Stage != "" {
		t.Errorf("foreign stage resolved to %q", hops[0].Stage)
	}
	// The first local hop chains off the upstream egress timestamp.
	if hops[1].InNanos != hops[0].OutNanos {
		t.Errorf("local chain start %d != upstream out %d", hops[1].InNanos, hops[0].OutNanos)
	}
}
