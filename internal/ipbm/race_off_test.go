//go:build !race

package ipbm

const raceEnabled = false
