package ipbm

// shard.go is the flow-affine sharded forwarding mode: an RSS-style hash
// over raw frame bytes steers every packet to one of N shard workers,
// each running ingress→TM→egress to completion against its own TM queues
// and packet freelist. Same-flow packets always land on the same shard
// and the shard processes its input in FIFO order, so per-flow ordering
// holds by construction while independent flows scale across cores — the
// software analogue of replicating an RMT pipeline per hardware lane.
// In-situ reconfiguration is hitless here by batch-granular epoch
// pinning: each worker wakeup pins the current program version once,
// processes its whole batch (including the TM drain) under it, and
// unpins — so a reconfig storm never blocks a shard, and the version
// pin/unpin cost amortizes over the batch. DrainReconfig switches leave
// the store unpublished and fall back to the shared pipeline's read
// lock, draining all shards through backpressure as before.

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"ipsa/internal/dataplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/health"
	"ipsa/internal/netio"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
)

// MaxShards bounds RunSharded's shard count: lane 0 of every striped
// counter belongs to the shared synchronous/pipelined paths, and the
// stripe sets are sized for MaxShards worker lanes above it.
const MaxShards = 63

// DefaultBatch is the frame batch size used when RunSharded (or the
// -batch flag) is given 0: large enough to amortize per-wakeup costs,
// small enough to keep worst-case added latency at microseconds.
const DefaultBatch = 32

// shardFrame is one steered frame en route to its shard worker. hash is
// the RSS flow hash the reader already computed for steering, carried
// along so flow accounting never hashes a frame twice.
type shardFrame struct {
	data []byte
	hash uint64
	port int32
}

// shardRunner is one execution lane of the sharded mode. Everything here
// is either owned by the single worker goroutine (dsh, txq) or safe for
// the port readers feeding it (in) and scrape-time aggregation (tm
// depths, counters).
type shardRunner struct {
	idx int
	in  chan shardFrame
	tm  *pipeline.TrafficManager
	dsh *dataplane.Shard

	// txq accumulates egress frames per output port within one TM drain
	// so transmission uses the port's batched path; storage is retained
	// across drains.
	txq [][][]byte

	// frames/ps/eps are the worker's batch scratch: the frames of one
	// wakeup, the packets built from them for the stage-major ingress
	// sweep, and the TM drain collected for the egress sweep. Owned by
	// the worker goroutine, retained across wakeups.
	frames []shardFrame
	ps     []*pkt.Packet
	eps    []*pkt.Packet

	rx      *telemetry.Counter // frames steered to this shard
	batches *telemetry.Counter // worker wakeups (rx/batches = mean batch)

	// fl is this shard's flow table (nil with accounting disabled). The
	// worker goroutine is its only writer — same single-writer discipline
	// as the striped counters. now is the batch-granular timestamp the
	// worker refreshes once per wakeup for flow first/last/idle times.
	fl  *flowstat.Table
	now int64

	// gate is the stall-injection test hook: when non-nil, the worker
	// blocks on the gate channel at its next wakeup, freezing its
	// heartbeat while frames queue behind it — exactly the failure the
	// health watchdog exists to flag. One atomic load per wakeup.
	gate atomic.Pointer[chan struct{}]
}

// shardSet is the published sharded-mode state, stored behind an atomic
// pointer so scrape-time aggregation and the INT depth source can read it
// without coordination.
type shardSet struct {
	shards []*shardRunner
	batch  int
}

// RunSharded starts the sharded forwarding mode: one batched reader per
// port steers frames by flow hash into shards worker lanes, each running
// the full ingress→TM→egress lifecycle against per-shard queues and
// freelists. batch bounds the frames one reader wakeup or one worker
// wakeup handles (0 = DefaultBatch). Stop with Shutdown; mutually
// exclusive with Run/RunPipelined on the same switch.
func (s *Switch) RunSharded(shards, batch int) error {
	if shards < 1 || shards > MaxShards {
		return fmt.Errorf("ipbm: shard count %d outside [1,%d]", shards, MaxShards)
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	if s.dp.Design() == nil {
		return fmt.Errorf("ipbm: no configuration installed")
	}
	if s.shardsP.Load() != nil {
		return fmt.Errorf("ipbm: sharded mode already running")
	}
	set := &shardSet{batch: batch}
	inDepth := s.opts.QueueDepth
	if inDepth < batch {
		inDepth = batch
	}
	for i := 0; i < shards; i++ {
		l := telemetry.L("shard", strconv.Itoa(i))
		set.shards = append(set.shards, &shardRunner{
			idx: i,
			in:  make(chan shardFrame, inDepth),
			tm:  pipeline.NewTrafficManager(s.ports.Len(), s.opts.QueueDepth),
			dsh: s.dp.NewShard(i+1, 2*batch),
			txq: make([][][]byte, s.ports.Len()),

			rx:      s.tel.Reg.Counter("ipsa_shard_rx_frames_total", l),
			batches: s.tel.Reg.Counter("ipsa_shard_batches_total", l),

			fl: s.flows.Lane(i),

			frames: make([]shardFrame, 0, batch),
			ps:     make([]*pkt.Packet, 0, batch),
			eps:    make([]*pkt.Packet, 0, batch),
		})
	}
	s.shardsP.Store(set)

	// Port readers pull frame batches and steer by flow hash. A blocking
	// send into a full shard queue is the backpressure path: the reader
	// stalls, the port's rx ring fills, and new arrivals tail-drop at the
	// port — drop policy stays at the edge, not mid-pipeline.
	var rxWG sync.WaitGroup
	for i := 0; i < s.ports.Len(); i++ {
		port, _ := s.ports.Port(i)
		rxWG.Add(1)
		s.runWG.Add(1)
		go s.shardReader(i, netio.Batched(port), set, &rxWG)
	}
	// Close the shard queues only after every reader has exited, so
	// workers drain all steered frames and then stop.
	s.runWG.Add(1)
	go func() {
		defer s.runWG.Done()
		rxWG.Wait()
		for _, sh := range set.shards {
			close(sh.in)
		}
	}()
	for _, sh := range set.shards {
		s.runWG.Add(1)
		go s.shardWorker(sh, batch)
	}
	// Watchdog lanes: a shard is stalled when its wakeup counter freezes
	// while frames sit in its input queue or TM — the TM-empty guard
	// keeps an idle shard from ever being flagged.
	for _, sh := range set.shards {
		sh := sh
		s.health.AddLane(health.Lane{
			Name:     "shard-" + strconv.Itoa(sh.idx),
			Progress: sh.batches.Value,
			Pending:  func() int { return len(sh.in) + sh.tm.DepthSum() },
			Series:   "ipsa_shard_rx_frames_total",
			SeriesLabels: []telemetry.Label{
				telemetry.L("shard", strconv.Itoa(sh.idx)),
			},
		})
	}
	s.health.Start()
	s.log.Info("sharded forwarding started", "shards", shards, "batch", batch)
	return nil
}

// blockShard is the deliberate-stall test hook: shard i's worker blocks
// on the returned gate at its next wakeup until release is called.
func (s *Switch) blockShard(i int) (release func(), err error) {
	set := s.shardsP.Load()
	if set == nil || i < 0 || i >= len(set.shards) {
		return nil, fmt.Errorf("ipbm: no such shard %d", i)
	}
	ch := make(chan struct{})
	set.shards[i].gate.Store(&ch)
	return func() {
		set.shards[i].gate.Store(nil)
		close(ch)
	}, nil
}

// shardReader moves frames from one port into the shard queues. It exits
// when the port closes (Shutdown); frames already read are still steered.
func (s *Switch) shardReader(portIdx int, port netio.BatchPort, set *shardSet, rxWG *sync.WaitGroup) {
	defer s.runWG.Done()
	defer rxWG.Done()
	bufs := make([][]byte, set.batch)
	n := uint64(len(set.shards))
	for {
		k, ok := port.RecvBatch(bufs)
		for j := 0; j < k; j++ {
			h := pkt.RSSHash(bufs[j])
			sh := set.shards[h%n]
			sh.in <- shardFrame{data: bufs[j], hash: h, port: int32(portIdx)}
			bufs[j] = nil
		}
		if !ok {
			return
		}
	}
}

// shardWorker is one shard's event loop: park on the input queue (the
// channel recv is the wakeup — an idle shard costs nothing), collect up
// to batch frames without blocking again, run the whole collection
// through the ingress half batch-at-a-time, then drain the shard TM
// through egress and flush the per-port transmit batches.
// Every frame of one wakeup — and the TM drain that follows — executes
// one pinned program version: shardDrain always empties the shard TM
// before the worker parks again, so no packet outlives its batch's pin.
func (s *Switch) shardWorker(sh *shardRunner, batch int) {
	defer s.runWG.Done()
	for {
		f, ok := <-sh.in
		if !ok {
			sh.now = flowstat.Now()
			v := s.epochs.pin()
			s.shardDrain(sh, v)
			if v != nil {
				v.unpin()
			}
			return
		}
		if g := sh.gate.Load(); g != nil {
			<-*g
		}
		sh.now = flowstat.Now()
		frames := append(sh.frames[:0], f)
		closed := false
	fill:
		for len(frames) < batch {
			select {
			case f2, ok2 := <-sh.in:
				if !ok2 {
					closed = true
					break fill
				}
				frames = append(frames, f2)
			default:
				break fill
			}
		}
		v := s.epochs.pin()
		s.shardProcess(sh, frames, v)
		sh.rx.Add(uint64(len(frames)))
		sh.batches.Inc()
		s.shardDrain(sh, v)
		if v != nil {
			v.unpin()
		}
		sh.frames = frames[:0]
		if closed {
			return
		}
	}
}

// shardProcess runs one wakeup's frames through the ingress half. Under
// a pinned version the packets are built first and then executed
// stage-major as one batch (with match-bucket prefetch one packet
// ahead); survivors are admitted to the shard TM. The legacy drain path
// (v == nil) keeps per-frame execution under the pipeline's read lock.
func (s *Switch) shardProcess(sh *shardRunner, frames []shardFrame, v *progVersion) {
	if v == nil {
		for _, f := range frames {
			s.shardIngest(sh, f, nil)
		}
		return
	}
	d := v.design
	ps := sh.ps[:0]
	for _, f := range frames {
		p, err := sh.dsh.GetPacket(d, f.data, int(f.port))
		if err != nil {
			s.admitFailed(sh.dsh.Lane(), int(f.port), f.data)
			continue
		}
		s.dp.BeginPacket(p)
		if p.Trace != nil {
			p.Trace.Epoch = v.epoch
		}
		p.RSS = f.hash
		if sh.fl != nil {
			sh.fl.Touch(f.hash, f.data, len(f.data), sh.now)
			if p.Timed {
				p.FlowNanos = flowstat.Now()
			}
		}
		ps = append(ps, p)
	}
	env := sh.dsh.Env(d)
	v.runIngressBatch(s.pl, ps, env)
	for i, p := range ps {
		if p.Drop {
			dv := dataplane.DropVerdict(p)
			s.dp.FinishPacket(p, dv)
			if sh.fl != nil {
				sh.fl.Finish(p.RSS, flowstat.VerdictOf(dv), flowLat(p), sh.now)
			}
			sh.dsh.PutPacket(p)
		} else if !sh.tm.Admit(p) {
			s.dp.FinishPacket(p, "tm_drop")
			if sh.fl != nil {
				sh.fl.Finish(p.RSS, flowstat.VerdictTMDrop, flowLat(p), sh.now)
			}
			sh.dsh.PutPacket(p)
		}
		ps[i] = nil
	}
	sh.ps = ps[:0]
}

// shardIngest is ingestOne against the shard's freelist, Env and TM,
// under the batch's pinned version (nil = legacy drain path).
func (s *Switch) shardIngest(sh *shardRunner, f shardFrame, v *progVersion) {
	var d *dataplane.Design
	if v != nil {
		d = v.design
	} else if d = s.dp.Design(); d == nil {
		return
	}
	p, err := sh.dsh.GetPacket(d, f.data, int(f.port))
	if err != nil {
		s.admitFailed(sh.dsh.Lane(), int(f.port), f.data)
		return
	}
	s.dp.BeginPacket(p)
	if p.Trace != nil && v != nil {
		p.Trace.Epoch = v.epoch
	}
	p.RSS = f.hash
	if sh.fl != nil {
		sh.fl.Touch(f.hash, f.data, len(f.data), sh.now)
		if p.Timed {
			p.FlowNanos = flowstat.Now()
		}
	}
	env := sh.dsh.Env(d)
	env.Trace = p.Trace
	env.Timed = p.Timed
	var ok bool
	if v != nil {
		ok = v.runIngress(s.pl, p, env)
	} else {
		ok = s.pl.RunIngress(p, d.Parser, s, env)
	}
	if !ok {
		dv := dataplane.DropVerdict(p)
		s.dp.FinishPacket(p, dv)
		if sh.fl != nil {
			sh.fl.Finish(p.RSS, flowstat.VerdictOf(dv), flowLat(p), sh.now)
		}
		sh.dsh.PutPacket(p)
		return
	}
	if !sh.tm.Admit(p) {
		s.dp.FinishPacket(p, "tm_drop")
		if sh.fl != nil {
			sh.fl.Finish(p.RSS, flowstat.VerdictTMDrop, flowLat(p), sh.now)
		}
		sh.dsh.PutPacket(p)
	}
}

// flowLat is the sampled per-flow latency: the time since the packet's
// admission stamp, taken only for latency-sampled packets (-1 = none).
func flowLat(p *pkt.Packet) int64 {
	if p.Timed && p.FlowNanos > 0 {
		return flowstat.Now() - p.FlowNanos
	}
	return -1
}

// shardDrain empties the shard TM through the egress half, then flushes
// the accumulated per-port transmit batches. Under a pinned version the
// whole drain is collected first and executed stage-major as one batch;
// the legacy path keeps per-packet execution.
func (s *Switch) shardDrain(sh *shardRunner, v *progVersion) {
	if v == nil {
		flush := false
		for {
			p, ok := sh.tm.DequeueRR()
			if !ok {
				break
			}
			s.shardEgest(sh, p)
			flush = true
		}
		if flush {
			s.shardFlushTx(sh)
		}
		return
	}
	ps := sh.eps[:0]
	for {
		p, ok := sh.tm.DequeueRR()
		if !ok {
			break
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		sh.eps = ps
		return
	}
	env := sh.dsh.Env(v.design)
	v.runEgressBatch(s.pl, ps, env)
	for i, p := range ps {
		s.shardDispose(sh, p, v, !p.Drop)
		ps[i] = nil
	}
	sh.eps = ps[:0]
	s.shardFlushTx(sh)
}

// shardEgest runs the egress half on one packet on the legacy drain path
// (no published program version). The tail mirrors egestOne, with the
// shard freelist in place of the shared pool and XmitBatch in place of
// Send.
func (s *Switch) shardEgest(sh *shardRunner, p *pkt.Packet) {
	d := s.dp.Design()
	env := sh.dsh.Env(d)
	env.Trace = p.Trace
	env.Timed = p.Timed
	survived := s.pl.RunEgress(p, d.Parser, s, env)
	s.shardDispose(sh, p, nil, survived)
}

// shardDispose finishes one egressed packet: drop bookkeeping or punt,
// out-port surfacing, INT sink, transmit queueing, telemetry finish,
// flow accounting and freelist return — shared by the legacy per-packet
// path (v == nil) and the batched epoch path.
func (s *Switch) shardDispose(sh *shardRunner, p *pkt.Packet, v *progVersion, survived bool) {
	if !survived {
		dv := dataplane.DropVerdict(p)
		s.dp.FinishPacket(p, dv)
		if sh.fl != nil {
			sh.fl.Finish(p.RSS, flowstat.VerdictOf(dv), flowLat(p), sh.now)
		}
		sh.dsh.PutPacket(p)
		return
	}
	if p.ToCPU {
		s.punt(p)
	}
	dataplane.SurfaceOutPort(p)
	sink := s.intSinkP.Load()
	if v != nil {
		sink = v.sink
	}
	if sink != nil {
		sink.process(p)
	}
	if p.OutPort >= 0 && p.OutPort < len(sh.txq) {
		sh.txq[p.OutPort] = append(sh.txq[p.OutPort], p.Data)
	} else {
		s.tel.noPortDrops.Inc()
	}
	verdict := dataplane.Verdict(p, true, s.ports.Len())
	s.dp.FinishPacket(p, verdict)
	if sh.fl != nil {
		sh.fl.Finish(p.RSS, flowstat.VerdictOf(verdict), flowLat(p), sh.now)
	}
	sh.dsh.PutPacket(p)
}

// shardFlushTx transmits each port's accumulated frames in one batched
// call, retaining the queue storage for the next drain.
func (s *Switch) shardFlushTx(sh *shardRunner) {
	for i := range sh.txq {
		frames := sh.txq[i]
		if len(frames) == 0 {
			continue
		}
		if port, err := s.ports.Port(i); err == nil {
			// XmitBatch reports how many frames the port accepted; the
			// remainder is per-frame-anonymous (no packet to capture), so
			// only the tx_fail counter moves, on this shard's stripe.
			sent := port.XmitBatch(frames)
			s.tel.countTxFail(sh.dsh.Lane(), uint64(len(frames)-sent))
		}
		for j := range frames {
			frames[j] = nil
		}
		sh.txq[i] = frames[:0]
	}
}

// Sharded reports the running shard count (0 when the sharded mode is not
// active) and the configured batch size.
func (s *Switch) Sharded() (shards, batch int) {
	set := s.shardsP.Load()
	if set == nil {
		return 0, 0
	}
	return len(set.shards), set.batch
}

// tmDepthSum totals TM occupancy across the shared TM and every shard TM
// (audit-event "packets in flight" source).
func (s *Switch) tmDepthSum() int {
	n := s.pl.TM().DepthSum()
	if set := s.shardsP.Load(); set != nil {
		for _, sh := range set.shards {
			n += sh.tm.DepthSum()
		}
	}
	return n
}

// tmDepthFast is the per-packet queue-depth source for the INT stamper:
// the port's occupancy summed over the shared TM and every shard TM,
// lock-free and approximate under concurrency like DepthFast itself.
func (s *Switch) tmDepthFast(port int) int {
	return s.pl.TM().DepthFast(port) + s.shardDepth(port)
}

// shardDepth is the shard TMs' combined occupancy for one port (0 when
// the sharded mode is inactive).
func (s *Switch) shardDepth(port int) int {
	n := 0
	if set := s.shardsP.Load(); set != nil {
		for _, sh := range set.shards {
			n += sh.tm.DepthFast(port)
		}
	}
	return n
}

// TMStats totals enqueued packets and tail drops across the shared TM and
// every shard TM.
func (s *Switch) TMStats() (enqueued, tailDrops uint64) {
	enqueued, tailDrops = s.pl.TM().Stats()
	if set := s.shardsP.Load(); set != nil {
		for _, sh := range set.shards {
			e, d := sh.tm.Stats()
			enqueued += e
			tailDrops += d
		}
	}
	return enqueued, tailDrops
}
