package ipbm

// int.go is the switch-level face of in-band telemetry: enabling INT is
// an in-situ reconfiguration (every loaded TSP's stage programs are
// rebuilt with the IntStamp epilogue and swapped under a pipeline drain,
// exactly like a template patch), and the sink strips + decodes trailers
// at the egress boundary, feeding per-stage histograms, flow-path
// counters and a ring of decoded reports.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"

	"ipsa/internal/intmd"
	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/tsp"
)

// intStageSeries is one stage's pre-resolved sink series, so per-hop
// observation is a map hit plus atomic adds.
type intStageSeries struct {
	name  string
	lat   *telemetry.Histogram // ipsa_int_hop_latency_seconds{stage=...}
	depth *telemetry.Histogram // ipsa_int_queue_depth{stage=...}
}

// intSink is the published sink state: immutable after construction,
// swapped atomically so the per-packet check is one pointer load.
type intSink struct {
	stages  map[uint16]*intStageSeries
	reports *intmd.ReportRing
	reg     *telemetry.Registry
	sunk    *telemetry.Counter
}

// newIntSink resolves the per-stage series for every stage of cfg. The
// stage-ID map is derived with tsp.IntStageID, the same function the
// stamper compiled into the programs, so decode agrees with encode.
func newIntSink(cfg *template.Config, reg *telemetry.Registry, ringSize int) *intSink {
	sink := &intSink{
		stages:  make(map[uint16]*intStageSeries, len(cfg.Stages)),
		reports: intmd.NewReportRing(ringSize),
		reg:     reg,
		sunk:    reg.Counter("ipsa_int_reports_total"),
	}
	for name := range cfg.Stages {
		id := tsp.IntStageID(name)
		sink.stages[id] = &intStageSeries{
			name:  name,
			lat:   reg.Histogram("ipsa_int_hop_latency_seconds", telemetry.L("stage", name)),
			depth: reg.Histogram("ipsa_int_queue_depth", telemetry.L("stage", name)),
		}
	}
	return sink
}

// process strips p's INT trailer (if any), resolves stage names, feeds
// the telemetry series and retains the decoded report. Runs only while a
// sink is published, i.e. INT-enabled cost.
func (sink *intSink) process(p *pkt.Packet) {
	hops, payloadLen, ok := intmd.Parse(p.Data)
	if !ok {
		return
	}
	p.Data = p.Data[:payloadLen]
	for i := range hops {
		if ss := sink.stages[hops[i].StageID]; ss != nil {
			hops[i].Stage = ss.name
			ss.lat.ObserveNanos(int64(hops[i].LatencyNanos))
			ss.depth.ObserveNanos(int64(hops[i].QDepth))
		}
	}
	rep := intmd.Report{InPort: p.InPort, OutPort: p.OutPort, Bytes: payloadLen, Hops: hops}
	// Flow-path counter: how many packets took each stage sequence. The
	// registry's get-or-create mutex is acceptable here — this path only
	// runs with INT enabled.
	sink.reg.Counter("ipsa_int_path_packets_total", telemetry.L("path", rep.Path())).Inc()
	sink.reports.Push(rep)
	sink.sunk.Inc()
}

// configHash identifies a configuration in audit events: truncated
// SHA-256 of its compact serialized form. Hashes only ever compare
// against other hashes from this function, so the on-disk indented
// rendering would just be wasted encoder time on the apply path.
func configHash(cfg *template.Config) string {
	if cfg == nil {
		return ""
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// IntEnabled reports whether INT stamping is currently compiled into the
// loaded stage programs.
func (s *Switch) IntEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.intOn
}

// SetInt enables or disables INT stamping. This is a true in-situ
// update: the stage programs of every loaded TSP are rebuilt (with or
// without the compiled IntStamp epilogue), the pipeline drains, and the
// new programs are swapped in — table contents, registers and counters
// are untouched. The resulting audit event carries the drain time and
// verdict-counter deltas like any other apply.
func (s *Switch) SetInt(enabled bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.intOn == enabled {
		return nil
	}
	s.intOn = enabled
	kind := "int_enable"
	if !enabled {
		kind = "int_disable"
	}
	d := s.dp.Design()
	if d == nil {
		// No configuration yet: the flag alone changes what the next
		// ApplyConfig builds.
		s.publishIntState(nil)
		s.tel.Events.Append(telemetry.Event{Kind: kind, Detail: "no config installed; deferred to next apply"})
		return nil
	}
	cfg := d.Cfg
	if !s.opts.DrainReconfig {
		return s.setIntHitless(enabled, kind, cfg)
	}
	runtimes, err := tsp.BuildStageRuntimesOpts(cfg, tsp.BuildOpts{Mode: s.opts.Exec, Int: enabled})
	if err != nil {
		s.intOn = !enabled
		return err
	}
	for _, sr := range runtimes {
		sr.Bind(s)
	}
	hash := configHash(cfg)
	inFlight := s.tmDepthSum()
	before := s.tel.verdictSnapshot()
	rewrote := 0
	opDone := s.health.BeginOp(kind, hash)
	t0 := time.Now()
	err = s.pl.Update(func(sel *pipeline.Selector, tsps []*tsp.TSP) error {
		for i := range tsps {
			var srs []*tsp.StageRuntime
			for _, sn := range orderedStagesOf(cfg, i) {
				srs = append(srs, runtimes[sn])
			}
			if len(srs) > 0 {
				tsps[i].Load(srs)
				rewrote++
			}
		}
		return nil
	})
	drain := time.Since(t0)
	opDone()
	if err != nil {
		s.intOn = !enabled
		return err
	}
	if enabled {
		s.publishIntState(cfg)
	} else {
		s.publishIntState(nil)
	}
	s.tel.tspsWritten.Add(uint64(rewrote))
	s.tel.Events.Append(telemetry.Event{
		Kind:          kind,
		ConfigHash:    hash,
		TSPsWritten:   rewrote,
		DrainNanos:    int64(drain),
		InFlight:      inFlight,
		VerdictDeltas: s.tel.verdictDeltas(before),
	})
	s.log.Debug("INT state changed in situ",
		"kind", kind, "config_hash", hash,
		"tsps_written", rewrote, "drain", drain, "in_flight", inFlight)
	return nil
}

// setIntHitless publishes the INT toggle as a new program-store epoch:
// every stage recompiles (the stamping epilogue changes its structural
// hash, so reuse naturally yields nothing) and packets pinned to the
// previous version finish under the previous INT state — stamping and
// sinking stay consistent per packet with no drain. Called with s.mu
// held and s.intOn already flipped to enabled.
func (s *Switch) setIntHitless(enabled bool, kind string, cfg *template.Config) error {
	hash := configHash(cfg)
	inFlight := s.tmDepthSum()
	before := s.tel.verdictSnapshot()
	if enabled {
		s.publishIntState(cfg)
	} else {
		s.publishIntState(nil)
	}
	pub, err := s.publishProgram(cfg, nil, kind, hash)
	if err != nil {
		s.intOn = !enabled
		return err
	}
	s.tel.tspsWritten.Add(uint64(pub.tspsLoaded))
	s.tel.Events.Append(telemetry.Event{
		Kind:             kind,
		ConfigHash:       hash,
		TSPsWritten:      pub.tspsLoaded,
		DrainNanos:       0,
		Hitless:          true,
		Epoch:            pub.epoch,
		StagesRecompiled: pub.recompiled,
		StagesReused:     pub.reused,
		InFlight:         inFlight,
		VerdictDeltas:    s.tel.verdictDeltas(before),
	})
	s.log.Debug("INT state changed in situ",
		"kind", kind, "config_hash", hash, "epoch", pub.epoch,
		"tsps_written", pub.tspsLoaded, "in_flight", inFlight)
	return nil
}

// publishIntState installs (cfg non-nil) or removes the stamping context
// and sink. Called with s.mu held; the hot path picks the change up via
// atomic loads.
func (s *Switch) publishIntState(cfg *template.Config) {
	if cfg == nil {
		s.dp.SetIntCtx(nil)
		s.intSinkP.Store(nil)
		return
	}
	ctx := &tsp.IntStampCtx{
		SwitchID: s.opts.IntSwitchID,
		MaxHops:  s.opts.IntMaxHops,
		Now:      s.intNow,
		Depth:    s.tmDepthFast,
		Stamps:   s.tel.Reg.Counter("ipsa_int_stamps_total"),
		Skips:    s.tel.Reg.Counter("ipsa_int_stamps_skipped_total"),
	}
	if s.intDepth != nil {
		ctx.Depth = s.intDepth
	}
	s.intSinkP.Store(newIntSink(cfg, s.tel.Reg, s.opts.IntReportRing))
	s.dp.SetIntCtx(ctx)
}

// IntReport returns up to max sink-decoded reports, newest first (0 =
// all retained). Empty while INT is disabled.
func (s *Switch) IntReport(max int) []intmd.Report {
	sink := s.intSinkP.Load()
	if sink == nil {
		return nil
	}
	return sink.reports.Dump(max)
}

// EventsDump returns up to max reconfiguration audit events, newest
// first (0 = all retained).
func (s *Switch) EventsDump(max int) []telemetry.Event {
	return s.tel.Events.Dump(max)
}
