package ipbm

import (
	"fmt"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/flowstat"
	"ipsa/internal/telemetry"
)

// The ctrlplane.Device implementation: what the CCM exposes to the
// controller.

// InsertEntry installs one table entry using the shared key encoding.
func (s *Switch) InsertEntry(req ctrlplane.EntryReq) (int, error) {
	cfg := s.Config()
	if cfg == nil {
		return 0, fmt.Errorf("ipbm: no configuration installed")
	}
	t, ok := cfg.Tables[req.Table]
	if !ok {
		return 0, fmt.Errorf("ipbm: unknown table %q", req.Table)
	}
	if t.IsSelector {
		return 0, fmt.Errorf("ipbm: table %q is a selector; use add_member", req.Table)
	}
	entry, err := ctrlplane.EncodeEntry(t, req)
	if err != nil {
		return 0, err
	}
	mt, ok := s.mm.Table(req.Table)
	if !ok {
		return 0, fmt.Errorf("ipbm: table %q not instantiated", req.Table)
	}
	return mt.Engine().Insert(entry)
}

// DeleteEntry removes an entry by handle.
func (s *Switch) DeleteEntry(table string, handle int) error {
	mt, ok := s.mm.Table(table)
	if !ok {
		return fmt.Errorf("ipbm: unknown table %q", table)
	}
	return mt.Engine().Delete(handle)
}

// AddMember adds an ECMP group member to a selector table.
func (s *Switch) AddMember(req ctrlplane.MemberReq) error {
	cfg := s.Config()
	s.mu.RLock()
	sel := s.selectors[req.Table]
	s.mu.RUnlock()
	if cfg == nil {
		return fmt.Errorf("ipbm: no configuration installed")
	}
	t, ok := cfg.Tables[req.Table]
	if !ok {
		return fmt.Errorf("ipbm: unknown table %q", req.Table)
	}
	if !t.IsSelector || sel == nil {
		return fmt.Errorf("ipbm: table %q is not a selector", req.Table)
	}
	group, err := ctrlplane.EncodeGroupKey(t, req.Group)
	if err != nil {
		return err
	}
	sel.addMember(group, matchResult(req.Tag, req.Params))
	return nil
}

// ListTables reports installed logical tables.
func (s *Switch) ListTables() []ctrlplane.TableStatus {
	cfg := s.Config()
	var out []ctrlplane.TableStatus
	if cfg == nil {
		return out
	}
	for _, name := range sortedTableNames(cfg) {
		t := cfg.Tables[name]
		st := ctrlplane.TableStatus{
			Name: name, Kind: t.Kind, KeyWidth: t.KeyWidth,
			Size: t.Size, Selector: t.IsSelector,
		}
		if t.IsSelector {
			s.mu.RLock()
			if sel := s.selectors[name]; sel != nil {
				st.Entries = sel.memberCount()
			}
			s.mu.RUnlock()
		} else if mt, ok := s.mm.Table(name); ok {
			st.Entries = mt.Engine().Len()
		}
		out = append(out, st)
	}
	return out
}

// TableStats reads a table's hit/miss counters.
func (s *Switch) TableStats(table string) (*ctrlplane.TableStats, error) {
	mt, ok := s.mm.Table(table)
	if !ok {
		return nil, fmt.Errorf("ipbm: unknown table %q", table)
	}
	h, m := mt.Stats()
	return &ctrlplane.TableStats{Hits: h, Misses: m}, nil
}

// ReadRegister reads one register cell.
func (s *Switch) ReadRegister(name string, index uint64) (uint64, error) {
	v, ok := s.regs.Read(name, index)
	if !ok {
		return 0, fmt.Errorf("ipbm: register %q[%d] unreadable", name, index)
	}
	return v, nil
}

// Stats snapshots the device counters.
func (s *Switch) Stats() *ctrlplane.DeviceStats {
	processed, dropped := s.pl.Stats()
	var loads uint64
	for i := 0; i < s.pl.NumTSPs(); i++ {
		t, _ := s.pl.TSP(i)
		loads += t.Loads()
	}
	var ports []ctrlplane.PortStats
	for i := 0; i < s.ports.Len(); i++ {
		p, err := s.ports.Port(i)
		if err != nil {
			continue
		}
		ps := p.DetailedStats()
		ports = append(ports, ctrlplane.PortStats{
			Port: i, Sent: ps.Sent, Received: ps.Received,
			RxDrops: ps.RxDrops, TxDrops: ps.TxDrops,
		})
	}
	return &ctrlplane.DeviceStats{
		Processed:       processed,
		Dropped:         dropped,
		ToCPU:           s.punted.Load(),
		ActiveTSPs:      s.pl.ActiveTSPs(),
		StallNanos:      int64(s.pl.StallTime()),
		TemplateLoads:   loads,
		InvalidAccesses: s.dp.Faults().InvalidHeaderAccess.Load(),
		Ports:           ports,
	}
}

// Flows exposes the flow accounting engine (nil with FlowDisable).
func (s *Switch) Flows() *flowstat.Set { return s.flows }

// FlowDump implements ctrlplane.FlowSource: the active flows across all
// lanes, largest first, truncated to max (0 = all).
func (s *Switch) FlowDump(max int) []flowstat.Record {
	if s.flows == nil {
		return nil
	}
	return s.flows.Dump(max)
}

// FlowRecords returns the exported flow-record ring (completed flows),
// oldest first, truncated to the newest max (0 = all).
func (s *Switch) FlowRecords(max int) []flowstat.Record {
	if s.flows == nil {
		return nil
	}
	return s.flows.Records(max)
}

// HHDump implements ctrlplane.FlowSource: the estimated heavy hitters —
// live flow mass merged with the evicted mass the space-saving
// summaries and sketches remember.
func (s *Switch) HHDump(max int) []flowstat.HeavyHitter {
	if s.flows == nil {
		return nil
	}
	return s.flows.HeavyHitters(max)
}

// Drops exposes the sampled drop-capture ring.
func (s *Switch) Drops() *telemetry.DropRing { return s.tel.Drops }

// DropDump implements ctrlplane.DropSource: the sampled drop-capture
// ring, newest first, truncated to max (<= 0 = all).
func (s *Switch) DropDump(max int) []telemetry.DropRecord {
	return s.tel.Drops.Dump(max)
}

// MetricsDump implements ctrlplane.TelemetrySource.
func (s *Switch) MetricsDump() []telemetry.MetricPoint {
	return s.tel.Reg.Gather()
}

// TraceDump implements ctrlplane.TelemetrySource.
func (s *Switch) TraceDump(max int) []telemetry.TraceRecord {
	return s.tel.Tracer.Dump(max)
}
