package ipbm

import (
	"strconv"

	"ipsa/internal/pipeline"
	"ipsa/internal/pkt"
	"ipsa/internal/telemetry"
	"ipsa/internal/template"
	"ipsa/internal/verdict"
)

// Telemetry is the switch's observability state: a metrics registry, the
// sampled packet flight recorder, and the latency sampler. Hot-path
// handles (config counters, per-TSP latency histograms) are resolved once
// here and at ApplyConfig time; everything whose identity changes at
// runtime (ports, tables, stages) is exported by a scrape-time collector
// so the forwarding path never touches a map.
type Telemetry struct {
	Reg     *telemetry.Registry
	Tracer  *telemetry.Tracer
	LatSamp *telemetry.Sampler
	// Events is the reconfiguration audit trail: every apply/patch/INT
	// toggle records what changed and what the data plane experienced.
	Events *telemetry.EventLog

	// Config-plane counters, resolved at New.
	appliesFull  *telemetry.Counter
	appliesDiff  *telemetry.Counter
	appliesPatch *telemetry.Counter
	tspsWritten  *telemetry.Counter
	migrated     *telemetry.Counter
	// noPortDrops counts packets that finished the pipeline with no valid
	// egress port — silently lost before this counter existed.
	noPortDrops *telemetry.Counter

	// Per-verdict packet counters (ipsa_packets_total{verdict=...}),
	// incremented for every finished packet. Pre-resolved so the hot-path
	// cost is one switch plus one atomic add; their snapshots are how
	// audit events quantify what traffic saw during a swap. Striped:
	// lane 0 is the shared synchronous/pipelined paths, lanes 1..N the
	// shard workers, so concurrent shards never contend on one cache
	// line. Totals fold at read time; per-lane cells are what the
	// ipsa_shard_* export reads.
	vForwarded  *telemetry.StripedCounter
	vDropped    *telemetry.StripedCounter
	vTmDrop     *telemetry.StripedCounter
	vToCPU      *telemetry.StripedCounter
	vNoPort     *telemetry.StripedCounter
	vParseError *telemetry.StripedCounter

	// Attributed drop counters (ipsa_drop_total{reason,stage}): every
	// lost packet increments exactly one cell, striped like the verdict
	// counters, so per-reason sums reconcile exactly against the loss
	// verdicts in ipsa_packets_total. dropACL is per-TSP (stage "tsp<i>")
	// so an intentional stage drop names the processor that fired it; the
	// other reasons each have one fixed drop point. dropTxFail is the one
	// loss outside the verdict taxonomy: the packet finished "forwarded"
	// and the egress port then refused the frame.
	dropACL    []*telemetry.StripedCounter
	dropTM     *telemetry.StripedCounter
	dropNoPort *telemetry.StripedCounter
	dropParse  *telemetry.StripedCounter
	dropTxFail *telemetry.StripedCounter

	// Drops is the sampled drop-capture ring (dropwatch-style): a
	// token-bucket-limited subset of losses keeps its header prefix,
	// drop point and epoch for post-mortem inspection.
	Drops *telemetry.DropRing
}

// verdictNames orders the per-verdict counters for snapshots/deltas —
// the shared taxonomy's order (enum value minus one).
var verdictNames = verdict.Strings

func (t *Telemetry) verdictCounters() [verdict.NumVerdicts]*telemetry.StripedCounter {
	return [verdict.NumVerdicts]*telemetry.StripedCounter{
		t.vForwarded, t.vDropped, t.vTmDrop, t.vToCPU, t.vNoPort, t.vParseError,
	}
}

// countVerdict bumps the finished packet's verdict counter on stripe
// lane (the packet's telemetry lane: 0 shared, shard index + 1).
func (t *Telemetry) countVerdict(lane int, v string) {
	switch v {
	case verdict.StrForwarded:
		t.vForwarded.Cell(lane).Inc()
	case verdict.StrDropped:
		t.vDropped.Cell(lane).Inc()
	case verdict.StrTMDrop:
		t.vTmDrop.Cell(lane).Inc()
	case verdict.StrToCPU:
		t.vToCPU.Cell(lane).Inc()
	case verdict.StrNoPort:
		t.vNoPort.Cell(lane).Inc()
	case verdict.StrParseError:
		t.vParseError.Cell(lane).Inc()
	}
}

// countDrop attributes one lost packet to its ipsa_drop_total cell. It
// returns the reason plus the dropping TSP (-1 when the drop point is
// not a stage) so the caller can offer the packet to the capture ring;
// ReasonNone means the verdict was not a loss.
func (t *Telemetry) countDrop(lane int, v string, stage int32) (verdict.DropReason, int) {
	switch v {
	case verdict.StrDropped:
		if len(t.dropACL) == 0 {
			return verdict.ReasonNone, -1
		}
		i := int(stage)
		if i < 0 || i >= len(t.dropACL) {
			i = 0
		}
		t.dropACL[i].Cell(lane).Inc()
		return verdict.ReasonACL, i
	case verdict.StrTMDrop:
		t.dropTM.Cell(lane).Inc()
		return verdict.ReasonTM, -1
	case verdict.StrNoPort:
		t.dropNoPort.Cell(lane).Inc()
		return verdict.ReasonNoPort, -1
	case verdict.StrParseError:
		t.dropParse.Cell(lane).Inc()
		return verdict.ReasonParse, -1
	}
	return verdict.ReasonNone, -1
}

// countTxFail accounts n frames an egress port refused after their
// "forwarded" verdict (corroborated by the port's own tx_drops counter).
func (t *Telemetry) countTxFail(lane int, n uint64) {
	if n > 0 {
		t.dropTxFail.Cell(lane).Add(n)
	}
}

// verdictSnapshot captures the per-verdict totals (audit-event baseline).
func (t *Telemetry) verdictSnapshot() [verdict.NumVerdicts]uint64 {
	var out [verdict.NumVerdicts]uint64
	for i, c := range t.verdictCounters() {
		out[i] = c.Value()
	}
	return out
}

// verdictDeltas reports the per-verdict change since a snapshot, keeping
// only verdicts that moved.
func (t *Telemetry) verdictDeltas(before [verdict.NumVerdicts]uint64) map[string]uint64 {
	var out map[string]uint64
	for i, c := range t.verdictCounters() {
		if d := c.Value() - before[i]; d > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[verdictNames[i]] = d
		}
	}
	return out
}

// verdictLanes sizes the verdict counter stripes: one lane for the
// shared synchronous/pipelined paths plus one per possible shard.
const verdictLanes = MaxShards + 1

// newTelemetry builds the registry, resolves the static handles and
// attaches the per-TSP latency histograms.
func (s *Switch) newTelemetry(opts Options) {
	reg := telemetry.NewRegistry()
	tel := &Telemetry{
		Reg:          reg,
		Tracer:       telemetry.NewTracer(opts.TraceRing, opts.TraceEvery),
		LatSamp:      telemetry.NewSampler(opts.LatencyEvery),
		Events:       telemetry.NewEventLog(opts.EventRing),
		appliesFull:  reg.Counter("ipsa_config_applies_total", telemetry.L("mode", "full")),
		appliesDiff:  reg.Counter("ipsa_config_applies_total", telemetry.L("mode", "diff")),
		appliesPatch: reg.Counter("ipsa_config_applies_total", telemetry.L("mode", "patch")),
		tspsWritten:  reg.Counter("ipsa_config_tsps_written_total"),
		migrated:     reg.Counter("ipsa_config_entries_migrated_total"),
		noPortDrops:  reg.Counter("ipsa_no_port_drops_total"),
		vForwarded:   reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrForwarded)),
		vDropped:     reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrDropped)),
		vTmDrop:      reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrTMDrop)),
		vToCPU:       reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrToCPU)),
		vNoPort:      reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrNoPort)),
		vParseError:  reg.StripedCounter("ipsa_packets_total", verdictLanes, telemetry.L("verdict", verdict.StrParseError)),
		dropTM:       reg.StripedCounter("ipsa_drop_total", verdictLanes, telemetry.L("reason", verdict.StrReasonTM), telemetry.L("stage", "tm")),
		dropNoPort:   reg.StripedCounter("ipsa_drop_total", verdictLanes, telemetry.L("reason", verdict.StrReasonNoPort), telemetry.L("stage", "tx")),
		dropParse:    reg.StripedCounter("ipsa_drop_total", verdictLanes, telemetry.L("reason", verdict.StrReasonParse), telemetry.L("stage", "parser")),
		dropTxFail:   reg.StripedCounter("ipsa_drop_total", verdictLanes, telemetry.L("reason", verdict.StrReasonTxFail), telemetry.L("stage", "tx")),
		Drops:        telemetry.NewDropRing(opts.DropRing, opts.DropSampleRate, opts.DropSampleBurst),
	}
	for i := 0; i < s.pl.NumTSPs(); i++ {
		tel.dropACL = append(tel.dropACL, reg.StripedCounter("ipsa_drop_total", verdictLanes,
			telemetry.L("reason", verdict.StrReasonACL), telemetry.L("stage", "tsp"+strconv.Itoa(i))))
	}
	for i := 0; i < s.pl.NumTSPs(); i++ {
		t, _ := s.pl.TSP(i)
		t.SetLatencyHistogram(reg.Histogram("ipsa_tsp_latency_seconds",
			telemetry.L("tsp", strconv.Itoa(i))))
	}
	reg.AddCollector(s.collect)
	if s.flows != nil {
		reg.AddCollector(s.flows.Collect)
	}
	telemetry.RegisterRuntimeMetrics(reg)
	s.tel = tel
}

// Telemetry exposes the switch's observability state.
func (s *Switch) Telemetry() *Telemetry { return s.tel }

// collect emits the dynamic series at scrape time: per-port counters,
// pipeline/TM state, fault counters, per-table and per-stage counters.
func (s *Switch) collect(emit func(telemetry.MetricPoint)) {
	ctr := func(name string, v uint64, labels ...telemetry.Label) {
		emit(telemetry.MetricPoint{Name: name, Labels: labels, Kind: "counter", Value: float64(v)})
	}
	gauge := func(name string, v float64, labels ...telemetry.Label) {
		emit(telemetry.MetricPoint{Name: name, Labels: labels, Kind: "gauge", Value: v})
	}

	// Communication module: per-port counters with directional drops.
	for i := 0; i < s.ports.Len(); i++ {
		p, err := s.ports.Port(i)
		if err != nil {
			continue
		}
		st := p.DetailedStats()
		l := telemetry.L("port", strconv.Itoa(i))
		ctr("ipsa_port_rx_packets_total", st.Received, l)
		ctr("ipsa_port_tx_packets_total", st.Sent, l)
		ctr("ipsa_port_rx_drops_total", st.RxDrops, l)
		ctr("ipsa_port_tx_drops_total", st.TxDrops, l)
	}

	// Executor tier, build_info style: a constant-1 gauge whose label says
	// which of the three stage executors (fused second-stage closures, the
	// flat-program VM, or the reference interpreter) this switch runs, so
	// dashboards comparing hosts can tell tier apart from hardware.
	gauge("ipsa_exec_tier", 1, telemetry.L("tier", s.opts.Exec.String()))

	// Pipeline module.
	processed, dropped := s.pl.Stats()
	ctr("ipsa_pipeline_processed_total", processed)
	ctr("ipsa_pipeline_dropped_total", dropped)
	gauge("ipsa_pipeline_stall_seconds_total", s.pl.StallTime().Seconds())
	gauge("ipsa_pipeline_active_tsps", float64(s.pl.ActiveTSPs()))
	for i := 0; i < s.pl.NumTSPs(); i++ {
		t, _ := s.pl.TSP(i)
		ctr("ipsa_tsp_template_loads_total", t.Loads(), telemetry.L("tsp", strconv.Itoa(i)))
	}

	// Traffic manager: enqueue/tail-drop counters plus live queue depths,
	// totalled across the shared TM and every shard TM.
	enq, tailDrops := s.TMStats()
	ctr("ipsa_tm_enqueued_total", enq)
	ctr("ipsa_tm_tail_drops_total", tailDrops)
	for port, depth := range s.pl.TM().Depths() {
		gauge("ipsa_tm_queue_depth", float64(depth+s.shardDepth(port)), telemetry.L("port", strconv.Itoa(port)))
	}

	// TM watermarks and microburst windows, merged across the shared TM
	// and every shard TM (max watermark, summed burst counts).
	for _, w := range s.tmWatermarks() {
		l := telemetry.L("port", strconv.Itoa(w.Port))
		gauge("ipsa_tm_watermark", float64(w.Watermark), l)
		ctr("ipsa_tm_microburst_total", w.Bursts, l)
		if w.MinBurstNanos > 0 {
			gauge("ipsa_tm_microburst_min_seconds", float64(w.MinBurstNanos)/1e9, l)
		}
		if w.MaxBurstNanos > 0 {
			gauge("ipsa_tm_microburst_max_seconds", float64(w.MaxBurstNanos)/1e9, l)
		}
	}

	// Drop-capture sampling outcome (ring admission vs token exhaustion).
	sampled, skipped := s.tel.Drops.Stats()
	ctr("ipsa_drop_samples_total", sampled, telemetry.L("outcome", "sampled"))
	ctr("ipsa_drop_samples_total", skipped, telemetry.L("outcome", "skipped"))

	// Sharded mode: per-shard packet/drop/queue-depth series, read from
	// the striped verdict cells (lane = shard index + 1) and the shard
	// TMs. Absent unless RunSharded is active.
	if set := s.shardsP.Load(); set != nil {
		for _, sh := range set.shards {
			lane := sh.dsh.Lane()
			var pkts, drops uint64
			for _, c := range s.tel.verdictCounters() {
				pkts += c.CellValue(lane)
			}
			drops = s.tel.vDropped.CellValue(lane) +
				s.tel.vTmDrop.CellValue(lane) +
				s.tel.vNoPort.CellValue(lane) +
				s.tel.vParseError.CellValue(lane)
			l := telemetry.L("shard", strconv.Itoa(sh.idx))
			ctr("ipsa_shard_packets_total", pkts, l)
			ctr("ipsa_shard_drops_total", drops, l)
			gauge("ipsa_shard_queue_depth", float64(sh.tm.DepthSum()+len(sh.in)), l)
		}
	}

	// Program store: current epoch, versions awaiting quiescence and
	// versions reclaimed. All zero in DrainReconfig mode (no store).
	epoch, retired, reclaimed := s.EpochStats()
	gauge("ipsa_epoch", float64(epoch))
	gauge("ipsa_epoch_retired_versions", float64(retired))
	ctr("ipsa_epoch_reclaimed_total", reclaimed)

	// Punt path and executor faults.
	ctr("ipsa_to_cpu_total", s.punted.Load())
	faults := s.dp.Faults()
	ctr("ipsa_faults_total", faults.InvalidHeaderAccess.Load(), telemetry.L("kind", "invalid_header_access"))
	ctr("ipsa_faults_total", faults.RegisterFault.Load(), telemetry.L("kind", "register_fault"))
	ctr("ipsa_faults_total", faults.BadTemplate.Load(), telemetry.L("kind", "bad_template"))

	// Storage module: per-table hit/miss counters and occupancy.
	for _, name := range s.mm.Tables() {
		t, ok := s.mm.Table(name)
		if !ok {
			continue
		}
		hits, misses := t.Stats()
		l := telemetry.L("table", name)
		ctr("ipsa_table_hits_total", hits, l)
		ctr("ipsa_table_misses_total", misses, l)
		gauge("ipsa_table_entries", float64(t.Engine().Len()), l)
	}

	// Per-stage counters from the currently loaded runtimes.
	for i := 0; i < s.pl.NumTSPs(); i++ {
		t, _ := s.pl.TSP(i)
		tspLabel := telemetry.L("tsp", strconv.Itoa(i))
		for _, sr := range t.Stages() {
			packets, hits, misses := sr.Stats()
			ls := []telemetry.Label{telemetry.L("stage", sr.Name()), tspLabel}
			ctr("ipsa_stage_packets_total", packets, ls...)
			ctr("ipsa_stage_hits_total", hits, ls...)
			ctr("ipsa_stage_misses_total", misses, ls...)
			ctr("ipsa_stage_default_actions_total", sr.Defaults(), ls...)
		}
	}
}

// admitFailed accounts a frame the dataplane refused to admit (GetPacket
// error, before the packet ever existed): the loss lands in both ledgers
// — the parse_error verdict and the parser's drop cell — so conservation
// holds even for packets that never entered the pipeline.
func (s *Switch) admitFailed(lane, inPort int, data []byte) {
	s.tel.countVerdict(lane, verdict.StrParseError)
	if r, _ := s.tel.countDrop(lane, verdict.StrParseError, -1); r != verdict.ReasonNone && s.tel.Drops.Offer() {
		s.tel.Drops.Capture(r, -1, inPort, -1, s.currentEpoch(), data)
	}
}

// txFailed accounts one frame the egress port refused after its
// "forwarded" verdict, offering it to the capture ring. Call before the
// packet is recycled.
func (s *Switch) txFailed(p *pkt.Packet) {
	s.tel.countTxFail(int(p.Lane), 1)
	if s.tel.Drops.Offer() {
		s.tel.Drops.Capture(verdict.ReasonTxFail, -1, p.InPort, p.OutPort, s.currentEpoch(), p.Data)
	}
}

// currentEpoch is the published program-store epoch (0 in drain mode).
func (s *Switch) currentEpoch() uint64 {
	if v := s.epochs.current(); v != nil {
		return v.epoch
	}
	return 0
}

// tmWatermarks merges the shared TM's and every shard TM's per-port
// watermark/microburst snapshots: the watermark is the max across TMs,
// burst counts add, and the window bounds widen.
func (s *Switch) tmWatermarks() []pipeline.PortWatermark {
	out := s.pl.TM().Watermarks()
	set := s.shardsP.Load()
	if set == nil {
		return out
	}
	for _, sh := range set.shards {
		for _, w := range sh.tm.Watermarks() {
			if w.Port >= len(out) {
				continue
			}
			o := &out[w.Port]
			if w.Watermark > o.Watermark {
				o.Watermark = w.Watermark
			}
			o.Bursts += w.Bursts
			if w.MinBurstNanos > 0 && (o.MinBurstNanos == 0 || w.MinBurstNanos < o.MinBurstNanos) {
				o.MinBurstNanos = w.MinBurstNanos
			}
			if w.MaxBurstNanos > o.MaxBurstNanos {
				o.MaxBurstNanos = w.MaxBurstNanos
			}
		}
	}
	return out
}

// telemetryHooks adapts the switch's sampled packet telemetry to the
// dataplane lifecycle callbacks.
type telemetryHooks struct{ s *Switch }

func (h telemetryHooks) BeginPacket(p *pkt.Packet) { h.s.beginPacketTelemetry(p) }

func (h telemetryHooks) FinishPacket(p *pkt.Packet, v string) {
	h.s.finishPacketTelemetry(p, v)
}

// beginPacketTelemetry makes the per-packet sampling decisions: it
// attaches a flight record (rarely) and marks the packet latency-sampled
// (more often). Cost when nothing samples: two atomic increments.
func (s *Switch) beginPacketTelemetry(p *pkt.Packet) {
	if rec := s.tel.Tracer.Sample(); rec != nil {
		rec.InPort = p.InPort
		rec.Bytes = len(p.Data)
		p.Trace = rec
	}
	p.Timed = s.tel.LatSamp.Hit()
}

// finishPacketTelemetry counts the packet's verdict and — for the loss
// verdicts — its attributed drop reason, offers lost packets to the
// sampled capture ring, then completes and commits a sampled packet's
// flight record. The counters come first — they must tick for every
// packet, traced or not.
func (s *Switch) finishPacketTelemetry(p *pkt.Packet, v string) {
	lane := int(p.Lane)
	s.tel.countVerdict(lane, v)
	if reason, tspIdx := s.tel.countDrop(lane, v, p.DropStage); reason != verdict.ReasonNone && s.tel.Drops.Offer() {
		s.tel.Drops.Capture(reason, tspIdx, p.InPort, p.OutPort, s.currentEpoch(), p.Data)
	}
	rec := p.Trace
	if rec == nil {
		return
	}
	p.Trace = nil
	rec.OutPort = p.OutPort
	rec.Bytes = len(p.Data)
	rec.Verdict = v
	var cfg *template.Config
	if d := s.dp.Design(); d != nil {
		cfg = d.Cfg
	}
	p.HV.Each(func(id pkt.HeaderID, loc pkt.HeaderLoc) {
		name := "hdr" + strconv.Itoa(int(id))
		if cfg != nil {
			if h := cfg.HeaderByID(id); h != nil {
				name = h.Name
			}
		}
		rec.Headers = append(rec.Headers, telemetry.TraceHeader{Name: name, Off: loc.Off, Len: loc.Len})
	})
	s.tel.Tracer.Commit(rec)
}
