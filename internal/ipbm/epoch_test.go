package ipbm

import (
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/template"
)

// scratchTableOps returns the two-op edit scripts that create and drop
// an otherwise-unreferenced scratch table — the smallest possible
// partial reconfiguration, but one that still forces a full epoch
// publish (snapshot swap, table create/drop safety, maximal stage
// reuse).
func scratchTable(name string) *template.Table {
	return &template.Table{
		Name: name, Kind: "exact",
		Keys:     []template.KeySel{{Name: "scratch.key", Kind: "exact"}},
		KeyWidth: 4, Size: 8,
	}
}

// TestEpochStoreBasics: each apply publishes a new epoch; with no
// packets in flight the previous version is reclaimed immediately.
func TestEpochStoreBasics(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	e0, retired, _ := sw.EpochStats()
	if e0 != 1 || retired != 0 {
		t.Fatalf("after install: epoch=%d retired=%d", e0, retired)
	}
	if err := sw.EditBegin(); err != nil {
		t.Fatal(err)
	}
	if err := sw.EditApply(ctrlplane.EditOp{Kind: "set_table", Table: "scratch", TableSpec: scratchTable("scratch")}); err != nil {
		t.Fatal(err)
	}
	st, err := sw.EditCommit()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 1 || st.Apply == nil || !st.Apply.Hitless {
		t.Fatalf("edit stats: %+v", st)
	}
	if st.Apply.TablesCreated != 1 || st.Apply.Epoch != 2 {
		t.Fatalf("apply stats: %+v", st.Apply)
	}
	// No stage references the scratch table, so every compiled stage is
	// reused verbatim across the epoch.
	if st.Apply.StagesRecompiled != 0 || st.Apply.StagesReused == 0 {
		t.Errorf("one-table edit recompiled %d stages (reused %d)",
			st.Apply.StagesRecompiled, st.Apply.StagesReused)
	}
	epoch, retired, reclaimed := sw.EpochStats()
	if epoch != 2 || retired != 0 || reclaimed == 0 {
		t.Errorf("after edit: epoch=%d retired=%d reclaimed=%d", epoch, retired, reclaimed)
	}
	// The pipeline never stalled.
	if got := sw.Pipeline().StallTime(); got != 0 {
		t.Errorf("hitless edit stalled the pipeline for %v", got)
	}
}

// TestEditTransactionLifecycle covers the transaction state machine:
// double begin, ops without a transaction, abort, and commit-validation
// failure keeping the transaction open.
func TestEditTransactionLifecycle(t *testing.T) {
	sw, _ := newBaseSwitch(t)
	if err := sw.EditApply(ctrlplane.EditOp{Kind: "set_table"}); err == nil {
		t.Error("op accepted without transaction")
	}
	if _, err := sw.EditCommit(); err == nil {
		t.Error("commit accepted without transaction")
	}
	if err := sw.EditBegin(); err != nil {
		t.Fatal(err)
	}
	if err := sw.EditBegin(); err == nil {
		t.Error("double begin accepted")
	}
	if err := sw.EditApply(ctrlplane.EditOp{Kind: "delete_table", Table: "ghost"}); err == nil {
		t.Error("delete of unknown table accepted")
	}
	// Deleting a table a stage still references validates at commit and
	// keeps the transaction open for a corrective abort.
	if err := sw.EditApply(ctrlplane.EditOp{Kind: "delete_table", Table: "dmac_tbl"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.EditCommit(); err == nil {
		t.Error("commit of dangling table reference accepted")
	}
	if err := sw.EditAbort(); err != nil {
		t.Fatal(err)
	}
	if err := sw.EditAbort(); err == nil {
		t.Error("double abort accepted")
	}
	// The device still forwards and the abort is on the audit trail.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("forwarding broken after abort: err=%v drop=%v", err, p.Drop)
	}
	var aborts int
	for _, ev := range sw.EventsDump(0) {
		if ev.Kind == "edit_abort" {
			aborts++
		}
	}
	if aborts != 1 {
		t.Errorf("edit_abort events = %d, want 1", aborts)
	}
}

// TestEpochReclamationSoak is the reclamation soak: 1k live edit
// commits race sharded forwarding; afterwards every retired program
// version must be reclaimed (the store holds only the current epoch —
// no monotonic growth) and packet accounting must conserve: every
// frame the ingress accepted reaches exactly one verdict. Run under
// -race this also exercises the pin/publish/reap memory ordering.
func TestEpochReclamationSoak(t *testing.T) {
	edits := 1000
	if testing.Short() {
		edits = 100
	}
	sw, _ := newBaseSwitch(t)
	if err := sw.RunSharded(2, 4); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()
	in, _ := sw.Ports().Port(inPort)

	// Traffic: inject continuously until told to stop, counting every
	// accepted frame.
	stop := make(chan struct{})
	accepted := make(chan int, 1)
	go func() {
		n := 0
		i := 0
		for {
			select {
			case <-stop:
				accepted <- n
				return
			default:
			}
			if in.Inject(flowPacket(t, uint16(i%64), uint32(i))) {
				n++
			} else {
				time.Sleep(50 * time.Microsecond)
			}
			i++
		}
	}()

	// Edits: alternate create/drop of a scratch table, one transaction
	// per commit — 1k epoch publishes while packets are in flight.
	for i := 0; i < edits; i++ {
		if err := sw.EditBegin(); err != nil {
			t.Fatal(err)
		}
		op := ctrlplane.EditOp{Kind: "set_table", Table: "soak_scratch", TableSpec: scratchTable("soak_scratch")}
		if i%2 == 1 {
			op = ctrlplane.EditOp{Kind: "delete_table", Table: "soak_scratch"}
		}
		if err := sw.EditApply(op); err != nil {
			t.Fatal(err)
		}
		if _, err := sw.EditCommit(); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	close(stop)
	total := <-accepted

	// Conservation: every accepted frame reaches exactly one verdict.
	finished := func() uint64 {
		var sum uint64
		for _, c := range sw.tel.verdictCounters() {
			sum += c.Value()
		}
		return sum
	}
	deadline := time.Now().Add(10 * time.Second)
	for finished() < uint64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("conservation: %d/%d frames reached a verdict", finished(), total)
		}
		time.Sleep(time.Millisecond)
	}
	if got := finished(); got != uint64(total) {
		t.Errorf("verdicts %d != accepted %d (packets double-counted)", got, total)
	}

	// Reclamation: once traffic quiesces, the store holds only the
	// current epoch. EpochStats reaps before reading.
	var epoch uint64
	var retired int
	for time.Now().Before(deadline) {
		if epoch, retired, _ = sw.EpochStats(); retired == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if retired != 0 {
		t.Errorf("%d retired program versions never reclaimed", retired)
	}
	if want := uint64(edits + 1); epoch != want {
		t.Errorf("epoch = %d, want %d", epoch, want)
	}
	if got := sw.Pipeline().StallTime(); got != 0 {
		t.Errorf("soak stalled the pipeline for %v", got)
	}
}
