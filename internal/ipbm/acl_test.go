package ipbm

import (
	"testing"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
)

// TestInsituACLClosesProbeLoop plays the paper's full C3 story: the probe
// detects a heavy flow and punts to the controller, which reacts by
// loading an ACL function at runtime and dropping the offender — two
// chained in-situ updates on one running switch.
func TestInsituACLClosesProbeLoop(t *testing.T) {
	sw, w := newBaseSwitch(t)

	// Update 1: the probe (use case C3).
	rep, err := w.ApplyScript(script(t, "flowprobe.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	insert(t, sw, ctrlplane.EntryReq{
		Table: "flow_probe",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A000002}},
		Tag:   1, Params: []uint64{7, 2},
	})
	var punted *pkt.Packet
	for i := 0; i < 4; i++ {
		if _, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case punted = <-sw.PuntQueue():
	default:
		t.Fatal("probe never punted")
	}
	tuple, ok := pkt.ExtractFiveTuple(punted.Data)
	if !ok {
		t.Fatal("punted packet unparseable")
	}

	// Update 2: the controller reacts by loading the ACL.
	rep2, err := w.ApplyScript(script(t, "acl.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.AddedStages) != 1 || rep2.AddedStages[0] != "acl_stage" {
		t.Fatalf("added: %v", rep2.AddedStages)
	}
	// The probe from update 1 must have survived update 2.
	if _, ok := rep2.Config.Tables["flow_probe"]; !ok {
		t.Fatal("probe lost by ACL update")
	}
	st, err := sw.ApplyConfig(rep2.Config)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Error("ACL update treated as full install")
	}

	// Drop exactly the offending flow (full masks on SIP/DIP, wildcard
	// protocol).
	sip := tuple.Src.As4()
	dip := tuple.Dst.As4()
	insert(t, sw, ctrlplane.EntryReq{
		Table: "acl_tbl",
		Keys: []ctrlplane.FieldValue{
			{Value: uint64(sip[0])<<24 | uint64(sip[1])<<16 | uint64(sip[2])<<8 | uint64(sip[3])},
			{Value: uint64(dip[0])<<24 | uint64(dip[1])<<16 | uint64(dip[2])<<8 | uint64(dip[3])},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}}, // any protocol
		},
		Priority: 10,
		Tag:      1, // acl_drop
	})

	// The offender is now dropped at the top of the pipeline...
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Drop {
		t.Error("offending flow not dropped by ACL")
	}
	// ...while other flows still forward, and the register state from the
	// probe survived both updates.
	p2, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, 2, 3}, routerMAC, 64), inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Drop {
		t.Error("innocent flow dropped")
	}
	cnt, err := sw.ReadRegister("flow_cnt", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 4 {
		t.Errorf("flow_cnt = %d, want 4 (state must survive updates)", cnt)
	}
}

// TestACLRemark exercises the ternary table's second action and priority
// ordering end to end.
func TestACLRemark(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "acl.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	// Low-priority remark for all of 10.0.0.0/8, high-priority drop for
	// one host.
	insert(t, sw, ctrlplane.EntryReq{
		Table: "acl_tbl",
		Keys: []ctrlplane.FieldValue{
			{Value: 0x0A000000, Mask: &ctrlplane.FieldMask{Value: 0xFF000000}},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}},
		},
		Priority: 1,
		Tag:      2, Params: []uint64{0x2E << 2}, // DSCP EF
	})
	insert(t, sw, ctrlplane.EntryReq{
		Table: "acl_tbl",
		Keys: []ctrlplane.FieldValue{
			{Value: 0x0A0000FF},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}},
		},
		Priority: 9,
		Tag:      1,
	})

	// The /8 flow is remarked and forwarded.
	raw, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		&pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	p, err := sw.ProcessPacket(raw, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("remarked flow dropped")
	}
	var ip pkt.IPv4
	_ = ip.Decode(p.Data[pkt.EthernetLen:])
	if ip.DSCP != 0x2E {
		t.Errorf("dscp = %#x, want 0x2E", ip.DSCP)
	}
	// The blocked host wins on priority.
	raw2, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: [4]byte{10, 0, 0, 0xFF}, Dst: [4]byte{10, 0, 0, 2}},
		&pkt.UDP{SrcPort: 1, DstPort: 2},
	)
	p2, err := sw.ProcessPacket(raw2, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Drop {
		t.Error("high-priority drop lost to remark")
	}
	// Non-IPv4 traffic bypasses the ACL entirely.
	ip6 := pkt.IPv6{NextHeader: pkt.IPProtoTCP, HopLimit: 64}
	ip6.Dst[0], ip6.Dst[15] = 0x20, 0x02
	raw3, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&ip6, &pkt.TCP{SrcPort: 1, DstPort: 2},
	)
	p3, err := sw.ProcessPacket(raw3, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Drop {
		t.Error("IPv6 packet hit the v4 ACL")
	}
}
