package ipbm

import (
	"testing"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
)

// TestInsituECMP exercises use case C1: while the switch forwards, ECMP is
// inserted at runtime; only the freed nexthop TSP is rewritten, existing
// table entries survive, and flows spread across group members.
func TestInsituECMP(t *testing.T) {
	sw, w := newBaseSwitch(t)

	// Baseline traffic works.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("baseline broken: %v, drop=%v", err, p.Drop)
	}

	rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.ApplyConfig(rep.Config)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Error("update treated as full install")
	}
	if st.TablesCreated != 2 || st.TablesDropped != 1 {
		t.Errorf("apply stats: %+v", st)
	}
	// In-situ: at most the rewritten TSPs from the report plus none other.
	if st.TSPsWritten != len(rep.RewrittenTSPs) {
		t.Errorf("device wrote %d TSPs, compiler predicted %v", st.TSPsWritten, rep.RewrittenTSPs)
	}

	// Populate the two ECMP selector tables: nexthop group 7 has two
	// members with distinct egress MACs/bridges.
	memberA := ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
	}
	nhMAC2 := pkt.MAC{0x02, 0, 0, 0, 0, 0x33}
	memberB := ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC2.Uint64()},
	}
	if err := sw.AddMember(memberA); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddMember(memberB); err != nil {
		t.Fatal(err)
	}
	// Second dmac entry so member B's MAC resolves.
	insert(t, sw, ctrlplane.EntryReq{
		Table: "dmac_tbl",
		Keys:  []ctrlplane.FieldValue{{Value: bridgeOut}, {Value: nhMAC2.Uint64()}},
		Tag:   1, Params: []uint64{4},
	})

	// Existing entries survived the update: the LPM route still resolves.
	seen := map[pkt.MAC]int{}
	for i := 0; i < 64; i++ {
		dst := [4]byte{10, 1, byte(i), byte(i * 7)}
		p, err := sw.ProcessPacket(v4Packet(t, dst, routerMAC, 64), inPort)
		if err != nil {
			t.Fatal(err)
		}
		if p.Drop {
			t.Fatalf("packet %d dropped after update", i)
		}
		var eth pkt.Ethernet
		_ = eth.Decode(p.Data)
		seen[eth.Dst]++
	}
	if len(seen) != 2 || seen[nhMAC] == 0 || seen[nhMAC2] == 0 {
		t.Errorf("ECMP spread: %v", seen)
	}
	// Determinism: the same flow always picks the same member.
	var first pkt.MAC
	for i := 0; i < 5; i++ {
		p, _ := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, 1, 1}, routerMAC, 64), inPort)
		var eth pkt.Ethernet
		_ = eth.Decode(p.Data)
		if i == 0 {
			first = eth.Dst
		} else if eth.Dst != first {
			t.Fatal("same flow hashed to different members")
		}
	}
	// Hitless mode: the update published a new epoch without ever
	// stalling the pipeline, and the audit trail records it as such.
	if got := sw.Pipeline().StallTime(); got != 0 {
		t.Errorf("hitless update stalled the pipeline for %v", got)
	}
	var applied bool
	for _, ev := range sw.EventsDump(0) {
		if ev.Kind == "apply_patch" {
			applied = true
			if !ev.Hitless || ev.DrainNanos != 0 || ev.Epoch == 0 {
				t.Errorf("patch event not hitless: %+v", ev)
			}
		}
	}
	if !applied {
		t.Error("no apply_patch audit event")
	}
}

// TestInsituECMPDrainMode keeps the legacy drain-and-swap fallback
// covered: the same C1 update on a DrainReconfig switch records a
// pipeline stall and a non-zero drain time in its audit event.
func TestInsituECMPDrainMode(t *testing.T) {
	sw, w := newBaseSwitchOpts(t, func(o *Options) { o.DrainReconfig = true })
	rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.ApplyConfig(rep.Config)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hitless {
		t.Error("drain-mode apply reported hitless")
	}
	if st.TSPsWritten != len(rep.RewrittenTSPs) {
		t.Errorf("device wrote %d TSPs, compiler predicted %v", st.TSPsWritten, rep.RewrittenTSPs)
	}
	if sw.Pipeline().StallTime() <= 0 {
		t.Error("no stall recorded for drain-mode update")
	}
	for _, ev := range sw.EventsDump(0) {
		if ev.Kind == "apply_patch" && (ev.Hitless || ev.DrainNanos <= 0) {
			t.Errorf("drain-mode patch event: %+v", ev)
		}
	}
	if err := sw.AddMember(ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("forwarding broken after drain-mode update: err=%v drop=%v", err, p.Drop)
	}
}

// TestInsituFlowProbe exercises use case C3: a probe counts a flow's
// packets and punts to the CPU once the threshold is exceeded.
func TestInsituFlowProbe(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "flowprobe.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	// Probe flow 10.0.0.1 -> 10.0.0.2 at register index 42, threshold 3.
	insert(t, sw, ctrlplane.EntryReq{
		Table: "flow_probe",
		Keys:  []ctrlplane.FieldValue{{Value: 0x0A000001}, {Value: 0x0A000002}},
		Tag:   1, Params: []uint64{42, 3},
	})
	for i := 1; i <= 5; i++ {
		p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
		if err != nil {
			t.Fatal(err)
		}
		if p.Drop {
			t.Fatalf("probe dropped packet %d", i)
		}
		if i <= 3 && p.ToCPU {
			t.Errorf("packet %d punted below threshold", i)
		}
		if i > 3 && !p.ToCPU {
			t.Errorf("packet %d not punted above threshold", i)
		}
	}
	// The register holds the count.
	v, err := sw.ReadRegister("flow_cnt", 42)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("flow_cnt[42] = %d, want 5", v)
	}
	// Punted clones are on the CPU queue.
	if got := len(sw.PuntQueue()); got != 2 {
		t.Errorf("punt queue = %d, want 2", got)
	}
	// Other flows are not probed.
	p, _ := sw.ProcessPacket(v4Packet(t, [4]byte{10, 1, 1, 1}, routerMAC, 64), inPort)
	if p.ToCPU {
		t.Error("unprobed flow punted")
	}
}

// TestInsituSRv6 exercises use case C2: the SRH header type is linked in
// at runtime, SR endpoint processing advances the segment list and the
// updated destination is routed.
func TestInsituSRv6(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "srv6.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	// Local SID: 2001::aa (matches our ipv6_lpm 2001::/32 route after
	// advance? no — the SID itself is the packet's current dst).
	sid := make([]byte, 16)
	sid[0], sid[1], sid[15] = 0x20, 0x01, 0xaa
	insert(t, sw, ctrlplane.EntryReq{
		Table: "local_sid",
		Keys:  []ctrlplane.FieldValue{{Bytes: sid}},
		Tag:   1, // srv6_end
	})

	// Build an SRv6 packet: outer dst = SID, SL=1. Per RFC 8754 the
	// endpoint decrements SL and sets dst to Segments[SL], i.e.
	// Segments[0] — make that the routable next segment 2001::bb.
	var seg0, seg1 [16]byte
	seg0[0], seg0[1], seg0[15] = 0x20, 0x01, 0xbb // next dst after advance
	seg1[0], seg1[15] = 0xfd, 0xaa                // already-visited segment
	ip := pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64}
	copy(ip.Dst[:], sid)
	ip.Src[15] = 1
	srh := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{seg0, seg1}}
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&ip, &srh, &pkt.TCP{SrcPort: 7, DstPort: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sw.ProcessPacket(raw, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("SRv6 packet dropped")
	}
	var outIP pkt.IPv6
	if err := outIP.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if outIP.Dst[15] != 0xbb || outIP.Dst[0] != 0x20 {
		t.Errorf("dst not advanced to next segment: %x", outIP.Dst)
	}
	var outSRH pkt.SRH
	if err := outSRH.Decode(p.Data[pkt.EthernetLen+pkt.IPv6Len:]); err != nil {
		t.Fatal(err)
	}
	if outSRH.SegmentsLeft != 0 {
		t.Errorf("segments_left = %d, want 0", outSRH.SegmentsLeft)
	}
	if p.OutPort != outPort {
		t.Errorf("out port = %d, want %d (routed via 2001::/32)", p.OutPort, outPort)
	}
	// Non-SID SRv6 traffic transits without endpoint processing.
	other := make([]byte, 16)
	other[0], other[1], other[15] = 0x20, 0x01, 0x99
	copy(ip.Dst[:], other)
	srh2 := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{seg0, seg1}}
	raw2, _ := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&ip, &srh2, &pkt.TCP{SrcPort: 7, DstPort: 8},
	)
	p2, err := sw.ProcessPacket(raw2, inPort)
	if err != nil {
		t.Fatal(err)
	}
	var ip2 pkt.IPv6
	_ = ip2.Decode(p2.Data[pkt.EthernetLen:])
	if ip2.Dst != ip.Dst {
		t.Error("transit packet's destination changed")
	}
	var srhOut pkt.SRH
	_ = srhOut.Decode(p2.Data[pkt.EthernetLen+pkt.IPv6Len:])
	if srhOut.SegmentsLeft != 1 {
		t.Errorf("transit segments_left = %d, want 1", srhOut.SegmentsLeft)
	}
}

// TestInsituSRv6EndPop exercises the decapsulating endpoint: at the last
// segment the SRH is removed.
func TestInsituSRv6EndPop(t *testing.T) {
	sw, w := newBaseSwitch(t)
	rep, err := w.ApplyScript(script(t, "srv6.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	sid := make([]byte, 16)
	sid[0], sid[1], sid[15] = 0x20, 0x01, 0xaa
	insert(t, sw, ctrlplane.EntryReq{
		Table: "local_sid",
		Keys:  []ctrlplane.FieldValue{{Bytes: sid}},
		Tag:   2, // srv6_end_pop
	})
	var seg0 [16]byte
	seg0[0], seg0[1], seg0[15] = 0x20, 0x01, 0xcc
	ip := pkt.IPv6{NextHeader: pkt.IPProtoRouting, HopLimit: 64}
	copy(ip.Dst[:], sid)
	srh := pkt.SRH{NextHeader: pkt.IPProtoTCP, SegmentsLeft: 1, Segments: [][16]byte{seg0}}
	raw, err := pkt.Serialize(
		&pkt.Ethernet{Dst: routerMAC, Src: hostMAC, EtherType: pkt.EtherTypeIPv6},
		&ip, &srh, &pkt.TCP{SrcPort: 7, DstPort: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	origLen := len(raw)
	p, err := sw.ProcessPacket(raw, inPort)
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop {
		t.Fatal("packet dropped")
	}
	var outIP pkt.IPv6
	if err := outIP.Decode(p.Data[pkt.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	if outIP.NextHeader != pkt.IPProtoTCP {
		t.Errorf("next header = %d, want TCP after pop", outIP.NextHeader)
	}
	if outIP.Dst[15] != 0xcc {
		t.Errorf("dst not set to final segment: %x", outIP.Dst)
	}
	wantLen := origLen - (pkt.SRHFixedLen + pkt.SegmentLength)
	if len(p.Data) != wantLen {
		t.Errorf("packet length = %d, want %d after SRH removal", len(p.Data), wantLen)
	}
	// The TCP header must still parse at its new offset.
	var tcp pkt.TCP
	if err := tcp.Decode(p.Data[pkt.EthernetLen+pkt.IPv6Len:]); err != nil {
		t.Fatal(err)
	}
	if tcp.SrcPort != 7 || tcp.DstPort != 8 {
		t.Errorf("tcp after pop: %+v", tcp)
	}
}

// TestInsituUpdateUnderTraffic runs traffic concurrently with an ECMP
// update: no packet is lost to anything but table policy, and the switch
// keeps forwarding afterwards.
func TestInsituUpdateUnderTraffic(t *testing.T) {
	sw, w := newBaseSwitch(t)
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
			if err != nil {
				errs <- err
				return
			}
			if p.Drop {
				errs <- nil // drops are a failure here; signal via nil+check below
				return
			}
		}
	}()
	rep, err := w.ApplyScript(script(t, "ecmp.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddMember(ctrlplane.MemberReq{
		Table: "ecmp_ipv4", Group: ctrlplane.FieldValue{Value: nexthopID},
		Tag: 1, Params: []uint64{bridgeOut, nhMAC.Uint64()},
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err, bad := <-errs; bad {
		t.Fatalf("traffic failed during update: %v", err)
	}
	// After the update and member installation, traffic flows again.
	p, err := sw.ProcessPacket(v4Packet(t, [4]byte{10, 0, 0, 2}, routerMAC, 64), inPort)
	if err != nil || p.Drop {
		t.Fatalf("post-update traffic: err=%v drop=%v", err, p.Drop)
	}
}
