package ipbm

import (
	"sync"
	"testing"
	"time"

	"ipsa/internal/ctrlplane"
	"ipsa/internal/pkt"
	"ipsa/internal/verdict"
)

// TestDropConservationUnderEditStorm is the loss-forensics soak: the
// sharded runner forwards a mix engineered to hit every drop reason —
// a poisoned ACL entry (acl), a deliberately overfilled shard TM
// (tm_drop), a route chain steering to a nonexistent egress port
// (no_port) and truncated frames (parse_error) — while a hitless edit
// storm publishes epochs underneath. Afterwards the attributed drop ledger must reconcile
// exactly: every accepted frame reached one verdict, and each
// per-reason ipsa_drop_total sum equals its loss verdict's
// ipsa_packets_total count. `make race` runs this under the race
// detector.
func TestDropConservationUnderEditStorm(t *testing.T) {
	edits, mixed := 60, 400
	if testing.Short() {
		edits, mixed = 10, 80
	}
	w := newBaseWorkspace(t)
	opts := DefaultOptions()
	opts.QueueDepth = 4       // tiny TM queues so one batch can overfill them
	opts.DropSampleRate = 1e6 // sample effectively every loss
	opts.DropSampleBurst = 1e6
	sw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(w.Current().Config); err != nil {
		t.Fatal(err)
	}
	populateBase(t, sw)
	// Load the ACL function and poison one routable flow with a drop
	// entry: src 10.0.0.1 -> dst 10.1.7.7, any protocol.
	rep, err := w.ApplyScript(script(t, "acl.script"), loader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ApplyConfig(rep.Config); err != nil {
		t.Fatal(err)
	}
	insert(t, sw, ctrlplane.EntryReq{
		Table: "acl_tbl",
		Keys: []ctrlplane.FieldValue{
			{Value: 0x0A000001},
			{Value: 0x0A010707},
			{Value: 0, Mask: &ctrlplane.FieldMask{Value: 0}},
		},
		Priority: 10,
		Tag:      1, // acl_drop
	})
	// Poison a route chain: host 10.2.0.9 resolves through nexthop 9 to a
	// dmac entry steering to port 99, beyond the 8 configured ports. The
	// frame survives the pipeline and classifies no_port at dispose.
	poisonMAC := pkt.MAC{0x02, 0, 0, 0, 0, 0x99}
	for _, req := range []ctrlplane.EntryReq{
		{Table: "ipv4_host", Keys: []ctrlplane.FieldValue{{Value: vrfID}, {Value: 0x0A020009}},
			Tag: 1, Params: []uint64{9}},
		{Table: "nexthop_tbl", Keys: []ctrlplane.FieldValue{{Value: 9}},
			Tag: 1, Params: []uint64{bridgeOut, poisonMAC.Uint64()}},
		{Table: "dmac_tbl", Keys: []ctrlplane.FieldValue{{Value: bridgeOut}, {Value: poisonMAC.Uint64()}},
			Tag: 1, Params: []uint64{99}},
	} {
		insert(t, sw, req)
	}
	if err := sw.RunSharded(2, 32); err != nil {
		t.Fatal(err)
	}
	defer sw.Shutdown()

	in, _ := sw.Ports().Port(inPort)
	out, _ := sw.Ports().Port(outPort)
	done := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				if _, ok := out.Drain(); !ok {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()
	defer drainWG.Wait()
	defer close(done)

	accepted := uint64(0)
	inject := func(frame []byte) {
		deadline := time.Now().Add(5 * time.Second)
		for !in.Inject(frame) {
			if time.Now().After(deadline) {
				return // rx tail drop: never admitted, not ours to account
			}
			time.Sleep(50 * time.Microsecond)
		}
		accepted++
	}

	// Phase 1 — deterministic TM overfill: freeze both shard workers so
	// frames pile into their input queues, then release. Each worker then
	// ingests a whole batch against a depth-4 TM queue in one wakeup, and
	// everything past the fourth routable frame per port tail-drops.
	release0, err := sw.blockShard(0)
	if err != nil {
		t.Fatal(err)
	}
	release1, err := sw.blockShard(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		inject(v4Packet(t, [4]byte{10, 1, 200, byte(i)}, routerMAC, 64))
	}
	release0()
	release1()

	// Phase 2 — the mixed storm races a hitless edit storm: scratch-table
	// create/drop transactions publish a fresh epoch every commit while
	// the four traffic categories interleave.
	editErr := make(chan error, 1)
	go func() {
		editErr <- func() error {
			for i := 0; i < edits; i++ {
				if err := sw.EditBegin(); err != nil {
					return err
				}
				op := ctrlplane.EditOp{Kind: "set_table", Table: "drop_scratch", TableSpec: scratchTable("drop_scratch")}
				if i%2 == 1 {
					op = ctrlplane.EditOp{Kind: "delete_table", Table: "drop_scratch"}
				}
				if err := sw.EditApply(op); err != nil {
					return err
				}
				if _, err := sw.EditCommit(); err != nil {
					return err
				}
			}
			return nil
		}()
	}()
	truncated := v4Packet(t, [4]byte{10, 1, 0, 1}, routerMAC, 64)[:10]
	for i := 0; i < mixed; i++ {
		switch i % 4 {
		case 0: // routable
			inject(v4Packet(t, [4]byte{10, 1, byte(i >> 8), byte(i)}, routerMAC, 64))
		case 1: // poisoned ACL flow
			inject(v4Packet(t, [4]byte{10, 1, 7, 7}, routerMAC, 64))
		case 2: // poisoned route: resolves to nonexistent port 99
			inject(v4Packet(t, [4]byte{10, 2, 0, 9}, routerMAC, 64))
		case 3: // truncated mid-Ethernet: cannot carry the root header
			inject(append([]byte(nil), truncated...))
		}
	}
	if err := <-editErr; err != nil {
		t.Fatalf("edit storm failed: %v", err)
	}

	// Quiesce: every accepted frame reaches exactly one verdict.
	verdictSum := func() uint64 {
		var sum uint64
		for _, c := range sw.tel.verdictCounters() {
			sum += c.Value()
		}
		return sum
	}
	deadline := time.Now().Add(15 * time.Second)
	for verdictSum() < accepted {
		if time.Now().After(deadline) {
			t.Fatalf("conservation: %d/%d frames reached a verdict", verdictSum(), accepted)
		}
		time.Sleep(time.Millisecond)
	}
	if got := verdictSum(); got != accepted {
		t.Fatalf("verdicts %d != accepted %d (packets double-counted)", got, accepted)
	}

	// The attributed ledger reconciles exactly: each loss reason's
	// ipsa_drop_total sum equals its verdict's ipsa_packets_total count.
	var aclDrops uint64
	for _, c := range sw.tel.dropACL {
		aclDrops += c.Value()
	}
	byReason := map[string]uint64{
		verdict.StrReasonACL:    aclDrops,
		verdict.StrReasonTM:     sw.tel.dropTM.Value(),
		verdict.StrReasonNoPort: sw.tel.dropNoPort.Value(),
		verdict.StrReasonParse:  sw.tel.dropParse.Value(),
	}
	wantByReason := map[string]uint64{
		verdict.StrReasonACL:    sw.tel.vDropped.Value(),
		verdict.StrReasonTM:     sw.tel.vTmDrop.Value(),
		verdict.StrReasonNoPort: sw.tel.vNoPort.Value(),
		verdict.StrReasonParse:  sw.tel.vParseError.Value(),
	}
	for reason, got := range byReason {
		if want := wantByReason[reason]; got != want {
			t.Errorf("reason %s: drop counter %d != verdict counter %d", reason, got, want)
		}
	}
	// The storm must actually have exercised every injected drop kind.
	for _, reason := range []string{verdict.StrReasonACL, verdict.StrReasonTM, verdict.StrReasonNoPort, verdict.StrReasonParse} {
		if byReason[reason] == 0 {
			t.Errorf("reason %s never fired during the storm", reason)
		}
	}

	// The registry export carries the same ledger (scrape-path parity).
	exported := map[string]uint64{}
	for _, p := range sw.Telemetry().Reg.Gather() {
		if p.Name != "ipsa_drop_total" {
			continue
		}
		for _, l := range p.Labels {
			if l.Key == "reason" {
				exported[l.Value] += uint64(p.Value)
			}
		}
	}
	for reason, want := range byReason {
		if exported[reason] != want {
			t.Errorf("exported ipsa_drop_total{reason=%s} = %d, want %d", reason, exported[reason], want)
		}
	}

	// The capture ring sampled the storm: records exist, carry taxonomy
	// reasons, and acl captures name their dropping TSP.
	recs := sw.DropDump(0)
	if len(recs) == 0 {
		t.Fatal("drop ring empty after a drop storm")
	}
	valid := map[string]bool{
		verdict.StrReasonACL: true, verdict.StrReasonTM: true,
		verdict.StrReasonNoPort: true, verdict.StrReasonParse: true,
		verdict.StrReasonTxFail: true,
	}
	sawACL := false
	for _, r := range recs {
		if !valid[r.Reason] {
			t.Fatalf("capture record %d has unknown reason %q", r.Seq, r.Reason)
		}
		if r.Reason == verdict.StrReasonACL {
			sawACL = true
			if r.TSP < 0 {
				t.Errorf("acl capture %d lost its stage attribution", r.Seq)
			}
			if len(r.Hdr) == 0 || r.Bytes == 0 {
				t.Errorf("acl capture %d has no header prefix", r.Seq)
			}
		}
	}
	if !sawACL {
		t.Error("no acl drop was ever sampled")
	}
	sampled, _ := sw.Drops().Stats()
	if sampled == 0 {
		t.Error("ring reports zero sampled drops")
	}

	// The TM watermark telemetry saw the phase-1 overfill. This design
	// resolves the egress port in the egress dmac stage, after TM
	// admission, so queueing (and the watermark) lands on the TM's
	// unresolved-egress queue 0: the high-water mark reached the queue
	// bound and at least one microburst window was recorded.
	var wm *struct {
		mark   int
		bursts uint64
	}
	for _, pw := range sw.tmWatermarks() {
		if pw.Port == 0 {
			wm = &struct {
				mark   int
				bursts uint64
			}{pw.Watermark, pw.Bursts}
		}
	}
	if wm == nil || wm.mark == 0 {
		t.Fatal("no TM watermark recorded on the admission queue")
	}
	if wm.mark > opts.QueueDepth {
		t.Errorf("watermark %d exceeds queue depth %d", wm.mark, opts.QueueDepth)
	}
	if wm.bursts == 0 {
		t.Error("TM overfill produced no microburst window")
	}
}
